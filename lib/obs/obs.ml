(* Structured tracing and metrics, zero-cost when disabled.

   Design constraints, in order:

   1. The disabled path must be invisible in `bench compare --strict`:
      every entry point opens with a single load-and-branch on
      [enabled_flag] and touches nothing else — no allocation, no DLS
      lookup, no clock read.

   2. Enabled recording must be deterministic under the worker pool.
      Every domain writes only to a store keyed by its [Par.worker_index]
      (not its domain id), and {!snapshot} merges stores in ascending
      worker-index order.  Counter and histogram merges are sums —
      associative and commutative — so totals depend only on what work
      ran, never on which domain ran it; the deterministic merge order
      additionally pins down gauge resolution and trace-event grouping.

   3. Within one worker a store is only ever touched by the single domain
      currently holding that index (Par regions join before the index is
      reused), so stores need no locks; only the store registry does. *)

module Par = Rtcad_par.Par

let enabled_flag = ref false
let[@inline] enabled () = !enabled_flag

(* Wall-clock origin of the current recording session; span timestamps
   are relative to it so traces start near zero. *)
let epoch = ref 0.0
let time_ms () = Unix.gettimeofday () *. 1000.0

(* --- per-worker stores --- *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array; (* h_buckets.(i) counts observations <= bounds.(i) *)
}

(* 1-2-5 decades from 1 to 1e9, plus an overflow bucket. *)
let bounds =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4;
    1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7; 2e7; 5e7; 1e8; 2e8; 5e8; 1e9;
  |]

let bucket_of v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let hist_bounds = bounds

(* Percentile estimate over 1-2-5 buckets: find the bucket holding the
   requested rank and interpolate linearly inside it.  The estimate is
   upper-edge biased (a bucket's observations are assumed spread over
   its whole span), deterministic, and depends only on the counts — so
   merged histograms yield the same percentiles at any job count. *)
let percentile_of_buckets ~counts p =
  if Array.length counts <> Array.length bounds + 1 then
    invalid_arg "Obs.percentile_of_buckets: counts must cover every bucket";
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Obs.percentile_of_buckets: percentile out of [0,100]";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int total))) in
    let rec go i cum =
      if i > Array.length bounds then infinity
      else
        let c = counts.(i) in
        if cum + c >= rank && c > 0 then
          if i = Array.length bounds then infinity
          else begin
            let hi = bounds.(i) in
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            lo +. ((hi -. lo) *. (float_of_int (rank - cum) /. float_of_int c))
          end
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Hist of hist

type span_ev = {
  sp_name : string;
  sp_ts_ms : float; (* relative to [epoch] *)
  sp_dur_ms : float;
  sp_args : (string * string) list;
}

type store = {
  generation : int;
  metrics : (string, metric) Hashtbl.t;
  mutable spans : span_ev list; (* reversed *)
  mutable nspans : int;
}

let registry : (int, store) Hashtbl.t = Hashtbl.create 8
let registry_m = Mutex.create ()
let generation = ref 0

(* Per-domain cache of (generation, worker index, store): valid as long
   as neither the recording session nor the domain's worker index has
   changed, so steady-state recording does one DLS read and two int
   compares before touching the store. *)
let cache_key :
    (int * int * store) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let store () =
  let wi = Par.worker_index () in
  let cache = Domain.DLS.get cache_key in
  match !cache with
  | Some (g, i, s) when g = !generation && i = wi -> s
  | _ ->
    Mutex.lock registry_m;
    let s =
      match Hashtbl.find_opt registry wi with
      | Some s when s.generation = !generation -> s
      | _ ->
        let s =
          {
            generation = !generation;
            metrics = Hashtbl.create 32;
            spans = [];
            nspans = 0;
          }
        in
        Hashtbl.replace registry wi s;
        s
    in
    Mutex.unlock registry_m;
    cache := Some (!generation, wi, s);
    s

let reset () =
  Mutex.lock registry_m;
  incr generation;
  Hashtbl.reset registry;
  Mutex.unlock registry_m;
  epoch := time_ms ()

let set_enabled b =
  if b && not !enabled_flag then reset ();
  enabled_flag := b

(* --- recording --- *)

let counter_cell s name =
  match Hashtbl.find_opt s.metrics name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Obs: metric kind mismatch for " ^ name)
  | None ->
    let c = ref 0 in
    Hashtbl.replace s.metrics name (Counter c);
    c

let incr ?(by = 1) name =
  if !enabled_flag then begin
    let c = counter_cell (store ()) name in
    c := !c + by
  end

let set_gauge name v =
  if !enabled_flag then begin
    let s = store () in
    match Hashtbl.find_opt s.metrics name with
    | Some (Gauge g) -> g := v
    | Some _ -> invalid_arg ("Obs: metric kind mismatch for " ^ name)
    | None -> Hashtbl.replace s.metrics name (Gauge (ref v))
  end

let observe name v =
  if !enabled_flag then begin
    let s = store () in
    let h =
      match Hashtbl.find_opt s.metrics name with
      | Some (Hist h) -> h
      | Some _ -> invalid_arg ("Obs: metric kind mismatch for " ^ name)
      | None ->
        let h =
          { h_count = 0; h_sum = 0.0; h_buckets = Array.make (Array.length bounds + 1) 0 }
        in
        Hashtbl.replace s.metrics name (Hist h);
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

(* Bulk merge: fold an externally-accumulated histogram (same 1-2-5
   ladder, e.g. the RAPPID farm's per-shard latency counts) into a
   named metric without paying a name lookup per observation.  [sum]
   carries the true observation total so means stay exact. *)
let observe_buckets name ~counts ~sum =
  if !enabled_flag then begin
    if Array.length counts <> Array.length bounds + 1 then
      invalid_arg "Obs.observe_buckets: counts must cover every bucket";
    let s = store () in
    let h =
      match Hashtbl.find_opt s.metrics name with
      | Some (Hist h) -> h
      | Some _ -> invalid_arg ("Obs: metric kind mismatch for " ^ name)
      | None ->
        let h =
          { h_count = 0; h_sum = 0.0; h_buckets = Array.make (Array.length bounds + 1) 0 }
        in
        Hashtbl.replace s.metrics name (Hist h);
        h
    in
    let n = Array.fold_left ( + ) 0 counts in
    h.h_count <- h.h_count + n;
    h.h_sum <- h.h_sum +. sum;
    Array.iteri (fun i c -> h.h_buckets.(i) <- h.h_buckets.(i) + c) counts
  end

let record_span s name ~ts ~dur args =
  s.spans <- { sp_name = name; sp_ts_ms = ts; sp_dur_ms = dur; sp_args = args } :: s.spans;
  s.nspans <- s.nspans + 1

let span ?(args = fun () -> []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = time_ms () in
    let finish () =
      let t1 = time_ms () in
      record_span (store ()) name ~ts:(t0 -. !epoch) ~dur:(t1 -. t0) (args ())
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

(* --- snapshots --- *)

type value =
  | Count of int
  | Gauge_v of float
  | Hist_v of { count : int; sum : float; buckets : (float * int) list }

type span_agg = { name : string; calls : int; wall_ms : float }

type snapshot = {
  jobs : int;
  metrics : (string * value) list; (* sorted by name *)
  span_aggs : span_agg list; (* sorted by name *)
  events : (int * span_ev) list; (* (worker index, event), index-major order *)
}

let merge_metric acc (name, m) =
  let v =
    match m with
    | Counter c -> Count !c
    | Gauge g -> Gauge_v !g
    | Hist h ->
      let buckets = ref [] in
      for i = Array.length h.h_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then begin
          let bound = if i < Array.length bounds then bounds.(i) else infinity in
          buckets := (bound, h.h_buckets.(i)) :: !buckets
        end
      done;
      Hist_v { count = h.h_count; sum = h.h_sum; buckets = !buckets }
  in
  let merged =
    match (List.assoc_opt name acc, v) with
    | None, v -> v
    | Some (Count a), Count b -> Count (a + b)
    (* First (= lowest worker index) setter wins: gauges are set from the
       initiating domain in practice, and a deterministic rule keeps the
       snapshot independent of merge accidents. *)
    | Some (Gauge_v a), Gauge_v _ -> Gauge_v a
    | Some (Hist_v a), Hist_v b ->
      let rec add acc = function
        | [] -> acc
        | (bound, n) :: rest ->
          let acc =
            match List.assoc_opt bound acc with
            | None -> (bound, n) :: acc
            | Some m ->
              (bound, n + m) :: List.filter (fun (b', _) -> b' <> bound) acc
          in
          add acc rest
      in
      Hist_v
        {
          count = a.count + b.count;
          sum = a.sum +. b.sum;
          buckets = List.sort compare (add a.buckets b.buckets);
        }
    | Some _, _ -> invalid_arg ("Obs: metric kind mismatch across workers for " ^ name)
  in
  (name, merged) :: List.remove_assoc name acc

let snapshot () =
  Mutex.lock registry_m;
  let stores =
    Hashtbl.fold (fun wi s acc -> (wi, s) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Mutex.unlock registry_m;
  let metrics =
    List.fold_left
      (fun acc ((_, s) : int * store) ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) s.metrics []
        |> List.sort compare
        |> List.fold_left (fun acc nm -> merge_metric acc nm) acc)
      [] stores
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let events =
    List.concat_map (fun (wi, s) -> List.rev_map (fun e -> (wi, e)) s.spans) stores
  in
  let span_aggs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (_, e) ->
        let calls, total =
          match Hashtbl.find_opt tbl e.sp_name with
          | None -> (0, 0.0)
          | Some ct -> ct
        in
        Hashtbl.replace tbl e.sp_name (calls + 1, total +. e.sp_dur_ms))
      events;
    Hashtbl.fold (fun name (calls, wall_ms) acc -> { name; calls; wall_ms } :: acc) tbl []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  { jobs = Par.jobs (); metrics; span_aggs; events }

let metric snap name = List.assoc_opt name snap.metrics

let counter snap name =
  match metric snap name with Some (Count n) -> n | _ -> 0

(* Percentiles of a merged snapshot histogram: rebuild the dense bucket
   array (snapshots only keep non-empty buckets) and estimate. *)
let percentile v p =
  match v with
  | Hist_v h ->
    let counts = Array.make (Array.length bounds + 1) 0 in
    List.iter
      (fun (bound, n) ->
        let i = bucket_of bound in
        counts.(i) <- counts.(i) + n)
      h.buckets;
    Some (percentile_of_buckets ~counts p)
  | Count _ | Gauge_v _ -> None

(* --- sinks --- *)

let pp_summary ppf snap =
  Format.fprintf ppf "@[<v>observability summary (jobs %d)@," snap.jobs;
  if snap.span_aggs <> [] then begin
    Format.fprintf ppf "spans:@,";
    List.iter
      (fun a ->
        Format.fprintf ppf "  %-32s %6d call(s) %10.2f ms@," a.name a.calls a.wall_ms)
      snap.span_aggs
  end;
  if snap.metrics <> [] then begin
    Format.fprintf ppf "metrics:@,";
    List.iter
      (fun (name, v) ->
        match v with
        | Count n -> Format.fprintf ppf "  %-32s %d@," name n
        | Gauge_v g -> Format.fprintf ppf "  %-32s %g@," name g
        | Hist_v h ->
          Format.fprintf ppf "  %-32s count %d, sum %g, mean %g@," name h.count h.sum
            (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count))
      snap.metrics
  end;
  Format.fprintf ppf "@]"

(* JSON is assembled by hand: a fixed field order and explicit number
   formats keep the output byte-stable for golden comparison. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let summary_json ?(normalised = false) snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"jobs\": %d,\n" (if normalised then 0 else snap.jobs));
  Buffer.add_string b "  \"metrics\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b (Printf.sprintf "    \"%s\": " (json_escape name));
      match v with
      | Count n -> Buffer.add_string b (string_of_int n)
      | Gauge_v g -> Buffer.add_string b (json_float g)
      | Hist_v h ->
        Buffer.add_string b
          (Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": {" h.count
             (json_float h.sum));
        List.iteri
          (fun j (bound, n) ->
            Buffer.add_string b
              (Printf.sprintf "%s\"%s\": %d"
                 (if j = 0 then "" else ", ")
                 (if bound = infinity then "inf" else json_float bound)
                 n))
          h.buckets;
        Buffer.add_string b "}}")
    snap.metrics;
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"spans\": [";
  List.iteri
    (fun i a ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"calls\": %d, \"wall_ms\": %s}"
           (json_escape a.name) a.calls
           (if normalised then "0" else json_float a.wall_ms)))
    snap.span_aggs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let trace_json snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  List.iter
    (fun (wi, e) ->
      let args =
        match e.sp_args with
        | [] -> ""
        | kvs ->
          Printf.sprintf ", \"args\": {%s}"
            (String.concat ", "
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
                  kvs))
      in
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"rtcad\", \"ph\": \"X\", \"pid\": 1, \
            \"tid\": %d, \"ts\": %s, \"dur\": %s%s}"
           (json_escape e.sp_name) wi
           (json_float (e.sp_ts_ms *. 1000.0))
           (json_float (e.sp_dur_ms *. 1000.0))
           args))
    snap.events;
  List.iter
    (fun (name, v) ->
      match v with
      | Count n ->
        emit
          (Printf.sprintf
             "{\"name\": \"%s\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": 0, \
              \"args\": {\"value\": %d}}"
             (json_escape name) n)
      | Gauge_v _ | Hist_v _ -> ())
    snap.metrics;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write_file ~path data =
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc -> (
    match
      output_string oc data;
      close_out oc
    with
    | () -> Ok ()
    | exception Sys_error msg ->
      (try close_out_noerr oc with _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      Error msg)
