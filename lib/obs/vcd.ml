(* Value-change-dump writer and a minimal reader.

   The writer buffers everything in memory (declarations first, then the
   change stream) so a dump can be assembled during a simulation and
   written atomically at the end — an unwritable output path must not
   leave a partial file behind.  It enforces the two properties a VCD
   consumer relies on: timestamps never decrease, and a signal only
   appears in the stream when its value actually changed (change-only
   semantics; redundant changes are dropped silently).

   The reader is deliberately small — just enough to round-trip our own
   output and to let tests validate golden dumps structurally.  It is not
   a general VCD parser (no vectors, no reals, no nested scopes). *)

type writer = {
  timescale : string;
  version : string;
  mutable names : string list; (* reversed declaration order *)
  mutable nsig : int;
  mutable values : bool array; (* current value per signal *)
  mutable initials : bool array;
  mutable sealed : bool; (* first change emitted; no more signals *)
  changes : Buffer.t;
  mutable now : int; (* time of the open #-section; -1 = none yet *)
  mutable nchanges : int;
}

let create ?(timescale = "1 fs") ?(version = "rtcad_obs") () =
  {
    timescale;
    version;
    names = [];
    nsig = 0;
    values = Array.make 8 false;
    initials = Array.make 8 false;
    sealed = false;
    changes = Buffer.create 256;
    now = -1;
    nchanges = 0;
  }

(* Identifier codes use the printable ASCII range 33..126 as base-94
   digits, the standard VCD convention. *)
let id_code i =
  let b = Buffer.create 2 in
  let rec go i =
    Buffer.add_char b (Char.chr (33 + (i mod 94)));
    if i >= 94 then go ((i / 94) - 1)
  in
  go i;
  Buffer.contents b

(* VCD reference names cannot contain whitespace; anything else is left
   alone (GTKWave copes with punctuation). *)
let sanitize name =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c)
    (if name = "" then "_" else name)

let add_signal w ?(initial = false) name =
  if w.sealed then invalid_arg "Vcd.add_signal: change stream already started";
  let i = w.nsig in
  if i >= Array.length w.values then begin
    let grow a = Array.append a (Array.make (Array.length a) false) in
    w.values <- grow w.values;
    w.initials <- grow w.initials
  end;
  w.names <- sanitize name :: w.names;
  w.nsig <- i + 1;
  w.values.(i) <- initial;
  w.initials.(i) <- initial;
  i

let change w ~time signal value =
  if signal < 0 || signal >= w.nsig then invalid_arg "Vcd.change: unknown signal";
  if time < 0 then invalid_arg "Vcd.change: negative time";
  if time < w.now then invalid_arg "Vcd.change: time not monotone";
  if w.values.(signal) <> value then begin
    w.sealed <- true;
    if time > w.now then begin
      Buffer.add_char w.changes '#';
      Buffer.add_string w.changes (string_of_int time);
      Buffer.add_char w.changes '\n';
      w.now <- time
    end;
    Buffer.add_char w.changes (if value then '1' else '0');
    Buffer.add_string w.changes (id_code signal);
    Buffer.add_char w.changes '\n';
    w.values.(signal) <- value;
    w.nchanges <- w.nchanges + 1
  end

let num_changes w = w.nchanges

let contents w =
  let b = Buffer.create (512 + Buffer.length w.changes) in
  Buffer.add_string b "$date (none) $end\n";
  Buffer.add_string b ("$version " ^ w.version ^ " $end\n");
  Buffer.add_string b ("$timescale " ^ w.timescale ^ " $end\n");
  Buffer.add_string b "$scope module top $end\n";
  List.iteri
    (fun i name ->
      Buffer.add_string b
        (Printf.sprintf "$var wire 1 %s %s $end\n" (id_code i) name))
    (List.rev w.names);
  Buffer.add_string b "$upscope $end\n";
  Buffer.add_string b "$enddefinitions $end\n";
  Buffer.add_string b "$dumpvars\n";
  for i = 0 to w.nsig - 1 do
    Buffer.add_string b
      (Printf.sprintf "%c%s\n" (if w.initials.(i) then '1' else '0') (id_code i))
  done;
  Buffer.add_string b "$end\n";
  Buffer.add_buffer b w.changes;
  Buffer.contents b

(* --- reader --- *)

type t = {
  r_timescale : string;
  vars : (string * string) list; (* id code -> reference name *)
  initial : (string * bool) list;
  steps : (int * (string * bool) list) list; (* per #-section, in order *)
}

let tokens s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let parse text =
  let toks = tokens text in
  (* Header: consume $-sections up to $enddefinitions, recording
     timescale and $var declarations. *)
  let rec skip_to_end acc = function
    | "$end" :: rest -> (List.rev acc, rest)
    | t :: rest -> skip_to_end (t :: acc) rest
    | [] -> fail "unterminated $-section in header"
  in
  let rec header vars timescale = function
    | "$enddefinitions" :: rest ->
      let _, rest = skip_to_end [] rest in
      (List.rev vars, timescale, rest)
    | "$var" :: rest -> (
      match skip_to_end [] rest with
      | [ _type; "1"; id; name ], rest -> header ((id, name) :: vars) timescale rest
      | decl, _ -> fail "unsupported $var declaration: %s" (String.concat " " decl))
    | "$timescale" :: rest ->
      let ts, rest = skip_to_end [] rest in
      header vars (String.concat " " ts) rest
    | t :: rest when String.length t > 0 && t.[0] = '$' ->
      let _, rest = skip_to_end [] rest in
      header vars timescale rest
    | t :: _ -> fail "unexpected token %S before $enddefinitions" t
    | [] -> fail "missing $enddefinitions"
  in
  let vars, timescale, rest = header [] "" toks in
  let value_change t =
    if String.length t >= 2 && (t.[0] = '0' || t.[0] = '1') then
      Some (String.sub t 1 (String.length t - 1), t.[0] = '1')
    else None
  in
  (* Body: $dumpvars initial block, then #-stamped sections. *)
  let rec dumpvars init = function
    | "$end" :: rest -> (List.rev init, rest)
    | t :: rest -> (
      match value_change t with
      | Some c -> dumpvars (c :: init) rest
      | None -> fail "non-scalar token %S in $dumpvars" t)
    | [] -> fail "unterminated $dumpvars"
  in
  let initial, rest =
    match rest with
    | "$dumpvars" :: rest -> dumpvars [] rest
    | _ -> ([], rest)
  in
  let rec body steps current = function
    | [] -> (
      match current with
      | None -> List.rev steps
      | Some (t, cs) -> List.rev ((t, List.rev cs) :: steps))
    | tok :: rest when String.length tok > 1 && tok.[0] = '#' -> (
      let time =
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some t -> t
        | None -> fail "malformed timestamp %S" tok
      in
      let steps =
        match current with
        | None -> steps
        | Some (t, cs) -> (t, List.rev cs) :: steps
      in
      body steps (Some (time, [])) rest)
    | tok :: rest -> (
      match value_change tok with
      | None -> fail "unexpected token %S in change stream" tok
      | Some c -> (
        match current with
        | None -> fail "value change %S before any timestamp" tok
        | Some (t, cs) -> body steps (Some (t, c :: cs)) rest))
  in
  { r_timescale = timescale; vars; initial; steps = body [] None rest }

let changes t =
  List.concat_map (fun (time, cs) -> List.map (fun (id, v) -> (time, id, v)) cs) t.steps
