(** Value-change dumps (IEEE 1364 VCD, scalar signals only).

    {2 Writing}

    A {!writer} buffers the whole dump in memory: declare every signal
    first, then stream changes, then take {!contents} and write it out in
    one shot (see {!Obs.write_file}).  The writer enforces what waveform
    viewers assume: timestamps are monotone non-decreasing
    ([Invalid_argument] otherwise) and a signal appears in the stream only
    when its value actually changed — redundant changes are dropped, so
    feeding it one callback per committed simulator event yields a legal
    change-only dump by construction.

    {2 Reading}

    {!parse} is a minimal reader for exactly the dialect the writer
    produces (one scope, scalar wires): enough for round-trip property
    tests and structural golden comparisons, not a general VCD parser. *)

type writer

val create : ?timescale:string -> ?version:string -> unit -> writer
(** Default timescale ["1 fs"] — the simulator's internal unit, so dumped
    times are exact integers. *)

val add_signal : writer -> ?initial:bool -> string -> int
(** Declare a scalar signal; returns its handle.  Whitespace in the name
    is replaced by [_].  Raises [Invalid_argument] after the first
    change has been emitted. *)

val change : writer -> time:int -> int -> bool -> unit
(** [change w ~time s v]: signal [s] takes value [v] at [time] (in
    timescale units).  Dropped silently if [v] is the signal's current
    value; raises [Invalid_argument] if [time] decreases or [s] is
    unknown. *)

val num_changes : writer -> int
(** Changes actually emitted (after change-only deduplication). *)

val contents : writer -> string
(** The complete dump: header, [$dumpvars] initial block, change
    stream. *)

(** {2 Reader} *)

type t = {
  r_timescale : string;
  vars : (string * string) list;  (** id code -> reference name *)
  initial : (string * bool) list;  (** the [$dumpvars] block *)
  steps : (int * (string * bool) list) list;
      (** one entry per [#]-section, in stream order *)
}

exception Malformed of string

val parse : string -> t
(** Raises {!Malformed} on input outside the supported dialect. *)

val changes : t -> (int * string * bool) list
(** {!steps} flattened to [(time, id, value)] triples in stream order. *)
