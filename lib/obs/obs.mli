(** Structured tracing and metrics, zero-cost when disabled.

    {2 Contract}

    Every recording entry point ({!incr}, {!set_gauge}, {!observe},
    {!span}) opens with a single load-and-branch on the enabled flag and
    does nothing else when recording is off — no allocation, no clock
    read, no thread-local lookup.  Instrumented kernels therefore show
    no measurable regression with observability disabled (enforced by
    [bench compare --strict]).

    {2 Determinism}

    Under {!Rtcad_par.Par} each domain records into a store keyed by its
    worker {e index} (not its domain id), and {!snapshot} merges stores
    in ascending index order: counters and histograms sum (associative,
    commutative — totals depend only on what work ran), gauges resolve
    lowest-index-first.  Since the pool's work distribution is itself
    deterministic, merged {e counter} totals are identical at any job
    count, which is what the golden corpus relies on. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enabling from a disabled state implicitly {!reset}s, so a recording
    session starts empty with its clock origin at the enable point. *)

val reset : unit -> unit
(** Discard all recorded metrics and spans and restart the clock. *)

(** {2 Recording} *)

val incr : ?by:int -> string -> unit
(** Bump a named counter (created on first use) in the calling worker's
    store.  Raises [Invalid_argument] if the name is already a gauge or
    histogram in that store. *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Record one observation into a named histogram (1-2-5 decade buckets
    from 1 to 1e9, plus overflow). *)

val hist_bounds : float array
(** The shared 1-2-5 bucket ladder ([1 .. 1e9]): bucket [i] counts
    observations [<= hist_bounds.(i)], with one extra overflow bucket.
    Hot loops that cannot afford a name lookup per observation (the
    RAPPID farm's per-instruction latencies) accumulate their own
    [int array] over this ladder and merge it in with
    {!observe_buckets}. *)

val observe_buckets : string -> counts:int array -> sum:float -> unit
(** Fold an externally-accumulated histogram into a named metric:
    [counts] must have [Array.length hist_bounds + 1] entries (the last
    is the overflow bucket) and [sum] is the exact total of the
    underlying observations.  Equivalent to the corresponding sequence
    of {!observe} calls, at the cost of one lookup. *)

val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] and records a completed-span event
    (surviving exceptions, which are re-raised).  When disabled this is
    exactly [f ()].  [args] is only evaluated when enabled, so callers
    may compute labels lazily. *)

val time_ms : unit -> float
(** Wall clock in milliseconds (monotonic enough for span math). *)

(** {2 Snapshots} *)

type value =
  | Count of int
  | Gauge_v of float
  | Hist_v of { count : int; sum : float; buckets : (float * int) list }

type span_agg = { name : string; calls : int; wall_ms : float }

type span_ev = {
  sp_name : string;
  sp_ts_ms : float;
  sp_dur_ms : float;
  sp_args : (string * string) list;
}

type snapshot = {
  jobs : int;
  metrics : (string * value) list;  (** sorted by name *)
  span_aggs : span_agg list;  (** sorted by name *)
  events : (int * span_ev) list;  (** (worker index, event) *)
}

val snapshot : unit -> snapshot
(** Merge all worker stores (ascending worker index).  Safe to call with
    recording still enabled, e.g. at the end of a CLI run. *)

val metric : snapshot -> string -> value option
(** Look up a merged metric by name. *)

val counter : snapshot -> string -> int
(** Merged value of a counter metric; [0] when absent or not a counter.
    The synthesis server reports its cache hit rate from these. *)

val percentile_of_buckets : counts:int array -> float -> float
(** [percentile_of_buckets ~counts p] estimates the [p]-th percentile
    ([0 <= p <= 100]) of a dense bucket array over {!hist_bounds} (plus
    overflow): the bucket holding the requested rank is found and the
    value interpolated linearly inside it.  Deterministic in the counts
    alone, so merged histograms give identical percentiles at any job
    count.  [0.0] for an empty histogram, [infinity] when the rank
    lands in the overflow bucket. *)

val percentile : value -> float -> float option
(** {!percentile_of_buckets} applied to a snapshot histogram value
    ([Hist_v]); [None] for counters and gauges. *)

(** {2 Sinks} *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Human-readable table: span wall-clock totals, then metrics. *)

val summary_json : ?normalised:bool -> snapshot -> string
(** Stable-order JSON object.  With [~normalised:true] the
    job-count and every wall-clock field are written as [0], making the
    output reproducible across machines and job counts — the form the
    golden corpus stores. *)

val trace_json : snapshot -> string
(** Chrome [trace_event] JSON array (load in [chrome://tracing] or
    Perfetto): one ["ph": "X"] event per span with [tid] = worker index,
    plus one ["ph": "C"] counter sample per counter metric. *)

val write_file : path:string -> string -> (unit, string) result
(** Write [data] to [path] in one shot.  On failure returns a clean
    [Error message] and leaves no partial file behind. *)
