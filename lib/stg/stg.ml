type dir = Rise | Fall
type kind = Input | Output | Internal
type label = Edge of { signal : int; dir : dir } | Dummy

type t = {
  net : Petri.t;
  labels : label array;
  signal_names : string array;
  kinds : kind array;
  initial_values : bool array;
  by_name : (string, int) Hashtbl.t;
}

let make ~net ~labels ~signal_names ~kinds ~initial_values =
  let ns = Array.length signal_names in
  if Array.length labels <> Petri.num_transitions net then
    invalid_arg "Stg.make: labels size mismatch";
  if Array.length kinds <> ns || Array.length initial_values <> ns then
    invalid_arg "Stg.make: signal arrays mismatch";
  Array.iter
    (function
      | Edge { signal; _ } when signal < 0 || signal >= ns ->
        invalid_arg "Stg.make: bad signal index"
      | Edge _ | Dummy -> ())
    labels;
  let by_name = Hashtbl.create ns in
  Array.iteri (fun i n -> Hashtbl.replace by_name n i) signal_names;
  { net; labels; signal_names; kinds; initial_values; by_name }

let net stg = stg.net
let label stg t = stg.labels.(t)
let num_signals stg = Array.length stg.signal_names
let signal_name stg s = stg.signal_names.(s)

let signal_index stg name =
  match Hashtbl.find_opt stg.by_name name with Some i -> i | None -> raise Not_found

let kind stg s = stg.kinds.(s)
let initial_value stg s = stg.initial_values.(s)
let is_input stg s = stg.kinds.(s) = Input

let signals stg = List.init (num_signals stg) Fun.id

let non_input_signals stg =
  List.filter (fun s -> stg.kinds.(s) <> Input) (signals stg)

let transitions_of stg s d =
  let acc = ref [] in
  for t = Petri.num_transitions stg.net - 1 downto 0 do
    match stg.labels.(t) with
    | Edge { signal; dir } when signal = s && dir = d -> acc := t :: !acc
    | Edge _ | Dummy -> ()
  done;
  !acc

let pp_dir ppf = function
  | Rise -> Format.fprintf ppf "+"
  | Fall -> Format.fprintf ppf "-"

let pp_transition stg ppf t =
  match stg.labels.(t) with
  | Edge { signal; dir } ->
    Format.fprintf ppf "%s%a" stg.signal_names.(signal) pp_dir dir
  | Dummy -> Format.fprintf ppf "%s" (Petri.transition_name stg.net t)

let pp_edge stg ppf (s, d) = Format.fprintf ppf "%s%a" stg.signal_names.(s) pp_dir d

let pp ppf stg =
  Format.fprintf ppf "@[<v>signals:";
  Array.iteri
    (fun i n ->
      let k =
        match stg.kinds.(i) with Input -> "in" | Output -> "out" | Internal -> "int"
      in
      Format.fprintf ppf " %s(%s%s)" n k (if stg.initial_values.(i) then "=1" else ""))
    stg.signal_names;
  Format.fprintf ppf "@,%a@]" Petri.pp stg.net

let dir_of_bool b = if b then Rise else Fall
let opposite = function Rise -> Fall | Fall -> Rise

module Build = struct
  type stg = t

  type pending_trans = { tname : string; tlabel : [ `Edge of string * dir * int | `Dummy ] }

  type t = {
    mutable sigs : (string * kind * bool) list; (* reversed *)
    mutable dummies : string list;
    mutable transes : pending_trans list; (* reversed *)
    trans_index : (string, int) Hashtbl.t;
    mutable places : (string * string option * string option) list;
    (* reversed: name, single producer transition, single consumer (for
       implicit places); explicit places have None/None here and use arcs *)
    place_index : (string, int) Hashtbl.t;
    mutable arcs_tp : (int * int) list; (* transition -> place *)
    mutable arcs_pt : (int * int) list; (* place -> transition *)
    mutable marked : int list;
    mutable n_trans : int;
    mutable n_places : int;
  }

  let create () =
    {
      sigs = [];
      dummies = [];
      transes = [];
      trans_index = Hashtbl.create 16;
      places = [];
      place_index = Hashtbl.create 16;
      arcs_tp = [];
      arcs_pt = [];
      marked = [];
      n_trans = 0;
      n_places = 0;
    }

  let signal b k ?(initial = false) name =
    if List.exists (fun (n, _, _) -> n = name) b.sigs then
      failwith (Printf.sprintf "Stg.Build: duplicate signal %s" name);
    b.sigs <- (name, k, initial) :: b.sigs

  let dummy b name =
    if List.mem name b.dummies then
      failwith (Printf.sprintf "Stg.Build: duplicate dummy %s" name);
    b.dummies <- name :: b.dummies

  (* Parse a transition reference: "li+", "li-/2", or a dummy name. *)
  let parse_ref b s =
    if List.mem s b.dummies then `Dummy s
    else
      let base, occ =
        match String.index_opt s '/' with
        | Some i ->
          (String.sub s 0 i, int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
        | None -> (s, 1)
      in
      let n = String.length base in
      if n < 2 then failwith (Printf.sprintf "Stg.Build: bad transition %S" s)
      else
        let sig_name = String.sub base 0 (n - 1) in
        (match base.[n - 1] with
        | '+' -> `Edge (sig_name, Rise, occ)
        | '-' -> `Edge (sig_name, Fall, occ)
        | '~' -> `Edge (sig_name, Fall, occ)
        | _ -> failwith (Printf.sprintf "Stg.Build: bad transition %S" s))

  let get_trans b name =
    match Hashtbl.find_opt b.trans_index name with
    | Some t -> t
    | None ->
      let tlabel =
        match parse_ref b name with
        | `Dummy d -> `Dummy d
        | `Edge (s, d, occ) -> `Edge (s, d, occ)
      in
      let tlabel = (match tlabel with `Dummy _ -> `Dummy | `Edge (s, d, o) -> `Edge (s, d, o)) in
      let t = b.n_trans in
      b.n_trans <- t + 1;
      b.transes <- { tname = name; tlabel } :: b.transes;
      Hashtbl.add b.trans_index name t;
      t

  let fresh_place b name producer consumer =
    let p = b.n_places in
    b.n_places <- p + 1;
    b.places <- (name, producer, consumer) :: b.places;
    Hashtbl.add b.place_index name p;
    p

  let implicit_name t1 t2 = Printf.sprintf "<%s,%s>" t1 t2

  let connect b src dst =
    let ts = get_trans b src and td = get_trans b dst in
    let name = implicit_name src dst in
    if Hashtbl.mem b.place_index name then
      failwith (Printf.sprintf "Stg.Build: duplicate arc %s -> %s" src dst);
    let p = fresh_place b name (Some src) (Some dst) in
    b.arcs_tp <- (ts, p) :: b.arcs_tp;
    b.arcs_pt <- (p, td) :: b.arcs_pt

  let place b name =
    if Hashtbl.mem b.place_index name then
      failwith (Printf.sprintf "Stg.Build: duplicate place %s" name);
    ignore (fresh_place b name None None)

  let find_place b name =
    match Hashtbl.find_opt b.place_index name with
    | Some p -> p
    | None -> failwith (Printf.sprintf "Stg.Build: unknown place %s" name)

  let arc_tp b tname pname =
    let t = get_trans b tname in
    b.arcs_tp <- (t, find_place b pname) :: b.arcs_tp

  let arc_pt b pname tname =
    let t = get_trans b tname in
    b.arcs_pt <- (find_place b pname, t) :: b.arcs_pt

  let mark b pname = b.marked <- find_place b pname :: b.marked

  let mark_between b t1 t2 =
    let name = implicit_name t1 t2 in
    match Hashtbl.find_opt b.place_index name with
    | Some p -> b.marked <- p :: b.marked
    | None -> failwith (Printf.sprintf "Stg.Build: no arc %s -> %s to mark" t1 t2)

  let finish b =
    let sigs = Array.of_list (List.rev b.sigs) in
    let signal_names = Array.map (fun (n, _, _) -> n) sigs in
    let kinds = Array.map (fun (_, k, _) -> k) sigs in
    let initial_values = Array.map (fun (_, _, v) -> v) sigs in
    let sig_idx = Hashtbl.create 16 in
    Array.iteri (fun i n -> Hashtbl.replace sig_idx n i) signal_names;
    let transes = Array.of_list (List.rev b.transes) in
    let labels =
      Array.map
        (fun { tname; tlabel } ->
          match tlabel with
          | `Dummy -> Dummy
          | `Edge (s, d, _) -> (
            match Hashtbl.find_opt sig_idx s with
            | Some i -> Edge { signal = i; dir = d }
            | None ->
              failwith (Printf.sprintf "Stg.Build: transition %s uses undeclared signal %s" tname s)))
        transes
    in
    let transition_names = Array.map (fun pt -> pt.tname) transes in
    let place_names = Array.map (fun (n, _, _) -> n) (Array.of_list (List.rev b.places)) in
    let pre = Array.make b.n_trans [] and post = Array.make b.n_trans [] in
    List.iter (fun (t, p) -> post.(t) <- p :: post.(t)) b.arcs_tp;
    List.iter (fun (p, t) -> pre.(t) <- p :: pre.(t)) b.arcs_pt;
    let net =
      Petri.make ~place_names ~transition_names ~pre ~post ~initial:b.marked
    in
    make ~net ~labels ~signal_names ~kinds ~initial_values
end
