(** Reading and writing STGs in the [.g] (astg / SIS) text format.

    Supported sections: [.model], [.inputs], [.outputs], [.internal],
    [.dummy], [.graph], [.marking { … }], [.end].  Lines in [.graph] list a
    source node followed by its successors; nodes ending in [+]/[-]
    (optionally with an occurrence suffix [/2]) are signal transitions,
    declared dummies are silent transitions, anything else is an explicit
    place.  One extension: an optional [.initial_state] line lists signals
    that start high (bare name) or low ([!name]); unlisted signals start
    low. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> Stg.t
(** Parse from a string containing a whole [.g] file. *)

val parse_file : string -> Stg.t

val print : Format.formatter -> Stg.t -> unit
(** Write in [.g] syntax; [parse] of the output reconstructs an isomorphic
    STG. *)

val to_string : Stg.t -> string

val print_dot : Format.formatter -> Stg.t -> unit
(** Graphviz rendering of the STG: transitions as boxes (inputs dashed),
    places as circles (implicit places elided into edges), initial
    marking as filled dots. *)
