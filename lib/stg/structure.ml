module Bitset = Rtcad_util.Bitset

let is_marked_graph net =
  let ok = ref true in
  for p = 0 to Petri.num_places net - 1 do
    if List.length (Petri.producers net p) <> 1 || List.length (Petri.consumers net p) <> 1
    then ok := false
  done;
  !ok

let is_free_choice net =
  let ok = ref true in
  for p = 0 to Petri.num_places net - 1 do
    match Petri.consumers net p with
    | [] | [ _ ] -> ()
    | consumers -> List.iter (fun t -> if Petri.pre net t <> [ p ] then ok := false) consumers
  done;
  !ok

(* Exact rational arithmetic on (num, den) with den > 0. *)
let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let norm (n, d) =
  if n = 0 then (0, 1)
  else begin
    let s = if d < 0 then -1 else 1 in
    let g = gcd (abs n) (abs d) in
    (s * n / g, s * d / g)
  end

let q_add (a, b) (c, d) = norm ((a * d) + (c * b), b * d)
let q_mul (a, b) (c, d) = norm (a * c, b * d)
let q_neg (a, b) = (-a, b)
let q_div (a, b) (c, d) = if c = 0 then invalid_arg "div0" else norm (a * d, b * c)
let q_zero = (0, 1)
let q_is_zero (n, _) = n = 0

(* Left kernel of the incidence matrix C (|P| x |T|): solve x^T C = 0,
   i.e. the kernel of C^T (|T| x |P|) acting on place-indexed vectors.
   Plain Gaussian elimination over Q; free variables yield basis
   vectors. *)
let place_invariants net =
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  (* rows: transitions; columns: places; entry = post(t,p) - pre(t,p) *)
  let a = Array.make_matrix nt np q_zero in
  for t = 0 to nt - 1 do
    List.iter (fun p -> a.(t).(p) <- q_add a.(t).(p) (1, 1)) (Petri.post net t);
    List.iter (fun p -> a.(t).(p) <- q_add a.(t).(p) (-1, 1)) (Petri.pre net t)
  done;
  (* Row-reduce; record pivot column per row. *)
  let pivot_of_row = Array.make nt (-1) in
  let row = ref 0 in
  for col = 0 to np - 1 do
    if !row < nt then begin
      (* find pivot *)
      let p = ref (-1) in
      for r = !row to nt - 1 do
        if !p = -1 && not (q_is_zero a.(r).(col)) then p := r
      done;
      if !p >= 0 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!p);
        a.(!p) <- tmp;
        let inv = q_div (1, 1) a.(!row).(col) in
        for c = 0 to np - 1 do
          a.(!row).(c) <- q_mul a.(!row).(c) inv
        done;
        for r = 0 to nt - 1 do
          if r <> !row && not (q_is_zero a.(r).(col)) then begin
            let f = a.(r).(col) in
            for c = 0 to np - 1 do
              a.(r).(c) <- q_add a.(r).(c) (q_neg (q_mul f a.(!row).(c)))
            done
          end
        done;
        pivot_of_row.(!row) <- col;
        incr row
      end
    end
  done;
  let pivot_cols = Array.to_list (Array.sub pivot_of_row 0 !row) in
  let is_pivot c = List.mem c pivot_cols in
  let basis = ref [] in
  for free = 0 to np - 1 do
    if not (is_pivot free) then begin
      (* x(free) = 1; pivots determined by their rows. *)
      let x = Array.make np q_zero in
      x.(free) <- (1, 1);
      for r = 0 to !row - 1 do
        let pc = pivot_of_row.(r) in
        if pc >= 0 then x.(pc) <- q_neg a.(r).(free)
      done;
      (* scale to integers *)
      let lcm = Array.fold_left (fun acc (_, d) -> acc * d / gcd acc d) 1 x in
      let ints = Array.map (fun (n, d) -> n * (lcm / d)) x in
      let g = Array.fold_left (fun acc v -> gcd acc v) 0 ints in
      let ints = if g > 1 then Array.map (fun v -> v / g) ints else ints in
      (* prefer mostly-positive orientation *)
      let pos = Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 ints in
      let neg = Array.fold_left (fun acc v -> if v < 0 then acc + 1 else acc) 0 ints in
      let ints = if neg > pos then Array.map (fun v -> -v) ints else ints in
      basis := ints :: !basis
    end
  done;
  List.rev !basis

(* Farkas' algorithm: minimal-support semi-positive invariants.  Work on
   rows [C-part | identity-part]; cancel each transition column by
   combining rows of opposite sign; keep the identity parts of the rows
   whose C-part vanished. *)
let semi_positive_invariants net =
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let row_of_place p =
    let c = Array.make nt 0 in
    List.iter (fun t -> if List.mem p (Petri.post net t) then c.(t) <- c.(t) + 1)
      (List.init nt Fun.id);
    List.iter (fun t -> if List.mem p (Petri.pre net t) then c.(t) <- c.(t) - 1)
      (List.init nt Fun.id);
    let id = Array.make np 0 in
    id.(p) <- 1;
    (c, id)
  in
  let support id =
    Array.to_list id |> List.mapi (fun i v -> (i, v)) |> List.filter (fun (_, v) -> v > 0)
    |> List.map fst
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let normalize (c, id) =
    let g =
      Array.fold_left (fun acc v -> gcd acc v) (Array.fold_left gcd 0 c) id
    in
    if g > 1 then (Array.map (fun v -> v / g) c, Array.map (fun v -> v / g) id)
    else (c, id)
  in
  let minimal rows =
    List.filter
      (fun (_, id) ->
        not
          (List.exists
             (fun (_, id') ->
               id != id' && support id' <> support id && subset (support id') (support id))
             rows))
      rows
  in
  let rows = ref (List.init np row_of_place) in
  for j = 0 to nt - 1 do
    let zero, nonzero = List.partition (fun (c, _) -> c.(j) = 0) !rows in
    let pos = List.filter (fun (c, _) -> c.(j) > 0) nonzero in
    let neg = List.filter (fun (c, _) -> c.(j) < 0) nonzero in
    let combined =
      List.concat_map
        (fun (c1, id1) ->
          List.map
            (fun (c2, id2) ->
              let a = -c2.(j) and b = c1.(j) in
              normalize
                ( Array.init nt (fun k -> (a * c1.(k)) + (b * c2.(k))),
                  Array.init np (fun k -> (a * id1.(k)) + (b * id2.(k))) ))
            neg)
        pos
    in
    rows := minimal (zero @ combined);
    (* Cap blow-up on pathological nets. *)
    if List.length !rows > 4096 then rows := zero
  done;
  List.filter_map
    (fun (c, id) ->
      if Array.for_all (fun v -> v = 0) c && Array.exists (fun v -> v > 0) id then Some id
      else None)
    !rows

let invariant_token_count net x =
  let m0 = Petri.initial_marking net in
  let acc = ref 0 in
  Array.iteri (fun p w -> if Bitset.mem m0 p then acc := !acc + w) x;
  !acc

let covered_by_unit_invariants net =
  let unit_invs =
    List.filter (fun x -> invariant_token_count net x = 1) (semi_positive_invariants net)
  in
  let covered = Array.make (Petri.num_places net) false in
  List.iter (fun x -> Array.iteri (fun p w -> if w > 0 then covered.(p) <- true) x) unit_invs;
  Array.for_all Fun.id covered
