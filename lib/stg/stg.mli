(** Signal transition graphs (STGs).

    An STG is a safe Petri net whose transitions are labelled with signal
    edges ([li+], [ro-], …) or are silent ([ε], called {e dummy}).  Signals
    are classified as inputs (driven by the environment), outputs, or
    internal (invisible at the interface but implemented by the circuit,
    e.g. inserted state signals).

    The {!Build} submodule offers a by-name construction API used both by
    the [.g] parser and the built-in specification library. *)

type dir = Rise | Fall
type kind = Input | Output | Internal
type label = Edge of { signal : int; dir : dir } | Dummy

type t

val make :
  net:Petri.t ->
  labels:label array ->
  signal_names:string array ->
  kinds:kind array ->
  initial_values:bool array ->
  t
(** Raises [Invalid_argument] on size mismatches or out-of-range signals. *)

val net : t -> Petri.t
val label : t -> int -> label
val num_signals : t -> int
val signal_name : t -> int -> string
val signal_index : t -> string -> int
(** Raises [Not_found]. *)

val kind : t -> int -> kind
val initial_value : t -> int -> bool
val is_input : t -> int -> bool

val signals : t -> int list
val non_input_signals : t -> int list

val transitions_of : t -> int -> dir -> int list
(** All Petri transitions labelled with the given signal edge. *)

val pp_dir : Format.formatter -> dir -> unit
val pp_transition : t -> Format.formatter -> int -> unit
(** Prints [li+], [x-], or the dummy's name. *)

val pp_edge : t -> Format.formatter -> int * dir -> unit
(** Prints a signal edge as [li+]. *)

val pp : Format.formatter -> t -> unit

val dir_of_bool : bool -> dir
(** [Rise] for [true]. *)

val opposite : dir -> dir

module Build : sig
  (** Imperative by-name STG construction.

      Transitions are referred to by strings: ["li+"], ["li-"], ["li+/2"]
      (second occurrence of the edge), or a declared dummy name.  Arcs
      between two transitions introduce an implicit place.  Explicit places
      may be declared and connected with {!arc_tp} / {!arc_pt}. *)

  type stg = t
  type t

  val create : unit -> t

  val signal : t -> kind -> ?initial:bool -> string -> unit
  (** Declare a signal.  Default initial value is [false]. *)

  val dummy : t -> string -> unit
  (** Declare a silent transition. *)

  val connect : t -> string -> string -> unit
  (** [connect b "li+" "lo+"] adds an implicit place from the first
      transition to the second, creating the transitions on first use. *)

  val place : t -> string -> unit
  val arc_tp : t -> string -> string -> unit
  (** Arc from transition to explicit place. *)

  val arc_pt : t -> string -> string -> unit
  (** Arc from explicit place to transition. *)

  val mark : t -> string -> unit
  (** Mark an explicit place. *)

  val mark_between : t -> string -> string -> unit
  (** Mark the implicit place between two connected transitions. *)

  val finish : t -> stg
  (** Raises [Failure] with a diagnostic if the construction is malformed
      (undeclared signals, unmarkable places, …). *)
end
