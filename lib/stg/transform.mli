(** Structural STG transformations. *)

val contract_dummies : ?strict:bool -> Stg.t -> Stg.t
(** Remove silent (dummy) transitions by contraction: a dummy [t] with a
    single input place whose only consumer is [t] and that has a single
    producer is removed, its producer re-connected directly to its output
    places.  Contraction preserves the firing sequences projected on
    signal edges.  A dummy that cannot be contracted safely (involved in
    choice, or a multi-input join whose contraction would duplicate
    tokens) raises [Failure] when [strict] (the default), and is left in
    place otherwise. *)

val rename_signals : Stg.t -> (string -> string) -> Stg.t
(** Apply a renaming function to every signal name.  Raises
    [Invalid_argument] if the renaming is not injective on the STG's
    signals. *)

val set_kind : Stg.t -> string -> Stg.kind -> Stg.t
(** Return an STG where the named signal has the given kind (e.g. hide an
    output by making it internal).  Raises [Not_found]. *)
