let build f =
  let b = Stg.Build.create () in
  f b;
  Stg.Build.finish b

(* Figure 3: FIFO controller.  Left handshake li/lo, right handshake ro/ri.
   lo+ requires the previous right handshake to have completed (via the
   silent transition eps), which is what creates the CSC conflict between
   the initial state and the state reached after a fast left handshake. *)
let fifo () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "li";
      Stg.Build.signal b Stg.Input "ri";
      Stg.Build.signal b Stg.Output "lo";
      Stg.Build.signal b Stg.Output "ro";
      Stg.Build.dummy b "eps";
      Stg.Build.connect b "li+" "lo+";
      Stg.Build.connect b "lo+" "li-";
      Stg.Build.connect b "li-" "lo-";
      Stg.Build.connect b "lo-" "li+";
      Stg.Build.connect b "lo+" "ro+";
      Stg.Build.connect b "ro+" "ri+";
      Stg.Build.connect b "ri+" "ro-";
      Stg.Build.connect b "ro-" "ri-";
      Stg.Build.connect b "ri-" "eps";
      Stg.Build.connect b "eps" "lo+";
      Stg.Build.mark_between b "lo-" "li+";
      Stg.Build.mark_between b "eps" "lo+")

(* Figure 5(b): the same controller with the inserted state signal x.
   x+ is caused by lo+ and is concurrent with the rest of the cycle (the
   orderings "x+ before li-" / "x+ before ri+" are *timing* constraints,
   not causality); x- joins x+, lo- and ro- (AND-join in the net; the RT
   step treats x- as lazy, recovering the paper's OR-causality
   implementation x = lo or ro).  A new lo+ needs x back at 0. *)
let fifo_with_state () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "li";
      Stg.Build.signal b Stg.Input "ri";
      Stg.Build.signal b Stg.Output "lo";
      Stg.Build.signal b Stg.Output "ro";
      Stg.Build.signal b Stg.Internal "x";
      Stg.Build.connect b "li+" "lo+";
      Stg.Build.connect b "lo+" "li-";
      Stg.Build.connect b "li-" "lo-";
      Stg.Build.connect b "lo-" "li+";
      Stg.Build.connect b "lo+" "ro+";
      Stg.Build.connect b "ro+" "ri+";
      Stg.Build.connect b "ri+" "ro-";
      Stg.Build.connect b "ro-" "ri-";
      Stg.Build.connect b "lo+" "x+";
      Stg.Build.connect b "x+" "x-";
      Stg.Build.connect b "lo-" "x-";
      Stg.Build.connect b "ro-" "x-";
      Stg.Build.connect b "x-" "lo+";
      Stg.Build.connect b "ri-" "lo+";
      Stg.Build.mark_between b "lo-" "li+";
      Stg.Build.mark_between b "x-" "lo+";
      Stg.Build.mark_between b "ri-" "lo+")

let c_element () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "a";
      Stg.Build.signal b Stg.Input "b";
      Stg.Build.signal b Stg.Output "c";
      Stg.Build.connect b "a+" "c+";
      Stg.Build.connect b "b+" "c+";
      Stg.Build.connect b "c+" "a-";
      Stg.Build.connect b "c+" "b-";
      Stg.Build.connect b "a-" "c-";
      Stg.Build.connect b "b-" "c-";
      Stg.Build.connect b "c-" "a+";
      Stg.Build.connect b "c-" "b+";
      Stg.Build.mark_between b "c-" "a+";
      Stg.Build.mark_between b "c-" "b+")

let pipeline_stage () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "rin";
      Stg.Build.signal b Stg.Input "aout";
      Stg.Build.signal b Stg.Output "rout";
      Stg.Build.signal b Stg.Output "ain";
      Stg.Build.connect b "rin+" "rout+";
      Stg.Build.connect b "rout+" "ain+";
      Stg.Build.connect b "rout+" "aout+";
      Stg.Build.connect b "ain+" "rin-";
      Stg.Build.connect b "rin-" "rout-";
      Stg.Build.connect b "aout+" "rout-";
      Stg.Build.connect b "rout-" "ain-";
      Stg.Build.connect b "rout-" "aout-";
      Stg.Build.connect b "ain-" "rin+";
      Stg.Build.connect b "aout-" "rout+";
      Stg.Build.mark_between b "ain-" "rin+";
      Stg.Build.mark_between b "aout-" "rout+")

let selector () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "a";
      Stg.Build.signal b Stg.Input "b";
      Stg.Build.signal b Stg.Output "z";
      Stg.Build.place b "choice";
      Stg.Build.arc_pt b "choice" "a+";
      Stg.Build.arc_pt b "choice" "b+";
      Stg.Build.connect b "a+" "z+";
      Stg.Build.connect b "z+" "a-";
      Stg.Build.connect b "a-" "z-";
      Stg.Build.connect b "b+" "z+/2";
      Stg.Build.connect b "z+/2" "b-";
      Stg.Build.connect b "b-" "z-/2";
      Stg.Build.arc_tp b "z-" "choice";
      Stg.Build.arc_tp b "z-/2" "choice";
      Stg.Build.mark b "choice")

(* Closed ring of n FIFO cells (Section 4.2).  Cell i receives on channel
   i-1 (request r_{i-1}, acknowledge a_{i-1}) and sends on channel i.  Per
   cell: ack after request and previous send completed; send after ack;
   request release after remote ack; ack release after request release. *)
let ring n =
  if n < 2 then invalid_arg "Library.ring: need at least 2 cells";
  build (fun b ->
      for i = 0 to n - 1 do
        Stg.Build.signal b Stg.Output (Printf.sprintf "r%d" i);
        Stg.Build.signal b Stg.Output (Printf.sprintf "a%d" i)
      done;
      let r i = Printf.sprintf "r%d" ((i + n) mod n) in
      let a i = Printf.sprintf "a%d" ((i + n) mod n) in
      for i = 0 to n - 1 do
        (* P1: request in -> ack *)
        Stg.Build.connect b (r (i - 1) ^ "+") (a (i - 1) ^ "+");
        (* P2: own send handshake done -> ready to ack next *)
        Stg.Build.connect b (a i ^ "-") (a (i - 1) ^ "+");
        (* P3: acked (data latched) -> send right *)
        Stg.Build.connect b (a (i - 1) ^ "+") (r i ^ "+");
        (* P4: remote ack -> release request *)
        Stg.Build.connect b (a i ^ "+") (r i ^ "-");
        (* P5: request released -> release ack *)
        Stg.Build.connect b (r (i - 1) ^ "-") (a (i - 1) ^ "-")
      done;
      (* One data token at cell 0: it is about to send; every other cell is
         idle with its send handshake (trivially) complete. *)
      Stg.Build.mark_between b (a (-1) ^ "+") (r 0 ^ "+");
      for i = 1 to n - 1 do
        Stg.Build.mark_between b (a i ^ "-") (a (i - 1) ^ "+")
      done)

(* Classic toggle: successive input handshakes steer alternating outputs.
   The eight states are distinctly coded, so it synthesizes without a
   state signal despite the two-cycle period. *)
let toggle () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "i";
      Stg.Build.signal b Stg.Output "o1";
      Stg.Build.signal b Stg.Output "o2";
      Stg.Build.connect b "i+" "o1+";
      Stg.Build.connect b "o1+" "i-";
      Stg.Build.connect b "i-" "o2+";
      Stg.Build.connect b "o2+" "i+/2";
      Stg.Build.connect b "i+/2" "o1-";
      Stg.Build.connect b "o1-" "i-/2";
      Stg.Build.connect b "i-/2" "o2-";
      Stg.Build.connect b "o2-" "i+";
      Stg.Build.mark_between b "o2-" "i+")

(* Call element: two mutually exclusive clients share one server through
   a free choice; the acknowledges remember which client called. *)
let call_element () =
  build (fun b ->
      Stg.Build.signal b Stg.Input "r1";
      Stg.Build.signal b Stg.Input "r2";
      Stg.Build.signal b Stg.Input "as";
      Stg.Build.signal b Stg.Output "a1";
      Stg.Build.signal b Stg.Output "a2";
      Stg.Build.signal b Stg.Output "rs";
      Stg.Build.place b "sel";
      Stg.Build.mark b "sel";
      let branch idx r a =
        let t base = if idx = 1 then base else base ^ "/2" in
        Stg.Build.arc_pt b "sel" (r ^ "+");
        Stg.Build.connect b (r ^ "+") (t "rs+");
        Stg.Build.connect b (t "rs+") (t "as+");
        Stg.Build.connect b (t "as+") (a ^ "+");
        Stg.Build.connect b (a ^ "+") (r ^ "-");
        Stg.Build.connect b (r ^ "-") (t "rs-");
        Stg.Build.connect b (t "rs-") (t "as-");
        Stg.Build.connect b (t "as-") (a ^ "-");
        Stg.Build.arc_tp b (a ^ "-") "sel"
      in
      branch 1 "r1" "a1";
      branch 2 "r2" "a2")

let all_named () =
  [
    ("fifo", fifo ());
    ("fifo_x", fifo_with_state ());
    ("celement", c_element ());
    ("pipeline", pipeline_stage ());
    ("selector", selector ());
    ("toggle", toggle ());
    ("call", call_element ());
    ("ring3", ring 3);
  ]
