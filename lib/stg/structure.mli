(** Structural analysis of Petri nets.

    Structure theory gives certificates that do not require state-space
    exploration: a {e place invariant} (a nonnegative weighting of places
    whose weighted token count is constant under every firing) with token
    count 1 certifies that all its places are mutually exclusive and safe;
    the net classes (marked graph, free choice) bound which synthesis
    techniques apply. *)

val is_marked_graph : Petri.t -> bool
(** Every place has exactly one producer and one consumer: no choice, no
    merge — the class the FIFO controllers live in. *)

val is_free_choice : Petri.t -> bool
(** Whenever two transitions share an input place, that place is their
    only input: choice is never influenced by other tokens. *)

val place_invariants : Petri.t -> int array list
(** A basis of the left kernel of the incidence matrix, scaled to
    smallest nonnegative-where-possible integers: each vector [x]
    satisfies [x · C = 0], i.e. [sum_p x.(p) * m(p)] is invariant.
    Vectors with mixed signs are possible (the kernel basis is not
    guaranteed nonnegative); {!semi_positive_invariants} filters. *)

val semi_positive_invariants : Petri.t -> int array list
(** The basis vectors that are componentwise nonnegative (and not zero). *)

val invariant_token_count : Petri.t -> int array -> int
(** Weighted token count of the initial marking under the invariant. *)

val covered_by_unit_invariants : Petri.t -> bool
(** Every place belongs to some semi-positive invariant whose initial
    token count is 1 — a structural certificate of safety (1-boundedness)
    for the places covered. *)
