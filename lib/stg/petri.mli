(** Safe (1-bounded) Petri nets.

    Places and transitions are dense integer indices.  Markings are
    {!Rtcad_util.Bitset.t} values over places.  The nets used for STGs are
    required to stay safe during reachability analysis; {!fire} checks this
    and raises {!Unsafe} when a token would be duplicated. *)

type t

exception Unsafe of int
(** Raised by {!fire} with the offending place when firing would put a second
    token into a place. *)

val make :
  place_names:string array ->
  transition_names:string array ->
  pre:int list array ->
  post:int list array ->
  initial:int list ->
  t
(** [make ~place_names ~transition_names ~pre ~post ~initial]: [pre.(t)] are
    the input places of transition [t], [post.(t)] its output places,
    [initial] the initially marked places.  Raises [Invalid_argument] on
    inconsistent sizes or out-of-range place indices. *)

val num_places : t -> int
val num_transitions : t -> int
val place_name : t -> int -> string
val transition_name : t -> int -> string

val pre : t -> int -> int list
(** Input places of a transition. *)

val post : t -> int -> int list
(** Output places of a transition. *)

val producers : t -> int -> int list
(** Transitions with an arc into the given place. *)

val consumers : t -> int -> int list
(** Transitions with an arc out of the given place. *)

val prepare : t -> unit
(** Force the lazily built reverse-flow tables behind {!producers} and
    {!consumers}.  Must be called before the net is read from several
    domains at once: the tables are cached through an unsynchronized
    mutable field, which is only safe single-domain. *)

val initial_marking : t -> Rtcad_util.Bitset.t

val enabled : t -> Rtcad_util.Bitset.t -> int -> bool
(** [enabled net m t]: all input places of [t] are marked in [m]. *)

val enabled_transitions : t -> Rtcad_util.Bitset.t -> int list

val iter_enabled : t -> Rtcad_util.Bitset.t -> (int -> unit) -> unit
(** [iter_enabled net m f] calls [f] on every enabled transition in
    ascending index order, without building a list — the hot loop of
    reachability analysis. *)

val fire : t -> Rtcad_util.Bitset.t -> int -> Rtcad_util.Bitset.t
(** [fire net m t] fires an enabled transition.  Raises [Invalid_argument]
    if [t] is not enabled and {!Unsafe} if safety would be violated. *)

val structural_conflicts : t -> int -> int list
(** Transitions sharing an input place with the given transition (excluding
    itself). *)

val pp : Format.formatter -> t -> unit
