(** Built-in STG specifications.

    These are the specifications used throughout the paper's case studies
    plus a few classic asynchronous controllers used by the test suite. *)

val fifo : unit -> Stg.t
(** The FIFO controller of Figure 3: left handshake [li]/[lo], right
    handshake [ro]/[ri], an [eps] silent transition closing the internal
    cycle.  Has a CSC conflict (the state after the left handshake
    completes aliases the initial state), which Figure 5 resolves with an
    internal signal [x]. *)

val fifo_with_state : unit -> Stg.t
(** The Figure 5(b) STG: [fifo] with internal state signal [x]; [x+] follows
    [lo+], [x-] joins [lo-] and [ro-] (the relative-timing step later
    relaxes this join to the OR-causality implementation of the paper). *)

val c_element : unit -> Stg.t
(** Muller C-element: inputs [a], [b]; output [c]. *)

val pipeline_stage : unit -> Stg.t
(** Muller-pipeline latch controller: inputs [rin], [aout]; outputs [ain],
    [rout] with C-element behaviour [rout = C(rin, not aout)]. *)

val selector : unit -> Stg.t
(** Free-choice input selection: inputs [a], [b] (mutually exclusive),
    output [z] = [a or b].  Exercises non-marked-graph reachability. *)

val toggle : unit -> Stg.t
(** Classic toggle: two input handshakes steer outputs [o1], [o2]
    alternately.  Distinctly coded despite its two-cycle period. *)

val call_element : unit -> Stg.t
(** CALL: two mutually exclusive clients [r1]/[a1], [r2]/[a2] share a
    server [rs]/[as] through a free choice. *)

val ring : int -> Stg.t
(** [ring n] composes [n >= 2] FIFO cells into a closed token ring: signals
    [r0..r(n-1)] (requests) and [a0..a(n-1)] (acknowledges), all outputs,
    one data token initially at cell 0.  Used to validate the user
    assumption "[ri-] before [li+]" of Section 4.2. *)

val all_named : unit -> (string * Stg.t) list
(** All specifications above (ring instantiated at 3) with their names. *)
