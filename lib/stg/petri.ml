module Bitset = Rtcad_util.Bitset

type t = {
  place_names : string array;
  transition_names : string array;
  pre : int array array;
  post : int array array;
  producers : int array array;
  consumers : int array array;
  initial : Bitset.t;
}

exception Unsafe of int

let make ~place_names ~transition_names ~pre ~post ~initial =
  let np = Array.length place_names and nt = Array.length transition_names in
  if Array.length pre <> nt || Array.length post <> nt then
    invalid_arg "Petri.make: pre/post size mismatch";
  let check_places ps =
    List.iter (fun p -> if p < 0 || p >= np then invalid_arg "Petri.make: bad place") ps
  in
  Array.iter check_places pre;
  Array.iter check_places post;
  check_places initial;
  let producers = Array.make np [] and consumers = Array.make np [] in
  for tr = nt - 1 downto 0 do
    List.iter (fun p -> producers.(p) <- tr :: producers.(p)) post.(tr);
    List.iter (fun p -> consumers.(p) <- tr :: consumers.(p)) pre.(tr)
  done;
  {
    place_names;
    transition_names;
    pre = Array.map Array.of_list pre;
    post = Array.map Array.of_list post;
    producers = Array.map Array.of_list producers;
    consumers = Array.map Array.of_list consumers;
    initial = Bitset.of_list np initial;
  }

let num_places net = Array.length net.place_names
let num_transitions net = Array.length net.transition_names
let place_name net p = net.place_names.(p)
let transition_name net t = net.transition_names.(t)
let pre net t = Array.to_list net.pre.(t)
let post net t = Array.to_list net.post.(t)
let producers net p = Array.to_list net.producers.(p)
let consumers net p = Array.to_list net.consumers.(p)
let initial_marking net = net.initial

let enabled net m t = Array.for_all (fun p -> Bitset.mem m p) net.pre.(t)

let enabled_transitions net m =
  let rec go t acc =
    if t < 0 then acc else go (t - 1) (if enabled net m t then t :: acc else acc)
  in
  go (num_transitions net - 1) []

let fire net m t =
  if not (enabled net m t) then invalid_arg "Petri.fire: transition not enabled";
  let m' = Array.fold_left Bitset.remove m net.pre.(t) in
  Array.fold_left
    (fun acc p -> if Bitset.mem acc p then raise (Unsafe p) else Bitset.add acc p)
    m' net.post.(t)

let structural_conflicts net t =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      Array.iter (fun t' -> if t' <> t then Hashtbl.replace seen t' ()) net.consumers.(p))
    net.pre.(t);
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let pp ppf net =
  Format.fprintf ppf "@[<v>petri: %d places, %d transitions@," (num_places net)
    (num_transitions net);
  for t = 0 to num_transitions net - 1 do
    Format.fprintf ppf "  %s: {%s} -> {%s}@," net.transition_names.(t)
      (String.concat " " (List.map (place_name net) (pre net t)))
      (String.concat " " (List.map (place_name net) (post net t)))
  done;
  Format.fprintf ppf "  initial: %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
    (List.map (place_name net) (Bitset.elements net.initial))
