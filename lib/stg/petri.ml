module Bitset = Rtcad_util.Bitset

type t = {
  place_names : string array;
  transition_names : string array;
  pre : int array array;
  post : int array array;
  (* Reverse flow tables, computed on first use: only cold paths (net
     transformations, structural checks, I/O) read them, and building
     them for every candidate net of the CSC search is measurable. *)
  mutable flows : (int array array * int array array) option;
  initial : Bitset.t;
}

exception Unsafe of int

let make ~place_names ~transition_names ~pre ~post ~initial =
  let np = Array.length place_names and nt = Array.length transition_names in
  if Array.length pre <> nt || Array.length post <> nt then
    invalid_arg "Petri.make: pre/post size mismatch";
  let check_places ps =
    List.iter (fun p -> if p < 0 || p >= np then invalid_arg "Petri.make: bad place") ps
  in
  Array.iter check_places pre;
  Array.iter check_places post;
  check_places initial;
  {
    place_names;
    transition_names;
    pre = Array.map Array.of_list pre;
    post = Array.map Array.of_list post;
    flows = None;
    initial = Bitset.of_list np initial;
  }

let num_places net = Array.length net.place_names
let num_transitions net = Array.length net.transition_names

let flows net =
  match net.flows with
  | Some f -> f
  | None ->
    let np = num_places net and nt = num_transitions net in
    let producers = Array.make np [] and consumers = Array.make np [] in
    for tr = nt - 1 downto 0 do
      Array.iter (fun p -> producers.(p) <- tr :: producers.(p)) net.post.(tr);
      Array.iter (fun p -> consumers.(p) <- tr :: consumers.(p)) net.pre.(tr)
    done;
    let f = (Array.map Array.of_list producers, Array.map Array.of_list consumers) in
    net.flows <- Some f;
    f
(* Forces the lazy reverse-flow tables.  Call before handing the net to
   concurrent readers: [flows] publishes through an unsynchronized
   mutable field, which is only safe while a single domain touches it. *)
let prepare net = ignore (flows net)

let place_name net p = net.place_names.(p)
let transition_name net t = net.transition_names.(t)
let pre net t = Array.to_list net.pre.(t)
let post net t = Array.to_list net.post.(t)
let producers net p = Array.to_list (fst (flows net)).(p)
let consumers net p = Array.to_list (snd (flows net)).(p)
let initial_marking net = net.initial

(* Top level so the recursion compiles to direct calls: a local [let rec]
   would allocate a closure on each of the millions of [enabled] checks a
   reachability analysis performs. *)
let rec all_marked m pre k =
  k >= Array.length pre || (Bitset.mem m (Array.unsafe_get pre k) && all_marked m pre (k + 1))

let enabled net m t = all_marked m net.pre.(t) 0

let enabled_transitions net m =
  let rec go t acc =
    if t < 0 then acc else go (t - 1) (if enabled net m t then t :: acc else acc)
  in
  go (num_transitions net - 1) []

let iter_enabled net m f =
  for t = 0 to num_transitions net - 1 do
    if enabled net m t then f t
  done

(* One copy of the marking for the whole firing, instead of one per
   consumed/produced place. *)
let fire net m t =
  if not (enabled net m t) then invalid_arg "Petri.fire: transition not enabled";
  let b = Bitset.Builder.of_set m in
  let pre = net.pre.(t) and post = net.post.(t) in
  for k = 0 to Array.length pre - 1 do
    Bitset.Builder.set b (Array.unsafe_get pre k) false
  done;
  for k = 0 to Array.length post - 1 do
    let p = Array.unsafe_get post k in
    if Bitset.Builder.mem b p then raise (Unsafe p) else Bitset.Builder.set b p true
  done;
  Bitset.Builder.freeze b

let structural_conflicts net t =
  let consumers = snd (flows net) in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      Array.iter (fun t' -> if t' <> t then Hashtbl.replace seen t' ()) consumers.(p))
    net.pre.(t);
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let pp ppf net =
  Format.fprintf ppf "@[<v>petri: %d places, %d transitions@," (num_places net)
    (num_transitions net);
  for t = 0 to num_transitions net - 1 do
    Format.fprintf ppf "  %s: {%s} -> {%s}@," net.transition_names.(t)
      (String.concat " " (List.map (place_name net) (pre net t)))
      (String.concat " " (List.map (place_name net) (post net t)))
  done;
  Format.fprintf ppf "  initial: %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
    (List.map (place_name net) (Bitset.elements net.initial))
