module Bitset = Rtcad_util.Bitset

(* Contract one dummy transition [t].  Preconditions checked by the caller:
   every p in pre(t) has t as only consumer and exactly one producer.  The
   contraction removes t and its input places; every producer of an input
   place gains arcs into every output place of t.  If an input place is
   marked, the output places become marked. *)
let contract_one stg t =
  let net = Stg.net stg in
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let pre_t = Petri.pre net t and post_t = Petri.post net t in
  let removed_places = pre_t in
  let keep_place p = not (List.mem p removed_places) in
  let marked_input = List.exists (fun p -> Bitset.mem (Petri.initial_marking net) p) pre_t in
  (* Old -> new place index map. *)
  let place_map = Array.make np (-1) in
  let new_place_names = ref [] in
  let n_new = ref 0 in
  for p = 0 to np - 1 do
    if keep_place p then begin
      place_map.(p) <- !n_new;
      incr n_new;
      new_place_names := Petri.place_name net p :: !new_place_names
    end
  done;
  let trans_map = Array.make nt (-1) in
  let new_trans = ref [] in
  let n_t = ref 0 in
  for tr = 0 to nt - 1 do
    if tr <> t then begin
      trans_map.(tr) <- !n_t;
      incr n_t;
      new_trans := tr :: !new_trans
    end
  done;
  let old_trans = Array.of_list (List.rev !new_trans) in
  let producers_of_pre =
    List.concat_map (fun p -> Petri.producers net p) pre_t
  in
  let pre = Array.make !n_t [] and post = Array.make !n_t [] in
  Array.iteri
    (fun ti old ->
      pre.(ti) <-
        List.filter_map
          (fun p -> if keep_place p then Some place_map.(p) else None)
          (Petri.pre net old);
      let base_post =
        List.filter_map
          (fun p -> if keep_place p then Some place_map.(p) else None)
          (Petri.post net old)
      in
      let extra =
        if List.mem old producers_of_pre then List.map (fun q -> place_map.(q)) post_t
        else []
      in
      post.(ti) <- List.sort_uniq Int.compare (extra @ base_post))
    old_trans;
  let initial =
    List.filter_map
      (fun p -> if keep_place p then Some place_map.(p) else None)
      (Bitset.elements (Petri.initial_marking net))
  in
  let initial =
    if marked_input then
      List.sort_uniq Int.compare (List.map (fun q -> place_map.(q)) post_t @ initial)
    else initial
  in
  let net' =
    Petri.make
      ~place_names:(Array.of_list (List.rev !new_place_names))
      ~transition_names:(Array.map (Petri.transition_name net) old_trans)
      ~pre ~post ~initial
  in
  let labels = Array.map (Stg.label stg) old_trans in
  Stg.make ~net:net' ~labels
    ~signal_names:(Array.init (Stg.num_signals stg) (Stg.signal_name stg))
    ~kinds:(Array.init (Stg.num_signals stg) (Stg.kind stg))
    ~initial_values:(Array.init (Stg.num_signals stg) (Stg.initial_value stg))

(* Only dummies with a single input place can be contracted this way: a
   join dummy (several input places) cannot — rewiring each producer to
   every output place would turn the AND-join into duplicated tokens. *)
let contractible stg t =
  let net = Stg.net stg in
  match Petri.pre net t with
  | [ p ] -> Petri.consumers net p = [ t ] && List.length (Petri.producers net p) = 1
  | [] | _ :: _ :: _ -> false

let find_dummy_from stg start =
  let net = Stg.net stg in
  let rec go t =
    if t >= Petri.num_transitions net then None
    else
      match Stg.label stg t with Stg.Dummy -> Some t | Stg.Edge _ -> go (t + 1)
  in
  go start

let contract_dummies ?(strict = true) stg =
  (* [skip] counts leading dummies to leave in place in lenient mode. *)
  let rec go stg skip =
    match find_dummy_from stg skip with
    | None -> stg
    | Some t ->
      if contractible stg t then go (contract_one stg t) skip
      else if strict then
        failwith
          (Printf.sprintf
             "Transform.contract_dummies: dummy %s involved in choice or merge"
             (Petri.transition_name (Stg.net stg) t))
      else go stg (t + 1)
  in
  go stg 0

let rename_signals stg f =
  let n = Stg.num_signals stg in
  let names = Array.init n (fun i -> f (Stg.signal_name stg i)) in
  let seen = Hashtbl.create n in
  Array.iter
    (fun name ->
      if Hashtbl.mem seen name then invalid_arg "Transform.rename_signals: not injective";
      Hashtbl.add seen name ())
    names;
  Stg.make ~net:(Stg.net stg)
    ~labels:(Array.init (Petri.num_transitions (Stg.net stg)) (Stg.label stg))
    ~signal_names:names
    ~kinds:(Array.init n (Stg.kind stg))
    ~initial_values:(Array.init n (Stg.initial_value stg))

let set_kind stg name kind =
  let s = Stg.signal_index stg name in
  let n = Stg.num_signals stg in
  Stg.make ~net:(Stg.net stg)
    ~labels:(Array.init (Petri.num_transitions (Stg.net stg)) (Stg.label stg))
    ~signal_names:(Array.init n (Stg.signal_name stg))
    ~kinds:(Array.init n (fun i -> if i = s then kind else Stg.kind stg i))
    ~initial_values:(Array.init n (Stg.initial_value stg))
