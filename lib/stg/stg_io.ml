exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type decls = {
  mutable inputs : string list;
  mutable outputs : string list;
  mutable internals : string list;
  mutable dummies : string list;
  mutable graph : (int * string list) list; (* line no, tokens *)
  mutable marking : string list;
  mutable high : string list; (* initially-1 signals *)
}

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* The ".marking { <a,b> p1 }" payload: split on spaces but keep <..,..>
   groups intact (they contain no spaces in our output; tolerate spaces
   after commas by rejoining). *)
let marking_tokens s =
  let s = String.trim s in
  let s =
    if String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}' then
      String.sub s 1 (String.length s - 2)
    else s
  in
  tokens s

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let is_transition_token decls tok =
  if List.mem tok decls.dummies then true
  else
    let base =
      match String.index_opt tok '/' with Some i -> String.sub tok 0 i | None -> tok
    in
    let n = String.length base in
    n >= 2
    && (base.[n - 1] = '+' || base.[n - 1] = '-')
    &&
    let s = String.sub base 0 (n - 1) in
    List.mem s decls.inputs || List.mem s decls.outputs || List.mem s decls.internals

let parse content =
  let decls =
    {
      inputs = [];
      outputs = [];
      internals = [];
      dummies = [];
      graph = [];
      marking = [];
      high = [];
    }
  in
  let lines = String.split_on_char '\n' content in
  let in_graph = ref false in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        match tokens line with
        | [] -> ()
        | keyword :: rest when String.length keyword > 0 && keyword.[0] = '.' -> (
          in_graph := false;
          match keyword with
          | ".model" | ".name" | ".end" -> ()
          | ".inputs" -> decls.inputs <- decls.inputs @ rest
          | ".outputs" -> decls.outputs <- decls.outputs @ rest
          | ".internal" -> decls.internals <- decls.internals @ rest
          | ".dummy" -> decls.dummies <- decls.dummies @ rest
          | ".graph" -> in_graph := true
          | ".marking" ->
            decls.marking <-
              decls.marking @ marking_tokens (String.concat " " rest)
          | ".initial_state" -> decls.high <- decls.high @ rest
          | ".capacity" | ".slowenv" -> () (* tolerated extensions *)
          | other -> fail lineno "unknown directive %s" other)
        | toks ->
          if !in_graph then decls.graph <- (lineno, toks) :: decls.graph
          else fail lineno "unexpected line outside .graph")
    lines;
  decls.graph <- List.rev decls.graph;
  let b = Stg.Build.create () in
  let initial_of name = List.mem name decls.high in
  List.iter (fun s -> Stg.Build.signal b Stg.Input ~initial:(initial_of s) s) decls.inputs;
  List.iter (fun s -> Stg.Build.signal b Stg.Output ~initial:(initial_of s) s) decls.outputs;
  List.iter
    (fun s -> Stg.Build.signal b Stg.Internal ~initial:(initial_of s) s)
    decls.internals;
  List.iter (fun d -> Stg.Build.dummy b d) decls.dummies;
  (* First pass: declare all explicit places (any non-transition token). *)
  let declared_places = Hashtbl.create 8 in
  List.iter
    (fun (_, toks) ->
      List.iter
        (fun tok ->
          if (not (is_transition_token decls tok)) && not (Hashtbl.mem declared_places tok)
          then begin
            Hashtbl.add declared_places tok ();
            Stg.Build.place b tok
          end)
        toks)
    decls.graph;
  (* Second pass: arcs. *)
  List.iter
    (fun (lineno, toks) ->
      match toks with
      | [] -> ()
      | src :: dsts ->
        let src_is_t = is_transition_token decls src in
        List.iter
          (fun dst ->
            let dst_is_t = is_transition_token decls dst in
            match (src_is_t, dst_is_t) with
            | true, true -> Stg.Build.connect b src dst
            | true, false -> Stg.Build.arc_tp b src dst
            | false, true -> Stg.Build.arc_pt b src dst
            | false, false -> fail lineno "arc between two places (%s -> %s)" src dst)
          dsts)
    decls.graph;
  (* Marking. *)
  List.iter
    (fun tok ->
      if String.length tok >= 2 && tok.[0] = '<' then begin
        match
          String.split_on_char ','
            (String.sub tok 1 (String.length tok - 2))
        with
        | [ t1; t2 ] -> Stg.Build.mark_between b (String.trim t1) (String.trim t2)
        | _ -> fail 0 "bad implicit marking token %s" tok
      end
      else Stg.Build.mark b tok)
    decls.marking;
  try Stg.Build.finish b with Failure msg -> raise (Parse_error (0, msg))

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

let print ppf stg =
  let net = Stg.net stg in
  let by_kind k =
    List.filter (fun s -> Stg.kind stg s = k) (Stg.signals stg)
    |> List.map (Stg.signal_name stg)
  in
  let pr_sigs dir names =
    if names <> [] then Format.fprintf ppf ".%s %s@," dir (String.concat " " names)
  in
  Format.fprintf ppf "@[<v>.model stg@,";
  pr_sigs "inputs" (by_kind Stg.Input);
  pr_sigs "outputs" (by_kind Stg.Output);
  pr_sigs "internal" (by_kind Stg.Internal);
  let dummies =
    List.filter_map
      (fun t ->
        match Stg.label stg t with
        | Stg.Dummy -> Some (Petri.transition_name net t)
        | Stg.Edge _ -> None)
      (List.init (Petri.num_transitions net) Fun.id)
  in
  pr_sigs "dummy" dummies;
  let high =
    List.filter (fun s -> Stg.initial_value stg s) (Stg.signals stg)
    |> List.map (Stg.signal_name stg)
  in
  pr_sigs "initial_state" high;
  Format.fprintf ppf ".graph@,";
  (* A place is implicit iff it has exactly one producer and one consumer
     and its name is of the <t1,t2> form the builder uses. *)
  let implicit p =
    String.length (Petri.place_name net p) > 0 && (Petri.place_name net p).[0] = '<'
  in
  let tname = Petri.transition_name net in
  for t = 0 to Petri.num_transitions net - 1 do
    let targets =
      List.concat_map
        (fun p ->
          if implicit p then List.map tname (Petri.consumers net p)
          else [ Petri.place_name net p ])
        (Petri.post net t)
    in
    if targets <> [] then Format.fprintf ppf "%s %s@," (tname t) (String.concat " " targets)
  done;
  for p = 0 to Petri.num_places net - 1 do
    if not (implicit p) then begin
      let outs = Petri.consumers net p in
      if outs <> [] then
        Format.fprintf ppf "%s %s@," (Petri.place_name net p)
          (String.concat " " (List.map tname outs))
    end
  done;
  let marked = Rtcad_util.Bitset.elements (Petri.initial_marking net) in
  let marking_token p =
    if implicit p then
      let producer = List.nth (Petri.producers net p) 0 in
      let consumer = List.nth (Petri.consumers net p) 0 in
      Printf.sprintf "<%s,%s>" (tname producer) (tname consumer)
    else Petri.place_name net p
  in
  Format.fprintf ppf ".marking { %s }@," (String.concat " " (List.map marking_token marked));
  Format.fprintf ppf ".end@]"

let to_string stg = Format.asprintf "%a" print stg

let print_dot ppf stg =
  let net = Stg.net stg in
  let implicit p =
    String.length (Petri.place_name net p) > 0
    && (Petri.place_name net p).[0] = '<'
    && List.length (Petri.producers net p) = 1
    && List.length (Petri.consumers net p) = 1
  in
  let marked p = Rtcad_util.Bitset.mem (Petri.initial_marking net) p in
  Format.fprintf ppf "@[<v>digraph stg {@,  rankdir=TB;@,";
  for t = 0 to Petri.num_transitions net - 1 do
    let shape =
      match Stg.label stg t with
      | Stg.Dummy -> "style=dotted"
      | Stg.Edge { signal; _ } ->
        if Stg.is_input stg signal then "style=dashed" else "style=solid"
    in
    Format.fprintf ppf "  t%d [shape=box,%s,label=\"%a\"];@," t shape
      (Stg.pp_transition stg) t
  done;
  for p = 0 to Petri.num_places net - 1 do
    if not (implicit p) then
      Format.fprintf ppf "  p%d [shape=circle,label=\"%s\"%s];@," p
        (Petri.place_name net p)
        (if marked p then ",style=filled,fillcolor=black,fontcolor=white" else "")
  done;
  for p = 0 to Petri.num_places net - 1 do
    if implicit p then begin
      let src = List.nth (Petri.producers net p) 0 in
      let dst = List.nth (Petri.consumers net p) 0 in
      Format.fprintf ppf "  t%d -> t%d%s;@," src dst
        (if marked p then " [label=\"\\u25CF\"]" else "")
    end
    else begin
      List.iter (fun t -> Format.fprintf ppf "  t%d -> p%d;@," t p) (Petri.producers net p);
      List.iter (fun t -> Format.fprintf ppf "  p%d -> t%d;@," p t) (Petri.consumers net p)
    end
  done;
  Format.fprintf ppf "}@]"
