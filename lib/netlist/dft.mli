(** Design-for-test support — the paper's Section 6 "Testing and DFT"
    directions.

    - {!feedback_loops}: "a tool that will flag the loops that should be
      broken in order to freeze the circuit before the state changes" —
      the strongly connected components of the gate graph.
    - {!redundant_faults}: "have the synthesis/testing tool flag the
      transistors which were added to prevent hazards, which may have
      undetectable faults" — the stuck-at faults a given functional test
      cannot observe.
    - {!insert_test_points}: "automatic support for selecting latches that
      should be scanned for achieving the required level of testability" —
      greedy insertion of observation taps until a coverage target is
      met. *)

val feedback_loops : Netlist.t -> Netlist.net list list
(** Nets involved in cyclic gate dependencies, grouped by strongly
    connected component (self-loops included).  These are the state loops
    a freeze/scan mechanism must break. *)

val redundant_faults :
  stimulus:(Sim.t -> unit) -> horizon:float -> Netlist.t -> Faults.fault list
(** The faults the stimulus leaves undetected. *)

type plan = {
  netlist : Netlist.t;  (** with observation taps added *)
  taps : string list;  (** names of the nets made observable *)
  coverage_before : float;
  coverage_after : float;
}

val insert_test_points :
  ?target:float ->
  ?max_taps:int ->
  stimulus:(Sim.t -> unit) ->
  horizon:float ->
  Netlist.t ->
  plan
(** Add buffer taps (each marked as an observable output) on the nets
    carrying the most undetected faults until the stuck-at coverage
    reaches [target] percent (default 100.0) or [max_taps] (default 4)
    taps have been added.  The input netlist is not modified. *)
