(** Event-driven timing simulation of a netlist.

    Each gate output carries at most one pending event (inertial delay):
    re-evaluation to the committed value cancels a pending contrary event
    and counts it as a glitch.  Primary inputs are driven explicitly or by
    environment callbacks registered on net changes — the standard way to
    model a handshake environment.

    Time is in picoseconds (internally femtosecond integers, so runs are
    exactly reproducible). *)

type t

exception Oscillation of string
(** Raised by {!run} / {!settle} when a net keeps toggling beyond the
    event budget (combinational oscillation or a runaway environment). *)

val create :
  ?delay:(Netlist.net -> Gate.t -> float) ->
  ?forced:(Netlist.net * bool) list ->
  Netlist.t ->
  t
(** Build a simulator.  [delay] overrides {!Gate.delay_ps} per gate
    instance (the net is the gate's output), which is how sizing decisions
    are modelled.  [forced] nets
    are stuck at a value (fault injection): drives and gate evaluations
    on them are ignored.  All nets start at their netlist initial value;
    gates are NOT auto-settled — call {!settle} if the initial state is
    not already consistent. *)

val netlist : t -> Netlist.t
val time : t -> float
val value : t -> Netlist.net -> bool

val drive : ?cause:int -> t -> Netlist.net -> bool -> after:float -> unit
(** Schedule a primary-input change [after] ps from the current time.
    [cause] (an event id, see {!events}) attributes the drive to the
    circuit event the environment is responding to, keeping causal chains
    unbroken across the interface.  Raises [Invalid_argument] on
    non-input nets. *)


val on_change : t -> Netlist.net -> (t -> bool -> unit) -> unit
(** Register a callback invoked after the net commits a new value.
    Change-only: the commit path drops writes of the value a net already
    holds, so a callback fires exactly once per actual transition.
    Multiple callbacks stack. *)

val attach_vcd : t -> Rtcad_obs.Vcd.writer -> unit
(** Declare every net of the netlist as a VCD signal (with its current
    value as the initial value) and stream each committed change into
    the writer via {!on_change} observers.  Attach before driving the
    simulator; times are the simulator's femtosecond clock, matching the
    writer's default [1 fs] timescale. *)

val run : ?max_events:int -> t -> until:float -> unit
(** Process events with timestamps [<= until] (absolute ps). *)

val settle : ?max_events:int -> t -> unit -> unit
(** Run until no events remain. *)

val transition_count : t -> Netlist.net -> int
val total_transitions : t -> int
val glitches : t -> int
val energy_pj : t -> float
(** Accumulated switching energy of committed transitions. *)

val trace : t -> (float * Netlist.net * bool) list
(** Committed changes of {e output-marked} nets, oldest first. *)

(** {2 Causality} *)

type event = {
  id : int;
  net : Netlist.net;
  value : bool;
  at : float;
  cause : int option;
      (** the event whose commit scheduled this one; [None] for external
          drives and power-up evaluation *)
}

val events : t -> event list
(** Every committed transition in order, with causal parent links — the
    raw material for path-constraint extraction ({!Rtcad_verify.Paths}). *)

val last_event : t -> event option
(** The most recently committed event — inside an {!on_change} callback,
    the event that triggered it. *)
