(* Tarjan's strongly-connected components over the gate dependency graph
   (edge: input net -> driven net). *)
let feedback_loops nl =
  let n = Netlist.num_nets nl in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let successors v = Netlist.fanout nl v in
  let self_loop v = List.mem v (successors v) in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (successors v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      match scc with
      | [ single ] -> if self_loop single then sccs := scc :: !sccs
      | _ :: _ :: _ -> sccs := scc :: !sccs
      | [] -> ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !sccs

let redundant_faults ~stimulus ~horizon nl =
  (Faults.coverage ~stimulus ~horizon nl).Faults.undetected

type plan = {
  netlist : Netlist.t;
  taps : string list;
  coverage_before : float;
  coverage_after : float;
}

(* Greedy observation-point insertion: tap the net with the most
   undetected faults among itself and its transitive fan-in. *)
let insert_test_points ?(target = 100.0) ?(max_taps = 4) ~stimulus ~horizon nl =
  let coverage_of nl = Faults.coverage ~stimulus ~horizon nl in
  let initial = coverage_of nl in
  let rec fanin_cone nl net acc =
    if List.mem net acc then acc
    else
      match Netlist.driver nl net with
      | None -> net :: acc
      | Some (_, ins) ->
        List.fold_left (fun acc (i, _) -> fanin_cone nl i acc) (net :: acc) ins
  in
  let pick_tap nl undetected =
    (* Score each not-yet-tapped, non-output driven net: a net carrying an
       undetected fault itself dominates; cone reach breaks ties. *)
    let outputs = Netlist.outputs nl in
    let already_tapped n =
      match Netlist.find_net nl (Printf.sprintf "tap_%s" (Netlist.net_name nl n)) with
      | _ -> true
      | exception Not_found -> false
    in
    let candidates =
      List.filter
        (fun n ->
          Netlist.driver nl n <> None && (not (List.mem n outputs))
          && not (already_tapped n))
        (List.init (Netlist.num_nets nl) Fun.id)
    in
    let score n =
      let own =
        List.length (List.filter (fun f -> f.Faults.net = n) undetected)
      in
      let cone = fanin_cone nl n [] in
      let reach =
        List.length (List.filter (fun f -> List.mem f.Faults.net cone) undetected)
      in
      (10 * own) + reach
    in
    match
      List.sort
        (fun a b -> compare (score b) (score a))
        (List.filter (fun n -> score n > 0) candidates)
    with
    | [] -> None
    | best :: _ -> Some best
  in
  let rec go nl taps k report =
    if report.Faults.coverage >= target || k >= max_taps then
      {
        netlist = nl;
        taps = List.rev taps;
        coverage_before = initial.Faults.coverage;
        coverage_after = report.Faults.coverage;
      }
    else
      match pick_tap nl report.Faults.undetected with
      | None ->
        {
          netlist = nl;
          taps = List.rev taps;
          coverage_before = initial.Faults.coverage;
          coverage_after = report.Faults.coverage;
        }
      | Some net ->
        let nl' = Netlist.copy nl in
        let tap_name = Printf.sprintf "tap_%s" (Netlist.net_name nl' net) in
        let tap =
          Netlist.add_gate nl' (Gate.make Gate.Not ~fanin:1) [ (net, false) ] tap_name
        in
        Netlist.mark_output nl' tap;
        Netlist.set_initial nl' tap (not (Netlist.initial_value nl' net));
        go nl' (Netlist.net_name nl net :: taps) (k + 1) (coverage_of nl')
  in
  go nl [] 0 initial
