(** Gate library: primitive functions, implementation styles, and cost
    models (transistors, delay, switching energy).

    The models are calibrated against a generic quarter-micron CMOS
    standard-cell flavour so that the relative numbers of the paper's
    Table 2 are reproducible: static complementary gates cost two
    transistors per literal; footed domino gates cost one transistor per
    literal plus precharge, foot and keeper devices and are faster than
    static gates of the same fan-in; C-elements and set-dominant
    generalized-C elements carry their keeper cost. *)

type func =
  | And
  | Or
  | Nand
  | Nor
  | Not
  | Buf
  | Xor
  | Celem  (** state-holding: out 1 when all inputs 1, 0 when all 0, else hold *)
  | Set_reset
      (** inputs [set; reset]: out 1 when [set], 0 when [reset] and not
          [set] (set-dominant), else hold *)
  | Sop of int list
      (** atomic sum-of-products complex gate: the list gives the cube
          sizes; inputs are the cubes' literals in order.  Atomicity is
          what makes complex-gate implementations speed-independent. *)
  | Sop_sr of { set_cubes : int list; reset_cubes : int list }
      (** atomic generalized-C element: a set SOP and a reset SOP feeding
          a keeper, set-dominant.  Inputs: set literals then reset
          literals, cube by cube. *)

type style =
  | Static
  | Domino of { footed : bool }
      (** precharged pulldown evaluation; unfooted variants save the foot
          transistor but need a timing assumption on their inputs
          (Figure 6) *)

type t = { func : func; style : style; fanin : int }

val make : ?style:style -> func -> fanin:int -> t
(** Raises [Invalid_argument] for nonsensical combinations (e.g. [Not]
    with fan-in 2, [Set_reset] with fan-in other than 2). *)

val eval : t -> current:bool -> bool list -> bool
(** Combinational/next value given input values ([current] matters only
    for the state-holding functions). *)

val eval_arr : t -> current:bool -> bool array -> n:int -> bool
(** Same as {!eval}, reading the first [n] elements of a caller-owned
    scratch array — no allocation, for the simulator's inner loop.
    [n] must equal the gate's fan-in. *)

val transistors : t -> int
val delay_ps : t -> float
(** Nominal propagation delay. *)

val energy_fj : t -> float
(** Switching energy per output transition, femtojoules. *)

val is_state_holding : t -> bool
val pp : Format.formatter -> t -> unit
