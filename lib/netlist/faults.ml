type fault = { net : Netlist.net; stuck_at : bool }

let all_faults nl =
  List.concat_map
    (fun net -> [ { net; stuck_at = false }; { net; stuck_at = true } ])
    (List.init (Netlist.num_nets nl) Fun.id)

let observable_trace ?fault ~stimulus ~horizon nl =
  let forced = match fault with None -> [] | Some f -> [ (f.net, f.stuck_at) ] in
  let sim = Sim.create ~forced nl in
  match
    stimulus sim;
    Sim.run sim ~until:horizon
  with
  | () -> Some (List.map (fun (_, net, v) -> (net, v)) (Sim.trace sim))
  | exception Sim.Oscillation _ -> None

type report = {
  total : int;
  detected : int;
  coverage : float;
  undetected : fault list;
}

let coverage ~stimulus ~horizon nl =
  let golden =
    match observable_trace ~stimulus ~horizon nl with
    | Some tr -> tr
    | None -> invalid_arg "Faults.coverage: golden run oscillates"
  in
  let faults = all_faults nl in
  let detected, undetected =
    List.partition
      (fun f ->
        match observable_trace ~fault:f ~stimulus ~horizon nl with
        | None -> true (* oscillation is observably wrong *)
        | Some tr -> tr <> golden)
      faults
  in
  let total = List.length faults in
  {
    total;
    detected = List.length detected;
    coverage = 100.0 *. float_of_int (List.length detected) /. float_of_int (max 1 total);
    undetected;
  }

let pp_fault nl ppf f =
  Format.fprintf ppf "%s/%d" (Netlist.net_name nl f.net) (if f.stuck_at then 1 else 0)

let pp_report nl ppf r =
  Format.fprintf ppf "%d/%d detected (%.1f%%)" r.detected r.total r.coverage;
  if r.undetected <> [] then begin
    Format.fprintf ppf "; undetected:";
    List.iter (fun f -> Format.fprintf ppf " %a" (pp_fault nl) f) r.undetected
  end
