(** Stuck-at fault simulation and testability analysis.

    The fault universe is every net (gate outputs and primary inputs)
    stuck at 0 and stuck at 1.  A test is a {e stimulus}: a function that
    installs an environment (drives and callbacks) on a fresh simulator.
    A fault is detected when the faulty machine's observable trace — the
    sequence of transitions on output-marked nets — differs from the
    golden trace within the horizon, or when the faulty machine
    oscillates. *)

type fault = { net : Netlist.net; stuck_at : bool }

val all_faults : Netlist.t -> fault list

val observable_trace :
  ?fault:fault ->
  stimulus:(Sim.t -> unit) ->
  horizon:float ->
  Netlist.t ->
  (Netlist.net * bool) list option
(** Run to the horizon and project the trace on output nets (times
    dropped: handshake tests are delay-insensitive).  [None] when the
    simulation oscillated. *)

type report = {
  total : int;
  detected : int;
  coverage : float;  (** detected / total, in percent *)
  undetected : fault list;
}

val coverage :
  stimulus:(Sim.t -> unit) -> horizon:float -> Netlist.t -> report

val pp_fault : Netlist.t -> Format.formatter -> fault -> unit
val pp_report : Netlist.t -> Format.formatter -> report -> unit
