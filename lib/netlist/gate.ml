type func =
  | And
  | Or
  | Nand
  | Nor
  | Not
  | Buf
  | Xor
  | Celem
  | Set_reset
  | Sop of int list
  | Sop_sr of { set_cubes : int list; reset_cubes : int list }

type style = Static | Domino of { footed : bool }
type t = { func : func; style : style; fanin : int }

let sum = List.fold_left ( + ) 0

let make ?(style = Static) func ~fanin =
  (match func with
  | Not | Buf -> if fanin <> 1 then invalid_arg "Gate.make: unary gate fan-in"
  | Set_reset -> if fanin <> 2 then invalid_arg "Gate.make: set/reset takes 2 inputs"
  | Xor -> if fanin <> 2 then invalid_arg "Gate.make: xor fan-in"
  | And | Or | Nand | Nor | Celem ->
    if fanin < 2 then invalid_arg "Gate.make: fan-in must be >= 2"
  | Sop cubes ->
    if cubes = [] || List.exists (fun c -> c < 1) cubes || sum cubes <> fanin then
      invalid_arg "Gate.make: bad SOP shape"
  | Sop_sr { set_cubes; reset_cubes } ->
    if
      set_cubes = [] || reset_cubes = []
      || List.exists (fun c -> c < 1) (set_cubes @ reset_cubes)
      || sum set_cubes + sum reset_cubes <> fanin
    then invalid_arg "Gate.make: bad gC shape");
  (match (func, style) with
  | (Celem | Set_reset | Xor), Domino _ ->
    invalid_arg "Gate.make: state-holding/xor gates are static"
  | ( (And | Or | Nand | Nor | Not | Buf | Celem | Set_reset | Xor | Sop _ | Sop_sr _),
      (Static | Domino _) ) -> ());
  { func; style; fanin }

let split_at k l =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> go (k - 1) (x :: acc) rest
    | [] -> invalid_arg "Gate.eval: arity"
  in
  go k [] l

(* Evaluate an SOP over a flat literal list given cube sizes. *)
let rec eval_sop cubes inputs =
  match cubes with
  | [] -> false
  | c :: rest ->
    let cube_ins, remainder = split_at c inputs in
    List.for_all Fun.id cube_ins || eval_sop rest remainder

let eval g ~current inputs =
  if List.length inputs <> g.fanin then invalid_arg "Gate.eval: arity";
  match g.func with
  | And -> List.for_all Fun.id inputs
  | Or -> List.exists Fun.id inputs
  | Nand -> not (List.for_all Fun.id inputs)
  | Nor -> not (List.exists Fun.id inputs)
  | Not -> not (List.nth inputs 0)
  | Buf -> List.nth inputs 0
  | Xor -> List.nth inputs 0 <> List.nth inputs 1
  | Celem ->
    if List.for_all Fun.id inputs then true
    else if List.for_all not inputs then false
    else current
  | Set_reset -> (
    match inputs with
    | [ set; reset ] -> set || (current && not reset)
    | _ -> assert false)
  | Sop cubes -> eval_sop cubes inputs
  | Sop_sr { set_cubes; reset_cubes } ->
    let set_ins, reset_ins = split_at (sum set_cubes) inputs in
    let s = eval_sop set_cubes set_ins and r = eval_sop reset_cubes reset_ins in
    s || (current && not r)

(* Array variant of {!eval} for the simulator's hot loop: input values
   live in a caller-owned scratch prefix [a.(0 .. n-1)], so evaluation
   allocates nothing.  Helpers are top-level so the recursion compiles to
   direct calls instead of per-call closures. *)
let rec arr_all a i j = i >= j || (Array.unsafe_get a i && arr_all a (i + 1) j)
let rec arr_any a i j = i < j && (Array.unsafe_get a i || arr_any a (i + 1) j)

let rec eval_sop_arr cubes a off =
  match cubes with
  | [] -> false
  | c :: rest -> arr_all a off (off + c) || eval_sop_arr rest a (off + c)

let eval_arr g ~current a ~n =
  if n <> g.fanin then invalid_arg "Gate.eval: arity";
  match g.func with
  | And -> arr_all a 0 n
  | Or -> arr_any a 0 n
  | Nand -> not (arr_all a 0 n)
  | Nor -> not (arr_any a 0 n)
  | Not -> not (Array.unsafe_get a 0)
  | Buf -> Array.unsafe_get a 0
  | Xor -> Array.unsafe_get a 0 <> Array.unsafe_get a 1
  | Celem ->
    if arr_all a 0 n then true else if not (arr_any a 0 n) then false else current
  | Set_reset -> a.(0) || (current && not a.(1))
  | Sop cubes -> eval_sop_arr cubes a 0
  | Sop_sr { set_cubes; reset_cubes } ->
    let s = eval_sop_arr set_cubes a 0
    and r = eval_sop_arr reset_cubes a (sum set_cubes) in
    s || (current && not r)

(* Transistor counts: static complementary = 2 per literal; domino =
   pulldown stack (1/literal) + precharge + keeper pair + output inverter,
   plus the foot transistor when footed; C-element = classic 8-transistor
   (2-input) plus 2 per extra input; set/reset latch = 6; XOR = 8; an
   atomic gC pays both networks plus its keeper. *)
let transistors g =
  match g.func with
  | And | Or | Nand | Nor | Sop _ -> (
    match g.style with
    | Static -> 2 * g.fanin
    | Domino { footed } -> g.fanin + 5 + (if footed then 1 else 0))
  | Not -> 2
  | Buf -> 4
  | Xor -> 8
  | Celem -> 8 + (2 * (g.fanin - 2))
  | Set_reset -> 6
  | Sop_sr _ -> (
    match g.style with
    | Static -> (2 * g.fanin) + 4
    | Domino { footed } -> g.fanin + 7 + (if footed then 1 else 0))

(* Delays (ps, nominal 0.25u-class): domino evaluation is fast; static
   gates slow down with fan-in; state-holding elements are the slowest. *)
let delay_ps g =
  match g.style with
  | Domino { footed } ->
    60.0 +. (15.0 *. float_of_int g.fanin) +. (if footed then 10.0 else 0.0)
  | Static -> (
    match g.func with
    | Not -> 45.0
    | Buf -> 70.0
    | And | Or | Nand | Nor -> 60.0 +. (30.0 *. float_of_int g.fanin)
    | Sop _ -> 80.0 +. (30.0 *. float_of_int g.fanin)
    | Xor -> 140.0
    | Celem -> 120.0 +. (40.0 *. float_of_int g.fanin)
    | Set_reset -> 150.0
    | Sop_sr _ -> 110.0 +. (35.0 *. float_of_int g.fanin))

(* Switching energy per output transition (fJ), proportional to the
   switched capacitance which we approximate by transistor count plus a
   fixed wire/load term.  Domino gates swing smaller internal nodes and
   cost proportionally less per device. *)
let energy_fj g =
  match g.style with
  | Static -> 900.0 +. (480.0 *. float_of_int (transistors g))
  | Domino _ -> 500.0 +. (260.0 *. float_of_int (transistors g))

let is_state_holding g =
  match g.func with Celem | Set_reset | Sop_sr _ -> true | _ -> false

let pp ppf g =
  let f =
    match g.func with
    | And -> "and"
    | Or -> "or"
    | Nand -> "nand"
    | Nor -> "nor"
    | Not -> "not"
    | Buf -> "buf"
    | Xor -> "xor"
    | Celem -> "c"
    | Set_reset -> "sr"
    | Sop cubes ->
      Printf.sprintf "sop[%s]" (String.concat "," (List.map string_of_int cubes))
    | Sop_sr { set_cubes; reset_cubes } ->
      Printf.sprintf "gc[%s;%s]"
        (String.concat "," (List.map string_of_int set_cubes))
        (String.concat "," (List.map string_of_int reset_cubes))
  in
  let s =
    match g.style with
    | Static -> ""
    | Domino { footed = true } -> "/domino"
    | Domino { footed = false } -> "/domino-unfooted"
  in
  Format.fprintf ppf "%s%d%s" f g.fanin s
