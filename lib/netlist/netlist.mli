(** Gate-level netlists.

    A netlist is a set of named nets driven either by a primary input or by
    exactly one gate instance.  Gate inputs carry an optional polarity
    bubble ([(net, true)] reads the complement) — in the CMOS styles
    modelled here the polarity of a literal inside a series stack is free,
    so bubbles cost no transistors.  Feedback loops are built by declaring
    a {!forward} net first and attaching its driver later.

    Construction is imperative through a builder handle; the finished
    netlist is queried functionally. *)

type t
type net = int

val create : unit -> t

val input : t -> string -> net
(** Declare a primary input net. *)

val forward : t -> string -> net
(** Declare a net whose driver will be attached later with {!set_driver}
    (for feedback).  A forward net without a driver behaves like an
    input. *)

val add_gate : t -> Gate.t -> (net * bool) list -> string -> net
(** [add_gate nl gate inputs name] adds a gate instance driving a fresh
    net called [name]; each input is [(net, negated)].  Raises
    [Invalid_argument] on arity mismatch or duplicate net name. *)

val set_driver : t -> net -> Gate.t -> (net * bool) list -> unit
(** Attach the driver of a {!forward} net.  Raises [Invalid_argument] if
    the net already has a driver or is a declared input. *)

val mark_output : t -> net -> unit
(** Flag a net as a primary output (observable). *)

val num_nets : t -> int
val net_name : t -> net -> string
val find_net : t -> string -> net
(** Raises [Not_found]. *)

val is_input : t -> net -> bool
(** True for declared inputs (not for driven forward nets). *)

val inputs : t -> net list
val outputs : t -> net list

val driver : t -> net -> (Gate.t * (net * bool) list) option
(** The gate driving a net and its (possibly negated) input nets; [None]
    for primary inputs and undriven forward nets. *)

val fanout : t -> net -> net list
(** Nets driven by gates that read the given net. *)

val gates : t -> (net * Gate.t * (net * bool) list) list
(** All gate instances as [(output, gate, inputs)]. *)

val transistors : t -> int
(** Total transistor count. *)

val gate_count : t -> int

val initial_value : t -> net -> bool
val set_initial : t -> net -> bool -> unit
(** Initial value of a net at power-up (default [false]). *)

val settle_initial : ?frozen:net list -> t -> unit
(** Propagate initial values through the gates (bounded fixpoint) so that
    a simulation starts from a consistent quiescent state.  State-holding
    gates keep their assigned initial value when their inputs are
    neutral.  Nets in [frozen] keep their assigned initial value even if
    their driver disagrees — synthesis pins specification signals this
    way, because a specification whose initial marking enables an output
    transition would otherwise be "settled" past its own reset state
    (the disagreeing gate simply fires right after power-up). *)

val pp : Format.formatter -> t -> unit

val copy : t -> t
(** An independent deep copy (same nets, gates, outputs, initial values):
    the copy can be extended — e.g. with test points — without touching
    the original. *)

val instantiate :
  t -> prefix:string -> bind:(string -> net option) -> t -> (string -> net)
(** [instantiate dst ~prefix ~bind cell] copies every gate of [cell] into
    [dst].  For each of [cell]'s nets, [bind name] may map it onto an
    existing net of [dst] (an interface connection — for a net driven
    inside [cell] the target must be an undriven {!forward} net); unbound
    nets are created fresh as [prefix ^ name].  Initial values of fresh
    nets are copied.  Returns a lookup from [cell] net names to the
    corresponding [dst] nets.  Output marks are {e not} propagated (mark
    the composite's observables explicitly). *)
