type net = int

type slot = {
  name : string;
  mutable driver : (Gate.t * (net * bool) list) option;
  mutable declared_input : bool;
  mutable is_output : bool;
  mutable initial : bool;
  mutable fanout : net list; (* reversed *)
}

type t = {
  mutable slots : slot array;
  mutable count : int;
  by_name : (string, net) Hashtbl.t;
}

let create () = { slots = [||]; count = 0; by_name = Hashtbl.create 32 }

let fresh nl name =
  if Hashtbl.mem nl.by_name name then
    invalid_arg (Printf.sprintf "Netlist: duplicate net %s" name);
  if nl.count >= Array.length nl.slots then begin
    let cap = max 16 (2 * Array.length nl.slots) in
    let slots =
      Array.init cap (fun i ->
          if i < nl.count then nl.slots.(i)
          else
            {
              name = "";
              driver = None;
              declared_input = false;
              is_output = false;
              initial = false;
              fanout = [];
            })
    in
    nl.slots <- slots
  end;
  let id = nl.count in
  nl.count <- id + 1;
  nl.slots.(id) <-
    {
      name;
      driver = None;
      declared_input = false;
      is_output = false;
      initial = false;
      fanout = [];
    };
  Hashtbl.add nl.by_name name id;
  id

let input nl name =
  let id = fresh nl name in
  nl.slots.(id).declared_input <- true;
  id

let forward nl name = fresh nl name

let attach nl out gate ins =
  if List.length ins <> gate.Gate.fanin then invalid_arg "Netlist: gate arity";
  List.iter
    (fun (n, _) -> if n < 0 || n >= nl.count then invalid_arg "Netlist: bad input net")
    ins;
  nl.slots.(out).driver <- Some (gate, ins);
  List.iter (fun (n, _) -> nl.slots.(n).fanout <- out :: nl.slots.(n).fanout) ins

let add_gate nl gate ins name =
  let out = fresh nl name in
  attach nl out gate ins;
  out

let set_driver nl out gate ins =
  if nl.slots.(out).declared_input then invalid_arg "Netlist.set_driver: net is an input";
  if nl.slots.(out).driver <> None then
    invalid_arg "Netlist.set_driver: net already driven";
  attach nl out gate ins

let mark_output nl n = nl.slots.(n).is_output <- true
let num_nets nl = nl.count
let net_name nl n = nl.slots.(n).name
let find_net nl name = Hashtbl.find nl.by_name name
let is_input nl n = nl.slots.(n).declared_input

let inputs nl = List.filter (fun n -> is_input nl n) (List.init nl.count Fun.id)
let outputs nl = List.filter (fun n -> nl.slots.(n).is_output) (List.init nl.count Fun.id)
let driver nl n = nl.slots.(n).driver
let fanout nl n = List.rev nl.slots.(n).fanout

let gates nl =
  List.filter_map
    (fun n ->
      match nl.slots.(n).driver with
      | Some (g, ins) -> Some (n, g, ins)
      | None -> None)
    (List.init nl.count Fun.id)

let transistors nl =
  List.fold_left (fun acc (_, g, _) -> acc + Gate.transistors g) 0 (gates nl)

let gate_count nl = List.length (gates nl)
let initial_value nl n = nl.slots.(n).initial
let set_initial nl n v = nl.slots.(n).initial <- v

let settle_initial ?(frozen = []) nl =
  let instances =
    List.filter (fun (out, _, _) -> not (List.mem out frozen)) (gates nl)
  in
  let pass () =
    List.fold_left
      (fun changed (out, g, ins) ->
        let values = List.map (fun (n, neg) -> nl.slots.(n).initial <> neg) ins in
        let v = Gate.eval g ~current:nl.slots.(out).initial values in
        if v <> nl.slots.(out).initial then begin
          nl.slots.(out).initial <- v;
          true
        end
        else changed)
      false instances
  in
  let rec go k = if k > 0 && pass () then go (k - 1) in
  go (2 * List.length instances)

let pp ppf nl =
  Format.fprintf ppf "@[<v>netlist: %d nets, %d gates, %d transistors@," nl.count
    (gate_count nl) (transistors nl);
  List.iter
    (fun (out, g, ins) ->
      Format.fprintf ppf "  %s = %a(%s)%s@," (net_name nl out) Gate.pp g
        (String.concat ", "
           (List.map (fun (n, neg) -> net_name nl n ^ if neg then "'" else "") ins))
        (if nl.slots.(out).is_output then " [out]" else ""))
    (gates nl);
  Format.fprintf ppf "  inputs: %s@]"
    (String.concat " " (List.map (net_name nl) (inputs nl)))

let copy nl =
  let fresh = create () in
  (* Recreate every net in index order so identifiers are preserved. *)
  for n = 0 to num_nets nl - 1 do
    let id =
      if is_input nl n then input fresh (net_name nl n) else forward fresh (net_name nl n)
    in
    assert (id = n)
  done;
  List.iter (fun (out, g, ins) -> set_driver fresh out g ins) (gates nl);
  List.iter (fun o -> mark_output fresh o) (outputs nl);
  for n = 0 to num_nets nl - 1 do
    set_initial fresh n (initial_value nl n)
  done;
  fresh

let instantiate dst ~prefix ~bind cell =
  let map = Array.make (num_nets cell) (-1) in
  for n = 0 to num_nets cell - 1 do
    let name = net_name cell n in
    match bind name with
    | Some target -> map.(n) <- target
    | None ->
      let fresh_name = prefix ^ name in
      let id =
        if is_input cell n then input dst fresh_name else forward dst fresh_name
      in
      set_initial dst id (initial_value cell n);
      map.(n) <- id
  done;
  List.iter
    (fun (out, g, ins) ->
      set_driver dst map.(out) g (List.map (fun (i, neg) -> (map.(i), neg)) ins))
    (gates cell);
  fun name -> map.(find_net cell name)
