module Heap = Rtcad_util.Heap

exception Oscillation of string

type pending = { target : bool; gen : int; cause : int option }

type event = {
  id : int;
  net : Netlist.net;
  value : bool;
  at : float;
  cause : int option; (* id of the event whose commit scheduled this one *)
}

type t = {
  nl : Netlist.t;
  delay : Netlist.net -> Gate.t -> float;
  values : bool array;
  forced : bool array; (* net is stuck *)
  is_output : bool array;
  pending : pending option array;
  gen_counter : int ref;
  queue : (int * bool * int * int option) Heap.t;
  (* key: time_fs; value: net, target, gen, direct-event cause *)
  mutable now_fs : int;
  transitions : int array;
  mutable glitch_count : int;
  mutable energy : float; (* pJ *)
  callbacks : (t -> bool -> unit) list array;
  mutable trace_rev : (float * Netlist.net * bool) list;
  mutable events_rev : event list;
  mutable next_event_id : int;
}

let fs_of_ps ps = int_of_float (ps *. 1000.0 +. 0.5)
let ps_of_fs fs = float_of_int fs /. 1000.0

let netlist t = t.nl
let time t = ps_of_fs t.now_fs
let value t net = t.values.(net)

let schedule ?cause t net target ~at_fs =
  if not t.forced.(net) then begin
    match t.pending.(net) with
    | Some p when p.target = target -> ()
    | Some _ | None ->
      if target <> t.values.(net) then begin
        incr t.gen_counter;
        let gen = !(t.gen_counter) in
        (match t.pending.(net) with
        | Some _ -> t.glitch_count <- t.glitch_count + 1
        | None -> ());
        t.pending.(net) <- Some { target; gen; cause };
        Heap.push t.queue at_fs (net, target, gen, None)
      end
      else begin
        (* Re-evaluation back to the committed value cancels the pending
           contrary event: an inertial glitch. *)
        match t.pending.(net) with
        | Some _ ->
          t.pending.(net) <- None;
          t.glitch_count <- t.glitch_count + 1
        | None -> ()
      end
  end

let eval_gate t out =
  match Netlist.driver t.nl out with
  | None -> t.values.(out)
  | Some (g, ins) ->
    Gate.eval g ~current:t.values.(out) (List.map (fun (i, neg) -> t.values.(i) <> neg) ins)

let create ?(delay = fun _ g -> Gate.delay_ps g) ?(forced = []) nl =
  let n = Netlist.num_nets nl in
  let is_output = Array.make n false in
  List.iter (fun o -> is_output.(o) <- true) (Netlist.outputs nl);
  let t =
    {
      nl;
      delay;
      values = Array.init n (Netlist.initial_value nl);
      forced = Array.make n false;
      is_output;
      pending = Array.make n None;
      gen_counter = ref 0;
      queue = Heap.create ();
      now_fs = 0;
      transitions = Array.make n 0;
      glitch_count = 0;
      energy = 0.0;
      callbacks = Array.make n [];
      trace_rev = [];
      events_rev = [];
      next_event_id = 0;
    }
  in
  List.iter
    (fun (net, v) ->
      t.forced.(net) <- true;
      t.values.(net) <- v)
    forced;
  (* Kick: schedule any gate whose evaluation disagrees with its initial
     value so that [settle] resolves inconsistent power-up states. *)
  List.iter
    (fun (out, g, _) ->
      let target = eval_gate t out in
      if target <> t.values.(out) then
        schedule t out target ~at_fs:(fs_of_ps (delay out g)))
    (Netlist.gates nl);
  t


let react t net ~cause =
  (* Re-evaluate every gate reading [net]. *)
  List.iter
    (fun out ->
      match Netlist.driver t.nl out with
      | None -> ()
      | Some (g, _) ->
        let target = eval_gate t out in
        schedule ?cause t out target ~at_fs:(t.now_fs + fs_of_ps (t.delay out g)))
    (Netlist.fanout t.nl net)

let commit t net v ~cause =
  t.values.(net) <- v;
  t.transitions.(net) <- t.transitions.(net) + 1;
  (match Netlist.driver t.nl net with
  | Some (g, _) -> t.energy <- t.energy +. (Gate.energy_fj g /. 1000.0)
  | None -> ());
  if t.is_output.(net) then t.trace_rev <- (time t, net, v) :: t.trace_rev;
  let id = t.next_event_id in
  t.next_event_id <- id + 1;
  t.events_rev <- { id; net; value = v; at = time t; cause } :: t.events_rev;
  react t net ~cause:(Some id);
  List.iter (fun f -> f t v) t.callbacks.(net)

(* Input drives bypass the inertial pending slot: a queued pulse train
   (several future edges on the same net) must not cancel itself.  The
   sentinel generation -1 marks such direct events. *)
let drive ?cause t net v ~after =
  if not (Netlist.is_input t.nl net) then invalid_arg "Sim.drive: not a primary input";
  if not t.forced.(net) then
    Heap.push t.queue (t.now_fs + fs_of_ps after) (net, v, -1, cause)

let last_event t = match t.events_rev with [] -> None | e :: _ -> Some e

let on_change t net f = t.callbacks.(net) <- t.callbacks.(net) @ [ f ]

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at_fs, (net, target, gen, direct_cause)) ->
    t.now_fs <- max t.now_fs at_fs;
    (if gen = -1 then begin
       if t.values.(net) <> target then commit t net target ~cause:direct_cause
     end
     else
       match t.pending.(net) with
       | Some p when p.gen = gen ->
         t.pending.(net) <- None;
         if t.values.(net) <> target then commit t net target ~cause:p.cause
       | Some _ | None -> () (* cancelled or superseded *));
    true

let run ?(max_events = 2_000_000) t ~until =
  let until_fs = fs_of_ps until in
  let budget = ref max_events in
  let rec go () =
    match Heap.peek_key t.queue with
    | Some k when k <= until_fs ->
      if !budget <= 0 then raise (Oscillation "event budget exhausted");
      decr budget;
      ignore (step t);
      go ()
    | Some _ | None -> t.now_fs <- max t.now_fs until_fs
  in
  go ()

let settle ?(max_events = 2_000_000) t () =
  let budget = ref max_events in
  let rec go () =
    if not (Heap.is_empty t.queue) then begin
      if !budget <= 0 then raise (Oscillation "event budget exhausted");
      decr budget;
      ignore (step t);
      go ()
    end
  in
  go ()

let transition_count t net = t.transitions.(net)
let total_transitions t = Array.fold_left ( + ) 0 t.transitions
let glitches t = t.glitch_count
let energy_pj t = t.energy
let trace t = List.rev t.trace_rev

let events t = List.rev t.events_rev
