module Iheap = Rtcad_util.Iheap
module Vec = Rtcad_util.Vec
module Obs = Rtcad_obs.Obs
module Vcd = Rtcad_obs.Vcd

exception Oscillation of string

type event = {
  id : int;
  net : Netlist.net;
  value : bool;
  at : float;
  cause : int option; (* id of the event whose commit scheduled this one *)
}

(* The steady-state event loop allocates nothing: the netlist structure
   (per-gate input pins, per-net fanout) is flattened into int arrays at
   creation, gate inputs are gathered into a reusable scratch buffer,
   delays and energies are precomputed per net, and queue entries are
   single ints.

   Queue payload layout: bit 0 = direct-drive flag, bit 1 = target value,
   bits 2-23 = net, bits 24+ = generation (scheduled events) or
   cause + 1 (direct drives, 0 = none).

   Pending (inertial) state per net: [pending_gen.(net)] is the
   generation of the outstanding event (0 = none) and [pending_info]
   packs [(cause + 1) lsl 1 lor target]. *)
type t = {
  nl : Netlist.t;
  values : bool array;
  forced : bool array; (* net is stuck *)
  is_output : bool array;
  gate_of : Gate.t array; (* per driven net; arbitrary gate elsewhere *)
  pins : int array array; (* per driven net: (input net lsl 1) lor negated *)
  fanout : int array array; (* per net: driven nets reading it *)
  delay_fs : int array; (* per driven net: gate delay, memoized *)
  energy_pj_of : float array; (* per net: driver energy per transition *)
  scratch : bool array; (* gate-input gather buffer, max fan-in wide *)
  pending_gen : int array;
  pending_info : int array;
  mutable gen_counter : int;
  queue : Iheap.t;
  mutable now_fs : int;
  transitions : int array;
  mutable glitch_count : int;
  energy : float array; (* pJ; 1-cell array keeps the float unboxed *)
  callbacks : (t -> bool -> unit) list array; (* reversed registration order *)
  tr_word : int Vec.t; (* trace: (net lsl 1) lor value *)
  tr_at : int Vec.t; (* trace: commit time, fs *)
  ev_word : int Vec.t; (* events: (net lsl 1) lor value *)
  ev_at : int Vec.t;
  ev_cause : int Vec.t; (* cause + 1, 0 = none *)
}

let fs_of_ps ps = int_of_float (Float.round (ps *. 1000.0))
let ps_of_fs fs = float_of_int fs /. 1000.0

let netlist t = t.nl
let time t = ps_of_fs t.now_fs
let value t net = t.values.(net)

let payload ~direct ~target ~net ~extra =
  (extra lsl 24) lor (net lsl 2)
  lor ((if target then 1 else 0) lsl 1)
  lor (if direct then 1 else 0)

let schedule t net target ~cause ~at_fs =
  if not (Array.unsafe_get t.forced net) then begin
    let pgen = Array.unsafe_get t.pending_gen net in
    if pgen <> 0 && Array.unsafe_get t.pending_info net land 1 = (if target then 1 else 0)
    then () (* same target already pending *)
    else if target <> Array.unsafe_get t.values net then begin
      let gen = t.gen_counter + 1 in
      t.gen_counter <- gen;
      if pgen <> 0 then t.glitch_count <- t.glitch_count + 1;
      Array.unsafe_set t.pending_gen net gen;
      Array.unsafe_set t.pending_info net
        (((cause + 1) lsl 1) lor if target then 1 else 0);
      Iheap.push t.queue at_fs (payload ~direct:false ~target ~net ~extra:gen)
    end
    else if pgen <> 0 then begin
      (* Re-evaluation back to the committed value cancels the pending
         contrary event: an inertial glitch. *)
      Array.unsafe_set t.pending_gen net 0;
      t.glitch_count <- t.glitch_count + 1
    end
  end

let eval_gate t out =
  let pins = t.pins.(out) in
  let n = Array.length pins in
  if n = 0 then t.values.(out) (* undriven *)
  else begin
    let s = t.scratch in
    for k = 0 to n - 1 do
      let p = Array.unsafe_get pins k in
      Array.unsafe_set s k (Array.unsafe_get t.values (p lsr 1) <> (p land 1 = 1))
    done;
    Gate.eval_arr (Array.unsafe_get t.gate_of out) ~current:(Array.unsafe_get t.values out) s ~n
  end

let react t net ~cause =
  (* Re-evaluate every gate reading [net]. *)
  let fo = t.fanout.(net) in
  for k = 0 to Array.length fo - 1 do
    let out = Array.unsafe_get fo k in
    let target = eval_gate t out in
    schedule t out target ~cause ~at_fs:(t.now_fs + Array.unsafe_get t.delay_fs out)
  done

(* Callbacks are stored in reverse registration order (cons on register,
   so {!on_change} is O(1)); firing recurses to the tail first to call
   them in registration order. *)
let rec fire_callbacks t v = function
  | [] -> ()
  | f :: rest ->
    fire_callbacks t v rest;
    f t v

(* Change-only is enforced HERE, not at call sites: observers (and the
   VCD writer built on them) rely on one notification per actual value
   change, so the guard lives at the single point every path funnels
   through rather than being re-implemented by each caller. *)
let commit t net v ~cause =
  if t.values.(net) <> v then begin
    t.values.(net) <- v;
    t.transitions.(net) <- t.transitions.(net) + 1;
    t.energy.(0) <- t.energy.(0) +. Array.unsafe_get t.energy_pj_of net;
    if t.is_output.(net) then begin
      Vec.push t.tr_word ((net lsl 1) lor if v then 1 else 0);
      Vec.push t.tr_at t.now_fs
    end;
    let id = Vec.length t.ev_word in
    Vec.push t.ev_word ((net lsl 1) lor if v then 1 else 0);
    Vec.push t.ev_at t.now_fs;
    Vec.push t.ev_cause (cause + 1);
    react t net ~cause:id;
    fire_callbacks t v t.callbacks.(net)
  end

let create ?(delay = fun _ g -> Gate.delay_ps g) ?(forced = []) nl =
  let n = Netlist.num_nets nl in
  if n > 0x3fffff then invalid_arg "Sim.create: too many nets";
  let is_output = Array.make n false in
  List.iter (fun o -> is_output.(o) <- true) (Netlist.outputs nl);
  let dummy_gate = Gate.make Gate.Buf ~fanin:1 in
  let gate_of = Array.make n dummy_gate in
  let pins = Array.make n [||] in
  let delay_fs = Array.make n 0 in
  let energy_pj_of = Array.make n 0.0 in
  let max_fanin = ref 1 in
  List.iter
    (fun (out, g, ins) ->
      gate_of.(out) <- g;
      pins.(out) <-
        Array.of_list
          (List.map (fun (i, neg) -> (i lsl 1) lor if neg then 1 else 0) ins);
      if Array.length pins.(out) > !max_fanin then max_fanin := Array.length pins.(out);
      delay_fs.(out) <- fs_of_ps (delay out g);
      energy_pj_of.(out) <- Gate.energy_fj g /. 1000.0)
    (Netlist.gates nl);
  let fanout = Array.init n (fun net -> Array.of_list (Netlist.fanout nl net)) in
  let t =
    {
      nl;
      values = Array.init n (Netlist.initial_value nl);
      forced = Array.make n false;
      is_output;
      gate_of;
      pins;
      fanout;
      delay_fs;
      energy_pj_of;
      scratch = Array.make !max_fanin false;
      pending_gen = Array.make n 0;
      pending_info = Array.make n 0;
      gen_counter = 0;
      queue = Iheap.create ();
      now_fs = 0;
      transitions = Array.make n 0;
      glitch_count = 0;
      energy = [| 0.0 |];
      callbacks = Array.make n [];
      tr_word = Vec.create ~dummy:0 ();
      tr_at = Vec.create ~dummy:0 ();
      ev_word = Vec.create ~dummy:0 ();
      ev_at = Vec.create ~dummy:0 ();
      ev_cause = Vec.create ~dummy:0 ();
    }
  in
  List.iter
    (fun (net, v) ->
      t.forced.(net) <- true;
      t.values.(net) <- v)
    forced;
  (* Kick: schedule any gate whose evaluation disagrees with its initial
     value so that [settle] resolves inconsistent power-up states. *)
  List.iter
    (fun (out, _, _) ->
      let target = eval_gate t out in
      if target <> t.values.(out) then
        schedule t out target ~cause:(-1) ~at_fs:delay_fs.(out))
    (Netlist.gates nl);
  t

(* Input drives bypass the inertial pending slot: a queued pulse train
   (several future edges on the same net) must not cancel itself.  The
   payload's direct bit marks such events. *)
let drive ?cause t net v ~after =
  if not (Netlist.is_input t.nl net) then invalid_arg "Sim.drive: not a primary input";
  if after < 0.0 then invalid_arg "Sim.drive: negative delay";
  if not t.forced.(net) then begin
    let c = match cause with None -> -1 | Some c -> c in
    Iheap.push t.queue
      (t.now_fs + fs_of_ps after)
      (payload ~direct:true ~target:v ~net ~extra:(c + 1))
  end

let mk_event t i =
  let w = Vec.get t.ev_word i and c = Vec.get t.ev_cause i in
  {
    id = i;
    net = w lsr 1;
    value = w land 1 = 1;
    at = ps_of_fs (Vec.get t.ev_at i);
    cause = (if c = 0 then None else Some (c - 1));
  }

let last_event t =
  let n = Vec.length t.ev_word in
  if n = 0 then None else Some (mk_event t (n - 1))

let on_change t net f = t.callbacks.(net) <- f :: t.callbacks.(net)

(* VCD capture rides the ordinary observer mechanism: one callback per
   net, each emitting one change at the simulator's femtosecond clock.
   Because [commit] is change-only, the resulting stream is a legal
   change-only dump by construction, and a simulator with no writer
   attached pays nothing. *)
let attach_vcd t w =
  let n = Array.length t.values in
  for net = 0 to n - 1 do
    let s = Vcd.add_signal w ~initial:t.values.(net) (Netlist.net_name t.nl net) in
    on_change t net (fun t v -> Vcd.change w ~time:t.now_fs s v)
  done

let step t =
  if Iheap.is_empty t.queue then false
  else begin
    let at_fs = Iheap.top_key t.queue and pl = Iheap.top_value t.queue in
    Iheap.drop_min t.queue;
    if at_fs > t.now_fs then t.now_fs <- at_fs;
    let net = (pl lsr 2) land 0x3fffff in
    let target = pl land 2 <> 0 in
    if pl land 1 = 1 then commit t net target ~cause:((pl lsr 24) - 1)
    else begin
      let gen = pl lsr 24 in
      if t.pending_gen.(net) = gen then begin
        t.pending_gen.(net) <- 0;
        commit t net target ~cause:((t.pending_info.(net) lsr 1) - 1)
      end
      (* otherwise cancelled or superseded *)
    end;
    true
  end

(* Observability records at run granularity (deltas after the loop),
   never inside the event loop, so the kernel itself is untouched. *)
let record_run t ~events ~commits0 ~glitches0 ~depth0 =
  Obs.incr "netlist.sim.runs";
  Obs.incr ~by:events "netlist.sim.events";
  Obs.incr ~by:(Vec.length t.ev_word - commits0) "netlist.sim.transitions";
  Obs.incr ~by:(t.glitch_count - glitches0) "netlist.sim.glitches";
  Obs.observe "netlist.sim.queue_depth" (float_of_int depth0)

let run ?(max_events = 2_000_000) t ~until =
  let commits0 = Vec.length t.ev_word
  and glitches0 = t.glitch_count
  and depth0 = Iheap.length t.queue in
  let until_fs = fs_of_ps until in
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    if Iheap.is_empty t.queue || Iheap.top_key t.queue > until_fs then begin
      t.now_fs <- max t.now_fs until_fs;
      continue := false
    end
    else begin
      if !budget <= 0 then raise (Oscillation "event budget exhausted");
      decr budget;
      ignore (step t)
    end
  done;
  if Obs.enabled () then
    record_run t ~events:(max_events - !budget) ~commits0 ~glitches0 ~depth0

let settle ?(max_events = 2_000_000) t () =
  let commits0 = Vec.length t.ev_word
  and glitches0 = t.glitch_count
  and depth0 = Iheap.length t.queue in
  let budget = ref max_events in
  while not (Iheap.is_empty t.queue) do
    if !budget <= 0 then raise (Oscillation "event budget exhausted");
    decr budget;
    ignore (step t)
  done;
  if Obs.enabled () then
    record_run t ~events:(max_events - !budget) ~commits0 ~glitches0 ~depth0

let transition_count t net = t.transitions.(net)
let total_transitions t = Array.fold_left ( + ) 0 t.transitions
let glitches t = t.glitch_count
let energy_pj t = t.energy.(0)

let trace t =
  let rec go i acc =
    if i < 0 then acc
    else
      let w = Vec.get t.tr_word i in
      go (i - 1) ((ps_of_fs (Vec.get t.tr_at i), w lsr 1, w land 1 = 1) :: acc)
  in
  go (Vec.length t.tr_word - 1) []

let events t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (mk_event t i :: acc) in
  go (Vec.length t.ev_word - 1) []
