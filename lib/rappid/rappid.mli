(** Performance/energy/area model of the RAPPID asynchronous instruction
    length decode and steering unit (Figure 1 of the paper).

    The model is an instruction-level dataflow recurrence over the three
    interacting self-timed cycles the paper describes:

    - the {e length-decoding cycle}: sixteen per-byte-column decoders
      speculatively compute lengths as soon as their line is latched,
      faster for common instructions;
    - the {e tag cycle}: a tag hops from each instruction's first byte to
      the next, waiting for the instruction to be ready; its latency
      depends on the (common vs uncommon) length;
    - the {e steering cycle}: a tagged instruction is steered over the
      crossbar into one of four output-buffer rows, each row recovering at
      its own rate.

    Performance is therefore {e average-case}: short common instructions
    stream at the tag cycle's best rate, long ones wait on decode or line
    fetch — reproducing the paper's 2.5–4.5 instructions/ns spread and
    the ≈3.6 GHz / 900 MHz / 700 MHz cycle frequencies. *)

type params = {
  columns : int;  (** bytes per cache line (16) *)
  rows : int;  (** output buffer rows / issue width (4) *)
  line_buffer_depth : int;  (** lines in flight in the byte latches (2) *)
  line_fetch_ps : float;  (** input FIFO inter-line supply interval *)
  latch_ps : float;  (** byte-latch reload after a line is consumed *)
  decode_common_ps : float;  (** length decode, common instruction *)
  decode_uncommon_ps : float;
  common_length : int;  (** lengths [<=] this are "common" *)
  tag_common_ps : float;  (** tag hop for common lengths *)
  tag_uncommon_ps : float;
  steer_ps : float;  (** crossbar steering latency *)
  buffer_recover_ps : float;  (** output-buffer row recovery *)
  (* energy (pJ per operation) *)
  e_latch_pj : float;  (** per byte latched *)
  e_decode_pj : float;  (** per speculative length decode (16 per line!) *)
  e_tag_pj : float;
  e_steer_pj : float;
  e_buffer_pj : float;
}

val default : params
(** Calibrated to the paper's reported cycle rates. *)

type result = {
  instructions : int;
  lines : int;
  total_ps : float;
  gips : float;  (** instructions per ns *)
  lines_per_sec : float;
  avg_latency_ps : float;  (** line arrival of first byte -> issue *)
  worst_latency_ps : float;
  tag_rate_ghz : float;  (** average tag-cycle frequency *)
  decode_rate_ghz : float;
  steer_rate_ghz : float;  (** per-row steering-cycle frequency *)
  energy_pj : float;
  energy_per_instr_pj : float;
}

val zero_result : result
(** What a run over an empty stream returns: every field zero.  Callers
    that divide by throughput or latency must check [instructions]. *)

val run : ?params:params -> Workload.stream -> result
(** Fold one decoder over a materialized stream.  An empty stream
    yields {!zero_result} (it is not an error).  Implemented on the
    same incremental core as {!run_stream}, so the result is
    bit-identical to streaming the same seed. *)

(** {2 Streaming runs and the decoder farm}

    The same decoder recurrence folded over a {!Workload.cursor} in
    chunk-sized refills of one reused buffer: live state is
    O(columns + rows) — a circular window of [line_buffer_depth + 2]
    line slots plus scalar accumulators — so peak memory is independent
    of stream length.  Per-instruction latencies are recorded into a
    1-2-5 histogram ({!Obs.hist_bounds} ladder) during the fold and
    surface as p50/p95/p99 estimates.

    {!run_farm} fans [shards] independent decoder instances out over
    the {!Rtcad_par.Par} domain pool, each streaming its contiguous
    slice of the virtual instruction stream
    ({!Workload.shard_ranges}), and merges counts, energies and
    latency histograms in shard order.  Shard boundaries and the merge
    order depend only on [(instructions, shards)], and every merged
    float is an exact sum of whole-picosecond values, so the result is
    bit-identical at any [RTCAD_JOBS]. *)

type stream_stats = {
  s_result : result;  (** merged aggregate result *)
  s_hist : int array;
      (** latency histogram over [Obs.hist_bounds] plus overflow *)
  s_p50_ps : float;  (** latency percentile estimates (bucket-interpolated) *)
  s_p95_ps : float;
  s_p99_ps : float;
}

type farm = {
  f_stats : stream_stats;
  f_shards : int;
  f_shard_instructions : int array;  (** instructions per shard, in order *)
}

val default_chunk : int
(** Refill-buffer size used when [?chunk] is omitted (65536). *)

val run_stream :
  ?params:params ->
  ?chunk:int ->
  seed:int ->
  Workload.profile ->
  instructions:int ->
  stream_stats
(** One decoder over the whole virtual stream, constant memory.
    Bit-identical to [run (Workload.generate ...)] for any chunk
    size. *)

val run_farm :
  ?params:params ->
  ?chunk:int ->
  ?shards:int ->
  seed:int ->
  Workload.profile ->
  instructions:int ->
  farm
(** The sharded decoder farm (default [shards = 1]).  When
    observability is enabled, each shard records its instruction and
    line counters and its latency histogram from whichever worker
    domain ran it — the per-worker stores merge by sum, so recorded
    totals are job-count independent too. *)

val area_transistors : params -> int
(** Structural area estimate: decoders, tag units, byte latches, crossbar
    switch points, output buffers and control overhead. *)

val pp_result : Format.formatter -> result -> unit

val summary_json : result -> string
(** Stable JSON rendering of a run (six-decimal floats, fixed field
    order) — the byte format of the golden corpus snapshot, used by both
    the golden-trace test and the synthesis server's replay path. *)

val pp_farm : Format.formatter -> farm -> unit
(** Farm report: aggregate throughput, latency percentiles, cycle
    rates and energy.  Deterministic in (params, seed, profile,
    instructions, shards). *)
