(** Table-1 style comparison between the asynchronous RAPPID model and
    the clocked baseline. *)

type comparison = {
  throughput_ratio : float;  (** rappid gips / clocked gips *)
  latency_ratio : float;  (** clocked avg latency / rappid avg latency *)
  power_ratio : float;  (** clocked power / rappid power (same workload) *)
  area_penalty_pct : float;  (** (rappid - clocked) / clocked * 100 *)
  rappid : Rappid.result;
  clocked : Rappid.result;
}

val compare :
  ?rappid_params:Rappid.params ->
  ?clocked_params:Clocked.params ->
  Workload.stream ->
  comparison

val pp : Format.formatter -> comparison -> unit
(** Prints the Table-1 rows: throughput, latency, power, area. *)
