type comparison = {
  throughput_ratio : float;
  latency_ratio : float;
  power_ratio : float;
  area_penalty_pct : float;
  rappid : Rappid.result;
  clocked : Rappid.result;
}

let compare ?rappid_params ?clocked_params stream =
  let r = Rappid.run ?params:rappid_params stream in
  let c = Clocked.run ?params:clocked_params stream in
  let power result = result.Rappid.energy_pj /. result.Rappid.total_ps in
  let ra =
    Rappid.area_transistors
      (match rappid_params with Some p -> p | None -> Rappid.default)
  in
  let ca =
    Clocked.area_transistors
      (match clocked_params with Some p -> p | None -> Clocked.default)
  in
  {
    throughput_ratio = r.Rappid.gips /. c.Rappid.gips;
    latency_ratio = c.Rappid.avg_latency_ps /. r.Rappid.avg_latency_ps;
    power_ratio = power c /. power r;
    area_penalty_pct = 100.0 *. (float_of_int ra -. float_of_int ca) /. float_of_int ca;
    rappid = r;
    clocked = c;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Throughput  %.1fx   (%.2f vs %.2f instr/ns)@,\
     Latency     %.1fx   (%.0f vs %.0f ps)@,\
     Power       %.1fx   (%.1f vs %.1f pJ/instr at speed)@,\
     Area        %+.0f%%@]"
    t.throughput_ratio t.rappid.Rappid.gips t.clocked.Rappid.gips t.latency_ratio
    t.clocked.Rappid.avg_latency_ps t.rappid.Rappid.avg_latency_ps t.power_ratio
    t.clocked.Rappid.energy_per_instr_pj t.rappid.Rappid.energy_per_instr_pj
    t.area_penalty_pct
