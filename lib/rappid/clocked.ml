type params = {
  freq_mhz : float;
  issue_width : int;
  pipeline_depth : int;
  line_fetch_cycles : int;
  e_clock_pj : float;
  e_logic_pj : float;
}

let default =
  {
    freq_mhz = 400.0;
    issue_width = 3;
    pipeline_depth = 2;
    line_fetch_cycles = 0;
    e_clock_pj = 110.0;
    e_logic_pj = 150.0;
  }

let run ?(params = default) (stream : Workload.stream) =
  let p = params in
  let period_ps = 1.0e6 /. p.freq_mhz in
  let n = Array.length stream.Workload.lengths in
  if n = 0 then invalid_arg "Clocked.run: empty stream";
  let starts = Workload.starts stream in
  let num_lines = (stream.Workload.total_bytes + 15) / 16 in
  (* Cycle-by-cycle: each cycle the decoder consumes up to [issue_width]
     instructions, but only within the currently-latched line; advancing
     to the next line costs [line_fetch_cycles].  The serial length ripple
     is inside the cycle: that is what fixes the clock period. *)
  let cycle = ref 0 in
  let k = ref 0 in
  let current_line = ref 0 in
  let latencies = ref [] in
  let line_latched_cycle = Array.make num_lines 0 in
  while !k < n do
    (* Which line do we need for instruction !k ? *)
    let l = Workload.line_of_byte starts.(!k) in
    if l > !current_line then begin
      cycle := !cycle + p.line_fetch_cycles;
      for l' = !current_line + 1 to l do
        line_latched_cycle.(l') <- !cycle
      done;
      current_line := l
    end;
    (* Decode up to issue_width instructions that START in this line. *)
    let issued = ref 0 in
    while
      !k < n && !issued < p.issue_width
      && Workload.line_of_byte starts.(!k) = !current_line
    do
      let lat_cycles = !cycle + p.pipeline_depth - line_latched_cycle.(!current_line) in
      latencies := (float_of_int lat_cycles *. period_ps) :: !latencies;
      incr issued;
      incr k
    done;
    incr cycle
  done;
  let busy_cycles = !cycle + p.pipeline_depth in
  let total_ps = float_of_int busy_cycles *. period_ps in
  let energy = float_of_int busy_cycles *. (p.e_clock_pj +. p.e_logic_pj) in
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  {
    Rappid.instructions = n;
    lines = num_lines;
    total_ps;
    gips = float_of_int n /. (total_ps /. 1000.0);
    lines_per_sec = float_of_int num_lines /. (total_ps *. 1e-12);
    avg_latency_ps = avg !latencies;
    worst_latency_ps = List.fold_left max 0.0 !latencies;
    tag_rate_ghz = p.freq_mhz /. 1000.0;
    decode_rate_ghz = p.freq_mhz /. 1000.0;
    steer_rate_ghz = p.freq_mhz /. 1000.0;
    energy_pj = energy;
    energy_per_instr_pj = energy /. float_of_int n;
  }

(* Decode/align logic sized for the worst case, pipeline registers for a
   16-byte window at every stage, and the clock tree. *)
let area_transistors p =
  let decode_logic = 36000 in
  let stage_registers = 16 * 8 * 12 (* 16 bytes x 8 bits x 12T/ff *) in
  let clock_tree = 6200 in
  let steer = 12200 in
  decode_logic + (p.pipeline_depth * stage_registers) + clock_tree + steer
