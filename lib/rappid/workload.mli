(** Synthetic iA32-like instruction streams.

    The paper's proprietary traces are replaced by a length-distribution
    model: what RAPPID's performance depends on is how instruction lengths
    are distributed (common instructions are short) and how many
    instructions land in each 16-byte cache line.  Profiles range from the
    "typical" skewed mix the paper optimizes for to pathological all-long
    mixes used in the sensitivity sweeps. *)

type profile = { name : string; weights : (int * int) list }
(** [(weight, length)] pairs; lengths in bytes, 1..15. *)

val typical : profile
(** Skewed to short lengths (mean ≈ 3 bytes, ≈ 5 instructions/line) —
    the paper's "common instructions". *)

val uniform : profile
(** Uniform over 1..11 bytes. *)

val short : profile
(** Mostly 1–2 bytes: many instructions per line (stresses tag cycle). *)

val long : profile
(** Mostly 7–11 bytes: few instructions per line (stresses decode). *)

val all_profiles : profile list

val profile_named : string -> profile option
(** Look a profile up by its [name] field ("typical", "uniform", …). *)

(** {2 Streaming generation}

    One instruction costs exactly one splitmix draw, so instruction [i]
    of stream [seed] is a pure function of [(seed, i)]: a cursor can be
    positioned mid-stream in O(1) ([Rng.jump]) and produces bit for bit
    the lengths a sequential run from the seed would.  Chunked,
    materialized and sharded consumers therefore all read the same
    virtual array, in constant memory. *)

type cursor

val cursor : ?start:int -> seed:int -> profile -> instructions:int -> cursor
(** A generator positioned at instruction [start] (default 0) of the
    [instructions]-long stream [seed]. *)

val remaining : cursor -> int
(** Instructions left before the end of the stream. *)

val fill : cursor -> int array -> int
(** [fill c buf] writes the next [min (Array.length buf) (remaining c)]
    instruction lengths into [buf.(0 ..)] and returns how many; [0]
    means the cursor is exhausted.  The buffer is caller-owned and
    reused, so a whole run allocates one chunk regardless of stream
    length. *)

val shard_ranges : instructions:int -> shards:int -> (int * int) array
(** Deterministic contiguous [(start, len)] partition of the stream:
    the first [instructions mod shards] shards take one extra
    instruction.  Every boundary depends only on the two arguments,
    never on the job count. *)

type stream = {
  lengths : int array;  (** instruction lengths, in program order *)
  total_bytes : int;
}

val generate : seed:int -> profile -> instructions:int -> stream
(** Materialize the whole stream as an array — a thin wrapper over
    {!cursor}/{!fill}, so the array is bit-identical to what a streamed
    consumer of the same seed sees. *)

val line_of_byte : int -> int
(** Cache line index (16-byte lines) of a byte address. *)

val starts : stream -> int array
(** Byte address of each instruction's first byte. *)

val mean_length : stream -> float
val instructions_per_line : stream -> float
