(** Synthetic iA32-like instruction streams.

    The paper's proprietary traces are replaced by a length-distribution
    model: what RAPPID's performance depends on is how instruction lengths
    are distributed (common instructions are short) and how many
    instructions land in each 16-byte cache line.  Profiles range from the
    "typical" skewed mix the paper optimizes for to pathological all-long
    mixes used in the sensitivity sweeps. *)

type profile = { name : string; weights : (int * int) list }
(** [(weight, length)] pairs; lengths in bytes, 1..15. *)

val typical : profile
(** Skewed to short lengths (mean ≈ 3 bytes, ≈ 5 instructions/line) —
    the paper's "common instructions". *)

val uniform : profile
(** Uniform over 1..11 bytes. *)

val short : profile
(** Mostly 1–2 bytes: many instructions per line (stresses tag cycle). *)

val long : profile
(** Mostly 7–11 bytes: few instructions per line (stresses decode). *)

val all_profiles : profile list

type stream = {
  lengths : int array;  (** instruction lengths, in program order *)
  total_bytes : int;
}

val generate : seed:int -> profile -> instructions:int -> stream

val line_of_byte : int -> int
(** Cache line index (16-byte lines) of a byte address. *)

val starts : stream -> int array
(** Byte address of each instruction's first byte. *)

val mean_length : stream -> float
val instructions_per_line : stream -> float
