(** The comparable clocked design: a 400 MHz synchronous length-decode
    and steering pipeline over the same cache-line interface.

    The model captures why the paper's clocked baseline loses: every cycle
    pays the worst-case critical path (the serial length-ripple across the
    line bounds the issue width), latency is a whole number of pipeline
    stages, and the clock burns energy in every cycle whether or not
    useful work happened. *)

type params = {
  freq_mhz : float;  (** 400 MHz *)
  issue_width : int;  (** instructions decoded+steered per cycle *)
  pipeline_depth : int;  (** stages from line latch to buffer write *)
  line_fetch_cycles : int;  (** cycles to bring in the next line *)
  e_clock_pj : float;  (** clock + latch energy per cycle, always paid *)
  e_logic_pj : float;  (** decode/steer logic energy per busy cycle *)
}

val default : params

val run : ?params:params -> Workload.stream -> Rappid.result
(** Same result record as the asynchronous model, for direct comparison;
    the cycle-rate fields report the clock frequency. *)

val area_transistors : params -> int
(** Decode/align logic, pipeline registers and clock distribution. *)
