module Rng = Rtcad_util.Rng

type profile = { name : string; weights : (int * int) list }

let typical =
  {
    name = "typical";
    weights =
      [ (18, 1); (22, 2); (24, 3); (14, 4); (9, 5); (6, 6); (4, 7); (2, 8); (1, 11) ];
  }

let uniform =
  { name = "uniform"; weights = List.init 11 (fun i -> (1, i + 1)) }

let short = { name = "short"; weights = [ (60, 1); (30, 2); (10, 3) ] }

let long =
  { name = "long"; weights = [ (10, 6); (30, 7); (30, 8); (20, 9); (10, 11) ] }

let all_profiles = [ typical; uniform; short; long ]

let profile_named n = List.find_opt (fun p -> p.name = n) all_profiles

(* --- streaming generation ---

   One instruction costs exactly one splitmix draw ([Rng.weighted] makes
   a single [Rng.int] call), so instruction [i] of stream [seed] is a
   pure function of [(seed, i)]: a cursor positioned with [Rng.jump]
   produces bit for bit the lengths a sequential run from the seed
   would.  That is the whole determinism story — chunked, materialized
   and sharded runs all read the same virtual array.  (The qcheck
   property suite pins the one-draw-per-instruction invariant.) *)

type cursor = {
  c_profile : profile;
  c_rng : Rng.t;
  c_limit : int; (* stream length: indices < c_limit exist *)
  mutable c_next : int; (* absolute index of the next instruction *)
}

let cursor ?(start = 0) ~seed profile ~instructions =
  if instructions < 0 then invalid_arg "Workload.cursor: negative instruction count";
  if start < 0 || start > instructions then invalid_arg "Workload.cursor: start out of range";
  let rng = Rng.create seed in
  Rng.jump rng start;
  { c_profile = profile; c_rng = rng; c_limit = instructions; c_next = start }

let remaining c = c.c_limit - c.c_next

let fill c buf =
  let n = min (Array.length buf) (remaining c) in
  for i = 0 to n - 1 do
    buf.(i) <- Rng.weighted c.c_rng c.c_profile.weights
  done;
  c.c_next <- c.c_next + n;
  n

(* Deterministic contiguous partition: the first [instructions mod
   shards] shards take one extra instruction, so any two calls (and any
   job count) agree on every boundary. *)
let shard_ranges ~instructions ~shards =
  if shards < 1 then invalid_arg "Workload.shard_ranges: shard count must be positive";
  if instructions < 0 then invalid_arg "Workload.shard_ranges: negative instruction count";
  let base = instructions / shards and rem = instructions mod shards in
  Array.init shards (fun s ->
      let len = base + if s < rem then 1 else 0 in
      let start = (s * base) + min s rem in
      (start, len))

type stream = { lengths : int array; total_bytes : int }

(* The array API is a thin wrapper over the cursor: one fill of the
   whole index range, so a materialized stream is by construction the
   streamed one. *)
let generate ~seed profile ~instructions =
  let c = cursor ~seed profile ~instructions in
  let lengths = Array.make instructions 0 in
  let filled = fill c lengths in
  assert (filled = instructions);
  { lengths; total_bytes = Array.fold_left ( + ) 0 lengths }

let line_of_byte addr = addr / 16

let starts stream =
  let n = Array.length stream.lengths in
  let result = Array.make n 0 in
  let addr = ref 0 in
  for i = 0 to n - 1 do
    result.(i) <- !addr;
    addr := !addr + stream.lengths.(i)
  done;
  result

let mean_length stream =
  if Array.length stream.lengths = 0 then 0.0
  else float_of_int stream.total_bytes /. float_of_int (Array.length stream.lengths)

let instructions_per_line stream =
  if stream.total_bytes = 0 then 0.0
  else
    float_of_int (Array.length stream.lengths)
    /. float_of_int ((stream.total_bytes + 15) / 16)
