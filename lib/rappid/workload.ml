module Rng = Rtcad_util.Rng

type profile = { name : string; weights : (int * int) list }

let typical =
  {
    name = "typical";
    weights =
      [ (18, 1); (22, 2); (24, 3); (14, 4); (9, 5); (6, 6); (4, 7); (2, 8); (1, 11) ];
  }

let uniform =
  { name = "uniform"; weights = List.init 11 (fun i -> (1, i + 1)) }

let short = { name = "short"; weights = [ (60, 1); (30, 2); (10, 3) ] }

let long =
  { name = "long"; weights = [ (10, 6); (30, 7); (30, 8); (20, 9); (10, 11) ] }

let all_profiles = [ typical; uniform; short; long ]

type stream = { lengths : int array; total_bytes : int }

let generate ~seed profile ~instructions =
  let rng = Rng.create seed in
  let lengths =
    Array.init instructions (fun _ -> Rng.weighted rng profile.weights)
  in
  { lengths; total_bytes = Array.fold_left ( + ) 0 lengths }

let line_of_byte addr = addr / 16

let starts stream =
  let n = Array.length stream.lengths in
  let result = Array.make n 0 in
  let addr = ref 0 in
  for i = 0 to n - 1 do
    result.(i) <- !addr;
    addr := !addr + stream.lengths.(i)
  done;
  result

let mean_length stream =
  if Array.length stream.lengths = 0 then 0.0
  else float_of_int stream.total_bytes /. float_of_int (Array.length stream.lengths)

let instructions_per_line stream =
  if stream.total_bytes = 0 then 0.0
  else
    float_of_int (Array.length stream.lengths)
    /. float_of_int ((stream.total_bytes + 15) / 16)
