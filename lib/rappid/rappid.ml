type params = {
  columns : int;
  rows : int;
  line_buffer_depth : int;
  line_fetch_ps : float;
  latch_ps : float;
  decode_common_ps : float;
  decode_uncommon_ps : float;
  common_length : int;
  tag_common_ps : float;
  tag_uncommon_ps : float;
  steer_ps : float;
  buffer_recover_ps : float;
  e_latch_pj : float;
  e_decode_pj : float;
  e_tag_pj : float;
  e_steer_pj : float;
  e_buffer_pj : float;
}

let default =
  {
    columns = 16;
    rows = 4;
    line_buffer_depth = 2;
    line_fetch_ps = 1200.0;
    latch_ps = 150.0;
    decode_common_ps = 850.0;
    decode_uncommon_ps = 1500.0;
    common_length = 3;
    tag_common_ps = 210.0;
    tag_uncommon_ps = 480.0;
    steer_ps = 320.0;
    buffer_recover_ps = 1100.0;
    e_latch_pj = 0.9;
    e_decode_pj = 2.6;
    e_tag_pj = 1.1;
    e_steer_pj = 2.8;
    e_buffer_pj = 2.2;
  }

type result = {
  instructions : int;
  lines : int;
  total_ps : float;
  gips : float;
  lines_per_sec : float;
  avg_latency_ps : float;
  worst_latency_ps : float;
  tag_rate_ghz : float;
  decode_rate_ghz : float;
  steer_rate_ghz : float;
  energy_pj : float;
  energy_per_instr_pj : float;
}

let run ?(params = default) (stream : Workload.stream) =
  let p = params in
  let n = Array.length stream.Workload.lengths in
  if n = 0 then invalid_arg "Rappid.run: empty stream";
  let starts = Workload.starts stream in
  let num_lines = (stream.Workload.total_bytes + p.columns - 1) / p.columns in
  (* Line availability: supplied by the input FIFO, but a line can only be
     latched once the line [depth] earlier has been fully consumed. *)
  let line_avail = Array.make num_lines 0.0 in
  let line_consumed = Array.make num_lines 0.0 in
  let row_free = Array.make p.rows 0.0 in
  let decode_time len =
    if len <= p.common_length then p.decode_common_ps else p.decode_uncommon_ps
  in
  let tag_time len =
    if len <= p.common_length then p.tag_common_ps else p.tag_uncommon_ps
  in
  let latencies = ref [] in
  let tag_intervals = ref [] in
  let energy = ref 0.0 in
  let tag = ref 0.0 (* tag arrival at the next instruction *) in
  let issue_count = ref 0 in
  let last_line_loaded = ref (-1) in
  let load_line l =
    (* supply + reuse constraint *)
    let supply = float_of_int l *. p.line_fetch_ps in
    let reuse =
      if l < p.line_buffer_depth then 0.0
      else line_consumed.(l - p.line_buffer_depth) +. p.latch_ps
    in
    line_avail.(l) <- max supply reuse;
    energy := !energy +. (float_of_int p.columns *. (p.e_latch_pj +. p.e_decode_pj));
    last_line_loaded := l
  in
  load_line 0;
  for k = 0 to n - 1 do
    let len = stream.Workload.lengths.(k) in
    let first = starts.(k) and last = starts.(k) + len - 1 in
    let l_first = Workload.line_of_byte first and l_last = Workload.line_of_byte last in
    for l = !last_line_loaded + 1 to min l_last (num_lines - 1) do
      load_line l
    done;
    let bytes_ready = line_avail.(min l_last (num_lines - 1)) in
    let decode_ready = line_avail.(l_first) +. decode_time len in
    let ready = max bytes_ready decode_ready in
    (* The tag waits for the instruction to be ready, then releases both
       the issue (steering) and the hop to the next instruction. *)
    let tagged = max !tag ready in
    let row = k mod p.rows in
    let issue = max (tagged +. p.steer_ps) row_free.(row) in
    row_free.(row) <- issue +. p.buffer_recover_ps;
    let next_tag = tagged +. tag_time len in
    tag_intervals := (next_tag -. !tag) :: !tag_intervals;
    tag := next_tag;
    incr issue_count;
    latencies := (issue -. line_avail.(l_first)) :: !latencies;
    energy := !energy +. p.e_tag_pj +. p.e_steer_pj +. p.e_buffer_pj;
    (* Mark the spanned lines consumed (conservatively at issue time). *)
    for l = l_first to min l_last (num_lines - 1) do
      line_consumed.(l) <- max line_consumed.(l) issue
    done
  done;
  (* Completion instant of the last issue. *)
  let total_ps = max 1.0 (Array.fold_left max 0.0 row_free -. p.buffer_recover_ps) in
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let gips = float_of_int n /. (total_ps /. 1000.0) in
  let avg_tag = avg !tag_intervals in
  let decode_avg =
    avg (Array.to_list (Array.map decode_time stream.Workload.lengths))
  in
  {
    instructions = n;
    lines = num_lines;
    total_ps;
    gips;
    lines_per_sec = float_of_int num_lines /. (total_ps *. 1e-12);
    avg_latency_ps = avg !latencies;
    worst_latency_ps = List.fold_left max 0.0 !latencies;
    tag_rate_ghz = 1000.0 /. avg_tag;
    decode_rate_ghz = 1000.0 /. decode_avg;
    steer_rate_ghz = 1000.0 /. (p.steer_ps +. p.buffer_recover_ps);
    energy_pj = !energy;
    energy_per_instr_pj = !energy /. float_of_int n;
  }

(* Structural area: per column a length decoder (dominant), byte latch and
   tag unit; a crossbar switch point per column x row; per row an output
   buffer; plus global control. *)
let area_transistors p =
  let decoder = 2600 and latch = 220 and tag_unit = 420 in
  let switch_point = 95 and buffer = 2100 and control = 5200 in
  (p.columns * (decoder + latch + tag_unit))
  + (p.columns * p.rows * switch_point)
  + (p.rows * buffer) + control

(* The exact byte format of the golden corpus snapshot
   (test/golden/rappid.summary.json): every float with six decimals,
   fields in declaration order.  Shared by the golden test and the
   synthesis server so both replay paths compare against the same
   snapshot. *)
let summary_json r =
  let b = Buffer.create 512 in
  let fld last name v =
    Buffer.add_string b
      (Printf.sprintf "  \"%s\": %s%s\n" name v (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  fld false "instructions" (string_of_int r.instructions);
  fld false "lines" (string_of_int r.lines);
  fld false "total_ps" (Printf.sprintf "%.6f" r.total_ps);
  fld false "gips" (Printf.sprintf "%.6f" r.gips);
  fld false "avg_latency_ps" (Printf.sprintf "%.6f" r.avg_latency_ps);
  fld false "worst_latency_ps" (Printf.sprintf "%.6f" r.worst_latency_ps);
  fld false "tag_rate_ghz" (Printf.sprintf "%.6f" r.tag_rate_ghz);
  fld false "decode_rate_ghz" (Printf.sprintf "%.6f" r.decode_rate_ghz);
  fld false "steer_rate_ghz" (Printf.sprintf "%.6f" r.steer_rate_ghz);
  fld false "energy_pj" (Printf.sprintf "%.6f" r.energy_pj);
  fld true "energy_per_instr_pj" (Printf.sprintf "%.6f" r.energy_per_instr_pj);
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>instructions: %d (%d lines)@,throughput: %.2f instr/ns (%.0fM lines/s)@,\
     latency: avg %.0f ps, worst %.0f ps@,cycles: tag %.2f GHz, decode %.2f GHz, \
     steer %.2f GHz@,energy: %.1f pJ/instr@]"
    r.instructions r.lines r.gips (r.lines_per_sec /. 1e6) r.avg_latency_ps
    r.worst_latency_ps r.tag_rate_ghz r.decode_rate_ghz r.steer_rate_ghz
    r.energy_per_instr_pj
