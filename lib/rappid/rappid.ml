module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs

type params = {
  columns : int;
  rows : int;
  line_buffer_depth : int;
  line_fetch_ps : float;
  latch_ps : float;
  decode_common_ps : float;
  decode_uncommon_ps : float;
  common_length : int;
  tag_common_ps : float;
  tag_uncommon_ps : float;
  steer_ps : float;
  buffer_recover_ps : float;
  e_latch_pj : float;
  e_decode_pj : float;
  e_tag_pj : float;
  e_steer_pj : float;
  e_buffer_pj : float;
}

let default =
  {
    columns = 16;
    rows = 4;
    line_buffer_depth = 2;
    line_fetch_ps = 1200.0;
    latch_ps = 150.0;
    decode_common_ps = 850.0;
    decode_uncommon_ps = 1500.0;
    common_length = 3;
    tag_common_ps = 210.0;
    tag_uncommon_ps = 480.0;
    steer_ps = 320.0;
    buffer_recover_ps = 1100.0;
    e_latch_pj = 0.9;
    e_decode_pj = 2.6;
    e_tag_pj = 1.1;
    e_steer_pj = 2.8;
    e_buffer_pj = 2.2;
  }

type result = {
  instructions : int;
  lines : int;
  total_ps : float;
  gips : float;
  lines_per_sec : float;
  avg_latency_ps : float;
  worst_latency_ps : float;
  tag_rate_ghz : float;
  decode_rate_ghz : float;
  steer_rate_ghz : float;
  energy_pj : float;
  energy_per_instr_pj : float;
}

let zero_result =
  {
    instructions = 0;
    lines = 0;
    total_ps = 0.0;
    gips = 0.0;
    lines_per_sec = 0.0;
    avg_latency_ps = 0.0;
    worst_latency_ps = 0.0;
    tag_rate_ghz = 0.0;
    decode_rate_ghz = 0.0;
    steer_rate_ghz = 0.0;
    energy_pj = 0.0;
    energy_per_instr_pj = 0.0;
  }

(* --- the incremental decoder core ---

   One decoder instance folded over instruction lengths in program
   order.  Live state is O(columns + rows): the per-line availability
   and consumption instants are kept in a circular window of
   [line_buffer_depth + 2] slots — an instruction spans at most two
   lines and a line load looks back exactly [line_buffer_depth] lines,
   so older entries can never be read again.  Per-instruction latencies
   go into a 1-2-5 histogram (the [Obs.hist_bounds] ladder) plus exact
   sum/max accumulators instead of a list, so feeding an instruction
   allocates nothing and memory does not grow with the stream.

   The float operations are performed in exactly the order the original
   materialized loop used, and the accumulated quantities (latencies,
   tag intervals, energies) are sums of whole-picosecond values, which
   double addition represents exactly — so the folded result is
   bit-identical to the historical array implementation (the golden
   RAPPID summary pins this). *)

type decoder = {
  p : params;
  window : int;
  line_avail : float array; (* indexed by line mod window *)
  line_consumed : float array;
  row_free : float array;
  mutable last_line_loaded : int;
  mutable addr : int; (* byte address of the next instruction *)
  mutable fed : int; (* instructions folded in so far *)
  mutable tag : float; (* tag arrival at the next instruction *)
  mutable energy : float;
  mutable lat_sum : float;
  mutable lat_max : float;
  mutable tag_interval_sum : float;
  mutable decode_sum : float;
  lat_hist : int array; (* Obs.hist_bounds buckets + overflow *)
}

let hist_len = Array.length Obs.hist_bounds + 1

let bucket_index v =
  let bounds = Obs.hist_bounds in
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let decoder_create p =
  {
    p;
    window = p.line_buffer_depth + 2;
    line_avail = Array.make (p.line_buffer_depth + 2) 0.0;
    line_consumed = Array.make (p.line_buffer_depth + 2) 0.0;
    row_free = Array.make p.rows 0.0;
    last_line_loaded = -1;
    addr = 0;
    fed = 0;
    tag = 0.0;
    energy = 0.0;
    lat_sum = 0.0;
    lat_max = 0.0;
    tag_interval_sum = 0.0;
    decode_sum = 0.0;
    lat_hist = Array.make hist_len 0;
  }

(* Line [l] becomes available at the later of its FIFO supply instant
   and the recovery of the byte latches it reuses. *)
let load_line d l =
  let p = d.p in
  let supply = float_of_int l *. p.line_fetch_ps in
  let reuse =
    if l < p.line_buffer_depth then 0.0
    else d.line_consumed.((l - p.line_buffer_depth) mod d.window) +. p.latch_ps
  in
  d.line_avail.(l mod d.window) <- max supply reuse;
  d.line_consumed.(l mod d.window) <- 0.0;
  d.energy <- d.energy +. (float_of_int p.columns *. (p.e_latch_pj +. p.e_decode_pj));
  d.last_line_loaded <- l

let feed d len =
  let p = d.p in
  let first = d.addr and last = d.addr + len - 1 in
  d.addr <- d.addr + len;
  let l_first = Workload.line_of_byte first and l_last = Workload.line_of_byte last in
  for l = d.last_line_loaded + 1 to l_last do
    load_line d l
  done;
  let bytes_ready = d.line_avail.(l_last mod d.window) in
  let avail_first = d.line_avail.(l_first mod d.window) in
  let decode_time =
    if len <= p.common_length then p.decode_common_ps else p.decode_uncommon_ps
  in
  let decode_ready = avail_first +. decode_time in
  let ready = max bytes_ready decode_ready in
  (* The tag waits for the instruction to be ready, then releases both
     the issue (steering) and the hop to the next instruction. *)
  let tagged = max d.tag ready in
  let row = d.fed mod p.rows in
  let issue = max (tagged +. p.steer_ps) d.row_free.(row) in
  d.row_free.(row) <- issue +. p.buffer_recover_ps;
  let tag_time =
    if len <= p.common_length then p.tag_common_ps else p.tag_uncommon_ps
  in
  let next_tag = tagged +. tag_time in
  d.tag_interval_sum <- d.tag_interval_sum +. (next_tag -. d.tag);
  d.tag <- next_tag;
  d.decode_sum <- d.decode_sum +. decode_time;
  let lat = issue -. avail_first in
  d.lat_sum <- d.lat_sum +. lat;
  if lat > d.lat_max then d.lat_max <- lat;
  d.lat_hist.(bucket_index lat) <- d.lat_hist.(bucket_index lat) + 1;
  d.energy <- d.energy +. p.e_tag_pj +. p.e_steer_pj +. p.e_buffer_pj;
  d.fed <- d.fed + 1;
  (* Mark the spanned lines consumed (conservatively at issue time). *)
  for l = l_first to l_last do
    let i = l mod d.window in
    if issue > d.line_consumed.(i) then d.line_consumed.(i) <- issue
  done

let result_of d =
  let p = d.p in
  let n = d.fed in
  if n = 0 then zero_result
  else begin
    let num_lines = (d.addr + p.columns - 1) / p.columns in
    (* Completion instant of the last issue. *)
    let total_ps =
      max 1.0 (Array.fold_left max 0.0 d.row_free -. p.buffer_recover_ps)
    in
    let fn = float_of_int n in
    {
      instructions = n;
      lines = num_lines;
      total_ps;
      gips = fn /. (total_ps /. 1000.0);
      lines_per_sec = float_of_int num_lines /. (total_ps *. 1e-12);
      avg_latency_ps = d.lat_sum /. fn;
      worst_latency_ps = d.lat_max;
      tag_rate_ghz = 1000.0 /. (d.tag_interval_sum /. fn);
      decode_rate_ghz = 1000.0 /. (d.decode_sum /. fn);
      steer_rate_ghz = 1000.0 /. (p.steer_ps +. p.buffer_recover_ps);
      energy_pj = d.energy;
      energy_per_instr_pj = d.energy /. fn;
    }
  end

let run ?(params = default) (stream : Workload.stream) =
  let d = decoder_create params in
  Array.iter (fun len -> feed d len) stream.Workload.lengths;
  result_of d

(* --- streaming runs and the decoder farm --- *)

type stream_stats = {
  s_result : result;
  s_hist : int array;
  s_p50_ps : float;
  s_p95_ps : float;
  s_p99_ps : float;
}

type farm = {
  f_stats : stream_stats;
  f_shards : int;
  f_shard_instructions : int array;
}

let default_chunk = 65536

(* Raw accumulators of one shard's decoder, merged left-to-right in
   shard order.  Every float is a sum of whole-picosecond values, so
   the merge is exact and independent of which domain ran the shard. *)
type shard_out = {
  o_n : int;
  o_bytes : int;
  o_lines : int;
  o_total_ps : float;
  o_energy : float;
  o_lat_sum : float;
  o_lat_max : float;
  o_tag_sum : float;
  o_decode_sum : float;
  o_hist : int array;
}

(* One shard = one decoder folded over its slice of the virtual stream,
   read through a cursor in chunk-sized refills of one caller-owned
   buffer.  The cursor's limit is the slice end, so the loop needs no
   bookkeeping of its own. *)
let run_shard params ~chunk ~seed ~profile (start, len) =
  let d = decoder_create params in
  let c = Workload.cursor ~start ~seed profile ~instructions:(start + len) in
  let buf = Array.make (max 1 chunk) 0 in
  let rec go () =
    let got = Workload.fill c buf in
    if got > 0 then begin
      for i = 0 to got - 1 do
        feed d buf.(i)
      done;
      go ()
    end
  in
  go ();
  let r = result_of d in
  {
    o_n = d.fed;
    o_bytes = d.addr;
    o_lines = r.lines;
    o_total_ps = r.total_ps;
    o_energy = d.energy;
    o_lat_sum = d.lat_sum;
    o_lat_max = d.lat_max;
    o_tag_sum = d.tag_interval_sum;
    o_decode_sum = d.decode_sum;
    o_hist = d.lat_hist;
  }

let percentiles_of_hist hist =
  ( Obs.percentile_of_buckets ~counts:hist 50.0,
    Obs.percentile_of_buckets ~counts:hist 95.0,
    Obs.percentile_of_buckets ~counts:hist 99.0 )

let stats_of_result result hist =
  let p50, p95, p99 = percentiles_of_hist hist in
  { s_result = result; s_hist = hist; s_p50_ps = p50; s_p95_ps = p95; s_p99_ps = p99 }

(* Worker-index-ordered merge (shard order = slot order under
   [Par.mapi_array]): counters and histograms sum, completion time is
   the slowest shard — the farm's decoders run side by side.  Every
   accumulator merges with exact float sums, so the merged result is
   bit-identical at any RTCAD_JOBS. *)
let merge_shards params outs =
  let p = params in
  let n = Array.fold_left (fun a o -> a + o.o_n) 0 outs in
  if n = 0 then stats_of_result zero_result (Array.make hist_len 0)
  else begin
    let lines = Array.fold_left (fun a o -> a + o.o_lines) 0 outs in
    let total_ps = Array.fold_left (fun a o -> max a o.o_total_ps) 0.0 outs in
    let energy = Array.fold_left (fun a o -> a +. o.o_energy) 0.0 outs in
    let lat_sum = Array.fold_left (fun a o -> a +. o.o_lat_sum) 0.0 outs in
    let lat_max = Array.fold_left (fun a o -> max a o.o_lat_max) 0.0 outs in
    let tag_sum = Array.fold_left (fun a o -> a +. o.o_tag_sum) 0.0 outs in
    let decode_sum = Array.fold_left (fun a o -> a +. o.o_decode_sum) 0.0 outs in
    let hist = Array.make hist_len 0 in
    Array.iter (fun o -> Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) o.o_hist) outs;
    let fn = float_of_int n in
    let result =
      {
        instructions = n;
        lines;
        total_ps;
        gips = fn /. (total_ps /. 1000.0);
        lines_per_sec = float_of_int lines /. (total_ps *. 1e-12);
        avg_latency_ps = lat_sum /. fn;
        worst_latency_ps = lat_max;
        tag_rate_ghz = 1000.0 /. (tag_sum /. fn);
        decode_rate_ghz = 1000.0 /. (decode_sum /. fn);
        steer_rate_ghz = 1000.0 /. (p.steer_ps +. p.buffer_recover_ps);
        energy_pj = energy;
        energy_per_instr_pj = energy /. fn;
      }
    in
    stats_of_result result hist
  end

let run_farm ?(params = default) ?(chunk = default_chunk) ?(shards = 1) ~seed profile
    ~instructions =
  if chunk < 1 then invalid_arg "Rappid.run_farm: chunk must be positive";
  if instructions < 0 then invalid_arg "Rappid.run_farm: negative instruction count";
  let ranges = Workload.shard_ranges ~instructions ~shards in
  let outs =
    Par.mapi_array
      (fun s range ->
        (* Recorded from whichever worker domain runs the shard: the
           per-worker obs stores merge counters and histograms by sum,
           so totals are identical at any job count. *)
        Obs.span ~args:(fun () -> [ ("shard", string_of_int s) ]) "rappid.shard"
          (fun () ->
            let o = run_shard params ~chunk ~seed ~profile range in
            Obs.incr ~by:o.o_n "rappid.instructions";
            Obs.incr ~by:o.o_lines "rappid.lines";
            Obs.observe_buckets "rappid.latency_ps" ~counts:o.o_hist ~sum:o.o_lat_sum;
            o))
      ranges
  in
  {
    f_stats = merge_shards params outs;
    f_shards = shards;
    f_shard_instructions = Array.map (fun o -> o.o_n) outs;
  }

let run_stream ?params ?chunk ~seed profile ~instructions =
  (run_farm ?params ?chunk ~shards:1 ~seed profile ~instructions).f_stats

(* Structural area: per column a length decoder (dominant), byte latch and
   tag unit; a crossbar switch point per column x row; per row an output
   buffer; plus global control. *)
let area_transistors p =
  let decoder = 2600 and latch = 220 and tag_unit = 420 in
  let switch_point = 95 and buffer = 2100 and control = 5200 in
  (p.columns * (decoder + latch + tag_unit))
  + (p.columns * p.rows * switch_point)
  + (p.rows * buffer) + control

(* The exact byte format of the golden corpus snapshot
   (test/golden/rappid.summary.json): every float with six decimals,
   fields in declaration order.  Shared by the golden test and the
   synthesis server so both replay paths compare against the same
   snapshot. *)
let summary_json r =
  let b = Buffer.create 512 in
  let fld last name v =
    Buffer.add_string b
      (Printf.sprintf "  \"%s\": %s%s\n" name v (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  fld false "instructions" (string_of_int r.instructions);
  fld false "lines" (string_of_int r.lines);
  fld false "total_ps" (Printf.sprintf "%.6f" r.total_ps);
  fld false "gips" (Printf.sprintf "%.6f" r.gips);
  fld false "avg_latency_ps" (Printf.sprintf "%.6f" r.avg_latency_ps);
  fld false "worst_latency_ps" (Printf.sprintf "%.6f" r.worst_latency_ps);
  fld false "tag_rate_ghz" (Printf.sprintf "%.6f" r.tag_rate_ghz);
  fld false "decode_rate_ghz" (Printf.sprintf "%.6f" r.decode_rate_ghz);
  fld false "steer_rate_ghz" (Printf.sprintf "%.6f" r.steer_rate_ghz);
  fld false "energy_pj" (Printf.sprintf "%.6f" r.energy_pj);
  fld true "energy_per_instr_pj" (Printf.sprintf "%.6f" r.energy_per_instr_pj);
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>instructions: %d (%d lines)@,throughput: %.2f instr/ns (%.0fM lines/s)@,\
     latency: avg %.0f ps, worst %.0f ps@,cycles: tag %.2f GHz, decode %.2f GHz, \
     steer %.2f GHz@,energy: %.1f pJ/instr@]"
    r.instructions r.lines r.gips (r.lines_per_sec /. 1e6) r.avg_latency_ps
    r.worst_latency_ps r.tag_rate_ghz r.decode_rate_ghz r.steer_rate_ghz
    r.energy_per_instr_pj

let pp_ps ppf v =
  if v = infinity then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%.0f" v

let pp_farm ppf f =
  let r = f.f_stats.s_result in
  Format.fprintf ppf
    "@[<v>instructions: %d over %d decoder shard(s) (%d lines)@,\
     throughput: %.2f instr/ns aggregate (slowest shard sets completion)@,\
     latency: p50 %a ps, p95 %a ps, p99 %a ps (1-2-5 histogram estimate)@,\
     latency: avg %.1f ps, worst %.0f ps@,\
     cycles: tag %.2f GHz, decode %.2f GHz, steer %.2f GHz@,\
     energy: %.2f pJ/instr@]"
    r.instructions f.f_shards r.lines r.gips pp_ps f.f_stats.s_p50_ps pp_ps
    f.f_stats.s_p95_ps pp_ps f.f_stats.s_p99_ps r.avg_latency_ps
    r.worst_latency_ps r.tag_rate_ghz r.decode_rate_ghz r.steer_rate_ghz
    r.energy_per_instr_pj
