(** Deterministic domain-parallel execution.

    A fixed pool of worker domains sized from
    [Domain.recommended_domain_count] (overridable with [RTCAD_JOBS] or
    {!set_jobs}) runs chunked fan-out/fan-in loops whose results are
    {b bit-identical} to a serial run:

    - {!map_list} / {!map_array} preserve input order by writing each
      result into its input's slot, so reductions over the output see
      the serial order regardless of which domain computed what;
    - if several inputs raise, the exception of the {e lowest-indexed}
      input is re-raised after the join — exactly the exception a serial
      left-to-right loop would have surfaced;
    - a region started from inside another parallel region (or from a
      worker domain) degrades to a serial loop, so nested calls such as
      [Sg.build] inside a parallel CSC search neither deadlock nor
      oversubscribe the machine.

    The pool is created lazily on first use and resized when the job
    count changes; with one job every entry point is a plain loop with
    no pool, no atomics and no synchronization. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val jobs : unit -> int
(** Effective parallelism: the {!set_jobs} override if any, else a
    positive [RTCAD_JOBS] environment variable, else {!recommended}.
    Raises [Invalid_argument] if [RTCAD_JOBS] is set non-empty but is
    not a positive integer. *)

val set_jobs : int -> unit
(** Override the job count (e.g. from a [--jobs] flag).  Takes
    precedence over [RTCAD_JOBS].  Raises [Invalid_argument] if the
    argument is not positive. *)

val in_parallel_region : unit -> bool
(** True on a domain currently executing inside a parallel region —
    where every [Par] entry point runs serially. *)

val worker_index : unit -> int
(** Worker identity of the calling domain inside a {!run_workers} region:
    0 for the initiating domain (and outside any region), [i] for pool
    worker [i].  [Rtcad_obs] keys its per-worker metric stores on this
    index so that merged metrics depend only on the participant count,
    never on which domain ran which chunk. *)

val run_workers : (index:int -> count:int -> unit) -> unit
(** [run_workers f] runs [f ~index ~count] concurrently on [count]
    participants ([count = jobs ()], the caller being participant 0),
    returning after all have finished.  If any participant raises, one
    of the exceptions (unspecified which) is re-raised after the join —
    callers needing deterministic failures must catch inside [f].
    Serial fallback: a single call [f ~index:0 ~count:1]. *)

val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f i] for [0 <= i < n], claiming chunks of
    indices atomically.  Exception propagation is as in {!run_workers}
    (nondeterministic under parallelism): prefer {!map_array} when a
    deterministic failure matters. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [map_array f a] equals
    [Array.map f a], including which exception escapes (the one raised
    by the lowest-indexed failing element). *)

val mapi_array : ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [Array.mapi f a] with the {!map_array} guarantees: each slot sees
    its own index, results land in input order and the lowest-indexed
    exception wins.  The RAPPID decoder farm fans its shards out with
    this — the index is the shard number, so a worker-index-ordered
    merge of the output array is the serial merge. *)

val map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f l], parallelised with the {!map_array} guarantees. *)

val try_map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** {!map_list} with per-element fault isolation: an element whose [f]
    raises yields [Error exn] in its slot instead of poisoning the whole
    batch.  Long-lived callers (the synthesis server) use this so one
    failing request cannot take down the others dispatched with it. *)

val shutdown : unit -> unit
(** Join and discard the worker pool (tests; harmless if no pool). *)
