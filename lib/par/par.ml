(* A fixed pool of worker domains with per-worker mailboxes.  Work is
   fanned out as one closure per participant; inner loops claim chunks
   of the index space through an atomic cursor, so load balancing does
   not depend on a work-stealing runtime the toolchain doesn't ship. *)

let recommended () = Domain.recommended_domain_count ()

let override = ref None

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: job count must be positive";
  override := Some n

let jobs () =
  match !override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "RTCAD_JOBS" with
    | None | Some "" -> recommended ()
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None -> invalid_arg "RTCAD_JOBS must be a positive integer"))

(* True while the current domain is executing inside a parallel region:
   set permanently on worker domains and for the duration of a region on
   the initiating domain.  Any [Par] entry point that observes it runs
   serially, which makes nested parallelism (a parallel [Sg.build] inside
   a parallel CSC search inside a parallel fuzz case) safe by default. *)
let busy_key = Domain.DLS.new_key (fun () -> ref false)
let busy () = Domain.DLS.get busy_key
let in_parallel_region () = !(busy ())

(* Worker identity of the current domain inside a region: 0 for the
   initiating domain (and outside any region), i for pool worker i.
   Observability keys its per-worker accumulators on this index, so
   merged metrics depend only on how many participants there were — not
   on which OS thread or domain happened to run which chunk. *)
let index_key = Domain.DLS.new_key (fun () -> ref 0)
let worker_index () = !(Domain.DLS.get index_key)

(* --- the pool --- *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option; (* None = idle *)
  mutable quit : bool;
}

type pool = { workers : worker array; domains : unit Domain.t array }

let pool : pool option ref = ref None

let worker_loop w =
  busy () := true;
  let rec go () =
    Mutex.lock w.m;
    while w.job = None && not w.quit do
      Condition.wait w.cv w.m
    done;
    if w.quit then Mutex.unlock w.m
    else begin
      let f = Option.get w.job in
      Mutex.unlock w.m;
      (* [f] never raises: submitted jobs wrap their body. *)
      f ();
      Mutex.lock w.m;
      w.job <- None;
      Condition.broadcast w.cv;
      Mutex.unlock w.m;
      go ()
    end
  in
  go ()

let shutdown () =
  match !pool with
  | None -> ()
  | Some p ->
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.quit <- true;
        Condition.broadcast w.cv;
        Mutex.unlock w.m)
      p.workers;
    Array.iter Domain.join p.domains;
    pool := None

(* The pool holds [jobs () - 1] workers; the caller is the remaining
   participant.  Resized (torn down and respawned) when the job count
   changes between regions, which only tests and CLI flag changes do. *)
let get_pool size =
  (match !pool with
  | Some p when Array.length p.workers <> size -> shutdown ()
  | Some _ | None -> ());
  match !pool with
  | Some p -> p
  | None ->
    let workers =
      Array.init size (fun _ ->
          { m = Mutex.create (); cv = Condition.create (); job = None; quit = false })
    in
    let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
    let p = { workers; domains } in
    pool := Some p;
    p

let submit w f =
  Mutex.lock w.m;
  w.job <- Some f;
  Condition.broadcast w.cv;
  Mutex.unlock w.m

let join w =
  Mutex.lock w.m;
  while w.job <> None do
    Condition.wait w.cv w.m
  done;
  Mutex.unlock w.m

let run_workers f =
  let n = jobs () in
  if n = 1 || in_parallel_region () then f ~index:0 ~count:1
  else begin
    let p = get_pool (n - 1) in
    (* First exception wins (nondeterministic across runs; documented). *)
    let failed = Atomic.make None in
    let task index () =
      let wi = Domain.DLS.get index_key in
      let saved = !wi in
      wi := index;
      Fun.protect
        ~finally:(fun () -> wi := saved)
        (fun () ->
          try f ~index ~count:n
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failed None (Some (e, bt))))
    in
    Array.iteri (fun i w -> submit w (task (i + 1))) p.workers;
    let flag = busy () in
    flag := true;
    Fun.protect
      ~finally:(fun () ->
        flag := false;
        Array.iter join p.workers)
      (fun () -> task 0 ());
    match Atomic.get failed with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  end

(* Chunk size balances dispatch overhead against load imbalance: small
   enough for ~8 claims per participant, never below 1. *)
let default_chunk n count = max 1 (n / (count * 8))

let parallel_for ?chunk n f =
  if n > 0 then
    if jobs () = 1 || in_parallel_region () || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let next = Atomic.make 0 in
      run_workers (fun ~index:_ ~count ->
          let chunk = match chunk with Some c -> max 1 c | None -> default_chunk n count in
          let rec claim () =
            let lo = Atomic.fetch_and_add next chunk in
            if lo < n then begin
              let hi = min n (lo + chunk) in
              for i = lo to hi - 1 do
                f i
              done;
              claim ()
            end
          in
          claim ())
    end

let map_array ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if jobs () = 1 || in_parallel_region () || n = 1 then Array.map f a
  else begin
    (* Each slot is written by exactly one domain and read only after the
       join, which synchronizes through the worker mailbox mutexes. *)
    let out = Array.make n None in
    parallel_for ?chunk n (fun i ->
        out.(i) <- Some (try Ok (f a.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())));
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below n was claimed *))
      out
  end

let mapi_array ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if jobs () = 1 || in_parallel_region () || n = 1 then Array.mapi f a
  else begin
    let out = Array.make n None in
    parallel_for ?chunk n (fun i ->
        out.(i) <- Some (try Ok (f i a.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())));
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below n was claimed *))
      out
  end

let map_list ?chunk f l = Array.to_list (map_array ?chunk f (Array.of_list l))

let try_map_list ?chunk f l =
  map_list ?chunk (fun x -> try Ok (f x) with e -> Error e) l
