(** Concurrent Unix-socket driver for the {!Serve} daemon: a
    single-threaded [Unix.select] event loop multiplexing many
    simultaneous connections over one shared cache and domain pool.

    {2 Connections}

    Each accepted connection gets its own {!Serve.session} (its own
    batch state and request counters) over the shared
    {!Serve.config.cache}.  Reads are non-blocking with a bounded line
    buffer ([rbuf_limit]; an overlong line draws a structured
    [too_large] error and closes the connection after draining).
    Responses go through a per-connection write queue: when a client
    stops draining and the queue passes [wq_limit], its work requests
    are shed with structured [overloaded] errors (cheap to queue) while
    control requests still execute; at twice the limit the loop stops
    reading from it entirely.  Other connections keep progressing
    throughout.  Connections are visited in rotating order each loop
    round, so no client can starve the rest.

    {2 Automatic wave formation}

    Cache misses from {e all} connections pool together, one entry per
    distinct key.  The pool is dispatched as one
    {!Serve.compute_and_store} fan-out — up to [wave_max] misses per
    wave — when it reaches [wave_max], when its oldest miss is
    [wave_ms] milliseconds old, or when the read side goes quiet
    (nothing else is arriving, so waiting would only add latency; this
    keeps lone-client latency at parity with the sequential driver).
    Each connection parses its next request only after its previous
    wave resolves, so wave interleaving can never reorder a
    connection's responses: each stream answers in its own request
    order, and for a fixed multi-client schedule every connection's
    bytes — [cached] flags included — are identical across runs at any
    [RTCAD_JOBS].  (The cache is shared: whether a key is a hit can
    depend on what other clients computed earlier.)

    {2 Lifecycle}

    A [shutdown] request on any connection (or SIGINT/SIGTERM) stops
    the daemon: outstanding waves resolve, queued responses get a short
    drain grace, the socket file is unlinked.  A stale socket file left
    by a crashed daemon is detected by probe-connect and reclaimed;
    a live daemon raises {!Busy} instead. *)

type config = {
  base : Serve.config;
  wave_max : int;  (** misses per fan-out, and the pool-size trigger *)
  wave_ms : float;  (** max milliseconds a pooled miss may wait *)
  backlog : int;  (** [Unix.listen] accept-queue bound *)
  rbuf_limit : int;  (** max bytes of one request line *)
  wq_limit : int;  (** per-connection queued-response bytes before shedding *)
}

val default : Serve.config -> config
(** wave_max 16, wave_ms 2.0, backlog 64, rbuf_limit 1 MiB, wq_limit
    8 MiB. *)

exception Busy of string
(** Raised by {!run} when a live daemon already serves the socket path
    (the payload). *)

val run : config -> path:string -> int
(** Bind [path] and serve until [shutdown] or a termination signal;
    returns the process exit code.  Raises {!Busy} for a live daemon at
    [path], [Sys_error] if [path] exists and is not a socket,
    [Invalid_argument] on non-positive [wave_max]/[backlog] or negative
    [wave_ms]. *)
