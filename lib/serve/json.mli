(** A minimal JSON reader/writer for the NDJSON serving protocol.

    The container ships no JSON library, and the protocol only needs a
    deterministic subset: parsing one request object per line and
    printing responses with a {e stable} field order (the insertion
    order of the association list), which is what makes server output
    byte-comparable across runs and job counts.

    Numbers that look integral parse as {!Int}; everything else as
    {!Float}.  Object keys are kept in file order and duplicate keys are
    rejected — a duplicated option in a request is almost certainly a
    client bug, and silently keeping one of the two would make the
    cache key ambiguous. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }
(** [pos] is a 0-based byte offset into the input line. *)

val parse : string -> t
(** Parse a complete JSON value; trailing non-whitespace raises. *)

val to_string : t -> string
(** Compact one-line rendering (no newlines — NDJSON-safe even for
    embedded multi-line payloads, which are escaped).  [parse] of the
    output reconstructs the value, except that integral floats print as
    integers. *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)

(** {2 Accessors} — convenience lookups for request decoding. *)

val member : string -> t -> t option
(** Field of an object; [None] on absent field or non-object. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
val to_float : t -> float option
(** [to_float] accepts both {!Int} and {!Float}. *)
