(** Synthesis-as-a-service: the long-running [rtsyn serve] daemon.

    The server speaks newline-delimited JSON: one request object per
    line in, one response object per line out, in request-arrival order.
    Work operations — [check], [synth], [sim], [fuzz] — run the same
    kernels as the corresponding CLI subcommands; control operations —
    [ping], [stats], [batch], [flush], [shutdown] — manage the session.
    Every response carries the request's [id] (echoed, or assigned
    sequentially when absent), so pipelined clients can match answers
    out of band even though the wire order is deterministic.

    {2 Dispatch, batching and load shedding}

    By default each work request is dispatched as it arrives.  After a
    [{"op":"batch"}] control message, work requests accumulate in a
    bounded queue and are dispatched together on [{"op":"flush"}] (or
    end of input) as one {e wave} over the {!Rtcad_par.Par} domain pool,
    with identical-key duplicates computed once.  A request arriving
    while the queue is full is {e shed}: it is answered with a
    structured [overloaded] error in its arrival slot and the session
    keeps going — the daemon never buffers unboundedly and never drops
    a connection to protect itself.  Under the socket driver
    ({!Mux.run}) waves also form {e automatically} across connections;
    see {!Mux}.

    {2 Robustness}

    A malformed line, an unknown operation, a spec parse error, an
    engine failure ([Synthesis_failure], [Inconsistent], [Unsafe]) or a
    [Too_large] bound all produce structured error responses; no request
    can kill the daemon.  Per-request wall-clock budgets
    ([timeout_ms]) are cooperative: the result of a request that
    finished past its budget is replaced by a [timeout] error (the
    kernels bound their own work via [max_states]).  SIGINT/SIGTERM
    drain pending work, flush responses and exit cleanly.

    {2 Caching}

    Results are content-addressed in a {!Cache}: the key is the
    canonical [.g] rendering of the specification (so any textual
    variant of the same spec hits) plus the operation and an
    engine/options fingerprint ({!Rtcad_core.Flow.fingerprint} for
    synthesis).  Responses carry ["cached":true] on a hit, and each
    stored entry records its compute time — the currency of the cache's
    cost-based eviction.  Cache and request counters are mirrored into
    {!Rtcad_obs.Obs} under [serve.*], which is how a served session
    reports its hit rate.

    {2 Determinism}

    For a fixed request stream the complete response stream is
    byte-identical at any job count: waves fan out over the
    deterministic pool, cache state evolves in arrival order, and
    responses are emitted in arrival order.  With per-request
    observability capture ([`Normalised]) waves run serially (capture
    snapshots global recording state) and each response embeds the
    normalised metric summary of exactly its own work. *)

type obs_mode =
  | Obs_off
  | Obs_normalised
      (** attach a normalised {!Rtcad_obs.Obs.summary_json} per request:
          byte-stable across machines and job counts *)
  | Obs_full  (** attach real wall-clock summaries *)

type config = {
  queue : int;  (** work-queue capacity (wave bound); clamped to >= 1 *)
  cache : Cache.t;
  engine : Rtcad_sg.Engine.t;  (** default reachability engine *)
  obs_mode : obs_mode;
  timeout_ms : float option;  (** per-request budget, [None] = unlimited *)
  max_states : int option;  (** default explicit-engine state bound *)
  flow_store : Rtcad_core.Store.t option;
      (** staged-flow artifact store threaded into [synth] misses: a
          request whose whole-response cache entry was evicted (or that
          varies only in style) can still replay the expensive stages
          from per-stage artifacts *)
}

val default_config : ?cache:Cache.t -> ?flow_store:Rtcad_core.Store.t -> unit -> config
(** Queue 64, a fresh in-memory cache ({!Cache.create} defaults: 8
    shards, 32 MiB cost budget) unless given, [Auto] engine, no capture,
    no timeout, engine-default state bound, no flow store. *)

(** {2 Session core}

    The pure-ish engine behind both drivers, also used directly by the
    test battery: feed input lines, collect response lines. *)

type session

val session : config -> session
val session_config : session -> config

val feed : ?shed_work:bool -> session -> string -> string list
(** Process one input line; returns the response lines it produced (in
    order).  Batched work requests produce their responses at the next
    [flush]/{!finish}.  With [~shed_work:true] (driver backpressure —
    the mux sets it while a client's write queue is over budget)
    well-formed work requests are answered [overloaded] immediately;
    control requests still execute. *)

val finish : session -> string list
(** End of input: dispatch any pending batch and return its responses. *)

val stopped : session -> bool
(** True once a [shutdown] request has been processed. *)

val run_lines : config -> string list -> string list
(** [feed] every line, then {!finish} (stopping early after [shutdown]);
    the whole scripted-session protocol in one call. *)

(** {2 Waves — the driver protocol}

    {!feed_events} is the non-resolving form of {!feed}: instead of
    computing cache misses inline it hands back {!event}s, so a driver
    that multiplexes many sessions (the {!Mux} event loop) can merge
    the miss sets of several connections into one domain-pool fan-out.
    The contract: resolve each [Wave]'s {!wave_misses} (in any grouping,
    e.g. merged with other sessions' waves) via {!compute_and_store},
    then render its responses with {!finish_wave}, keeping every
    session's events in its own arrival order.  {!feed} [=]
    {!feed_events} + inline resolution. *)

type work = {
  w_op : string;
  w_engine : string option;  (** resolved engine, for the envelope *)
  w_key : string;  (** content-address ({!Cache.key}) of the request *)
  w_compute : unit -> Json.t;  (** the result payload *)
}

type outcome = (Json.t * string option * float, exn) result
(** Result payload, optional captured-obs summary, elapsed compute
    milliseconds (the cache cost); or the failure. *)

type wave
(** A prepared batch: per-slot either a rendered response or a cache
    miss awaiting its key's outcome. *)

type event =
  | Lines of string list  (** rendered response lines, emit as-is *)
  | Wave of wave  (** resolve, then emit its responses *)

val feed_events : ?shed_work:bool -> session -> string -> event list
val finish_events : session -> event list

val wave_misses : wave -> work list
(** Distinct cache misses, first-arrival order (duplicate keys within
    the wave share one computation). *)

val wave_size : wave -> int

val compute_and_store : config -> work list -> (string * outcome) list
(** Compute the given works — in parallel over the domain pool unless
    per-request capture pins the session serial — and fill the cache
    with the successes in first-arrival order, recording each entry's
    compute time as its cost.  Returns [(w_key, outcome)] per work. *)

val finish_wave : find:(string -> outcome option) -> wave -> string list
(** Render the wave's responses in arrival order, resolving each miss
    slot through [find] (keyed by [w_key]). *)

(** {2 Protocol internals}

    Shared with the {!Mux} driver so transport-level failures speak the
    same structured-error dialect as the session. *)

type err

val err : string -> string -> err
(** [err kind message]; kinds are the documented set ([parse_error],
    [bad_request], [engine_failure], [too_large], [io_error], [timeout],
    [overloaded], [internal]). *)

val err_of_exn : exn -> err
val error_response : id:Json.t -> op:Json.t -> err -> Json.t

(** {2 Drivers}

    The stdio driver lives here; the concurrent Unix-socket driver is
    {!Mux.run}. *)

val run_stdio : config -> int
(** Serve requests from standard input to standard output until end of
    input, [shutdown], or a termination signal (drain, then exit).
    Returns the process exit code. *)

val with_signals : ((unit -> bool) -> 'a) -> 'a
(** Run the function with SIGINT/SIGTERM routed to the given
    should-stop flag, restoring the previous handlers afterwards. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** Blocking write of [len] bytes at [pos], retrying across [EINTR]. *)
