(** Synthesis-as-a-service: the long-running [rtsyn serve] daemon.

    The server speaks newline-delimited JSON: one request object per
    line in, one response object per line out, in request-arrival order.
    Work operations — [check], [synth], [sim], [fuzz] — run the same
    kernels as the corresponding CLI subcommands; control operations —
    [ping], [stats], [batch], [flush], [shutdown] — manage the session.
    Every response carries the request's [id] (echoed, or assigned
    sequentially when absent), so pipelined clients can match answers
    out of band even though the wire order is deterministic.

    {2 Dispatch, batching and load shedding}

    By default each work request is dispatched as it arrives.  After a
    [{"op":"batch"}] control message, work requests accumulate in a
    bounded queue and are dispatched together on [{"op":"flush"}] (or
    end of input) as one {e wave} over the {!Rtcad_par.Par} domain pool,
    with identical-key duplicates computed once.  A request arriving
    while the queue is full is {e shed}: it is answered with a
    structured [overloaded] error in its arrival slot and the session
    keeps going — the daemon never buffers unboundedly and never drops
    a connection to protect itself.

    {2 Robustness}

    A malformed line, an unknown operation, a spec parse error, an
    engine failure ([Synthesis_failure], [Inconsistent], [Unsafe]) or a
    [Too_large] bound all produce structured error responses; no request
    can kill the daemon.  Per-request wall-clock budgets
    ([timeout_ms]) are cooperative: the result of a request that
    finished past its budget is replaced by a [timeout] error (the
    kernels bound their own work via [max_states]).  SIGINT/SIGTERM
    drain pending work, flush responses and exit cleanly.

    {2 Caching}

    Results are content-addressed in a {!Cache}: the key is the
    canonical [.g] rendering of the specification (so any textual
    variant of the same spec hits) plus the operation and an
    engine/options fingerprint ({!Rtcad_core.Flow.fingerprint} for
    synthesis).  Responses carry ["cached":true] on a hit.  Cache and
    request counters are mirrored into {!Rtcad_obs.Obs} under
    [serve.*], which is how a served session reports its hit rate.

    {2 Determinism}

    For a fixed request stream the complete response stream is
    byte-identical at any job count: waves fan out over the
    deterministic pool, cache state evolves in arrival order, and
    responses are emitted in arrival order.  With per-request
    observability capture ([`Normalised]) waves run serially (capture
    snapshots global recording state) and each response embeds the
    normalised metric summary of exactly its own work. *)

type obs_mode =
  | Obs_off
  | Obs_normalised
      (** attach a normalised {!Rtcad_obs.Obs.summary_json} per request:
          byte-stable across machines and job counts *)
  | Obs_full  (** attach real wall-clock summaries *)

type config = {
  queue : int;  (** work-queue capacity (wave bound); clamped to >= 1 *)
  cache : Cache.t;
  engine : Rtcad_sg.Engine.t;  (** default reachability engine *)
  obs_mode : obs_mode;
  timeout_ms : float option;  (** per-request budget, [None] = unlimited *)
  max_states : int option;  (** default explicit-engine state bound *)
}

val default_config : ?cache:Cache.t -> unit -> config
(** Queue 64, a fresh in-memory cache (capacity 256) unless given,
    [Auto] engine, no capture, no timeout, engine-default state bound. *)

(** {2 Session core}

    The pure-ish engine behind both drivers, also used directly by the
    test battery: feed input lines, collect response lines. *)

type session

val session : config -> session

val feed : session -> string -> string list
(** Process one input line; returns the response lines it produced (in
    order).  Batched work requests produce their responses at the next
    [flush]/{!finish}. *)

val finish : session -> string list
(** End of input: dispatch any pending batch and return its responses. *)

val stopped : session -> bool
(** True once a [shutdown] request has been processed. *)

val run_lines : config -> string list -> string list
(** [feed] every line, then {!finish} (stopping early after [shutdown]);
    the whole scripted-session protocol in one call. *)

(** {2 Drivers} *)

val run_stdio : config -> int
(** Serve requests from standard input to standard output until end of
    input, [shutdown], or a termination signal (drain, then exit).
    Returns the process exit code. *)

val run_socket : config -> path:string -> int
(** Bind a Unix-domain stream socket at [path] (replacing a stale
    socket file) and serve connections sequentially, each with a fresh
    session over the shared cache, until a [shutdown] request or a
    termination signal.  The socket file is removed on exit. *)
