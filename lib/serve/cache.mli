(** Content-addressed result cache for the synthesis server.

    Keys are hex digests computed by {!key} from the canonical [.g] text
    of the specification (the printer is round-trip stable, so any
    whitespace/ordering variant of the same spec maps to the same key)
    plus the operation and an engine/options fingerprint.  Values are
    opaque payload strings (the server stores rendered response
    payloads).

    {2 Sharding}

    The in-memory tier is split into [shards] independent LRU shards
    keyed by the hash prefix of the key (md5 keys distribute uniformly),
    so eviction scans stay short at large capacities and per-shard
    retained-cost metrics are observable.

    {2 Cost-based eviction}

    Eviction is by {e retained cost}, not entry count: an entry costs
    [bytes(payload) + ceil(compute_ms)] — the bytes it occupies plus the
    compute debt it absorbs on a hit — and each shard holds an even
    split of [budget].  Inserting beyond the budget evicts
    least-recently-used entries until the shard fits again (the entry
    just inserted is never its own victim, so a single oversized result
    still caches).  An optional [capacity] additionally bounds the entry
    count per cache, preserving the classic count-LRU behaviour when
    set.

    {2 Tiers}

    - the sharded in-memory tier described above;
    - an optional on-disk store ([dir]): every store is also written to
      [dir/<key>.json] behind a checksum header, and a memory miss falls
      back to disk (verifying the checksum and re-promoting into memory
      at byte cost only — the header records no compute time).  A
      corrupted or truncated entry is {e detected}, counted, deleted and
      treated as a miss — never served.

    All operations are synchronous and deterministic for a given store
    sequence; the server serializes cache access (the mux event loop is
    single-threaded), so no internal locking is needed.  Counters are
    mirrored into {!Rtcad_obs.Obs} (when enabled) under [serve.cache.*],
    including per-shard [serve.cache.shard<i>.{entries,bytes,ms,evictions}]
    gauges. *)

type t

type shard_stats = {
  sh_entries : int;
  sh_bytes : int;  (** retained payload bytes *)
  sh_ms : float;  (** retained recorded compute milliseconds *)
  sh_evictions : int;
}

type stats = {
  hits : int;  (** memory + disk hits *)
  misses : int;
  stores : int;
  evictions : int;  (** memory evictions, all shards (disk entries persist) *)
  corrupt : int;  (** disk entries rejected by checksum *)
  entries : int;  (** current in-memory entry count, all shards *)
  retained_bytes : int;
  retained_ms : float;
  shards : shard_stats list;  (** per-shard breakdown, in shard order *)
}

val create :
  ?shards:int -> ?budget:int -> ?capacity:int -> ?dir:string -> unit -> t
(** [shards] (default 8) in-memory LRU shards; [budget] (default 32 MiB
    of cost units, i.e. bytes + compute ms) is split evenly across them.
    [capacity] optionally bounds the entry count as well (split evenly;
    unset by default — cost is the bound).  [dir] enables the on-disk
    tier; the directory is created if missing.  Raises [Sys_error] if
    the directory cannot be created, [Invalid_argument] on non-positive
    [shards], [budget] or [capacity]. *)

val key : string list -> string
(** Digest of the given parts (order-sensitive, injection-safe: parts
    are length-prefixed before hashing). *)

val find : t -> string -> string option

val store : ?cost_ms:float -> t -> string -> string -> unit
(** [store ?cost_ms t key payload] inserts (or refreshes) the entry;
    [cost_ms] (default 0) is the recorded compute time folded into the
    entry's retained cost. *)

val stats : t -> stats

val num_shards : t -> int
val dir : t -> string option
