(** Content-addressed result cache for the synthesis server.

    Keys are hex digests computed by {!key} from the canonical [.g] text
    of the specification (the printer is round-trip stable, so any
    whitespace/ordering variant of the same spec maps to the same key)
    plus the operation and an engine/options fingerprint.  Values are
    opaque payload strings (the server stores rendered response
    payloads).

    Two tiers:

    - an in-memory LRU bounded at [capacity] entries — lookups promote,
      stores evict the least-recently-used entry once full;
    - an optional on-disk store ([dir]): every store is also written to
      [dir/<key>.json] behind a checksum header, and a memory miss falls
      back to disk (verifying the checksum and re-promoting into
      memory).  A corrupted or truncated entry is {e detected}, counted,
      deleted and treated as a miss — never served.

    All operations are synchronous and deterministic; the server
    serializes cache access, so no internal locking is needed.  Counters
    are mirrored into {!Rtcad_obs.Obs} (when enabled) under
    [serve.cache.*]. *)

type t

type stats = {
  hits : int;  (** memory + disk hits *)
  misses : int;
  stores : int;
  evictions : int;  (** memory-LRU evictions (disk entries persist) *)
  corrupt : int;  (** disk entries rejected by checksum *)
  entries : int;  (** current in-memory entry count *)
}

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] (default 256, clamped to >= 1) bounds the in-memory LRU.
    [dir] enables the on-disk tier; the directory is created if missing.
    Raises [Sys_error] if the directory cannot be created. *)

val key : string list -> string
(** Digest of the given parts (order-sensitive, injection-safe: parts
    are length-prefixed before hashing). *)

val find : t -> string -> string option
val store : t -> string -> string -> unit
val stats : t -> stats

val capacity : t -> int
val dir : t -> string option
