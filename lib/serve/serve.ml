module Stg = Rtcad_stg.Stg
module Stg_io = Rtcad_stg.Stg_io
module Library = Rtcad_stg.Library
module Petri = Rtcad_stg.Petri
module Transform = Rtcad_stg.Transform
module Sg = Rtcad_sg.Sg
module Symbolic = Rtcad_sg.Symbolic
module Engine = Rtcad_sg.Engine
module Props = Rtcad_sg.Props
module Encoding = Rtcad_sg.Encoding
module Csc = Rtcad_sg.Csc
module Flow = Rtcad_core.Flow
module Check = Rtcad_core.Check
module Harness = Rtcad_core.Harness
module Table2 = Rtcad_core.Table2
module Fifo_impls = Rtcad_core.Fifo_impls
module Netlist = Rtcad_netlist.Netlist
module Assumption = Rtcad_rt.Assumption
module Timed_sim = Rtcad_rt.Timed_sim
module Fuzz = Rtcad_check.Fuzz
module Oracle = Rtcad_check.Oracle
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Vcd = Rtcad_obs.Vcd
module Rappid = Rtcad_rappid.Rappid
module Workload = Rtcad_rappid.Workload

type obs_mode = Obs_off | Obs_normalised | Obs_full

type config = {
  queue : int;
  cache : Cache.t;
  engine : Engine.t;
  obs_mode : obs_mode;
  timeout_ms : float option;
  max_states : int option;
  flow_store : Rtcad_core.Store.t option;
}

let default_config ?cache ?flow_store () =
  {
    queue = 64;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    engine = Engine.Auto;
    obs_mode = Obs_off;
    timeout_ms = None;
    max_states = None;
    flow_store;
  }

(* Bumped whenever a response payload changes shape, so stale on-disk
   cache entries from an older server can never be replayed. *)
let protocol_version = "rtcad-serve/1"

exception Bad_request of string
exception Timeout of float

(* --- structured errors --- *)

type err = { kind : string; message : string }

let err kind message = { kind; message }

let err_of_exn = function
  | Bad_request m -> err "bad_request" m
  | Json.Parse_error { pos; msg } ->
    err "parse_error" (Printf.sprintf "request is not valid JSON (byte %d: %s)" pos msg)
  | Stg_io.Parse_error (line, m) ->
    err "parse_error" (Printf.sprintf "spec parse error on line %d: %s" line m)
  | Rtcad_hls.Parser.Parse_error (line, m) ->
    err "parse_error" (Printf.sprintf "hp parse error on line %d: %s" line m)
  | Rtcad_hls.Compile.Unsupported m -> err "bad_request" ("unsupported hp construct: " ^ m)
  | Sg.Inconsistent m -> err "engine_failure" ("specification is inconsistent: " ^ m)
  | Sg.Too_large bound ->
    err "too_large"
      (Printf.sprintf "state graph exceeds %d states; retry with \"engine\":\"symbolic\""
         bound)
  | Petri.Unsafe p ->
    err "engine_failure"
      (Printf.sprintf "specification is unsafe: place %d can hold two tokens" p)
  | Flow.Synthesis_failure m -> err "engine_failure" ("synthesis failed: " ^ m)
  | Rtcad_verify.Rt_verify.Not_verifiable ->
    err "engine_failure" "netlist fails verification even with all assumptions"
  | Timeout ms ->
    err "timeout" (Printf.sprintf "request exceeded its budget (ran %.0f ms)" ms)
  | Failure m -> err "engine_failure" m
  | Sys_error m -> err "io_error" m
  | e -> err "internal" (Printexc.to_string e)

(* --- request field access --- *)

let req_field req name conv what =
  match Json.member name req with
  | None -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> raise (Bad_request (Printf.sprintf "field %S must be %s" name what)))

let int_field req name = req_field req name Json.to_int "an integer"
let str_field req name = req_field req name Json.to_str "a string"
let bool_field req name = req_field req name Json.to_bool "a boolean"

let list_field req name =
  req_field req name (function Json.List l -> Some l | _ -> None) "an array"

(* Unknown fields are rejected rather than ignored: a typo'd option that
   silently falls back to a default would also silently alias two
   different requests onto one cache key. *)
let check_fields op req allowed =
  match req with
  | Json.Obj fields ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k ("id" :: "op" :: allowed)) then
          raise
            (Bad_request (Printf.sprintf "unknown field %S for op %S" k op)))
      fields
  | _ -> ()

(* --- specification resolution --- *)

let parse_ring name =
  if String.length name > 4 && String.sub name 0 4 = "ring" then
    match int_of_string_opt (String.sub name 4 (String.length name - 4)) with
    | Some n when n >= 2 && n <= 64 -> Some n
    | _ -> None
  else None

let lookup_builtin name =
  match List.assoc_opt name (Library.all_named ()) with
  | Some stg -> Some stg
  | None -> Option.map Library.ring (parse_ring name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A [spec] string is a built-in name unless it looks like spec text (a
   leading [.] directive or any newline).  Returns the STG and its
   canonical [.g] rendering — the round-trip-stable printer normalizes
   whitespace, ordering and naming variants onto one cache identity. *)
let resolve_spec req =
  let lang =
    match str_field req "lang" with
    | None | Some "g" -> `G
    | Some "hp" -> `Hp
    | Some l -> raise (Bad_request (Printf.sprintf "unknown lang %S (g or hp)" l))
  in
  let of_text text =
    match lang with
    | `Hp -> Rtcad_hls.Compile.compile (Rtcad_hls.Parser.parse text)
    | `G -> Stg_io.parse text
  in
  let stg =
    match (str_field req "spec", str_field req "spec_file") with
    | Some _, Some _ -> raise (Bad_request "spec and spec_file are mutually exclusive")
    | None, None -> raise (Bad_request "a spec or spec_file field is required")
    | Some s, None ->
      if lang = `Hp || String.contains s '\n' || (s <> "" && s.[0] = '.') then
        of_text s
      else (
        match lookup_builtin s with
        | Some stg -> stg
        | None ->
          raise
            (Bad_request
               (Printf.sprintf
                  "%S is neither a built-in specification nor spec text" s)))
    | None, Some path ->
      if Filename.check_suffix path ".hp" then
        Rtcad_hls.Compile.compile (Rtcad_hls.Parser.parse (read_file path))
      else of_text (read_file path)
  in
  (stg, Stg_io.to_string stg)

let engine_of cfg req =
  match str_field req "engine" with
  | None -> cfg.engine
  | Some s -> (
    match Engine.of_string s with
    | Some e -> e
    | None ->
      raise
        (Bad_request
           (Printf.sprintf "unknown engine %S (auto, explicit or symbolic)" s)))

let max_states_of cfg req =
  match int_field req "max_states" with None -> cfg.max_states | Some n -> Some n

let fp_max_states = function
  | None -> "max_states=default"
  | Some n -> Printf.sprintf "max_states=%d" n

(* --- assumption syntax ("ri-<li+") --- *)

let parse_edge e =
  let n = String.length e in
  if n < 2 then raise (Bad_request (Printf.sprintf "edge %S is too short" e))
  else
    match e.[n - 1] with
    | '+' -> (String.sub e 0 (n - 1), Stg.Rise)
    | '-' -> (String.sub e 0 (n - 1), Stg.Fall)
    | _ -> raise (Bad_request (Printf.sprintf "edge %S must end in + or -" e))

let parse_assumption s =
  match String.index_opt s '<' with
  | None ->
    raise (Bad_request (Printf.sprintf "assumption %S must look like ri-<li+" s))
  | Some i ->
    let before = String.trim (String.sub s 0 i)
    and after = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    (parse_edge before, parse_edge after)

(* --- decoded work --- *)

type work = {
  w_op : string;
  w_engine : string option;  (** resolved engine, for the envelope *)
  w_key : string;
  w_compute : unit -> Json.t;  (** the result payload *)
}

let engine_name = function `Explicit -> "explicit" | `Symbolic -> "symbolic"

let transition_str stg t = Format.asprintf "%a" (Stg.pp_transition stg) t

(* -- check -- *)

let decode_check cfg req =
  check_fields "check" req [ "spec"; "spec_file"; "lang"; "engine"; "max_states" ];
  let stg, canon = resolve_spec req in
  let engine = engine_of cfg req in
  let max_states = max_states_of cfg req in
  let contracted = Transform.contract_dummies stg in
  let sel = Engine.select engine contracted in
  let compute () =
    let states, deadlock_free, live, persistent, conflict_signals =
      match sel with
      | `Explicit ->
        let sg = Sg.build ?max_states contracted in
        let signals =
          List.sort_uniq compare
            (List.concat_map
               (fun c -> c.Encoding.signals)
               (Encoding.csc_conflicts sg))
        in
        ( Sg.num_states sg,
          Props.deadlock_free sg,
          Props.live_transitions sg,
          Props.is_output_persistent sg,
          signals )
      | `Symbolic ->
        let sym = Symbolic.analyze_cached ?max_states contracted in
        ( Symbolic.num_states sym,
          Symbolic.deadlock_count sym = 0,
          Symbolic.live_transitions sym,
          Symbolic.is_output_persistent sym,
          Symbolic.csc_conflict_signals sym )
    in
    Json.Obj
      [
        ("states", Json.Int states);
        ("deadlock_free", Json.Bool deadlock_free);
        ("live_transitions", Json.Bool live);
        ("output_persistent", Json.Bool persistent);
        ("csc_satisfied", Json.Bool (conflict_signals = []));
        ( "csc_signals",
          Json.List
            (List.map
               (fun s -> Json.String (Stg.signal_name contracted s))
               conflict_signals) );
      ]
  in
  {
    w_op = "check";
    w_engine = Some (engine_name sel);
    w_key =
      Cache.key
        [ protocol_version; "check"; canon; engine_name sel; fp_max_states max_states ];
    w_compute = compute;
  }

(* -- synth -- *)

let decode_synth cfg req =
  check_fields "synth" req
    [ "spec"; "spec_file"; "lang"; "engine"; "max_states"; "mode"; "assume";
      "input_first"; "no_lazy"; "style"; "verify" ];
  let stg, canon = resolve_spec req in
  let engine = engine_of cfg req in
  let max_states = max_states_of cfg req in
  let user =
    match list_field req "assume" with
    | None -> []
    | Some items ->
      List.map
        (fun j ->
          match Json.to_str j with
          | Some s -> parse_assumption s
          | None -> raise (Bad_request "assume entries must be strings"))
        items
  in
  let input_first = Option.value ~default:false (bool_field req "input_first") in
  let no_lazy = Option.value ~default:false (bool_field req "no_lazy") in
  let mode =
    match Option.value ~default:"rt" (str_field req "mode") with
    | "rt" -> Flow.Rt { user; allow_input_first = input_first; allow_lazy = not no_lazy }
    | "si" ->
      if user <> [] || input_first || no_lazy then
        raise (Bad_request "assume/input_first/no_lazy only apply to mode \"rt\"");
      Flow.Si
    | m -> raise (Bad_request (Printf.sprintf "unknown mode %S (si or rt)" m))
  in
  let style_name, emit_style =
    match str_field req "style" with
    | None -> ("default", None)
    | Some "static" -> ("static", Some Rtcad_synth.Emit.Static_cmos)
    | Some "domino" -> ("domino", Some (Rtcad_synth.Emit.Domino_cmos { footed = true }))
    | Some "domino-unfooted" ->
      ("domino-unfooted", Some (Rtcad_synth.Emit.Domino_cmos { footed = false }))
    | Some s ->
      raise
        (Bad_request
           (Printf.sprintf "unknown style %S (static, domino or domino-unfooted)" s))
  in
  let verify = Option.value ~default:false (bool_field req "verify") in
  let sel = Engine.select engine (Transform.contract_dummies stg) in
  let compute () =
    let r =
      Flow.synthesize ?cache:cfg.flow_store ~mode ~engine ?emit_style ?max_states
        stg
    in
    let a_str a = Format.asprintf "%a" (Assumption.pp r.Flow.stg) a in
    let base =
      [
        ("states_full", Json.Int (Flow.num_states_full r));
        ("states_used", Json.Int (Flow.num_states_used r));
        ( "insertions",
          Json.List
            (List.map
               (fun i ->
                 Json.String (Format.asprintf "%a" (Csc.pp_insertion r.Flow.stg) i))
               r.Flow.insertions) );
        ("assumptions", Json.Int (List.length r.Flow.assumptions));
        ("constraints", Json.List (List.map (fun a -> Json.String (a_str a)) r.Flow.constraints));
        ( "signals",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("name", Json.String s.Flow.signal_name);
                     ("literals", Json.Int s.Flow.literals);
                   ])
               r.Flow.signals) );
        ("gates", Json.Int (Netlist.gate_count r.Flow.netlist));
        ("netlist", Json.String (Format.asprintf "%a" Netlist.pp r.Flow.netlist));
      ]
    in
    let verification =
      if not verify then []
      else
        let v =
          let untimed = Check.conformance r in
          if untimed.Rtcad_verify.Conformance.ok then
            Json.Obj
              [
                ("conforms", Json.Bool true);
                ("speed_independent", Json.Bool true);
                ("minimal_constraints", Json.List []);
              ]
          else
            match Check.minimal_constraints r with
            | minimal ->
              Json.Obj
                [
                  ("conforms", Json.Bool true);
                  ("speed_independent", Json.Bool false);
                  ( "minimal_constraints",
                    Json.List (List.map (fun a -> Json.String (a_str a)) minimal) );
                ]
            | exception Rtcad_verify.Rt_verify.Not_verifiable ->
              Json.Obj [ ("conforms", Json.Bool false) ]
        in
        [ ("verification", v) ]
    in
    Json.Obj (base @ verification)
  in
  {
    w_op = "synth";
    w_engine = Some (engine_name sel);
    w_key =
      Cache.key
        [ protocol_version; "synth"; canon; engine_name sel; Flow.fingerprint mode;
          "style=" ^ style_name; Printf.sprintf "verify=%b" verify;
          fp_max_states max_states ];
    w_compute = compute;
  }

(* -- sim -- *)

let variant_of = function
  | "si" -> Fifo_impls.speed_independent ()
  | "rt-bm" -> Fifo_impls.burst_mode ()
  | "rt" -> Fifo_impls.relative_timing ()
  | "pulse" -> Fifo_impls.pulse_mode ()
  | c ->
    raise
      (Bad_request
         (Printf.sprintf "unknown circuit %S (si, rt-bm, rt, pulse or rappid)" c))

let measurement_json name cycles (m : Harness.measurement) =
  [
    ("name", Json.String name);
    ("cycles", Json.Int cycles);
    ("worst_delay_ps", Json.Float m.Harness.worst_delay_ps);
    ("avg_delay_ps", Json.Float m.Harness.avg_delay_ps);
    ("avg_forward_ps", Json.Float m.Harness.avg_forward_ps);
    ("energy_per_cycle_pj", Json.Float m.Harness.energy_per_cycle_pj);
    ("glitches", Json.Int m.Harness.glitches);
  ]

let decode_sim cfg req =
  check_fields "sim" req
    [ "spec"; "spec_file"; "lang"; "circuit"; "cycles"; "vcd"; "steps"; "seed";
      "instructions" ];
  match str_field req "circuit" with
  | Some "rappid" ->
    let instructions = Option.value ~default:20_000 (int_field req "instructions") in
    let seed = Option.value ~default:7 (int_field req "seed") in
    let compute () =
      let stream = Workload.generate ~seed Workload.typical ~instructions in
      let r = Rappid.run stream in
      Json.Obj
        [
          ("instructions", Json.Int r.Rappid.instructions);
          ("lines", Json.Int r.Rappid.lines);
          ("gips", Json.Float r.Rappid.gips);
          ("summary_json", Json.String (Rappid.summary_json r));
        ]
    in
    {
      w_op = "sim";
      w_engine = None;
      w_key =
        Cache.key
          [ protocol_version; "sim-rappid"; string_of_int instructions;
            string_of_int seed ];
      w_compute = compute;
    }
  | Some circuit ->
    (* Validate the name at decode time so a bad request errors before
       the wave, like every other malformed field. *)
    ignore (variant_of circuit);
    let cycles = Option.value ~default:12 (int_field req "cycles") in
    let vcd = Option.value ~default:false (bool_field req "vcd") in
    let obs_capture = cfg.obs_mode <> Obs_off in
    let compute () =
      let v = variant_of circuit in
      (* Per-request capture must hold the metrics of the measurement
         alone — the golden corpus snapshots were recorded that way —
         so the synthesis that just built the variant is dropped. *)
      if obs_capture then Obs.reset ();
      let w = if vcd then Some (Vcd.create ()) else None in
      let m =
        if v.Fifo_impls.pulse then Harness.measure_pulse ?vcd:w ~cycles v.Fifo_impls.netlist
        else
          Harness.measure_fourphase ~env:(Table2.env_for v) ?vcd:w ~cycles
            v.Fifo_impls.netlist
      in
      let vcd_field =
        match w with
        | Some w -> [ ("vcd", Json.String (Vcd.contents w)) ]
        | None -> []
      in
      Json.Obj (measurement_json v.Fifo_impls.name cycles m @ vcd_field)
    in
    {
      w_op = "sim";
      w_engine = None;
      w_key =
        Cache.key
          [ protocol_version; "sim-circuit"; circuit; string_of_int cycles;
            string_of_bool vcd ];
      w_compute = compute;
    }
  | None ->
    let stg, canon = resolve_spec req in
    let steps = Option.value ~default:40 (int_field req "steps") in
    let seed = Option.value ~default:1 (int_field req "seed") in
    let compute () =
      let contracted = Transform.contract_dummies ~strict:false stg in
      let trace = Timed_sim.run ~seed ~steps contracted in
      Json.Obj
        [
          ("steps", Json.Int steps);
          ("seed", Json.Int seed);
          ( "events",
            Json.List
              (List.map
                 (fun e ->
                   Json.Obj
                     [
                       ("at_ps", Json.Float e.Timed_sim.fired_at);
                       ("fire", Json.String (transition_str contracted e.Timed_sim.transition));
                     ])
                 trace) );
        ]
    in
    {
      w_op = "sim";
      w_engine = None;
      w_key =
        Cache.key
          [ protocol_version; "sim-spec"; canon; string_of_int steps; string_of_int seed ];
      w_compute = compute;
    }

(* -- fuzz -- *)

let decode_fuzz _cfg req =
  check_fields "fuzz" req [ "seed"; "cases"; "max_places"; "shrink" ];
  let d = Fuzz.default in
  let seed = Option.value ~default:d.Fuzz.seed (int_field req "seed") in
  let cases = Option.value ~default:d.Fuzz.cases (int_field req "cases") in
  let max_places = Option.value ~default:d.Fuzz.max_places (int_field req "max_places") in
  let shrink = Option.value ~default:d.Fuzz.shrink (bool_field req "shrink") in
  let compute () =
    let o = Fuzz.run ~log:(fun _ -> ()) { Fuzz.seed; cases; max_places; shrink; edits = 0 } in
    Json.Obj
      [
        ("ran", Json.Int o.Fuzz.ran);
        ("passed", Json.Int o.Fuzz.passed);
        ("skipped", Json.Int o.Fuzz.skipped);
        ("ok", Json.Bool (Option.is_none o.Fuzz.failure));
        ( "failure",
          match o.Fuzz.failure with
          | None -> Json.Null
          | Some f ->
            Json.Obj
              [
                ("case", Json.Int f.Fuzz.case);
                ("case_seed", Json.Int f.Fuzz.case_seed);
                ("oracle", Json.String f.Fuzz.finding.Oracle.oracle);
                ("detail", Json.String f.Fuzz.finding.Oracle.detail);
                ( "g",
                  match f.Fuzz.g_text with
                  | None -> Json.Null
                  | Some g -> Json.String g );
              ] );
      ]
  in
  {
    w_op = "fuzz";
    w_engine = None;
    w_key =
      Cache.key
        [ protocol_version; "fuzz"; string_of_int seed; string_of_int cases;
          string_of_int max_places; string_of_bool shrink ];
    w_compute = compute;
  }

let decode_work cfg op req =
  match op with
  | "check" -> decode_check cfg req
  | "synth" -> decode_synth cfg req
  | "sim" -> decode_sim cfg req
  | "fuzz" -> decode_fuzz cfg req
  | _ -> assert false (* only called for work ops *)

(* --- responses --- *)

let error_response ~id ~op e =
  Json.Obj
    [
      ("id", id);
      ("op", op);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("kind", Json.String e.kind); ("message", Json.String e.message) ] );
    ]

let control_response ~id ~op result =
  Json.Obj [ ("id", id); ("op", Json.String op); ("ok", Json.Bool true); ("result", result) ]

let work_response ~id ~(w : work) ~cached ~obs result =
  Json.Obj
    ([ ("id", id); ("op", Json.String w.w_op); ("ok", Json.Bool true);
       ("cached", Json.Bool cached) ]
    @ (match w.w_engine with
      | Some e -> [ ("engine", Json.String e) ]
      | None -> [])
    @ [ ("key", Json.String w.w_key); ("result", result) ]
    @ match obs with Some s -> [ ("obs", Json.String s) ] | None -> [])

(* --- the session --- *)

type pending =
  | P_work of { id : Json.t; op : string; req : Json.t }
  | P_shed of { id : Json.t; op : string }

type session = {
  cfg : config;
  mutable batching : bool;
  mutable pending : pending list;  (** reversed arrival order *)
  mutable admitted : int;
  mutable seq : int;
  mutable stop : bool;
  mutable requests : int;
  mutable shed : int;
}

let session cfg =
  {
    cfg = { cfg with queue = max 1 cfg.queue };
    batching = false;
    pending = [];
    admitted = 0;
    seq = 0;
    stop = false;
    requests = 0;
    shed = 0;
  }

let stopped s = s.stop
let session_config s = s.cfg

(* Run one piece of work, with per-request observability capture and the
   cooperative wall-clock budget.  Never raises.  The elapsed wall time
   travels with the result: it becomes the cache entry's compute cost. *)
type outcome = (Json.t * string option * float, exn) result

let compute_one cfg (w : work) : outcome =
  let t0 = Obs.time_ms () in
  let outcome =
    if cfg.obs_mode <> Obs_off then begin
      Obs.set_enabled true;
      (* enabling from disabled reset the stores: capture starts empty *)
      Fun.protect
        ~finally:(fun () -> Obs.set_enabled false)
        (fun () ->
          match w.w_compute () with
          | r ->
            let obs =
              Obs.summary_json
                ~normalised:(cfg.obs_mode = Obs_normalised)
                (Obs.snapshot ())
            in
            Ok (r, Some obs, Obs.time_ms () -. t0)
          | exception e -> Error e)
    end
    else
      match Obs.span "serve.request" w.w_compute with
      | r -> Ok (r, None, Obs.time_ms () -. t0)
      | exception e -> Error e
  in
  match (outcome, cfg.timeout_ms) with
  | Ok _, Some budget when Obs.time_ms () -. t0 > budget ->
    Error (Timeout (Obs.time_ms () -. t0))
  | _ -> outcome

(* --- waves ---

   A wave is the prepared form of a batch of pending requests: each slot
   is either already answerable (control errors, sheds, cache hits) or a
   cache miss awaiting the outcome of its key.  The three phases —
   {!prepare} (decode + cache lookup, arrival order), {!compute_and_store}
   (distinct misses fanned out over the domain pool, cache filled in
   first-arrival order) and {!finish_wave} (one response per slot, in
   arrival order) — are split so the mux event loop can merge the miss
   sets of several connections into one fan-out while each connection's
   responses stay in its own arrival order. *)

type slot =
  | S_done of string  (** rendered response line *)
  | S_miss of { id : Json.t; w : work }

type wave = { w_slots : slot list }

let prepare s entries =
  let slots =
    List.map
      (function
        | P_shed { id; op } ->
          Obs.incr "serve.error";
          S_done
            (Json.to_string
               (error_response ~id ~op:(Json.String op)
                  (err "overloaded"
                     (Printf.sprintf "work queue full (capacity %d)" s.cfg.queue))))
        | P_work { id; op; req } -> (
          match decode_work s.cfg op req with
          | w -> (
            match Cache.find s.cfg.cache w.w_key with
            | Some payload ->
              Obs.incr "serve.ok";
              let pj = Json.parse payload in
              S_done
                (Json.to_string
                   (work_response ~id ~w ~cached:true
                      ~obs:(Option.bind (Json.member "obs" pj) Json.to_str)
                      (Option.value ~default:Json.Null (Json.member "result" pj))))
            | None -> S_miss { id; w })
          | exception e ->
            Obs.incr "serve.error";
            S_done
              (Json.to_string (error_response ~id ~op:(Json.String op) (err_of_exn e)))))
      entries
  in
  { w_slots = slots }

(* Distinct cache misses of a wave, first-arrival order; duplicates
   within the wave are computed once and share the result. *)
let wave_misses wave =
  let uniq = Hashtbl.create 8 in
  List.filter_map
    (function
      | S_miss { w; _ } when not (Hashtbl.mem uniq w.w_key) ->
        Hashtbl.add uniq w.w_key ();
        Some w
      | _ -> None)
    wave.w_slots

let wave_size wave = List.length wave.w_slots

let compute_and_store cfg (works : work list) =
  let computed =
    if cfg.obs_mode <> Obs_off then List.map (compute_one cfg) works
    else
      List.map
        (function Ok r -> r | Error e -> Error e)
        (Par.try_map_list (fun w -> compute_one cfg w) works)
  in
  List.map2
    (fun (w : work) (outcome : outcome) ->
      (match outcome with
      | Ok (r, obs, ms) ->
        let payload =
          Json.Obj
            (("result", r)
            :: (match obs with Some o -> [ ("obs", Json.String o) ] | None -> []))
        in
        Cache.store ~cost_ms:ms cfg.cache w.w_key (Json.to_string payload)
      | Error _ -> ());
      (w.w_key, outcome))
    works computed

let finish_wave ~find wave =
  List.map
    (function
      | S_done line -> line
      | S_miss { id; w } -> (
        match (find w.w_key : outcome option) with
        | Some (Ok (r, obs, _ms)) ->
          Obs.incr "serve.ok";
          Json.to_string (work_response ~id ~w ~cached:false ~obs r)
        | Some (Error e) ->
          Obs.incr "serve.error";
          Json.to_string (error_response ~id ~op:(Json.String w.w_op) (err_of_exn e))
        | None ->
          (* Unreachable when the driver resolves every registered key;
             kept structured so a driver bug cannot kill the daemon. *)
          Obs.incr "serve.error";
          Json.to_string
            (error_response ~id ~op:(Json.String w.w_op)
               (err "internal" "wave outcome missing"))))
    wave.w_slots

(* Synchronous resolution: the whole prepare/compute/finish cycle of one
   session's wave, used by the stdio driver and [run_lines]. *)
let resolve_serial s wave =
  let outs = compute_and_store s.cfg (wave_misses wave) in
  finish_wave ~find:(fun k -> List.assoc_opt k outs) wave

let take_wave s =
  let entries = List.rev s.pending in
  s.pending <- [];
  s.admitted <- 0;
  prepare s entries

let stats_result s =
  let st = Cache.stats s.cfg.cache in
  let looked = st.Cache.hits + st.Cache.misses in
  let round_ms ms = Json.Int (int_of_float (Float.round ms)) in
  (* Only shards that hold (or evicted) something are listed: stats
     stay one readable line at the default shard count. *)
  let shard_json =
    List.filter_map
      (fun (i, (sh : Cache.shard_stats)) ->
        if sh.Cache.sh_entries > 0 || sh.Cache.sh_evictions > 0 then
          Some
            (Json.Obj
               [
                 ("shard", Json.Int i);
                 ("entries", Json.Int sh.Cache.sh_entries);
                 ("bytes", Json.Int sh.Cache.sh_bytes);
                 ("ms", round_ms sh.Cache.sh_ms);
                 ("evictions", Json.Int sh.Cache.sh_evictions);
               ])
        else None)
      (List.mapi (fun i sh -> (i, sh)) st.Cache.shards)
  in
  Json.Obj
    [
      ("requests", Json.Int s.requests);
      ("shed", Json.Int s.shed);
      ("batching", Json.Bool s.batching);
      ("queue_capacity", Json.Int s.cfg.queue);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int st.Cache.hits);
            ("misses", Json.Int st.Cache.misses);
            ("stores", Json.Int st.Cache.stores);
            ("evictions", Json.Int st.Cache.evictions);
            ("corrupt", Json.Int st.Cache.corrupt);
            ("entries", Json.Int st.Cache.entries);
            ("retained_bytes", Json.Int st.Cache.retained_bytes);
            ("retained_ms", round_ms st.Cache.retained_ms);
            ("shards", Json.List shard_json);
            ( "hit_rate",
              Json.Float
                (if looked = 0 then 0.0
                 else float_of_int st.Cache.hits /. float_of_int looked) );
          ] );
    ]

(* What a driver does with one input line: emit rendered response lines
   as-is, or resolve a wave first (serially here, or merged into a
   multi-connection fan-out by the mux) and emit its responses. *)
type event = Lines of string list | Wave of wave

(* [shed_work] is the driver's backpressure lever: when set, well-formed
   work ops are answered [overloaded] immediately instead of being
   computed, while control ops still go through (so a flooding client
   can still ping, read stats, or shut the batch down). *)
let feed_events ?(shed_work = false) s line =
  if s.stop then []
  else
    match Json.parse line with
    | exception (Json.Parse_error _ as e) ->
      Obs.incr "serve.error";
      [ Lines
          [ Json.to_string (error_response ~id:Json.Null ~op:Json.Null (err_of_exn e)) ]
      ]
    | req -> (
      let id =
        match Json.member "id" req with
        | Some id -> id
        | None ->
          s.seq <- s.seq + 1;
          Json.Int s.seq
      in
      let bad e =
        Obs.incr "serve.error";
        [ Lines [ Json.to_string (error_response ~id ~op:Json.Null (err_of_exn e)) ] ]
      in
      match req with
      | Json.Obj _ -> (
        match str_field req "op" with
        | exception e -> bad e
        | None -> bad (Bad_request "an op field is required")
        | Some op -> (
          match op with
          | "check" | "synth" | "sim" | "fuzz" ->
            s.requests <- s.requests + 1;
            Obs.incr "serve.requests";
            if shed_work then begin
              s.shed <- s.shed + 1;
              Obs.incr "serve.shed";
              Obs.incr "serve.error";
              [ Lines
                  [ Json.to_string
                      (error_response ~id ~op:(Json.String op)
                         (err "overloaded" "client is not draining responses")) ]
              ]
            end
            else if not s.batching then begin
              s.pending <- [ P_work { id; op; req } ];
              s.admitted <- 1;
              [ Wave (take_wave s) ]
            end
            else if s.admitted < s.cfg.queue then begin
              s.pending <- P_work { id; op; req } :: s.pending;
              s.admitted <- s.admitted + 1;
              []
            end
            else begin
              s.shed <- s.shed + 1;
              Obs.incr "serve.shed";
              s.pending <- P_shed { id; op } :: s.pending;
              []
            end
          | "ping" -> (
            match check_fields "ping" req [] with
            | () ->
              [ Lines
                  [ Json.to_string
                      (control_response ~id ~op (Json.Obj [ ("pong", Json.Bool true) ]))
                  ]
              ]
            | exception e -> bad e)
          | "stats" -> (
            match check_fields "stats" req [] with
            | () -> [ Lines [ Json.to_string (control_response ~id ~op (stats_result s)) ] ]
            | exception e -> bad e)
          | "batch" ->
            s.batching <- true;
            [ Lines
                [ Json.to_string
                    (control_response ~id ~op (Json.Obj [ ("batching", Json.Bool true) ]))
                ]
            ]
          | "flush" ->
            let admitted = s.admitted
            and shed = List.length s.pending - s.admitted in
            [ Wave (take_wave s);
              Lines
                [ Json.to_string
                    (control_response ~id ~op
                       (Json.Obj
                          [ ("flushed", Json.Int admitted); ("shed", Json.Int shed) ]))
                ]
            ]
          | "shutdown" ->
            let flushed = s.admitted in
            let wave = take_wave s in
            s.stop <- true;
            [ Wave wave;
              Lines
                [ Json.to_string
                    (control_response ~id ~op
                       (Json.Obj
                          [ ("stopping", Json.Bool true);
                            ("pending_flushed", Json.Int flushed) ]))
                ]
            ]
          | op -> bad (Bad_request (Printf.sprintf "unknown op %S" op))))
      | _ -> bad (Bad_request "request must be a JSON object"))

let finish_events s = if s.stop then [] else [ Wave (take_wave s) ]

let run_events s events =
  List.concat_map
    (function Lines ls -> ls | Wave w -> resolve_serial s w)
    events

let feed ?shed_work s line = run_events s (feed_events ?shed_work s line)
let finish s = run_events s (finish_events s)

let run_lines cfg lines =
  let s = session cfg in
  let responses =
    List.concat_map (fun line -> if s.stop then [] else feed s line) lines
  in
  responses @ finish s

(* --- drivers --- *)

(* Buffered line reading over a raw fd, interruptible by the signal
   flag: [input_line] would restart blocking reads across signals, and
   a drain-and-exit needs to observe them. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

let reader fd = { fd; buf = Buffer.create 4096; eof = false }

let rec next_line r ~stop =
  let data = Buffer.contents r.buf in
  match String.index_opt data '\n' with
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_string r.buf (String.sub data (i + 1) (String.length data - i - 1));
    `Line (String.sub data 0 i)
  | None ->
    if r.eof then
      if data = "" then `Eof
      else begin
        Buffer.clear r.buf;
        `Line data
      end
    else if stop () then `Interrupted
    else begin
      let chunk = Bytes.create 4096 in
      (match Unix.read r.fd chunk 0 4096 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0 -> r.eof <- true
      | n -> Buffer.add_subbytes r.buf chunk 0 n);
      next_line r ~stop
    end

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
    | n -> write_all fd s (pos + n) (len - n)

let with_signals f =
  let flag = ref false in
  let install sg = Sys.signal sg (Sys.Signal_handle (fun _ -> flag := true)) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () -> f (fun () -> !flag))

let run_stdio cfg =
  with_signals @@ fun stop ->
  let s = session cfg in
  let r = reader Unix.stdin in
  let emit lines =
    List.iter
      (fun l ->
        print_string l;
        print_newline ())
      lines;
    flush stdout
  in
  let rec loop () =
    if s.stop then 0
    else
      match next_line r ~stop with
      | `Line line ->
        emit (feed s line);
        loop ()
      | `Eof | `Interrupted ->
        emit (finish s);
        0
  in
  loop ()
