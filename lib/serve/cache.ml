module Obs = Rtcad_obs.Obs

type entry = { payload : string; mutable tick : int }

type t = {
  capacity : int;
  dir : string option;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  entries : int;
}

let magic = "rtcad-serve-cache/1"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  end

let create ?(capacity = 256) ?dir () =
  Option.iter mkdir_p dir;
  {
    capacity = max 1 capacity;
    dir;
    table = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    corrupt = 0;
  }

let capacity t = t.capacity
let dir t = t.dir

(* Length-prefixing makes the digest injective over the part list:
   ["ab"; "c"] and ["a"; "bc"] hash differently. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* The LRU scan is O(entries); capacities are small (hundreds) and the
   determinism of "evict the minimum tick" is worth more here than a
   doubly-linked list. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.tick -> ()
      | _ -> victim := Some (k, e.tick))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1;
    Obs.incr "serve.cache.evict"
  | None -> ()

let insert_mem t k payload =
  match Hashtbl.find_opt t.table k with
  | Some e -> touch t e
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let e = { payload; tick = 0 } in
    touch t e;
    Hashtbl.replace t.table k e

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A disk entry is [magic ^ " " ^ md5(payload) ^ "\n" ^ payload]; any
   header or checksum mismatch means the entry was corrupted (or written
   by a different format version) and must be recomputed, not served. *)
let disk_find t k =
  match disk_path t k with
  | None -> None
  | Some path -> (
    match read_file path with
    | exception Sys_error _ -> None
    | data -> (
      let corrupt () =
        t.corrupt <- t.corrupt + 1;
        Obs.incr "serve.cache.corrupt";
        (try Sys.remove path with Sys_error _ -> ());
        None
      in
      match String.index_opt data '\n' with
      | None -> corrupt ()
      | Some nl -> (
        let header = String.sub data 0 nl in
        let payload = String.sub data (nl + 1) (String.length data - nl - 1) in
        match String.split_on_char ' ' header with
        | [ m; sum ] when m = magic ->
          if String.equal sum (Digest.to_hex (Digest.string payload)) then
            Some payload
          else corrupt ()
        | _ -> corrupt ())))

let disk_store t k payload =
  match disk_path t k with
  | None -> ()
  | Some path ->
    let data =
      Printf.sprintf "%s %s\n%s" magic (Digest.to_hex (Digest.string payload))
        payload
    in
    (* Best-effort: a full disk must not take the daemon down, it just
       loses persistence for this entry. *)
    (match Obs.write_file ~path data with Ok () -> () | Error _ -> ())

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Obs.incr "serve.cache.hit";
    Some e.payload
  | None -> (
    match disk_find t k with
    | Some payload ->
      insert_mem t k payload;
      t.hits <- t.hits + 1;
      Obs.incr "serve.cache.hit";
      Some payload
    | None ->
      t.misses <- t.misses + 1;
      Obs.incr "serve.cache.miss";
      None)

let store t k payload =
  insert_mem t k payload;
  disk_store t k payload;
  t.stores <- t.stores + 1;
  Obs.incr "serve.cache.store"

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    corrupt = t.corrupt;
    entries = Hashtbl.length t.table;
  }
