module Obs = Rtcad_obs.Obs

type entry = { payload : string; cost_ms : float; mutable tick : int }

(* Cost of keeping an entry resident: its serialized bytes plus the
   compute time it saves on a hit.  Both are retained per shard so the
   stats can report them separately. *)
let entry_cost e = String.length e.payload + int_of_float (Float.ceil e.cost_ms)

type shard = {
  table : (string, entry) Hashtbl.t;
  mutable s_cost : int;  (** sum of [entry_cost] over the table *)
  mutable s_bytes : int;
  mutable s_ms : float;
  mutable s_evictions : int;
}

type t = {
  shards : shard array;
  shard_budget : int;
  shard_capacity : int option;
  dir : string option;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
}

type shard_stats = {
  sh_entries : int;
  sh_bytes : int;
  sh_ms : float;
  sh_evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  entries : int;
  retained_bytes : int;
  retained_ms : float;
  shards : shard_stats list;
}

let magic = "rtcad-serve-cache/1"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  end

let default_budget = 32 * 1024 * 1024

let create ?(shards = 8) ?(budget = default_budget) ?capacity ?dir () =
  if shards < 1 then invalid_arg "Cache.create: shards must be positive";
  if budget < 1 then invalid_arg "Cache.create: budget must be positive";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be positive"
  | _ -> ());
  Option.iter mkdir_p dir;
  {
    shards =
      Array.init shards (fun _ ->
          {
            table = Hashtbl.create 16;
            s_cost = 0;
            s_bytes = 0;
            s_ms = 0.0;
            s_evictions = 0;
          });
    (* Budgets divide evenly: with one shard the whole budget applies,
       which is what the deterministic eviction tests pin down. *)
    shard_budget = max 1 (budget / shards);
    shard_capacity =
      Option.map (fun c -> max 1 ((c + shards - 1) / shards)) capacity;
    dir;
    clock = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
  }

let num_shards (t : t) = Array.length t.shards
let dir (t : t) = t.dir

(* Keys are md5 hex digests ({!key}); the first two hex characters are a
   uniform hash prefix.  Arbitrary keys (unit tests) fall back to a
   deterministic structural hash. *)
let shard_index (t : t) k =
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  let n = Array.length t.shards in
  if n = 1 then 0
  else
    match if String.length k >= 2 then (hex k.[0], hex k.[1]) else (None, None) with
    | Some a, Some b -> ((a * 16) + b) mod n
    | _ -> Hashtbl.hash k mod n

let shard_of (t : t) k = t.shards.(shard_index t k)

(* Length-prefixing makes the digest injective over the part list:
   ["ab"; "c"] and ["a"; "bc"] hash differently. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* Gauges are only rebuilt when recording is on; the daemon's stats op
   reads the same numbers synchronously via {!stats}. *)
let publish_gauges (t : t) =
  if Obs.enabled () then begin
    let entries = ref 0 and bytes = ref 0 and ms = ref 0.0 in
    Array.iteri
      (fun i s ->
        entries := !entries + Hashtbl.length s.table;
        bytes := !bytes + s.s_bytes;
        ms := !ms +. s.s_ms;
        let g name v =
          Obs.set_gauge (Printf.sprintf "serve.cache.shard%d.%s" i name) v
        in
        g "entries" (float_of_int (Hashtbl.length s.table));
        g "bytes" (float_of_int s.s_bytes);
        g "ms" s.s_ms;
        g "evictions" (float_of_int s.s_evictions))
      t.shards;
    Obs.set_gauge "serve.cache.entries" (float_of_int !entries);
    Obs.set_gauge "serve.cache.retained_bytes" (float_of_int !bytes);
    Obs.set_gauge "serve.cache.retained_ms" !ms
  end

let remove_entry sh k e =
  Hashtbl.remove sh.table k;
  sh.s_cost <- sh.s_cost - entry_cost e;
  sh.s_bytes <- sh.s_bytes - String.length e.payload;
  sh.s_ms <- sh.s_ms -. e.cost_ms

(* The LRU scan is O(entries); shards keep each table small and the
   determinism of "evict the minimum tick" is worth more here than a
   doubly-linked list. *)
let evict_lru sh =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, v) when v.tick <= e.tick -> ()
      | _ -> victim := Some (k, e))
    sh.table;
  match !victim with
  | Some (k, e) ->
    remove_entry sh k e;
    sh.s_evictions <- sh.s_evictions + 1;
    Obs.incr "serve.cache.evict";
    true
  | None -> false

let over_budget t sh ~protect =
  (sh.s_cost > t.shard_budget && Hashtbl.length sh.table > protect)
  || (match t.shard_capacity with
     | Some cap -> Hashtbl.length sh.table > cap
     | None -> false)

let insert_mem ?(cost_ms = 0.0) t k payload =
  let sh = shard_of t k in
  match Hashtbl.find_opt sh.table k with
  | Some e -> touch t e
  | None ->
    (* Make room by count first (pre-insertion, preserving the classic
       LRU bound), then admit and shave the cost budget down — never
       evicting the entry just inserted, so a single oversized result
       still caches (and is the next LRU victim). *)
    (match t.shard_capacity with
    | Some cap ->
      while Hashtbl.length sh.table >= cap && evict_lru sh do
        ()
      done
    | None -> ());
    let e = { payload; cost_ms; tick = 0 } in
    touch t e;
    Hashtbl.replace sh.table k e;
    sh.s_cost <- sh.s_cost + entry_cost e;
    sh.s_bytes <- sh.s_bytes + String.length payload;
    sh.s_ms <- sh.s_ms +. cost_ms;
    while over_budget t sh ~protect:1 && evict_lru sh do
      ()
    done

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A disk entry is [magic ^ " " ^ md5(payload) ^ "\n" ^ payload]; any
   header or checksum mismatch means the entry was corrupted (or written
   by a different format version) and must be recomputed, not served. *)
let disk_find t k =
  match disk_path t k with
  | None -> None
  | Some path -> (
    match read_file path with
    | exception Sys_error _ -> None
    | data -> (
      let corrupt () =
        t.corrupt <- t.corrupt + 1;
        Obs.incr "serve.cache.corrupt";
        (try Sys.remove path with Sys_error _ -> ());
        None
      in
      match String.index_opt data '\n' with
      | None -> corrupt ()
      | Some nl -> (
        let header = String.sub data 0 nl in
        let payload = String.sub data (nl + 1) (String.length data - nl - 1) in
        match String.split_on_char ' ' header with
        | [ m; sum ] when m = magic ->
          if String.equal sum (Digest.to_hex (Digest.string payload)) then
            Some payload
          else corrupt ()
        | _ -> corrupt ())))

let disk_store t k payload =
  match disk_path t k with
  | None -> ()
  | Some path ->
    let data =
      Printf.sprintf "%s %s\n%s" magic (Digest.to_hex (Digest.string payload))
        payload
    in
    (* Best-effort: a full disk must not take the daemon down, it just
       loses persistence for this entry. *)
    (match Obs.write_file ~path data with Ok () -> () | Error _ -> ())

let find t k =
  match Hashtbl.find_opt (shard_of t k).table k with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Obs.incr "serve.cache.hit";
    Some e.payload
  | None -> (
    match disk_find t k with
    | Some payload ->
      (* The disk header records no compute time, so a promoted entry's
         retained cost is its bytes alone. *)
      insert_mem t k payload;
      t.hits <- t.hits + 1;
      Obs.incr "serve.cache.hit";
      publish_gauges t;
      Some payload
    | None ->
      t.misses <- t.misses + 1;
      Obs.incr "serve.cache.miss";
      None)

let store ?cost_ms t k payload =
  insert_mem ?cost_ms t k payload;
  disk_store t k payload;
  t.stores <- t.stores + 1;
  Obs.incr "serve.cache.store";
  publish_gauges t

let stats (t : t) =
  let shards =
    Array.to_list
      (Array.map
         (fun s ->
           {
             sh_entries = Hashtbl.length s.table;
             sh_bytes = s.s_bytes;
             sh_ms = s.s_ms;
             sh_evictions = s.s_evictions;
           })
         t.shards)
  in
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = List.fold_left (fun a s -> a + s.sh_evictions) 0 shards;
    corrupt = t.corrupt;
    entries = List.fold_left (fun a s -> a + s.sh_entries) 0 shards;
    retained_bytes = List.fold_left (fun a s -> a + s.sh_bytes) 0 shards;
    retained_ms = List.fold_left (fun a s -> a +. s.sh_ms) 0.0 shards;
    shards;
  }
