module Obs = Rtcad_obs.Obs

type config = {
  base : Serve.config;
  wave_max : int;
  wave_ms : float;
  backlog : int;
  rbuf_limit : int;
  wq_limit : int;
}

let default base =
  {
    base;
    wave_max = 16;
    wave_ms = 2.0;
    backlog = 64;
    rbuf_limit = 1 lsl 20;
    wq_limit = 8 * 1024 * 1024;
  }

exception Busy of string

(* --- per-connection state --- *)

(* A connection's output is an ordered queue of items: rendered lines,
   or a wave still missing some of its keys' outcomes.  Items leave the
   queue head-first and only when ready, so each connection's response
   stream keeps its own arrival order no matter how waves from different
   connections interleave in the pool. *)
type out_item = O_lines of string list | O_wave of owave

and owave = {
  wave : Serve.wave;
  outcomes : (string, Serve.outcome) Hashtbl.t;
  mutable missing : int;
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  sess : Serve.session;
  rbuf : Buffer.t;
  outq : out_item Queue.t;
  wq : string Queue.t;
  mutable w_off : int;  (** bytes of the head chunk already written *)
  mutable w_bytes : int;  (** total queued output bytes *)
  mutable reof : bool;
  mutable overflowed : bool;  (** poisoned by an overlong line *)
  mutable finished : bool;  (** end-of-input wave emitted *)
  mutable dead : bool;
}

(* --- the shared miss pool --- *)

(* Distinct cache misses from every connection's pending waves, in
   pooling order.  One key, one computation: waves waiting on the same
   key are all waiters of one item. *)
type pool_item = {
  p_work : Serve.work;
  p_born : float;
  mutable p_waiters : owave list;
}

type pool = {
  items : (string, pool_item) Hashtbl.t;
  order : string Queue.t;
  mutable count : int;
}

(* --- socket claiming --- *)

(* A leftover socket file from a crashed daemon must not wedge the next
   start, but a live daemon's socket must not be stolen: probe-connect
   to tell the two apart. *)
let claim_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
      (fun () ->
        (* Non-blocking: a live daemon with a full accept backlog must
           answer EAGAIN/EINPROGRESS here, not block the probe forever
           (blocking unix-socket connects never return those). *)
        Unix.set_nonblock probe;
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> raise (Busy path)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINPROGRESS), _, _) ->
          (* Accept queue full: very much alive. *)
          raise (Busy path)
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())))
  | _ -> raise (Sys_error (path ^ ": exists and is not a socket"))

(* --- the event loop --- *)

let run (cfg : config) ~path =
  if cfg.wave_max < 1 then invalid_arg "Mux.run: wave_max must be positive";
  if cfg.backlog < 1 then invalid_arg "Mux.run: backlog must be positive";
  if cfg.wave_ms < 0.0 then invalid_arg "Mux.run: wave_ms must be non-negative";
  Serve.with_signals @@ fun sigstop ->
  (* Writes to a client that vanished must surface as EPIPE on that
     connection's fd — not as a process-killing SIGPIPE — so only the
     offending connection dies. *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe old_pipe)
  @@ fun () ->
  claim_socket path;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd cfg.backlog;
  Unix.set_nonblock lfd;
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let pool = { items = Hashtbl.create 16; order = Queue.create (); count = 0 } in
  let next_cid = ref 0 in
  let shutting = ref false in
  let kill conn =
    if not conn.dead then begin
      conn.dead <- true;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Hashtbl.remove conns conn.cid;
      Obs.incr "serve.mux.closed"
    end
  in
  let enqueue_lines conn lines =
    List.iter
      (fun l ->
        Queue.add (l ^ "\n") conn.wq;
        conn.w_bytes <- conn.w_bytes + String.length l + 1)
      lines
  in
  (* Move ready items off the head of the out queue into the byte queue. *)
  let rec drain_out conn =
    match Queue.peek_opt conn.outq with
    | Some (O_lines ls) ->
      ignore (Queue.pop conn.outq);
      enqueue_lines conn ls;
      drain_out conn
    | Some (O_wave ow) when ow.missing = 0 ->
      ignore (Queue.pop conn.outq);
      enqueue_lines conn
        (Serve.finish_wave ~find:(Hashtbl.find_opt ow.outcomes) ow.wave);
      drain_out conn
    | _ -> ()
  in
  let enqueue_wave conn wave =
    let ow = { wave; outcomes = Hashtbl.create 4; missing = 0 } in
    List.iter
      (fun (w : Serve.work) ->
        ow.missing <- ow.missing + 1;
        match Hashtbl.find_opt pool.items w.Serve.w_key with
        | Some item -> item.p_waiters <- ow :: item.p_waiters
        | None ->
          Hashtbl.add pool.items w.Serve.w_key
            { p_work = w; p_born = Obs.time_ms (); p_waiters = [ ow ] };
          Queue.add w.Serve.w_key pool.order;
          pool.count <- pool.count + 1)
      (Serve.wave_misses wave);
    Queue.add (O_wave ow) conn.outq
  in
  let enqueue_events conn events =
    List.iter
      (function
        | Serve.Lines ls -> Queue.add (O_lines ls) conn.outq
        | Serve.Wave w -> enqueue_wave conn w)
      events;
    drain_out conn
  in
  let has_unresolved conn =
    Queue.fold
      (fun acc -> function O_wave ow -> acc || ow.missing > 0 | O_lines _ -> acc)
      false conn.outq
  in
  let take_line conn =
    let data = Buffer.contents conn.rbuf in
    match String.index_opt data '\n' with
    | Some i ->
      Buffer.clear conn.rbuf;
      Buffer.add_substring conn.rbuf data (i + 1) (String.length data - i - 1);
      Some (String.sub data 0 i)
    | None ->
      if String.length data > cfg.rbuf_limit then begin
        conn.overflowed <- true;
        Buffer.clear conn.rbuf;
        Obs.incr "serve.mux.overflow";
        enqueue_events conn
          [
            Serve.Lines
              [
                Json.to_string
                  (Serve.error_response ~id:Json.Null ~op:Json.Null
                     (Serve.err "too_large"
                        (Printf.sprintf "input line exceeds %d bytes"
                           cfg.rbuf_limit)));
              ];
          ];
        None
      end
      else if conn.reof && data <> "" then begin
        Buffer.clear conn.rbuf;
        Some data
      end
      else None
  in
  (* Parse as far as the one-wave-in-flight rule allows: a connection's
     next line is only interpreted once its previous wave has resolved,
     so wave interleaving and RTCAD_JOBS can never reorder or alter a
     connection's responses — for a fixed multi-client schedule each
     stream is byte-identical across runs.  (The cache is shared, so a
     key another client computed earlier is still served [cached].) *)
  let rec parse_loop conn =
    if
      (not conn.dead) && (not conn.overflowed)
      && (not (Serve.stopped conn.sess))
      && not (has_unresolved conn)
    then
      match take_line conn with
      | Some line ->
        let shed_work = conn.w_bytes > cfg.wq_limit in
        if shed_work then Obs.incr "serve.mux.backpressure";
        enqueue_events conn (Serve.feed_events ~shed_work conn.sess line);
        if Serve.stopped conn.sess then shutting := true;
        parse_loop conn
      | None ->
        if conn.reof && not conn.finished then begin
          conn.finished <- true;
          enqueue_events conn (Serve.finish_events conn.sess)
        end
  in
  (* Resolve up to [wave_max] pooled misses as one fan-out over the
     domain pool, feed the outcomes to every waiting wave, then let the
     unblocked connections parse further buffered input. *)
  let dispatch_wave () =
    let works = ref [] in
    let n = min cfg.wave_max pool.count in
    for _ = 1 to n do
      let k = Queue.pop pool.order in
      match Hashtbl.find_opt pool.items k with
      | Some item ->
        Hashtbl.remove pool.items k;
        pool.count <- pool.count - 1;
        works := (k, item) :: !works
      | None -> ()
    done;
    let works = List.rev !works in
    Obs.incr "serve.mux.waves";
    Obs.incr ~by:(List.length works) "serve.mux.wave_items";
    let outs =
      Serve.compute_and_store cfg.base (List.map (fun (_, i) -> i.p_work) works)
    in
    List.iter2
      (fun (_, item) (key, outcome) ->
        List.iter
          (fun ow ->
            if not (Hashtbl.mem ow.outcomes key) then begin
              Hashtbl.replace ow.outcomes key outcome;
              ow.missing <- ow.missing - 1
            end)
          item.p_waiters)
      works outs;
    Hashtbl.iter
      (fun _ conn ->
        drain_out conn;
        parse_loop conn)
      conns
  in
  let want_read conn =
    (not conn.dead) && (not conn.reof) && (not conn.overflowed)
    && (not !shutting)
    && Buffer.length conn.rbuf <= cfg.rbuf_limit
    && conn.w_bytes <= 2 * cfg.wq_limit
  in
  let rec flush_writes conn =
    if (not conn.dead) && conn.w_bytes > 0 then
      match Queue.peek_opt conn.wq with
      | None -> conn.w_bytes <- 0
      | Some chunk -> (
        let len = String.length chunk - conn.w_off in
        match Unix.write_substring conn.fd chunk conn.w_off len with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_writes conn
        | exception Unix.Unix_error _ -> kill conn
        | n ->
          conn.w_bytes <- conn.w_bytes - n;
          if n = len then begin
            ignore (Queue.pop conn.wq);
            conn.w_off <- 0;
            flush_writes conn
          end
          else conn.w_off <- conn.w_off + n)
  in
  let read_chunk conn =
    let buf = Bytes.create 65536 in
    match Unix.read conn.fd buf 0 65536 with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> conn.reof <- true
    | 0 -> conn.reof <- true
    | n -> Buffer.add_subbytes conn.rbuf buf 0 n
  in
  let accept_all () =
    let rec go () =
      match Unix.accept lfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
        (* Client gone before we accepted: skip it, keep accepting. *)
        go ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* Fd exhaustion: stop accepting this round but keep serving the
           connections we have; draining them frees descriptors. *)
        Obs.incr "serve.mux.accept_overload"
      | cfd, _ ->
        Unix.set_nonblock cfd;
        incr next_cid;
        Hashtbl.replace conns !next_cid
          {
            fd = cfd;
            cid = !next_cid;
            sess = Serve.session cfg.base;
            rbuf = Buffer.create 4096;
            outq = Queue.create ();
            wq = Queue.create ();
            w_off = 0;
            w_bytes = 0;
            reof = false;
            overflowed = false;
            finished = false;
            dead = false;
          };
        Obs.incr "serve.mux.accept";
        go ()
    in
    go ()
  in
  (* Connections are visited in rotating cid order so one chatty client
     cannot starve the others within a loop round. *)
  let cursor = ref 0 in
  let conns_rotated () =
    let ids = Hashtbl.fold (fun cid _ acc -> cid :: acc) conns [] in
    let ids = List.sort compare ids in
    let after, before = List.partition (fun cid -> cid > !cursor) ids in
    let order = after @ before in
    (match order with c :: _ -> cursor := c | [] -> ());
    List.filter_map (Hashtbl.find_opt conns) order
  in
  let oldest_age now =
    match Queue.peek_opt pool.order with
    | None -> None
    | Some k -> (
      match Hashtbl.find_opt pool.items k with
      | Some item -> Some (now -. item.p_born)
      | None -> None)
  in
  (* Fire a wave when the pool is big enough, old enough, or the read
     side has gone quiet (nothing more is arriving right now, so waiting
     would only add latency). *)
  let rec settle () =
    if pool.count > 0 then begin
      (* After a parse round, any bytes still buffered belong to
         connections blocked on their own wave — they cannot add to the
         pool until it resolves — so "idle" only asks whether more input
         is arriving right now. *)
      let idle () =
        let rfds =
          Hashtbl.fold
            (fun _ c acc -> if want_read c then c.fd :: acc else acc)
            conns []
        in
        match Unix.select rfds [] [] 0.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        | [], _, _ -> true
        | _ -> false
      in
      let aged =
        match oldest_age (Obs.time_ms ()) with
        | Some age -> age >= cfg.wave_ms
        | None -> false
      in
      if pool.count >= cfg.wave_max || aged || idle () then begin
        dispatch_wave ();
        settle ()
      end
    end
  in
  let reap () =
    let doomed =
      Hashtbl.fold
        (fun _ c acc ->
          if
            (not c.dead)
            && (c.finished || c.overflowed)
            && Queue.is_empty c.outq && c.w_bytes = 0
          then c :: acc
          else acc)
        conns []
    in
    List.iter kill doomed
  in
  (* Resolve everything outstanding, then give clients a short grace
     window to drain their responses before the daemon exits. *)
  let finalize () =
    while pool.count > 0 do
      dispatch_wave ()
    done;
    Hashtbl.iter (fun _ c -> drain_out c) conns;
    let deadline = Obs.time_ms () +. 2000.0 in
    let rec grace () =
      let ws =
        Hashtbl.fold
          (fun _ c acc -> if (not c.dead) && c.w_bytes > 0 then c :: acc else acc)
          conns []
      in
      if ws <> [] && Obs.time_ms () < deadline then begin
        (match Unix.select [] (List.map (fun c -> c.fd) ws) [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | _, wfds, _ ->
          List.iter (fun c -> if List.mem c.fd wfds then flush_writes c) ws);
        grace ()
      end
    in
    grace ();
    (* kill removes from [conns]; never mutate a table mid-iteration. *)
    Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter kill;
    0
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        if !shutting || sigstop () then finalize ()
        else begin
          let rfds =
            lfd
            :: Hashtbl.fold
                 (fun _ c acc -> if want_read c then c.fd :: acc else acc)
                 conns []
          in
          let wfds =
            Hashtbl.fold
              (fun _ c acc ->
                if (not c.dead) && c.w_bytes > 0 then c.fd :: acc else acc)
              conns []
          in
          let timeout =
            if pool.count > 0 then
              match oldest_age (Obs.time_ms ()) with
              | Some age -> Float.max 0.0 (Float.min 0.2 ((cfg.wave_ms -. age) /. 1000.0))
              | None -> 0.0
            else 0.2
          in
          (match Unix.select rfds wfds [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ ->
            List.iter
              (fun conn -> if List.mem conn.fd ws then flush_writes conn)
              (conns_rotated ());
            if List.mem lfd rs then accept_all ();
            List.iter
              (fun conn ->
                if List.mem conn.fd rs then read_chunk conn;
                parse_loop conn;
                flush_writes conn)
              (conns_rotated ()));
          settle ();
          reap ();
          loop ()
        end
      in
      loop ())
