type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

let fail pos msg = raise (Parse_error { pos; msg })

(* --- parsing --- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st.pos (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st.pos (Printf.sprintf "expected %c, found end of input" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail (st.pos + i) "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then fail st.pos "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.pos >= String.length st.src then fail st.pos "unterminated escape";
      let e = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let hi = parse_hex4 st in
        (* Surrogate pair: a high surrogate must be followed by \uDC00-
           \uDFFF; combine into one scalar value. *)
        if hi >= 0xD800 && hi <= 0xDBFF then begin
          if
            st.pos + 6 <= String.length st.src
            && st.src.[st.pos] = '\\'
            && st.src.[st.pos + 1] = 'u'
          then begin
            st.pos <- st.pos + 2;
            let lo = parse_hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then fail st.pos "invalid low surrogate";
            add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else fail st.pos "lone high surrogate"
        end
        else if hi >= 0xDC00 && hi <= 0xDFFF then fail st.pos "lone low surrogate"
        else add_utf8 buf hi
      | _ -> fail (st.pos - 1) "bad escape character");
      loop ())
    | c when Char.code c < 0x20 -> fail (st.pos - 1) "raw control character in string"
    | c ->
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  (match peek st with Some '-' -> st.pos <- st.pos + 1 | _ -> ());
  let digits () =
    let d0 = st.pos in
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = d0 then fail st.pos "expected digit"
  in
  digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    st.pos <- st.pos + 1;
    (match peek st with
    | Some ('+' | '-') -> st.pos <- st.pos + 1
    | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let kpos = st.pos in
        let k = parse_string st in
        if List.mem_assoc k !fields then
          fail kpos (Printf.sprintf "duplicate key %S" k);
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st.pos "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st.pos "expected , or ] in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st.pos "trailing garbage after value";
  v

(* --- printing --- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6f" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
