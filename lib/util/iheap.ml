(* Int-specialized binary min-heap stored as parallel arrays, so pushes
   and pops allocate nothing (amortized).  Entries carry a sequence
   number: equal keys pop in insertion order, matching {!Heap}. *)

type t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let is_empty h = h.size = 0
let length h = h.size

let less h i j =
  let ki = Array.unsafe_get h.keys i and kj = Array.unsafe_get h.keys j in
  ki < kj || (ki = kj && Array.unsafe_get h.seqs i < Array.unsafe_get h.seqs j)

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let grow h =
  let cap = Array.length h.keys in
  if h.size >= cap then begin
    let ncap = 2 * cap in
    let extend a =
      let a' = Array.make ncap 0 in
      Array.blit a 0 a' 0 h.size;
      a'
    in
    h.keys <- extend h.keys;
    h.seqs <- extend h.seqs;
    h.vals <- extend h.vals
  end

let push h key value =
  grow h;
  let i = ref h.size in
  h.keys.(!i) <- key;
  h.seqs.(!i) <- h.next_seq;
  h.vals.(!i) <- value;
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less h !i parent then begin
      swap h !i parent;
      i := parent
    end
    else continue := false
  done

let top_key h =
  if h.size = 0 then invalid_arg "Iheap.top_key: empty heap";
  h.keys.(0)

let top_value h =
  if h.size = 0 then invalid_arg "Iheap.top_value: empty heap";
  h.vals.(0)

let drop_min h =
  if h.size = 0 then invalid_arg "Iheap.drop_min: empty heap";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h l !smallest then smallest := l;
      if r < h.size && less h r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end

let clear h =
  h.size <- 0;
  h.next_seq <- 0
