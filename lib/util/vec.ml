type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done
