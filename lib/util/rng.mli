(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic components of the library (workload generation, random
    test sequences, randomized environment delays) draw from this generator
    so that experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].  [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0 .. bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks with probability proportional to the integer
    weights.  Total weight must be positive. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val jump : t -> int -> unit
(** [jump t n] advances the generator by exactly [n] draws in O(1):
    afterwards it produces the same values a generator that had made
    [n] single draws would.  Splitmix's state moves by a fixed
    increment per draw, so mid-stream positioning is a multiply-add —
    the basis of the constant-memory workload cursor.  [n >= 0]. *)
