(** Mutable binary min-heaps keyed by integer priorities.

    Used as the event queue of the discrete-event simulators.  Ties are
    broken by insertion order (FIFO among equal keys), which makes
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest key, FIFO among ties. *)

val peek_key : 'a t -> int option
val clear : 'a t -> unit
