(** Streaming summary statistics (count, mean, min, max, variance). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val total : t -> float
val pp : Format.formatter -> t -> unit
