(* Welford's online algorithm for numerically stable mean/variance. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.max_v

let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.n)
let total t = t.sum

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f" t.n (mean t) t.min_v
      t.max_v (stddev t)
