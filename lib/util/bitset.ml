(* Word-packed immutable bit sets: [Sys.int_size] bits per unboxed [int]
   word.  All bulk operations (union, intersection, subset, equality,
   hashing, population count) work a word at a time; iteration extracts
   set bits with lowest-set-bit arithmetic instead of probing every
   index.  Words above bit [n - 1] are always zero — operations rely on
   that invariant. *)

type t = { n : int; words : int array }

let bpw = Sys.int_size
let words_for n = (n + bpw - 1) / bpw

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (words_for n) 0 }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of bounds"

let mem s i =
  check s i;
  Array.unsafe_get s.words (i / bpw) land (1 lsl (i mod bpw)) <> 0

let add s i =
  check s i;
  let j = i / bpw and b = 1 lsl (i mod bpw) in
  if s.words.(j) land b <> 0 then s
  else begin
    let words = Array.copy s.words in
    words.(j) <- words.(j) lor b;
    { s with words }
  end

let remove s i =
  check s i;
  let j = i / bpw and b = 1 lsl (i mod bpw) in
  if s.words.(j) land b = 0 then s
  else begin
    let words = Array.copy s.words in
    words.(j) <- words.(j) land lnot b;
    { s with words }
  end

let set s i v = if v then add s i else remove s i

let check_cap a b = if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union a b =
  check_cap a b;
  let len = Array.length a.words in
  let words = Array.make len 0 in
  for j = 0 to len - 1 do
    Array.unsafe_set words j
      (Array.unsafe_get a.words j lor Array.unsafe_get b.words j)
  done;
  { a with words }

let inter a b =
  check_cap a b;
  let len = Array.length a.words in
  let words = Array.make len 0 in
  for j = 0 to len - 1 do
    Array.unsafe_set words j
      (Array.unsafe_get a.words j land Array.unsafe_get b.words j)
  done;
  { a with words }

let diff a b =
  check_cap a b;
  let len = Array.length a.words in
  let words = Array.make len 0 in
  for j = 0 to len - 1 do
    Array.unsafe_set words j
      (Array.unsafe_get a.words j land lnot (Array.unsafe_get b.words j))
  done;
  { a with words }

(* Inner loops are top-level functions with explicit arguments: local
   [let rec] helpers capture their environment and are allocated as
   closures on every call, which dominates the profile in the hot
   word-wise operations. *)
let rec words_zero w j = j >= Array.length w || (Array.unsafe_get w j = 0 && words_zero w (j + 1))

let is_empty s = words_zero s.words 0

let rec words_subset x y j =
  j >= Array.length x
  || (Array.unsafe_get x j land lnot (Array.unsafe_get y j) = 0 && words_subset x y (j + 1))

let subset a b =
  check_cap a b;
  words_subset a.words b.words 0

let rec words_disjoint x y j =
  j >= Array.length x
  || (Array.unsafe_get x j land Array.unsafe_get y j = 0 && words_disjoint x y (j + 1))

let disjoint a b =
  check_cap a b;
  words_disjoint a.words b.words 0

(* 16-bit population-count table (one byte per entry). *)
let popcount16 =
  let t = Bytes.create 65536 in
  Bytes.unsafe_set t 0 '\000';
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount w =
  Char.code (Bytes.unsafe_get popcount16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get popcount16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get popcount16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get popcount16 (w lsr 48))

let cardinal s =
  let acc = ref 0 in
  for j = 0 to Array.length s.words - 1 do
    acc := !acc + popcount (Array.unsafe_get s.words j)
  done;
  !acc

let rec words_equal x y j =
  j >= Array.length x || (Array.unsafe_get x j = Array.unsafe_get y j && words_equal x y (j + 1))

let equal a b = a.n = b.n && words_equal a.words b.words 0

let rec words_equal_flip x y j0 bit j =
  j >= Array.length x
  || (Array.unsafe_get x j
        = (let y' = Array.unsafe_get y j in
           if j = j0 then y' lxor bit else y')
     && words_equal_flip x y j0 bit (j + 1))

let equal_flip a b i =
  check_cap a b;
  check a i;
  words_equal_flip a.words b.words (i / bpw) (1 lsl (i mod bpw)) 0

let rec words_compare x y j =
  if j >= Array.length x then 0
  else
    let c = Int.compare (Array.unsafe_get x j) (Array.unsafe_get y j) in
    if c <> 0 then c else words_compare x y (j + 1)

let compare a b =
  if a.n <> b.n then Int.compare a.n b.n else words_compare a.words b.words 0

(* Multiplicative mixing (splitmix-style), truncated to OCaml's int width.
   Far better bucket spread than the generic [Hashtbl.hash] on the old
   byte representation, which only sampled a prefix. *)
let hash s =
  let h = ref (s.n lxor 0x1fb87e3a3a3a9b5) in
  for j = 0 to Array.length s.words - 1 do
    let x = !h lxor Array.unsafe_get s.words j in
    let x = x * 0x1e3779b97f4a7c5 in
    h := x lxor (x lsr 29)
  done;
  !h land max_int

(* Index of the (single) set bit of [b], a power of two. *)
let bit_index b = popcount (b - 1)

let iter f s =
  for j = 0 to Array.length s.words - 1 do
    let w = ref (Array.unsafe_get s.words j) in
    let base = j * bpw in
    while !w <> 0 do
      let b = !w land - !w in
      f (base + bit_index b);
      w := !w land (!w - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list n xs = List.fold_left add (create n) xs

let exists p s =
  let nw = Array.length s.words in
  let rec word j =
    j < nw
    &&
    let rec bits w =
      w <> 0
      &&
      let b = w land -w in
      p (j * bpw + bit_index b) || bits (w land (w - 1))
    in
    bits (Array.unsafe_get s.words j) || word (j + 1)
  in
  word 0

let for_all p s = not (exists (fun i -> not (p i)) s)

let pp ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf " ";
      Format.fprintf ppf "%d" i)
    s;
  Format.fprintf ppf "}"

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Builder = struct
  type bitset = t
  type builder = { bn : int; bwords : int array }

  let of_set (s : bitset) = { bn = s.n; bwords = Array.copy s.words }

  let bcheck b i =
    if i < 0 || i >= b.bn then invalid_arg "Bitset: index out of bounds"

  let mem b i =
    bcheck b i;
    Array.unsafe_get b.bwords (i / bpw) land (1 lsl (i mod bpw)) <> 0

  let set b i v =
    bcheck b i;
    let j = i / bpw and bit = 1 lsl (i mod bpw) in
    if v then Array.unsafe_set b.bwords j (Array.unsafe_get b.bwords j lor bit)
    else Array.unsafe_set b.bwords j (Array.unsafe_get b.bwords j land lnot bit)

  let freeze b : bitset = { n = b.bn; words = b.bwords }
end
