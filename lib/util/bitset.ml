type t = { n : int; bits : Bytes.t }

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; bits = Bytes.make (bytes_for n) '\000' }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of bounds"

let mem s i =
  check s i;
  Char.code (Bytes.get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let with_copy s f =
  let bits = Bytes.copy s.bits in
  f bits;
  { s with bits }

let add s i =
  check s i;
  if mem s i then s
  else
    with_copy s (fun b ->
        let j = i lsr 3 in
        Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lor (1 lsl (i land 7)))))

let remove s i =
  check s i;
  if not (mem s i) then s
  else
    with_copy s (fun b ->
        let j = i lsr 3 in
        Bytes.set b j
          (Char.chr (Char.code (Bytes.get b j) land lnot (1 lsl (i land 7)) land 0xff)))

let set s i v = if v then add s i else remove s i

let zip op a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let len = Bytes.length a.bits in
  let bits = Bytes.create len in
  for j = 0 to len - 1 do
    Bytes.set bits j
      (Char.chr (op (Char.code (Bytes.get a.bits j)) (Char.code (Bytes.get b.bits j)) land 0xff))
  done;
  { a with bits }

let union = zip ( lor )
let inter = zip ( land )
let diff = zip (fun x y -> x land lnot y)

let is_empty s =
  let rec go j = j >= Bytes.length s.bits || (Bytes.get s.bits j = '\000' && go (j + 1)) in
  go 0

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let rec go j =
    j >= Bytes.length a.bits
    ||
    let x = Char.code (Bytes.get a.bits j) and y = Char.code (Bytes.get b.bits j) in
    x land lnot y = 0 && go (j + 1)
  in
  go 0

let disjoint a b = is_empty (inter a b)

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let cardinal s =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) s.bits;
  !acc

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits
let compare a b = if a.n <> b.n then Int.compare a.n b.n else Bytes.compare a.bits b.bits
let hash s = Hashtbl.hash (s.n, s.bits)

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list n xs = List.fold_left add (create n) xs

let for_all p s = fold (fun i acc -> acc && p i) s true
let exists p s = fold (fun i acc -> acc || p i) s false

let pp ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf " ";
      Format.fprintf ppf "%d" i)
    s;
  Format.fprintf ppf "}"
