(** Int-keyed, int-valued binary min-heap backed by parallel arrays.

    Unlike the polymorphic {!Heap}, pushes and pops allocate nothing
    (amortized over capacity doublings), which makes it suitable for the
    steady-state path of the event-driven simulator.  Equal keys pop in
    insertion order. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val length : t -> int

val push : t -> int -> int -> unit
(** [push h key value]. *)

val top_key : t -> int
(** Smallest key.  Raises [Invalid_argument] on an empty heap. *)

val top_value : t -> int
(** Value paired with the smallest key.  Raises [Invalid_argument] on an
    empty heap. *)

val drop_min : t -> unit
(** Remove the minimum entry.  Raises [Invalid_argument] on an empty
    heap. *)

val clear : t -> unit
