(** Immutable fixed-width bit sets, packed [Sys.int_size] bits per word.

    A bit set is created with a fixed capacity [n] and holds a subset of
    [0 .. n-1].  Values are immutable: all operations return fresh sets.
    Bulk operations (union, subset, equality, hashing, cardinality) are
    word-parallel; iteration visits only the set bits.  They are suitable
    for hash-table keys (structural equality and [Hashtbl.hash] work, and
    dedicated {!equal}, {!compare} and {!hash} are provided — {!Tbl} is a
    ready-made hash table over them). *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n].  [n >= 0]. *)

val capacity : t -> int
(** Number of elements the set can hold (the [n] given to {!create}). *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Raises [Invalid_argument] if [i] is out of
    [0 .. capacity - 1]. *)

val add : t -> int -> t
val remove : t -> int -> t
val set : t -> int -> bool -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val equal : t -> t -> bool

val equal_flip : t -> t -> int -> bool
(** [equal_flip a b i] is [equal a (set b i (not (mem b i)))] without
    allocating the intermediate set — the reachability builder's
    successor-code consistency check. *)

val compare : t -> t -> int
val hash : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
(** [of_list n xs] is the set of capacity [n] containing [xs]. *)

val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [{0 3 7}]. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by bit sets, using {!hash} (a real word mixer)
    rather than the generic structural hash. *)

(** Batched edits: copy a set once, flip any number of bits in place,
    freeze back to an immutable set.  Replaces chains of {!add} /
    {!remove} (one copy each) in hot paths such as Petri-net firing. *)
module Builder : sig
  type builder

  val of_set : t -> builder
  (** Start from a copy of [t]; the original is never modified. *)

  val mem : builder -> int -> bool
  val set : builder -> int -> bool -> unit

  val freeze : builder -> t
  (** The builder must not be used after [freeze] (no copy is taken). *)
end
