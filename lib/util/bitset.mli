(** Immutable fixed-width bit sets.

    A bit set is created with a fixed capacity [n] and holds a subset of
    [0 .. n-1].  Values are immutable: all operations return fresh sets.
    They are suitable for hash-table keys (structural equality and
    [Hashtbl.hash] work, and dedicated {!equal}, {!compare} and {!hash}
    are provided). *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n].  [n >= 0]. *)

val capacity : t -> int
(** Number of elements the set can hold (the [n] given to {!create}). *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Raises [Invalid_argument] if [i] is out of
    [0 .. capacity - 1]. *)

val add : t -> int -> t
val remove : t -> int -> t
val set : t -> int -> bool -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
(** [of_list n xs] is the set of capacity [n] containing [xs]. *)

val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [{0 3 7}]. *)
