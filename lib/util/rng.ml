(* splitmix64: fast, high-quality, and trivially seedable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* The state advances by a fixed increment per draw, so skipping [n]
   draws is a single multiply-add — what lets a streaming workload
   cursor start mid-sequence in O(1) and still produce exactly the
   draws a sequential run would have. *)
let gamma = 0x9E3779B97F4A7C15L

let jump t n =
  if n < 0 then invalid_arg "Rng.jump";
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int n) gamma)

let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted";
  let r = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted"
    | (w, v) :: rest -> if r < acc + w then v else go (acc + w) rest
  in
  go 0 choices

let split t = { state = next t }
