(** Growable arrays (amortized O(1) [push]), the accumulation structure
    of the graph builders and simulators — replaces reversed-list
    accumulation followed by [List.rev] / [Array.of_list].

    The [dummy] element fills unused capacity; it is never observable. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] outside [0 .. length - 1]. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val clear : 'a t -> unit
(** Logical reset; keeps the capacity. *)

val to_array : 'a t -> 'a array
(** A fresh array of exactly [length] elements. *)

val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
