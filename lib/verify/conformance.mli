(** Conformance verification of a gate-level circuit against an STG
    specification under the unbounded (speed-independent) delay model,
    optionally constrained by relative-timing assumptions (Section 5 of
    the paper).

    The circuit is composed with the {e mirror} of the specification: the
    spec's input transitions become environment moves driving the
    circuit's primary inputs, and every change of a circuit net whose name
    matches a spec signal is checked against the transitions the spec
    allows.  Each gate has unbounded delay: an excited gate may fire at
    any time.  Failures:

    - {e unexpected output}: a named net fires an edge the spec does not
      enable;
    - {e hazard}: an excited gate loses its excitation without firing
      (semi-modularity violation — a potential glitch in silicon);
    - {e deadlock}: no move is possible but the spec still expects
      circuit activity.

    Relative-timing constraints remove interleavings: a move for event [b]
    is not explored in a configuration where a constraint [a before b]
    holds with [a] also enabled.  Verification then reports which
    constraints were {e load-bearing} — the back-annotation of Figure 2. *)

type move =
  | Env of int  (** spec transition index (an input edge) *)
  | Gate of Rtcad_netlist.Netlist.net * bool  (** net commits a new value *)

type failure =
  | Unexpected_output of { net : Rtcad_netlist.Netlist.net; value : bool; trace : move list }
  | Hazard of {
      net : Rtcad_netlist.Netlist.net;
      target : bool;  (** the value the gate was driving towards *)
      cause : move;
      trace : move list;
    }
  | Deadlock of { trace : move list }

type net_edge = { net : Rtcad_netlist.Netlist.net; rising : bool }
(** A transition of a circuit net — used to constrain internal gates that
    have no specification counterpart (Section 5's decomposed C-element:
    "[bc] rises before [ab] falls"). *)

type result = {
  ok : bool;
  failures : failure list;  (** up to the failure budget, deduplicated *)
  configurations : int;  (** explored product states *)
  used_constraints : Rtcad_rt.Assumption.t list;
      (** constraints that pruned at least one explored move *)
  used_net_constraints : (net_edge * net_edge) list;
}

exception Bound_exceeded of int

val check :
  ?constraints:Rtcad_rt.Assumption.t list ->
  ?net_constraints:(net_edge * net_edge) list ->
  ?max_configurations:int ->
  ?max_failures:int ->
  circuit:Rtcad_netlist.Netlist.t ->
  spec:Rtcad_stg.Stg.t ->
  unit ->
  result
(** Explore the composition breadth-first from the reset state (netlist
    initial values, STG initial marking).  The spec must be dummy-free
    (contract first) and its input signals must exist as circuit input
    nets of the same name.  Default bounds: 200000 configurations, 10
    failures.  Raises {!Bound_exceeded} if the bound is hit. *)

val pp_failure :
  Rtcad_netlist.Netlist.t -> Rtcad_stg.Stg.t -> Format.formatter -> failure -> unit

val pp_result :
  Rtcad_netlist.Netlist.t -> Rtcad_stg.Stg.t -> Format.formatter -> result -> unit
