(** Min/max separation analysis over delay-bounded paths.

    Each gate's nominal delay is widened into an interval
    [[(1-margin)·d, (1+margin)·d]] (process variation).  A path
    constraint holds robustly when the {e maximum} delay of the fast path
    is smaller than the {e minimum} delay of the slow path; the difference
    is the slack (race margin) that the sizing tools of the paper's
    Section 6 would have to preserve. *)

type bounds = { min_ps : float; max_ps : float }

val path_bounds :
  ?margin:float -> Rtcad_netlist.Netlist.t -> Paths.path -> bounds
(** Delay interval of a path: its observed span in the characterization
    run (environment hops included at their observed latency), widened by
    [margin] on both sides.  Default [margin] is 0.2. *)

type verdict = {
  holds : bool;
  slack_ps : float;  (** min(slow) - max(fast); negative when violated *)
  fast : bounds;
  slow : bounds;
}

val check : ?margin:float -> Rtcad_netlist.Netlist.t -> Paths.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
