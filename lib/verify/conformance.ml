module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Sg = Rtcad_sg.Sg
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Assumption = Rtcad_rt.Assumption

type move = Env of int | Gate of Netlist.net * bool

type failure =
  | Unexpected_output of { net : Netlist.net; value : bool; trace : move list }
  | Hazard of {
      net : Netlist.net;
      target : bool;  (* the value the gate was driving towards *)
      cause : move;
      trace : move list;
    }
  | Deadlock of { trace : move list }

type net_edge = { net : Netlist.net; rising : bool }

(* Lazy spec walker: markings interned on demand as the product walk
   reaches them, so the spec side never pays the explicit engine's global
   state bound — [max_configurations] on the product is the only limit.
   This is what lets the flow's self-check run on specifications only the
   symbolic engine can analyze.  Consistency is checked exactly as
   [Sg.build] does, but only over the visited part of the graph. *)
module Spec_walk = struct
  module Bitset_tbl = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end)

  type state = {
    marking : Bitset.t;
    code : Bitset.t;
    mutable succs : (int * int) list option;  (* (transition, target) *)
  }

  type t = {
    stg : Stg.t;
    net : Rtcad_stg.Petri.t;
    ids : int Bitset_tbl.t;
    states : state Rtcad_util.Vec.t;
  }

  let intern w marking code =
    match Bitset_tbl.find_opt w.ids marking with
    | Some id ->
      if not (Bitset.equal (Rtcad_util.Vec.get w.states id).code code) then
        raise (Sg.Inconsistent "same marking reached with two different codes");
      id
    | None ->
      let id = Rtcad_util.Vec.length w.states in
      Rtcad_util.Vec.push w.states { marking; code; succs = None };
      Bitset_tbl.add w.ids marking id;
      id

  let create stg =
    let net = Stg.net stg in
    let w =
      {
        stg;
        net;
        ids = Bitset_tbl.create 256;
        states =
          Rtcad_util.Vec.create ~capacity:256
            ~dummy:{ marking = Bitset.create 0; code = Bitset.create 0; succs = None }
            ();
      }
    in
    ignore (intern w (Petri.initial_marking net) (Sg.initial_code stg));
    w

  let fire_code w code t =
    match Stg.label w.stg t with
    | Stg.Dummy -> code
    | Stg.Edge { signal; dir } ->
      let v = Bitset.mem code signal in
      let name () = Stg.signal_name w.stg signal in
      (match dir with
      | Stg.Rise ->
        if v then
          raise (Sg.Inconsistent (name () ^ "+ fires with " ^ name () ^ " already high"));
        Bitset.add code signal
      | Stg.Fall ->
        if not v then
          raise (Sg.Inconsistent (name () ^ "- fires with " ^ name () ^ " already low"));
        Bitset.remove code signal)

  let succs w s =
    let st = Rtcad_util.Vec.get w.states s in
    match st.succs with
    | Some l -> l
    | None ->
      let acc = ref [] in
      Petri.iter_enabled w.net st.marking (fun t ->
          let m' = Petri.fire w.net st.marking t in
          let c' = fire_code w st.code t in
          acc := (t, intern w m' c') :: !acc);
      let l = List.rev !acc in
      st.succs <- Some l;
      l

  let enabled w s = List.map fst (succs w s)
  let succ w s t = List.assoc_opt t (succs w s)
  let initial _ = 0
end

type result = {
  ok : bool;
  failures : failure list;
  configurations : int;
  used_constraints : Assumption.t list;
  used_net_constraints : (net_edge * net_edge) list;
}

exception Bound_exceeded of int

(* A configuration pairs the vector of net values with a spec state. *)
module Config = struct
  type t = { values : Bitset.t; spec : int }

  let equal a b = a.spec = b.spec && Bitset.equal a.values b.values
  let hash a = (Bitset.hash a.values * 31) + a.spec
end

module Config_tbl = Hashtbl.Make (Config)

type ctx = {
  circuit : Netlist.t;
  spec : Stg.t;
  spec_sg : Spec_walk.t;
  (* net -> spec signal (or -1), and signal -> net (or -1) *)
  signal_of_net : int array;
  net_of_signal : int array;
}

let build_ctx circuit spec =
  let spec_sg = Spec_walk.create spec in
  let n_nets = Netlist.num_nets circuit in
  let n_sigs = Stg.num_signals spec in
  let signal_of_net = Array.make n_nets (-1) in
  let net_of_signal = Array.make n_sigs (-1) in
  List.iter
    (fun s ->
      let name = Stg.signal_name spec s in
      match Netlist.find_net circuit name with
      | net ->
        signal_of_net.(net) <- s;
        net_of_signal.(s) <- net;
        if Stg.is_input spec s && not (Netlist.is_input circuit net) then
          invalid_arg
            (Printf.sprintf "Conformance: spec input %s is driven by the circuit" name);
        if (not (Stg.is_input spec s)) && Netlist.is_input circuit net then
          invalid_arg
            (Printf.sprintf "Conformance: spec non-input %s is a circuit input" name)
      | exception Not_found ->
        if Stg.is_input spec s then
          invalid_arg
            (Printf.sprintf "Conformance: spec input %s missing from circuit" name))
    (Stg.signals spec);
  (* Every circuit primary input must be controlled by the spec. *)
  List.iter
    (fun net ->
      if signal_of_net.(net) = -1 then
        invalid_arg
          (Printf.sprintf "Conformance: circuit input %s not a spec signal"
             (Netlist.net_name circuit net)))
    (Netlist.inputs circuit);
  { circuit; spec; spec_sg; signal_of_net; net_of_signal }

let eval_net ctx values net =
  match Netlist.driver ctx.circuit net with
  | None -> Bitset.mem values net
  | Some (g, ins) ->
    Gate.eval g
      ~current:(Bitset.mem values net)
      (List.map (fun (i, neg) -> Bitset.mem values i <> neg) ins)

let excited ctx values net =
  Netlist.driver ctx.circuit net <> None && eval_net ctx values net <> Bitset.mem values net

let gate_nets ctx =
  List.filter
    (fun n -> Netlist.driver ctx.circuit n <> None)
    (List.init (Netlist.num_nets ctx.circuit) Fun.id)

let dir_of_value v = if v then Stg.Rise else Stg.Fall

(* Does the edge (signal, dir) of a constraint endpoint count as enabled
   in this configuration? *)
let endpoint_enabled ctx (cfg : Config.t) t =
  match Stg.label ctx.spec t with
  | Stg.Dummy -> false
  | Stg.Edge { signal; dir } ->
    let net = ctx.net_of_signal.(signal) in
    if (not (Stg.is_input ctx.spec signal)) && net >= 0 then
      excited ctx cfg.values net
      && dir_of_value (eval_net ctx cfg.values net) = dir
    else List.mem t (Spec_walk.enabled ctx.spec_sg cfg.spec)

(* Spec transitions matching a move. *)
let move_spec_edges ctx (cfg : Config.t) = function
  | Env t -> [ t ]
  | Gate (net, v) ->
    let s = ctx.signal_of_net.(net) in
    if s = -1 then []
    else
      List.filter
        (fun t ->
          match Stg.label ctx.spec t with
          | Stg.Edge { signal; dir } -> signal = s && dir = dir_of_value v
          | Stg.Dummy -> false)
        (Spec_walk.enabled ctx.spec_sg cfg.spec)

let check ?(constraints = []) ?(net_constraints = []) ?(max_configurations = 200_000)
    ?(max_failures = 10) ~circuit ~spec () =
  let ctx = build_ctx circuit spec in
  let gate_nets = gate_nets ctx in
  (* Initial configuration; check inputs agree with the spec reset state. *)
  let init_values =
    List.fold_left
      (fun acc n -> Bitset.set acc n (Netlist.initial_value circuit n))
      (Bitset.create (Netlist.num_nets circuit))
      (List.init (Netlist.num_nets circuit) Fun.id)
  in
  let init = { Config.values = init_values; spec = Spec_walk.initial ctx.spec_sg } in
  List.iter
    (fun s ->
      let net = ctx.net_of_signal.(s) in
      if net >= 0 && Stg.initial_value ctx.spec s <> Bitset.mem init_values net then
        invalid_arg
          (Printf.sprintf "Conformance: initial value of %s disagrees with spec"
             (Stg.signal_name ctx.spec s)))
    (Stg.signals ctx.spec);
  let visited = Config_tbl.create 1024 in
  let parent : (move * Config.t) Config_tbl.t = Config_tbl.create 1024 in
  let queue = Queue.create () in
  Config_tbl.replace visited init ();
  Queue.add init queue;
  let failures = ref [] in
  let failure_count = ref 0 in
  let seen_failures = Hashtbl.create 16 in
  let used = Hashtbl.create 16 in
  let configurations = ref 1 in
  let trace_of cfg =
    let rec go cfg acc =
      match Config_tbl.find_opt parent cfg with
      | None -> acc
      | Some (m, p) -> go p (m :: acc)
    in
    go cfg []
  in
  let record_failure key f =
    if not (Hashtbl.mem seen_failures key) then begin
      Hashtbl.add seen_failures key ();
      failures := f :: !failures;
      incr failure_count
    end
  in
  (* All candidate moves in a configuration (before constraint filtering). *)
  let moves_of (cfg : Config.t) =
    let env =
      List.filter_map
        (fun t ->
          match Stg.label ctx.spec t with
          | Stg.Edge { signal; _ } when Stg.is_input ctx.spec signal -> Some (Env t)
          | Stg.Edge _ | Stg.Dummy -> None)
        (Spec_walk.enabled ctx.spec_sg cfg.spec)
    in
    let gates =
      List.filter_map
        (fun n ->
          if excited ctx cfg.values n then Some (Gate (n, eval_net ctx cfg.values n))
          else None)
        gate_nets
    in
    env @ gates
  in
  let used_net = Hashtbl.create 16 in
  let net_edge_enabled ctx (cfg : Config.t) (e : net_edge) =
    excited ctx cfg.Config.values e.net
    && eval_net ctx cfg.Config.values e.net = e.rising
  in
  let blocked_net cfg m =
    (* The move's net edge: gate moves directly, environment moves through
       the driven input net ("the environment producing a- must be slower
       than bc+", Section 5). *)
    let edge =
      match m with
      | Gate (net, v) -> Some (net, v)
      | Env t -> (
        match Stg.label ctx.spec t with
        | Stg.Edge { signal; dir } when ctx.net_of_signal.(signal) >= 0 ->
          Some (ctx.net_of_signal.(signal), dir = Stg.Rise)
        | Stg.Edge _ | Stg.Dummy -> None)
    in
    match edge with
    | None -> []
    | Some (net, v) ->
      List.filter
        (fun (first, second) ->
          second.net = net && second.rising = v && net_edge_enabled ctx cfg first)
        net_constraints
  in
  let blocked cfg m =
    let second_edges =
      match m with
      | Env t -> [ t ]
      | Gate (net, v) ->
        let s = ctx.signal_of_net.(net) in
        if s = -1 then []
        else Stg.transitions_of ctx.spec s (dir_of_value v)
    in
    List.filter
      (fun a ->
        List.mem a.Assumption.second second_edges
        && (not (List.mem a.Assumption.first second_edges))
        && endpoint_enabled ctx cfg a.Assumption.first)
      constraints
  in
  let apply cfg m =
    match m with
    | Env t ->
      let s =
        match Stg.label ctx.spec t with
        | Stg.Edge { signal; _ } -> signal
        | Stg.Dummy -> assert false
      in
      let net = ctx.net_of_signal.(s) in
      let values =
        if net >= 0 then
          Bitset.set cfg.Config.values net (not (Bitset.mem cfg.Config.values net))
        else cfg.Config.values
      in
      let spec' =
        match Spec_walk.succ ctx.spec_sg cfg.Config.spec t with
        | Some s' -> s'
        | None -> assert false
      in
      Some { Config.values; spec = spec' }
    | Gate (net, v) -> (
      let values = Bitset.set cfg.Config.values net v in
      match ctx.signal_of_net.(net) with
      | -1 -> Some { cfg with Config.values }
      | _s -> (
        match move_spec_edges ctx cfg m with
        | t :: _ ->
          let spec' =
            match Spec_walk.succ ctx.spec_sg cfg.Config.spec t with
            | Some s' -> s'
            | None -> assert false
          in
          Some { Config.values; spec = spec' }
        | [] ->
          record_failure
            (`Output (net, v))
            (Unexpected_output { net; value = v; trace = trace_of cfg @ [ m ] });
          None))
  in
  while (not (Queue.is_empty queue)) && !failure_count < max_failures do
    let cfg = Queue.pop queue in
    let all_moves = moves_of cfg in
    let allowed_moves =
      List.filter
        (fun m ->
          let spec_blockers = blocked cfg m and net_blockers = blocked_net cfg m in
          List.iter
            (fun a -> Hashtbl.replace used (a.Assumption.first, a.Assumption.second) a)
            spec_blockers;
          List.iter (fun nc -> Hashtbl.replace used_net nc ()) net_blockers;
          spec_blockers = [] && net_blockers = [])
        all_moves
    in
    if allowed_moves = [] then begin
      if Spec_walk.enabled ctx.spec_sg cfg.Config.spec <> [] then
        record_failure (`Deadlock cfg.Config.spec) (Deadlock { trace = trace_of cfg })
    end
    else
      List.iter
        (fun m ->
          match apply cfg m with
          | None -> ()
          | Some cfg' ->
            (* Semi-modularity: a gate excited before the move must still be
               excited (or have fired) after it. *)
            let fired_net = match m with Gate (n, _) -> n | Env _ -> -1 in
            List.iter
              (fun n ->
                if
                  n <> fired_net
                  && excited ctx cfg.Config.values n
                  && not (excited ctx cfg'.Config.values n)
                then
                  record_failure (`Hazard n)
                    (Hazard
                       {
                         net = n;
                         target = eval_net ctx cfg.Config.values n;
                         cause = m;
                         trace = trace_of cfg @ [ m ];
                       }))
              gate_nets;
            if not (Config_tbl.mem visited cfg') then begin
              if !configurations >= max_configurations then
                raise (Bound_exceeded max_configurations);
              Config_tbl.replace visited cfg' ();
              Config_tbl.replace parent cfg' (m, cfg);
              incr configurations;
              Queue.add cfg' queue
            end)
        allowed_moves
  done;
  {
    ok = !failures = [];
    failures = List.rev !failures;
    configurations = !configurations;
    used_constraints =
      List.sort Assumption.compare (Hashtbl.fold (fun _ a acc -> a :: acc) used []);
    used_net_constraints = Hashtbl.fold (fun nc () acc -> nc :: acc) used_net [];
  }

let pp_move circuit spec ppf = function
  | Env t -> Format.fprintf ppf "%a" (Stg.pp_transition spec) t
  | Gate (net, v) ->
    Format.fprintf ppf "%s%s" (Netlist.net_name circuit net) (if v then "+" else "-")

let pp_trace circuit spec ppf trace =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
    (pp_move circuit spec) ppf trace

let pp_failure circuit spec ppf = function
  | Unexpected_output { net; value; trace } ->
    Format.fprintf ppf "unexpected output %s%s after [%a]" (Netlist.net_name circuit net)
      (if value then "+" else "-")
      (pp_trace circuit spec) trace
  | Hazard { net; target; cause; trace } ->
    Format.fprintf ppf "hazard on %s%s caused by %a after [%a]"
      (Netlist.net_name circuit net)
      (if target then "+" else "-")
      (pp_move circuit spec) cause
      (pp_trace circuit spec) trace
  | Deadlock { trace } ->
    Format.fprintf ppf "deadlock after [%a]" (pp_trace circuit spec) trace

let pp_result circuit spec ppf r =
  if r.ok then Format.fprintf ppf "conforms (%d configurations)" r.configurations
  else begin
    Format.fprintf ppf "@[<v>FAILS (%d configurations):@," r.configurations;
    List.iter (fun f -> Format.fprintf ppf "  %a@," (pp_failure circuit spec) f) r.failures;
    Format.fprintf ppf "@]"
  end
