module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Sim = Rtcad_netlist.Sim

type suggestion = { net : Netlist.net; factor : float }

type report = {
  verdicts : (Paths.t * Separation.verdict) list;
  suggestions : suggestion list;
  all_hold : bool;
}

(* Gate outputs along a path (primary-input hops carry no sizing handle). *)
let sizable_steps nl (p : Paths.path) =
  List.filter_map
    (fun (e : Sim.event) ->
      match Netlist.driver nl e.Sim.net with Some _ -> Some e.Sim.net | None -> None)
    p.Paths.steps

let analyze ?(margin = 0.2) ?(safety = 0.9) nl paths =
  let verdicts = List.map (fun p -> (p, Separation.check ~margin nl p)) paths in
  let suggestions =
    List.concat_map
      (fun ((p : Paths.t), (v : Separation.verdict)) ->
        if v.Separation.holds then []
        else begin
          (* Speed the fast path so that max(fast)·f < min(slow). *)
          let needed =
            if v.Separation.fast.Separation.max_ps <= 0.0 then 1.0
            else
              safety *. v.Separation.slow.Separation.min_ps
              /. v.Separation.fast.Separation.max_ps
          in
          let factor = min 1.0 needed in
          List.map (fun net -> { net; factor }) (sizable_steps nl p.Paths.fast)
        end)
      verdicts
  in
  (* Several constraints may ask to size the same gate: keep the most
     demanding factor. *)
  let table = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt table s.net with
      | Some f when f <= s.factor -> ()
      | Some _ | None -> Hashtbl.replace table s.net s.factor)
    suggestions;
  let suggestions =
    List.sort compare (Hashtbl.fold (fun net factor acc -> { net; factor } :: acc) table [])
  in
  {
    verdicts;
    suggestions;
    all_hold = List.for_all (fun (_, v) -> v.Separation.holds) verdicts;
  }

let sized_delay report net gate =
  let base = Gate.delay_ps gate in
  match List.find_opt (fun s -> s.net = net) report.suggestions with
  | Some s -> base *. s.factor
  | None -> base

let pp_report nl ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (p, v) ->
      Format.fprintf ppf "%a@,  %a@," (Paths.pp nl) p Separation.pp_verdict v)
    r.verdicts;
  if r.suggestions = [] then Format.fprintf ppf "no sizing needed@"
  else
    List.iter
      (fun s ->
        Format.fprintf ppf "size up %s: delay x%.2f@," (Netlist.net_name nl s.net)
          s.factor)
      r.suggestions;
  Format.fprintf ppf "@]"
