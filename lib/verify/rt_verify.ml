module Assumption = Rtcad_rt.Assumption

type report = {
  untimed_ok : bool;
  required : Assumption.t list;
  failures_untimed : int;
  configurations : int;
}

exception Not_verifiable

let verify ?max_configurations ~circuit ~spec ~assumptions () =
  let check constraints =
    Conformance.check ?max_configurations ~constraints ~circuit ~spec ()
  in
  let untimed = check [] in
  if untimed.Conformance.ok then
    {
      untimed_ok = true;
      required = [];
      failures_untimed = 0;
      configurations = untimed.Conformance.configurations;
    }
  else begin
    let full = check assumptions in
    if not full.Conformance.ok then raise Not_verifiable;
    (* Start from the constraints the full run actually used, then drop
       greedily. *)
    let keep = ref full.Conformance.used_constraints in
    List.iter
      (fun a ->
        let trial = List.filter (fun b -> not (Assumption.equal a b)) !keep in
        if (check trial).Conformance.ok then keep := trial)
      full.Conformance.used_constraints;
    let final = check !keep in
    assert final.Conformance.ok;
    {
      untimed_ok = false;
      required = !keep;
      failures_untimed = List.length untimed.Conformance.failures;
      configurations = final.Conformance.configurations;
    }
  end
