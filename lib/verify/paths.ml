module Sim = Rtcad_netlist.Sim
module Netlist = Rtcad_netlist.Netlist

type edge = { net : Netlist.net; value : bool }
type path = { anchor : Sim.event; steps : Sim.event list }
type t = { fast : path; slow : path }

let ancestry by_id (e : Sim.event) =
  let rec go e acc =
    match e.Sim.cause with
    | None -> e :: acc
    | Some id -> (
      match Hashtbl.find_opt by_id id with
      | None -> e :: acc
      | Some parent -> go parent (e :: acc))
  in
  go e [] (* oldest first, endpoint last *)

let derive events ~fast ~slow =
  let by_id = Hashtbl.create 256 in
  List.iter (fun (e : Sim.event) -> Hashtbl.replace by_id e.Sim.id e) events;
  let find_last p =
    List.fold_left (fun acc e -> if p e then Some e else acc) None events
  in
  let matches (edge : edge) (e : Sim.event) =
    e.Sim.net = edge.net && e.Sim.value = edge.value
  in
  match find_last (matches slow) with
  | None -> None
  | Some slow_event -> (
    match
      find_last (fun e -> matches fast e && e.Sim.at <= slow_event.Sim.at)
    with
    | None -> None
    | Some fast_event ->
      let fast_chain = ancestry by_id fast_event in
      let slow_chain = ancestry by_id slow_event in
      (* Longest common prefix = shared history; its last element is the
         earliest common enabling event. *)
      let rec split prefix_last fc sc =
        match (fc, sc) with
        | f :: fr, s :: sr when f.Sim.id = s.Sim.id -> split (Some f) fr sr
        | _ -> (prefix_last, fc, sc)
      in
      (match split None fast_chain slow_chain with
      | Some anchor, fast_steps, slow_steps ->
        Some
          {
            fast = { anchor; steps = fast_steps };
            slow = { anchor; steps = slow_steps };
          }
      | None, _, _ -> None))

let pp_event nl ppf (e : Sim.event) =
  Format.fprintf ppf "%s%s" (Netlist.net_name nl e.Sim.net)
    (if e.Sim.value then "+" else "-")

let pp_path nl ppf p =
  Format.fprintf ppf "%a" (pp_event nl) p.anchor;
  List.iter (fun e -> Format.fprintf ppf " -> %a" (pp_event nl) e) p.steps

let pp nl ppf t =
  Format.fprintf ppf "[%a] must beat [%a]" (pp_path nl) t.fast (pp_path nl) t.slow
