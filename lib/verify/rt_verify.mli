(** Relative-timing verification: find the constraint set a circuit needs.

    Given a circuit that fails speed-independent conformance, search for a
    minimal subset of the proposed assumptions under which it conforms —
    the back-annotation step: those constraints "must be shown to be valid
    in the implementation" (Section 5). *)

type report = {
  untimed_ok : bool;  (** conforms with no assumptions at all *)
  required : Rtcad_rt.Assumption.t list;
      (** a minimal (irredundant) subset sufficient for conformance *)
  failures_untimed : int;  (** failure count without constraints *)
  configurations : int;  (** of the final constrained check *)
}

exception Not_verifiable
(** Even the full assumption set does not make the circuit conform. *)

val verify :
  ?max_configurations:int ->
  circuit:Rtcad_netlist.Netlist.t ->
  spec:Rtcad_stg.Stg.t ->
  assumptions:Rtcad_rt.Assumption.t list ->
  unit ->
  report
(** Greedy minimization: start from the constraints the full check
    actually used, then drop each in turn if conformance survives.  The
    result is irredundant (removing any one breaks conformance), though
    not necessarily globally minimum. *)
