module Netlist = Rtcad_netlist.Netlist
module Sim = Rtcad_netlist.Sim

type bounds = { min_ps : float; max_ps : float }

(* The nominal per-step delays are taken from the characterization run the
   path was extracted from (the step timestamps), so environment hops are
   included at their observed latency; the margin widens every step
   symmetrically, modelling process variation. *)
let path_bounds ?(margin = 0.2) _nl (p : Paths.path) =
  let span =
    match List.rev p.Paths.steps with
    | [] -> 0.0
    | last :: _ -> last.Sim.at -. p.Paths.anchor.Sim.at
  in
  { min_ps = span *. (1.0 -. margin); max_ps = span *. (1.0 +. margin) }

type verdict = { holds : bool; slack_ps : float; fast : bounds; slow : bounds }

let check ?margin nl (t : Paths.t) =
  let fast = path_bounds ?margin nl t.Paths.fast in
  let slow = path_bounds ?margin nl t.Paths.slow in
  let slack_ps = slow.min_ps -. fast.max_ps in
  { holds = slack_ps > 0.0; slack_ps; fast; slow }

let pp_verdict ppf v =
  Format.fprintf ppf "%s: fast [%.0f,%.0f]ps vs slow [%.0f,%.0f]ps, slack %.0fps"
    (if v.holds then "holds" else "VIOLATED")
    v.fast.min_ps v.fast.max_ps v.slow.min_ps v.slow.max_ps v.slack_ps
