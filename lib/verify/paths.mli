(** Path constraints from relative-timing requirements (Section 5).

    An RT requirement "[a] before [b]" is turned into a pair of causal
    paths by finding the {e earliest common enabling event}: walking the
    causal history of a timed execution back from both endpoints to their
    nearest common ancestor.  The requirement then becomes "the path from
    the ancestor to [a] must be faster than the path from the ancestor to
    [b]" — which {!Separation} checks against delay bounds, playing the
    role of the paper's "SPICE simulations or separation analysis". *)

type edge = { net : Rtcad_netlist.Netlist.net; value : bool }

type path = {
  anchor : Rtcad_netlist.Sim.event;  (** the common enabling event *)
  steps : Rtcad_netlist.Sim.event list;  (** from just after the anchor to the endpoint *)
}

type t = {
  fast : path;  (** must complete first *)
  slow : path;
}

val derive :
  Rtcad_netlist.Sim.event list -> fast:edge -> slow:edge -> t option
(** [derive events ~fast ~slow] locates the last occurrence of the [slow]
    edge in the trace, the latest occurrence of the [fast] edge at or
    before it, and intersects their causal ancestries.  [None] if either
    edge never fires or the histories never meet. *)

val pp : Rtcad_netlist.Netlist.t -> Format.formatter -> t -> unit
