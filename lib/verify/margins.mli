(** Race-margin analysis and sizing suggestions — the paper's Section 6
    direction "automatic propagation of relative timing constraints to
    sizing tools and physical design flow … the sizing tool should know
    how much race margin to take".

    Every relative-timing requirement, once turned into a pair of causal
    paths ({!Paths}), becomes a delay constraint: the fast path's maximum
    delay must stay below the slow path's minimum.  {!analyze} reports the
    slack of every constraint under a process-variation margin and, for
    the violated ones, the speed-up factor the fast path's gates need —
    the input a transistor-sizing tool would consume. *)

type suggestion = {
  net : Rtcad_netlist.Netlist.net;  (** output of the gate to speed up *)
  factor : float;  (** multiply this gate's delay by the factor (< 1) *)
}

type report = {
  verdicts : (Paths.t * Separation.verdict) list;
  suggestions : suggestion list;
  all_hold : bool;  (** before sizing *)
}

val analyze :
  ?margin:float ->
  ?safety:float ->
  Rtcad_netlist.Netlist.t ->
  Paths.t list ->
  report
(** [margin] is the ±process variation (default 0.2); [safety] an extra
    multiplicative guard band on the suggested factors (default 0.9). *)

val sized_delay :
  report -> Rtcad_netlist.Netlist.net -> Rtcad_netlist.Gate.t -> float
(** A per-instance delay model with the report's suggestions applied —
    plug into {!Rtcad_netlist.Sim.create} to re-characterize the sized
    circuit and confirm the races now hold. *)

val pp_report : Rtcad_netlist.Netlist.t -> Format.formatter -> report -> unit
