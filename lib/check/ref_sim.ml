module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate

let fs_of_ps ps = int_of_float (Float.round (ps *. 1000.0))
let ps_of_fs fs = float_of_int fs /. 1000.0

type item =
  | Drive of Netlist.net * bool
  | Eval of Netlist.net * bool * int  (* net, target, generation *)

type t = {
  nl : Netlist.t;
  values : bool array;
  pending : (int * bool) array;  (* (generation, target); 0 = none *)
  mutable agenda : (int * int * item) list;  (* (at_fs, seq, item), sorted *)
  mutable now_fs : int;
  mutable seq : int;
  mutable gen : int;
  mutable committed : (int * Netlist.net * bool) list;  (* newest first *)
}

let value t net = t.values.(net)

(* Insert keeping the agenda sorted by (time, insertion order). *)
let push t at_fs item =
  t.seq <- t.seq + 1;
  let entry = (at_fs, t.seq, item) in
  let rec ins = function
    | [] -> [ entry ]
    | ((at', seq', _) as e) :: rest ->
      if (at', seq') <= (at_fs, t.seq) then e :: ins rest else entry :: e :: rest
  in
  t.agenda <- ins t.agenda

let eval_gate t out =
  match Netlist.driver t.nl out with
  | None -> t.values.(out)
  | Some (gate, ins) ->
    let inputs = List.map (fun (i, neg) -> t.values.(i) <> neg) ins in
    Gate.eval gate ~current:t.values.(out) inputs

let delay_fs t out =
  match Netlist.driver t.nl out with
  | None -> 0
  | Some (gate, _) -> fs_of_ps (Gate.delay_ps gate)

(* Inertial scheduling: one pending event per gate output; re-evaluation
   to the committed value cancels a pending contrary event. *)
let schedule t net target ~at_fs =
  let pgen, ptarget = t.pending.(net) in
  if pgen <> 0 && ptarget = target then ()
  else if target <> t.values.(net) then begin
    t.gen <- t.gen + 1;
    t.pending.(net) <- (t.gen, target);
    push t at_fs (Eval (net, target, t.gen))
  end
  else if pgen <> 0 then t.pending.(net) <- (0, false)

let rec commit t net v =
  t.values.(net) <- v;
  if List.mem net (Netlist.outputs t.nl) then
    t.committed <- (t.now_fs, net, v) :: t.committed;
  List.iter
    (fun out -> schedule t out (eval_gate t out) ~at_fs:(t.now_fs + delay_fs t out))
    (Netlist.fanout t.nl net)

and step t =
  match t.agenda with
  | [] -> ()
  | (at_fs, _, item) :: rest ->
    t.agenda <- rest;
    if at_fs > t.now_fs then t.now_fs <- at_fs;
    (match item with
    | Drive (net, v) -> if t.values.(net) <> v then commit t net v
    | Eval (net, target, gen) ->
      let pgen, _ = t.pending.(net) in
      if pgen = gen then begin
        t.pending.(net) <- (0, false);
        if t.values.(net) <> target then commit t net target
      end)

let create nl =
  let n = Netlist.num_nets nl in
  let t =
    {
      nl;
      values = Array.init n (Netlist.initial_value nl);
      pending = Array.make n (0, false);
      agenda = [];
      now_fs = 0;
      seq = 0;
      gen = 0;
      committed = [];
    }
  in
  List.iter
    (fun (out, _, _) ->
      let target = eval_gate t out in
      if target <> t.values.(out) then schedule t out target ~at_fs:(delay_fs t out))
    (Netlist.gates nl);
  t

let drive t net v ~after =
  if not (Netlist.is_input t.nl net) then invalid_arg "Ref_sim.drive: not a primary input";
  push t (t.now_fs + fs_of_ps after) (Drive (net, v))

let run ?(max_events = 2_000_000) t ~until =
  let until_fs = fs_of_ps until in
  let budget = ref max_events in
  let due () = match t.agenda with (at, _, _) :: _ -> at <= until_fs | [] -> false in
  while due () do
    if !budget <= 0 then failwith "Ref_sim: event budget exhausted";
    decr budget;
    step t
  done;
  t.now_fs <- max t.now_fs until_fs

let settle ?(max_events = 2_000_000) t =
  let budget = ref max_events in
  while t.agenda <> [] do
    if !budget <= 0 then failwith "Ref_sim: event budget exhausted";
    decr budget;
    step t
  done

let trace t =
  List.rev_map (fun (at, net, v) -> (ps_of_fs at, net, v)) t.committed

let canonical_trace tr =
  List.stable_sort
    (fun (at1, n1, v1) (at2, n2, v2) -> compare (at1, n1, v1) (at2, n2, v2))
    tr
