module Rng = Rtcad_util.Rng
module Bdd = Rtcad_logic.Bdd
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Stg = Rtcad_stg.Stg
module Stg_io = Rtcad_stg.Stg_io

type config = { seed : int; cases : int; max_places : int; shrink : bool }

let default = { seed = 1; cases = 100; max_places = 14; shrink = true }

type failure = {
  case : int;
  case_seed : int;
  finding : Oracle.finding;
  plan : Gen.plan option;
  g_text : string option;
}

type outcome = {
  ran : int;
  passed : int;
  skipped : int;
  failure : failure option;
}

let case_seed config i = (config.seed * 1_000_003) + i

(* A crash inside a kernel is a finding, not a fuzzer error. *)
let guarded oracle f =
  try f ()
  with e ->
    Oracle.Fail { oracle; detail = "uncaught exception: " ^ Printexc.to_string e }

(* Flow synthesis is much heavier than reachability, so only close the
   Figure-2 loop on small specifications. *)
let flow_budget = 10

let check_plan ~fast_sg plan =
  guarded "plan" (fun () ->
      let stg = Gen.stg_of_plan plan in
      match Oracle.diff_sg ~fast:fast_sg stg with
      | Oracle.Pass when Gen.places_of_plan plan <= flow_budget ->
        Oracle.flow_invariants stg
      | v -> v)

let is_fail = function Oracle.Fail _ -> true | _ -> false

let rec shrink_plan check plan =
  match List.find_opt (fun p -> is_fail (check p)) (Gen.shrink_plan plan) with
  | Some smaller -> shrink_plan check smaller
  | None -> plan

let run ?(fast_sg = fun stg -> Oracle.fast_sg_result stg) ?(log = ignore) config =
  Obs.span "fuzz.run" @@ fun () ->
  let t0 = if Obs.enabled () then Obs.time_ms () else 0.0 in
  let check = check_plan ~fast_sg in
  let passed = ref 0 and skipped = ref 0 in
  let failure = ref None and ran = ref 0 in
  let record ~case ~seed ?plan verdict =
    match verdict with
    | Oracle.Pass -> incr passed
    | Oracle.Skip reason ->
      incr skipped;
      log (Printf.sprintf "case %d: skipped (%s)" case reason)
    | Oracle.Fail finding ->
      let plan, finding =
        match plan with
        | None -> (None, finding)
        | Some p when config.shrink ->
          log (Printf.sprintf "case %d failed [%s]; shrinking…" case finding.Oracle.oracle);
          let small = shrink_plan check p in
          let finding =
            match check small with Oracle.Fail f -> f | _ -> finding
          in
          (Some small, finding)
        | Some p -> (Some p, finding)
      in
      let g_text = Option.map (fun p -> Stg_io.to_string (Gen.stg_of_plan p)) plan in
      failure := Some { case; case_seed = seed; finding; plan; g_text }
  in
  (* Everything a case does is derived from its sub-seed, so cases can be
     evaluated in any order — or concurrently — as long as the outcome is
     read off in case order.  [record] (counting, logging, shrinking)
     always runs serially on the initiating domain. *)
  let eval case =
    (* Each case starts with cold BDD operation caches (on whichever
       domain runs it): op-cache growth from one case must not speed up
       — or slow down, via collisions — the cases after it, or the
       campaign's behaviour would depend on the evaluation order. *)
    Bdd.clear_caches ();
    let seed = case_seed config case in
    let rng = Rng.create seed in
    match Rng.weighted rng [ (2, `Bitset); (2, `Sim); (5, `Stg); (1, `Shape) ] with
    | `Bitset -> (seed, None, guarded "bitset-diff" (fun () -> Oracle.diff_bitset rng))
    | `Sim -> (seed, None, guarded "sim-diff" (fun () -> Oracle.diff_sim rng))
    | `Stg ->
      let plan = Gen.gen_plan rng ~max_places:config.max_places in
      (seed, Some plan, check plan)
    | `Shape ->
      let plan = Gen.gen_shape rng in
      (seed, Some plan, check plan)
  in
  let record_result ~case (seed, plan, verdict) =
    match plan with
    | None -> record ~case ~seed verdict
    | Some plan -> record ~case ~seed ~plan verdict
  in
  if Par.jobs () = 1 || Par.in_parallel_region () || config.cases <= 1 then
    (try
       for case = 0 to config.cases - 1 do
         if !failure <> None then raise Exit;
         incr ran;
         record_result ~case (eval case)
       done
     with Exit -> ())
  else begin
    (* Cases are sharded across domains.  [min_fail] tracks the lowest
       failing case seen so far: cases above it need not run (the serial
       campaign would have stopped), while every case at or below it is
       still evaluated, so the counts and logs for cases preceding the
       first failure are exact.  The case-ordered replay below then
       reproduces the serial campaign — same counters, same log order,
       same (lowest-case) failure, shrinking done serially. *)
    let min_fail = Atomic.make max_int in
    let slots = Array.make config.cases None in
    Par.parallel_for ~chunk:1 config.cases (fun case ->
        if case <= Atomic.get min_fail then begin
          let r =
            try Ok (eval case) with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          (match r with
          | Ok (_, _, Oracle.Fail _) | Error _ ->
            let rec lower () =
              let cur = Atomic.get min_fail in
              if case < cur && not (Atomic.compare_and_set min_fail cur case) then
                lower ()
            in
            lower ()
          | Ok _ -> ());
          slots.(case) <- Some r
        end);
    try
      for case = 0 to config.cases - 1 do
        if !failure <> None then raise Exit;
        incr ran;
        match slots.(case) with
        | None ->
          (* Only cases past the first failure are ever skipped. *)
          assert false
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok r) -> record_result ~case r
      done
    with Exit -> ()
  end;
  (* Recorded once, serially, after the campaign: the counts replayed in
     case order are identical at any job count; only the throughput gauge
     is wall-clock-dependent (and is normalised out of golden output). *)
  if Obs.enabled () then begin
    Obs.incr ~by:!ran "fuzz.cases_ran";
    Obs.incr ~by:!passed "fuzz.cases_passed";
    Obs.incr ~by:!skipped "fuzz.cases_skipped";
    let dt = (Obs.time_ms () -. t0) /. 1000.0 in
    if dt > 0.0 then Obs.set_gauge "fuzz.cases_per_sec" (float_of_int !ran /. dt)
  end;
  { ran = !ran; passed = !passed; skipped = !skipped; failure = !failure }

let pp_outcome ppf o =
  match o.failure with
  | None ->
    Format.fprintf ppf "%d case(s): %d passed, %d skipped, 0 failed" o.ran o.passed
      o.skipped
  | Some f ->
    Format.fprintf ppf "@[<v>case %d (seed %d) FAILED [%s]: %s" f.case f.case_seed
      f.finding.Oracle.oracle f.finding.Oracle.detail;
    (match f.plan with
    | Some p -> Format.fprintf ppf "@,minimal failing plan: %a" Gen.pp_plan p
    | None -> ());
    Format.fprintf ppf "@]"
