module Rng = Rtcad_util.Rng
module Bdd = Rtcad_logic.Bdd
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Stg = Rtcad_stg.Stg
module Stg_io = Rtcad_stg.Stg_io

type config = {
  seed : int;
  cases : int;
  max_places : int;
  shrink : bool;
  edits : int;
}

let default = { seed = 1; cases = 100; max_places = 14; shrink = true; edits = 0 }

type failure = {
  case : int;
  case_seed : int;
  finding : Oracle.finding;
  plan : Gen.plan option;
  edits : Gen.edit list;
  g_text : string option;
}

type outcome = {
  ran : int;
  passed : int;
  skipped : int;
  failure : failure option;
}

let case_seed config i = (config.seed * 1_000_003) + i

(* A crash inside a kernel is a finding, not a fuzzer error. *)
let guarded oracle f =
  try f ()
  with e ->
    Oracle.Fail { oracle; detail = "uncaught exception: " ^ Printexc.to_string e }

(* Flow synthesis is much heavier than reachability, so only close the
   Figure-2 loop on small specifications. *)
let flow_budget = 10

let check_plan ~fast_sg plan =
  guarded "plan" (fun () ->
      let stg = Gen.stg_of_plan plan in
      match Oracle.diff_sg ~fast:fast_sg stg with
      | Oracle.Pass when Gen.places_of_plan plan <= flow_budget ->
        Oracle.flow_invariants stg
      | v -> v)

let check_edits ~engine (c : Gen.edit_case) =
  guarded "incremental" (fun () ->
      Oracle.diff_incremental ~engine (Gen.stg_of_plan c.Gen.base) c.Gen.edits)

let is_fail = function Oracle.Fail _ -> true | _ -> false

(* Shrink ladders revisit the same candidate from several parents;
   memoizing on the (structural) candidate means each distinct plan or
   edit case is synthesized at most once per shrink session. *)
let memoized check =
  let seen = Hashtbl.create 64 in
  fun x ->
    match Hashtbl.find_opt seen x with
    | Some v -> v
    | None ->
      let v = check x in
      Hashtbl.add seen x v;
      v

let shrink_plan check plan =
  let check = memoized check in
  let rec go plan =
    match List.find_opt (fun p -> is_fail (check p)) (Gen.shrink_plan plan) with
    | Some smaller -> go smaller
    | None -> plan
  in
  go plan

let shrink_edits check c =
  let check = memoized check in
  let rec go c =
    match List.find_opt (fun c' -> is_fail (check c')) (Gen.shrink_edit_case c) with
    | Some smaller -> go smaller
    | None -> c
  in
  go c

type case_kind =
  | Unplanned
  | Planned of Gen.plan
  | Edited of Gen.edit_case * Rtcad_sg.Engine.t

let run ?(fast_sg = fun stg -> Oracle.fast_sg_result stg) ?(log = ignore) config =
  Obs.span "fuzz.run" @@ fun () ->
  let t0 = if Obs.enabled () then Obs.time_ms () else 0.0 in
  let check = check_plan ~fast_sg in
  let passed = ref 0 and skipped = ref 0 in
  let failure = ref None and ran = ref 0 in
  let record ~case ~seed kind verdict =
    match verdict with
    | Oracle.Pass -> incr passed
    | Oracle.Skip reason ->
      incr skipped;
      log (Printf.sprintf "case %d: skipped (%s)" case reason)
    | Oracle.Fail finding ->
      let plan, edits, finding =
        match kind with
        | Unplanned -> (None, [], finding)
        | Planned p when config.shrink ->
          log (Printf.sprintf "case %d failed [%s]; shrinking…" case finding.Oracle.oracle);
          let small = shrink_plan check p in
          let finding =
            match check small with Oracle.Fail f -> f | _ -> finding
          in
          (Some small, [], finding)
        | Planned p -> (Some p, [], finding)
        | Edited (c, engine) when config.shrink ->
          log (Printf.sprintf "case %d failed [%s]; shrinking…" case finding.Oracle.oracle);
          let small = shrink_edits (check_edits ~engine) c in
          let finding =
            match check_edits ~engine small with Oracle.Fail f -> f | _ -> finding
          in
          (Some small.Gen.base, small.Gen.edits, finding)
        | Edited (c, _) -> (Some c.Gen.base, c.Gen.edits, finding)
      in
      let g_text = Option.map (fun p -> Stg_io.to_string (Gen.stg_of_plan p)) plan in
      failure := Some { case; case_seed = seed; finding; plan; edits; g_text }
  in
  (* Everything a case does is derived from its sub-seed, so cases can be
     evaluated in any order — or concurrently — as long as the outcome is
     read off in case order.  [record] (counting, logging, shrinking)
     always runs serially on the initiating domain. *)
  let eval case =
    (* Each case starts with cold BDD operation caches (on whichever
       domain runs it): op-cache growth from one case must not speed up
       — or slow down, via collisions — the cases after it, or the
       campaign's behaviour would depend on the evaluation order.  The
       edit battery additionally owns the analysis pool per case
       ([Oracle.diff_incremental] clears it around each replay), so
       cases stay order- and domain-independent there too. *)
    Bdd.clear_caches ();
    let seed = case_seed config case in
    let rng = Rng.create seed in
    if config.edits > 0 then begin
      (* Edit-replay battery: a base spec, a short edit script, a forced
         engine.  Bases are kept at flow scale — every step runs full
         synthesis three ways. *)
      let base =
        match Rng.weighted rng [ (3, `Gen); (1, `Shape) ] with
        | `Gen -> Gen.gen_plan rng ~max_places:(min config.max_places flow_budget)
        | `Shape ->
          let p = Gen.gen_shape rng in
          if Gen.places_of_plan p <= flow_budget + 2 then p
          else Gen.gen_plan rng ~max_places:(min config.max_places flow_budget)
      in
      let engine =
        Rng.weighted rng
          [
            (2, Rtcad_sg.Engine.Symbolic);
            (2, Rtcad_sg.Engine.Explicit);
            (1, Rtcad_sg.Engine.Auto);
          ]
      in
      let c = { Gen.base; edits = Gen.gen_edits rng (1 + Rng.int rng config.edits) } in
      (seed, Edited (c, engine), check_edits ~engine c)
    end
    else
      match Rng.weighted rng [ (2, `Bitset); (2, `Sim); (5, `Stg); (1, `Shape) ] with
      | `Bitset -> (seed, Unplanned, guarded "bitset-diff" (fun () -> Oracle.diff_bitset rng))
      | `Sim -> (seed, Unplanned, guarded "sim-diff" (fun () -> Oracle.diff_sim rng))
      | `Stg ->
        let plan = Gen.gen_plan rng ~max_places:config.max_places in
        (seed, Planned plan, check plan)
      | `Shape ->
        let plan = Gen.gen_shape rng in
        (seed, Planned plan, check plan)
  in
  let record_result ~case (seed, kind, verdict) = record ~case ~seed kind verdict in
  if Par.jobs () = 1 || Par.in_parallel_region () || config.cases <= 1 then
    (try
       for case = 0 to config.cases - 1 do
         if !failure <> None then raise Exit;
         incr ran;
         record_result ~case (eval case)
       done
     with Exit -> ())
  else begin
    (* Cases are sharded across domains.  [min_fail] tracks the lowest
       failing case seen so far: cases above it need not run (the serial
       campaign would have stopped), while every case at or below it is
       still evaluated, so the counts and logs for cases preceding the
       first failure are exact.  The case-ordered replay below then
       reproduces the serial campaign — same counters, same log order,
       same (lowest-case) failure, shrinking done serially. *)
    let min_fail = Atomic.make max_int in
    let slots = Array.make config.cases None in
    Par.parallel_for ~chunk:1 config.cases (fun case ->
        if case <= Atomic.get min_fail then begin
          let r =
            try Ok (eval case) with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          (match r with
          | Ok (_, _, Oracle.Fail _) | Error _ ->
            let rec lower () =
              let cur = Atomic.get min_fail in
              if case < cur && not (Atomic.compare_and_set min_fail cur case) then
                lower ()
            in
            lower ()
          | Ok _ -> ());
          slots.(case) <- Some r
        end);
    try
      for case = 0 to config.cases - 1 do
        if !failure <> None then raise Exit;
        incr ran;
        match slots.(case) with
        | None ->
          (* Only cases past the first failure are ever skipped. *)
          assert false
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok r) -> record_result ~case r
      done
    with Exit -> ()
  end;
  (* Recorded once, serially, after the campaign: the counts replayed in
     case order are identical at any job count; only the throughput gauge
     is wall-clock-dependent (and is normalised out of golden output). *)
  if Obs.enabled () then begin
    Obs.incr ~by:!ran "fuzz.cases_ran";
    Obs.incr ~by:!passed "fuzz.cases_passed";
    Obs.incr ~by:!skipped "fuzz.cases_skipped";
    let dt = (Obs.time_ms () -. t0) /. 1000.0 in
    if dt > 0.0 then Obs.set_gauge "fuzz.cases_per_sec" (float_of_int !ran /. dt)
  end;
  { ran = !ran; passed = !passed; skipped = !skipped; failure = !failure }

let pp_outcome ppf o =
  match o.failure with
  | None ->
    Format.fprintf ppf "%d case(s): %d passed, %d skipped, 0 failed" o.ran o.passed
      o.skipped
  | Some f ->
    Format.fprintf ppf "@[<v>case %d (seed %d) FAILED [%s]: %s" f.case f.case_seed
      f.finding.Oracle.oracle f.finding.Oracle.detail;
    (match f.plan with
    | Some p -> Format.fprintf ppf "@,minimal failing plan: %a" Gen.pp_plan p
    | None -> ());
    if f.edits <> [] then begin
      Format.fprintf ppf "@,minimal failing edits:";
      List.iter (fun e -> Format.fprintf ppf " %a" Gen.pp_edit e) f.edits
    end;
    Format.fprintf ppf "@]"
