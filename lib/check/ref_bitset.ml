module Bitset = Rtcad_util.Bitset

type t = bool list

let create n = List.init n (fun _ -> false)

let of_fast s =
  List.init (Bitset.capacity s) (fun i -> Bitset.mem s i)

let capacity = List.length

let mem s i = List.nth s i

let set s i v = List.mapi (fun j x -> if j = i then v else x) s
let add s i = set s i true
let remove s i = set s i false

let union a b = List.map2 ( || ) a b
let inter a b = List.map2 ( && ) a b
let diff a b = List.map2 (fun x y -> x && not y) a b

let is_empty s = List.for_all not s
let cardinal s = List.length (List.filter Fun.id s)
let subset a b = List.for_all2 (fun x y -> (not x) || y) a b
let disjoint a b = List.for_all2 (fun x y -> not (x && y)) a b
let equal a b = a = b

let elements s =
  List.filteri (fun i _ -> mem s i) (List.init (capacity s) Fun.id)

let agrees model fast =
  capacity model = Bitset.capacity fast
  && List.for_all (fun i -> mem model i = Bitset.mem fast i)
       (List.init (capacity model) Fun.id)
  && cardinal model = Bitset.cardinal fast
  && is_empty model = Bitset.is_empty fast
  && elements model = Bitset.elements fast
