module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Sg = Rtcad_sg.Sg

type summary = {
  num_states : int;
  num_edges : int;
  initial_code : string;
  codes : string list;
  edges : string list;
  deadlock_codes : string list;
}

type result =
  | Summary of summary
  | Inconsistent of string
  | Unsafe of int
  | Too_large

exception Found of result

let code_string code =
  String.concat "" (List.map (fun v -> if v then "1" else "0") code)

let edge_string src name dst = src ^ " -" ^ name ^ "-> " ^ dst

(* A state is (marking, code): a sorted place list and a bool list over
   signals.  Both are plain immutable lists, compared structurally. *)
let explore ?(max_states = 200_000) stg =
  let net = Stg.net stg in
  let initial_marking =
    List.sort Int.compare (Rtcad_util.Bitset.elements (Petri.initial_marking net))
  in
  let initial_code = List.map (Stg.initial_value stg) (Stg.signals stg) in
  let enabled m t = List.for_all (fun p -> List.mem p m) (Petri.pre net t) in
  let fire m t =
    (* Remove the consumed tokens, then add the produced ones; a produced
       place that still holds a token violates safety. *)
    let m' = List.filter (fun p -> not (List.mem p (Petri.pre net t))) m in
    List.iter (fun p -> if List.mem p m' then raise (Found (Unsafe p))) (Petri.post net t);
    List.sort Int.compare (Petri.post net t @ m')
  in
  let next_code code t =
    match Stg.label stg t with
    | Stg.Dummy -> code
    | Stg.Edge { signal; dir } ->
      let v = List.nth code signal in
      let v' = dir = Stg.Rise in
      if v = v' then
        raise
          (Found
             (Inconsistent
                (Printf.sprintf "%s fires with the signal already at %b"
                   (Petri.transition_name net t) v)));
      List.mapi (fun i x -> if i = signal then v' else x) code
  in
  let code_of : (int list, bool list) Hashtbl.t = Hashtbl.create 64 in
  let edges = ref [] and num_edges = ref 0 and deadlocks = ref [] in
  let queue = Queue.create () in
  Hashtbl.add code_of initial_marking initial_code;
  Queue.add (initial_marking, initial_code) queue;
  try
    while not (Queue.is_empty queue) do
      let m, code = Queue.take queue in
      let moves = List.filter (enabled m) (List.init (Petri.num_transitions net) Fun.id) in
      if moves = [] then deadlocks := code_string code :: !deadlocks;
      List.iter
        (fun t ->
          let m' = fire m t in
          let code' = next_code code t in
          (match Hashtbl.find_opt code_of m' with
          | Some known ->
            if known <> code' then
              raise (Found (Inconsistent "marking reached with two codes"))
          | None ->
            if Hashtbl.length code_of >= max_states then raise (Found Too_large);
            Hashtbl.add code_of m' code';
            Queue.add (m', code') queue);
          incr num_edges;
          edges :=
            edge_string (code_string code) (Petri.transition_name net t)
              (code_string code')
            :: !edges)
        moves
    done;
    Summary
      {
        num_states = Hashtbl.length code_of;
        num_edges = !num_edges;
        initial_code = code_string initial_code;
        codes =
          List.sort String.compare
            (Hashtbl.fold (fun _ c acc -> code_string c :: acc) code_of []);
        edges = List.sort String.compare !edges;
        deadlock_codes = List.sort String.compare !deadlocks;
      }
  with Found r -> r

let summary_of_fast sg =
  let stg = Sg.stg sg in
  let net = Stg.net stg in
  let code_str s =
    String.concat ""
      (List.map
         (fun sig_ -> if Sg.value sg s sig_ then "1" else "0")
         (Stg.signals stg))
  in
  let codes = ref [] and edges = ref [] and num_edges = ref 0 in
  Sg.iter_states
    (fun s ->
      codes := code_str s :: !codes;
      Sg.iter_succs sg s (fun t s' ->
          incr num_edges;
          edges :=
            edge_string (code_str s) (Petri.transition_name net t) (code_str s')
            :: !edges))
    sg;
  {
    num_states = Sg.num_states sg;
    num_edges = !num_edges;
    initial_code = code_str (Sg.initial sg);
    codes = List.sort String.compare !codes;
    edges = List.sort String.compare !edges;
    deadlock_codes =
      List.sort String.compare (List.map code_str (Sg.deadlocks sg));
  }

let equal_result a b =
  match (a, b) with
  | Summary x, Summary y -> x = y
  | Inconsistent _, Inconsistent _ -> true
  | Unsafe _, Unsafe _ -> true
  | Too_large, Too_large -> true
  | _ -> false

let pp_result ppf = function
  | Summary s ->
    Format.fprintf ppf "%d states, %d edges, %d deadlocks, initial %s" s.num_states
      s.num_edges
      (List.length s.deadlock_codes)
      s.initial_code
  | Inconsistent msg -> Format.fprintf ppf "inconsistent (%s)" msg
  | Unsafe p -> Format.fprintf ppf "unsafe (place %d)" p
  | Too_large -> Format.fprintf ppf "too large"
