(** Differential oracles: run an optimized kernel and its naive reference
    on the same seeded input and diff every observable, plus whole-flow
    invariant checks over the Figure-2 synthesis pipeline.

    Every oracle returns a {!verdict}: [Pass], [Fail] with a finding, or
    [Skip] when the case is outside the oracle's contract (e.g. the CSC
    insertion heuristic gives up on a random specification — that is a
    capability limit, not a correctness bug). *)

type finding = { oracle : string; detail : string }
type verdict = Pass | Fail of finding | Skip of string

val diff_bitset : ?ops:int -> Rtcad_util.Rng.t -> verdict
(** Replay a random operation stream ([add] / [remove] / [set] / [union] /
    [inter] / [diff] / [Builder] batches) on the word-packed
    {!Rtcad_util.Bitset} and the [bool list] model, checking after every
    step that all observables agree — membership, cardinality, elements,
    emptiness — plus the binary predicates ([subset], [disjoint],
    [equal], [equal_flip], [compare], [hash] consistency) against a
    second tracked pair. *)

val fast_sg_result : ?max_states:int -> Rtcad_stg.Stg.t -> Ref_sg.result
(** The canonical reachability summary via the optimized {!Rtcad_sg.Sg}
    builder, with its exceptions mapped onto {!Ref_sg.result}. *)

val diff_sg :
  ?fast:(Rtcad_stg.Stg.t -> Ref_sg.result) -> Rtcad_stg.Stg.t -> verdict
(** Diff the optimized reachability analysis against the textbook BFS of
    {!Ref_sg.explore}: state and edge fingerprints, deadlocks, and the
    malformed-input classification must all agree.  [fast] (default
    {!fast_sg_result}) exists so the test suite can emulate a broken
    kernel and check that the oracle catches and shrinks it. *)

val diff_sim : Rtcad_util.Rng.t -> verdict
(** Generate a random netlist and timed stimulus schedule, run the
    allocation-free {!Rtcad_netlist.Sim} and the sorted-agenda
    {!Ref_sim}, and diff final net values and canonicalized committed
    traces. *)

val diff_incremental :
  ?engine:Rtcad_sg.Engine.t -> Rtcad_stg.Stg.t -> Gen.edit list -> verdict
(** Differential edit-replay: apply the edit script step by step and, at
    every step (including the unedited base), synthesize the same
    specification through the incremental machinery — once with a live
    {!Rtcad_core.Store} and the warm in-process analysis pool (delta
    seeding, stage-key reuse), once more against the now-populated store
    (full cached reconstruction), and once from scratch with a cleared
    pool and cold caches.  All three must agree byte-for-byte on
    reports/netlists, or exactly on the failure verdict
    ([Synthesis_failure] / [Inconsistent] / [Unsafe] / [Too_large]).
    The pooled (possibly delta-seeded) symbolic reachability of every
    step is additionally compared to a from-scratch fixpoint for a
    bit-identical reachable set ({!Rtcad_sg.Symbolic.equal_reachable}).
    [Toggle_assumption] edits flip the RT mode's [allow_input_first]
    flag instead of editing the net. *)

val flow_invariants : Rtcad_stg.Stg.t -> verdict
(** End-to-end invariants of {!Rtcad_core.Flow.synthesize} in RT mode:
    the encoded state graph must actually satisfy CSC, and the emitted
    netlist must pass {!Rtcad_verify.Conformance} under the flow's own
    back-annotated constraints (re-verified via
    {!Rtcad_core.Check.minimal_constraints} when it does not).
    Synthesis refusals ([Synthesis_failure]) and verification bound
    blow-ups are [Skip]s. *)

val pp_verdict : Format.formatter -> verdict -> unit
