(** Seeded random generators (with shrinking) for STGs, netlists and
    timed stimuli.

    {2 STGs}

    Random specifications are built as {e cactus marked graphs}: a set of
    transition cycles, each carrying one token, where every cycle after
    the first may share at most one transition with the cycles built
    before it.  Each signal owns exactly one rising and one falling
    transition inside its home cycle, so the result is safe, live,
    consistent and deadlock-free {e by construction} — any disagreement
    between the optimized kernels and the reference models on such an
    input is a genuine bug, never a malformed test case.  Choice and
    dummy-transition shapes are drawn from {!Rtcad_stg.Library} instead
    (the [Shape] plans), mirroring the paper's controller corpus.

    A {!plan} is the generator's intermediate representation; shrinking
    operates on plans (drop a cycle, drop a signal, unshare a
    transition, fall back to a canonical ladder of tiny specs) and every
    candidate is strictly smaller in place count, so shrink loops
    terminate. *)

type edge = { signal : int; dir : Rtcad_stg.Stg.dir }

type plan =
  | Shape of string  (** a named {!Rtcad_stg.Library} specification *)
  | Cycles of {
      kinds : Rtcad_stg.Stg.kind array;  (** per signal; at least one [Output] *)
      cycles : edge list list;
          (** each cycle in firing order; the token sits on the implicit
              place before the head *)
    }

val gen_plan : Rtcad_util.Rng.t -> max_places:int -> plan
(** A random cactus-marked-graph plan with at most [max_places] implicit
    places ([max_places >= 2]). *)

val gen_shape : Rtcad_util.Rng.t -> plan
(** A random library specification. *)

val stg_of_plan : plan -> Rtcad_stg.Stg.t
val places_of_plan : plan -> int
(** Number of places of the built STG ([Shape] plans count their net's
    places). *)

val shrink_plan : plan -> plan list
(** Strictly smaller candidate plans, most aggressive first.  [Shape]
    plans shrink onto the canonical ladder of tiny cycle plans. *)

val pp_plan : Format.formatter -> plan -> unit

(** {2 Edit scripts}

    Structural edits over a finished STG, driving the incremental-
    synthesis differential battery: additions are behaviour-preserving
    duplications (a duplicated transition keeps the old transition set a
    subset of the new one, so the delta-reachability seed stays valid; a
    duplicated place changes the place space and forces the seed
    fallback), removals may break consistency, safety or liveness — on
    purpose, since incremental and from-scratch synthesis must agree on
    failure verdicts too.  Indices are reduced modulo the live element
    count at application time, so a script survives base shrinking. *)

type edit =
  | Add_transition of int  (** duplicate transition [i mod nt] *)
  | Remove_transition of int  (** drop transition [i mod nt] (no-op if only one) *)
  | Add_place of int  (** duplicate place [i mod np], same arcs and marking *)
  | Remove_place of int  (** drop place [i mod np] (no-op if only one) *)
  | Rename_signal of int  (** fresh name for signal [i mod ns] *)
  | Toggle_assumption
      (** structurally a no-op; the oracle flips the RT mode's
          [allow_input_first] flag *)

val apply_edit : Rtcad_stg.Stg.t -> edit -> Rtcad_stg.Stg.t
val gen_edit : Rtcad_util.Rng.t -> edit
val gen_edits : Rtcad_util.Rng.t -> int -> edit list
val pp_edit : Format.formatter -> edit -> unit

type edit_case = { base : plan; edits : edit list }

val shrink_edit_case : edit_case -> edit_case list
(** Strictly smaller candidates under the lexicographic measure (base
    places, edit count): drop one edit, or shrink the base keeping the
    script. *)

val pp_edit_case : Format.formatter -> edit_case -> unit

(** {2 Netlists and stimuli} *)

val gen_netlist : Rtcad_util.Rng.t -> Rtcad_netlist.Netlist.t
(** A random feedback-free netlist (2-3 primary inputs, up to ~10 gates
    over the whole gate library including state-holding C-elements),
    with randomized input initial values, settled, and {e every} net
    marked observable so simulator diffs compare complete traces. *)

val gen_stimuli :
  Rtcad_util.Rng.t ->
  Rtcad_netlist.Netlist.t ->
  (Rtcad_netlist.Netlist.net * bool * float) list
(** A timed input schedule [(net, value, at_ps)] in increasing time
    order: each event toggles one primary input, events are spaced a few
    hundred ps apart.  Apply with [drive] before running either
    simulator. *)

val horizon : (Rtcad_netlist.Netlist.net * bool * float) list -> float
(** A run horizon comfortably past the last stimulus event. *)
