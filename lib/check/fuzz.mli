(** The fuzzing driver behind [rtsyn fuzz]: seeded case generation,
    oracle dispatch, and plan shrinking.

    Each case derives its own deterministic sub-seed from the campaign
    seed, draws a case kind (bitset stream, simulator netlist, cactus
    STG, library shape) and runs the matching differential oracle from
    {!Oracle}.  The campaign stops at the first failure; if the failing
    case was plan-based and shrinking is enabled, the plan is greedily
    minimized while it keeps failing the same oracle, and the minimal
    specification is rendered in [.g] syntax for reproduction. *)

type config = {
  seed : int;
  cases : int;
  max_places : int;  (** place budget for generated STG plans *)
  shrink : bool;
  edits : int;
      (** [> 0] switches the campaign to the incremental edit-replay
          battery: every case builds a base specification, applies up to
          this many random edits ({!Gen.edit}), and checks
          {!Oracle.diff_incremental} — delta-seeded/cached synthesis
          against from-scratch synthesis at every step, under a per-case
          engine choice (explicit, symbolic, or auto). *)
}

val default : config
(** [{ seed = 1; cases = 100; max_places = 14; shrink = true; edits = 0 }] *)

type failure = {
  case : int;  (** 0-based index of the failing case *)
  case_seed : int;  (** sub-seed; [rtsyn fuzz --seed] of a 1-case campaign *)
  finding : Oracle.finding;
  plan : Gen.plan option;  (** minimal failing plan, for plan-based oracles *)
  edits : Gen.edit list;  (** minimal failing edit script (edit battery) *)
  g_text : string option;  (** the minimal plan's STG in [.g] syntax *)
}

type outcome = {
  ran : int;
  passed : int;
  skipped : int;
  failure : failure option;
}

val case_seed : config -> int -> int
(** The deterministic sub-seed of case [i]. *)

val run :
  ?fast_sg:(Rtcad_stg.Stg.t -> Ref_sg.result) ->
  ?log:(string -> unit) ->
  config ->
  outcome
(** Run the campaign.  [fast_sg] replaces the optimized state-graph
    summary fed to {!Oracle.diff_sg} — the test suite uses it to emulate
    a buggy kernel and assert that the driver catches and shrinks it.
    [log] receives one short progress line per milestone. *)

val pp_outcome : Format.formatter -> outcome -> unit
