(** Naive reference bit set: a plain [bool list], one element per index.

    Deliberately the dumbest possible implementation — every operation is a
    list traversal with no packing, no words, no carries — so that it is
    obviously correct by inspection.  The differential oracle
    ({!Oracle.diff_bitset}) replays random operation streams against this
    model and the word-packed {!Rtcad_util.Bitset} and diffs every
    observable after every step. *)

type t = bool list
(** Element [i] of the list is the membership of [i]. *)

val create : int -> t
val of_fast : Rtcad_util.Bitset.t -> t
(** Import a packed set (by membership queries only). *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val set : t -> int -> bool -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val cardinal : t -> int
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal : t -> t -> bool
val elements : t -> int list

val agrees : t -> Rtcad_util.Bitset.t -> bool
(** Every observable of the packed set matches the model: membership of
    every index, cardinality, emptiness and element list. *)
