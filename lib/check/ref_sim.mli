(** Naive event-driven netlist simulator: a sorted-list agenda.

    Mirrors the semantics of the allocation-free {!Rtcad_netlist.Sim}
    kernel — inertial delay with one pending event per gate output,
    direct input drives that bypass the inertial slot, femtosecond
    integer time — but with the simplest possible mechanics: the agenda
    is a sorted association list, gate inputs are gathered into plain
    lists and evaluated with {!Rtcad_netlist.Gate.eval}.  Events that
    carry the same timestamp may commit in a different order than the
    fast kernel's heap; compare traces with {!canonical_trace}, which is
    stable under same-instant permutations. *)

type t

val create : Rtcad_netlist.Netlist.t -> t
(** All nets start at their netlist initial value; gates whose evaluation
    disagrees with their initial value are scheduled, as in
    {!Rtcad_netlist.Sim.create}. *)

val value : t -> Rtcad_netlist.Netlist.net -> bool
val drive : t -> Rtcad_netlist.Netlist.net -> bool -> after:float -> unit
(** Schedule a primary-input change [after] ps from the current time. *)

val run : ?max_events:int -> t -> until:float -> unit
(** Process events up to the absolute time [until] (ps).  Raises
    [Failure] when the event budget is exhausted (oscillation). *)

val settle : ?max_events:int -> t -> unit

val trace : t -> (float * Rtcad_netlist.Netlist.net * bool) list
(** Committed changes of {e output-marked} nets, oldest first. *)

val canonical_trace :
  (float * Rtcad_netlist.Netlist.net * bool) list ->
  (float * Rtcad_netlist.Netlist.net * bool) list
(** Sort events sharing a timestamp by (net, value): the canonical form
    for diffing two simulators that break same-instant ties
    differently. *)
