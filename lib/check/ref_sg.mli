(** Textbook BFS reachability over an STG, written for clarity.

    Markings are sorted lists of marked places, codes are [bool list]s
    over signals; exploration is a plain queue + hash table, with the
    same safety and consistency rules as the optimized {!Rtcad_sg.Sg}
    builder.  The result is reduced to a {e canonical summary} —
    renumbering-independent fingerprints of states and edges — so that
    two independent explorations can be diffed without agreeing on state
    identifiers. *)

type summary = {
  num_states : int;
  num_edges : int;
  initial_code : string;  (** code of the initial state, e.g. ["0110"] *)
  codes : string list;  (** sorted, with multiplicity (USC conflicts keep both) *)
  edges : string list;  (** sorted ["code -name-> code'"] fingerprints *)
  deadlock_codes : string list;  (** sorted codes of states with no successor *)
}

type result =
  | Summary of summary
  | Inconsistent of string
      (** a signal fired against its current value, or one marking was
          reached with two different codes (the carried message is
          informational and not part of the diff) *)
  | Unsafe of int  (** firing would put a second token into the place *)
  | Too_large  (** exploration exceeded [max_states] *)

val explore : ?max_states:int -> Rtcad_stg.Stg.t -> result
(** Default bound: 200000 states, matching {!Rtcad_sg.Sg.build}. *)

val summary_of_fast : Rtcad_sg.Sg.t -> summary
(** The same canonical summary computed from an already-built fast state
    graph. *)

val equal_result : result -> result -> bool
(** Equality up to the informational payloads of the error cases. *)

val pp_result : Format.formatter -> result -> unit
