module Bitset = Rtcad_util.Bitset
module Rng = Rtcad_util.Rng
module Stg = Rtcad_stg.Stg
module Sg = Rtcad_sg.Sg
module Encoding = Rtcad_sg.Encoding
module Petri = Rtcad_stg.Petri
module Netlist = Rtcad_netlist.Netlist
module Sim = Rtcad_netlist.Sim
module Flow = Rtcad_core.Flow
module Check = Rtcad_core.Check
module Store = Rtcad_core.Store
module Symbolic = Rtcad_sg.Symbolic
module Transform = Rtcad_stg.Transform
module Bdd = Rtcad_logic.Bdd

type finding = { oracle : string; detail : string }
type verdict = Pass | Fail of finding | Skip of string

let fail oracle fmt = Format.kasprintf (fun detail -> Fail { oracle; detail }) fmt

let pp_verdict ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Skip reason -> Format.fprintf ppf "skip (%s)" reason
  | Fail f -> Format.fprintf ppf "FAIL [%s] %s" f.oracle f.detail

(* ------------------------------------------------------------------ *)
(* Bitset: packed kernel vs bool-list model                            *)
(* ------------------------------------------------------------------ *)

let diff_bitset ?(ops = 60) rng =
  let oracle = "bitset-diff" in
  let cap = 1 + Rng.int rng 192 in
  let random_elems () =
    List.init (Rng.int rng (cap + 1)) (fun _ -> Rng.int rng cap)
  in
  (* The main pair mutates; the auxiliary pair feeds binary operations
     and predicates.  [of_list] itself is under test via the aux set. *)
  let fast = ref (Bitset.create cap) and model = ref (Ref_bitset.create cap) in
  let mk_aux () =
    let xs = random_elems () in
    ( Bitset.of_list cap xs,
      List.fold_left Ref_bitset.add (Ref_bitset.create cap) xs )
  in
  let aux = ref (mk_aux ()) in
  let result = ref Pass in
  let step op =
    if !result = Pass then begin
      let desc =
        match op with
        | 0 ->
          let i = Rng.int rng cap in
          fast := Bitset.add !fast i;
          model := Ref_bitset.add !model i;
          Printf.sprintf "add %d" i
        | 1 ->
          let i = Rng.int rng cap in
          fast := Bitset.remove !fast i;
          model := Ref_bitset.remove !model i;
          Printf.sprintf "remove %d" i
        | 2 ->
          let i = Rng.int rng cap and v = Rng.bool rng in
          fast := Bitset.set !fast i v;
          model := Ref_bitset.set !model i v;
          Printf.sprintf "set %d %b" i v
        | 3 ->
          let af, am = !aux in
          fast := Bitset.union !fast af;
          model := Ref_bitset.union !model am;
          "union"
        | 4 ->
          let af, am = !aux in
          fast := Bitset.inter !fast af;
          model := Ref_bitset.inter !model am;
          "inter"
        | 5 ->
          let af, am = !aux in
          fast := Bitset.diff !fast af;
          model := Ref_bitset.diff !model am;
          "diff"
        | 6 ->
          (* Builder batch: copy, flip a handful of bits, freeze. *)
          let b = Bitset.Builder.of_set !fast in
          let flips = List.init (1 + Rng.int rng 8) (fun _ -> (Rng.int rng cap, Rng.bool rng)) in
          List.iter (fun (i, v) -> Bitset.Builder.set b i v) flips;
          fast := Bitset.Builder.freeze b;
          model := List.fold_left (fun m (i, v) -> Ref_bitset.set m i v) !model flips;
          "builder batch"
        | _ ->
          aux := mk_aux ();
          "fresh aux"
      in
      let af, am = !aux in
      let i = Rng.int rng cap in
      let flip_model = Ref_bitset.set am i (not (Ref_bitset.mem am i)) in
      if not (Ref_bitset.agrees !model !fast) then
        result := fail oracle "after %s (cap %d): observables diverge" desc cap
      else if not (Ref_bitset.agrees am af) then
        result := fail oracle "aux set after %s (cap %d): observables diverge" desc cap
      else if Bitset.subset !fast af <> Ref_bitset.subset !model am then
        result := fail oracle "after %s (cap %d): subset disagrees" desc cap
      else if Bitset.disjoint !fast af <> Ref_bitset.disjoint !model am then
        result := fail oracle "after %s (cap %d): disjoint disagrees" desc cap
      else if Bitset.equal !fast af <> Ref_bitset.equal !model am then
        result := fail oracle "after %s (cap %d): equal disagrees" desc cap
      else if (Bitset.compare !fast af = 0) <> Ref_bitset.equal !model am then
        result := fail oracle "after %s (cap %d): compare-zero disagrees" desc cap
      else if Bitset.equal !fast af && Bitset.hash !fast <> Bitset.hash af then
        result := fail oracle "after %s (cap %d): equal sets hash differently" desc cap
      else if Bitset.equal_flip !fast af i <> Ref_bitset.equal !model flip_model then
        result := fail oracle "after %s (cap %d): equal_flip %d disagrees" desc cap i
      else if Bitset.cardinal (Bitset.union !fast af)
              + Bitset.cardinal (Bitset.inter !fast af)
              <> Bitset.cardinal !fast + Bitset.cardinal af
      then result := fail oracle "after %s (cap %d): inclusion-exclusion broken" desc cap
    end
  in
  for _ = 1 to ops do
    step (Rng.int rng 8)
  done;
  !result

(* ------------------------------------------------------------------ *)
(* State graphs: optimized builder vs textbook BFS                     *)
(* ------------------------------------------------------------------ *)

let fast_sg_result ?max_states stg =
  match Sg.build ?max_states stg with
  | sg -> Ref_sg.Summary (Ref_sg.summary_of_fast sg)
  | exception Sg.Inconsistent msg -> Ref_sg.Inconsistent msg
  | exception Sg.Too_large _ -> Ref_sg.Too_large
  | exception Petri.Unsafe p -> Ref_sg.Unsafe p

let first_diff xs ys =
  let rec go = function
    | x :: xs', y :: ys' -> if x = y then go (xs', ys') else Some (x, y)
    | x :: _, [] -> Some (x, "<missing>")
    | [], y :: _ -> Some ("<missing>", y)
    | [], [] -> None
  in
  go (xs, ys)

let diff_sg ?(fast = fun stg -> fast_sg_result stg) stg =
  let oracle = "sg-diff" in
  let reference = Ref_sg.explore stg in
  let fast_r = fast stg in
  if Ref_sg.equal_result reference fast_r then Pass
  else
    match (reference, fast_r) with
    | Ref_sg.Summary r, Ref_sg.Summary f ->
      let where =
        if r.Ref_sg.num_states <> f.Ref_sg.num_states then
          Printf.sprintf "state count %d vs %d" r.Ref_sg.num_states f.Ref_sg.num_states
        else
          match
            ( first_diff r.Ref_sg.codes f.Ref_sg.codes,
              first_diff r.Ref_sg.edges f.Ref_sg.edges )
          with
          | Some (a, b), _ -> Printf.sprintf "codes %s vs %s" a b
          | None, Some (a, b) -> Printf.sprintf "edges %s vs %s" a b
          | None, None -> "deadlocks or edge count"
      in
      fail oracle "reference (%a) vs optimized (%a): %s" Ref_sg.pp_result reference
        Ref_sg.pp_result fast_r where
    | _ ->
      fail oracle "reference says %a, optimized says %a" Ref_sg.pp_result reference
        Ref_sg.pp_result fast_r

(* ------------------------------------------------------------------ *)
(* Event simulation: allocation-free kernel vs sorted-agenda model     *)
(* ------------------------------------------------------------------ *)

let diff_sim rng =
  let oracle = "sim-diff" in
  let nl = Gen.gen_netlist rng in
  let stim = Gen.gen_stimuli rng nl in
  let until = Gen.horizon stim in
  let run_fast () =
    let sim = Sim.create nl in
    List.iter (fun (net, v, at) -> Sim.drive sim net v ~after:at) stim;
    Sim.run sim ~until;
    let values = List.init (Netlist.num_nets nl) (Sim.value sim) in
    (values, Ref_sim.canonical_trace (Sim.trace sim))
  in
  let run_ref () =
    let sim = Ref_sim.create nl in
    List.iter (fun (net, v, at) -> Ref_sim.drive sim net v ~after:at) stim;
    Ref_sim.run sim ~until;
    let values = List.init (Netlist.num_nets nl) (Ref_sim.value sim) in
    (values, Ref_sim.canonical_trace (Ref_sim.trace sim))
  in
  match (run_fast (), run_ref ()) with
  | exception Sim.Oscillation msg -> fail oracle "optimized kernel oscillates: %s" msg
  | exception Failure msg -> fail oracle "reference simulator oscillates: %s" msg
  | (fv, ft), (rv, rt) ->
    if fv <> rv then
      let net =
        match List.find_opt (fun n -> List.nth fv n <> List.nth rv n)
                (List.init (Netlist.num_nets nl) Fun.id) with
        | Some n -> Netlist.net_name nl n
        | None -> "?"
      in
      fail oracle "final value of %s disagrees (%d gates)" net (Netlist.gate_count nl)
    else if ft <> rt then begin
      match first_diff (List.map (fun (at, n, v) ->
                            Printf.sprintf "%.3f %s=%b" at (Netlist.net_name nl n) v) ft)
                       (List.map (fun (at, n, v) ->
                            Printf.sprintf "%.3f %s=%b" at (Netlist.net_name nl n) v) rt)
      with
      | Some (a, b) -> fail oracle "trace diverges: optimized %s vs reference %s" a b
      | None -> fail oracle "trace diverges (lengths %d vs %d)" (List.length ft) (List.length rt)
    end
    else Pass

(* ------------------------------------------------------------------ *)
(* Incremental synthesis: delta ≡ scratch under edit replay            *)
(* ------------------------------------------------------------------ *)

(* One synthesis outcome, flattened to comparable text: the full report
   (state counts, insertions, per-signal equations, constraints) plus
   the printed netlist on success, the failure class and message
   otherwise.  Two pipelines agree iff these strings are equal. *)
let flow_outcome ?cache ?max_states ~mode ~engine stg =
  match Flow.synthesize ?cache ?max_states ~mode ~engine stg with
  | r ->
    Format.asprintf "ok:%a@.%a" Flow.pp_report r Netlist.pp r.Flow.netlist
  | exception Flow.Synthesis_failure m -> "synthesis-failure: " ^ m
  | exception Sg.Inconsistent m -> "inconsistent: " ^ m
  | exception Sg.Too_large n -> Printf.sprintf "too-large: %d" n
  | exception Petri.Unsafe p -> Printf.sprintf "unsafe: place %d" p

let analysis_outcome ?max_states stg0 =
  match Symbolic.analyze_cached ?max_states stg0 with
  | sym -> Ok sym
  | exception Sg.Inconsistent m -> Error ("inconsistent: " ^ m)
  | exception Sg.Too_large n -> Error (Printf.sprintf "too-large: %d" n)
  | exception Petri.Unsafe p -> Error (Printf.sprintf "unsafe: place %d" p)

(* Replay an edit script, and at every step (including the unedited
   base) run the same specification through three pipelines:

   - delta: with the artifact store and whatever the in-process analysis
     pool retained from earlier steps — stage-key lookups, encode
     replay, and delta-seeded symbolic reachability all fire here;
   - warm: immediately again with the same store — the full-hit
     reconstruction path (no analysis runs at all);
   - scratch: cleared pool, cold operation caches, no store.

   All three must produce byte-identical reports/netlists or identical
   failure verdicts.  Separately, the pooled (possibly seeded) symbolic
   analysis of each step's specification is compared against a
   from-scratch fixpoint for a bit-identical reachable state set. *)
let diff_incremental ?(engine = Rtcad_sg.Engine.Auto) base edits =
  let oracle = "incremental" in
  let store = Store.create () in
  let mode_of toggled =
    Flow.Rt { user = []; allow_input_first = toggled; allow_lazy = true }
  in
  let rec steps stg toggled step edits =
    let mode = mode_of toggled in
    let delta = flow_outcome ~cache:store ~mode ~engine stg in
    let warm = flow_outcome ~cache:store ~mode ~engine stg in
    let stg0 = Transform.contract_dummies ~strict:false stg in
    let warm_sym = analysis_outcome stg0 in
    Symbolic.Seeds.clear ();
    Bdd.clear_caches ();
    let scratch = flow_outcome ~mode ~engine stg in
    let cold_sym = analysis_outcome stg0 in
    if delta <> scratch then
      fail oracle "step %d: delta vs scratch diverge@,delta:   %s@,scratch: %s"
        step delta scratch
    else if warm <> scratch then
      fail oracle
        "step %d: cache reconstruction vs scratch diverge@,warm:    %s@,scratch: %s"
        step warm scratch
    else
      match (warm_sym, cold_sym) with
      | Ok w, Ok c
        when (not (Symbolic.equal_reachable w c))
             || Symbolic.num_states w <> Symbolic.num_states c ->
        fail oracle
          "step %d: seeded reachable set differs from scratch (%d vs %d states)"
          step (Symbolic.num_states w) (Symbolic.num_states c)
      | Error w, Error c when w <> c ->
        fail oracle "step %d: analysis verdicts diverge: %s vs %s" step w c
      | (Ok _, Error _ | Error _, Ok _) ->
        fail oracle "step %d: seeded analysis and scratch analysis disagree on %s"
          step
          (match warm_sym with Ok _ -> "failure (seeded passed)" | _ -> "success (seeded failed)")
      | _ -> (
        match edits with
        | [] -> Pass
        | e :: rest ->
          let stg = Gen.apply_edit stg e in
          let toggled =
            match e with Gen.Toggle_assumption -> not toggled | _ -> toggled
          in
          steps stg toggled (step + 1) rest)
  in
  (* The battery owns the pool and the caches for its duration. *)
  Symbolic.Seeds.clear ();
  Bdd.clear_caches ();
  let verdict = steps base false 0 edits in
  Symbolic.Seeds.clear ();
  verdict

(* ------------------------------------------------------------------ *)
(* Whole-flow invariants (Figure 2 closed loop)                        *)
(* ------------------------------------------------------------------ *)

let flow_invariants stg =
  let oracle = "flow" in
  match Flow.synthesize ~mode:Flow.rt_default stg with
  | exception Flow.Synthesis_failure msg -> Skip ("synthesis: " ^ msg)
  | exception Sg.Too_large _ -> Skip "state graph too large"
  | result ->
    if Encoding.has_csc (Flow.sg result) then
      fail oracle "CSC conflicts remain in the encoded, reduced state graph"
    else begin
      (* The encoded STG (with inserted state signals) must still agree
         with the textbook reachability analysis. *)
      match diff_sg result.Flow.stg with
      | Fail f -> Fail { f with detail = "encoded STG: " ^ f.detail }
      | Skip _ | Pass -> (
        match Check.conformance ~constraints:result.Flow.constraints result with
        | exception Rtcad_verify.Conformance.Bound_exceeded _ ->
          Skip "conformance bound exceeded"
        | r when r.Rtcad_verify.Conformance.ok -> Pass
        | _ -> (
          match Check.minimal_constraints result with
          | minimal ->
            fail oracle
              "netlist needs %d constraint(s) beyond the %d back-annotated ones"
              (List.length minimal)
              (List.length result.Flow.constraints)
          | exception Rtcad_verify.Rt_verify.Not_verifiable ->
            fail oracle "netlist does not conform even under all proposed assumptions"))
    end
