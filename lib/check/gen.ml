module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Library = Rtcad_stg.Library
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Rng = Rtcad_util.Rng

type edge = { signal : int; dir : Stg.dir }

type plan =
  | Shape of string
  | Cycles of { kinds : Stg.kind array; cycles : edge list list }

(* ------------------------------------------------------------------ *)
(* STG plans                                                           *)
(* ------------------------------------------------------------------ *)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let rotate k l =
  let n = List.length l in
  let k = ((k mod n) + n) mod n in
  List.filteri (fun i _ -> i >= k) l @ List.filteri (fun i _ -> i < k) l

let insert_at k x l =
  List.filteri (fun i _ -> i < k) l @ (x :: List.filteri (fun i _ -> i >= k) l)

let ensure_output kinds =
  if not (Array.exists (fun k -> k = Stg.Output) kinds) then kinds.(0) <- Stg.Output;
  kinds

let gen_plan rng ~max_places =
  let max_places = max 2 max_places in
  let budget = ref max_places in
  let kinds_rev = ref [] and nsigs = ref 0 in
  let cycles = ref [] in
  let ncycles = 1 + Rng.int rng 3 in
  for c = 0 to ncycles - 1 do
    if !budget >= 2 then begin
      let own = 1 + Rng.int rng (min 3 (!budget / 2)) in
      budget := !budget - (2 * own);
      let first = !nsigs in
      for _ = 1 to own do
        kinds_rev :=
          Rng.weighted rng [ (3, Stg.Output); (2, Stg.Input); (1, Stg.Internal) ]
          :: !kinds_rev;
        incr nsigs
      done;
      let edges =
        Array.init (2 * own) (fun i ->
            { signal = first + (i / 2); dir = (if i land 1 = 0 then Stg.Rise else Stg.Fall) })
      in
      shuffle rng edges;
      let seq = Array.to_list edges in
      (* Share one transition of an earlier cycle (a cactus: at most one
         shared transition per new cycle keeps every simple cycle of the
         union equal to a generated one, hence marked, hence live). *)
      let seq =
        if c > 0 && first > 0 && !budget >= 1 && Rng.bool rng then begin
          budget := !budget - 1;
          let s = Rng.int rng first in
          let d = if Rng.bool rng then Stg.Rise else Stg.Fall in
          insert_at (Rng.int rng (List.length seq + 1)) { signal = s; dir = d } seq
        end
        else seq
      in
      let seq = rotate (Rng.int rng (List.length seq)) seq in
      cycles := seq :: !cycles
    end
  done;
  let kinds = ensure_output (Array.of_list (List.rev !kinds_rev)) in
  Cycles { kinds; cycles = List.rev !cycles }

let gen_shape rng =
  let names = List.map fst (Library.all_named ()) in
  Shape (Rng.pick rng (Array.of_list names))

let edge_name e =
  Printf.sprintf "s%d%s" e.signal (match e.dir with Stg.Rise -> "+" | Stg.Fall -> "-")

let stg_of_plan = function
  | Shape name -> (
    match List.assoc_opt name (Library.all_named ()) with
    | Some stg -> stg
    | None -> invalid_arg ("Gen.stg_of_plan: unknown shape " ^ name))
  | Cycles { kinds; cycles } ->
    let ns = Array.length kinds in
    let b = Stg.Build.create () in
    (* A signal's home cycle (the one holding both its edges) fixes its
       initial value: whichever edge fires first from the token must move
       the signal away from its initial level. *)
    let initial = Array.make ns false in
    let owned = Array.make ns false in
    List.iter
      (fun cyc ->
        List.iter
          (fun e ->
            let s = e.signal in
            if
              (not owned.(s))
              && List.exists (fun e' -> e'.signal = s && e'.dir = Stg.Rise) cyc
              && List.exists (fun e' -> e'.signal = s && e'.dir = Stg.Fall) cyc
            then begin
              owned.(s) <- true;
              let fst_edge = List.find (fun e' -> e'.signal = s) cyc in
              initial.(s) <- fst_edge.dir = Stg.Fall
            end)
          cyc)
      cycles;
    Array.iteri
      (fun s k -> Stg.Build.signal b k ~initial:initial.(s) (Printf.sprintf "s%d" s))
      kinds;
    List.iter
      (fun cyc ->
        let a = Array.of_list cyc in
        let n = Array.length a in
        for i = 0 to n - 1 do
          Stg.Build.connect b (edge_name a.(i)) (edge_name a.((i + 1) mod n))
        done;
        Stg.Build.mark_between b (edge_name a.(n - 1)) (edge_name a.(0)))
      cycles;
    Stg.Build.finish b

let places_of_plan = function
  | Cycles { cycles; _ } -> List.fold_left (fun acc c -> acc + List.length c) 0 cycles
  | Shape _ as p -> Petri.num_places (Stg.net (stg_of_plan p))

let pp_plan ppf = function
  | Shape name -> Format.fprintf ppf "shape %s" name
  | Cycles { kinds; cycles } ->
    Format.fprintf ppf "cycles[%d signals]" (Array.length kinds);
    List.iter
      (fun cyc ->
        Format.fprintf ppf " (%s)" (String.concat " " (List.map edge_name cyc)))
      cycles

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* The canonical ladder: tiny specs every shrink run may jump to.  A
   kernel bug that hits (almost) every input shrinks straight down here. *)
let ladder =
  let e s d = { signal = s; dir = d } in
  [
    Cycles
      { kinds = [| Stg.Output |]; cycles = [ [ e 0 Stg.Rise; e 0 Stg.Fall ] ] };
    Cycles
      {
        kinds = [| Stg.Output; Stg.Output |];
        cycles = [ [ e 0 Stg.Rise; e 1 Stg.Rise; e 0 Stg.Fall; e 1 Stg.Fall ] ];
      };
    Cycles
      {
        kinds = [| Stg.Output; Stg.Output |];
        cycles =
          [
            [ e 0 Stg.Rise; e 0 Stg.Fall ];
            [ e 1 Stg.Rise; e 0 Stg.Rise; e 1 Stg.Fall ];
          ];
      };
  ]

(* Drop edges of signals that no longer have both their transitions in a
   single cycle (their home was shrunk away): an orphan edge could fire at
   most once and would wedge its cycle.  Re-run to a fixpoint, then drop
   empty cycles and renumber signals densely. *)
let rec sanitize kinds cycles =
  let ns = Array.length kinds in
  let owned = Array.make ns false in
  List.iter
    (fun cyc ->
      for s = 0 to ns - 1 do
        if
          List.exists (fun e -> e.signal = s && e.dir = Stg.Rise) cyc
          && List.exists (fun e -> e.signal = s && e.dir = Stg.Fall) cyc
        then owned.(s) <- true
      done)
    cycles;
  let cycles' =
    List.filter_map
      (fun cyc ->
        match List.filter (fun e -> owned.(e.signal)) cyc with
        | [] -> None
        | c -> Some c)
      cycles
  in
  if cycles' <> cycles then sanitize kinds cycles'
  else if cycles = [] then None
  else begin
    let used = Array.make ns false in
    List.iter (List.iter (fun e -> used.(e.signal) <- true)) cycles;
    let remap = Array.make ns (-1) in
    let next = ref 0 in
    Array.iteri
      (fun s u ->
        if u then begin
          remap.(s) <- !next;
          incr next
        end)
      used;
    let kinds' =
      Array.of_list
        (List.filteri (fun s _ -> used.(s)) (Array.to_list kinds))
    in
    if Array.length kinds' = 0 then None
    else
      Some
        (Cycles
           {
             kinds = ensure_output kinds';
             cycles =
               List.map (List.map (fun e -> { e with signal = remap.(e.signal) })) cycles;
           })
  end

let shrink_plan plan =
  let structural =
    match plan with
    | Shape _ -> []
    | Cycles { kinds; cycles } ->
      let ncycles = List.length cycles in
      let without_cycle =
        List.init ncycles (fun i ->
            sanitize kinds (List.filteri (fun j _ -> j <> i) cycles))
      in
      let without_signal =
        List.init (Array.length kinds) (fun s ->
            sanitize kinds
              (List.map (List.filter (fun e -> e.signal <> s)) cycles))
      in
      let without_shared =
        (* Remove one occurrence of a transition that appears in more than
           one cycle (keep the home cycle's copy). *)
        List.concat
          (List.mapi
             (fun i cyc ->
               List.filter_map
                 (fun e ->
                   let in_home =
                     List.exists (fun e' -> e'.signal = e.signal && e'.dir <> e.dir) cyc
                   in
                   if in_home then None
                   else
                     sanitize kinds
                       (List.mapi
                          (fun j c ->
                            if j = i then List.filter (fun e' -> e' <> e) c else c)
                          cycles))
                 cyc)
             cycles)
      in
      List.filter_map Fun.id (without_cycle @ without_signal) @ without_shared
  in
  let n = places_of_plan plan in
  let candidates = ladder @ structural in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      places_of_plan c < n
      &&
      let key = Format.asprintf "%a" pp_plan c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    candidates

(* ------------------------------------------------------------------ *)
(* Edit scripts                                                        *)
(* ------------------------------------------------------------------ *)

(* Structural edits over a finished STG, for the incremental-synthesis
   differential battery.  Indices are taken modulo the current element
   count at application time, so an edit script stays applicable to any
   (shrunken) base.  Additions are behaviour-preserving duplications —
   a duplicated transition exercises the delta-reachability seeded path
   (the old transition set is a subset), a duplicated place changes the
   place space and forces the seed-fallback path.  Removals may leave
   the net inconsistent, unsafe or deadlocking; that is deliberate: the
   incremental and from-scratch pipelines must agree on failure verdicts
   just as exactly as on netlists. *)
type edit =
  | Add_transition of int  (** duplicate transition [i mod nt] *)
  | Remove_transition of int
  | Add_place of int  (** duplicate place [i mod np], same arcs and marking *)
  | Remove_place of int
  | Rename_signal of int
  | Toggle_assumption
      (** no structural change; flips the mode's [allow_input_first] *)

let pp_edit ppf = function
  | Add_transition i -> Format.fprintf ppf "add-transition %d" i
  | Remove_transition i -> Format.fprintf ppf "remove-transition %d" i
  | Add_place i -> Format.fprintf ppf "add-place %d" i
  | Remove_place i -> Format.fprintf ppf "remove-place %d" i
  | Rename_signal i -> Format.fprintf ppf "rename-signal %d" i
  | Toggle_assumption -> Format.fprintf ppf "toggle-assumption"

let apply_edit stg edit =
  let module Bitset = Rtcad_util.Bitset in
  let net = Stg.net stg in
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let ns = Stg.num_signals stg in
  let place_names = Array.init np (Petri.place_name net) in
  let transition_names = Array.init nt (Petri.transition_name net) in
  let pre = Array.init nt (Petri.pre net) in
  let post = Array.init nt (Petri.post net) in
  let marking = Petri.initial_marking net in
  let initial = List.filter (Bitset.mem marking) (List.init np Fun.id) in
  let labels = Array.init nt (Stg.label stg) in
  let signal_names = Array.init ns (Stg.signal_name stg) in
  let kinds = Array.init ns (Stg.kind stg) in
  let initial_values = Array.init ns (Stg.initial_value stg) in
  let remake ?(place_names = place_names)
      ?(transition_names = transition_names) ?(pre = pre) ?(post = post)
      ?(initial = initial) ?(labels = labels) ?(signal_names = signal_names)
      () =
    Stg.make
      ~net:(Petri.make ~place_names ~transition_names ~pre ~post ~initial)
      ~labels ~signal_names ~kinds ~initial_values
  in
  match edit with
  | Toggle_assumption -> stg
  | Add_transition i ->
    let t = i mod nt in
    remake
      ~transition_names:
        (Array.append transition_names
           [| Printf.sprintf "%s_d%d" transition_names.(t) nt |])
      ~pre:(Array.append pre [| pre.(t) |])
      ~post:(Array.append post [| post.(t) |])
      ~labels:(Array.append labels [| labels.(t) |])
      ()
  | Remove_transition i ->
    if nt <= 1 then stg
    else begin
      let t = i mod nt in
      let sel a =
        Array.of_list (List.filteri (fun j _ -> j <> t) (Array.to_list a))
      in
      remake
        ~transition_names:(sel transition_names)
        ~pre:(sel pre) ~post:(sel post) ~labels:(sel labels) ()
    end
  | Add_place i ->
    let p = i mod np in
    let dup arcs = if List.mem p arcs then arcs @ [ np ] else arcs in
    remake
      ~place_names:
        (Array.append place_names
           [| Printf.sprintf "%s_d%d" place_names.(p) np |])
      ~pre:(Array.map dup pre) ~post:(Array.map dup post)
      ~initial:(if Bitset.mem marking p then initial @ [ np ] else initial)
      ()
  | Remove_place i ->
    if np <= 1 then stg
    else begin
      let p = i mod np in
      let drop arcs =
        List.filter_map
          (fun q -> if q = p then None else Some (if q > p then q - 1 else q))
          arcs
      in
      remake
        ~place_names:
          (Array.of_list
             (List.filteri (fun j _ -> j <> p) (Array.to_list place_names)))
        ~pre:(Array.map drop pre) ~post:(Array.map drop post)
        ~initial:(drop initial) ()
    end
  | Rename_signal i ->
    let s = i mod ns in
    remake
      ~signal_names:
        (Array.mapi
           (fun j n -> if j = s then Printf.sprintf "%s_r%d" n ns else n)
           signal_names)
      ()

let gen_edit rng =
  (* Raw indices (reduced modulo the live count at application time);
     additions are weighted up because they keep the spec well-formed and
     are the edits the seeded fixpoint accelerates. *)
  let i = Rng.int rng 1024 in
  Rng.weighted rng
    [
      (4, Add_transition i);
      (2, Remove_transition i);
      (2, Add_place i);
      (1, Remove_place i);
      (2, Rename_signal i);
      (1, Toggle_assumption);
    ]

let gen_edits rng n = List.init n (fun _ -> gen_edit rng)

type edit_case = { base : plan; edits : edit list }

(* Lexicographic measure (places of base, number of edits): dropping an
   edit keeps the base, shrinking the base strictly reduces places (and
   every edit still applies, thanks to modulo indexing), so shrink loops
   terminate. *)
let shrink_edit_case { base; edits } =
  let fewer_edits =
    List.init (List.length edits) (fun i ->
        { base; edits = List.filteri (fun j _ -> j <> i) edits })
  in
  let smaller_base = List.map (fun b -> { base = b; edits }) (shrink_plan base) in
  fewer_edits @ smaller_base

let pp_edit_case ppf { base; edits } =
  Format.fprintf ppf "%a;" pp_plan base;
  List.iter (fun e -> Format.fprintf ppf " %a" pp_edit e) edits

(* ------------------------------------------------------------------ *)
(* Netlists and stimuli                                                *)
(* ------------------------------------------------------------------ *)

let gen_netlist rng =
  let nl = Netlist.create () in
  let nets = ref [] in
  let nin = 2 + Rng.int rng 2 in
  for i = 0 to nin - 1 do
    let n = Netlist.input nl (Printf.sprintf "i%d" i) in
    Netlist.set_initial nl n (Rng.bool rng);
    nets := n :: !nets
  done;
  let ngates = 1 + Rng.int rng 10 in
  for g = 0 to ngates - 1 do
    let pool = Array.of_list !nets in
    let gate =
      match
        Rng.weighted rng
          [
            (3, `And); (3, `Or); (2, `Nand); (2, `Nor); (2, `Xor); (2, `Not);
            (1, `Buf); (2, `Celem); (1, `Set_reset); (2, `Sop); (1, `Sop_sr);
          ]
      with
      | `Not -> Gate.make Gate.Not ~fanin:1
      | `Buf -> Gate.make Gate.Buf ~fanin:1
      | `Xor -> Gate.make Gate.Xor ~fanin:2
      | `Set_reset -> Gate.make Gate.Set_reset ~fanin:2
      | `Celem -> Gate.make Gate.Celem ~fanin:(2 + Rng.int rng 2)
      | `Sop ->
        let cubes = List.init (1 + Rng.int rng 2) (fun _ -> 1 + Rng.int rng 2) in
        Gate.make (Gate.Sop cubes) ~fanin:(List.fold_left ( + ) 0 cubes)
      | `Sop_sr ->
        let set_cubes = [ 1 + Rng.int rng 2 ] and reset_cubes = [ 1 + Rng.int rng 2 ] in
        Gate.make
          (Gate.Sop_sr { set_cubes; reset_cubes })
          ~fanin:(List.fold_left ( + ) 0 (set_cubes @ reset_cubes))
      | `And -> Gate.make Gate.And ~fanin:(2 + Rng.int rng 2)
      | `Or -> Gate.make Gate.Or ~fanin:(2 + Rng.int rng 2)
      | `Nand -> Gate.make Gate.Nand ~fanin:(2 + Rng.int rng 2)
      | `Nor -> Gate.make Gate.Nor ~fanin:(2 + Rng.int rng 2)
    in
    let ins = List.init gate.Gate.fanin (fun _ -> (Rng.pick rng pool, Rng.bool rng)) in
    let out = Netlist.add_gate nl gate ins (Printf.sprintf "g%d" g) in
    nets := out :: !nets
  done;
  List.iter (Netlist.mark_output nl) !nets;
  Netlist.settle_initial nl;
  nl

let gen_stimuli rng nl =
  let inputs = Array.of_list (Netlist.inputs nl) in
  let current = Hashtbl.create 8 in
  Array.iter (fun n -> Hashtbl.replace current n (Netlist.initial_value nl n)) inputs;
  let n = 5 + Rng.int rng 16 in
  let t = ref 0.0 in
  List.init n (fun _ ->
      t := !t +. 200.0 +. float_of_int (Rng.int rng 1300);
      let i = Rng.pick rng inputs in
      let v = not (Hashtbl.find current i) in
      Hashtbl.replace current i v;
      (i, v, !t))

let horizon stim =
  List.fold_left (fun acc (_, _, at) -> Float.max acc at) 0.0 stim +. 5_000.0
