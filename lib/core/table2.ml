module Netlist = Rtcad_netlist.Netlist
module Faults = Rtcad_netlist.Faults

type row = {
  name : string;
  worst_delay_ps : float;
  avg_delay_ps : float;
  energy_per_cycle_pj : float;
  transistors : int;
  testability_pct : float;
  constraints : int;
}

(* Every implementation style imposes its own contract on the
   environment's response time — that is the methodology's trade: the SI
   circuit accepts any environment, the fundamental-mode (RT-BM) circuit
   needs the environment to outlast its settling, the RT circuit only
   needs the one-gate margins of its back-annotated constraints, and the
   pulse circuit dictates a minimum pulse period.  Each row is measured
   with the fastest environment its contract allows. *)
let env_for (v : Fifo_impls.variant) =
  match v.Fifo_impls.name with
  | "SI" ->
    { Harness.left_delay_ps = 400.0; right_delay_ps = 400.0; jitter = 300.0; seed = 17 }
  | "RT-BM" ->
    { Harness.left_delay_ps = 400.0; right_delay_ps = 400.0; jitter = 300.0; seed = 17 }
  | "RT" ->
    { Harness.left_delay_ps = 160.0; right_delay_ps = 160.0; jitter = 250.0; seed = 17 }
  | _ -> Harness.zero_env

let measure ?(cycles = 200) (v : Fifo_impls.variant) =
  let env = env_for v in
  if v.Fifo_impls.pulse then begin
    let period = Harness.pulse_min_period ~cycles:40 v.Fifo_impls.netlist in
    let m = Harness.measure_pulse ~period_ps:period ~cycles v.Fifo_impls.netlist in
    let stimulus sim = Harness.pulse_stimulus ~period_ps:(period *. 1.5) ~cycles:12 sim in
    let report = Faults.coverage ~stimulus ~horizon:80_000.0 v.Fifo_impls.netlist in
    {
      name = v.Fifo_impls.name;
      (* the pulse circuit's "delay" is its cycle time: every pulse takes
         the same path, so worst = avg (the paper's 350/350) *)
      worst_delay_ps = period;
      avg_delay_ps = period;
      energy_per_cycle_pj = m.Harness.energy_per_cycle_pj;
      transistors = Netlist.transistors v.Fifo_impls.netlist;
      testability_pct = report.Faults.coverage;
      constraints = v.Fifo_impls.constraints;
    }
  end
  else begin
    let m = Harness.measure_fourphase ~env ~cycles v.Fifo_impls.netlist in
    let stimulus sim = Harness.fourphase_stimulus ~env ~cycles:12 sim in
    let report = Faults.coverage ~stimulus ~horizon:120_000.0 v.Fifo_impls.netlist in
    (* Report the circuit's contribution: subtract the four environment
       hops (two per handshake side) from the cycle time. *)
    let env_mean = env.Harness.left_delay_ps +. (env.Harness.jitter /. 2.0) in
    let env_per_cycle = 2.0 *. env_mean in
    {
      name = v.Fifo_impls.name;
      worst_delay_ps = m.Harness.worst_delay_ps -. env_per_cycle;
      avg_delay_ps = m.Harness.avg_delay_ps -. env_per_cycle;
      energy_per_cycle_pj = m.Harness.energy_per_cycle_pj;
      transistors = Netlist.transistors v.Fifo_impls.netlist;
      testability_pct = report.Faults.coverage;
      constraints = v.Fifo_impls.constraints;
    }
  end

let all ?cycles () = List.map (fun v -> measure ?cycles v) (Fifo_impls.all ())

let pp_row ppf r =
  Format.fprintf ppf "%-6s %8.0f %8.0f %8.1f %8d %9.1f%% %6d" r.name r.worst_delay_ps
    r.avg_delay_ps r.energy_per_cycle_pj r.transistors r.testability_pct r.constraints

let pp_table ppf rows =
  Format.fprintf ppf "@[<v>%-6s %8s %8s %8s %8s %10s %6s@," "" "worst" "avg" "energy"
    "trans." "stuck-at" "constr";
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_row r) rows;
  Format.fprintf ppf "@]"
