module R = Rtcad_rappid.Rappid

type t = {
  tag_forward_ps : float;
  cell_cycle_ps : float;
  pulse_period_ps : float;
  params : R.params;
}

let run ?(base = R.default) () =
  let rt = Fifo_impls.relative_timing () in
  (* Fast but contract-respecting environment for the RT cell. *)
  let env =
    { Harness.left_delay_ps = 160.0; right_delay_ps = 160.0; jitter = 0.0; seed = 5 }
  in
  let m = Harness.measure_fourphase ~env ~cycles:80 rt.Fifo_impls.netlist in
  let pulse = Fifo_impls.pulse_mode () in
  let pulse_period = Harness.pulse_min_period ~cycles:40 pulse.Fifo_impls.netlist in
  let tag_forward = m.Harness.avg_forward_ps in
  let cell_cycle = m.Harness.avg_delay_ps in
  let params =
    {
      base with
      R.tag_common_ps = tag_forward;
      tag_uncommon_ps = tag_forward *. 2.2;
      steer_ps = tag_forward +. 100.0;
      buffer_recover_ps = cell_cycle;
      latch_ps = pulse_period /. 2.0;
    }
  in
  { tag_forward_ps = tag_forward; cell_cycle_ps = cell_cycle; pulse_period_ps = pulse_period; params }

let pp ppf t =
  Format.fprintf ppf
    "tag forward %.0f ps; cell cycle %.0f ps; pulse period %.0f ps" t.tag_forward_ps
    t.cell_cycle_ps t.pulse_period_ps
