(** Gate-level calibration of the RAPPID architecture model.

    The paper's architecture numbers come from circuits designed with the
    very methodology the paper presents.  This module closes that loop in
    the reproduction: it synthesizes RAPPID-style control cells with the
    relative-timing flow, measures them with the gate-level harness, and
    derives the architecture model's cycle parameters from the
    measurements instead of hand-picked constants.

    - the {e tag} cycle latency comes from the forward latency
      ([li+ → ro+]) of the RT FIFO cell under the ring assumption — the
      tag is exactly such a token passing through a cell;
    - the {e steering} recovery comes from the full four-phase cycle time
      of the same cell (the byte latch must complete a handshake per
      issue);
    - the {e pulse} variant's minimum period bounds how fast the byte
      latches can restart, calibrating the latch reload time. *)

type t = {
  tag_forward_ps : float;
  cell_cycle_ps : float;
  pulse_period_ps : float;
  params : Rtcad_rappid.Rappid.params;
}

val run : ?base:Rtcad_rappid.Rappid.params -> unit -> t
(** Synthesize, measure and derive parameters ([base] defaults to
    {!Rtcad_rappid.Rappid.default}; only the timing fields derived above
    are replaced). *)

val pp : Format.formatter -> t -> unit
