module Netlist = Rtcad_netlist.Netlist
module Sim = Rtcad_netlist.Sim
module Rng = Rtcad_util.Rng

type measurement = {
  cycles : int;
  worst_delay_ps : float;
  avg_delay_ps : float;
  avg_forward_ps : float;
      (* mean latency from an accepted request (li+) to the corresponding
         outgoing request (ro+); 0 for pulse measurements that report it
         in avg_delay_ps *)
  energy_per_cycle_pj : float;
  glitches : int;
}

type env = { left_delay_ps : float; right_delay_ps : float; jitter : float; seed : int }

let zero_env = { left_delay_ps = 0.0; right_delay_ps = 0.0; jitter = 0.0; seed = 1 }

(* Install the four-phase environment: the left side issues a new request
   once acknowledged and released, the right side acknowledges every
   request.  [on_li_rise] observes accepted requests for cycle timing. *)
let install_fourphase ?(env = zero_env) ?(on_li_rise = fun _ -> ()) ~cycles sim =
  let nl = Sim.netlist sim in
  let li = Netlist.find_net nl "li" in
  let lo = Netlist.find_net nl "lo" in
  let ro = Netlist.find_net nl "ro" in
  let ri = Netlist.find_net nl "ri" in
  let rng = Rng.create env.seed in
  let d base = base +. (if env.jitter > 0.0 then Rng.float rng env.jitter else 0.0) in
  let remaining = ref cycles in
  Sim.on_change sim lo (fun sim v ->
      if v then Sim.drive sim li false ~after:(d env.left_delay_ps)
      else if !remaining > 0 then begin
        decr remaining;
        Sim.drive sim li true ~after:(d env.left_delay_ps)
      end);
  Sim.on_change sim ro (fun sim v -> Sim.drive sim ri v ~after:(d env.right_delay_ps));
  Sim.on_change sim li (fun sim v -> if v then on_li_rise (Sim.time sim));
  decr remaining;
  Sim.drive sim li true ~after:(d env.left_delay_ps)

let summarize ~warmup starts forwards energy glitches =
  let starts = Array.of_list (List.rev starts) in
  let n = Array.length starts in
  if n < warmup + 3 then failwith "Harness: circuit stalled (too few cycles completed)";
  let periods =
    Array.init (n - 1) (fun i -> starts.(i + 1) -. starts.(i))
  in
  let steady = Array.sub periods warmup (Array.length periods - warmup) in
  let worst = Array.fold_left max 0.0 steady in
  let avg = Array.fold_left ( +. ) 0.0 steady /. float_of_int (Array.length steady) in
  let avg_forward =
    match forwards with
    | [] -> 0.0
    | fs -> List.fold_left ( +. ) 0.0 fs /. float_of_int (List.length fs)
  in
  {
    cycles = Array.length steady;
    worst_delay_ps = worst;
    avg_delay_ps = avg;
    avg_forward_ps = avg_forward;
    energy_per_cycle_pj = energy /. float_of_int (Array.length steady);
    glitches;
  }

(* [vcd] is attached before power-up settling so the dump captures the
   whole history the simulator saw, not just the steady state. *)
let measure_fourphase ?(env = zero_env) ?vcd ~cycles nl =
  let sim = Sim.create nl in
  (match vcd with Some w -> Sim.attach_vcd sim w | None -> ());
  Sim.settle sim ();
  let starts = ref [] in
  let forwards = ref [] in
  let last_li = ref nan in
  install_fourphase ~env
    ~on_li_rise:(fun t ->
      starts := t :: !starts;
      last_li := t)
    ~cycles sim;
  (match Netlist.find_net nl "ro" with
  | ro ->
    Sim.on_change sim ro (fun sim v ->
        if v && not (Float.is_nan !last_li) then begin
          forwards := (Sim.time sim -. !last_li) :: !forwards;
          last_li := nan
        end)
  | exception Not_found -> ());
  let horizon = float_of_int cycles *. 40_000.0 in
  Sim.run sim ~until:horizon;
  summarize ~warmup:5 !starts !forwards (Sim.energy_pj sim) (Sim.glitches sim)

let install_pulse ?(period_ps = 2000.0) ?(width_ps = 200.0) ~cycles sim =
  let nl = Sim.netlist sim in
  let li = Netlist.find_net nl "li" in
  for k = 0 to cycles - 1 do
    let t = float_of_int k *. period_ps in
    Sim.drive sim li true ~after:t;
    Sim.drive sim li false ~after:(t +. width_ps)
  done

let measure_pulse ?(period_ps = 2000.0) ?(width_ps = 200.0) ?vcd ~cycles nl =
  let sim = Sim.create nl in
  (match vcd with Some w -> Sim.attach_vcd sim w | None -> ());
  Sim.settle sim ();
  let li = Netlist.find_net nl "li" in
  let ro = Netlist.find_net nl "ro" in
  let last_li = ref 0.0 in
  let latencies = ref [] in
  Sim.on_change sim li (fun sim v -> if v then last_li := Sim.time sim);
  Sim.on_change sim ro (fun sim v ->
      if v then latencies := (Sim.time sim -. !last_li) :: !latencies);
  install_pulse ~period_ps ~width_ps ~cycles sim;
  Sim.run sim ~until:(float_of_int (cycles + 2) *. period_ps);
  let lats = Array.of_list (List.rev !latencies) in
  if Array.length lats < cycles - 2 then failwith "Harness: pulse circuit dropped pulses";
  let worst = Array.fold_left max 0.0 lats in
  let avg = Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats) in
  {
    cycles = Array.length lats;
    worst_delay_ps = worst;
    avg_delay_ps = avg;
    avg_forward_ps = avg;
    energy_per_cycle_pj = Sim.energy_pj sim /. float_of_int (Array.length lats);
    glitches = Sim.glitches sim;
  }

(* The smallest pulse period (binary search, 10 ps resolution) at which no
   pulses are dropped — the pulse-mode circuit's cycle time. *)
let pulse_min_period ?(width_ps = 200.0) ~cycles nl =
  let ok period_ps =
    match measure_pulse ~period_ps ~width_ps ~cycles nl with
    | m -> m.cycles >= cycles - 2
    | exception (Failure _ | Sim.Oscillation _) -> false
  in
  let rec search lo hi =
    if hi -. lo <= 10.0 then hi
    else
      let mid = (lo +. hi) /. 2.0 in
      if ok mid then search lo mid else search mid hi
  in
  if not (ok 4000.0) then failwith "Harness: pulse circuit broken even at 4 ns period";
  search width_ps 4000.0

let fourphase_stimulus ?env ~cycles sim =
  Sim.settle sim ();
  install_fourphase ?env ~cycles sim

let pulse_stimulus ?period_ps ?width_ps ~cycles sim =
  Sim.settle sim ();
  install_pulse ?period_ps ?width_ps ~cycles sim

let pp ppf m =
  Format.fprintf ppf "%d cycles: worst %.0f ps, avg %.0f ps, %.1f pJ/cycle%s" m.cycles
    m.worst_delay_ps m.avg_delay_ps m.energy_per_cycle_pj
    (if m.glitches > 0 then Printf.sprintf " (%d glitches)" m.glitches else "")
