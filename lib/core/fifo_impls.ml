module Stg = Rtcad_stg.Stg
module Library = Rtcad_stg.Library
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Emit = Rtcad_synth.Emit

type variant = {
  name : string;
  netlist : Netlist.t;
  constraints : int;
  pulse : bool;
}

let of_flow name mode ?emit_style () =
  let r = Flow.synthesize ~mode ?emit_style (Library.fifo ()) in
  {
    name;
    netlist = r.Flow.netlist;
    constraints = List.length r.Flow.constraints;
    pulse = false;
  }

let speed_independent () = of_flow "SI" Flow.Si ()

(* The burst-mode row uses the actual XBM machine for the cell (the
   paper's 3D-tool style): a three-state machine whose steady loop
   alternates between "full" and "empty", synthesized under fundamental
   mode by the flow-table method of Rtcad_bm.  Its one timing assumption
   is fundamental mode itself. *)
let fifo_burst_spec =
  {
    Rtcad_bm.Spec.name = "fifo_bm";
    input_signals = [ "li"; "ri" ];
    output_signals = [ "lo"; "ro" ];
    num_states = 3;
    initial = 0;
    arcs =
      [
        {
          Rtcad_bm.Spec.src = 0;
          dst = 1;
          inputs = [ ("li", true) ];
          outputs = [ ("lo", true); ("ro", true) ];
        };
        {
          Rtcad_bm.Spec.src = 1;
          dst = 2;
          inputs = [ ("li", false); ("ri", true) ];
          outputs = [ ("lo", false); ("ro", false) ];
        };
        {
          Rtcad_bm.Spec.src = 2;
          dst = 1;
          inputs = [ ("ri", false); ("li", true) ];
          outputs = [ ("lo", true); ("ro", true) ];
        };
      ];
  }

let burst_mode () =
  let r = Rtcad_bm.Synth.synthesize fifo_burst_spec in
  {
    name = "RT-BM";
    netlist = r.Rtcad_bm.Synth.netlist;
    constraints = 1 (* fundamental mode *);
    pulse = false;
  }

let relative_timing () =
  of_flow "RT"
    (Flow.Rt
       {
         user = [ (("ri", Stg.Fall), ("li", Stg.Rise)) ];
         allow_input_first = false;
         allow_lazy = true;
       })
    ~emit_style:(Emit.Domino_cmos { footed = false })
    ()

(* Figure 7: the pulse-mode cell.  The handshake wires lo and ri are gone;
   li arrives as a pulse, ro answers with a pulse shaped by its own
   self-reset loop.  Constraints (the four arcs of Figure 7(b)): the input
   pulse must be wide enough to be caught, narrow enough to be gone before
   the self-reset, and the environment must not re-pulse before recovery
   — three timing constraints plus the causal arc, matching the paper's
   count of one causal + three relative-timing arcs. *)
let pulse_mode () =
  let nl = Netlist.create () in
  let li = Netlist.input nl "li" in
  let ro = Netlist.forward nl "ro" in
  (* Self-reset delay line: two inverters' worth of margin. *)
  let fb1 = Netlist.add_gate nl (Gate.make Gate.Not ~fanin:1) [ (ro, false) ] "fb1" in
  let fb2 = Netlist.add_gate nl (Gate.make Gate.Not ~fanin:1) [ (fb1, false) ] "fb2" in
  (* ro: domino set by the li pulse, reset by its own delayed echo. *)
  Netlist.set_driver nl ro
    (Gate.make ~style:(Gate.Domino { footed = false })
       (Gate.Sop_sr { set_cubes = [ 1 ]; reset_cubes = [ 1 ] })
       ~fanin:2)
    [ (li, false); (fb2, false) ];
  Netlist.mark_output nl ro;
  (* The paper's footnote: "synchronous testing in COSMOS required an
     extra test gate for the pulse circuit".  Pulse-width faults in the
     self-reset loop do not change the delay-insensitive output sequence;
     a test tap observing the loop node makes them detectable. *)
  let test = Netlist.add_gate nl (Gate.make Gate.Not ~fanin:1) [ (fb2, false) ] "test" in
  Netlist.mark_output nl test;
  Netlist.settle_initial nl;
  { name = "Pulse"; netlist = nl; constraints = 3; pulse = true }

let all () = [ speed_independent (); burst_mode (); relative_timing (); pulse_mode () ]
