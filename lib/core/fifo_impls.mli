(** The four FIFO-controller implementations of Table 2.

    All four are produced by (or derived from) the synthesis flow on the
    Figure 3 specification:

    - {!speed_independent}: the SI flow — atomic static complex gates and
      generalized-C elements, correct under unbounded delays (Figure 4's
      role);
    - {!burst_mode}: the RT-BM row — static complex gates synthesized
      under the fundamental-mode-style automatic assumptions only (the
      substitute for the paper's 3D/XBM machine);
    - {!relative_timing}: the Figure 6 circuit — domino gates synthesized
      under automatic assumptions plus the user ring assumption
      "[ri-] before [li+]";
    - {!pulse_mode}: the Figure 7 circuit — the handshake signals [lo]
      and [ri] are absorbed into timing assumptions; [li] arrives as a
      pulse and [ro] answers with a self-resetting pulse.

    Each constructor returns the netlist and, where the flow produced
    them, the required timing constraints. *)

type variant = {
  name : string;
  netlist : Rtcad_netlist.Netlist.t;
  constraints : int;  (** number of back-annotated timing constraints *)
  pulse : bool;  (** measured with the pulse harness *)
}

val fifo_burst_spec : Rtcad_bm.Spec.t
(** The FIFO cell as a three-state XBM machine (the RT-BM row's input). *)

val speed_independent : unit -> variant
val burst_mode : unit -> variant
val relative_timing : unit -> variant
val pulse_mode : unit -> variant
val all : unit -> variant list
