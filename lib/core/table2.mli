(** Table 2 of the paper: comparison of the four FIFO implementations. *)

type row = {
  name : string;
  worst_delay_ps : float;
  avg_delay_ps : float;
  energy_per_cycle_pj : float;
  transistors : int;
  testability_pct : float;
  constraints : int;
}

val env_for : Fifo_impls.variant -> Harness.env
(** The fastest environment each implementation style's contract allows —
    the environment {!measure} uses, exposed so observation runs
    ([rtsyn sim --circuit], the golden corpus) reproduce the same
    stimulus. *)

val measure : ?cycles:int -> Fifo_impls.variant -> row
(** Four-phase (or pulse) measurement with a moderately jittered
    environment, plus stuck-at coverage under the same stimulus. *)

val all : ?cycles:int -> unit -> row list

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit
