module Stg = Rtcad_stg.Stg
module Cube = Rtcad_logic.Cube
module Cover = Rtcad_logic.Cover
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Implement = Rtcad_synth.Implement
module Emit = Rtcad_synth.Emit
module Conformance = Rtcad_verify.Conformance

let gate_style = function
  | Emit.Static_cmos -> Gate.Static
  | Emit.Domino_cmos { footed } -> Gate.Domino { footed }

(* Balanced tree of [func] gates over (net, neg) inputs, fan-in <= k. *)
let rec tree nl style ~k func fresh ins =
  if List.length ins <= k then
    match ins with
    | [ single ] -> single
    | _ ->
      let g = Gate.make ~style func ~fanin:(List.length ins) in
      (Netlist.add_gate nl g ins (fresh ()), false)
  else begin
    let rec chunks acc current n = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if n = k then chunks (List.rev current :: acc) [ x ] 1 rest
        else chunks acc (x :: current) (n + 1) rest
    in
    let groups = chunks [] [] 0 ins in
    let roots = List.map (tree nl style ~k func fresh) groups in
    tree nl style ~k func fresh roots
  end

let cover_tree nl style ~k net_of name cover =
  let counter = ref 0 in
  let fresh tag () =
    incr counter;
    Printf.sprintf "%s_%s%d" name tag !counter
  in
  let cube_root cube =
    let ins =
      List.map (fun (v, pol) -> (net_of v, not pol)) (Cube.literals cube)
    in
    match ins with
    | [] -> invalid_arg "Mapping: constant-true cube"
    | _ -> tree nl style ~k Gate.And (fresh "and") ins
  in
  match Cover.cubes cover with
  | [] -> invalid_arg "Mapping: empty cover"
  | [ cube ] -> cube_root cube
  | cubes -> tree nl style ~k Gate.Or (fresh "or") (List.map cube_root cubes)

let emit_mapped ?(style = Emit.Static_cmos) ?(max_fanin = 3) stg impls =
  if max_fanin < 2 then invalid_arg "Mapping.emit_mapped: max_fanin >= 2";
  let nl = Netlist.create () in
  let n = Stg.num_signals stg in
  let nets = Array.make n (-1) in
  List.iter
    (fun s ->
      if Stg.is_input stg s then nets.(s) <- Netlist.input nl (Stg.signal_name stg s))
    (Stg.signals stg);
  List.iter
    (fun (s, _) ->
      if Stg.is_input stg s then invalid_arg "Mapping: implementation for an input";
      nets.(s) <- Netlist.forward nl (Stg.signal_name stg s))
    impls;
  let net_of s = nets.(s) in
  let gstyle = gate_style style in
  List.iter
    (fun (s, impl) ->
      let name = Stg.signal_name stg s in
      let out = nets.(s) in
      (match impl with
      | Implement.Complex cover ->
        let src, neg = cover_tree nl gstyle ~k:max_fanin net_of name cover in
        Netlist.set_driver nl out
          (Gate.make (if neg then Gate.Not else Gate.Buf) ~fanin:1)
          [ (src, false) ]
      | Implement.Gc { set; reset } ->
        let s_root = cover_tree nl gstyle ~k:max_fanin net_of (name ^ "_set") set in
        let r_root = cover_tree nl gstyle ~k:max_fanin net_of (name ^ "_rst") reset in
        Netlist.set_driver nl out (Gate.make Gate.Set_reset ~fanin:2) [ s_root; r_root ]);
      if Stg.kind stg s = Stg.Output then Netlist.mark_output nl out)
    impls;
  List.iter
    (fun s -> Netlist.set_initial nl nets.(s) (Stg.initial_value stg s))
    (Stg.signals stg);
  Netlist.settle_initial ~frozen:(List.map net_of (Stg.signals stg)) nl;
  nl

type inference = {
  netlist : Netlist.t;
  constraints : (Conformance.net_edge * Conformance.net_edge) list;
  conforms : bool;
  rounds : int;
  residual : Conformance.failure list;
}

let move_edge circuit spec = function
  | Conformance.Gate (net, v) -> Some { Conformance.net; rising = v }
  | Conformance.Env t -> (
    match Stg.label spec t with
    | Stg.Edge { signal; dir } -> (
      match Netlist.find_net circuit (Stg.signal_name spec signal) with
      | net -> Some { Conformance.net; rising = dir = Stg.Rise }
      | exception Not_found -> None)
    | Stg.Dummy -> None)

(* A hazard "gate g (towards v) disabled by edge e" admits two timing
   repairs: (a) g commits before e, or (b) e consistently precedes g's
   excitation so the glitch never arises — the right choice depends on
   which ordering the specification wants, so the inference backtracks
   over both, depth-first, under a global conformance-check budget. *)
(* Replay a failure trace (all moves but the last) on the net values and
   return the gate edges excited just before the final move — the
   candidate "should have gone first" events for an unexpected output. *)
let excited_before circuit spec trace =
  let n = Netlist.num_nets circuit in
  let values = Array.init n (Netlist.initial_value circuit) in
  let apply_move m =
    match move_edge circuit spec m with
    | Some { Conformance.net; rising } -> values.(net) <- rising
    | None -> ()
  in
  let rec replay = function
    | [] | [ _ ] -> ()
    | m :: rest ->
      apply_move m;
      replay rest
  in
  replay trace;
  List.filter_map
    (fun net ->
      match Netlist.driver circuit net with
      | None -> None
      | Some (g, ins) ->
        let v =
          Gate.eval g ~current:values.(net)
            (List.map (fun (i, neg) -> values.(i) <> neg) ins)
        in
        if v <> values.(net) then Some { Conformance.net; rising = v } else None)
    (List.init n Fun.id)

let infer ?(assumptions = []) ?(max_rounds = 32) ~circuit ~spec () =
  let checks = ref 0 in
  let rounds = ref 0 in
  let best_residual = ref None in
  let visited = Hashtbl.create 256 in
  let rec search constraints depth =
    let key = List.sort compare constraints in
    if !checks >= 24 * max_rounds || Hashtbl.mem visited key then None
    else begin
      Hashtbl.add visited key ();
      incr checks;
      rounds := max !rounds (max_rounds - depth);
      let result =
        Conformance.check ~constraints:assumptions ~net_constraints:constraints ~circuit
          ~spec ()
      in
      if result.Conformance.ok then Some constraints
      else if depth = 0 then begin
        (match !best_residual with
        | None -> best_residual := Some (constraints, result.Conformance.failures)
        | Some _ -> ());
        None
      end
      else begin
        let of_hazard = function
          | Conformance.Hazard { net; target; cause; _ } -> (
            match move_edge circuit spec cause with
            | Some cause_edge ->
              let g_edge = { Conformance.net; rising = target } in
              (* Heuristic order: against an environment edge the gate
                 should win (environments are slow); against another gate
                 the withdrawal is usually the intended outcome, so make
                 the withdrawn gate wait. *)
              (match cause with
              | Conformance.Env _ -> Some [ (g_edge, cause_edge); (cause_edge, g_edge) ]
              | Conformance.Gate _ -> Some [ (cause_edge, g_edge); (g_edge, cause_edge) ])
            | None -> None)
          | Conformance.Unexpected_output _ | Conformance.Deadlock _ -> None
        in
        (* An unexpected output lost a race silently: some excited gate
           should have fired first.  Propose each excited edge as the
           required predecessor. *)
        let of_unexpected = function
          | Conformance.Unexpected_output { net; value; trace } ->
            let fail_edge = { Conformance.net; rising = value } in
            (* Anchor the repair either at the failing edge itself or at
               its direct trigger (the move just before it): the excited
               gate that lost the race must precede one of them. *)
            let trigger_edge =
              match List.rev trace with
              | _ :: prev :: _ -> move_edge circuit spec prev
              | _ -> None
            in
            let anchors =
              fail_edge :: (match trigger_edge with Some e -> [ e ] | None -> [])
            in
            let excited =
              List.filter
                (fun e -> not (List.mem e anchors))
                (excited_before circuit spec trace)
            in
            let proposals =
              List.concat_map
                (fun anchor -> List.map (fun e -> (e, anchor)) excited)
                (List.rev anchors)
            in
            if proposals = [] then None else Some proposals
          | Conformance.Hazard _ | Conformance.Deadlock _ -> None
        in
        let proposals =
          match List.find_map of_hazard result.Conformance.failures with
          | Some p -> Some p
          | None -> List.find_map of_unexpected result.Conformance.failures
        in
        match proposals with
        | None ->
          (match !best_residual with
          | None -> best_residual := Some (constraints, result.Conformance.failures)
          | Some _ -> ());
          None
        | Some alternatives ->
          List.find_map
            (fun c ->
              if List.mem c constraints then None
              else search (c :: constraints) (depth - 1))
            alternatives
      end
    end
  in
  match search [] max_rounds with
  | Some constraints ->
    { netlist = circuit; constraints; conforms = true; rounds = !rounds; residual = [] }
  | None ->
    let constraints, residual =
      match !best_residual with Some (c, r) -> (c, r) | None -> ([], [])
    in
    { netlist = circuit; constraints; conforms = false; rounds = !rounds; residual }

let infer_constraints ?max_rounds ~circuit ~spec () = infer ?max_rounds ~circuit ~spec ()

let map_flow ?style ?max_fanin (flow : Flow.t) =
  let stg = flow.Flow.stg in
  let impls =
    List.map
      (fun s -> (Stg.signal_index stg s.Flow.signal_name, s.Flow.impl))
      flow.Flow.signals
  in
  let circuit = emit_mapped ?style ?max_fanin stg impls in
  infer ~assumptions:flow.Flow.assumptions ~circuit ~spec:stg ()
