(** The relative-timing synthesis flow of the paper's Figure 2.

    From a specification STG the flow performs: dummy contraction →
    reachability analysis → (timing-aware) state encoding → relative
    timing assumption generation and lazy state-graph reduction → logic
    synthesis with per-signal implementation selection → netlist emission
    → back-annotation of the timing constraints the implementation
    actually requires.

    Two modes:
    - {!Si}: the speed-independent flow (no timing assumptions; state
      encoding must not delay inputs; covers must be monotonic).
    - {!Rt}: the relative-timing flow with automatically generated
      assumptions, optional user (architecture/environment) assumptions
      such as Figure 6's "[ri-] before [li+]", and optional lazy cover
      relaxation. *)

type user_assumption = (string * Rtcad_stg.Stg.dir) * (string * Rtcad_stg.Stg.dir)
(** "first edge before second edge", by signal name. *)

type mode =
  | Si
  | Rt of {
      user : user_assumption list;
      allow_input_first : bool;  (** homogeneous-environment extension *)
      allow_lazy : bool;  (** lazy cover relaxation *)
    }

val rt_default : mode
(** [Rt] with no user assumptions, [allow_input_first = false],
    [allow_lazy = true]. *)

val fingerprint : mode -> string
(** Stable textual identity of a mode.  Together with the canonical
    [.g] text of the specification and the engine choice it uniquely
    determines the flow's output, which is what the synthesis server's
    content-addressed result cache keys on. *)

type signal_result = {
  signal_name : string;
  impl : Rtcad_synth.Implement.impl;
  literals : int;
  lazy_constraints : Rtcad_rt.Assumption.t list;
}

(** What the reachability stage produced.  The explicit flow carries the
    graphs themselves; the symbolic flow never materializes one, so only
    the state counts survive. *)
type reach =
  | Explicit_graphs of { sg_full : Rtcad_sg.Sg.t; sg : Rtcad_sg.Sg.t }
      (** [sg] is the graph used for synthesis (pruned under RT). *)
  | Symbolic_counts of { states_full : int; states_used : int }

type t = {
  mode : mode;
  stg : Rtcad_stg.Stg.t;  (** after contraction and state-signal insertion *)
  insertions : Rtcad_sg.Csc.insertion list;
  reach : reach;
  assumptions : Rtcad_rt.Assumption.t list;  (** all proposed (user + automatic) *)
  constraints : Rtcad_rt.Assumption.t list;
      (** back-annotated: assumptions the synthesis relied on (pruning)
          plus laziness constraints of the chosen covers *)
  signals : signal_result list;
  netlist : Rtcad_netlist.Netlist.t;
}

exception Synthesis_failure of string

val sg_full : t -> Rtcad_sg.Sg.t
(** The full state graph of an explicit flow.
    @raise Invalid_argument on a symbolic flow. *)

val sg : t -> Rtcad_sg.Sg.t
(** The synthesis graph of an explicit flow.
    @raise Invalid_argument on a symbolic flow. *)

val num_states_full : t -> int
(** Reachable states of the full specification (either engine). *)

val num_states_used : t -> int
(** States of the (possibly pruned) space synthesis actually used. *)

(** {2 Keyed stages}

    The flow decomposes into five stages — normalize (parse +
    dummy-contract), encode (CSC resolution), reach (reachability),
    covers (assumptions + pruning + per-signal synthesis), emit
    (netlist + conformance) — each keyed by a content hash over
    everything that determines its output: the canonical [.g] text of
    the contracted specification (the round-trip-stable printer
    identity), the mode {!fingerprint}, the resolved engine, the state
    bound, and (for emit) the gate style.  The flow is deterministic in
    these inputs, so all five keys are computable up front without
    running anything, and a {!Store.t} passed to {!synthesize} can
    replay any suffix of the pipeline from cached artifacts. *)

type keys = {
  normalize : string;
  encode : string;
  reach_key : string;
  covers : string;
  emit : string;
}

val stage_keys :
  ?mode:mode ->
  ?engine:Rtcad_sg.Engine.t ->
  ?emit_style:Rtcad_synth.Emit.style ->
  ?max_states:int ->
  Rtcad_stg.Stg.t ->
  keys
(** The five stage keys for a specification under the given options
    (defaults as in {!synthesize}).  Invariant under any reformatting of
    the input that preserves its canonical text — whitespace, comments,
    element order, place renumbering — and distinct for every semantic
    change (structure, mode, engine, bound; [emit] additionally varies
    with style, [normalize] only with the text).  Raises [Failure] on a
    net whose marking the [.g] printer cannot express (such a spec has no
    canonical text; {!synthesize} treats it as uncacheable). *)

val synthesize :
  ?cache:Store.t ->
  ?mode:mode ->
  ?engine:Rtcad_sg.Engine.t ->
  ?emit_style:Rtcad_synth.Emit.style ->
  ?max_states:int ->
  Rtcad_stg.Stg.t ->
  t
(** Run the flow (default mode {!rt_default}).  The default emission style
    is static CMOS for {!Si} and footed domino for {!Rt}.  Raises
    {!Synthesis_failure} when state encoding cannot be completed or a
    cover violates its correctness check, and the STG/state-graph
    exceptions on malformed input.

    [engine] (default [Auto]) chooses the reachability engine.  When it
    selects symbolic for the (contracted) specification, the entire flow
    — state encoding, assumption generation, pruning, next-state
    extraction, monotonicity checks — runs on the reachable BDD and no
    explicit state graph is ever materialized, which is what lets
    specifications beyond the explicit bound reach a netlist.  The
    symbolic path skips lazy cover relaxation (it needs per-state
    successor walks), so its netlists may be slightly more conservative
    under {!Rt}; under {!Si} the two engines agree exactly.

    [cache] enables incremental synthesis: stage artifacts are looked up
    and stored under their {!stage_keys}.  On a full hit the flow value
    is reconstructed without running any analysis (bit-identical
    insertions, assumptions, covers, constraints and netlist; [reach]
    degrades to {!Symbolic_counts} since no graph is rebuilt).  When only
    the emission key misses — e.g. a new gate style over decided covers —
    emission and the conformance gate rerun from the cached covers.  On a
    cold run each stage's artifact is stored as it completes, and an
    encode-stage hit alone still skips the CSC search.  Independently of
    [cache], the symbolic reachability of edited specifications is
    re-seeded from the most recent compatible analysis in this process
    (delta reachability, {!Rtcad_sg.Symbolic.analyze_cached}). *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable synthesis report: state counts, per-signal equations,
    constraints, netlist cost. *)
