(* Content-addressed artifact store for the staged synthesis flow.

   Two tiers, mirroring the serve result cache (lib/serve/cache.ml): a
   sharded in-memory table with cost-based LRU eviction (an entry's cost
   is its payload bytes plus the compute milliseconds it saves), and an
   optional on-disk tier of checksummed entries.  Differences from the
   serve cache, driven by this store's role as a persistent build cache
   rather than a response cache:

   - every disk entry records the *stage* that produced it (encode,
     reach, covers, emit, …) so `rtsyn cache ls` can attribute bytes;
   - disk writes go through a temp file and an atomic rename, so a
     reader racing a writer (or two writers racing each other) sees
     either the complete old entry or the complete new one, never a
     torn write;
   - the disk tier is first-class: [ls]/[gc]/[disk_stats] operate on a
     directory without constructing a live store, which is what the
     `rtsyn cache` subcommand drives.

   Corruption handling is identical to the serve cache: any header or
   checksum mismatch (flipped byte, truncation, foreign file) counts as
   corrupt, removes the entry and reports a miss — the flow recomputes
   and overwrites. *)

module Obs = Rtcad_obs.Obs

let magic = "rtcad-flow-cache/1"
let file_ext = ".art"

type entry = { payload : string; cost_ms : float; mutable tick : int }

let entry_cost e = String.length e.payload + int_of_float (Float.ceil e.cost_ms)

type shard = {
  table : (string, entry) Hashtbl.t;
  mutable s_cost : int;
  mutable s_bytes : int;
  mutable s_evictions : int;
}

type t = {
  shards : shard array;
  shard_budget : int;
  dir : string option;
  mutable clock : int;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
}

type stats = {
  hits : int;  (** memory + disk *)
  disk_hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  entries : int;
  retained_bytes : int;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  end

let default_budget = 64 * 1024 * 1024

let create ?(shards = 4) ?(budget = default_budget) ?dir () =
  if shards < 1 then invalid_arg "Store.create: shards must be positive";
  if budget < 1 then invalid_arg "Store.create: budget must be positive";
  Option.iter mkdir_p dir;
  {
    shards =
      Array.init shards (fun _ ->
          { table = Hashtbl.create 16; s_cost = 0; s_bytes = 0; s_evictions = 0 });
    shard_budget = max 1 (budget / shards);
    dir;
    clock = 0;
    hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
  }

let dir (t : t) = t.dir

let shard_index (t : t) k =
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  let n = Array.length t.shards in
  if n = 1 then 0
  else
    match if String.length k >= 2 then (hex k.[0], hex k.[1]) else (None, None) with
    | Some a, Some b -> ((a * 16) + b) mod n
    | _ -> Hashtbl.hash k mod n

let shard_of (t : t) k = t.shards.(shard_index t k)

(* Length-prefixing makes the digest injective over the part list. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let remove_entry sh k e =
  Hashtbl.remove sh.table k;
  sh.s_cost <- sh.s_cost - entry_cost e;
  sh.s_bytes <- sh.s_bytes - String.length e.payload

let evict_lru sh =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, v) when v.tick <= e.tick -> ()
      | _ -> victim := Some (k, e))
    sh.table;
  match !victim with
  | Some (k, e) ->
    remove_entry sh k e;
    sh.s_evictions <- sh.s_evictions + 1;
    Obs.incr "flow.cache.evict";
    true
  | None -> false

let insert_mem ?(cost_ms = 0.0) t k payload =
  let sh = shard_of t k in
  match Hashtbl.find_opt sh.table k with
  | Some e -> touch t e
  | None ->
    let e = { payload; cost_ms; tick = 0 } in
    touch t e;
    Hashtbl.replace sh.table k e;
    sh.s_cost <- sh.s_cost + entry_cost e;
    sh.s_bytes <- sh.s_bytes + String.length payload;
    (* Shave down to budget, never evicting the entry just inserted. *)
    while
      sh.s_cost > t.shard_budget && Hashtbl.length sh.table > 1 && evict_lru sh
    do
      ()
    done

(* --- disk tier --------------------------------------------------------- *)

let disk_path dir k = Filename.concat dir (k ^ file_ext)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A disk entry is [magic ^ " " ^ stage ^ " " ^ md5(payload) ^ "\n" ^
   payload].  The stage name carries no trust — only the checksum does —
   it exists so [ls] can attribute the entry without decoding the
   payload. *)
let encode_entry ~stage payload =
  if String.contains stage ' ' || String.contains stage '\n' then
    invalid_arg "Store: stage names must not contain spaces";
  Printf.sprintf "%s %s %s\n%s" magic stage
    (Digest.to_hex (Digest.string payload))
    payload

let decode_entry data =
  match String.index_opt data '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub data 0 nl in
    let payload = String.sub data (nl + 1) (String.length data - nl - 1) in
    match String.split_on_char ' ' header with
    | [ m; stage; sum ] when m = magic ->
      if String.equal sum (Digest.to_hex (Digest.string payload)) then
        Some (stage, payload)
      else None
    | _ -> None)

let disk_find t k =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = disk_path dir k in
    match read_file path with
    | exception Sys_error _ -> None
    | data -> (
      match decode_entry data with
      | Some (_stage, payload) -> Some payload
      | None ->
        t.corrupt <- t.corrupt + 1;
        Obs.incr "flow.cache.corrupt";
        (try Sys.remove path with Sys_error _ -> ());
        None))

(* Unique-then-rename keeps concurrent writers safe: each writer builds
   its own temp file (pid + a per-store counter disambiguate) and the
   rename installs it atomically, so the entry file is always either
   absent or a complete checksummed entry.  Last writer wins; both wrote
   the same content-addressed payload anyway. *)
let tmp_counter = Atomic.make 0

let disk_store t ~stage k payload =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = disk_path dir k in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    let data = encode_entry ~stage payload in
    (* Best-effort: a full disk loses persistence for this entry only. *)
    (match Obs.write_file ~path:tmp data with
    | Ok () -> ( try Sys.rename tmp path with Sys_error _ -> ())
    | Error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

let find t k =
  match Hashtbl.find_opt (shard_of t k).table k with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Obs.incr "flow.cache.hit";
    Some e.payload
  | None -> (
    match disk_find t k with
    | Some payload ->
      insert_mem t k payload;
      t.hits <- t.hits + 1;
      t.disk_hits <- t.disk_hits + 1;
      Obs.incr "flow.cache.hit";
      Obs.incr "flow.cache.disk_hit";
      Some payload
    | None ->
      t.misses <- t.misses + 1;
      Obs.incr "flow.cache.miss";
      None)

let store ?cost_ms ~stage t k payload =
  insert_mem ?cost_ms t k payload;
  disk_store t ~stage k payload;
  t.stores <- t.stores + 1;
  Obs.incr "flow.cache.store"

let stats (t : t) =
  let entries = ref 0 and bytes = ref 0 and evictions = ref 0 in
  Array.iter
    (fun s ->
      entries := !entries + Hashtbl.length s.table;
      bytes := !bytes + s.s_bytes;
      evictions := !evictions + s.s_evictions)
    t.shards;
  {
    hits = t.hits;
    disk_hits = t.disk_hits;
    misses = t.misses;
    stores = t.stores;
    evictions = !evictions;
    corrupt = t.corrupt;
    entries = !entries;
    retained_bytes = !bytes;
  }

(* --- directory operations (the `rtsyn cache` subcommand) --------------- *)

type disk_entry = {
  de_key : string;
  de_stage : string;
  de_bytes : int;  (** whole file, header included *)
  de_mtime : float;
}

type disk_stats = {
  d_entries : int;
  d_bytes : int;
  d_corrupt : int;  (** undecodable entries found (and removed) by the scan *)
  d_stages : (string * int) list;  (** per-stage entry counts, sorted *)
}

(* Scan a store directory: decode every [.art] entry, removing the ones
   that fail their checksum (the same discard-and-recompute contract the
   live store applies on [find]).  Stray temp files older than an hour
   are leftovers of a crashed writer and are swept too. *)
let scan dir =
  let names =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | ns -> ns
  in
  Array.sort compare names;
  let entries = ref [] and corrupt = ref 0 in
  let now = Unix.gettimeofday () in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Filename.check_suffix name file_ext then begin
        match read_file path with
        | exception Sys_error _ -> ()
        | data -> (
          match decode_entry data with
          | Some (stage, _) ->
            let st = try Some (Unix.stat path) with Unix.Unix_error _ -> None in
            entries :=
              {
                de_key = Filename.chop_suffix name file_ext;
                de_stage = stage;
                de_bytes = String.length data;
                de_mtime =
                  (match st with Some s -> s.Unix.st_mtime | None -> now);
              }
              :: !entries
          | None ->
            incr corrupt;
            (try Sys.remove path with Sys_error _ -> ()))
      end
      else if
        (* "<key>.art.tmp.<pid>.<n>": a temp file a crashed writer never
           renamed.  Fresh ones may belong to a live writer; stale ones
           are garbage. *)
        (let marker = file_ext ^ ".tmp." in
         let rec has_sub i =
           i + String.length marker <= String.length name
           && (String.sub name i (String.length marker) = marker
              || has_sub (i + 1))
         in
         has_sub 0)
        &&
        match Unix.stat path with
        | exception Unix.Unix_error _ -> false
        | st -> now -. st.Unix.st_mtime > 3600.0
      then try Sys.remove path with Sys_error _ -> ())
    names;
  (List.rev !entries, !corrupt)

let ls ~dir =
  let entries, _ = scan dir in
  List.sort
    (fun a b ->
      match compare a.de_stage b.de_stage with
      | 0 -> compare a.de_key b.de_key
      | c -> c)
    entries

let disk_stats ~dir =
  let entries, corrupt = scan dir in
  let stages = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace stages e.de_stage
        (1 + Option.value ~default:0 (Hashtbl.find_opt stages e.de_stage)))
    entries;
  {
    d_entries = List.length entries;
    d_bytes = List.fold_left (fun a e -> a + e.de_bytes) 0 entries;
    d_corrupt = corrupt;
    d_stages =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stages []);
  }

(* Oldest-first eviction down to the byte budget.  Ties on mtime break
   by key so the sweep is deterministic on coarse-granularity
   filesystems. *)
let gc ~dir ~budget =
  if budget < 0 then invalid_arg "Store.gc: budget must be non-negative";
  let entries, _ = scan dir in
  let total = List.fold_left (fun a e -> a + e.de_bytes) 0 entries in
  let ordered =
    List.sort
      (fun a b ->
        match compare a.de_mtime b.de_mtime with
        | 0 -> compare a.de_key b.de_key
        | c -> c)
      entries
  in
  let removed = ref 0 and remaining = ref total in
  List.iter
    (fun e ->
      if !remaining > budget then begin
        match Sys.remove (disk_path dir e.de_key) with
        | () ->
          incr removed;
          remaining := !remaining - e.de_bytes
        | exception Sys_error _ -> ()
      end)
    ordered;
  (!removed, !remaining)
