(** Measurement harness for FIFO-controller implementations (Table 2).

    The circuit under test exposes the interface of Figure 3: request in
    [li], acknowledge out [lo], request out [ro], acknowledge in [ri]
    (the pulse-mode variant drops [lo]/[ri]).  The harness closes the
    handshakes with configurable environment response delays and measures:

    - {e cycle time}: interval between successive [li+] requests accepted
      in steady state (a complete four-phase cycle) — its maximum is the
      "worst delay" row of Table 2, its mean the "average delay";
    - {e switching energy} per complete cycle;
    - {e stuck-at testability} with the same handshake sequence as the
      test stimulus. *)

type measurement = {
  cycles : int;
  worst_delay_ps : float;
  avg_delay_ps : float;
  avg_forward_ps : float;
      (** mean forward latency from an accepted request ([li+]) to the
          corresponding outgoing request ([ro+]); for pulse measurements
          it coincides with [avg_delay_ps] *)
  energy_per_cycle_pj : float;
  glitches : int;
}

type env = {
  left_delay_ps : float;  (** env latency from [lo] edges to [li] answers *)
  right_delay_ps : float;  (** env latency from [ro] edges to [ri] answers *)
  jitter : float;  (** uniform random fraction added to env delays *)
  seed : int;
}

val zero_env : env
(** Instantaneous environment: measures pure circuit delay. *)

val measure_fourphase :
  ?env:env ->
  ?vcd:Rtcad_obs.Vcd.writer ->
  cycles:int ->
  Rtcad_netlist.Netlist.t ->
  measurement
(** Drive [cycles] four-phase handshakes.  Raises [Failure] if the
    circuit stalls (no complete cycle within a generous timeout).
    [vcd] captures every net of the run as a waveform, attached before
    power-up settling so the dump holds the complete history. *)

val measure_pulse :
  ?period_ps:float ->
  ?width_ps:float ->
  ?vcd:Rtcad_obs.Vcd.writer ->
  cycles:int ->
  Rtcad_netlist.Netlist.t ->
  measurement
(** Pulse-mode variant: send [li] pulses of the given width at the given
    period and observe [ro] pulses.  The delay metrics report the
    [li+ -> ro+] pulse latency. *)

val pulse_min_period : ?width_ps:float -> cycles:int -> Rtcad_netlist.Netlist.t -> float
(** The smallest pulse period (10 ps resolution) at which the circuit
    drops no pulses — the pulse-mode cycle time.  Raises [Failure] if the
    circuit drops pulses even at a 4 ns period. *)

val fourphase_stimulus : ?env:env -> cycles:int -> Rtcad_netlist.Sim.t -> unit
(** The same environment as {!measure_fourphase}, packaged as a fault-
    simulation stimulus. *)

val pulse_stimulus :
  ?period_ps:float -> ?width_ps:float -> cycles:int -> Rtcad_netlist.Sim.t -> unit

val pp : Format.formatter -> measurement -> unit
