let conformance ?(constraints = []) (flow : Flow.t) =
  Rtcad_verify.Conformance.check ~constraints ~circuit:flow.Flow.netlist
    ~spec:flow.Flow.stg ()

let minimal_constraints (flow : Flow.t) =
  let report =
    Rtcad_verify.Rt_verify.verify ~circuit:flow.Flow.netlist ~spec:flow.Flow.stg
      ~assumptions:flow.Flow.assumptions ()
  in
  report.Rtcad_verify.Rt_verify.required
