module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Stg = Rtcad_stg.Stg
module Stg_io = Rtcad_stg.Stg_io
module Transform = Rtcad_stg.Transform
module Sg = Rtcad_sg.Sg
module Engine = Rtcad_sg.Engine
module Symbolic = Rtcad_sg.Symbolic
module Encoding = Rtcad_sg.Encoding
module Csc = Rtcad_sg.Csc
module Props = Rtcad_sg.Props
module Bdd = Rtcad_logic.Bdd
module Assumption = Rtcad_rt.Assumption
module Generate = Rtcad_rt.Generate
module Prune = Rtcad_rt.Prune
module Nextstate = Rtcad_synth.Nextstate
module Implement = Rtcad_synth.Implement
module Lazy_cover = Rtcad_synth.Lazy_cover
module Emit = Rtcad_synth.Emit
module Conformance = Rtcad_verify.Conformance
module Netlist = Rtcad_netlist.Netlist

type user_assumption = (string * Stg.dir) * (string * Stg.dir)

type mode =
  | Si
  | Rt of {
      user : user_assumption list;
      allow_input_first : bool;
      allow_lazy : bool;
    }

let rt_default = Rt { user = []; allow_input_first = false; allow_lazy = true }

(* Stable textual identity of a mode, for content-addressed caching of
   flow results: two modes with the same fingerprint produce identical
   netlists on the same (canonical) specification.  User assumptions are
   kept in list order — order does not change the result, but
   normalizing here would hide a client-side difference for no gain. *)
let fingerprint = function
  | Si -> "si"
  | Rt { user; allow_input_first; allow_lazy } ->
    let dir = function Rtcad_stg.Stg.Rise -> "+" | Rtcad_stg.Stg.Fall -> "-" in
    let edge (s, d) = s ^ dir d in
    Printf.sprintf "rt;input_first=%b;lazy=%b;user=%s" allow_input_first
      allow_lazy
      (String.concat "," (List.map (fun (a, b) -> edge a ^ "<" ^ edge b) user))

type signal_result = {
  signal_name : string;
  impl : Implement.impl;
  literals : int;
  lazy_constraints : Assumption.t list;
}

(* What the reachability stage produced.  The explicit flow carries the
   graphs themselves; the symbolic flow never materializes one, so only
   the state counts survive (the BDDs are domain-local and dropped once
   synthesis is done).  A flow reconstructed from cached artifacts also
   carries only counts — the graphs were never rebuilt. *)
type reach =
  | Explicit_graphs of { sg_full : Sg.t; sg : Sg.t }
  | Symbolic_counts of { states_full : int; states_used : int }

type t = {
  mode : mode;
  stg : Stg.t;
  insertions : Csc.insertion list;
  reach : reach;
  assumptions : Assumption.t list;
  constraints : Assumption.t list;
  signals : signal_result list;
  netlist : Netlist.t;
}

exception Synthesis_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Synthesis_failure s)) fmt

let sg_full t =
  match t.reach with
  | Explicit_graphs { sg_full; _ } -> sg_full
  | Symbolic_counts _ ->
    invalid_arg "Flow.sg_full: symbolic flow carries no explicit state graph"

let sg t =
  match t.reach with
  | Explicit_graphs { sg; _ } -> sg
  | Symbolic_counts _ ->
    invalid_arg "Flow.sg: symbolic flow carries no explicit state graph"

let num_states_full t =
  match t.reach with
  | Explicit_graphs { sg_full; _ } -> Sg.num_states sg_full
  | Symbolic_counts { states_full; _ } -> states_full

let num_states_used t =
  match t.reach with
  | Explicit_graphs { sg; _ } -> Sg.num_states sg
  | Symbolic_counts { states_used; _ } -> states_used

(* --- stage keys and artifacts ------------------------------------------ *)

(* Every stage of the flow is keyed by a content hash over everything
   that determines its output: the canonical [.g] text of the
   (dummy-contracted) specification — the same round-trip-stable printer
   identity the serve cache keys on — plus the mode fingerprint, the
   *resolved* engine, the state bound, and (for emission) the gate
   style.  The flow is deterministic in these inputs (the jobs-invariance
   contract), so keying a stage by its transitive inputs is equivalent to
   keying it by its immediate ones, and all five keys are computable up
   front without running anything.  [Sys.ocaml_version] joins the key
   material because stage artifacts are [Marshal] payloads, whose format
   is compiler-specific: entries written by a different compiler must
   simply never be found. *)
type keys = {
  normalize : string;
  encode : string;
  reach_key : string;
  covers : string;
  emit : string;
}

let resolved_style ~mode = function
  | Some s -> s
  | None -> (
    match mode with
    | Si -> Emit.Static_cmos
    | Rt _ -> Emit.Domino_cmos { footed = true })

let style_fingerprint = function
  | Emit.Static_cmos -> "static"
  | Emit.Domino_cmos { footed = true } -> "domino"
  | Emit.Domino_cmos { footed = false } -> "domino-unfooted"

let keys_of_canon ~mode ~sel ~emit_style ~max_states canon =
  let base =
    [
      Store.magic;
      Sys.ocaml_version;
      canon;
      fingerprint mode;
      (match sel with `Symbolic -> "symbolic" | `Explicit -> "explicit");
      (match max_states with None -> "unbounded" | Some n -> string_of_int n);
    ]
  in
  {
    normalize = Store.key [ Store.magic; "normalize"; canon ];
    encode = Store.key ("encode" :: base);
    reach_key = Store.key ("reach" :: base);
    covers = Store.key ("covers" :: base);
    emit =
      Store.key
        (("emit" :: base)
        @ [ style_fingerprint (resolved_style ~mode emit_style) ]);
  }

let stage_keys ?(mode = rt_default) ?(engine = Engine.Auto) ?emit_style
    ?max_states spec_stg =
  let stg0 = Transform.contract_dummies ~strict:false spec_stg in
  keys_of_canon ~mode
    ~sel:(Engine.select engine stg0)
    ~emit_style ~max_states (Stg_io.to_string stg0)

(* Stage artifacts, as stored: encode keeps the insertion list (the
   encoded STG is reproduced by replaying them — cheap, exact, and spared
   the hazards of round-tripping machine-generated place names through
   the parser); reach keeps the full state count; covers keeps everything
   the per-signal synthesis decided; emit keeps the netlist.  All are
   pure data (covers and netlists are cube lists and record arrays — no
   closures, no BDDs), so [Marshal] round-trips them. *)
type covers_art = {
  a_states_used : int;
  a_assumptions : Assumption.t list;
  a_used : Assumption.t list;
  a_signals : signal_result list;
}

type ctx = { store : Store.t; keys : keys }

let art_find ctx k =
  match Store.find ctx.store k with
  | None -> None
  | Some payload -> (
    (* The store already checksummed the payload; a decode failure here
       means a format-version skew that slipped past the keying and is
       treated as a miss. *)
    try Some (Marshal.from_string payload 0) with Failure _ -> None)

let art_store ctx ~stage ?cost_ms k v =
  Store.store ~stage ?cost_ms ctx.store k (Marshal.to_string v [])

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* --- shared stage bodies ----------------------------------------------- *)

let instantiate_user stg user =
  List.concat_map
    (fun (first, second) ->
      match Assumption.of_edges stg first second with
      | assumptions -> assumptions
      | exception Not_found ->
        fail "user assumption references unknown signal (%s/%s)" (fst first) (fst second))
    user

(* [fast] is used inside the state-encoding search, where the assumption
   generator runs once per candidate insertion: fewer randomized runs and
   shorter executions keep the search tractable.  The final assumption set
   is always regenerated at full strength.  The concurrent pairs are the
   only thing the generator needs from a reachability analysis, so both
   engines share this body. *)
let gather_assumptions_pairs ?(fast = false) ~mode stg pairs =
  match mode with
  | Si -> []
  | Rt { user; allow_input_first; _ } ->
    let automatic =
      if fast then
        let nt = Rtcad_stg.Petri.num_transitions (Stg.net stg) in
        Generate.automatic_of_pairs ~allow_input_first ~runs:2 ~steps:(20 * nt)
          stg pairs
      else Generate.automatic_of_pairs ~allow_input_first stg pairs
    in
    instantiate_user stg user @ automatic

let gather_assumptions ?fast ~mode stg sg =
  gather_assumptions_pairs ?fast ~mode stg
    (match mode with Si -> [] | Rt _ -> Rtcad_rt.Timed_sim.concurrent_pairs sg)

let gather_assumptions_sym ?fast ~mode stg sym =
  gather_assumptions_pairs ?fast ~mode stg
    (match mode with Si -> [] | Rt _ -> Symbolic.concurrent_pairs sym)

(* Implementation selection: candidates in preference order, first one
   passing the correctness checks with minimal literal cost wins.
   [monotonic] and [lazy_of] abstract the two graph engines: the
   explicit wrapper reads excitation instances and lazy relaxations off
   the graph, the symbolic one off the view (which has no lazy-cover
   support — the relaxation needs per-state successor walks). *)
let choose_impl_gen ~mode ~stg ~monotonic ~lazy_of (spec : Nextstate.spec) =
  let complex = Implement.synthesize spec Implement.Complex_gate in
  let gc = Implement.synthesize spec Implement.Generalized_c in
  let base =
    [ (complex, ([] : Assumption.t list)); (gc, []) ]
  in
  let lazy_candidates =
    match mode with
    | Si -> []
    | Rt { allow_lazy = false; _ } -> []
    | Rt { allow_lazy = true; _ } -> lazy_of gc
  in
  let acceptable (impl, _) =
    match mode with
    | Si -> Implement.respects_spec spec impl && monotonic impl
    | Rt _ -> (
      match impl with
      | Implement.Complex _ -> Implement.respects_spec spec impl
      | Implement.Gc _ -> true)
  in
  let candidates = List.filter acceptable (base @ lazy_candidates) in
  match
    List.sort
      (fun (a, _) (b, _) -> Int.compare (Implement.literal_cost a) (Implement.literal_cost b))
      candidates
  with
  | [] ->
    fail "no acceptable implementation for signal %s"
      (Stg.signal_name stg spec.Nextstate.signal)
  | best :: _ -> best

let choose_impl ~mode sg spec =
  choose_impl_gen ~mode ~stg:(Sg.stg sg)
    ~monotonic:(fun impl -> Implement.monotonic sg spec impl)
    ~lazy_of:(fun gc ->
      let r = Lazy_cover.relax sg spec gc in
      if r.Lazy_cover.constraints = [] then []
      else [ (r.Lazy_cover.impl, r.Lazy_cover.constraints) ])
    spec

let choose_impl_sym ~mode view spec =
  let stg = Symbolic.stg (Symbolic.view_base view) in
  choose_impl_gen ~mode ~stg
    ~monotonic:(fun impl ->
      Implement.monotonic_with
        ~rises:(Symbolic.excitation_regions view spec.Nextstate.signal Stg.Rise)
        ~falls:(Symbolic.excitation_regions view spec.Nextstate.signal Stg.Fall)
        impl)
    ~lazy_of:(fun _ -> [])
    spec

(* The encode stage: state-signal insertion via the CSC search, or — on
   a stage-key hit — an exact replay of the cached winning insertions.
   The search is deterministic in its inputs (jobs-invariant candidate
   enumeration and tie-breaks), so replaying its decisions reproduces
   the encoded STG bit for bit without re-running any analysis. *)
let run_encode ?ctx ~resolve stg0 =
  let cached = Option.bind ctx (fun c -> art_find c c.keys.encode) in
  match cached with
  | Some (ins : Csc.insertion list) ->
    Obs.incr "flow.cache.encode_hit";
    (List.fold_left Csc.apply stg0 ins, ins)
  | None -> (
    let result, ms = timed (fun () -> Obs.span "flow.encode" resolve) in
    match result with
    | Some (stg, ins) ->
      Option.iter
        (fun c -> art_store c ~stage:"encode" ~cost_ms:ms c.keys.encode ins)
        ctx;
      (stg, ins)
    | None -> fail "state encoding failed: CSC conflicts could not be resolved")

(* Emission, back-annotation and the conformance gate — identical for
   both engines (and for the cached-covers path) once the per-signal
   implementations are chosen.  [signals]/[pairs] carry the chosen
   cover-based implementations; everything here is engine-free. *)
let finish ?ctx ~mode ~stg ~insertions ~reach ~assumptions ~used ~covers_ms
    ~emit_style signals =
  Option.iter
    (fun c ->
      art_store c ~stage:"covers" ~cost_ms:covers_ms c.keys.covers
        {
          a_states_used =
            (match reach with
            | Explicit_graphs { sg; _ } -> Sg.num_states sg
            | Symbolic_counts { states_used; _ } -> states_used);
          a_assumptions = assumptions;
          a_used = used;
          a_signals = signals;
        })
    ctx;
  let signal_index name =
    let ns = Stg.num_signals stg in
    let rec go u =
      if u >= ns then fail "unknown signal %s in cached covers" name
      else if String.equal (Stg.signal_name stg u) name then u
      else go (u + 1)
    in
    go 0
  in
  let (netlist : Netlist.t), emit_ms =
    timed @@ fun () ->
    Obs.span "flow.emit" (fun () ->
        (* Degenerate covers (constant drive for an output) are refusals,
           not crashes: the gate library cannot realize them. *)
        try
          Emit.emit ~style:emit_style stg
            (List.map (fun s -> (signal_index s.signal_name, s.impl)) signals)
        with Invalid_argument msg -> fail "emission refused: %s" msg)
  in
  let constraints =
    List.sort_uniq Assumption.compare
      (used @ List.concat_map (fun s -> s.lazy_constraints) signals)
  in
  (* Close the Figure-2 loop: the emitted netlist must conform to the
     encoded specification — untimed in SI mode, under the generated
     assumption set in RT mode.  Without this gate, specifications with
     concurrency between unrelated cycles can yield covers whose
     cross-cycle terms glitch in interleavings the assumption vocabulary
     cannot forbid; refusing turns a silently hazardous circuit into an
     explicit synthesis failure. *)
  (match
     Obs.span "flow.verify" (fun () ->
         Conformance.check
           ~constraints:(match mode with Si -> [] | Rt _ -> assumptions)
           ~circuit:netlist ~spec:stg ())
   with
  | exception Conformance.Bound_exceeded _ -> ()
  | r ->
    if not r.Conformance.ok then
      fail "emitted netlist fails its conformance self-check (%d failure(s))"
        (List.length r.Conformance.failures));
  Option.iter
    (fun c -> art_store c ~stage:"emit" ~cost_ms:emit_ms c.keys.emit netlist)
    ctx;
  { mode; stg; insertions; reach; assumptions; constraints; signals; netlist }

let signals_of_chosen stg chosen =
  List.map
    (fun ((spec : Nextstate.spec), (impl, lazy_constraints)) ->
      {
        signal_name = Stg.signal_name stg spec.Nextstate.signal;
        impl;
        literals = Implement.literal_cost impl;
        lazy_constraints;
      })
    chosen

(* --- the two engine pipelines ------------------------------------------ *)

let synthesize_explicit ?ctx ~mode ~engine ~emit_style ?max_states stg0 =
  let csc_mode =
    match mode with Si -> Csc.Speed_independent | Rt _ -> Csc.Timing_aware
  in
  (* SI mode checks CSC on the unpruned graph: leaving [view] unset lets
     the encoding search use the symbolic conflict check when [engine]
     selects it.  RT mode checks conflicts on the pruned graph, which
     only the explicit engine can produce. *)
  let view =
    match mode with
    | Si -> None
    | Rt _ ->
      Some
        (fun sg ->
          let stg = Sg.stg sg in
          (Prune.apply_consistent sg (gather_assumptions ~fast:true ~mode stg sg))
            .Prune.pruned)
  in
  let stg, insertions =
    run_encode ?ctx
      ~resolve:(fun () -> Csc.resolve_all ~mode:csc_mode ~engine ?view ?max_states stg0)
      stg0
  in
  let (sg_full, reach_ms) =
    timed (fun () ->
        Obs.span "flow.reach" (fun () -> Engine.build ~engine ?max_states stg))
  in
  Option.iter
    (fun c ->
      art_store c ~stage:"reach" ~cost_ms:reach_ms c.keys.reach_key
        (Sg.num_states sg_full))
    ctx;
  Obs.set_gauge "flow.sg_states_full" (float_of_int (Sg.num_states sg_full));
  let covers_t0 = Unix.gettimeofday () in
  let assumptions =
    Obs.span "flow.assume" (fun () -> gather_assumptions ~mode stg sg_full)
  in
  let sg, used =
    match mode with
    | Si -> (sg_full, [])
    | Rt _ ->
      let r =
        Obs.span "flow.prune" (fun () -> Prune.apply_consistent sg_full assumptions)
      in
      (r.Prune.pruned, r.Prune.used)
  in
  Obs.set_gauge "flow.sg_states_used" (float_of_int (Sg.num_states sg));
  Obs.set_gauge "flow.assumptions" (float_of_int (List.length assumptions));
  if Encoding.has_csc sg then fail "CSC conflicts remain after encoding";
  (match mode with
  | Si ->
    if not (Props.is_output_persistent sg) then
      fail "specification is not output-persistent: no SI implementation"
  | Rt _ -> ());
  (* Per-signal synthesis is independent, so it fans out across domains.
     The net's lazy reverse-flow tables are forced first ([Lazy_cover]
     reads them through [Petri.producers]), and each task builds its own
     [Nextstate] spec so the BDDs it manipulates stay domain-local: after
     the join only the spec's signal index and the chosen cover-based
     implementation are read, never the spec's BDD fields. *)
  Rtcad_stg.Petri.prepare (Stg.net stg);
  let chosen =
    Obs.span "flow.synth" @@ fun () ->
    Par.map_list
      (fun u ->
        (* Cover extraction is structure-sensitive: re-establish the
           canonical variable order in case an earlier symbolic analysis
           left a sifted one behind on this domain. *)
        Bdd.restore_order ();
        let spec = Nextstate.of_sg sg u in
        (* BDD sizes are recorded inside the task — the spec's BDDs are
           domain-local and must not be read after the join.  The counts
           are structural (per signal), so their sum is jobs-invariant. *)
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.on_set)
          "synth.bdd_nodes.on_set";
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.off_set)
          "synth.bdd_nodes.off_set";
        (spec, choose_impl ~mode sg spec))
      (Stg.non_input_signals (Sg.stg sg))
  in
  let covers_ms = (Unix.gettimeofday () -. covers_t0) *. 1000.0 in
  finish ?ctx ~mode ~stg ~insertions
    ~reach:(Explicit_graphs { sg_full; sg })
    ~assumptions ~used ~covers_ms ~emit_style (signals_of_chosen stg chosen)

(* The symbolic flow: state encoding, assumption generation, pruning,
   next-state extraction and the monotonicity checks all run on the
   reachable BDD — no explicit state graph is ever materialized, which
   is what lets specifications beyond the explicit bound reach a
   netlist.  Two deliberate differences from the explicit path: lazy
   cover relaxation is skipped (it needs per-state successor walks), and
   per-signal synthesis runs serially on the calling domain (the view's
   BDDs are domain-local; the specs here are precisely the ones whose
   graphs are too large to enumerate, so the per-signal work is BDD-
   bound, not embarrassingly parallel state scans). *)
let synthesize_symbolic ?ctx ~mode ~emit_style ?max_states stg0 =
  let csc_mode =
    match mode with Si -> Csc.Speed_independent | Rt _ -> Csc.Timing_aware
  in
  (* The symbolic counterpart of the RT pruning view: candidate verdicts
     are taken on the assumption-pruned state space. *)
  let sym_view =
    match mode with
    | Si -> None
    | Rt _ ->
      Some
        (fun sym ->
          let stg = Symbolic.stg sym in
          let assumptions =
            gather_assumptions_sym ~fast:true ~mode stg sym
          in
          let r = Prune.apply_consistent_sym sym assumptions in
          ( Symbolic.view_deadlock_free r.Prune.view,
            Symbolic.view_has_csc r.Prune.view ))
  in
  let stg, insertions =
    run_encode ?ctx
      ~resolve:(fun () ->
        Csc.resolve_all ~mode:csc_mode ~engine:Engine.Symbolic ?sym_view
          ?max_states stg0)
      stg0
  in
  (* Reachability through the analysis pool: a same-process re-synthesis
     reuses the encoding search's analysis outright, and an edited spec
     re-seeds the fixpoint from the most recent compatible reachable set
     (delta reachability) instead of starting from the initial state. *)
  let sym, reach_ms =
    timed (fun () ->
        Obs.span "flow.reach" (fun () -> Symbolic.analyze_cached ?max_states stg))
  in
  Option.iter
    (fun c ->
      art_store c ~stage:"reach" ~cost_ms:reach_ms c.keys.reach_key
        (Symbolic.num_states sym))
    ctx;
  Obs.set_gauge "flow.sg_states_full" (float_of_int (Symbolic.num_states sym));
  let covers_t0 = Unix.gettimeofday () in
  let assumptions =
    Obs.span "flow.assume" (fun () -> gather_assumptions_sym ~mode stg sym)
  in
  let view, used =
    match mode with
    | Si -> (Symbolic.unrestricted sym, [])
    | Rt _ ->
      let r =
        Obs.span "flow.prune" (fun () -> Prune.apply_consistent_sym sym assumptions)
      in
      (r.Prune.view, r.Prune.sym_used)
  in
  let states_used = Symbolic.view_states view in
  Obs.set_gauge "flow.sg_states_used" (float_of_int states_used);
  Obs.set_gauge "flow.assumptions" (float_of_int (List.length assumptions));
  if Symbolic.view_has_csc view then fail "CSC conflicts remain after encoding";
  (match mode with
  | Si ->
    if not (Symbolic.is_output_persistent sym) then
      fail "specification is not output-persistent: no SI implementation"
  | Rt _ -> ());
  Rtcad_stg.Petri.prepare (Stg.net stg);
  (* Cover extraction is structure-sensitive: sift back to the canonical
     identity order so the emitted covers are independent of whatever
     dynamic reordering the fixpoint ran. *)
  Bdd.restore_order ();
  let chosen =
    Obs.span "flow.synth" @@ fun () ->
    List.map
      (fun u ->
        let spec = Nextstate.of_view view u in
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.on_set)
          "synth.bdd_nodes.on_set";
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.off_set)
          "synth.bdd_nodes.off_set";
        (spec, choose_impl_sym ~mode view spec))
      (Stg.non_input_signals stg)
  in
  let covers_ms = (Unix.gettimeofday () -. covers_t0) *. 1000.0 in
  finish ?ctx ~mode ~stg ~insertions
    ~reach:
      (Symbolic_counts { states_full = Symbolic.num_states sym; states_used })
    ~assumptions ~used ~covers_ms ~emit_style (signals_of_chosen stg chosen)

(* --- cached-flow reconstruction ---------------------------------------- *)

(* With every upstream stage artifact present, a flow value is rebuilt
   without running any analysis: the encoded STG by replaying the cached
   insertions, the counts/assumptions/covers from their artifacts, and
   the netlist either from its artifact (a full hit — nothing runs at
   all) or, when only the emission key misses (e.g. a new gate style
   over decided covers), by re-emitting and re-running the conformance
   gate.  Reconstructed flows carry [Symbolic_counts] regardless of
   engine — the graphs were never rebuilt. *)
let reconstruct ~ctx ~mode ~emit_style stg0 =
  match
    ( art_find ctx ctx.keys.encode,
      art_find ctx ctx.keys.reach_key,
      art_find ctx ctx.keys.covers )
  with
  | Some (ins : Csc.insertion list), Some (states_full : int), Some cov ->
    let stg = List.fold_left Csc.apply stg0 ins in
    let reach =
      Symbolic_counts { states_full; states_used = cov.a_states_used }
    in
    Some
      (match art_find ctx ctx.keys.emit with
      | Some (netlist : Netlist.t) ->
        Obs.incr "flow.cache.flow_hit";
        let constraints =
          List.sort_uniq Assumption.compare
            (cov.a_used
            @ List.concat_map (fun s -> s.lazy_constraints) cov.a_signals)
        in
        {
          mode;
          stg;
          insertions = ins;
          reach;
          assumptions = cov.a_assumptions;
          constraints;
          signals = cov.a_signals;
          netlist;
        }
      | None ->
        Obs.incr "flow.cache.covers_hit";
        finish ~ctx ~mode ~stg ~insertions:ins ~reach
          ~assumptions:cov.a_assumptions ~used:cov.a_used ~covers_ms:0.0
          ~emit_style cov.a_signals)
  | _ -> None

let synthesize ?cache ?(mode = rt_default) ?(engine = Engine.Auto) ?emit_style
    ?max_states spec_stg =
  Obs.span "flow.synthesize" @@ fun () ->
  let stg0 = Transform.contract_dummies ~strict:false spec_stg in
  let sel = Engine.select engine stg0 in
  let emit_style = resolved_style ~mode emit_style in
  (* The [.g] printer refuses nets whose marking it cannot express; a
     spec with no canonical text has no stage keys and runs uncached. *)
  let ctx =
    match cache with
    | None -> None
    | Some store -> (
      match Stg_io.to_string stg0 with
      | canon ->
        Some
          {
            store;
            keys =
              keys_of_canon ~mode ~sel ~emit_style:(Some emit_style) ~max_states
                canon;
          }
      | exception Failure _ ->
        Obs.incr "flow.cache.unkeyed";
        None)
  in
  match Option.bind ctx (fun ctx -> reconstruct ~ctx ~mode ~emit_style stg0) with
  | Some t -> t
  | None -> (
    match sel with
    | `Symbolic -> synthesize_symbolic ?ctx ~mode ~emit_style ?max_states stg0
    | `Explicit ->
      synthesize_explicit ?ctx ~mode ~engine ~emit_style ?max_states stg0)

let pp_report ppf t =
  let stg = t.stg in
  Format.fprintf ppf "@[<v>mode: %s@,"
    (match t.mode with Si -> "speed-independent" | Rt _ -> "relative timing");
  Format.fprintf ppf "states: %d full, %d used for synthesis@," (num_states_full t)
    (num_states_used t);
  List.iter
    (fun ins -> Format.fprintf ppf "inserted: %a@," (Csc.pp_insertion stg) ins)
    t.insertions;
  List.iter
    (fun s ->
      Format.fprintf ppf "%s = %a   (%d literals)@," s.signal_name
        (Implement.pp stg) s.impl s.literals)
    t.signals;
  if t.constraints <> [] then begin
    Format.fprintf ppf "required timing constraints:@,";
    List.iter (fun a -> Format.fprintf ppf "  %a@," (Assumption.pp stg) a) t.constraints
  end;
  Format.fprintf ppf "netlist: %d gates, %d transistors@]"
    (Rtcad_netlist.Netlist.gate_count t.netlist)
    (Rtcad_netlist.Netlist.transistors t.netlist)
