module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Stg = Rtcad_stg.Stg
module Transform = Rtcad_stg.Transform
module Sg = Rtcad_sg.Sg
module Engine = Rtcad_sg.Engine
module Symbolic = Rtcad_sg.Symbolic
module Encoding = Rtcad_sg.Encoding
module Csc = Rtcad_sg.Csc
module Props = Rtcad_sg.Props
module Bdd = Rtcad_logic.Bdd
module Assumption = Rtcad_rt.Assumption
module Generate = Rtcad_rt.Generate
module Prune = Rtcad_rt.Prune
module Nextstate = Rtcad_synth.Nextstate
module Implement = Rtcad_synth.Implement
module Lazy_cover = Rtcad_synth.Lazy_cover
module Emit = Rtcad_synth.Emit
module Conformance = Rtcad_verify.Conformance

type user_assumption = (string * Stg.dir) * (string * Stg.dir)

type mode =
  | Si
  | Rt of {
      user : user_assumption list;
      allow_input_first : bool;
      allow_lazy : bool;
    }

let rt_default = Rt { user = []; allow_input_first = false; allow_lazy = true }

(* Stable textual identity of a mode, for content-addressed caching of
   flow results: two modes with the same fingerprint produce identical
   netlists on the same (canonical) specification.  User assumptions are
   kept in list order — order does not change the result, but
   normalizing here would hide a client-side difference for no gain. *)
let fingerprint = function
  | Si -> "si"
  | Rt { user; allow_input_first; allow_lazy } ->
    let dir = function Rtcad_stg.Stg.Rise -> "+" | Rtcad_stg.Stg.Fall -> "-" in
    let edge (s, d) = s ^ dir d in
    Printf.sprintf "rt;input_first=%b;lazy=%b;user=%s" allow_input_first
      allow_lazy
      (String.concat "," (List.map (fun (a, b) -> edge a ^ "<" ^ edge b) user))

type signal_result = {
  signal_name : string;
  impl : Implement.impl;
  literals : int;
  lazy_constraints : Assumption.t list;
}

(* What the reachability stage produced.  The explicit flow carries the
   graphs themselves; the symbolic flow never materializes one, so only
   the state counts survive (the BDDs are domain-local and dropped once
   synthesis is done). *)
type reach =
  | Explicit_graphs of { sg_full : Sg.t; sg : Sg.t }
  | Symbolic_counts of { states_full : int; states_used : int }

type t = {
  mode : mode;
  stg : Stg.t;
  insertions : Csc.insertion list;
  reach : reach;
  assumptions : Assumption.t list;
  constraints : Assumption.t list;
  signals : signal_result list;
  netlist : Rtcad_netlist.Netlist.t;
}

exception Synthesis_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Synthesis_failure s)) fmt

let sg_full t =
  match t.reach with
  | Explicit_graphs { sg_full; _ } -> sg_full
  | Symbolic_counts _ ->
    invalid_arg "Flow.sg_full: symbolic flow carries no explicit state graph"

let sg t =
  match t.reach with
  | Explicit_graphs { sg; _ } -> sg
  | Symbolic_counts _ ->
    invalid_arg "Flow.sg: symbolic flow carries no explicit state graph"

let num_states_full t =
  match t.reach with
  | Explicit_graphs { sg_full; _ } -> Sg.num_states sg_full
  | Symbolic_counts { states_full; _ } -> states_full

let num_states_used t =
  match t.reach with
  | Explicit_graphs { sg; _ } -> Sg.num_states sg
  | Symbolic_counts { states_used; _ } -> states_used

let instantiate_user stg user =
  List.concat_map
    (fun (first, second) ->
      match Assumption.of_edges stg first second with
      | assumptions -> assumptions
      | exception Not_found ->
        fail "user assumption references unknown signal (%s/%s)" (fst first) (fst second))
    user

(* [fast] is used inside the state-encoding search, where the assumption
   generator runs once per candidate insertion: fewer randomized runs and
   shorter executions keep the search tractable.  The final assumption set
   is always regenerated at full strength.  The concurrent pairs are the
   only thing the generator needs from a reachability analysis, so both
   engines share this body. *)
let gather_assumptions_pairs ?(fast = false) ~mode stg pairs =
  match mode with
  | Si -> []
  | Rt { user; allow_input_first; _ } ->
    let automatic =
      if fast then
        let nt = Rtcad_stg.Petri.num_transitions (Stg.net stg) in
        Generate.automatic_of_pairs ~allow_input_first ~runs:2 ~steps:(20 * nt)
          stg pairs
      else Generate.automatic_of_pairs ~allow_input_first stg pairs
    in
    instantiate_user stg user @ automatic

let gather_assumptions ?fast ~mode stg sg =
  gather_assumptions_pairs ?fast ~mode stg
    (match mode with Si -> [] | Rt _ -> Rtcad_rt.Timed_sim.concurrent_pairs sg)

let gather_assumptions_sym ?fast ~mode stg sym =
  gather_assumptions_pairs ?fast ~mode stg
    (match mode with Si -> [] | Rt _ -> Symbolic.concurrent_pairs sym)

(* Implementation selection: candidates in preference order, first one
   passing the correctness checks with minimal literal cost wins.
   [monotonic] and [lazy_of] abstract the two graph engines: the
   explicit wrapper reads excitation instances and lazy relaxations off
   the graph, the symbolic one off the view (which has no lazy-cover
   support — the relaxation needs per-state successor walks). *)
let choose_impl_gen ~mode ~stg ~monotonic ~lazy_of (spec : Nextstate.spec) =
  let complex = Implement.synthesize spec Implement.Complex_gate in
  let gc = Implement.synthesize spec Implement.Generalized_c in
  let base =
    [ (complex, ([] : Assumption.t list)); (gc, []) ]
  in
  let lazy_candidates =
    match mode with
    | Si -> []
    | Rt { allow_lazy = false; _ } -> []
    | Rt { allow_lazy = true; _ } -> lazy_of gc
  in
  let acceptable (impl, _) =
    match mode with
    | Si -> Implement.respects_spec spec impl && monotonic impl
    | Rt _ -> (
      match impl with
      | Implement.Complex _ -> Implement.respects_spec spec impl
      | Implement.Gc _ -> true)
  in
  let candidates = List.filter acceptable (base @ lazy_candidates) in
  match
    List.sort
      (fun (a, _) (b, _) -> Int.compare (Implement.literal_cost a) (Implement.literal_cost b))
      candidates
  with
  | [] ->
    fail "no acceptable implementation for signal %s"
      (Stg.signal_name stg spec.Nextstate.signal)
  | best :: _ -> best

let choose_impl ~mode sg spec =
  choose_impl_gen ~mode ~stg:(Sg.stg sg)
    ~monotonic:(fun impl -> Implement.monotonic sg spec impl)
    ~lazy_of:(fun gc ->
      let r = Lazy_cover.relax sg spec gc in
      if r.Lazy_cover.constraints = [] then []
      else [ (r.Lazy_cover.impl, r.Lazy_cover.constraints) ])
    spec

let choose_impl_sym ~mode view spec =
  let stg = Symbolic.stg (Symbolic.view_base view) in
  choose_impl_gen ~mode ~stg
    ~monotonic:(fun impl ->
      Implement.monotonic_with
        ~rises:(Symbolic.excitation_regions view spec.Nextstate.signal Stg.Rise)
        ~falls:(Symbolic.excitation_regions view spec.Nextstate.signal Stg.Fall)
        impl)
    ~lazy_of:(fun _ -> [])
    spec

(* Emission, back-annotation and the conformance gate — identical for
   both engines once the per-signal implementations are chosen. *)
let finish ~mode ~stg ~insertions ~reach ~assumptions ~used ?emit_style chosen =
  let signals =
    List.map
      (fun (spec, (impl, lazy_constraints)) ->
        {
          signal_name = Stg.signal_name stg spec.Nextstate.signal;
          impl;
          literals = Implement.literal_cost impl;
          lazy_constraints;
        })
      chosen
  in
  let emit_style =
    match emit_style with
    | Some s -> s
    | None -> (
      match mode with
      | Si -> Emit.Static_cmos
      | Rt _ -> Emit.Domino_cmos { footed = true })
  in
  let netlist =
    Obs.span "flow.emit" (fun () ->
        Emit.emit ~style:emit_style stg
          (List.map (fun (spec, (impl, _)) -> (spec.Nextstate.signal, impl)) chosen))
  in
  let constraints =
    List.sort_uniq Assumption.compare
      (used @ List.concat_map (fun (_, (_, lc)) -> lc) chosen)
  in
  (* Close the Figure-2 loop: the emitted netlist must conform to the
     encoded specification — untimed in SI mode, under the generated
     assumption set in RT mode.  Without this gate, specifications with
     concurrency between unrelated cycles can yield covers whose
     cross-cycle terms glitch in interleavings the assumption vocabulary
     cannot forbid; refusing turns a silently hazardous circuit into an
     explicit synthesis failure. *)
  (match
     Obs.span "flow.verify" (fun () ->
         Conformance.check
           ~constraints:(match mode with Si -> [] | Rt _ -> assumptions)
           ~circuit:netlist ~spec:stg ())
   with
  | exception Conformance.Bound_exceeded _ -> ()
  | r ->
    if not r.Conformance.ok then
      fail "emitted netlist fails its conformance self-check (%d failure(s))"
        (List.length r.Conformance.failures));
  { mode; stg; insertions; reach; assumptions; constraints; signals; netlist }

let synthesize_explicit ~mode ~engine ?emit_style ?max_states stg0 =
  let csc_mode =
    match mode with Si -> Csc.Speed_independent | Rt _ -> Csc.Timing_aware
  in
  (* SI mode checks CSC on the unpruned graph: leaving [view] unset lets
     the encoding search use the symbolic conflict check when [engine]
     selects it.  RT mode checks conflicts on the pruned graph, which
     only the explicit engine can produce. *)
  let view =
    match mode with
    | Si -> None
    | Rt _ ->
      Some
        (fun sg ->
          let stg = Sg.stg sg in
          (Prune.apply_consistent sg (gather_assumptions ~fast:true ~mode stg sg))
            .Prune.pruned)
  in
  let stg, insertions =
    match
      Obs.span "flow.encode" (fun () ->
          Csc.resolve_all ~mode:csc_mode ~engine ?view ?max_states stg0)
    with
    | Some (stg, ins) -> (stg, ins)
    | None -> fail "state encoding failed: CSC conflicts could not be resolved"
  in
  let sg_full =
    Obs.span "flow.reach" (fun () -> Engine.build ~engine ?max_states stg)
  in
  Obs.set_gauge "flow.sg_states_full" (float_of_int (Sg.num_states sg_full));
  let assumptions =
    Obs.span "flow.assume" (fun () -> gather_assumptions ~mode stg sg_full)
  in
  let sg, used =
    match mode with
    | Si -> (sg_full, [])
    | Rt _ ->
      let r =
        Obs.span "flow.prune" (fun () -> Prune.apply_consistent sg_full assumptions)
      in
      (r.Prune.pruned, r.Prune.used)
  in
  Obs.set_gauge "flow.sg_states_used" (float_of_int (Sg.num_states sg));
  Obs.set_gauge "flow.assumptions" (float_of_int (List.length assumptions));
  if Encoding.has_csc sg then fail "CSC conflicts remain after encoding";
  (match mode with
  | Si ->
    if not (Props.is_output_persistent sg) then
      fail "specification is not output-persistent: no SI implementation"
  | Rt _ -> ());
  (* Per-signal synthesis is independent, so it fans out across domains.
     The net's lazy reverse-flow tables are forced first ([Lazy_cover]
     reads them through [Petri.producers]), and each task builds its own
     [Nextstate] spec so the BDDs it manipulates stay domain-local: after
     the join only the spec's signal index and the chosen cover-based
     implementation are read, never the spec's BDD fields. *)
  Rtcad_stg.Petri.prepare (Stg.net stg);
  let chosen =
    Obs.span "flow.synth" @@ fun () ->
    Par.map_list
      (fun u ->
        (* Cover extraction is structure-sensitive: re-establish the
           canonical variable order in case an earlier symbolic analysis
           left a sifted one behind on this domain. *)
        Bdd.restore_order ();
        let spec = Nextstate.of_sg sg u in
        (* BDD sizes are recorded inside the task — the spec's BDDs are
           domain-local and must not be read after the join.  The counts
           are structural (per signal), so their sum is jobs-invariant. *)
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.on_set)
          "synth.bdd_nodes.on_set";
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.off_set)
          "synth.bdd_nodes.off_set";
        (spec, choose_impl ~mode sg spec))
      (Stg.non_input_signals (Sg.stg sg))
  in
  finish ~mode ~stg ~insertions
    ~reach:(Explicit_graphs { sg_full; sg })
    ~assumptions ~used ?emit_style chosen

(* The symbolic flow: state encoding, assumption generation, pruning,
   next-state extraction and the monotonicity checks all run on the
   reachable BDD — no explicit state graph is ever materialized, which
   is what lets specifications beyond the explicit bound reach a
   netlist.  Two deliberate differences from the explicit path: lazy
   cover relaxation is skipped (it needs per-state successor walks), and
   per-signal synthesis runs serially on the calling domain (the view's
   BDDs are domain-local; the specs here are precisely the ones whose
   graphs are too large to enumerate, so the per-signal work is BDD-
   bound, not embarrassingly parallel state scans). *)
let synthesize_symbolic ~mode ?emit_style ?max_states stg0 =
  let csc_mode =
    match mode with Si -> Csc.Speed_independent | Rt _ -> Csc.Timing_aware
  in
  (* The symbolic counterpart of the RT pruning view: candidate verdicts
     are taken on the assumption-pruned state space. *)
  let sym_view =
    match mode with
    | Si -> None
    | Rt _ ->
      Some
        (fun sym ->
          let stg = Symbolic.stg sym in
          let assumptions =
            gather_assumptions_sym ~fast:true ~mode stg sym
          in
          let r = Prune.apply_consistent_sym sym assumptions in
          ( Symbolic.view_deadlock_free r.Prune.view,
            Symbolic.view_has_csc r.Prune.view ))
  in
  let stg, insertions =
    match
      Obs.span "flow.encode" (fun () ->
          Csc.resolve_all ~mode:csc_mode ~engine:Engine.Symbolic ?sym_view
            ?max_states stg0)
    with
    | Some (stg, ins) -> (stg, ins)
    | None -> fail "state encoding failed: CSC conflicts could not be resolved"
  in
  let sym = Obs.span "flow.reach" (fun () -> Symbolic.analyze ?max_states stg) in
  Obs.set_gauge "flow.sg_states_full" (float_of_int (Symbolic.num_states sym));
  let assumptions =
    Obs.span "flow.assume" (fun () -> gather_assumptions_sym ~mode stg sym)
  in
  let view, used =
    match mode with
    | Si -> (Symbolic.unrestricted sym, [])
    | Rt _ ->
      let r =
        Obs.span "flow.prune" (fun () -> Prune.apply_consistent_sym sym assumptions)
      in
      (r.Prune.view, r.Prune.sym_used)
  in
  let states_used = Symbolic.view_states view in
  Obs.set_gauge "flow.sg_states_used" (float_of_int states_used);
  Obs.set_gauge "flow.assumptions" (float_of_int (List.length assumptions));
  if Symbolic.view_has_csc view then fail "CSC conflicts remain after encoding";
  (match mode with
  | Si ->
    if not (Symbolic.is_output_persistent sym) then
      fail "specification is not output-persistent: no SI implementation"
  | Rt _ -> ());
  Rtcad_stg.Petri.prepare (Stg.net stg);
  (* Cover extraction is structure-sensitive: sift back to the canonical
     identity order so the emitted covers are independent of whatever
     dynamic reordering the fixpoint ran. *)
  Bdd.restore_order ();
  let chosen =
    Obs.span "flow.synth" @@ fun () ->
    List.map
      (fun u ->
        let spec = Nextstate.of_view view u in
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.on_set)
          "synth.bdd_nodes.on_set";
        Obs.incr ~by:(Rtcad_logic.Bdd.node_count spec.Nextstate.off_set)
          "synth.bdd_nodes.off_set";
        (spec, choose_impl_sym ~mode view spec))
      (Stg.non_input_signals stg)
  in
  finish ~mode ~stg ~insertions
    ~reach:
      (Symbolic_counts { states_full = Symbolic.num_states sym; states_used })
    ~assumptions ~used ?emit_style chosen

let synthesize ?(mode = rt_default) ?(engine = Engine.Auto) ?emit_style ?max_states
    spec_stg =
  Obs.span "flow.synthesize" @@ fun () ->
  let stg0 = Transform.contract_dummies ~strict:false spec_stg in
  match Engine.select engine stg0 with
  | `Symbolic -> synthesize_symbolic ~mode ?emit_style ?max_states stg0
  | `Explicit -> synthesize_explicit ~mode ~engine ?emit_style ?max_states stg0

let pp_report ppf t =
  let stg = t.stg in
  Format.fprintf ppf "@[<v>mode: %s@,"
    (match t.mode with Si -> "speed-independent" | Rt _ -> "relative timing");
  Format.fprintf ppf "states: %d full, %d used for synthesis@," (num_states_full t)
    (num_states_used t);
  List.iter
    (fun ins -> Format.fprintf ppf "inserted: %a@," (Csc.pp_insertion stg) ins)
    t.insertions;
  List.iter
    (fun s ->
      Format.fprintf ppf "%s = %a   (%d literals)@," s.signal_name
        (Implement.pp stg) s.impl s.literals)
    t.signals;
  if t.constraints <> [] then begin
    Format.fprintf ppf "required timing constraints:@,";
    List.iter (fun a -> Format.fprintf ppf "  %a@," (Assumption.pp stg) a) t.constraints
  end;
  Format.fprintf ppf "netlist: %d gates, %d transistors@]"
    (Rtcad_netlist.Netlist.gate_count t.netlist)
    (Rtcad_netlist.Netlist.transistors t.netlist)
