(** Timing-aware logic decomposition and technology mapping — the
    Section 6 direction "timing-aware logic decomposition and technology
    mapping for RT circuits".

    Atomic complex gates are not manufacturable beyond a few series
    transistors.  {!emit_mapped} decomposes every synthesized cover into a
    tree of bounded-fan-in AND/OR gates (plus a set-dominant element for
    gC implementations).  Decomposition introduces internal nodes with
    their own delays, so the result is generally {e not} hazard-free under
    unbounded delays; {!infer_constraints} closes the loop by verifying
    the mapped netlist against its specification and deriving, failure by
    failure, the internal relative-timing constraints (net-level "a
    before b" orderings) under which it conforms — constraints that the
    physical design must then honour. *)

val emit_mapped :
  ?style:Rtcad_synth.Emit.style ->
  ?max_fanin:int ->
  Rtcad_stg.Stg.t ->
  (int * Rtcad_synth.Implement.impl) list ->
  Rtcad_netlist.Netlist.t
(** Like {!Rtcad_synth.Emit.emit} but with every gate's fan-in bounded by
    [max_fanin] (default 3; must be [>= 2]). *)

type inference = {
  netlist : Rtcad_netlist.Netlist.t;
  constraints :
    (Rtcad_verify.Conformance.net_edge * Rtcad_verify.Conformance.net_edge) list;
      (** internal orderings sufficient for conformance *)
  conforms : bool;  (** whether the loop reached conformance *)
  rounds : int;
  residual : Rtcad_verify.Conformance.failure list;
      (** failures left when [conforms] is false *)
}

val infer_constraints :
  ?max_rounds:int ->
  circuit:Rtcad_netlist.Netlist.t ->
  spec:Rtcad_stg.Stg.t ->
  unit ->
  inference
(** Backtracking repair search: check conformance; every hazard "gate g
    towards v disabled by edge e" proposes the two orderings "(g,v)
    before e" and "e before (g,v)"; every unexpected output proposes
    making each gate that was racing it fire first.  The search explores
    these alternatives depth-first under a budget derived from
    [max_rounds] (default 32) and memoizes visited constraint sets.

    The inference converges for shallow decompositions (the Muller
    pipeline controller needs four constraints); for deep OR-tree races
    (the fully decomposed C-element, the FIFO cells at fan-in 2) the
    repair space grows beyond the budget and the inference reports
    failure with the best residual — mirroring the paper's assessment of
    timing-aware decomposition as an open CAD problem (Section 6). *)

val map_flow :
  ?style:Rtcad_synth.Emit.style ->
  ?max_fanin:int ->
  Flow.t ->
  inference
(** Convenience: decompose a flow result's implementations and infer the
    decomposition constraints against the flow's STG, with the flow's
    behavioural assumptions also in force. *)
