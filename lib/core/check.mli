(** Verification entry points for flow results: close the Figure-2 loop
    by checking the synthesized netlist against its (state-encoded)
    specification and minimizing the back-annotated constraint set. *)

val conformance :
  ?constraints:Rtcad_rt.Assumption.t list ->
  Flow.t ->
  Rtcad_verify.Conformance.result
(** Conformance of the flow's netlist against the flow's STG under the
    unbounded delay model, optionally with timing constraints. *)

val minimal_constraints : Flow.t -> Rtcad_rt.Assumption.t list
(** An irredundant constraint set sufficient for the netlist to conform —
    the paper's "five timing constraints sufficient for correct
    operation" for the Figure-5 circuit.  Empty when the circuit is
    speed-independent.  Raises {!Rtcad_verify.Rt_verify.Not_verifiable}
    when even the full assumption set does not make it conform. *)
