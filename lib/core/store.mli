(** Content-addressed artifact store for the staged synthesis flow.

    Persists the artifacts of {!Flow}'s keyed stages (state-signal
    insertions, reachability counts, per-signal covers, netlists) across
    processes.  Two tiers, following the serve result cache design: a
    sharded in-memory table with cost-based LRU eviction, and an
    optional on-disk tier of checksummed entries written via an atomic
    temp-file rename (safe against concurrent writers).  A disk entry
    whose header or checksum does not verify — a flipped byte, a
    truncated write, a foreign file — is counted, removed and reported
    as a miss, so corruption can only ever cost a recompute, never a
    wrong result. *)

type t

val magic : string
(** Format tag of every disk entry: ["rtcad-flow-cache/1"]. *)

val create : ?shards:int -> ?budget:int -> ?dir:string -> unit -> t
(** [create ()] is a memory-only store (defaults: 4 shards, 64 MiB
    in-memory budget).  With [dir] every store also writes a checksummed
    entry under that directory (created if missing) and misses fall
    through to it.  The budget bounds in-memory retained cost (payload
    bytes + compute ms per entry), split evenly across shards; the disk
    tier is unbounded here — [gc] trims it. *)

val dir : t -> string option

val key : string list -> string
(** Content key of a part list: hex md5 over the length-prefixed
    concatenation (injective over the list structure). *)

val find : t -> string -> string option
(** Memory first, then disk (a disk hit is promoted into memory). *)

val store : ?cost_ms:float -> stage:string -> t -> string -> string -> unit
(** [store ~stage t key payload] inserts into memory (evicting LRU
    entries over budget) and best-effort persists to disk.  [stage]
    (no spaces) is recorded in the disk header for attribution;
    [cost_ms] weights the in-memory eviction cost. *)

type stats = {
  hits : int;  (** memory + disk *)
  disk_hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
  entries : int;  (** in-memory *)
  retained_bytes : int;  (** in-memory *)
}

val stats : t -> stats

(** {2 Directory operations}

    The [rtsyn cache] subcommand works on a store directory without a
    live store.  All three scan the directory, removing entries that
    fail their checksum (and temp files abandoned by crashed writers). *)

type disk_entry = {
  de_key : string;
  de_stage : string;
  de_bytes : int;  (** whole file, header included *)
  de_mtime : float;
}

type disk_stats = {
  d_entries : int;
  d_bytes : int;
  d_corrupt : int;  (** undecodable entries found (and removed) by the scan *)
  d_stages : (string * int) list;  (** per-stage entry counts, sorted *)
}

val ls : dir:string -> disk_entry list
(** Entries sorted by (stage, key). *)

val disk_stats : dir:string -> disk_stats

val gc : dir:string -> budget:int -> int * int
(** Remove oldest entries (mtime, then key) until total bytes fit the
    budget.  Returns (entries removed, bytes remaining). *)
