module Sg = Rtcad_sg.Sg
module Bdd = Rtcad_logic.Bdd
module Bitset = Rtcad_util.Bitset

type result = { pruned : Sg.t; used : Assumption.t list; removed_edges : int }

exception Deadlock

let blocked_by assumptions sg s t =
  List.filter
    (fun a ->
      a.Assumption.second = t && a.Assumption.first <> t
      && List.mem a.Assumption.first (Sg.enabled sg s))
    assumptions

let apply sg assumptions =
  let allowed s t = blocked_by assumptions sg s t = [] in
  (* Survivors: reachable states under the allowed edges. *)
  let n = Sg.num_states sg in
  let surviving = Array.make n false in
  let queue = Queue.create () in
  surviving.(Sg.initial sg) <- true;
  Queue.add (Sg.initial sg) queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (t, s') ->
        if allowed s t && not surviving.(s') then begin
          surviving.(s') <- true;
          Queue.add s' queue
        end)
      (Sg.succs sg s)
  done;
  let used = Hashtbl.create 16 in
  let removed = ref 0 in
  for s = 0 to n - 1 do
    if surviving.(s) then
      List.iter
        (fun (t, _) ->
          match blocked_by assumptions sg s t with
          | [] -> ()
          | blockers ->
            incr removed;
            List.iter (fun a -> Hashtbl.replace used (a.Assumption.first, a.Assumption.second) a) blockers)
        (Sg.succs sg s)
  done;
  let pruned = Sg.restrict sg ~allowed in
  if Rtcad_sg.Props.deadlock_free sg && not (Rtcad_sg.Props.deadlock_free pruned) then
    raise Deadlock;
  {
    pruned;
    used = List.sort Assumption.compare (Hashtbl.fold (fun _ a acc -> a :: acc) used []);
    removed_edges = !removed;
  }

let apply_consistent sg assumptions =
  match apply sg assumptions with
  | r -> r
  | exception Deadlock ->
    let kept =
      List.fold_left
        (fun kept a ->
          let candidate = kept @ [ a ] in
          match apply sg candidate with
          | _ -> candidate
          | exception Deadlock -> kept)
        [] assumptions
    in
    apply sg kept

let codes_bdd sg =
  let stg = Sg.stg sg in
  let n = Rtcad_stg.Stg.num_signals stg in
  let acc = ref Bdd.zero in
  Sg.iter_states
    (fun s ->
      let values = Array.init n (fun i -> Sg.value sg s i) in
      acc := Bdd.bor !acc (Bdd.of_minterm n values))
    sg;
  !acc

let pruned_codes ~full ~pruned = Bdd.band (codes_bdd full) (Bdd.bnot (codes_bdd pruned))
