module Sg = Rtcad_sg.Sg
module Bdd = Rtcad_logic.Bdd
module Bitset = Rtcad_util.Bitset

type result = { pruned : Sg.t; used : Assumption.t list; removed_edges : int }

exception Deadlock

let blocked_by assumptions sg s t =
  List.filter
    (fun a ->
      a.Assumption.second = t && a.Assumption.first <> t
      && List.mem a.Assumption.first (Sg.enabled sg s))
    assumptions

let apply sg assumptions =
  let allowed s t = blocked_by assumptions sg s t = [] in
  (* Survivors: reachable states under the allowed edges. *)
  let n = Sg.num_states sg in
  let surviving = Array.make n false in
  let queue = Queue.create () in
  surviving.(Sg.initial sg) <- true;
  Queue.add (Sg.initial sg) queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (t, s') ->
        if allowed s t && not surviving.(s') then begin
          surviving.(s') <- true;
          Queue.add s' queue
        end)
      (Sg.succs sg s)
  done;
  let used = Hashtbl.create 16 in
  let removed = ref 0 in
  for s = 0 to n - 1 do
    if surviving.(s) then
      List.iter
        (fun (t, _) ->
          match blocked_by assumptions sg s t with
          | [] -> ()
          | blockers ->
            incr removed;
            List.iter (fun a -> Hashtbl.replace used (a.Assumption.first, a.Assumption.second) a) blockers)
        (Sg.succs sg s)
  done;
  let pruned = Sg.restrict sg ~allowed in
  if Rtcad_sg.Props.deadlock_free sg && not (Rtcad_sg.Props.deadlock_free pruned) then
    raise Deadlock;
  {
    pruned;
    used = List.sort Assumption.compare (Hashtbl.fold (fun _ a acc -> a :: acc) used []);
    removed_edges = !removed;
  }

let apply_consistent sg assumptions =
  match apply sg assumptions with
  | r -> r
  | exception Deadlock ->
    let kept =
      List.fold_left
        (fun kept a ->
          let candidate = kept @ [ a ] in
          match apply sg candidate with
          | _ -> candidate
          | exception Deadlock -> kept)
        [] assumptions
    in
    apply sg kept

(* --- symbolic mirror --------------------------------------------------- *)

module Symbolic = Rtcad_sg.Symbolic

type sym_result = {
  view : Symbolic.view;  (** the reduced state space *)
  sym_used : Assumption.t list;
  sym_removed_edges : int;
}

(* The same reduction computed on the reachable BDD: an assumption
   [a before b] suppresses [b]'s edges wherever [a] is also enabled, the
   reachable subset is recomputed through [Symbolic.restrict], and the
   used set collects assumptions that suppressed an edge out of a
   surviving state — all without materializing the graph. *)
let apply_sym sym assumptions =
  let n = Rtcad_stg.Petri.num_transitions (Rtcad_stg.Stg.net (Symbolic.stg sym)) in
  let blocked = Array.make n Bdd.zero in
  List.iter
    (fun a ->
      let t = a.Assumption.second in
      if a.Assumption.first <> t then
        blocked.(t) <- Bdd.bor blocked.(t) (Symbolic.enabled_set sym a.Assumption.first))
    assumptions;
  let allowed t = Bdd.bdiff (Symbolic.enabled_set sym t) blocked.(t) in
  let view = Symbolic.restrict sym ~allowed in
  let vreached = Symbolic.view_reached view in
  let used = Hashtbl.create 16 in
  let removed = ref 0 in
  for t = 0 to n - 1 do
    let cut = Bdd.band vreached (Bdd.band (Symbolic.enabled_set sym t) blocked.(t)) in
    if not (Bdd.is_zero cut) then begin
      removed := !removed + Symbolic.count_set sym cut;
      List.iter
        (fun a ->
          if
            a.Assumption.second = t && a.Assumption.first <> t
            && Bdd.intersects cut (Symbolic.enabled_set sym a.Assumption.first)
          then Hashtbl.replace used (a.Assumption.first, a.Assumption.second) a)
        assumptions
    end
  done;
  if Symbolic.deadlock_count sym = 0 && not (Symbolic.view_deadlock_free view) then
    raise Deadlock;
  {
    view;
    sym_used =
      List.sort Assumption.compare (Hashtbl.fold (fun _ a acc -> a :: acc) used []);
    sym_removed_edges = !removed;
  }

let apply_consistent_sym sym assumptions =
  match apply_sym sym assumptions with
  | r -> r
  | exception Deadlock ->
    let kept =
      List.fold_left
        (fun kept a ->
          let candidate = kept @ [ a ] in
          match apply_sym sym candidate with
          | _ -> candidate
          | exception Deadlock -> kept)
        [] assumptions
    in
    apply_sym sym kept

let codes_bdd sg =
  let stg = Sg.stg sg in
  let n = Rtcad_stg.Stg.num_signals stg in
  let acc = ref Bdd.zero in
  Sg.iter_states
    (fun s ->
      let values = Array.init n (fun i -> Sg.value sg s i) in
      acc := Bdd.bor !acc (Bdd.of_minterm n values))
    sg;
  !acc

let pruned_codes ~full ~pruned = Bdd.band (codes_bdd full) (Bdd.bnot (codes_bdd pruned))
