(** Automatic generation of relative-timing assumptions.

    Implements the paper's "simple delay model" rule family ("one gate can
    be made faster than two"): the STG is executed eagerly under
    unit gate delays and a slower environment; whenever two transitions
    are concurrently enabled somewhere in the untimed state graph but the
    timed executions consistently fire one of them at least [margin]
    earlier — and the early one is a circuit (non-input) transition — the
    ordering is proposed as an automatic assumption.

    Multiple randomized runs (choice resolution and tie-breaks) are
    intersected so that only robust orderings survive. *)

val automatic :
  ?env_delay:float ->
  ?gate_delay:float ->
  ?margin:float ->
  ?runs:int ->
  ?steps:int ->
  ?allow_input_first:bool ->
  Rtcad_stg.Stg.t ->
  Rtcad_sg.Sg.t ->
  Assumption.t list
(** [automatic stg sg] proposes assumptions for the given STG and its
    (untimed) state graph.  Defaults: [env_delay 2.0], [gate_delay 1.0],
    [margin 0.5], [runs 5], [steps] 40 times the transition count.

    [allow_input_first] (default [false]) additionally proposes orderings
    between two environment responses when the homogeneous delay model
    separates them robustly (e.g. [li-] answers one gate, [ri+] answers a
    chain of two).  The paper restricts automatic generation to circuit
    events and leaves input/input orderings to the user; the homogeneous-
    environment extension subsumes the gate-count rule while still {e not}
    deriving genuinely architectural assumptions such as the ring's
    "[ri-] before [li+]" (the homogeneous model predicts the opposite
    order, so that assumption can only come from the user — Section
    4.2). *)

val automatic_of_pairs :
  ?env_delay:float ->
  ?gate_delay:float ->
  ?margin:float ->
  ?runs:int ->
  ?steps:int ->
  ?allow_input_first:bool ->
  Rtcad_stg.Stg.t ->
  (int * int) list ->
  Assumption.t list
(** {!automatic} with the concurrently-enabled transition pairs supplied
    directly (e.g. from [Symbolic.concurrent_pairs]) instead of scanned
    from an explicit graph.  The timed executions that validate each
    candidate ordering run on the STG alone. *)
