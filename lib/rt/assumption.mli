(** Relative timing assumptions and constraints.

    An assumption ["a before b"] states that whenever the transitions [a]
    and [b] of an STG are both enabled, [a] fires first.  Assumptions are
    used during synthesis to prune concurrency from the state graph; the
    subset that the implementation actually relies on is back-annotated as
    {e constraints} that the physical design must satisfy (Figure 2 of the
    paper). *)

type origin =
  | User  (** supplied by the designer (architecture / environment) *)
  | Automatic  (** derived from the delay model *)
  | Laziness  (** produced by lazy (early-enabling) cover relaxation *)

type t = {
  first : int;  (** transition index that fires first *)
  second : int;  (** transition index that must wait *)
  origin : origin;
}

val before : ?origin:origin -> int -> int -> t
(** [before a b] is the assumption "a before b" (default origin [User]). *)

val of_edges :
  Rtcad_stg.Stg.t ->
  ?origin:origin ->
  string * Rtcad_stg.Stg.dir ->
  string * Rtcad_stg.Stg.dir ->
  t list
(** [of_edges stg ("ri", Fall) ("li", Rise)] builds one assumption per pair
    of transition occurrences of the two signal edges.  Raises [Not_found]
    on unknown signals. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Rtcad_stg.Stg.t -> Format.formatter -> t -> unit
(** Prints e.g. [ri- before li+ (user)]. *)

val pp_list : Rtcad_stg.Stg.t -> Format.formatter -> t list -> unit
