module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri

let is_input_trans stg t =
  match Stg.label stg t with
  | Stg.Edge { signal; _ } -> Stg.is_input stg signal
  | Stg.Dummy -> false

(* The generation rule needs the state graph only for one thing: which
   transition pairs are ever enabled together.  Taking the pairs as an
   argument lets the symbolic flow feed [Symbolic.concurrent_pairs]
   without materializing a graph; everything else (the timed runs that
   test each candidate ordering) works on the STG alone. *)
let automatic_of_pairs ?(env_delay = 2.0) ?(gate_delay = 1.0) ?(margin = 0.5)
    ?(runs = 5) ?steps ?(allow_input_first = false) stg pairs =
  let nt = Petri.num_transitions (Stg.net stg) in
  let steps = match steps with Some s -> s | None -> 40 * nt in
  (* With [allow_input_first] orderings between two
     environment responses are proposed when the homogeneous delay model
     consistently separates them (one response chain strictly contains
     more logic than the other); with it disabled only circuit-first
     orderings survive, the letter of the paper's gate-count rule. *)
  let candidates =
    if allow_input_first then pairs
    else List.filter (fun (t1, _) -> not (is_input_trans stg t1)) pairs
  in
  let traces =
    List.init runs (fun i ->
        Timed_sim.run ~env_delay ~gate_delay ~jitter:0.05 ~seed:(i + 1) ~steps stg)
  in
  let holds (t1, t2) =
    List.for_all
      (fun trace ->
        match Timed_sim.min_gap trace ~first:t1 ~second:t2 with
        | Some gap -> gap >= margin
        | None -> false)
      traces
  in
  List.filter_map
    (fun pair ->
      if holds pair then
        Some (Assumption.before ~origin:Assumption.Automatic (fst pair) (snd pair))
      else None)
    candidates

let automatic ?env_delay ?gate_delay ?margin ?runs ?steps ?allow_input_first stg
    sg =
  automatic_of_pairs ?env_delay ?gate_delay ?margin ?runs ?steps
    ?allow_input_first stg
    (Timed_sim.concurrent_pairs sg)
