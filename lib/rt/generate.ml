module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri

let is_input_trans stg t =
  match Stg.label stg t with
  | Stg.Edge { signal; _ } -> Stg.is_input stg signal
  | Stg.Dummy -> false

let automatic ?(env_delay = 2.0) ?(gate_delay = 1.0) ?(margin = 0.5) ?(runs = 5) ?steps
    ?(allow_input_first = false) stg sg =
  let nt = Petri.num_transitions (Stg.net stg) in
  let steps = match steps with Some s -> s | None -> 40 * nt in
  let pairs = Timed_sim.concurrent_pairs sg in
  (* With [allow_input_first] orderings between two
     environment responses are proposed when the homogeneous delay model
     consistently separates them (one response chain strictly contains
     more logic than the other); with it disabled only circuit-first
     orderings survive, the letter of the paper's gate-count rule. *)
  let candidates =
    if allow_input_first then pairs
    else List.filter (fun (t1, _) -> not (is_input_trans stg t1)) pairs
  in
  let traces =
    List.init runs (fun i ->
        Timed_sim.run ~env_delay ~gate_delay ~jitter:0.05 ~seed:(i + 1) ~steps stg)
  in
  let holds (t1, t2) =
    List.for_all
      (fun trace ->
        match Timed_sim.min_gap trace ~first:t1 ~second:t2 with
        | Some gap -> gap >= margin
        | None -> false)
      traces
  in
  List.filter_map
    (fun pair ->
      if holds pair then
        Some (Assumption.before ~origin:Assumption.Automatic (fst pair) (snd pair))
      else None)
    candidates
