(** Concurrency reduction of a state graph under relative-timing
    assumptions — the "lazy state graph" of the paper's Figure 2.

    An assumption [a before b] removes every edge firing [b] from a state
    in which [a] is also enabled.  The reachable subgraph is then
    recomputed.  The assumptions that actually removed an edge from a
    surviving state are the {e used} ones; these are the candidates for
    back-annotation as required timing constraints. *)

type result = {
  pruned : Rtcad_sg.Sg.t;  (** the reduced state graph *)
  used : Assumption.t list;  (** assumptions that removed a reachable edge *)
  removed_edges : int;  (** number of edges dropped from surviving states *)
}

exception Deadlock
(** Pruning a deadlock-free graph left a reachable state with no
    successors: the assumption set is contradictory for this
    specification. *)

val apply : Rtcad_sg.Sg.t -> Assumption.t list -> result
(** Raises {!Deadlock} if pruning introduces a deadlock (contradictory
    assumptions). *)

val apply_consistent : Rtcad_sg.Sg.t -> Assumption.t list -> result
(** Like {!apply}, but when the full set deadlocks, fall back to a
    maximal consistent subset (greedy, in list order) instead of
    raising.  Automatically generated assumption sets can be
    contradictory on specifications with independent concurrent cycles —
    the timed simulations that propose them consistently order
    transitions that the unbounded-delay semantics does not. *)

type sym_result = {
  view : Rtcad_sg.Symbolic.view;  (** the reduced state space *)
  sym_used : Assumption.t list;
  sym_removed_edges : int;
}

val apply_sym : Rtcad_sg.Symbolic.t -> Assumption.t list -> sym_result
(** {!apply} computed on the reachable BDD, without materializing the
    graph: same suppression rule, same used-assumption set, same
    removed-edge count, and {!Deadlock} under the same condition. *)

val apply_consistent_sym :
  Rtcad_sg.Symbolic.t -> Assumption.t list -> sym_result
(** {!apply_consistent}, symbolically. *)

val pruned_codes : full:Rtcad_sg.Sg.t -> pruned:Rtcad_sg.Sg.t -> Rtcad_logic.Bdd.t
(** Characteristic function (over signal variables) of the codes reachable
    in [full] but not in [pruned] — the extra global don't-care set that
    relative timing buys for logic minimization. *)
