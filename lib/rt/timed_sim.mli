(** Eager timed execution of an STG under a simple delay model.

    Every transition fires a fixed delay after it becomes enabled: one gate
    delay for non-input transitions, [env_delay] for inputs, zero for
    dummies.  Free choice is resolved randomly (seeded); ties in firing
    time are broken randomly as well.  The trace records, for every firing,
    its enabling and firing instants — the raw material for automatic
    relative-timing assumption generation and for the ring experiment of
    Section 4.2. *)

type event = {
  transition : int;
  enabled_at : float;
  fired_at : float;
}

type trace = event list
(** In firing order. *)

val run :
  ?env_delay:float ->
  ?gate_delay:float ->
  ?jitter:float ->
  ?seed:int ->
  steps:int ->
  Rtcad_stg.Stg.t ->
  trace
(** Simulate up to [steps] firings from the initial marking.  [jitter]
    adds a uniform random fraction of the delay ([0.0] by default, making
    the run deterministic up to choice).  Default [env_delay] 2.0,
    [gate_delay] 1.0.  A deadlock before [steps] firings ends the run
    with the partial trace — shorter traces yield fewer gap observations,
    so orderings over non-live specs are judged conservatively. *)

val vcd_of_trace : Rtcad_stg.Stg.t -> trace -> Rtcad_obs.Vcd.writer
(** Render a trace as one waveform per STG signal (dummy transitions are
    skipped).  Fire times are scaled by 1000 — delay units are nominally
    picoseconds, so dumped timestamps are femtoseconds, matching the
    writer's default timescale. *)

val concurrent_pairs : Rtcad_sg.Sg.t -> (int * int) list
(** Ordered pairs of distinct transitions that are simultaneously enabled
    in some reachable state of the (untimed) state graph. *)

val min_gap : trace -> first:int -> second:int -> float option
(** Over all episodes in which [second] fired while [first] was pending or
    had just fired after being concurrently pending, the minimum of
    [fired_at second - fired_at first].  [None] if the two were never
    concurrently pending. *)
