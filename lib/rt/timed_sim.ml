module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Rng = Rtcad_util.Rng
module Bitset = Rtcad_util.Bitset

type event = { transition : int; enabled_at : float; fired_at : float }
type trace = event list

let delay_of stg ~env_delay ~gate_delay t =
  match Stg.label stg t with
  | Stg.Dummy -> 0.0
  | Stg.Edge { signal; _ } ->
    if Stg.is_input stg signal then env_delay else gate_delay

let run ?(env_delay = 2.0) ?(gate_delay = 1.0) ?(jitter = 0.0) ?(seed = 1) ~steps stg =
  let net = Stg.net stg in
  let rng = Rng.create seed in
  let pending : (int, float * float) Hashtbl.t = Hashtbl.create 16 in
  let schedule now t =
    if not (Hashtbl.mem pending t) then begin
      let d = delay_of stg ~env_delay ~gate_delay t in
      let d = if jitter > 0.0 then d *. (1.0 +. Rng.float rng jitter) else d in
      Hashtbl.replace pending t (now, now +. d)
    end
  in
  let m = ref (Petri.initial_marking net) in
  List.iter (schedule 0.0) (Petri.enabled_transitions net !m);
  let trace = ref [] in
  let rec step k =
    (* A deadlock before [steps] firings simply ends the run: the partial
       trace yields fewer gap observations, so candidate orderings are
       judged conservatively instead of crashing on a non-live spec. *)
    if k < steps && Hashtbl.length pending > 0 then begin
      (* Earliest fire time; random tie-break among the minima. *)
      let best = ref [] and best_time = ref infinity in
      Hashtbl.iter
        (fun t (_, ft) ->
          if ft < !best_time -. 1e-12 then begin
            best_time := ft;
            best := [ t ]
          end
          else if abs_float (ft -. !best_time) <= 1e-12 then best := t :: !best)
        pending;
      let t = Rng.pick rng (Array.of_list !best) in
      let enabled_at, fired_at = Hashtbl.find pending t in
      Hashtbl.remove pending t;
      m := Petri.fire net !m t;
      trace := { transition = t; enabled_at; fired_at } :: !trace;
      (* Transitions disabled by this firing (choice) are descheduled. *)
      Hashtbl.iter
        (fun t' _ -> if not (Petri.enabled net !m t') then Hashtbl.remove pending t')
        (Hashtbl.copy pending);
      List.iter (schedule fired_at) (Petri.enabled_transitions net !m);
      step (k + 1)
    end
  in
  step 0;
  Rtcad_obs.Obs.incr ~by:(List.length !trace) "rt.timed_sim.steps";
  List.rev !trace

(* Render a timed trace as signal waveforms.  Trace times are in delay
   units (the [gate_delay]/[env_delay] scale, nominally ps); they are
   scaled by 1000 to femtoseconds so fractional fire times survive the
   integer timestamps VCD requires. *)
let vcd_of_trace stg trace =
  let w = Rtcad_obs.Vcd.create () in
  let n = Stg.num_signals stg in
  let sigs =
    Array.init n (fun s ->
        Rtcad_obs.Vcd.add_signal w ~initial:(Stg.initial_value stg s)
          (Stg.signal_name stg s))
  in
  List.iter
    (fun e ->
      match Stg.label stg e.transition with
      | Stg.Dummy -> ()
      | Stg.Edge { signal; dir } ->
        let time = int_of_float (Float.round (e.fired_at *. 1000.0)) in
        Rtcad_obs.Vcd.change w ~time sigs.(signal) (dir = Stg.Rise))
    trace;
  w

let concurrent_pairs sg =
  let pairs = Hashtbl.create 64 in
  Rtcad_sg.Sg.iter_states
    (fun s ->
      let enabled = Rtcad_sg.Sg.enabled sg s in
      List.iter
        (fun t1 ->
          List.iter (fun t2 -> if t1 <> t2 then Hashtbl.replace pairs (t1, t2) ()) enabled)
        enabled)
    sg;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pairs [])

let min_gap trace ~first ~second =
  let occs t =
    List.filter_map
      (fun e -> if e.transition = t then Some (e.enabled_at, e.fired_at) else None)
      trace
  in
  let o1 = occs first and o2 = occs second in
  let overlap (e1, f1) (e2, f2) = e1 <= f2 && e2 <= f1 in
  let gaps =
    List.concat_map
      (fun i1 ->
        List.filter_map
          (fun i2 -> if overlap i1 i2 then Some (snd i2 -. snd i1) else None)
          o2)
      o1
  in
  match gaps with [] -> None | g :: rest -> Some (List.fold_left min g rest)
