module Stg = Rtcad_stg.Stg

type origin = User | Automatic | Laziness
type t = { first : int; second : int; origin : origin }

let before ?(origin = User) first second =
  if first = second then invalid_arg "Assumption.before: same transition";
  { first; second; origin }

let of_edges stg ?(origin = User) (sig1, dir1) (sig2, dir2) =
  let s1 = Stg.signal_index stg sig1 and s2 = Stg.signal_index stg sig2 in
  let t1s = Stg.transitions_of stg s1 dir1 and t2s = Stg.transitions_of stg s2 dir2 in
  if t1s = [] || t2s = [] then raise Not_found;
  List.concat_map (fun t1 -> List.map (fun t2 -> before ~origin t1 t2) t2s) t1s

let equal a b = a.first = b.first && a.second = b.second
let compare a b = Stdlib.compare (a.first, a.second) (b.first, b.second)

let pp_origin ppf = function
  | User -> Format.fprintf ppf "user"
  | Automatic -> Format.fprintf ppf "auto"
  | Laziness -> Format.fprintf ppf "lazy"

let pp stg ppf a =
  Format.fprintf ppf "%a before %a (%a)" (Stg.pp_transition stg) a.first
    (Stg.pp_transition stg) a.second pp_origin a.origin

let pp_list stg ppf l =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp stg) ppf l
