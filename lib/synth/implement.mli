(** Two-level implementations of next-state functions.

    Two implementation styles from the paper's flow:
    - {e complex gate}: one atomic gate computing the whole next-state
      function [u' = F(signals)];
    - {e generalized C} (gC, the domino/keeper style of the FIFO circuits):
      separate set and reset covers with state-holding behaviour
      [u' = S + u·R'] — set-dominant, with [S] and [R] disjoint on
      reachable codes by construction. *)

type style = Complex_gate | Generalized_c

type impl =
  | Complex of Rtcad_logic.Cover.t
  | Gc of { set : Rtcad_logic.Cover.t; reset : Rtcad_logic.Cover.t }

val synthesize : Nextstate.spec -> style -> impl
(** Minimize covers over the spec's don't-care freedom. *)

val next_value : impl -> current:bool -> (int -> bool) -> bool
(** Evaluate the implemented next value of the signal given the current
    value and an assignment of all signals. *)

val literal_cost : impl -> int
(** Total literal count (a transistor-count proxy: roughly two transistors
    per literal, plus the keeper for gC). *)

val respects_spec : Nextstate.spec -> impl -> bool
(** The implementation's next value matches the spec on every reachable
    code (on/off sets); don't-cares are free. *)

val monotonic : Rtcad_sg.Sg.t -> Nextstate.spec -> impl -> bool
(** The monotonic-cover condition for speed-independent hazard freedom:
    every cube of the (set) cover intersects the excitation region of at
    most one transition instance of the signal, and likewise for the
    reset cover. *)

val monotonic_with :
  rises:Rtcad_logic.Bdd.t list ->
  falls:Rtcad_logic.Bdd.t list ->
  impl ->
  bool
(** {!monotonic} with the per-transition excitation instances supplied
    directly (e.g. from [Symbolic.excitation_regions]). *)

val pp : Rtcad_stg.Stg.t -> Format.formatter -> impl -> unit
(** Prints e.g. [lo = li x' + lo ri'] or [set: …  reset: …] with signal
    names. *)
