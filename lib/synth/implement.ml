module Bdd = Rtcad_logic.Bdd
module Cover = Rtcad_logic.Cover
module Sg = Rtcad_sg.Sg
module Stg = Rtcad_stg.Stg

type style = Complex_gate | Generalized_c

type impl =
  | Complex of Cover.t
  | Gc of { set : Cover.t; reset : Cover.t }

let synthesize (spec : Nextstate.spec) = function
  | Complex_gate ->
    Complex (Cover.irredundant_sop ~on_set:spec.on_set ~dc_set:spec.dc_set)
  | Generalized_c ->
    (* S in [rise_region, on+dc]; R in [fall_region, not-high+dc minus S]. *)
    let set_cover =
      Cover.irredundant_sop ~on_set:spec.rise_region
        ~dc_set:(Bdd.band (Bdd.bor spec.on_set spec.dc_set) (Bdd.bnot spec.rise_region))
    in
    let s_bdd = Cover.to_bdd set_cover in
    let reset_upper =
      Bdd.band (Bdd.bor (Bdd.bnot spec.high_region) spec.dc_set) (Bdd.bnot s_bdd)
    in
    let reset_cover =
      Cover.irredundant_sop ~on_set:spec.fall_region
        ~dc_set:(Bdd.band reset_upper (Bdd.bnot spec.fall_region))
    in
    Gc { set = set_cover; reset = reset_cover }

let next_value impl ~current env =
  match impl with
  | Complex c -> Cover.eval c env
  | Gc { set; reset } -> Cover.eval set env || (current && not (Cover.eval reset env))

let literal_cost = function
  | Complex c -> Cover.cost_literals c
  | Gc { set; reset } -> Cover.cost_literals set + Cover.cost_literals reset + 2

let respects_spec (spec : Nextstate.spec) impl =
  (* Compare as BDDs: implemented next-state function vs on/off sets. *)
  let u = spec.signal in
  let f =
    match impl with
    | Complex c -> Cover.to_bdd c
    | Gc { set; reset } ->
      Bdd.bor (Cover.to_bdd set) (Bdd.band (Bdd.var u) (Bdd.bnot (Cover.to_bdd reset)))
  in
  Bdd.subset spec.on_set f && Bdd.is_zero (Bdd.band spec.off_set f)

let excitation_instances sg u dir =
  let stg = Sg.stg sg in
  let transitions = Stg.transitions_of stg u dir in
  List.map
    (fun t ->
      let acc = ref Bdd.zero in
      Sg.iter_states
        (fun s ->
          if List.mem t (Sg.enabled sg s) then
            acc := Bdd.bor !acc (Nextstate.minterm_of_state sg s))
        sg;
      !acc)
    transitions

let monotonic_with ~rises ~falls impl =
  match impl with
  | Complex c ->
    (* Cubes of the cover may each serve a single rise instance. *)
    Cover.is_monotonic_cover c ~entered:rises
  | Gc { set; reset } ->
    Cover.is_monotonic_cover set ~entered:rises
    && Cover.is_monotonic_cover reset ~entered:falls

let monotonic sg (spec : Nextstate.spec) impl =
  monotonic_with
    ~rises:(excitation_instances sg spec.signal Stg.Rise)
    ~falls:(excitation_instances sg spec.signal Stg.Fall)
    impl

let pp stg ppf impl =
  let pp_var ppf v = Format.fprintf ppf "%s" (Stg.signal_name stg v) in
  match impl with
  | Complex c -> Cover.pp pp_var ppf c
  | Gc { set; reset } ->
    Format.fprintf ppf "set: %a  reset: %a" (Cover.pp pp_var) set (Cover.pp pp_var) reset
