module Bdd = Rtcad_logic.Bdd
module Cover = Rtcad_logic.Cover
module Bitset = Rtcad_util.Bitset
module Sg = Rtcad_sg.Sg
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Assumption = Rtcad_rt.Assumption

type result = {
  impl : Implement.impl;
  constraints : Assumption.t list;
  guaranteed : (int * int) list;
}

let source_value stg t =
  match Stg.label stg t with
  | Stg.Edge { dir = Stg.Rise; _ } -> false
  | Stg.Edge { dir = Stg.Fall; _ } -> true
  | Stg.Dummy -> invalid_arg "Lazy_cover: dummy transition"

let signal_of stg t =
  match Stg.label stg t with
  | Stg.Edge { signal; _ } -> signal
  | Stg.Dummy -> invalid_arg "Lazy_cover: dummy transition"

(* A state is a legitimate early-enabling state for transition [t] only if
   the race it creates is one the back-annotated constraints can win: every
   still-pending cause must be a circuit (non-input) event that is already
   enabled in that state — "lo- and ro- are enabled simultaneously" in the
   paper's words.  Pending environment events or not-yet-enabled causes
   would make the ordering assumption implausible. *)
let early_region sg t =
  let stg = Sg.stg sg in
  let net = Stg.net stg in
  let u = signal_of stg t and v0 = source_value stg t in
  let pre = Petri.pre net t in
  let is_input_trans c =
    match Stg.label stg c with
    | Stg.Edge { signal; _ } -> Stg.is_input stg signal
    | Stg.Dummy -> false
  in
  let acc = ref Bdd.zero in
  Sg.iter_states
    (fun s ->
      let m = Sg.marking sg s in
      let enabled = Sg.enabled sg s in
      let pending_ok p =
        Bitset.mem m p
        || List.for_all
             (fun c -> (not (is_input_trans c)) && List.mem c enabled)
             (Petri.producers net p)
      in
      if
        Sg.value sg s u = v0
        && (not (List.mem t enabled))
        && List.exists (fun p -> Bitset.mem m p) pre
        && List.for_all pending_ok pre
      then acc := Bdd.bor !acc (Nextstate.minterm_of_state sg s))
    sg;
  !acc

(* For a transition instance [t] and a relaxed cover [c], classify each
   cause (producer of an input place of [t]): if some reachable state
   covered by [c] has the cause still pending (its place unmarked), the
   ordering "cause before t" must be guaranteed by timing. *)
let cause_obligations sg t cover_bdd =
  let stg = Sg.stg sg in
  let net = Stg.net stg in
  let u = signal_of stg t and v0 = source_value stg t in
  let pre = Petri.pre net t in
  let pending = Hashtbl.create 8 in
  Sg.iter_states
    (fun s ->
      if Sg.value sg s u = v0 then begin
        let env v = Sg.value sg s v in
        if Bdd.eval cover_bdd env then
          let m = Sg.marking sg s in
          List.iter
            (fun p ->
              if not (Bitset.mem m p) then
                List.iter (fun c -> Hashtbl.replace pending c ()) (Petri.producers net p))
            pre
      end)
    sg;
  let all_causes =
    List.sort_uniq Int.compare (List.concat_map (Petri.producers net) pre)
  in
  List.partition (fun c -> Hashtbl.mem pending c) all_causes

let relax_cover sg transitions required old_upper =
  let early =
    List.fold_left (fun acc t -> Bdd.bor acc (early_region sg t)) Bdd.zero transitions
  in
  let upper = Bdd.bor old_upper early in
  Cover.irredundant_sop ~on_set:required ~dc_set:(Bdd.band upper (Bdd.bnot required))

let relax sg (spec : Nextstate.spec) impl =
  match impl with
  | Implement.Complex _ -> { impl; constraints = []; guaranteed = [] }
  | Implement.Gc { set; reset } ->
    let stg = Sg.stg sg in
    let u = spec.signal in
    let rises = Stg.transitions_of stg u Stg.Rise in
    let falls = Stg.transitions_of stg u Stg.Fall in
    let set_upper = Bdd.bor (Cover.to_bdd set) spec.dc_set in
    let reset_upper = Bdd.bor (Cover.to_bdd reset) spec.dc_set in
    let set' = relax_cover sg rises spec.rise_region set_upper in
    let reset' = relax_cover sg falls spec.fall_region reset_upper in
    (* Keep a relaxation only if it is strictly cheaper. *)
    let set_final = if Cover.cost_literals set' < Cover.cost_literals set then set' else set in
    let reset_final =
      if Cover.cost_literals reset' < Cover.cost_literals reset then reset' else reset
    in
    let obligations transitions cover =
      let cover_bdd = Cover.to_bdd cover in
      List.concat_map
        (fun t ->
          let needed, held = cause_obligations sg t cover_bdd in
          ( List.map (fun c -> Assumption.before ~origin:Assumption.Laziness c t) needed,
            List.map (fun c -> (c, t)) held )
          |> fun (a, b) -> List.map (fun x -> `C x) a @ List.map (fun x -> `G x) b)
        transitions
    in
    let classified =
      obligations rises set_final @ obligations falls reset_final
    in
    let constraints =
      List.filter_map (function `C a -> Some a | `G _ -> None) classified
    in
    let guaranteed =
      List.filter_map (function `G g -> Some g | `C _ -> None) classified
    in
    {
      impl = Implement.Gc { set = set_final; reset = reset_final };
      constraints = List.sort_uniq Assumption.compare constraints;
      guaranteed = List.sort_uniq compare guaranteed;
    }
