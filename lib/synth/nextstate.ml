module Bdd = Rtcad_logic.Bdd
module Sg = Rtcad_sg.Sg
module Stg = Rtcad_stg.Stg

type spec = {
  signal : int;
  on_set : Bdd.t;
  off_set : Bdd.t;
  dc_set : Bdd.t;
  rise_region : Bdd.t;
  fall_region : Bdd.t;
  high_region : Bdd.t;
  low_region : Bdd.t;
}

exception Conflict of int * string

let minterm_of_state sg s =
  let n = Stg.num_signals (Sg.stg sg) in
  Bdd.of_minterm n (Array.init n (fun i -> Sg.value sg s i))

let of_sg sg u =
  let on = ref Bdd.zero
  and off = ref Bdd.zero
  and rise = ref Bdd.zero
  and fall = ref Bdd.zero
  and high = ref Bdd.zero
  and low = ref Bdd.zero in
  Sg.iter_states
    (fun s ->
      let m = minterm_of_state sg s in
      let v = Sg.value sg s u and e = Sg.excited sg s u in
      let next = v <> e in
      if next then on := Bdd.bor !on m else off := Bdd.bor !off m;
      match (v, e) with
      | false, true -> rise := Bdd.bor !rise m
      | true, true -> fall := Bdd.bor !fall m
      | true, false -> high := Bdd.bor !high m
      | false, false -> low := Bdd.bor !low m)
    sg;
  if not (Bdd.is_zero (Bdd.band !on !off)) then
    raise
      (Conflict
         ( u,
           Format.asprintf "signal %s: a code requires both next values"
             (Stg.signal_name (Sg.stg sg) u) ));
  {
    signal = u;
    on_set = !on;
    off_set = !off;
    dc_set = Bdd.bnot (Bdd.bor !on !off);
    rise_region = !rise;
    fall_region = !fall;
    high_region = !high;
    low_region = !low;
  }

let all sg = List.map (of_sg sg) (Stg.non_input_signals (Sg.stg sg))

(* The same classification read off a symbolic view: the code regions
   arrive as BDDs directly (no per-state loop), and the on/off overlap
   check is the same CSC test [of_sg] performs minterm by minterm. *)
let of_view vw u =
  let module Symbolic = Rtcad_sg.Symbolic in
  let stg = Symbolic.stg (Symbolic.view_base vw) in
  let r = Symbolic.code_regions vw u in
  if not (Bdd.is_zero (Bdd.band r.Symbolic.on r.Symbolic.off)) then
    raise
      (Conflict
         ( u,
           Format.asprintf "signal %s: a code requires both next values"
             (Stg.signal_name stg u) ));
  {
    signal = u;
    on_set = r.Symbolic.on;
    off_set = r.Symbolic.off;
    dc_set = Bdd.bnot (Bdd.bor r.Symbolic.on r.Symbolic.off);
    rise_region = r.Symbolic.rise;
    fall_region = r.Symbolic.fall;
    high_region = r.Symbolic.high;
    low_region = r.Symbolic.low;
  }

let pp sg ppf spec =
  let stg = Sg.stg sg in
  let n = Stg.num_signals stg in
  Format.fprintf ppf "%s: on=%d off=%d dc=%d rise=%d fall=%d"
    (Stg.signal_name stg spec.signal)
    (Bdd.sat_count spec.on_set n) (Bdd.sat_count spec.off_set n)
    (Bdd.sat_count spec.dc_set n) (Bdd.sat_count spec.rise_region n)
    (Bdd.sat_count spec.fall_region n)
