(** Next-state functions extracted from a state graph.

    For every non-input signal [u] the states of the graph are classified
    by the implied next value of [u]: the {e on-set} (next value 1), the
    {e off-set} (next value 0), and the {e don't-care} set (codes not
    reachable in the graph — synthesizing from a relative-timing pruned
    graph therefore automatically gains the pruned codes as don't-cares).
    The excitation regions — where the signal is enabled to rise or to
    fall — drive generalized-C (set/reset) implementations and the
    monotonic-cover hazard check.  Lazy (early-enabling) relaxations are
    handled downstream at the cover level ({!Lazy_cover}).

    All sets are BDDs over the STG's signal indices. *)

type spec = {
  signal : int;
  on_set : Rtcad_logic.Bdd.t;
  off_set : Rtcad_logic.Bdd.t;
  dc_set : Rtcad_logic.Bdd.t;
  rise_region : Rtcad_logic.Bdd.t;  (** codes of states where [u+] is enabled *)
  fall_region : Rtcad_logic.Bdd.t;  (** codes of states where [u-] is enabled *)
  high_region : Rtcad_logic.Bdd.t;  (** codes where [u]=1 and stable *)
  low_region : Rtcad_logic.Bdd.t;  (** codes where [u]=0 and stable *)
}

exception Conflict of int * string
(** The graph violates CSC for this signal: some code is both in the
    on-set and the off-set.  Carries the signal and a description. *)

val of_sg : Rtcad_sg.Sg.t -> int -> spec
(** [of_sg sg u] computes the specification of signal [u].  Raises
    {!Conflict} on CSC violation. *)

val all : Rtcad_sg.Sg.t -> spec list
(** Specifications for every non-input signal. *)

val of_view : Rtcad_sg.Symbolic.view -> int -> spec
(** {!of_sg} read off a symbolic view instead of an explicit graph:
    same regions, same {!Conflict} condition and message. *)

val minterm_of_state : Rtcad_sg.Sg.t -> int -> Rtcad_logic.Bdd.t
(** Characteristic minterm of a state's code. *)

val pp : Rtcad_sg.Sg.t -> Format.formatter -> spec -> unit
