(** Netlist generation from synthesized implementations.

    By default every implementation becomes one {e atomic} gate — a
    complex SOP gate or a generalized-C element — which is what makes
    complex-gate synthesis speed-independent.  With [~decompose:true] the
    covers are instead expanded into discrete AND/OR gates plus a
    set-dominant latch; the resulting circuit is {e not} hazard-free under
    unbounded delays (each internal node gets its own delay) and needs
    relative-timing constraints to be verified — the "timing-aware logic
    decomposition" direction of the paper's Section 6.

    [Domino_cmos] renders gates in (un)footed domino — the style of the
    paper's FIFO circuits; [Static_cmos] uses complementary static gates.
    Input polarities ride on the nets (free bubbles), matching the cost
    model of {!Rtcad_netlist.Gate}. *)

type style = Static_cmos | Domino_cmos of { footed : bool }

val emit :
  ?style:style ->
  ?decompose:bool ->
  Rtcad_stg.Stg.t ->
  (int * Implement.impl) list ->
  Rtcad_netlist.Netlist.t
(** [emit stg impls] builds the netlist.  Every STG input becomes a
    primary input; every STG output is output-marked; initial net values
    come from the STG's initial signal values
    ({!Rtcad_netlist.Netlist.settle_initial} is applied).  Raises
    [Invalid_argument] if an implementation list contains an input signal
    or misses a non-input one. *)
