module Stg = Rtcad_stg.Stg
module Cube = Rtcad_logic.Cube
module Cover = Rtcad_logic.Cover
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate

type style = Static_cmos | Domino_cmos of { footed : bool }

let gate_style = function
  | Static_cmos -> Gate.Static
  | Domino_cmos { footed } -> Gate.Domino { footed }

(* Literals of a cube as (net, negated) gate inputs. *)
let cube_inputs net_of cube =
  match Cube.literals cube with
  | [] -> invalid_arg "Emit: constant-true cube in cover"
  | lits -> List.map (fun (v, pol) -> (net_of v, not pol)) lits

let cover_shape cover =
  List.map (fun c -> List.length (Cube.literals c)) (Cover.cubes cover)

let cover_flat_inputs net_of cover =
  List.concat_map (cube_inputs net_of) (Cover.cubes cover)

(* ---- Atomic emission: one gate per implementation. ---- *)

let drive_atomic nl style net_of out impl =
  match impl with
  | Implement.Complex cover -> (
    match Cover.cubes cover with
    | [] -> invalid_arg "Emit: empty cover"
    | [ cube ] when List.length (Cube.literals cube) = 1 ->
      let src, neg = List.nth (cube_inputs net_of cube) 0 in
      Netlist.set_driver nl out
        (Gate.make (if neg then Gate.Not else Gate.Buf) ~fanin:1)
        [ (src, false) ]
    | _ ->
      let shape = cover_shape cover in
      let ins = cover_flat_inputs net_of cover in
      Netlist.set_driver nl out
        (Gate.make ~style:(gate_style style) (Gate.Sop shape) ~fanin:(List.length ins))
        ins)
  | Implement.Gc { set; reset } ->
    let set_cubes = cover_shape set and reset_cubes = cover_shape reset in
    let ins = cover_flat_inputs net_of set @ cover_flat_inputs net_of reset in
    Netlist.set_driver nl out
      (Gate.make ~style:(gate_style style)
         (Gate.Sop_sr { set_cubes; reset_cubes })
         ~fanin:(List.length ins))
      ins

(* ---- Decomposed emission: discrete AND/OR gates (not SI-safe). ---- *)

(* The root of a cover as a (net, negated) pair, creating AND/OR gates as
   needed.  Fresh nets are prefixed with [name]. *)
let cover_root nl style net_of name cover =
  let counter = ref 0 in
  let fresh suffix =
    incr counter;
    Printf.sprintf "%s_%s%d" name suffix !counter
  in
  let cube_net cube =
    match cube_inputs net_of cube with
    | [ lit ] -> lit
    | ins ->
      let g = Gate.make ~style:(gate_style style) Gate.And ~fanin:(List.length ins) in
      (Netlist.add_gate nl g ins (fresh "and"), false)
  in
  match Cover.cubes cover with
  | [] -> invalid_arg "Emit: empty cover"
  | [ cube ] -> cube_net cube
  | cubes ->
    let ins = List.map cube_net cubes in
    let g = Gate.make ~style:(gate_style style) Gate.Or ~fanin:(List.length ins) in
    (Netlist.add_gate nl g ins (fresh "or"), false)

let drive_decomposed nl style net_of name out impl =
  match impl with
  | Implement.Complex cover -> (
    match Cover.cubes cover with
    | [] -> invalid_arg "Emit: empty cover"
    | [ cube ] -> (
      match cube_inputs net_of cube with
      | [ (src, neg) ] ->
        Netlist.set_driver nl out
          (Gate.make (if neg then Gate.Not else Gate.Buf) ~fanin:1)
          [ (src, false) ]
      | ins ->
        Netlist.set_driver nl out
          (Gate.make ~style:(gate_style style) Gate.And ~fanin:(List.length ins))
          ins)
    | cubes ->
      let counter = ref 0 in
      let cube_net cube =
        match cube_inputs net_of cube with
        | [ lit ] -> lit
        | ins ->
          incr counter;
          let g = Gate.make ~style:(gate_style style) Gate.And ~fanin:(List.length ins) in
          (Netlist.add_gate nl g ins (Printf.sprintf "%s_and%d" name !counter), false)
      in
      let ins = List.map cube_net cubes in
      Netlist.set_driver nl out
        (Gate.make ~style:(gate_style style) Gate.Or ~fanin:(List.length ins))
        ins)
  | Implement.Gc { set; reset } ->
    let s_net = cover_root nl style net_of (name ^ "_set") set in
    let r_net = cover_root nl style net_of (name ^ "_rst") reset in
    Netlist.set_driver nl out (Gate.make Gate.Set_reset ~fanin:2) [ s_net; r_net ]

let emit ?(style = Static_cmos) ?(decompose = false) stg impls =
  let nl = Netlist.create () in
  let n = Stg.num_signals stg in
  let nets = Array.make n (-1) in
  List.iter
    (fun s ->
      if Stg.is_input stg s then nets.(s) <- Netlist.input nl (Stg.signal_name stg s))
    (Stg.signals stg);
  List.iter
    (fun (s, _) ->
      if Stg.is_input stg s then invalid_arg "Emit: implementation for an input signal";
      nets.(s) <- Netlist.forward nl (Stg.signal_name stg s))
    impls;
  List.iter
    (fun s ->
      if nets.(s) < 0 then
        invalid_arg
          (Printf.sprintf "Emit: missing implementation for %s" (Stg.signal_name stg s)))
    (Stg.signals stg);
  let net_of s = nets.(s) in
  List.iter
    (fun (s, impl) ->
      let name = Stg.signal_name stg s in
      let out = nets.(s) in
      if decompose then drive_decomposed nl style net_of name out impl
      else drive_atomic nl style net_of out impl;
      if Stg.kind stg s = Stg.Output then Netlist.mark_output nl out)
    impls;
  List.iter
    (fun s -> Netlist.set_initial nl nets.(s) (Stg.initial_value stg s))
    (Stg.signals stg);
  Netlist.settle_initial ~frozen:(List.map net_of (Stg.signals stg)) nl;
  nl
