(** Lazy (early-enabling) cover relaxation.

    The paper's second source of optimization: a signal's set or reset
    cover may be {e extended} into states where the transition is not yet
    enabled by the specification — provided the events that would complete
    the enabling are known (assumed) to occur before the lazily-enabled
    signal actually fires.  The classic instance is the FIFO's state
    signal: the reset of [x] waits for both [lo-] and [ro-] in the
    specification, but the implementation fires off [ro-] alone, with
    "[lo-] before [x-]" back-annotated as a required timing constraint
    (Figure 5(c)).

    [relax] re-minimizes the covers over the enlarged interval and derives,
    for every cause of every transition instance, whether the relaxed
    cover still structurally waits for it ({e guaranteed}) or relies on
    timing (a {e Laziness}-origin assumption to back-annotate). *)

type result = {
  impl : Implement.impl;  (** possibly cheaper implementation *)
  constraints : Rtcad_rt.Assumption.t list;
      (** required orderings "cause before edge", origin [Laziness] *)
  guaranteed : (int * int) list;
      (** (cause transition, signal transition) orderings that the relaxed
          cover still enforces structurally *)
}

val relax : Rtcad_sg.Sg.t -> Nextstate.spec -> Implement.impl -> result
(** Only [Gc] implementations are relaxed; a [Complex] implementation is
    returned unchanged with no constraints. *)

val early_region : Rtcad_sg.Sg.t -> int -> Rtcad_logic.Bdd.t
(** [early_region sg t]: codes of reachable states in which transition [t]
    is not enabled, at least one of its input places is already marked,
    the signal still has [t]'s source value, and every still-pending cause
    is a non-input transition already enabled in that state (a race the
    back-annotated constraint can win) — the states into which [t]'s
    cover may lazily extend. *)
