(** Sum-of-products covers and two-level minimization.

    Minimization uses the Minato–Morreale ISOP construction: given an
    interval [on <= f <= on+dc] of Boolean functions represented as BDDs it
    produces an irredundant sum of prime-like implicants — the classic
    two-level result used for complex-gate synthesis. *)

type t

val of_cubes : Cube.t list -> t
val cubes : t -> Cube.t list

val bottom : t
(** The empty cover (constant false). *)

val is_false : t -> bool

val to_bdd : t -> Bdd.t
val eval : t -> (int -> bool) -> bool

val num_cubes : t -> int
val num_literals : t -> int

val irredundant_sop : on_set:Bdd.t -> dc_set:Bdd.t -> t
(** [irredundant_sop ~on_set ~dc_set] is a cover [c] with
    [on_set <= c <= on_set or dc_set], irredundant by construction.
    Raises [Invalid_argument] if [on_set] and [dc_set] overlap is allowed
    (they may overlap; the effective interval is
    [on_set - dc_set, on_set + dc_set]). *)

val single_cube_implementable : on_set:Bdd.t -> dc_set:Bdd.t -> Cube.t option
(** A single cube covering the interval, if one exists. *)

val is_monotonic_cover : t -> entered:Bdd.t list -> bool
(** Monotonic-cover condition used for hazard-freedom: each cube of the
    cover intersects at most one of the [entered] excitation regions.  The
    regions are given as BDDs over the same variables. *)

val cost_literals : t -> int
(** Total literal count — the usual proxy for complex-gate transistor cost
    (one transistor pair per literal). *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** Prints e.g. [a b' + c d]. *)
