(** Reduced ordered binary decision diagrams (ROBDDs).

    Nodes are hash-consed into a per-domain table, so structural equality
    of functions coincides with physical equality of their
    representations {e within a domain}.  Variables are non-negative
    integers; their order is a dynamic permutation over {e levels}
    (level 0 closest to the root).  The order starts as the identity
    (variable [v] at level [v]) and can be changed by {!reorder}; the
    current order is part of the domain state and survives
    {!clear_caches}.  {!restore_order} sifts back to the identity.

    Concurrency contract: every domain hash-conses into its own table
    (domain-local storage), so parallel tasks may build BDDs freely —
    but a BDD value must never be combined with, or compared to, a BDD
    built on another domain (node ids are only unique per domain).
    Build BDDs from scratch inside a parallel task and ship only id-free
    data (covers, counts, booleans) across the join.

    Memory: the unique table holds its nodes weakly.  A node stays alive
    exactly as long as something references it — an external BDD value,
    a live parent, or an operation-cache entry.  {!gc} (and
    {!clear_caches}, which calls it) drops the operation caches and runs
    a full major collection, reclaiming every node not pinned by an
    external reference. *)

type t

val zero : t
val one : t
val var : int -> t
(** [var i] is the function of the single variable [i].  [i >= 0]. *)

val nvar : int -> t
(** [nvar i] is the complement of [var i]. *)

val is_zero : t -> bool
val is_one : t -> bool

val equal : t -> t -> bool
val hash : t -> int
val id : t -> int
(** Unique node identifier (stable within a process). *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bimp : t -> t -> t
(** [bimp a b] is [not a or b]. *)

val bdiff : t -> t -> t
(** [bdiff a b] is [a and not b], computed in one fused pass — the
    complement of [b] is never materialised as nodes.  This is the
    frontier-subtraction operator of the symbolic fixpoint. *)

val ite : t -> t -> t -> t
(** [ite f g h] is [(f and g) or (not f and h)]. *)

val cofactor : t -> int -> bool -> t
(** [cofactor f v b] substitutes constant [b] for variable [v]. *)

val exists : int list -> t -> t
(** Existential quantification over the given variables (single cached
    descent; the list need not be sorted). *)

val forall : int list -> t -> t

val rel_product : int list -> t -> t -> t
(** [rel_product vars f g] is [exists vars (band f g)] computed as one
    fused and-exists pass — the relational-product image operator.  The
    intermediate conjunction is never materialised. *)

val rel_product_unprime : int list -> t -> t -> t
(** [rel_product_unprime vars f g] is [unprime (rel_product vars f g)]
    in a single bottom-up pass — the image operator of the symbolic
    engine.  Requires the {!unprime} discipline (pairs on adjacent
    levels, even above odd) and that the even partner of every primed
    variable occurring in [f]/[g] is listed in [vars]; the intermediate
    primed product is never materialized. *)

val unprime : t -> t
(** Rename every odd variable [2i+1] to its even partner [2i].  The
    argument must not mention both members of any pair, and each pair
    must occupy adjacent levels (even above odd) in the current order —
    the invariant {!reorder} maintains when given pair groups.  Used to
    map primed next-state variables back to present-state ones. *)

val compose : t -> int -> t -> t
(** [compose f v g] substitutes the function [g] for variable [v] in [f]:
    [ite g (cofactor f v true) (cofactor f v false)]. *)

val top_var : t -> int
(** Root variable (the one at the shallowest level in this function).
    Raises [Invalid_argument] on constants. *)

val level_of : int -> int
(** Current level of a variable in this domain's order.  Equal to the
    variable itself until a {!reorder}. *)

val support : t -> int list
(** Variables the function depends on, ascending by variable number. *)

val eval : t -> (int -> bool) -> bool
(** [eval f env] evaluates under the assignment [env]. *)

val sat_count : t -> int -> int
(** [sat_count f n] is the number of satisfying assignments over variables
    [0 .. n-1] (all of which must contain the support of [f]). *)

val sat_count_over : int list -> t -> int
(** [sat_count_over vars f] counts satisfying assignments over exactly
    the listed variables, which must include the support of [f].  The
    count cache persists across calls with the same variable set and
    order, so counting a growing set each sweep only pays for new
    nodes. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (variables not listed are free), or
    [None] if the function is [zero]. *)

val subset : t -> t -> bool
(** [subset f g] iff [f] implies [g].  No result nodes are built. *)

val intersects : t -> t -> bool
(** [intersects f g] iff [f and g] is satisfiable, decided without
    building the conjunction. *)

val of_minterm : int -> bool array -> t
(** [of_minterm n values] is the minterm over variables [0 .. n-1] with the
    given polarities. *)

val minterm : (int * bool) list -> t
(** Conjunction of the given literals (variables absent from the list are
    unconstrained). *)

val node_count : t -> int
(** Number of distinct internal nodes (size of the DAG). *)

val clear_caches : unit -> unit
(** Drop the operation caches and reclaim unpinned nodes ({!gc}).  BDD
    values held by the caller, and the variable order, survive. *)

type gc_stats = { gc_before : int; gc_after : int; reclaimed : int }

val gc : unit -> gc_stats
(** Drop the operation caches and run a full major collection: every
    node not reachable from an external reference is removed from the
    unique table.  Returns the table population before/after. *)

type reorder_stats = {
  swaps : int;  (** adjacent-level swaps performed *)
  nodes_before : int;  (** live nodes when the pass started *)
  nodes_after : int;  (** estimated live nodes at the end *)
  positions_moved : int;  (** groups parked at a new position *)
}

val reorder : ?groups:int list list -> unit -> reorder_stats
(** One pass of Rudell-style sifting over the current domain's unique
    table.  Each group (default: every variable alone) is kept as a
    contiguous block of levels and moved through every position via the
    swap-adjacent-levels primitive, settling where the table is
    smallest.  Nodes are rewired in place, so existing BDD values remain
    valid (they denote the same functions).  Runs a {!gc} first.
    Groups must be contiguous in the current order and must not
    overlap; levels not covered by any group are sifted alone. *)

val restore_order : unit -> unit
(** Sift the order back to the identity permutation (variable [v] at
    level [v]).  No-op when the order is already the identity.
    Structure-sensitive consumers (cover extraction) call this to
    re-establish the canonical order after a {!reorder}. *)

type table_stats = {
  unique_nodes : int;  (** live nodes in the weak unique table *)
  op_cache_entries : int;  (** occupied slots across all op caches *)
  op_cache_capacity : int;  (** total slots across all op caches *)
  op_cache_hits : int;
  op_cache_lookups : int;
  reorders : int;  (** sifting passes run in this domain *)
  reorder_swaps : int;  (** cumulative adjacent-level swaps *)
  gc_runs : int;
  gc_reclaimed : int;  (** cumulative nodes reclaimed by {!gc} *)
}

val table_stats : unit -> table_stats
(** Health of the current domain's tables.  Feed these to the metrics
    registry (gauges) to watch hash-consing growth, cache effectiveness
    and reclaim totals.  Op caches are direct-mapped and grow by load
    factor up to a cap, so [op_cache_capacity] changes over time.
    Counting [unique_nodes] walks the whole weak table; poll
    {!live_estimate} instead on hot paths. *)

val live_estimate : unit -> int
(** O(1) upper bound on the unique-table population: exact immediately
    after a {!gc} or {!live_recount}, an overcount in between (nodes
    minted since are counted even once dead).  Intended for cheap
    per-sweep pressure checks that trigger {!gc}/{!reorder}. *)

val live_recount : unit -> int
(** Exact unique-table population (one weak-table walk), which also
    re-tightens {!live_estimate}'s bound.  Call when the cheap bound
    crosses a threshold to decide whether pressure is real. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (shows the DAG shape, not a formula). *)
