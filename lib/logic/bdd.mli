(** Reduced ordered binary decision diagrams (ROBDDs).

    Nodes are hash-consed into a per-domain table, so structural equality
    of functions coincides with physical equality of their
    representations {e within a domain}.  Variables are non-negative
    integers ordered by their numeric value (variable 0 closest to the
    root).

    Concurrency contract: every domain hash-conses into its own table
    (domain-local storage), so parallel tasks may build BDDs freely —
    but a BDD value must never be combined with, or compared to, a BDD
    built on another domain (node ids are only unique per domain).
    Build BDDs from scratch inside a parallel task and ship only id-free
    data (covers, counts, booleans) across the join.

    The tables grow on demand; {!clear_caches} drops the current domain's
    operation caches (the unique table is kept so existing nodes stay
    valid). *)

type t

val zero : t
val one : t
val var : int -> t
(** [var i] is the function of the single variable [i].  [i >= 0]. *)

val nvar : int -> t
(** [nvar i] is the complement of [var i]. *)

val is_zero : t -> bool
val is_one : t -> bool

val equal : t -> t -> bool
val hash : t -> int
val id : t -> int
(** Unique node identifier (stable within a process). *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bimp : t -> t -> t
(** [bimp a b] is [not a or b]. *)

val ite : t -> t -> t -> t
(** [ite f g h] is [(f and g) or (not f and h)]. *)

val cofactor : t -> int -> bool -> t
(** [cofactor f v b] substitutes constant [b] for variable [v]. *)

val exists : int list -> t -> t
(** Existential quantification over the given variables (single cached
    descent; the list need not be sorted). *)

val forall : int list -> t -> t

val rel_product : int list -> t -> t -> t
(** [rel_product vars f g] is [exists vars (band f g)] computed as one
    fused and-exists pass — the relational-product image operator.  The
    intermediate conjunction is never materialised. *)

val compose : t -> int -> t -> t
(** [compose f v g] substitutes the function [g] for variable [v] in [f]:
    [ite g (cofactor f v true) (cofactor f v false)]. *)

val top_var : t -> int
(** Root variable.  Raises [Invalid_argument] on constants. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val eval : t -> (int -> bool) -> bool
(** [eval f env] evaluates under the assignment [env]. *)

val sat_count : t -> int -> int
(** [sat_count f n] is the number of satisfying assignments over variables
    [0 .. n-1] (all of which must contain the support of [f]). *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (variables not listed are free), or
    [None] if the function is [zero]. *)

val subset : t -> t -> bool
(** [subset f g] iff [f] implies [g]. *)

val of_minterm : int -> bool array -> t
(** [of_minterm n values] is the minterm over variables [0 .. n-1] with the
    given polarities. *)

val node_count : t -> int
(** Number of distinct internal nodes (size of the DAG). *)

val clear_caches : unit -> unit

type table_stats = { unique_nodes : int; op_cache_entries : int }

val table_stats : unit -> table_stats
(** Size of the current domain's unique table and the sum of its
    persistent operation-cache populations.  Feed these to the metrics
    registry (gauges) to watch hash-consing growth; {!clear_caches}
    resets the op-cache component but never the unique table. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (shows the DAG shape, not a formula). *)
