(** Exact two-level minimization (Quine–McCluskey with Petrick's method).

    {!Cover.irredundant_sop} (ISOP) is fast and irredundant but not
    guaranteed minimum.  This module computes a {e minimum-cube} cover for
    small functions: prime implicants by iterated consensus over the
    ON ∪ DC minterms, essential-prime extraction, and Petrick's method on
    the cyclic core.  Exponential in the worst case — intended for the
    controller-sized functions of this library (≲ 12 variables).

    Used to quantify how close the ISOP covers are to optimal (they match
    on every controller in the test suite), mirroring the exact-vs-
    heuristic split of classical two-level tools. *)

val minimum_cover : ?max_vars:int -> ?dc_set:Bdd.t -> Bdd.t -> Cover.t
(** [minimum_cover on_set] is a cover with the minimum number of cubes
    satisfying [on_set - dc_set <= cover <= on_set + dc_set] ([dc_set]
    defaults to false).  Variables are [0 .. n-1] where [n] is the
    largest support variable + 1.  Raises [Invalid_argument] if the
    support exceeds [max_vars] (default 12) or the Petrick search
    explodes. *)

val primes : ?max_vars:int -> Bdd.t -> Cube.t list
(** All prime implicants of the function (no don't-cares). *)

val is_minimum : ?max_vars:int -> ?dc_set:Bdd.t -> Bdd.t -> Cover.t -> bool
(** Whether the given cover's cube count equals the exact minimum. *)
