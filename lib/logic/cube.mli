(** Product terms (cubes) over integer variables.

    A cube is a conjunction of literals, at most one per variable.  The empty
    cube is the constant [true]. *)

type t

val top : t
(** The empty cube (constant true). *)

val of_literals : (int * bool) list -> t
(** [of_literals lits] builds a cube; [(v, true)] is the positive literal.
    Raises [Invalid_argument] if a variable appears with both polarities. *)

val literals : t -> (int * bool) list
(** Ascending by variable. *)

val size : t -> int
(** Number of literals. *)

val mem : t -> int -> bool option
(** Polarity of variable [v] in the cube, or [None] if absent. *)

val add : t -> int -> bool -> t option
(** [add c v b] conjoins literal; [None] if it contradicts an existing
    literal of opposite polarity. *)

val eval : t -> (int -> bool) -> bool
val to_bdd : t -> Bdd.t

val covers : t -> t -> bool
(** [covers c d]: every minterm of [d] satisfies [c] (i.e. the literal set of
    [c] is a subset of [d]'s). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp pp_var] prints e.g. [a b' c] using [pp_var] for variable names. *)
