(* A cube is an association list from variable to polarity, sorted by
   variable.  Cubes are small (tens of literals), so lists are fine. *)

type t = (int * bool) list

let top = []

let of_literals lits =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) lits in
  let rec check = function
    | (v1, b1) :: ((v2, b2) :: _ as rest) ->
      if v1 = v2 then
        if b1 = b2 then check rest else invalid_arg "Cube.of_literals: contradiction"
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  List.sort_uniq (fun (a, ab) (b, bb) -> compare (a, ab) (b, bb)) sorted

let literals c = c
let size = List.length
let mem c v = List.assoc_opt v c

let add c v b =
  match mem c v with
  | Some b' -> if b = b' then Some c else None
  | None -> Some (List.merge (fun (a, _) (b, _) -> Int.compare a b) c [ (v, b) ])

let eval c env = List.for_all (fun (v, b) -> env v = b) c

let to_bdd c =
  List.fold_left
    (fun acc (v, b) -> Bdd.band acc (if b then Bdd.var v else Bdd.nvar v))
    Bdd.one c

let covers c d = List.for_all (fun (v, b) -> List.assoc_opt v d = Some b) c
let equal (a : t) b = a = b
let compare (a : t) b = compare a b

let pp pp_var ppf c =
  if c = [] then Format.fprintf ppf "1"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
      (fun ppf (v, b) -> Format.fprintf ppf "%a%s" pp_var v (if b then "" else "'"))
      ppf c
