(* Cubes are (mask, value) machine integers: a set bit in [mask] means the
   variable is specified, with its polarity in [value] (bits outside the
   mask are zero). *)

let support_size f g =
  match List.rev (List.sort_uniq Int.compare (Bdd.support f @ Bdd.support g)) with
  | [] -> 0
  | v :: _ -> v + 1

let minterms n f =
  let acc = ref [] in
  for m = (1 lsl n) - 1 downto 0 do
    if Bdd.eval f (fun v -> (m lsr v) land 1 = 1) then acc := m :: !acc
  done;
  !acc

(* Quine-McCluskey prime generation by iterated merging. *)
let primes_of_minterms n ms =
  let full_mask = (1 lsl n) - 1 in
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let rec iterate current primes =
    if S.is_empty current then primes
    else begin
      let items = S.elements current in
      let merged = Hashtbl.create 64 in
      let next = ref S.empty in
      List.iteri
        (fun i (m1, v1) ->
          List.iteri
            (fun j (m2, v2) ->
              if j > i && m1 = m2 then begin
                let diff = v1 lxor v2 in
                if diff <> 0 && diff land (diff - 1) = 0 then begin
                  Hashtbl.replace merged (m1, v1) ();
                  Hashtbl.replace merged (m2, v2) ();
                  next := S.add (m1 land lnot diff, v1 land lnot diff) !next
                end
              end)
            items)
        items;
      let unmerged =
        List.filter (fun c -> not (Hashtbl.mem merged c)) items
      in
      iterate !next (unmerged @ primes)
    end
  in
  iterate (S.of_list (List.map (fun m -> (full_mask, m)) ms)) []

let covers (mask, value) m = m land mask = value

let cube_of n (mask, value) =
  Cube.of_literals
    (List.filter_map
       (fun v ->
         if (mask lsr v) land 1 = 1 then Some (v, (value lsr v) land 1 = 1) else None)
       (List.init n Fun.id))

exception Found of (int * int) list

(* Minimum-cardinality prime subset covering [targets]: iterative
   deepening over subset size with a simple work cap. *)
let min_cover_exact primes targets =
  let np = List.length primes in
  let parr = Array.of_list primes in
  let work = ref 0 in
  let rec try_size k chosen start remaining =
    incr work;
    if !work > 3_000_000 then invalid_arg "Exact: Petrick search too large";
    match remaining with
    | [] -> raise (Found chosen)
    | m :: _ when k > 0 ->
      (* Branch on primes covering the first uncovered minterm. *)
      for i = start to np - 1 do
        if covers parr.(i) m then begin
          let remaining' = List.filter (fun m' -> not (covers parr.(i) m')) remaining in
          try_size (k - 1) (parr.(i) :: chosen) 0 remaining'
        end
      done
    | _ -> ()
  in
  let rec deepen k =
    if k > np then invalid_arg "Exact: no cover exists"
    else
      match try_size k [] 0 targets with
      | () -> deepen (k + 1)
      | exception Found c -> c
  in
  if targets = [] then [] else deepen 1

let minimum_cover ?(max_vars = 12) ?(dc_set = Bdd.zero) on_set =
  let n = support_size on_set dc_set in
  if n > max_vars then invalid_arg "Exact.minimum_cover: too many variables";
  if Bdd.is_zero on_set then Cover.of_cubes []
  else begin
    let upper = Bdd.bor on_set dc_set in
    let required = Bdd.band on_set (Bdd.bnot dc_set) in
    let primes = primes_of_minterms n (minterms n upper) in
    let targets = minterms n required in
    (* Essential primes first. *)
    let essential =
      List.filter_map
        (fun m ->
          match List.filter (fun p -> covers p m) primes with
          | [ only ] -> Some only
          | _ -> None)
        targets
      |> List.sort_uniq compare
    in
    let remaining_targets =
      List.filter (fun m -> not (List.exists (fun p -> covers p m) essential)) targets
    in
    let candidate_primes =
      List.filter
        (fun p -> List.exists (fun m -> covers p m) remaining_targets)
        primes
    in
    let rest = min_cover_exact candidate_primes remaining_targets in
    Cover.of_cubes (List.map (cube_of n) (essential @ rest))
  end

let primes ?(max_vars = 12) f =
  let n = support_size f Bdd.zero in
  if n > max_vars then invalid_arg "Exact.primes: too many variables";
  List.map (cube_of n) (primes_of_minterms n (minterms n f))

let is_minimum ?max_vars ?dc_set on_set cover =
  let best = minimum_cover ?max_vars ?dc_set on_set in
  Cover.num_cubes cover = Cover.num_cubes best
