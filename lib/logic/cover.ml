type t = Cube.t list

let of_cubes cubes = cubes
let cubes c = c
let bottom = []
let is_false c = c = []
let to_bdd c = List.fold_left (fun acc cube -> Bdd.bor acc (Cube.to_bdd cube)) Bdd.zero c
let eval c env = List.exists (fun cube -> Cube.eval cube env) c
let num_cubes = List.length
let num_literals c = List.fold_left (fun acc cube -> acc + Cube.size cube) 0 c

(* Minato-Morreale ISOP.  Arguments are the interval bounds:
   [l] must be covered, anything outside [u] must not.  Invariant: l <= u. *)
let rec isop l u =
  if Bdd.is_zero l then ([], Bdd.zero)
  else if Bdd.is_one u then ([ Cube.top ], Bdd.one)
  else begin
    let v =
      let tl = if Bdd.is_zero l || Bdd.is_one l then max_int else Bdd.top_var l in
      let tu = if Bdd.is_zero u || Bdd.is_one u then max_int else Bdd.top_var u in
      min tl tu
    in
    let l0 = Bdd.cofactor l v false and l1 = Bdd.cofactor l v true in
    let u0 = Bdd.cofactor u v false and u1 = Bdd.cofactor u v true in
    (* Minterms that can only be covered with literal v' (resp. v). *)
    let c0, f0 = isop (Bdd.band l0 (Bdd.bnot u1)) u0 in
    let c1, f1 = isop (Bdd.band l1 (Bdd.bnot u0)) u1 in
    let l0' = Bdd.band l0 (Bdd.bnot f0) in
    let l1' = Bdd.band l1 (Bdd.bnot f1) in
    let cd, fd = isop (Bdd.bor l0' l1') (Bdd.band u0 u1) in
    let lit_cubes pol cs =
      List.filter_map (fun cube -> Cube.add cube v pol) cs
    in
    let cover = lit_cubes false c0 @ lit_cubes true c1 @ cd in
    let f =
      Bdd.bor
        (Bdd.bor (Bdd.band (Bdd.nvar v) f0) (Bdd.band (Bdd.var v) f1))
        fd
    in
    (cover, f)
  end

let irredundant_sop ~on_set ~dc_set =
  let l = Bdd.band on_set (Bdd.bnot dc_set) in
  let u = Bdd.bor on_set dc_set in
  let cover, f = isop l u in
  (* Sanity: l <= f <= u. *)
  assert (Bdd.subset l f);
  assert (Bdd.subset f u);
  cover

let single_cube_implementable ~on_set ~dc_set =
  let l = Bdd.band on_set (Bdd.bnot dc_set) in
  if Bdd.is_zero l then Some Cube.top
  else begin
    let u = Bdd.bor on_set dc_set in
    (* The smallest cube containing l: for each support var of l, include the
       literal if l implies it.  Then check the cube fits under u. *)
    let vars = Bdd.support l in
    let lits =
      List.filter_map
        (fun v ->
          if Bdd.subset l (Bdd.var v) then Some (v, true)
          else if Bdd.subset l (Bdd.nvar v) then Some (v, false)
          else None)
        vars
    in
    let cube = Cube.of_literals lits in
    if Bdd.subset (Cube.to_bdd cube) u then Some cube else None
  end

let is_monotonic_cover cover ~entered =
  let hits cube =
    let cb = Cube.to_bdd cube in
    List.fold_left
      (fun acc region -> if Bdd.is_zero (Bdd.band cb region) then acc else acc + 1)
      0 entered
  in
  List.for_all (fun cube -> hits cube <= 1) cover

let cost_literals = num_literals

let pp pp_var ppf c =
  if c = [] then Format.fprintf ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
      (Cube.pp pp_var) ppf c
