(* Hash-consed ROBDD with a global unique table and binary-op caches.
   Complement edges are not used; negation is a cached recursive op. *)

type t = Zero | One | Node of node
and node = { var : int; lo : t; hi : t; nid : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.nid
let equal a b = a == b
let hash t = id t

module Unique_key = struct
  type nonrec t = int * int * int (* var, lo id, hi id *)

  let equal (a1, a2, a3) (b1, b2, b3) = a1 = b1 && a2 = b2 && a3 = b3
  let hash = Hashtbl.hash
end

module Unique = Hashtbl.Make (Unique_key)

let unique : t Unique.t = Unique.create 4096
let next_id = ref 2

let mk var lo hi =
  if equal lo hi then lo
  else
    let key = (var, id lo, id hi) in
    match Unique.find_opt unique key with
    | Some n -> n
    | None ->
      let n = Node { var; lo; hi; nid = !next_id } in
      incr next_id;
      Unique.add unique key n;
      n

let zero = Zero
let one = One

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk i One Zero

let is_zero t = equal t Zero
let is_one t = equal t One

let top_var = function
  | Zero | One -> invalid_arg "Bdd.top_var: constant"
  | Node n -> n.var

(* Operation caches. *)
module Cache1 = Hashtbl.Make (struct
  type nonrec t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Cache2 = Hashtbl.Make (struct
  type nonrec t = int * int

  let equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2
  let hash = Hashtbl.hash
end)

let not_cache : t Cache1.t = Cache1.create 1024
let and_cache : t Cache2.t = Cache2.create 4096
let xor_cache : t Cache2.t = Cache2.create 1024

let clear_caches () =
  Cache1.clear not_cache;
  Cache2.clear and_cache;
  Cache2.clear xor_cache

let rec bnot t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node n -> (
    match Cache1.find_opt not_cache n.nid with
    | Some r -> r
    | None ->
      let r = mk n.var (bnot n.lo) (bnot n.hi) in
      Cache1.add not_cache n.nid r;
      r)

let split v t =
  match t with
  | Zero | One -> (t, t)
  | Node n -> if n.var = v then (n.lo, n.hi) else (t, t)

let rec band a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Node na, Node nb ->
    if na.nid = nb.nid then a
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt and_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk v (band a0 b0) (band a1 b1) in
        Cache2.add and_cache key r;
        r)

let bor a b = bnot (band (bnot a) (bnot b))
let bimp a b = bor (bnot a) b

let rec bxor a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | One, x | x, One -> bnot x
  | Node na, Node nb ->
    if na.nid = nb.nid then Zero
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt xor_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk v (bxor a0 b0) (bxor a1 b1) in
        Cache2.add xor_cache key r;
        r)

let ite f g h = bor (band f g) (band (bnot f) h)

let rec cofactor t v b =
  match t with
  | Zero | One -> t
  | Node n ->
    if n.var > v then t
    else if n.var = v then if b then n.hi else n.lo
    else mk n.var (cofactor n.lo v b) (cofactor n.hi v b)

let exists_one v t = bor (cofactor t v false) (cofactor t v true)
let forall_one v t = band (cofactor t v false) (cofactor t v true)
let exists vars t = List.fold_left (fun acc v -> exists_one v acc) t vars
let forall vars t = List.fold_left (fun acc v -> forall_one v acc) t vars

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval t env =
  match t with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let sat_count t n =
  let cache = Hashtbl.create 64 in
  (* count over variables [from .. n-1] *)
  let rec go t from =
    match t with
    | Zero -> 0
    | One -> 1 lsl (n - from)
    | Node node -> (
      let key = (node.nid, from) in
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let skip = node.var - from in
        let c = (1 lsl skip) * (go node.lo (node.var + 1) + go node.hi (node.var + 1)) in
        Hashtbl.add cache key c;
        c)
  in
  go t 0

let any_sat t =
  let rec go t acc =
    match t with
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n ->
      if is_zero n.hi then go n.lo ((n.var, false) :: acc)
      else go n.hi ((n.var, true) :: acc)
  in
  go t []

let subset f g = is_zero (band f (bnot g))

let of_minterm n values =
  if Array.length values < n then invalid_arg "Bdd.of_minterm";
  let rec go i = if i >= n then One else mk i (if values.(i) then Zero else go (i + 1)) (if values.(i) then go (i + 1) else Zero) in
  go 0

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

let rec pp ppf = function
  | Zero -> Format.fprintf ppf "0"
  | One -> Format.fprintf ppf "1"
  | Node n -> Format.fprintf ppf "(x%d ? %a : %a)" n.var pp n.hi pp n.lo
