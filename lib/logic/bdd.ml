(* Hash-consed ROBDD with a per-domain weak unique table, direct-mapped
   operation caches and dynamic variable reordering.

   The tables live in domain-local storage so that independent tasks of a
   parallel region (per-signal synthesis, CSC trial insertions, fuzz
   cases) can build BDDs concurrently without sharing mutable state.  The
   contract is that BDD values never migrate between domains: node ids
   are only unique per domain, so a node built on one domain must not be
   combined with (or compared to) nodes built on another.  All call sites
   in this repository construct their BDDs from scratch inside the task
   and ship only id-free data (cube covers, counts, bools) across the
   join.  Each entry point fetches the domain state once and threads it
   through the recursion, keeping the DLS lookup off the inner loops.

   Garbage collection.  The unique table holds its nodes weakly: a node
   is pinned exactly as long as some OCaml value references it (an
   external root, a cached op result, or a live parent node), and the
   runtime's major collector reclaims the rest.  [gc] forces a full
   cycle after dropping the op caches (whose strong references would
   otherwise pin every memoized intermediate) and reports the reclaim;
   [clear_caches] does the same so long campaigns (bench reps, fuzz
   cases) return the table to its pinned baseline instead of accreting
   forever.

   Variable order.  Every variable [v] sits at a level [level.(v)]; all
   ordering decisions (branch choice in the binary ops, cofactor early
   exit, cube construction, minterm building, model counting) go through
   the level maps, with a fast path when the order is the identity.
   [reorder] runs one pass of Rudell-style sifting built on an
   in-place swap-adjacent-levels primitive: a node's record is rewired
   to the swapped shape without changing its identity, so every live BDD
   value (and every op-cache entry, which memoizes functions of node
   identities) remains valid across a reorder.  The order is part of the
   domain state and survives [clear_caches]; [restore_order] sifts back
   to the identity permutation. *)

type t = Zero | One | Node of node

and node = {
  mutable var : int;
  mutable lo : t;
  mutable hi : t;
  nid : int;
  (* The one canonical [Node] box for this record, so that physical
     equality on [t] values coincides with physical equality on the
     hash-consed records.  Set once, right after the record wins the
     unique-table merge. *)
  mutable self : t;
}

let id = function Zero -> 0 | One -> 1 | Node n -> n.nid
let equal a b = a == b
let hash t = id t

(* Weak hash set of nodes: the unique table.  Liveness is OCaml
   reachability, so dropping the last reference to a BDD value is what
   un-pins its nodes. *)
module Weak_table = Weak.Make (struct
  type nonrec t = node

  let equal a b = a.var = b.var && a.lo == b.lo && a.hi == b.hi

  let hash n =
    (n.var * 0x9e3779b1)
    lxor (id n.lo * 0x85ebca6b)
    lxor (id n.hi * 0xc2b2ae35)
    land max_int
end)

(* --- direct-mapped operation caches ----------------------------------- *)

(* CUDD-style computed tables: power-of-two arrays probed by a
   multiplicative hash of up to three int keys, overwriting on collision.
   No per-probe allocation (no tuple keys, no option results), bounded
   memory, and a load-factor-driven growth: when more than half the slots
   are occupied the table quadruples (up to a cap), re-placing the
   surviving entries.  Eviction only costs recomputation — results are
   exact either way. *)

let absent = Node { var = -2; lo = Zero; hi = Zero; nid = -2; self = Zero }

type tcache = {
  mutable k1 : int array; (* -1 = empty slot *)
  mutable k2 : int array;
  mutable k3 : int array;
  mutable data : t array;
  mutable mask : int;
  mutable occupied : int;
  mutable lookups : int;
  mutable hits : int;
  max_bits : int;
}

let tcache_create bits ~max_bits =
  let n = 1 lsl bits in
  {
    k1 = Array.make n (-1);
    k2 = Array.make n 0;
    k3 = Array.make n 0;
    data = Array.make n absent;
    mask = n - 1;
    occupied = 0;
    lookups = 0;
    hits = 0;
    max_bits;
  }

let[@inline] cache_slot mask a b c =
  ((a * 0x9e3779b1) lxor (b * 0x85ebca6b) lxor (c * 0xc2b2ae35)) land mask

let tcache_clear c =
  Array.fill c.k1 0 (Array.length c.k1) (-1);
  Array.fill c.data 0 (Array.length c.data) absent;
  c.occupied <- 0

(* Returns [absent] on miss; never stored as a value. *)
let[@inline] tcache_find c a b d =
  c.lookups <- c.lookups + 1;
  let i = cache_slot c.mask a b d in
  if c.k1.(i) = a && c.k2.(i) = b && c.k3.(i) = d then begin
    c.hits <- c.hits + 1;
    c.data.(i)
  end
  else absent

let tcache_grow c =
  let n = Array.length c.k1 * 4 in
  let k1 = Array.make n (-1)
  and k2 = Array.make n 0
  and k3 = Array.make n 0
  and data = Array.make n absent in
  let mask = n - 1 in
  let occupied = ref 0 in
  Array.iteri
    (fun i a ->
      if a >= 0 then begin
        let j = cache_slot mask a c.k2.(i) c.k3.(i) in
        if k1.(j) < 0 then incr occupied;
        k1.(j) <- a;
        k2.(j) <- c.k2.(i);
        k3.(j) <- c.k3.(i);
        data.(j) <- c.data.(i)
      end)
    c.k1;
  c.k1 <- k1;
  c.k2 <- k2;
  c.k3 <- k3;
  c.data <- data;
  c.mask <- mask;
  c.occupied <- !occupied

let[@inline] tcache_store c a b d v =
  if 2 * c.occupied > Array.length c.k1 && Array.length c.k1 < 1 lsl c.max_bits
  then tcache_grow c;
  let i = cache_slot c.mask a b d in
  if c.k1.(i) < 0 then c.occupied <- c.occupied + 1;
  c.k1.(i) <- a;
  c.k2.(i) <- b;
  c.k3.(i) <- d;
  c.data.(i) <- v

(* Int-valued variant (model counts, boolean predicates as 0/1).  Misses
   return [min_int]. *)
type icache = {
  mutable ik1 : int array;
  mutable ik2 : int array;
  mutable ik3 : int array;
  mutable idata : int array;
  mutable imask : int;
  mutable ioccupied : int;
  mutable ilookups : int;
  mutable ihits : int;
  imax_bits : int;
}

let icache_create bits ~max_bits =
  let n = 1 lsl bits in
  {
    ik1 = Array.make n (-1);
    ik2 = Array.make n 0;
    ik3 = Array.make n 0;
    idata = Array.make n 0;
    imask = n - 1;
    ioccupied = 0;
    ilookups = 0;
    ihits = 0;
    imax_bits = max_bits;
  }

let icache_clear c =
  Array.fill c.ik1 0 (Array.length c.ik1) (-1);
  c.ioccupied <- 0

let[@inline] icache_find c a b d =
  c.ilookups <- c.ilookups + 1;
  let i = cache_slot c.imask a b d in
  if c.ik1.(i) = a && c.ik2.(i) = b && c.ik3.(i) = d then begin
    c.ihits <- c.ihits + 1;
    c.idata.(i)
  end
  else min_int

let icache_grow c =
  let n = Array.length c.ik1 * 4 in
  let k1 = Array.make n (-1)
  and k2 = Array.make n 0
  and k3 = Array.make n 0
  and data = Array.make n 0 in
  let mask = n - 1 in
  let occupied = ref 0 in
  Array.iteri
    (fun i a ->
      if a >= 0 then begin
        let j = cache_slot mask a c.ik2.(i) c.ik3.(i) in
        if k1.(j) < 0 then incr occupied;
        k1.(j) <- a;
        k2.(j) <- c.ik2.(i);
        k3.(j) <- c.ik3.(i);
        data.(j) <- c.idata.(i)
      end)
    c.ik1;
  c.ik1 <- k1;
  c.ik2 <- k2;
  c.ik3 <- k3;
  c.idata <- data;
  c.imask <- mask;
  c.ioccupied <- !occupied

let[@inline] icache_store c a b d v =
  if
    2 * c.ioccupied > Array.length c.ik1
    && Array.length c.ik1 < 1 lsl c.imax_bits
  then icache_grow c;
  let i = cache_slot c.imask a b d in
  if c.ik1.(i) < 0 then c.ioccupied <- c.ioccupied + 1;
  c.ik1.(i) <- a;
  c.ik2.(i) <- b;
  c.ik3.(i) <- d;
  c.idata.(i) <- v

(* --- domain state ------------------------------------------------------ *)

type state = {
  unique : Weak_table.t;
  mutable next_id : int;
  (* level.(v) is the position of variable v (0 = root-most); var_at is
     the inverse permutation.  Both extended by the identity on demand.
     [identity] short-circuits every level lookup on the (common) path
     where no reorder has happened. *)
  mutable level : int array;
  mutable var_at : int array;
  mutable identity : bool;
  (* Nodes carrying each variable: maintained by [mk] and the swap
     primitive, refreshed exactly by [gc]/[reorder] (dead nodes drift it
     upward in between — it is a sifting metric, not an invariant). *)
  mutable var_count : int array;
  mutable reorders : int;
  mutable reorder_swaps : int;
  mutable gc_runs : int;
  mutable reclaimed_total : int;
  (* Cheap population bound: live nodes at the last collection plus ids
     minted since.  [Weak_table.count] walks every bucket, far too slow
     for a per-sweep pressure check. *)
  mutable pop_floor : int;
  mutable id_at_gc : int;
  (* Validity tag for the persistent model-count cache: the var-set cube
     id it was built for, and the order generation (bumped by every
     reorder/restore, which change ranks). *)
  mutable sat_gen : int;
  mutable sat_tag : int;
  mutable sat_seen_gen : int;
  mutable sat_rank : int array;
  mutable sat_width : int;
  not_c : tcache;
  and_c : tcache;
  or_c : tcache;
  xor_c : tcache;
  diff_c : tcache;
  exists_c : tcache;
  forall_c : tcache;
  andex_c : tcache;
  andexu_c : tcache;
  unprime_c : tcache;
  pred_c : icache; (* leq / intersects, discriminated by k3 *)
  sat_c : icache;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        unique = Weak_table.create 4096;
        next_id = 2;
        level = Array.init 64 Fun.id;
        var_at = Array.init 64 Fun.id;
        identity = true;
        var_count = Array.make 64 0;
        reorders = 0;
        reorder_swaps = 0;
        gc_runs = 0;
        reclaimed_total = 0;
        pop_floor = 0;
        id_at_gc = 2;
        sat_gen = 0;
        sat_tag = -1;
        sat_seen_gen = -1;
        sat_rank = [||];
        sat_width = 0;
        not_c = tcache_create 11 ~max_bits:20;
        and_c = tcache_create 13 ~max_bits:22;
        or_c = tcache_create 13 ~max_bits:22;
        xor_c = tcache_create 11 ~max_bits:20;
        diff_c = tcache_create 12 ~max_bits:21;
        exists_c = tcache_create 12 ~max_bits:21;
        forall_c = tcache_create 9 ~max_bits:18;
        andex_c = tcache_create 13 ~max_bits:22;
        andexu_c = tcache_create 13 ~max_bits:22;
        unprime_c = tcache_create 9 ~max_bits:18;
        pred_c = icache_create 11 ~max_bits:20;
        sat_c = icache_create 11 ~max_bits:20;
      })

let state () = Domain.DLS.get state_key

let grow_vars st v =
  let n = Array.length st.level in
  if v >= n then begin
    let n' = max (v + 1) (2 * n) in
    let level = Array.init n' (fun i -> if i < n then st.level.(i) else i) in
    let var_at = Array.init n' (fun i -> if i < n then st.var_at.(i) else i) in
    let var_count =
      Array.init n' (fun i -> if i < n then st.var_count.(i) else 0)
    in
    st.level <- level;
    st.var_at <- var_at;
    st.var_count <- var_count
  end

let[@inline] lvl st v = if st.identity then v else st.level.(v)

(* Variable of the shallower (closer to the root) of two nodes. *)
let[@inline] top2 st va vb =
  if st.identity then min va vb
  else if st.level.(va) <= st.level.(vb) then va
  else vb

let all_tcaches st =
  [
    st.not_c; st.and_c; st.or_c; st.xor_c; st.diff_c; st.exists_c;
    st.forall_c; st.andex_c; st.andexu_c; st.unprime_c;
  ]

let drop_op_caches st =
  List.iter tcache_clear (all_tcaches st);
  icache_clear st.pred_c;
  icache_clear st.sat_c;
  st.sat_tag <- -1

(* Reclaim: unpinned nodes die on a full major cycle once the op caches
   stop holding them. *)
type gc_stats = { gc_before : int; gc_after : int; reclaimed : int }

let gc_st st =
  let before = Weak_table.count st.unique in
  drop_op_caches st;
  Gc.full_major ();
  let after = Weak_table.count st.unique in
  Array.fill st.var_count 0 (Array.length st.var_count) 0;
  Weak_table.iter
    (fun n ->
      grow_vars st n.var;
      st.var_count.(n.var) <- st.var_count.(n.var) + 1)
    st.unique;
  st.gc_runs <- st.gc_runs + 1;
  st.reclaimed_total <- st.reclaimed_total + max 0 (before - after);
  st.pop_floor <- after;
  st.id_at_gc <- st.next_id;
  { gc_before = before; gc_after = after; reclaimed = before - after }

let gc () = gc_st (state ())

let clear_caches () =
  (* Dropping the op caches un-pins their memoized intermediates; the
     full major cycle then returns the weak unique table to whatever the
     caller still references (the pinned baseline), instead of letting
     bench reps and fuzz cases accrete garbage forever. *)
  ignore (gc_st (state ()))

type table_stats = {
  unique_nodes : int;
  op_cache_entries : int;
  op_cache_capacity : int;
  op_cache_hits : int;
  op_cache_lookups : int;
  reorders : int;
  reorder_swaps : int;
  gc_runs : int;
  gc_reclaimed : int;
}

let table_stats () =
  let st = state () in
  let entries = ref (st.pred_c.ioccupied + st.sat_c.ioccupied) in
  let capacity =
    ref (Array.length st.pred_c.ik1 + Array.length st.sat_c.ik1)
  in
  let hits = ref (st.pred_c.ihits + st.sat_c.ihits) in
  let lookups = ref (st.pred_c.ilookups + st.sat_c.ilookups) in
  List.iter
    (fun c ->
      entries := !entries + c.occupied;
      capacity := !capacity + Array.length c.k1;
      hits := !hits + c.hits;
      lookups := !lookups + c.lookups)
    (all_tcaches st);
  {
    unique_nodes = Weak_table.count st.unique;
    op_cache_entries = !entries;
    op_cache_capacity = !capacity;
    op_cache_hits = !hits;
    op_cache_lookups = !lookups;
    reorders = st.reorders;
    reorder_swaps = st.reorder_swaps;
    gc_runs = st.gc_runs;
    gc_reclaimed = st.reclaimed_total;
  }

(* O(1) upper bound on the unique-table population: exact right after a
   [gc], an overcount in between (nodes minted since are counted even
   once dead).  [table_stats] walks every weak bucket for the exact
   figure — far too slow for the per-sweep pressure polls of the
   fixpoint engines, whose valves only fire earlier on an overcount. *)
let live_estimate () =
  let st = state () in
  st.pop_floor + (st.next_id - st.id_at_gc)

(* Exact population, and re-tightens {!live_estimate}'s bound (minted
   intermediates that have already died stop being counted).  One weak
   table walk — call it when the cheap bound crosses a threshold, not
   per sweep. *)
let live_recount () =
  let st = state () in
  let n = Weak_table.count st.unique in
  st.pop_floor <- n;
  st.id_at_gc <- st.next_id;
  n

(* --- node construction ------------------------------------------------- *)

let mk st var lo hi =
  if lo == hi then lo
  else begin
    if var >= Array.length st.level then grow_vars st var;
    let cand = { var; lo; hi; nid = st.next_id; self = Zero } in
    let n = Weak_table.merge st.unique cand in
    if n == cand then begin
      cand.self <- Node cand;
      st.next_id <- st.next_id + 1;
      st.var_count.(var) <- st.var_count.(var) + 1
    end;
    n.self
  end

let zero = Zero
let one = One

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk (state ()) i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk (state ()) i One Zero

let is_zero t = equal t Zero
let is_one t = equal t One

let top_var = function
  | Zero | One -> invalid_arg "Bdd.top_var: constant"
  | Node n -> n.var

let level_of v =
  if v < 0 then invalid_arg "Bdd.level_of";
  let st = state () in
  if v < Array.length st.level then st.level.(v) else v

(* --- boolean connectives ----------------------------------------------- *)

let rec bnot_st st t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node n -> (
    match tcache_find st.not_c n.nid 0 0 with
    | r when r != absent -> r
    | _ ->
      let r = mk st n.var (bnot_st st n.lo) (bnot_st st n.hi) in
      tcache_store st.not_c n.nid 0 0 r;
      r)

let bnot t = bnot_st (state ()) t

let split v t =
  match t with
  | Zero | One -> (t, t)
  | Node n -> if n.var = v then (n.lo, n.hi) else (t, t)

let rec band_st st a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Node na, Node nb ->
    if na == nb then a
    else
      let i1, i2 =
        if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid)
      in
      (match tcache_find st.and_c i1 i2 0 with
      | r when r != absent -> r
      | _ ->
        let v = top2 st na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (band_st st a0 b0) (band_st st a1 b1) in
        tcache_store st.and_c i1 i2 0 r;
        r)

let band a b = band_st (state ()) a b

let rec bor_st st a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, x | x, Zero -> x
  | Node na, Node nb ->
    if na == nb then a
    else
      let i1, i2 =
        if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid)
      in
      (match tcache_find st.or_c i1 i2 0 with
      | r when r != absent -> r
      | _ ->
        let v = top2 st na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (bor_st st a0 b0) (bor_st st a1 b1) in
        tcache_store st.or_c i1 i2 0 r;
        r)

let bor a b = bor_st (state ()) a b

(* a ∧ ¬b, fused: the complement is never materialised as nodes.  The
   symbolic fixpoint subtracts the reached set from every image with
   this. *)
let rec bdiff_st st a b =
  match (a, b) with
  | Zero, _ | _, One -> Zero
  | a, Zero -> a
  | One, b -> bnot_st st b
  | Node na, Node nb ->
    if na == nb then Zero
    else (
      match tcache_find st.diff_c na.nid nb.nid 0 with
      | r when r != absent -> r
      | _ ->
        let v = top2 st na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (bdiff_st st a0 b0) (bdiff_st st a1 b1) in
        tcache_store st.diff_c na.nid nb.nid 0 r;
        r)

let bdiff a b = bdiff_st (state ()) a b
let bimp a b = bnot_st (state ()) (bdiff_st (state ()) a b)

let rec bxor_st st a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | One, x | x, One -> bnot_st st x
  | Node na, Node nb ->
    if na == nb then Zero
    else
      let i1, i2 =
        if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid)
      in
      (match tcache_find st.xor_c i1 i2 0 with
      | r when r != absent -> r
      | _ ->
        let v = top2 st na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (bxor_st st a0 b0) (bxor_st st a1 b1) in
        tcache_store st.xor_c i1 i2 0 r;
        r)

let bxor a b = bxor_st (state ()) a b

let ite f g h =
  let st = state () in
  bor_st st (band_st st f g) (band_st st (bnot_st st f) h)

(* --- predicates (no result nodes built) -------------------------------- *)

let pred_leq = 1
let pred_inter = 2

let rec leq_st st a b =
  match (a, b) with
  | Zero, _ | _, One -> true
  | _, Zero -> false (* a <> Zero here *)
  | One, _ -> false (* b <> One here *)
  | Node na, Node nb ->
    na == nb
    ||
    (match icache_find st.pred_c na.nid nb.nid pred_leq with
    | r when r <> min_int -> r <> 0
    | _ ->
      let v = top2 st na.var nb.var in
      let a0, a1 = split v a and b0, b1 = split v b in
      let r = leq_st st a0 b0 && leq_st st a1 b1 in
      icache_store st.pred_c na.nid nb.nid pred_leq (Bool.to_int r);
      r)

let subset a b = leq_st (state ()) a b

let rec intersects_st st a b =
  match (a, b) with
  | Zero, _ | _, Zero -> false
  | One, _ | _, One -> true (* the other side is non-zero here *)
  | Node na, Node nb ->
    na == nb
    ||
    let i1, i2 =
      if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid)
    in
    (match icache_find st.pred_c i1 i2 pred_inter with
    | r when r <> min_int -> r <> 0
    | _ ->
      let v = top2 st na.var nb.var in
      let a0, a1 = split v a and b0, b1 = split v b in
      let r = intersects_st st a0 b0 || intersects_st st a1 b1 in
      icache_store st.pred_c i1 i2 pred_inter (Bool.to_int r);
      r)

let intersects a b = intersects_st (state ()) a b

(* --- cofactor and quantification --------------------------------------- *)

let rec cofactor_st st t v lv b =
  match t with
  | Zero | One -> t
  | Node n ->
    if lvl st n.var > lv then t
    else if n.var = v then if b then n.hi else n.lo
    else mk st n.var (cofactor_st st n.lo v lv b) (cofactor_st st n.hi v lv b)

let cofactor t v b =
  let st = state () in
  if v >= Array.length st.level then grow_vars st v;
  cofactor_st st t v (lvl st v) b

(* The quantified variable set is represented as a positive cube BDD
   (v1 ∧ v2 ∧ …): hash-consing gives the set a canonical id to key the
   persistent caches on, and dropping already-passed variables is one
   pointer chase.  [cube_drop_below lv c] strips the cube's variables
   at levels above [lv] in the order (closer to the root); the residual
   cube is a pure function of (cube, level), so caching on (residual
   cube id, node id) is sound across calls. *)
let mk_cube st vars =
  let vars = List.sort_uniq Int.compare vars in
  List.iter (fun v -> if v >= Array.length st.level then grow_vars st v) vars;
  let by_level_desc =
    List.sort (fun a b -> Int.compare (lvl st b) (lvl st a)) vars
  in
  List.fold_left (fun acc v -> mk st v Zero acc) One by_level_desc

let rec cube_drop_below st lv cube =
  match cube with
  | Node n when lvl st n.var < lv -> cube_drop_below st lv n.hi
  | _ -> cube

let rec exists_cb st cube t =
  match t with
  | Zero | One -> t
  | Node n -> (
    let cube = cube_drop_below st (lvl st n.var) cube in
    if is_one cube then t
    else
      match tcache_find st.exists_c (id cube) n.nid 0 with
      | r when r != absent -> r
      | _ ->
        let r =
          match cube with
          | Node c when c.var = n.var ->
            let lo = exists_cb st c.hi n.lo in
            if is_one lo then One else bor_st st lo (exists_cb st c.hi n.hi)
          | _ -> mk st n.var (exists_cb st cube n.lo) (exists_cb st cube n.hi)
        in
        tcache_store st.exists_c (id cube) n.nid 0 r;
        r)

let rec forall_cb st cube t =
  match t with
  | Zero | One -> t
  | Node n -> (
    let cube = cube_drop_below st (lvl st n.var) cube in
    if is_one cube then t
    else
      match tcache_find st.forall_c (id cube) n.nid 0 with
      | r when r != absent -> r
      | _ ->
        let r =
          match cube with
          | Node c when c.var = n.var ->
            let lo = forall_cb st c.hi n.lo in
            if is_zero lo then Zero else band_st st lo (forall_cb st c.hi n.hi)
          | _ -> mk st n.var (forall_cb st cube n.lo) (forall_cb st cube n.hi)
        in
        tcache_store st.forall_c (id cube) n.nid 0 r;
        r)

let exists vars t =
  let st = state () in
  exists_cb st (mk_cube st vars) t

let forall vars t =
  let st = state () in
  forall_cb st (mk_cube st vars) t

(* Fused and-exists: [rel_product vars f g = exists vars (band f g)]
   without building the conjunction first.  This is the image operator of
   the symbolic reachability engine; fusing keeps intermediate
   conjunctions (which can be much larger than the result) out of the
   unique table, and the persistent (cube, f, g) cache carries shared
   work across the transitions of a sweep and across sweeps. *)
let rec andex_st st cube f g =
  match (f, g) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | One, t | t, One -> exists_cb st cube t
  | Node nf, Node ng ->
    if nf == ng then exists_cb st cube f
    else begin
      let v = top2 st nf.var ng.var in
      let cube = cube_drop_below st (lvl st v) cube in
      if is_one cube then band_st st f g
      else
        let i1, i2 =
          if nf.nid < ng.nid then (nf.nid, ng.nid) else (ng.nid, nf.nid)
        in
        match tcache_find st.andex_c (id cube) i1 i2 with
        | r when r != absent -> r
        | _ ->
          let f0, f1 = split v f and g0, g1 = split v g in
          let r =
            match cube with
            | Node c when c.var = v ->
              let lo = andex_st st c.hi f0 g0 in
              if is_one lo then One else bor_st st lo (andex_st st c.hi f1 g1)
            | _ -> mk st v (andex_st st cube f0 g0) (andex_st st cube f1 g1)
          in
          tcache_store st.andex_c (id cube) i1 i2 r;
          r
    end

let rel_product vars f g =
  let st = state () in
  andex_st st (mk_cube st vars) f g

(* Rename every odd variable 2i+1 to its even partner 2i.  Used by the
   clustered transition relations of the symbolic engine to map primed
   next-state variables back to present-state ones.  Sound as long as (a)
   no even partner of a renamed variable occurs in the argument and (b)
   pairs occupy adjacent levels, even above odd — which the reorder
   group discipline maintains; then replacing level l+1 by level l never
   crosses another variable, so the bottom-up rebuild respects the
   order. *)
let rec unprime_st st t =
  match t with
  | Zero | One -> t
  | Node n -> (
    match tcache_find st.unprime_c n.nid 0 0 with
    | r when r != absent -> r
    | _ ->
      let v = if n.var land 1 = 1 then n.var - 1 else n.var in
      let r = mk st v (unprime_st st n.lo) (unprime_st st n.hi) in
      tcache_store st.unprime_c n.nid 0 0 r;
      r)

let unprime t = unprime_st (state ()) t

(* Fused image operator: [unprime (rel_product vars f g)] in one
   bottom-up pass.  Soundness of renaming on the fly: every renamed
   variable 2i+1 has its even partner 2i in the quantification cube
   (that is the image-operator contract), so 2i never occurs in the
   result; and the pair-adjacency discipline (even directly above odd)
   means dropping a node from level l+1 to level l crosses no other
   variable, so minting the result node at 2i instead of 2i+1 respects
   the order.  Skipping the intermediate primed BDD halves the node
   churn of the hot fixpoint path. *)
let rec andexu_st st cube f g =
  match (f, g) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | One, t | t, One -> unprime_st st (exists_cb st cube t)
  | Node nf, Node ng ->
    if nf == ng then unprime_st st (exists_cb st cube f)
    else begin
      let v = top2 st nf.var ng.var in
      let cube = cube_drop_below st (lvl st v) cube in
      if is_one cube then unprime_st st (band_st st f g)
      else
        let i1, i2 =
          if nf.nid < ng.nid then (nf.nid, ng.nid) else (ng.nid, nf.nid)
        in
        match tcache_find st.andexu_c (id cube) i1 i2 with
        | r when r != absent -> r
        | _ ->
          let f0, f1 = split v f and g0, g1 = split v g in
          let r =
            match cube with
            | Node c when c.var = v ->
              let lo = andexu_st st c.hi f0 g0 in
              if is_one lo then One else bor_st st lo (andexu_st st c.hi f1 g1)
            | _ ->
              let v' = if v land 1 = 1 then v - 1 else v in
              mk st v' (andexu_st st cube f0 g0) (andexu_st st cube f1 g1)
          in
          tcache_store st.andexu_c (id cube) i1 i2 r;
          r
    end

let rel_product_unprime vars f g =
  let st = state () in
  andexu_st st (mk_cube st vars) f g

(* Functional composition f[v := g], as ite(g, f|v=1, f|v=0).  The two
   cofactors and the boolean connectives all run through the persistent
   per-domain caches, so repeated compositions against the same [g]
   share work. *)
let compose f v g =
  let st = state () in
  if v >= Array.length st.level then grow_vars st v;
  let lv = lvl st v in
  let f1 = cofactor_st st f v lv true and f0 = cofactor_st st f v lv false in
  bor_st st (band_st st g f1) (band_st st (bnot_st st g) f0)

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval t env =
  match t with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

(* --- model counting ---------------------------------------------------- *)

(* Counting is rank-based: the variables of the counting set are sorted
   by level and a node's contribution scales with the ranks skipped on
   the way to its children.  The (node, rank) cache is persistent across
   calls — the symbolic fixpoint counts a growing reached set every
   sweep, and only the new nodes cost anything — and is invalidated by a
   tag mismatch: a different counting set (cube id) or a reorder (order
   generation). *)
let sat_prepare st vars =
  let cube = mk_cube st vars in
  let tag = id cube in
  if st.sat_tag <> tag || st.sat_seen_gen <> st.sat_gen then begin
    icache_clear st.sat_c;
    let sorted = List.sort (fun a b -> Int.compare (lvl st a) (lvl st b)) vars in
    let maxv = List.fold_left max 0 vars in
    let rank = Array.make (maxv + 1) (-1) in
    List.iteri (fun i v -> rank.(v) <- i) sorted;
    st.sat_rank <- rank;
    st.sat_width <- List.length sorted;
    st.sat_tag <- tag;
    st.sat_seen_gen <- st.sat_gen
  end;
  st.sat_width

let rec sat_go st m t r =
  match t with
  | Zero -> 0
  | One -> 1 lsl (m - r)
  | Node nd -> (
    match icache_find st.sat_c nd.nid r 0 with
    | c when c <> min_int -> c
    | _ ->
      let rv =
        if nd.var < Array.length st.sat_rank then st.sat_rank.(nd.var) else -1
      in
      if rv < r then
        invalid_arg "Bdd.sat_count: support outside the counting variables";
      let c =
        (1 lsl (rv - r)) * (sat_go st m nd.lo (rv + 1) + sat_go st m nd.hi (rv + 1))
      in
      icache_store st.sat_c nd.nid r 0 c;
      c)

(* No width guard: the result is exact as long as the true count fits in
   an int, which the engines' state bounds already guarantee. *)
let sat_count_over vars t =
  let st = state () in
  let m = sat_prepare st (List.sort_uniq Int.compare vars) in
  sat_go st m t 0

let sat_count t n = sat_count_over (List.init n Fun.id) t

let any_sat t =
  let rec go t acc =
    match t with
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n ->
      if is_zero n.hi then go n.lo ((n.var, false) :: acc)
      else go n.hi ((n.var, true) :: acc)
  in
  go t []

let of_minterm n values =
  if Array.length values < n then invalid_arg "Bdd.of_minterm";
  let st = state () in
  if n > 0 then grow_vars st (n - 1);
  let order = Array.init n Fun.id in
  if not st.identity then
    Array.sort (fun a b -> Int.compare st.level.(a) st.level.(b)) order;
  let acc = ref One in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    acc := if values.(v) then mk st v Zero !acc else mk st v !acc Zero
  done;
  !acc

let minterm assignment =
  let st = state () in
  List.iter (fun (v, _) -> if v >= Array.length st.level then grow_vars st v) assignment;
  let by_level_desc =
    List.sort (fun (a, _) (b, _) -> Int.compare (lvl st b) (lvl st a)) assignment
  in
  List.fold_left
    (fun acc (v, b) -> if b then mk st v Zero acc else mk st v acc Zero)
    One by_level_desc

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

(* --- dynamic variable reordering --------------------------------------- *)

(* The swap primitive exchanges two adjacent levels by rewiring, in
   place, every node at the upper level that depends on the lower one:

     f = x ? (y ? f11 : f10) : (y ? f01 : f00)
       = y ? (x ? f11 : f01) : (x ? f10 : f00)

   The node object keeps its identity (and therefore its function), so
   every live BDD value and op-cache entry stays valid; only its var and
   children change.  The node is pulled out of the weak table before the
   mutation and re-added after — no collision is possible, because two
   live nodes rewired to the same (y, lo, hi) triple would denote the
   same function and would already have been hash-consed together, and a
   pre-existing y-node cannot reference the x-level children a rewired
   node has.  Reorders run only from the top-level entry points below
   (never inside an operation), so no recursion is in flight. *)

type reorder_ctx = {
  mutable vecs : node list array; (* registry of nodes per variable *)
  mutable rc : (int, int ref) Hashtbl.t option; (* in-snapshot refcounts, for size *)
  mutable counted_dead : (int, unit) Hashtbl.t; (* deaths already subtracted *)
  mutable est : int; (* estimated live node total *)
  mutable swaps : int;
  mutable created : int; (* fresh nodes since the last (re)snapshot *)
}

let rc_get tbl n =
  match Hashtbl.find_opt tbl n.nid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl n.nid r;
    r

let rc_incr st ctx = function
  | Zero | One -> ()
  | Node n -> (
    match ctx.rc with
    | None -> ()
    | Some tbl ->
      let r = rc_get tbl n in
      incr r;
      if Hashtbl.mem ctx.counted_dead n.nid then begin
        (* Revived by a rewire after being counted dead: undo the
           subtraction (children stay approximate — this is a sifting
           metric, not a collection decision). *)
        Hashtbl.remove ctx.counted_dead n.nid;
        ctx.est <- ctx.est + 1;
        st.var_count.(n.var) <- st.var_count.(n.var) + 1
      end)

let rec rc_decr st ctx = function
  | Zero | One -> ()
  | Node n -> (
    match ctx.rc with
    | None -> ()
    | Some tbl ->
      let r = rc_get tbl n in
      decr r;
      if !r <= 0 && not (Hashtbl.mem ctx.counted_dead n.nid) then begin
        (* Estimated death: external pins are invisible, so this is a
           sifting metric, not a collection decision. *)
        Hashtbl.add ctx.counted_dead n.nid ();
        ctx.est <- ctx.est - 1;
        st.var_count.(n.var) <- max 0 (st.var_count.(n.var) - 1);
        rc_decr st ctx n.lo;
        rc_decr st ctx n.hi
      end)

(* mk inside a swap: registers fresh nodes with the pass registry and the
   refcount estimate. *)
let mk_reorder st ctx var lo hi =
  let before = st.next_id in
  let r = mk st var lo hi in
  (match r with
  | Node n when st.next_id > before ->
    ctx.vecs.(var) <- n :: ctx.vecs.(var);
    ctx.est <- ctx.est + 1;
    ctx.created <- ctx.created + 1;
    rc_incr st ctx lo;
    rc_incr st ctx hi;
    (match ctx.rc with
    | Some tbl -> ignore (rc_get tbl n) (* starts at 0; parent refs follow *)
    | None -> ())
  | _ -> ());
  r

let swap_adjacent st ctx l =
  let x = st.var_at.(l) and y = st.var_at.(l + 1) in
  ctx.swaps <- ctx.swaps + 1;
  st.reorder_swaps <- st.reorder_swaps + 1;
  let xs = ctx.vecs.(x) in
  (* Reset the registry slot first: [mk_reorder] prepends fresh x-nodes
     to it during the loop, survivors are collected in [keep], and
     rewired nodes move to the y slot — one linear pass, no memq scan. *)
  ctx.vecs.(x) <- [];
  let keep = ref [] in
  List.iter
    (fun f ->
      if f.var = x then begin
        let f0 = f.lo and f1 = f.hi in
        let dep0 = match f0 with Node n -> n.var = y | _ -> false in
        let dep1 = match f1 with Node n -> n.var = y | _ -> false in
        if dep0 || dep1 then begin
          Weak_table.remove st.unique f;
          let f00, f01 =
            match f0 with Node n when n.var = y -> (n.lo, n.hi) | _ -> (f0, f0)
          in
          let f10, f11 =
            match f1 with Node n when n.var = y -> (n.lo, n.hi) | _ -> (f1, f1)
          in
          let lo' = mk_reorder st ctx x f00 f10 in
          let hi' = mk_reorder st ctx x f01 f11 in
          f.var <- y;
          f.lo <- lo';
          f.hi <- hi';
          ignore (Weak_table.merge st.unique f);
          rc_incr st ctx lo';
          rc_incr st ctx hi';
          rc_decr st ctx f0;
          rc_decr st ctx f1;
          st.var_count.(x) <- max 0 (st.var_count.(x) - 1);
          st.var_count.(y) <- st.var_count.(y) + 1;
          ctx.vecs.(y) <- f :: ctx.vecs.(y)
        end
        else keep := f :: !keep
      end)
    xs;
  ctx.vecs.(x) <- !keep @ ctx.vecs.(x);
  st.var_at.(l) <- y;
  st.var_at.(l + 1) <- x;
  st.level.(x) <- l + 1;
  st.level.(y) <- l;
  st.identity <- false

let snapshot_ctx st ~with_rc =
  let nv = Array.length st.level in
  let vecs = Array.make nv [] in
  Array.fill st.var_count 0 nv 0;
  let total = ref 0 in
  Weak_table.iter
    (fun n ->
      vecs.(n.var) <- n :: vecs.(n.var);
      st.var_count.(n.var) <- st.var_count.(n.var) + 1;
      incr total)
    st.unique;
  let rc =
    if with_rc then begin
      let tbl = Hashtbl.create (2 * !total + 16) in
      Array.iter
        (List.iter (fun n ->
             (match n.lo with Node c -> incr (rc_get tbl c) | _ -> ());
             match n.hi with Node c -> incr (rc_get tbl c) | _ -> ()))
        vecs;
      Some tbl
    end
    else None
  in
  { vecs; rc; counted_dead = Hashtbl.create 64; est = !total; swaps = 0; created = 0 }

(* Swap churn control.  Every swap rewires the full registry of its upper
   level — including nodes that died in earlier swaps but are pinned by
   the registry itself — and mints fresh children for each rewire.
   Without reclamation the registries grow with every pass over a level
   and the pass goes quadratic (then worse), allocating gigabytes on
   tables of a few thousand live nodes.  The cure is the one CUDD applies
   with true refcounts: collect mid-pass.  Dropping the registries and
   running [gc_st] lets the churn die (externally pinned nodes survive
   and have been rewired already, so they are exactly the live table);
   re-snapshotting rebuilds the registries from the survivors. *)
let resnapshot st ctx =
  let with_rc = ctx.rc <> None in
  ctx.vecs <- [||];
  ctx.rc <- None;
  ctx.counted_dead <- Hashtbl.create 0;
  ignore (gc_st st);
  let fresh = snapshot_ctx st ~with_rc in
  ctx.vecs <- fresh.vecs;
  ctx.rc <- fresh.rc;
  ctx.counted_dead <- fresh.counted_dead;
  ctx.est <- fresh.est;
  ctx.created <- 0

let churn_check st ctx =
  if ctx.created > max 16_384 (2 * ctx.est) then resnapshot st ctx

let check_identity st =
  let ok = ref true in
  Array.iteri (fun l v -> if l <> v then ok := false) st.var_at;
  st.identity <- !ok

type reorder_stats = {
  swaps : int;
  nodes_before : int;
  nodes_after : int;
  positions_moved : int;
}

(* One pass of Rudell sifting over variable groups (default: every
   variable alone).  Groups must occupy contiguous levels — the symbolic
   engine passes (present, primed) pairs so renames stay order-safe —
   and are sifted in order of decreasing node count: each group is moved
   through every position via adjacent swaps and parked where the
   estimated table size is smallest. *)
let reorder ?groups () =
  let st = state () in
  ignore (gc_st st);
  let nv = Array.length st.level in
  let ctx = snapshot_ctx st ~with_rc:true in
  let nodes_before = ctx.est in
  let groups =
    match groups with
    | Some gs -> List.map Array.of_list gs
    | None -> List.init nv (fun v -> [| v |])
  in
  (* Blocks in level order; every level must be covered exactly once. *)
  let covered = Array.make nv false in
  List.iter
    (fun g ->
      Array.iter
        (fun v ->
          if v < 0 || v >= nv then invalid_arg "Bdd.reorder: variable out of range";
          if covered.(v) then invalid_arg "Bdd.reorder: overlapping groups";
          covered.(v) <- true)
        g)
    groups;
  let rest =
    List.filter_map
      (fun v -> if covered.(v) then None else Some [| v |])
      (List.init nv Fun.id)
  in
  let blocks =
    List.map (fun g ->
        let g = Array.copy g in
        Array.sort (fun a b -> Int.compare st.level.(a) st.level.(b)) g;
        Array.iteri
          (fun i v ->
            if i > 0 && st.level.(v) <> st.level.(g.(i - 1)) + 1 then
              invalid_arg "Bdd.reorder: group not contiguous in the order")
          g;
        g)
      (groups @ rest)
    |> List.sort (fun a b -> Int.compare st.level.(a.(0)) st.level.(b.(0)))
    |> Array.of_list
  in
  let nb = Array.length blocks in
  let start_of = Array.make nb 0 in
  let recompute_starts () =
    let acc = ref 0 in
    Array.iteri
      (fun i b ->
        start_of.(i) <- !acc;
        acc := !acc + Array.length b)
      blocks
  in
  recompute_starts ();
  let block_nodes b =
    Array.fold_left (fun acc v -> acc + st.var_count.(v)) 0 b
  in
  (* Exchange adjacent blocks i and i+1. *)
  let swap_blocks i =
    let a = blocks.(i) and b = blocks.(i + 1) in
    let la = start_of.(i) in
    let m = Array.length a and k = Array.length b in
    for j = m - 1 downto 0 do
      for s = 0 to k - 1 do
        swap_adjacent st ctx (la + j + s)
      done
    done;
    blocks.(i) <- b;
    blocks.(i + 1) <- a;
    start_of.(i + 1) <- la + k
  in
  let moved = ref 0 in
  (* Sift order: by node population, heaviest first, ties by position. *)
  let order =
    List.sort
      (fun (na, pa, _) (nb, pb, _) ->
        if na <> nb then Int.compare nb na else Int.compare pa pb)
      (List.init nb (fun i -> (block_nodes blocks.(i), i, blocks.(i))))
  in
  List.iter
    (fun (n0, _, key) ->
      if n0 > 0 then begin
        (* Locate the block's current index by its variable set. *)
        let p0 = ref 0 in
        Array.iteri (fun i b -> if b == key then p0 := i) blocks;
        let best = ref ctx.est and best_pos = ref !p0 in
        let limit = (2 * ctx.est) + 4096 in
        (* Down to the bottom... *)
        let p = ref !p0 in
        (try
           while !p < nb - 1 do
             swap_blocks !p;
             incr p;
             churn_check st ctx;
             if ctx.est < !best then begin
               best := ctx.est;
               best_pos := !p
             end;
             if ctx.est > limit then raise Exit
           done
         with Exit -> ());
        (* ...then up to the top... *)
        (try
           while !p > 0 do
             swap_blocks (!p - 1);
             decr p;
             churn_check st ctx;
             if ctx.est < !best then begin
               best := ctx.est;
               best_pos := !p
             end;
             if ctx.est > limit then raise Exit
           done
         with Exit -> ());
        (* ...and settle at the best position seen. *)
        while !p < !best_pos do
          swap_blocks !p;
          incr p;
          churn_check st ctx
        done;
        while !p > !best_pos do
          swap_blocks (!p - 1);
          decr p;
          churn_check st ctx
        done;
        if !best_pos <> !p0 then incr moved
      end)
    order;
  st.reorders <- st.reorders + 1;
  st.sat_gen <- st.sat_gen + 1;
  check_identity st;
  {
    swaps = ctx.swaps;
    nodes_before;
    nodes_after = ctx.est;
    positions_moved = !moved;
  }

(* Sift back to the identity permutation (variable v at level v).  Cover
   extraction and any other structure-sensitive consumer can call this to
   re-establish the canonical order after a reorder; it is a no-op when
   the order is already the identity. *)
let restore_order () =
  let st = state () in
  if not st.identity then begin
    ignore (gc_st st);
    let ctx = snapshot_ctx st ~with_rc:false in
    let nv = Array.length st.level in
    for v = 0 to nv - 1 do
      for l = st.level.(v) - 1 downto v do
        swap_adjacent st ctx l
      done;
      churn_check st ctx
    done;
    st.sat_gen <- st.sat_gen + 1;
    check_identity st;
    assert st.identity
  end

let rec pp ppf = function
  | Zero -> Format.fprintf ppf "0"
  | One -> Format.fprintf ppf "1"
  | Node n -> Format.fprintf ppf "(x%d ? %a : %a)" n.var pp n.hi pp n.lo
