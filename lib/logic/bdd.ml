(* Hash-consed ROBDD with a per-domain unique table and binary-op caches.
   Complement edges are not used; negation is a cached recursive op.

   The tables live in domain-local storage so that independent tasks of a
   parallel region (per-signal synthesis, CSC trial insertions, fuzz
   cases) can build BDDs concurrently without sharing mutable state.  The
   contract is that BDD values never migrate between domains: node ids
   are only unique per domain, so a node built on one domain must not be
   combined with (or compared to) nodes built on another.  All call sites
   in this repository construct their BDDs from scratch inside the task
   and ship only id-free data (cube covers, counts, bools) across the
   join — exactly why cover extraction is structural (by variable order),
   never id-ordered.  Each entry point fetches the domain state once and
   threads it through the recursion, keeping the DLS lookup off the inner
   loops. *)

type t = Zero | One | Node of node
and node = { var : int; lo : t; hi : t; nid : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.nid
let equal a b = a == b
let hash t = id t

module Unique_key = struct
  type nonrec t = int * int * int (* var, lo id, hi id *)

  let equal (a1, a2, a3) (b1, b2, b3) = a1 = b1 && a2 = b2 && a3 = b3
  let hash = Hashtbl.hash
end

module Unique = Hashtbl.Make (Unique_key)

(* Operation caches. *)
module Cache1 = Hashtbl.Make (struct
  type nonrec t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Cache2 = Hashtbl.Make (struct
  type nonrec t = int * int

  let equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2
  let hash = Hashtbl.hash
end)

module Cache3 = Hashtbl.Make (struct
  type nonrec t = int * int * int

  let equal (a1, a2, a3) (b1, b2, b3) = a1 = b1 && a2 = b2 && a3 = b3
  let hash = Hashtbl.hash
end)

type state = {
  unique : t Unique.t;
  mutable next_id : int;
  not_cache : t Cache1.t;
  and_cache : t Cache2.t;
  xor_cache : t Cache2.t;
  (* Quantification caches are persistent (cleared only by
     [clear_caches]) and keyed on the hash-consed id of the quantified
     variable set, represented as a positive cube: the fixpoints of the
     symbolic reachability engine quantify the same per-transition cubes
     against BDDs that share most of their structure level after level,
     and per-call caches would rediscover all of it each time. *)
  exists_cache : t Cache2.t; (* (cube id, node id) *)
  forall_cache : t Cache2.t;
  andex_cache : t Cache3.t; (* (cube id, f id, g id), f <= g *)
}

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        unique = Unique.create 4096;
        next_id = 2;
        not_cache = Cache1.create 1024;
        and_cache = Cache2.create 4096;
        xor_cache = Cache2.create 1024;
        exists_cache = Cache2.create 1024;
        forall_cache = Cache2.create 256;
        andex_cache = Cache3.create 4096;
      })

let state () = Domain.DLS.get state_key

let clear_caches () =
  let st = state () in
  Cache1.clear st.not_cache;
  Cache2.clear st.and_cache;
  Cache2.clear st.xor_cache;
  Cache2.clear st.exists_cache;
  Cache2.clear st.forall_cache;
  Cache3.clear st.andex_cache

type table_stats = { unique_nodes : int; op_cache_entries : int }

let table_stats () =
  let st = state () in
  {
    unique_nodes = Unique.length st.unique;
    op_cache_entries =
      Cache1.length st.not_cache + Cache2.length st.and_cache
      + Cache2.length st.xor_cache + Cache2.length st.exists_cache
      + Cache2.length st.forall_cache + Cache3.length st.andex_cache;
  }

let mk st var lo hi =
  if equal lo hi then lo
  else
    let key = (var, id lo, id hi) in
    match Unique.find_opt st.unique key with
    | Some n -> n
    | None ->
      let n = Node { var; lo; hi; nid = st.next_id } in
      st.next_id <- st.next_id + 1;
      Unique.add st.unique key n;
      n

let zero = Zero
let one = One

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk (state ()) i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk (state ()) i One Zero

let is_zero t = equal t Zero
let is_one t = equal t One

let top_var = function
  | Zero | One -> invalid_arg "Bdd.top_var: constant"
  | Node n -> n.var

let rec bnot_st st t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node n -> (
    match Cache1.find_opt st.not_cache n.nid with
    | Some r -> r
    | None ->
      let r = mk st n.var (bnot_st st n.lo) (bnot_st st n.hi) in
      Cache1.add st.not_cache n.nid r;
      r)

let bnot t = bnot_st (state ()) t

let split v t =
  match t with
  | Zero | One -> (t, t)
  | Node n -> if n.var = v then (n.lo, n.hi) else (t, t)

let rec band_st st a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Node na, Node nb ->
    if na.nid = nb.nid then a
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt st.and_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (band_st st a0 b0) (band_st st a1 b1) in
        Cache2.add st.and_cache key r;
        r)

let band a b = band_st (state ()) a b

let bor_st st a b = bnot_st st (band_st st (bnot_st st a) (bnot_st st b))
let bor a b = bor_st (state ()) a b
let bimp a b =
  let st = state () in
  bor_st st (bnot_st st a) b

let rec bxor_st st a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | One, x | x, One -> bnot_st st x
  | Node na, Node nb ->
    if na.nid = nb.nid then Zero
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt st.xor_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (bxor_st st a0 b0) (bxor_st st a1 b1) in
        Cache2.add st.xor_cache key r;
        r)

let bxor a b = bxor_st (state ()) a b

let ite f g h =
  let st = state () in
  bor_st st (band_st st f g) (band_st st (bnot_st st f) h)

let rec cofactor_st st t v b =
  match t with
  | Zero | One -> t
  | Node n ->
    if n.var > v then t
    else if n.var = v then if b then n.hi else n.lo
    else mk st n.var (cofactor_st st n.lo v b) (cofactor_st st n.hi v b)

let cofactor t v b = cofactor_st (state ()) t v b

(* The quantified variable set is represented as a positive cube BDD
   (v1 ∧ v2 ∧ …): hash-consing gives the set a canonical id to key the
   persistent caches on, and dropping already-passed variables is one
   pointer chase.  [cube_drop_below v c] strips the cube's variables
   below [v]; since the residual cube is a pure function of (cube, v),
   caching on (residual cube id, node id) is sound across calls. *)
let mk_cube st vars =
  List.fold_left
    (fun acc v -> mk st v Zero acc)
    One
    (List.sort_uniq (fun a b -> Int.compare b a) vars)

let rec cube_drop_below v cube =
  match cube with
  | Node n when n.var < v -> cube_drop_below v n.hi
  | _ -> cube

let rec exists_cb st cube t =
  match t with
  | Zero | One -> t
  | Node n -> (
    let cube = cube_drop_below n.var cube in
    if is_one cube then t
    else
      let key = (id cube, n.nid) in
      match Cache2.find_opt st.exists_cache key with
      | Some r -> r
      | None ->
        let r =
          match cube with
          | Node c when c.var = n.var ->
            let lo = exists_cb st c.hi n.lo in
            if is_one lo then One else bor_st st lo (exists_cb st c.hi n.hi)
          | _ -> mk st n.var (exists_cb st cube n.lo) (exists_cb st cube n.hi)
        in
        Cache2.add st.exists_cache key r;
        r)

let rec forall_cb st cube t =
  match t with
  | Zero | One -> t
  | Node n -> (
    let cube = cube_drop_below n.var cube in
    if is_one cube then t
    else
      let key = (id cube, n.nid) in
      match Cache2.find_opt st.forall_cache key with
      | Some r -> r
      | None ->
        let r =
          match cube with
          | Node c when c.var = n.var ->
            let lo = forall_cb st c.hi n.lo in
            if is_zero lo then Zero else band_st st lo (forall_cb st c.hi n.hi)
          | _ -> mk st n.var (forall_cb st cube n.lo) (forall_cb st cube n.hi)
        in
        Cache2.add st.forall_cache key r;
        r)

let exists vars t =
  let st = state () in
  exists_cb st (mk_cube st vars) t

let forall vars t =
  let st = state () in
  forall_cb st (mk_cube st vars) t

(* Fused and-exists: [rel_product vars f g = exists vars (band f g)]
   without building the conjunction first.  This is the image operator of
   the symbolic reachability engine, where [f] is the current state set
   and [g] a transition's enabling relation; fusing keeps intermediate
   conjunctions (which can be much larger than the result) out of the
   unique table, and the persistent (cube, f, g) cache carries shared
   work across the transitions of a level and across levels. *)
let rec andex_st st cube f g =
  match (f, g) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | One, t | t, One -> exists_cb st cube t
  | Node nf, Node ng ->
    if nf.nid = ng.nid then exists_cb st cube f
    else begin
      let v = min nf.var ng.var in
      let cube = cube_drop_below v cube in
      if is_one cube then band_st st f g
      else
        let key =
          if nf.nid < ng.nid then (id cube, nf.nid, ng.nid)
          else (id cube, ng.nid, nf.nid)
        in
        match Cache3.find_opt st.andex_cache key with
        | Some r -> r
        | None ->
          let f0, f1 = split v f and g0, g1 = split v g in
          let r =
            match cube with
            | Node c when c.var = v ->
              let lo = andex_st st c.hi f0 g0 in
              if is_one lo then One else bor_st st lo (andex_st st c.hi f1 g1)
            | _ -> mk st v (andex_st st cube f0 g0) (andex_st st cube f1 g1)
          in
          Cache3.add st.andex_cache key r;
          r
    end

let rel_product vars f g =
  let st = state () in
  andex_st st (mk_cube st vars) f g

(* Functional composition f[v := g], as ite(g, f|v=1, f|v=0).  The two
   cofactors and the boolean connectives all run through the persistent
   per-domain caches, so repeated compositions against the same [g]
   share work. *)
let compose f v g =
  let st = state () in
  let f1 = cofactor_st st f v true and f0 = cofactor_st st f v false in
  bor_st st (band_st st g f1) (band_st st (bnot_st st g) f0)

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval t env =
  match t with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let sat_count t n =
  let cache = Hashtbl.create 64 in
  (* count over variables [from .. n-1] *)
  let rec go t from =
    match t with
    | Zero -> 0
    | One -> 1 lsl (n - from)
    | Node node -> (
      let key = (node.nid, from) in
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let skip = node.var - from in
        let c = (1 lsl skip) * (go node.lo (node.var + 1) + go node.hi (node.var + 1)) in
        Hashtbl.add cache key c;
        c)
  in
  go t 0

let any_sat t =
  let rec go t acc =
    match t with
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n ->
      if is_zero n.hi then go n.lo ((n.var, false) :: acc)
      else go n.hi ((n.var, true) :: acc)
  in
  go t []

let subset f g =
  let st = state () in
  is_zero (band_st st f (bnot_st st g))

let of_minterm n values =
  if Array.length values < n then invalid_arg "Bdd.of_minterm";
  let st = state () in
  let rec go i =
    if i >= n then One
    else mk st i (if values.(i) then Zero else go (i + 1)) (if values.(i) then go (i + 1) else Zero)
  in
  go 0

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

let rec pp ppf = function
  | Zero -> Format.fprintf ppf "0"
  | One -> Format.fprintf ppf "1"
  | Node n -> Format.fprintf ppf "(x%d ? %a : %a)" n.var pp n.hi pp n.lo
