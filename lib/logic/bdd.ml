(* Hash-consed ROBDD with a per-domain unique table and binary-op caches.
   Complement edges are not used; negation is a cached recursive op.

   The tables live in domain-local storage so that independent tasks of a
   parallel region (per-signal synthesis, CSC trial insertions, fuzz
   cases) can build BDDs concurrently without sharing mutable state.  The
   contract is that BDD values never migrate between domains: node ids
   are only unique per domain, so a node built on one domain must not be
   combined with (or compared to) nodes built on another.  All call sites
   in this repository construct their BDDs from scratch inside the task
   and ship only id-free data (cube covers, counts, bools) across the
   join — exactly why cover extraction is structural (by variable order),
   never id-ordered.  Each entry point fetches the domain state once and
   threads it through the recursion, keeping the DLS lookup off the inner
   loops. *)

type t = Zero | One | Node of node
and node = { var : int; lo : t; hi : t; nid : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.nid
let equal a b = a == b
let hash t = id t

module Unique_key = struct
  type nonrec t = int * int * int (* var, lo id, hi id *)

  let equal (a1, a2, a3) (b1, b2, b3) = a1 = b1 && a2 = b2 && a3 = b3
  let hash = Hashtbl.hash
end

module Unique = Hashtbl.Make (Unique_key)

(* Operation caches. *)
module Cache1 = Hashtbl.Make (struct
  type nonrec t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Cache2 = Hashtbl.Make (struct
  type nonrec t = int * int

  let equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2
  let hash = Hashtbl.hash
end)

type state = {
  unique : t Unique.t;
  mutable next_id : int;
  not_cache : t Cache1.t;
  and_cache : t Cache2.t;
  xor_cache : t Cache2.t;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        unique = Unique.create 4096;
        next_id = 2;
        not_cache = Cache1.create 1024;
        and_cache = Cache2.create 4096;
        xor_cache = Cache2.create 1024;
      })

let state () = Domain.DLS.get state_key

let clear_caches () =
  let st = state () in
  Cache1.clear st.not_cache;
  Cache2.clear st.and_cache;
  Cache2.clear st.xor_cache

let mk st var lo hi =
  if equal lo hi then lo
  else
    let key = (var, id lo, id hi) in
    match Unique.find_opt st.unique key with
    | Some n -> n
    | None ->
      let n = Node { var; lo; hi; nid = st.next_id } in
      st.next_id <- st.next_id + 1;
      Unique.add st.unique key n;
      n

let zero = Zero
let one = One

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk (state ()) i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk (state ()) i One Zero

let is_zero t = equal t Zero
let is_one t = equal t One

let top_var = function
  | Zero | One -> invalid_arg "Bdd.top_var: constant"
  | Node n -> n.var

let rec bnot_st st t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node n -> (
    match Cache1.find_opt st.not_cache n.nid with
    | Some r -> r
    | None ->
      let r = mk st n.var (bnot_st st n.lo) (bnot_st st n.hi) in
      Cache1.add st.not_cache n.nid r;
      r)

let bnot t = bnot_st (state ()) t

let split v t =
  match t with
  | Zero | One -> (t, t)
  | Node n -> if n.var = v then (n.lo, n.hi) else (t, t)

let rec band_st st a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Node na, Node nb ->
    if na.nid = nb.nid then a
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt st.and_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (band_st st a0 b0) (band_st st a1 b1) in
        Cache2.add st.and_cache key r;
        r)

let band a b = band_st (state ()) a b

let bor_st st a b = bnot_st st (band_st st (bnot_st st a) (bnot_st st b))
let bor a b = bor_st (state ()) a b
let bimp a b =
  let st = state () in
  bor_st st (bnot_st st a) b

let rec bxor_st st a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | One, x | x, One -> bnot_st st x
  | Node na, Node nb ->
    if na.nid = nb.nid then Zero
    else
      let key = if na.nid < nb.nid then (na.nid, nb.nid) else (nb.nid, na.nid) in
      (match Cache2.find_opt st.xor_cache key with
      | Some r -> r
      | None ->
        let v = min na.var nb.var in
        let a0, a1 = split v a and b0, b1 = split v b in
        let r = mk st v (bxor_st st a0 b0) (bxor_st st a1 b1) in
        Cache2.add st.xor_cache key r;
        r)

let bxor a b = bxor_st (state ()) a b

let ite f g h =
  let st = state () in
  bor_st st (band_st st f g) (band_st st (bnot_st st f) h)

let rec cofactor_st st t v b =
  match t with
  | Zero | One -> t
  | Node n ->
    if n.var > v then t
    else if n.var = v then if b then n.hi else n.lo
    else mk st n.var (cofactor_st st n.lo v b) (cofactor_st st n.hi v b)

let cofactor t v b = cofactor_st (state ()) t v b

let exists_one st v t = bor_st st (cofactor_st st t v false) (cofactor_st st t v true)
let forall_one st v t = band_st st (cofactor_st st t v false) (cofactor_st st t v true)

let exists vars t =
  let st = state () in
  List.fold_left (fun acc v -> exists_one st v acc) t vars

let forall vars t =
  let st = state () in
  List.fold_left (fun acc v -> forall_one st v acc) t vars

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval t env =
  match t with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let sat_count t n =
  let cache = Hashtbl.create 64 in
  (* count over variables [from .. n-1] *)
  let rec go t from =
    match t with
    | Zero -> 0
    | One -> 1 lsl (n - from)
    | Node node -> (
      let key = (node.nid, from) in
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let skip = node.var - from in
        let c = (1 lsl skip) * (go node.lo (node.var + 1) + go node.hi (node.var + 1)) in
        Hashtbl.add cache key c;
        c)
  in
  go t 0

let any_sat t =
  let rec go t acc =
    match t with
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n ->
      if is_zero n.hi then go n.lo ((n.var, false) :: acc)
      else go n.hi ((n.var, true) :: acc)
  in
  go t []

let subset f g =
  let st = state () in
  is_zero (band_st st f (bnot_st st g))

let of_minterm n values =
  if Array.length values < n then invalid_arg "Bdd.of_minterm";
  let st = state () in
  let rec go i =
    if i >= n then One
    else mk st i (if values.(i) then Zero else go (i + 1)) (if values.(i) then go (i + 1) else Zero)
  in
  go 0

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.lo;
        go n.hi
      end
  in
  go t;
  Hashtbl.length seen

let rec pp ppf = function
  | Zero -> Format.fprintf ppf "0"
  | One -> Format.fprintf ppf "1"
  | Node n -> Format.fprintf ppf "(x%d ? %a : %a)" n.var pp n.hi pp n.lo
