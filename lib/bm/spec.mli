(** Burst-mode machine specifications (Yun's XBM machines, reference [14]
    of the paper — the style synthesized by the 3D tool that the RAPPID
    project evaluated as its Table-2 "RT-BM" row).

    A machine sits in a state until the environment has fired {e all}
    edges of one outgoing arc's input burst (in any order); it then fires
    the arc's output burst and moves on.  Fundamental mode: the
    environment does not start a new input burst until the machine has
    settled. *)

type burst = (string * bool) list
(** Signal edges: [(name, rising)]. *)

type arc = {
  src : int;
  dst : int;
  inputs : burst;  (** non-empty *)
  outputs : burst;  (** may be empty *)
}

type t = {
  name : string;
  input_signals : string list;
  output_signals : string list;
  num_states : int;
  initial : int;
  arcs : arc list;
}

exception Invalid of string

val validate : t -> bool array array
(** Checks the specification and returns the entry values of every state
    as [values.(state).(signal)] (signals indexed inputs-then-outputs in
    declaration order).  Checks performed:
    - arcs reference declared signals and valid states, input bursts are
      non-empty and use input signals only, output bursts output signals
      only;
    - every state is reachable and entered with consistent signal values,
      and each burst's edges actually toggle (a [+] edge leaves a 0);
    - the {e maximal set property}: no arc's input burst is a subset of a
      sibling arc's (the machine could not tell them apart).
    Raises {!Invalid} otherwise. *)

val signal_index : t -> string -> int
(** Index in the inputs-then-outputs order.  Raises [Not_found]. *)

val num_signals : t -> int

val pp : Format.formatter -> t -> unit
