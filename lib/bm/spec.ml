type burst = (string * bool) list
type arc = { src : int; dst : int; inputs : burst; outputs : burst }

type t = {
  name : string;
  input_signals : string list;
  output_signals : string list;
  num_states : int;
  initial : int;
  arcs : arc list;
}

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let num_signals t = List.length t.input_signals + List.length t.output_signals

let signal_index t name =
  let all = t.input_signals @ t.output_signals in
  let rec go i = function
    | [] -> raise Not_found
    | s :: rest -> if s = name then i else go (i + 1) rest
  in
  go 0 all

let validate t =
  let n = num_signals t in
  let is_input name = List.mem name t.input_signals in
  let is_output name = List.mem name t.output_signals in
  (* Structural checks. *)
  List.iter
    (fun arc ->
      if arc.src < 0 || arc.src >= t.num_states || arc.dst < 0 || arc.dst >= t.num_states
      then fail "arc references an unknown state";
      if arc.inputs = [] then fail "empty input burst (state %d)" arc.src;
      List.iter
        (fun (s, _) ->
          if not (is_input s) then fail "input burst uses non-input %s" s)
        arc.inputs;
      List.iter
        (fun (s, _) ->
          if not (is_output s) then fail "output burst uses non-output %s" s)
        arc.outputs;
      let names b = List.map fst b in
      if List.length (List.sort_uniq compare (names arc.inputs)) <> List.length arc.inputs
      then fail "repeated signal in an input burst";
      if
        List.length (List.sort_uniq compare (names arc.outputs))
        <> List.length arc.outputs
      then fail "repeated signal in an output burst")
    t.arcs;
  (* Maximal set property per source state. *)
  let arcs_from s = List.filter (fun a -> a.src = s) t.arcs in
  for s = 0 to t.num_states - 1 do
    let arcs = arcs_from s in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i <> j then
              let subset x y = List.for_all (fun e -> List.mem e y) x in
              if subset a.inputs b.inputs then
                fail "state %d violates the maximal set property" s)
          arcs)
      arcs
  done;
  (* Entry values by traversal from the initial state (all signals 0). *)
  let entry = Array.make t.num_states None in
  let apply values burst =
    let values = Array.copy values in
    List.iter
      (fun (name, rising) ->
        let i = signal_index t name in
        if values.(i) = rising then
          fail "edge %s%s does not toggle" name (if rising then "+" else "-");
        values.(i) <- rising)
      burst;
    values
  in
  let queue = Queue.create () in
  entry.(t.initial) <- Some (Array.make n false);
  Queue.add t.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let values = match entry.(s) with Some v -> v | None -> assert false in
    List.iter
      (fun arc ->
        let after = apply (apply values arc.inputs) arc.outputs in
        match entry.(arc.dst) with
        | None ->
          entry.(arc.dst) <- Some after;
          Queue.add arc.dst queue
        | Some existing ->
          if existing <> after then
            fail "state %d entered with inconsistent values" arc.dst)
      (arcs_from s)
  done;
  Array.mapi
    (fun s v ->
      match v with Some values -> values | None -> fail "state %d unreachable" s)
    entry

let pp ppf t =
  Format.fprintf ppf "@[<v>burst-mode %s: inputs %s; outputs %s@," t.name
    (String.concat " " t.input_signals)
    (String.concat " " t.output_signals);
  let pp_burst ppf b =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
      (fun ppf (s, r) -> Format.fprintf ppf "%s%s" s (if r then "+" else "-"))
      ppf b
  in
  List.iter
    (fun a ->
      Format.fprintf ppf "  s%d --[%a]/[%a]--> s%d@," a.src pp_burst a.inputs pp_burst
        a.outputs a.dst)
    t.arcs;
  Format.fprintf ppf "@]"
