module Bdd = Rtcad_logic.Bdd
module Cover = Rtcad_logic.Cover
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate

type result = {
  netlist : Netlist.t;
  state_vars : int;
  covers : (string * Cover.t) list;
}

let subsets xs =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] xs

(* State codes: states entered with identical signal values must be told
   apart by added state variables; each conflict class numbers its
   members and the class-local index becomes the code. *)
let state_codes (spec : Spec.t) entry =
  let classes = Hashtbl.create 8 in
  for s = 0 to spec.Spec.num_states - 1 do
    let key = Array.to_list entry.(s) in
    Hashtbl.replace classes key (s :: Option.value ~default:[] (Hashtbl.find_opt classes key))
  done;
  let max_class =
    Hashtbl.fold (fun _ members acc -> max acc (List.length members)) classes 1
  in
  let bits =
    let rec go k = if 1 lsl k >= max_class then k else go (k + 1) in
    go 0
  in
  let code = Array.make spec.Spec.num_states 0 in
  Hashtbl.iter
    (fun _ members ->
      List.iteri (fun i s -> code.(s) <- i) (List.sort Int.compare members))
    classes;
  (bits, code)

exception Conflict

(* Build the flow table for a given state-variable width and code
   assignment; raises Conflict if two entries demand different values at
   the same total state. *)
let build_table (spec : Spec.t) entry bits code =
  let ni = List.length spec.Spec.input_signals in
  let no = List.length spec.Spec.output_signals in
  let n = ni + no + bits in
  let total s =
    Array.init n (fun v ->
        if v < ni + no then entry.(s).(v) else (code.(s) lsr (v - ni - no)) land 1 = 1)
  in
  let feedback = List.init (no + bits) (fun i -> ni + i) in
  let on = Array.make n Bdd.zero and off = Array.make n Bdd.zero in
  let specified = ref Bdd.zero in
  let record point f v =
    let m = Bdd.of_minterm n point in
    specified := Bdd.bor !specified m;
    if v then begin
      if not (Bdd.is_zero (Bdd.band m off.(f))) then raise Conflict;
      on.(f) <- Bdd.bor on.(f) m
    end
    else begin
      if not (Bdd.is_zero (Bdd.band m on.(f))) then raise Conflict;
      off.(f) <- Bdd.bor off.(f) m
    end
  in
  List.iter
    (fun (arc : Spec.arc) ->
      let v_src = total arc.Spec.src and v_dst = total arc.Spec.dst in
      let with_inputs base burst =
        let p = Array.copy base in
        List.iter
          (fun (name, rising) -> p.(Spec.signal_index spec name) <- rising)
          burst;
        p
      in
      let full = arc.Spec.inputs in
      List.iter
        (fun subset ->
          let point = with_inputs v_src subset in
          if List.length subset = List.length full then
            (* complete burst: feedback switches to the exit values, which
               equal the destination's entry (inputs already applied) *)
            List.iter (fun f -> record point f v_dst.(f)) feedback
          else List.iter (fun f -> record point f v_src.(f)) feedback)
        (subsets full))
    spec.Spec.arcs;
  (on, off, !specified, total)

(* Search for a conflict-free assignment: start from the entry-class
   width, and within each width enumerate code assignments (states in the
   same entry class must stay distinct). *)
let assign (spec : Spec.t) entry =
  let min_bits, class_code = state_codes spec entry in
  let ns = spec.Spec.num_states in
  let try_codes bits code =
    match build_table spec entry bits code with
    | table -> Some (bits, code, table)
    | exception Conflict -> None
  in
  let rec widths bits =
    if bits > min_bits + 3 then
      raise (Spec.Invalid "no conflict-free state assignment found")
    else begin
      (* First the canonical class-index assignment, then exhaustive. *)
      let first = try_codes bits class_code in
      match first with
      | Some r -> r
      | None ->
        let limit = 1 lsl bits in
        let budget = ref 60_000 in
        let code = Array.make ns 0 in
        let exception Found of (int * int array * (Bdd.t array * Bdd.t array * Bdd.t * (int -> bool array))) in
        let rec enumerate s =
          if !budget <= 0 then ()
          else if s = ns then begin
            decr budget;
            match try_codes bits (Array.copy code) with
            | Some r -> raise (Found r)
            | None -> ()
          end
          else
            for c = 0 to limit - 1 do
              code.(s) <- c;
              enumerate (s + 1)
            done
        in
        (match enumerate 0 with
        | () -> widths (bits + 1)
        | exception Found r -> r)
    end
  in
  widths (max min_bits (if min_bits = 0 then 0 else min_bits))

let synthesize ?(style = Gate.Static) (spec : Spec.t) =
  let entry = Spec.validate spec in
  let ni = List.length spec.Spec.input_signals in
  let no = List.length spec.Spec.output_signals in
  let bits, _code, (on, off, specified_set, total) = assign spec entry in
  ignore off;
  let n = ni + no + bits in
  let feedback = List.init (no + bits) (fun i -> ni + i) in
  let specified = ref specified_set in
  (* Netlist. *)
  let nl = Netlist.create () in
  let nets = Array.make n (-1) in
  List.iteri (fun i name -> nets.(i) <- Netlist.input nl name) spec.Spec.input_signals;
  let feedback_names =
    spec.Spec.output_signals @ List.init bits (fun i -> Printf.sprintf "y%d" i)
  in
  List.iteri (fun i name -> nets.(ni + i) <- Netlist.forward nl name) feedback_names;
  let dc = Bdd.bnot !specified in
  let covers =
    List.map
      (fun f ->
        let cover = Cover.irredundant_sop ~on_set:on.(f) ~dc_set:dc in
        (List.nth feedback_names (f - ni), cover))
      feedback
  in
  List.iteri
    (fun i (_name, cover) ->
      let out = nets.(ni + i) in
      let cubes = Cover.cubes cover in
      (match cubes with
      | [] ->
        (* constant-0 feedback variable: tie low through an AND of an
           input with its own complement *)
        Netlist.set_driver nl out
          (Gate.make ~style Gate.And ~fanin:2)
          [ (nets.(0), false); (nets.(0), true) ]
      | [ cube ] when List.length (Rtcad_logic.Cube.literals cube) = 1 ->
        let v, pol = List.nth (Rtcad_logic.Cube.literals cube) 0 in
        Netlist.set_driver nl out
          (Gate.make (if pol then Gate.Buf else Gate.Not) ~fanin:1)
          [ (nets.(v), false) ]
      | _ ->
        let shape =
          List.map (fun c -> List.length (Rtcad_logic.Cube.literals c)) cubes
        in
        let ins =
          List.concat_map
            (fun c ->
              List.map (fun (v, pol) -> (nets.(v), not pol)) (Rtcad_logic.Cube.literals c))
            cubes
        in
        Netlist.set_driver nl out
          (Gate.make ~style (Gate.Sop shape) ~fanin:(List.length ins))
          ins);
      if i < no then Netlist.mark_output nl out)
    covers;
  (* Initial values: the initial state's totals. *)
  let v0 = total spec.Spec.initial in
  Array.iteri (fun v net -> if net >= 0 then Netlist.set_initial nl net v0.(v)) nets;
  Netlist.settle_initial nl;
  { netlist = nl; state_vars = bits; covers }
