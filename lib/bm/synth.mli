(** Burst-mode synthesis under the fundamental-mode assumption (a 3D-style
    flow-table method).

    Every feedback variable (output or added state variable) is
    synthesized as one atomic sum-of-products gate over the machine's
    inputs and feedback variables:

    - state variables are added only when two states are entered with
      identical signal values (they could not otherwise be told apart);
      conflicting states get distinct codes;
    - for every arc, every {e partial} input burst holds the feedback
      variables at their entry values (inputs may arrive in any order);
      the {e complete} burst switches them to the arc's exit values;
    - all unvisited input combinations are don't-cares for minimization —
      this is the freedom fundamental mode buys, and why burst-mode
      machines beat speed-independent ones in the paper's Table 2.

    Raises {!Spec.Invalid} when the flow table demands both values at one
    total state (the specification is not fundamental-mode realizable). *)

type result = {
  netlist : Rtcad_netlist.Netlist.t;
  state_vars : int;  (** number of added state variables *)
  covers : (string * Rtcad_logic.Cover.t) list;  (** per feedback variable *)
}

val synthesize : ?style:Rtcad_netlist.Gate.style -> Spec.t -> result
(** Default style is {!Rtcad_netlist.Gate.Static}.  Primary inputs and
    outputs keep the specification's names; outputs are output-marked;
    state variables are named [y0], [y1], … *)
