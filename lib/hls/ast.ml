type direction = In | Out
type action = Recv of string | Send of string

type proc =
  | Action of action
  | Seq of proc list
  | Par of proc list
  | Loop of proc

type program = {
  name : string;
  channels : (string * direction) list;
  body : proc;
}

let channels_used proc =
  let tbl = Hashtbl.create 8 in
  let note name dir =
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.add tbl name dir
    | Some d when d = dir -> ()
    | Some _ -> failwith (Printf.sprintf "channel %s used in both directions" name)
  in
  let rec go = function
    | Action (Recv c) -> note c In
    | Action (Send c) -> note c Out
    | Seq ps | Par ps -> List.iter go ps
    | Loop p -> go p
  in
  go proc;
  List.sort compare (Hashtbl.fold (fun c d acc -> (c, d) :: acc) tbl [])

let rec pp_proc ppf = function
  | Action (Recv c) -> Format.fprintf ppf "%s?" c
  | Action (Send c) -> Format.fprintf ppf "%s!" c
  | Seq ps ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
      pp_proc ppf ps
  | Par ps ->
    Format.fprintf ppf "par";
    List.iter (fun p -> Format.fprintf ppf " {@ %a@ }" pp_proc p) ps
  | Loop p -> Format.fprintf ppf "loop {@ %a@ }" pp_proc p

let pp_program ppf t =
  Format.fprintf ppf "@[<hv>proc %s (%s) {@ %a@ }@]" t.name
    (String.concat ", "
       (List.map
          (fun (c, d) -> (match d with In -> "in " | Out -> "out ") ^ c)
          t.channels))
    pp_proc t.body
