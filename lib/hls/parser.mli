(** Parser for the handshake-process language.

    Grammar (whitespace-insensitive; [#] starts a line comment):

    {v
    program  ::= "proc" IDENT "(" decls ")" "{" body "}"
    decls    ::= decl ("," decl)* | ε
    decl     ::= ("in" | "out") IDENT
    body     ::= stmt (";" stmt)*
    stmt     ::= IDENT "?" | IDENT "!"
               | "loop" "{" body "}"
               | "par" block block+
               | block
    block    ::= "{" body "}"
    v} *)

exception Parse_error of int * string
(** Position (character offset) and message. *)

val parse : string -> Ast.program
(** Raises {!Parse_error}; also checks that every used channel is
    declared with the right direction. *)
