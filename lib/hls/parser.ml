exception Parse_error of int * string

type token = Ident of string | Kw of string | Sym of char

type lexer = { text : string; mutable pos : int; mutable peeked : (int * token) option }

let fail pos fmt = Printf.ksprintf (fun s -> raise (Parse_error (pos, s))) fmt

let keywords = [ "proc"; "in"; "out"; "loop"; "par" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let rec skip_ws lx =
  if lx.pos < String.length lx.text then
    match lx.text.[lx.pos] with
    | ' ' | '\t' | '\n' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | '#' ->
      while lx.pos < String.length lx.text && lx.text.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | _ -> ()

let next_token lx =
  match lx.peeked with
  | Some (pos, tok) ->
    lx.peeked <- None;
    Some (pos, tok)
  | None ->
    skip_ws lx;
    if lx.pos >= String.length lx.text then None
    else begin
      let start = lx.pos in
      let c = lx.text.[lx.pos] in
      if is_ident_char c then begin
        let e = ref lx.pos in
        while !e < String.length lx.text && is_ident_char lx.text.[!e] do
          incr e
        done;
        let word = String.sub lx.text lx.pos (!e - lx.pos) in
        lx.pos <- !e;
        Some (start, if List.mem word keywords then Kw word else Ident word)
      end
      else begin
        lx.pos <- lx.pos + 1;
        match c with
        | '(' | ')' | '{' | '}' | ',' | ';' | '?' | '!' -> Some (start, Sym c)
        | other -> fail start "unexpected character %C" other
      end
    end

let peek lx =
  match lx.peeked with
  | Some (pos, tok) -> Some (pos, tok)
  | None -> (
    match next_token lx with
    | None -> None
    | Some entry ->
      lx.peeked <- Some entry;
      Some entry)

let expect lx describe p =
  match next_token lx with
  | Some (pos, tok) -> (
    match p tok with Some v -> v | None -> fail pos "expected %s" describe)
  | None -> fail (String.length lx.text) "expected %s, found end of input" describe

let expect_sym lx c =
  expect lx (Printf.sprintf "'%c'" c) (function Sym s when s = c -> Some () | _ -> None)

let expect_ident lx =
  expect lx "an identifier" (function Ident s -> Some s | _ -> None)

let expect_kw lx kw =
  expect lx (Printf.sprintf "'%s'" kw) (function Kw k when k = kw -> Some () | _ -> None)

(* body ::= stmt (';' stmt)* *)
let rec parse_body lx =
  let first = parse_stmt lx in
  let rec more acc =
    match peek lx with
    | Some (_, Sym ';') ->
      ignore (next_token lx);
      more (parse_stmt lx :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ single ] -> single | stmts -> Ast.Seq stmts

and parse_stmt lx =
  match peek lx with
  | Some (_, Kw "loop") ->
    ignore (next_token lx);
    Ast.Loop (parse_block lx)
  | Some (_, Kw "par") ->
    ignore (next_token lx);
    let first = parse_block lx in
    let rec blocks acc =
      match peek lx with
      | Some (_, Sym '{') -> blocks (parse_block lx :: acc)
      | _ -> List.rev acc
    in
    (match blocks [ first ] with
    | [ _ ] -> fail lx.pos "par needs at least two blocks"
    | branches -> Ast.Par branches)
  | Some (_, Sym '{') -> parse_block lx
  | Some (pos, Ident chan) -> (
    ignore (next_token lx);
    match next_token lx with
    | Some (_, Sym '?') -> Ast.Action (Ast.Recv chan)
    | Some (_, Sym '!') -> Ast.Action (Ast.Send chan)
    | _ -> fail pos "channel %s must be followed by ? or !" chan)
  | Some (pos, _) -> fail pos "expected a statement"
  | None -> fail lx.pos "expected a statement, found end of input"

and parse_block lx =
  expect_sym lx '{';
  let body = parse_body lx in
  expect_sym lx '}';
  body

let parse_decls lx =
  match peek lx with
  | Some (_, Sym ')') -> []
  | _ ->
    let decl () =
      let dir =
        expect lx "'in' or 'out'" (function
          | Kw "in" -> Some Ast.In
          | Kw "out" -> Some Ast.Out
          | _ -> None)
      in
      let name = expect_ident lx in
      (name, dir)
    in
    let rec more acc =
      match peek lx with
      | Some (_, Sym ',') ->
        ignore (next_token lx);
        more (decl () :: acc)
      | _ -> List.rev acc
    in
    more [ decl () ]

let parse text =
  let lx = { text; pos = 0; peeked = None } in
  expect_kw lx "proc";
  let name = expect_ident lx in
  expect_sym lx '(';
  let channels = parse_decls lx in
  expect_sym lx ')';
  let body = parse_block lx in
  (match next_token lx with
  | None -> ()
  | Some (pos, _) -> fail pos "trailing input after process body");
  (* Direction check against declarations. *)
  let used = Ast.channels_used body in
  List.iter
    (fun (c, d) ->
      match List.assoc_opt c channels with
      | None -> fail 0 "channel %s used but not declared" c
      | Some d' when d <> d' -> fail 0 "channel %s used against its declared direction" c
      | Some _ -> ())
    used;
  { Ast.name; channels; body }
