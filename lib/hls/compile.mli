(** Compilation of handshake processes to signal transition graphs.

    Every channel [C] becomes a four-phase handshake pair [C_req]/[C_ack];
    for an input channel the request is driven by the environment and the
    acknowledge by the circuit, for an output channel the converse.  Each
    action occurrence expands to the four transitions of its handshake;
    the control flow gates the first circuit-driven transition of each
    action and resumes after the handshake completes.  Sequence chains
    exits to entries; [par] forks by giving every branch entry its own
    place and joins by making the continuation wait for every branch exit;
    the (implicit) outermost loop closes the control cycle with the
    initial marking.

    The result is an ordinary STG: the full Figure-2 flow (encoding, RT
    assumption generation, synthesis, verification) applies to it
    unchanged — the paper's "direct compilation from the high-level
    specifications" direction. *)

exception Unsupported of string
(** Raised when a channel is engaged in two branches of the same [par]
    (the four-phase protocol order would be ambiguous). *)

val compile : Ast.program -> Rtcad_stg.Stg.t
(** The program body is treated as the body of an infinite loop (a
    controller never terminates). *)

val signals_of_channel : string -> Ast.direction -> (string * Rtcad_stg.Stg.kind) list
(** The handshake signals a channel compiles to: [("C_req", kind);
    ("C_ack", kind)]. *)
