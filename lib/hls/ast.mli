(** Abstract syntax of the handshake-process language.

    A tiny CSP-flavoured language in the tradition of the handshake
    circuits the paper builds on (van Berkel's Tangram, reference [2]):
    processes communicate over four-phase channels; the only control
    structures are sequence, parallel composition and infinite loop —
    enough to express pipeline controllers, and the target of the
    "direct compilation from high-level specifications" direction of
    Section 6. *)

type direction = In | Out

type action =
  | Recv of string  (** [A?] — engage in a handshake on input channel A *)
  | Send of string  (** [B!] — initiate a handshake on output channel B *)

type proc =
  | Action of action
  | Seq of proc list  (** [p1; p2; …] *)
  | Par of proc list  (** [par { p1 } { p2 } …] — fork/join *)
  | Loop of proc  (** [loop { p }] — repeat forever *)

type program = {
  name : string;
  channels : (string * direction) list;  (** declaration order *)
  body : proc;
}

val channels_used : proc -> (string * direction) list
(** Channels appearing in the body with the direction implied by their
    use ([?] is [In], [!] is [Out]); sorted, deduplicated.  Raises
    [Failure] if a channel is used in both directions. *)

val pp_proc : Format.formatter -> proc -> unit
val pp_program : Format.formatter -> program -> unit
