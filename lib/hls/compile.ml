module Stg = Rtcad_stg.Stg

exception Unsupported of string

let signals_of_channel c dir =
  match dir with
  | Ast.In -> [ (c ^ "_req", Stg.Input); (c ^ "_ack", Stg.Output) ]
  | Ast.Out -> [ (c ^ "_req", Stg.Output); (c ^ "_ack", Stg.Input) ]

(* Transition reference names with the builder's occurrence syntax. *)
let occ_name base occ = if occ = 1 then base else Printf.sprintf "%s/%d" base occ

type ctx = {
  b : Stg.Build.t;
  counters : (string, int) Hashtbl.t; (* channel -> occurrences so far *)
  occurrences : (string, string list) Hashtbl.t; (* reversed occ-name prefixes *)
  connected : (string * string, unit) Hashtbl.t;
  mutable taus : int; (* join dummies created *)
}

(* Control flow and the four-phase protocol chains can ask for the same
   arc (e.g. "B!;B!"): create each place once. *)
let link ctx src dst =
  if not (Hashtbl.mem ctx.connected (src, dst)) then begin
    Hashtbl.add ctx.connected (src, dst) ();
    Stg.Build.connect ctx.b src dst
  end

(* Connect a set of exit transitions to a set of entry transitions.  With
   a single transition on either side, direct places suffice (the join or
   fork happens at that transition).  With several on both sides, the
   all-pairs encoding is UNSAFE (one branch can lap another across the
   boundary), so a silent join transition synchronizes them.  [mark]
   places the initial tokens of the loop closure on the entry side. *)
let barrier ?(mark = false) ctx exits entries =
  let arc e en =
    link ctx e en;
    if mark then Stg.Build.mark_between ctx.b e en
  in
  match (exits, entries) with
  | [ _ ], _ | _, [ _ ] -> List.iter (fun e -> List.iter (arc e) entries) exits
  | _ ->
    let tau = Printf.sprintf "tau%d" ctx.taus in
    ctx.taus <- ctx.taus + 1;
    Stg.Build.dummy ctx.b tau;
    List.iter (fun e -> link ctx e tau) exits;
    List.iter (fun en -> arc tau en) entries

let next_occ ctx chan =
  let k = 1 + Option.value ~default:0 (Hashtbl.find_opt ctx.counters chan) in
  Hashtbl.replace ctx.counters chan k;
  k

(* Expand one action occurrence: returns (entry transitions, exit
   transitions) for the control flow and records the occurrence. *)
let expand_action ctx = function
  | Ast.Recv chan | Ast.Send chan as action ->
    let k = next_occ ctx chan in
    let req s = occ_name (chan ^ "_req" ^ s) k and ack s = occ_name (chan ^ "_ack" ^ s) k in
    (* The four-phase chain is identical for both directions; what differs
       is which side drives req (declared at the signal level) and which
       transition the control token gates. *)
    link ctx (req "+") (ack "+");
    link ctx (ack "+") (req "-");
    link ctx (req "-") (ack "-");
    Hashtbl.replace ctx.occurrences chan
      (occ_name (chan ^ "_req+") k
      :: Option.value ~default:[] (Hashtbl.find_opt ctx.occurrences chan));
    let entry =
      match action with
      | Ast.Recv _ -> ack "+" (* circuit acknowledges when control is ready *)
      | Ast.Send _ -> req "+" (* circuit requests when control is ready *)
    in
    ([ entry ], [ ack "-" ])

(* Channels engaged inside two branches of the same par are rejected. *)
let rec channels_of = function
  | Ast.Action (Ast.Recv c) | Ast.Action (Ast.Send c) -> [ c ]
  | Ast.Seq ps | Ast.Par ps -> List.concat_map channels_of ps
  | Ast.Loop p -> channels_of p

let check_par_usage proc =
  let rec go = function
    | Ast.Action _ -> ()
    | Ast.Seq ps -> List.iter go ps
    | Ast.Loop p -> go p
    | Ast.Par ps ->
      List.iter go ps;
      let sets = List.map (fun p -> List.sort_uniq compare (channels_of p)) ps in
      let rec pairwise = function
        | [] -> ()
        | s :: rest ->
          List.iter
            (fun s' ->
              List.iter
                (fun c ->
                  if List.mem c s' then
                    raise
                      (Unsupported
                         (Printf.sprintf "channel %s engaged in parallel branches" c)))
                s)
            rest;
          pairwise rest
      in
      pairwise sets
  in
  go proc

let rec expand ctx = function
  | Ast.Action a -> expand_action ctx a
  | Ast.Seq ps ->
    let parts = List.map (expand ctx) ps in
    let rec chain = function
      | (_, exits) :: ((entries, _) :: _ as rest) ->
        barrier ctx exits entries;
        chain rest
      | [ _ ] | [] -> ()
    in
    chain parts;
    (match (parts, List.rev parts) with
    | (first_entries, _) :: _, (_, last_exits) :: _ -> (first_entries, last_exits)
    | _ -> failwith "Compile: empty sequence")
  | Ast.Par ps ->
    let parts = List.map (expand ctx) ps in
    (List.concat_map fst parts, List.concat_map snd parts)
  | Ast.Loop _ -> raise (Unsupported "nested loop (the outermost loop is implicit)")

let compile (prog : Ast.program) =
  check_par_usage prog.Ast.body;
  (* Strip a redundant outermost loop; reject inner ones in [expand]. *)
  let body = match prog.Ast.body with Ast.Loop p -> p | p -> p in
  let b = Stg.Build.create () in
  List.iter
    (fun (c, dir) ->
      List.iter (fun (name, kind) -> Stg.Build.signal b kind name) (signals_of_channel c dir))
    prog.Ast.channels;
  let ctx =
    {
      b;
      counters = Hashtbl.create 8;
      occurrences = Hashtbl.create 8;
      connected = Hashtbl.create 32;
      taus = 0;
    }
  in
  let entries, exits = expand ctx body in
  (* Close the control loop with initially marked places. *)
  barrier ~mark:true ctx exits entries;
  (* Four-phase protocol order between successive occurrences of the same
     channel: ack- of one enables req+ of the next, wrapping around with
     an initial token. *)
  Hashtbl.iter
    (fun chan occs_rev ->
      let occs = List.rev occs_rev in
      let ack_minus_of req_plus =
        (* "C_req+/k" -> "C_ack-/k" *)
        let prefix = chan ^ "_req+" in
        let suffix = String.sub req_plus (String.length prefix)
            (String.length req_plus - String.length prefix) in
        chan ^ "_ack-" ^ suffix
      in
      let rec chain = function
        | a :: (b' :: _ as rest) ->
          link ctx (ack_minus_of a) b';
          chain rest
        | [ last ] ->
          let first = List.nth occs 0 in
          link ctx (ack_minus_of last) first;
          Stg.Build.mark_between b (ack_minus_of last) first
        | [] -> ()
      in
      chain occs)
    ctx.occurrences;
  Stg.Build.finish b
