module Bitset = Rtcad_util.Bitset
module Vec = Rtcad_util.Vec
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri

(* Open-addressed map from marking to state id: slots hold [id + 1]
   (0 = empty) and keys are read back from the state vector, so the
   table itself is a bare int array — no buckets, no boxed bindings. *)
type marking_tbl = { mutable slots : int array; mutable used : int }

(* Start small: the CSC search builds thousands of tiny graphs, where a
   large initial table would dominate the build time; doubling reaches
   any size with amortized-constant cost. *)
let mt_create () = { slots = Array.make 64 0; used = 0 }

(* Probe loops live at top level: a local [let rec] would allocate its
   closure on every lookup, i.e. once per explored edge. *)
let rec mt_probe slots mask get m i =
  let v = Array.unsafe_get slots i in
  if v = 0 then -1
  else if Bitset.equal (get (v - 1)) m then v - 1
  else mt_probe slots mask get m ((i + 1) land mask)

let mt_find tbl ~get m =
  let mask = Array.length tbl.slots - 1 in
  mt_probe tbl.slots mask get m (Bitset.hash m land mask)

let rec mt_place slots mask v i =
  if Array.unsafe_get slots i = 0 then Array.unsafe_set slots i v
  else mt_place slots mask v ((i + 1) land mask)

(* [m] (= [get id]) must not already be present. *)
let mt_add tbl ~get id m =
  let mask = Array.length tbl.slots - 1 in
  mt_place tbl.slots mask (id + 1) (Bitset.hash m land mask);
  tbl.used <- tbl.used + 1;
  if 2 * tbl.used > Array.length tbl.slots then begin
    let old = tbl.slots in
    tbl.slots <- Array.make (2 * Array.length old) 0;
    let mask' = Array.length tbl.slots - 1 in
    Array.iter
      (fun v ->
        if v <> 0 then
          mt_place tbl.slots mask' v (Bitset.hash (get (v - 1)) land mask'))
      old
  end

(* Edges are stored in one flat CSR-style array per direction:
   [succ_dat] interleaves (transition, target) pairs for state [s] between
   [succ_off.(s)] and [succ_off.(s + 1)], in the same order the old list
   representation exposed them ([pred_dat]/[pred_off] likewise with
   (transition, source) pairs).  The list-returning accessors materialize
   on demand; the [iter_/num_] variants walk the packed arrays directly. *)
type t = {
  stg : Stg.t;
  markings : Bitset.t array;
  codes : Bitset.t array;
  succ_off : int array;
  succ_dat : int array;
  edges : int Vec.t; (* raw (source, transition, target) triples *)
  mutable preds : (int array * int array) option;
      (* (off, dat), packed on first use: nothing on the hot paths reads
         predecessor edges, so candidate graphs never pay for them *)
  initial : int;
  by_marking : marking_tbl;
}

exception Inconsistent of string
exception Too_large of int

let rec initial_code_from stg n i code =
  if i >= n then code
  else
    initial_code_from stg n (i + 1)
      (if Stg.initial_value stg i then Bitset.add code i else code)

let initial_code stg =
  let n = Stg.num_signals stg in
  initial_code_from stg n 0 (Bitset.create n)

(* Plain concatenation, not [Format.asprintf]: the CSC search probes
   thousands of candidate insertions whose builds fail here, and the
   formatting machinery would dominate those failure paths.  The message
   matches what [pp_transition] would have produced for an edge label. *)
let inconsistent_msg stg signal dir how =
  let n = Stg.signal_name stg signal in
  n ^ (match dir with Stg.Rise -> "+" | Stg.Fall -> "-") ^ " fires with " ^ n ^ how

(* Direction check of [apply_label] alone: raises if transition [t] fires
   against the current value of its signal in [code]. *)
let check_label stg code t =
  match Stg.label stg t with
  | Stg.Dummy -> ()
  | Stg.Edge { signal; dir } ->
    let v = Bitset.mem code signal in
    (match dir with
    | Stg.Rise ->
      if v then raise (Inconsistent (inconsistent_msg stg signal dir " already high"))
    | Stg.Fall ->
      if not v then raise (Inconsistent (inconsistent_msg stg signal dir " already low")))

let apply_label stg code t =
  check_label stg code t;
  match Stg.label stg t with
  | Stg.Dummy -> code
  | Stg.Edge { signal; dir } ->
    (match dir with
    | Stg.Rise -> Bitset.add code signal
    | Stg.Fall -> Bitset.remove code signal)

(* Does [code] followed by transition [t] land exactly on [code']?  The
   successor code is one bit-flip away (or identical, for dummies), so no
   intermediate set needs allocating. *)
let code_matches stg code t code' =
  match Stg.label stg t with
  | Stg.Dummy -> Bitset.equal code' code
  | Stg.Edge { signal; _ } -> Bitset.equal_flip code' code signal

(* Pack an edge triple vector (stride 3: a, t, b) into a flat CSR pair
   ([off], [dat]) of per-[a] interleaved (t, b) runs, preserving edge
   order, via counting sort. *)
let pack_edges ~n ~key ~value edges =
  let ne = Vec.length edges / 3 in
  let off = Array.make (n + 1) 0 in
  for e = 0 to ne - 1 do
    let k = key (Vec.get edges (3 * e)) (Vec.get edges ((3 * e) + 2)) in
    off.(k + 1) <- off.(k + 1) + 2
  done;
  for k = 0 to n - 1 do
    off.(k + 1) <- off.(k + 1) + off.(k)
  done;
  let dat = Array.make (2 * ne) 0 in
  let cursor = Array.copy off in
  for e = 0 to ne - 1 do
    let a = Vec.get edges (3 * e)
    and t = Vec.get edges ((3 * e) + 1)
    and b = Vec.get edges ((3 * e) + 2) in
    let k = key a b in
    let c = cursor.(k) in
    dat.(c) <- t;
    dat.(c + 1) <- value a b;
    cursor.(k) <- c + 2
  done;
  (off, dat)

let build ?(max_states = 200_000) stg =
  let net = Stg.net stg in
  let by_marking = mt_create () in
  let empty = Bitset.create 0 in
  let markings = Vec.create ~capacity:32 ~dummy:empty () in
  let codes = Vec.create ~capacity:32 ~dummy:empty () in
  let get id = Vec.get markings id in
  let add marking code =
    let id = Vec.length markings in
    Vec.push markings marking;
    Vec.push codes code;
    mt_add by_marking ~get id marking;
    id
  in
  let m0 = Petri.initial_marking net in
  let c0 = initial_code stg in
  let s0 = add m0 c0 in
  let edges = Vec.create ~capacity:64 ~dummy:0 () in
  (* States are discovered in BFS order and numbered densely, so a cursor
     over the state vector doubles as the BFS frontier. *)
  let cursor = ref 0 in
  while !cursor < Vec.length markings do
    let s = !cursor in
    incr cursor;
    let m = Vec.get markings s and c = Vec.get codes s in
    Petri.iter_enabled net m (fun t ->
        let m' = Petri.fire net m t in
        check_label stg c t;
        let s' =
          match mt_find by_marking ~get m' with
          | -1 ->
            if Vec.length markings >= max_states then raise (Too_large max_states);
            add m' (apply_label stg c t)
          | s' ->
            if not (code_matches stg c t (Vec.get codes s')) then
              raise (Inconsistent "same marking reached with two different codes");
            s'
        in
        Vec.push edges s;
        Vec.push edges t;
        Vec.push edges s')
  done;
  let n = Vec.length markings in
  let succ_off, succ_dat = pack_edges ~n ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges in
  {
    stg;
    markings = Vec.to_array markings;
    codes = Vec.to_array codes;
    succ_off;
    succ_dat;
    edges;
    preds = None;
    initial = s0;
    by_marking;
  }

let stg sg = sg.stg
let num_states sg = Array.length sg.markings
let initial sg = sg.initial
let marking sg s = sg.markings.(s)
let code sg s = sg.codes.(s)
let value sg s signal = Bitset.mem sg.codes.(s) signal

let num_succs sg s = (sg.succ_off.(s + 1) - sg.succ_off.(s)) / 2

let force_preds sg =
  match sg.preds with
  | Some p -> p
  | None ->
    let p =
      pack_edges ~n:(num_states sg) ~key:(fun _ s' -> s') ~value:(fun s _ -> s) sg.edges
    in
    sg.preds <- Some p;
    p

let num_preds sg s =
  let off, _ = force_preds sg in
  (off.(s + 1) - off.(s)) / 2

let rec pairs_of_packed dat lo k acc =
  if k < lo then acc
  else pairs_of_packed dat lo (k - 2) ((dat.(k), dat.(k + 1)) :: acc)

let succs sg s = pairs_of_packed sg.succ_dat sg.succ_off.(s) (sg.succ_off.(s + 1) - 2) []

let preds sg s =
  let off, dat = force_preds sg in
  pairs_of_packed dat off.(s) (off.(s + 1) - 2) []

let iter_packed f dat lo hi =
  let k = ref lo in
  while !k < hi do
    f (Array.unsafe_get dat !k) (Array.unsafe_get dat (!k + 1));
    k := !k + 2
  done

let iter_succs sg s f = iter_packed f sg.succ_dat sg.succ_off.(s) sg.succ_off.(s + 1)

let iter_preds sg s f =
  let off, dat = force_preds sg in
  iter_packed f dat off.(s) off.(s + 1)

let rec transitions_of_packed dat lo k acc =
  if k < lo then acc else transitions_of_packed dat lo (k - 2) (dat.(k) :: acc)

let enabled sg s =
  transitions_of_packed sg.succ_dat sg.succ_off.(s) (sg.succ_off.(s + 1) - 2) []

let rec excited_from stg dat k hi signal =
  k < hi
  && ((match Stg.label stg dat.(k) with
      | Stg.Edge { signal = u; _ } -> u = signal
      | Stg.Dummy -> false)
     || excited_from stg dat (k + 2) hi signal)

let excited sg s signal =
  excited_from sg.stg sg.succ_dat sg.succ_off.(s) sg.succ_off.(s + 1) signal

let next_value sg s signal = value sg s signal <> excited sg s signal

let find_state sg m =
  match mt_find sg.by_marking ~get:(fun id -> sg.markings.(id)) m with
  | -1 -> None
  | s -> Some s

let deadlocks sg =
  List.filter (fun s -> num_succs sg s = 0) (List.init (num_states sg) Fun.id)

let iter_states f sg =
  for s = 0 to num_states sg - 1 do
    f s
  done

let restrict sg ~allowed =
  let n = num_states sg in
  let renum = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  renum.(sg.initial) <- 0;
  order := [ sg.initial ];
  count := 1;
  Queue.add sg.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    iter_succs sg s (fun t s' ->
        if allowed s t && renum.(s') = -1 then begin
          renum.(s') <- !count;
          incr count;
          order := s' :: !order;
          Queue.add s' queue
        end)
  done;
  let old_of_new = Array.make !count 0 in
  List.iter (fun old -> old_of_new.(renum.(old)) <- old) !order;
  let markings = Array.map (fun old -> sg.markings.(old)) old_of_new in
  let codes = Array.map (fun old -> sg.codes.(old)) old_of_new in
  (* The edge vector records (source, transition, target) in the same
     order the old list-based code produced: per source in ascending new
     index, edges reversed relative to the original succ order. *)
  let edges = Vec.create ~dummy:0 () in
  Array.iteri
    (fun snew old ->
      let dat = sg.succ_dat and lo = sg.succ_off.(old) in
      let k = ref (sg.succ_off.(old + 1) - 2) in
      while !k >= lo do
        let t = dat.(!k) and s' = dat.(!k + 1) in
        if allowed old t && renum.(s') >= 0 then begin
          Vec.push edges snew;
          Vec.push edges t;
          Vec.push edges renum.(s')
        end;
        k := !k - 2
      done)
    old_of_new;
  let succ_off, succ_dat = pack_edges ~n:!count ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges in
  let by_marking = mt_create () in
  Array.iteri (fun i m -> mt_add by_marking ~get:(fun id -> markings.(id)) i m) markings;
  { stg = sg.stg; markings; codes; succ_off; succ_dat; edges; preds = None; initial = 0; by_marking }

let pp_state sg ppf s =
  for i = 0 to Stg.num_signals sg.stg - 1 do
    Format.fprintf ppf "%d" (if value sg s i then 1 else 0)
  done

let pp ppf sg =
  Format.fprintf ppf "@[<v>state graph: %d states@," (num_states sg);
  iter_states
    (fun s ->
      Format.fprintf ppf "  s%d [%a]:" s (pp_state sg) s;
      List.iter
        (fun (t, s') ->
          Format.fprintf ppf " %a->s%d" (Stg.pp_transition sg.stg) t s')
        (succs sg s);
      Format.fprintf ppf "@,")
    sg;
  Format.fprintf ppf "@]"
