module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri

type t = {
  stg : Stg.t;
  markings : Bitset.t array;
  codes : Bitset.t array;
  succs : (int * int) list array;
  preds : (int * int) list array;
  initial : int;
  by_marking : (Bitset.t, int) Hashtbl.t;
}

exception Inconsistent of string
exception Too_large of int

let initial_code stg =
  let n = Stg.num_signals stg in
  let rec go i code =
    if i >= n then code
    else go (i + 1) (if Stg.initial_value stg i then Bitset.add code i else code)
  in
  go 0 (Bitset.create n)

let apply_label stg code t =
  match Stg.label stg t with
  | Stg.Dummy -> code
  | Stg.Edge { signal; dir } ->
    let v = Bitset.mem code signal in
    (match dir with
    | Stg.Rise ->
      if v then
        raise
          (Inconsistent
             (Format.asprintf "%a fires with %s already high" (Stg.pp_transition stg) t
                (Stg.signal_name stg signal)))
      else Bitset.add code signal
    | Stg.Fall ->
      if not v then
        raise
          (Inconsistent
             (Format.asprintf "%a fires with %s already low" (Stg.pp_transition stg) t
                (Stg.signal_name stg signal)))
      else Bitset.remove code signal)

let build ?(max_states = 200_000) stg =
  let net = Stg.net stg in
  let by_marking = Hashtbl.create 256 in
  let markings = ref [] and codes = ref [] in
  let n = ref 0 in
  let add marking code =
    Hashtbl.add by_marking marking !n;
    markings := marking :: !markings;
    codes := code :: !codes;
    incr n;
    !n - 1
  in
  let m0 = Petri.initial_marking net in
  let c0 = initial_code stg in
  let s0 = add m0 c0 in
  let edges = ref [] in
  let queue = Queue.create () in
  Queue.add s0 queue;
  let marking_of = Hashtbl.create 256 in
  Hashtbl.add marking_of s0 (m0, c0);
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let m, c = Hashtbl.find marking_of s in
    let fire t =
      let m' = Petri.fire net m t in
      let c' = apply_label stg c t in
      let s' =
        match Hashtbl.find_opt by_marking m' with
        | Some s' ->
          let _, existing = Hashtbl.find marking_of s' in
          if not (Bitset.equal existing c') then
            raise (Inconsistent "same marking reached with two different codes");
          s'
        | None ->
          if !n >= max_states then raise (Too_large max_states);
          let s' = add m' c' in
          Hashtbl.add marking_of s' (m', c');
          Queue.add s' queue;
          s'
      in
      edges := (s, t, s') :: !edges
    in
    List.iter fire (Petri.enabled_transitions net m)
  done;
  let markings = Array.of_list (List.rev !markings) in
  let codes = Array.of_list (List.rev !codes) in
  let succs = Array.make !n [] and preds = Array.make !n [] in
  List.iter
    (fun (s, t, s') ->
      succs.(s) <- (t, s') :: succs.(s);
      preds.(s') <- (t, s) :: preds.(s'))
    !edges;
  { stg; markings; codes; succs; preds; initial = s0; by_marking }

let stg sg = sg.stg
let num_states sg = Array.length sg.markings
let initial sg = sg.initial
let marking sg s = sg.markings.(s)
let code sg s = sg.codes.(s)
let value sg s signal = Bitset.mem sg.codes.(s) signal
let succs sg s = sg.succs.(s)
let preds sg s = sg.preds.(s)
let enabled sg s = List.map fst sg.succs.(s)

let excited sg s signal =
  List.exists
    (fun (t, _) ->
      match Stg.label sg.stg t with
      | Stg.Edge { signal = u; _ } -> u = signal
      | Stg.Dummy -> false)
    sg.succs.(s)

let next_value sg s signal = value sg s signal <> excited sg s signal
let find_state sg m = Hashtbl.find_opt sg.by_marking m
let deadlocks sg =
  List.filter (fun s -> sg.succs.(s) = []) (List.init (num_states sg) Fun.id)

let iter_states f sg =
  for s = 0 to num_states sg - 1 do
    f s
  done

let restrict sg ~allowed =
  let n = num_states sg in
  let renum = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  renum.(sg.initial) <- 0;
  order := [ sg.initial ];
  count := 1;
  Queue.add sg.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (t, s') ->
        if allowed s t && renum.(s') = -1 then begin
          renum.(s') <- !count;
          incr count;
          order := s' :: !order;
          Queue.add s' queue
        end)
      sg.succs.(s)
  done;
  let old_of_new = Array.make !count 0 in
  List.iter (fun old -> old_of_new.(renum.(old)) <- old) !order;
  let markings = Array.map (fun old -> sg.markings.(old)) old_of_new in
  let codes = Array.map (fun old -> sg.codes.(old)) old_of_new in
  let succs = Array.make !count [] and preds = Array.make !count [] in
  Array.iteri
    (fun snew old ->
      List.iter
        (fun (t, s') ->
          if allowed old t && renum.(s') >= 0 then
            succs.(snew) <- (t, renum.(s')) :: succs.(snew))
        sg.succs.(old))
    old_of_new;
  Array.iteri
    (fun snew _ ->
      List.iter (fun (t, s') -> preds.(s') <- (t, snew) :: preds.(s')) succs.(snew))
    old_of_new;
  let by_marking = Hashtbl.create 256 in
  Array.iteri (fun i m -> Hashtbl.add by_marking m i) markings;
  { stg = sg.stg; markings; codes; succs; preds; initial = 0; by_marking }

let pp_state sg ppf s =
  for i = 0 to Stg.num_signals sg.stg - 1 do
    Format.fprintf ppf "%d" (if value sg s i then 1 else 0)
  done

let pp ppf sg =
  Format.fprintf ppf "@[<v>state graph: %d states@," (num_states sg);
  iter_states
    (fun s ->
      Format.fprintf ppf "  s%d [%a]:" s (pp_state sg) s;
      List.iter
        (fun (t, s') ->
          Format.fprintf ppf " %a->s%d" (Stg.pp_transition sg.stg) t s')
        (succs sg s);
      Format.fprintf ppf "@,")
    sg;
  Format.fprintf ppf "@]"
