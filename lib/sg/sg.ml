module Bitset = Rtcad_util.Bitset
module Vec = Rtcad_util.Vec
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs

(* Open-addressed map from marking to state id: slots hold [id + 1]
   (0 = empty) and keys are read back from the state vector, so the
   table itself is a bare int array — no buckets, no boxed bindings. *)
type marking_tbl = { mutable slots : int array; mutable used : int }

(* Start small: the CSC search builds thousands of tiny graphs, where a
   large initial table would dominate the build time; doubling reaches
   any size with amortized-constant cost. *)
let mt_create () = { slots = Array.make 64 0; used = 0 }

(* Probe loops live at top level: a local [let rec] would allocate its
   closure on every lookup, i.e. once per explored edge. *)
let rec mt_probe slots mask get m i =
  let v = Array.unsafe_get slots i in
  if v = 0 then -1
  else if Bitset.equal (get (v - 1)) m then v - 1
  else mt_probe slots mask get m ((i + 1) land mask)

let mt_find tbl ~get m =
  let mask = Array.length tbl.slots - 1 in
  mt_probe tbl.slots mask get m (Bitset.hash m land mask)

let rec mt_place slots mask v i =
  if Array.unsafe_get slots i = 0 then Array.unsafe_set slots i v
  else mt_place slots mask v ((i + 1) land mask)

(* [m] (= [get id]) must not already be present. *)
let mt_add tbl ~get id m =
  let mask = Array.length tbl.slots - 1 in
  mt_place tbl.slots mask (id + 1) (Bitset.hash m land mask);
  tbl.used <- tbl.used + 1;
  if 2 * tbl.used > Array.length tbl.slots then begin
    let old = tbl.slots in
    tbl.slots <- Array.make (2 * Array.length old) 0;
    let mask' = Array.length tbl.slots - 1 in
    Array.iter
      (fun v ->
        if v <> 0 then
          mt_place tbl.slots mask' v (Bitset.hash (get (v - 1)) land mask'))
      old
  end

(* Edges are stored in one flat CSR-style array per direction:
   [succ_dat] interleaves (transition, target) pairs for state [s] between
   [succ_off.(s)] and [succ_off.(s + 1)], in the same order the old list
   representation exposed them ([pred_dat]/[pred_off] likewise with
   (transition, source) pairs).  The list-returning accessors materialize
   on demand; the [iter_/num_] variants walk the packed arrays directly. *)
type t = {
  stg : Stg.t;
  markings : Bitset.t array;
  codes : Bitset.t array;
  succ_off : int array;
  succ_dat : int array;
  edges : int Vec.t; (* raw (source, transition, target) triples *)
  mutable preds : (int array * int array) option;
      (* (off, dat), packed on first use: nothing on the hot paths reads
         predecessor edges, so candidate graphs never pay for them *)
  initial : int;
  by_marking : marking_tbl;
}

exception Inconsistent of string
exception Too_large of int

let rec initial_code_from stg n i code =
  if i >= n then code
  else
    initial_code_from stg n (i + 1)
      (if Stg.initial_value stg i then Bitset.add code i else code)

let initial_code stg =
  let n = Stg.num_signals stg in
  initial_code_from stg n 0 (Bitset.create n)

(* Plain concatenation, not [Format.asprintf]: the CSC search probes
   thousands of candidate insertions whose builds fail here, and the
   formatting machinery would dominate those failure paths.  The message
   matches what [pp_transition] would have produced for an edge label. *)
let inconsistent_msg stg signal dir how =
  let n = Stg.signal_name stg signal in
  n ^ (match dir with Stg.Rise -> "+" | Stg.Fall -> "-") ^ " fires with " ^ n ^ how

(* Direction check of [apply_label] alone: raises if transition [t] fires
   against the current value of its signal in [code]. *)
let check_label stg code t =
  match Stg.label stg t with
  | Stg.Dummy -> ()
  | Stg.Edge { signal; dir } ->
    let v = Bitset.mem code signal in
    (match dir with
    | Stg.Rise ->
      if v then raise (Inconsistent (inconsistent_msg stg signal dir " already high"))
    | Stg.Fall ->
      if not v then raise (Inconsistent (inconsistent_msg stg signal dir " already low")))

let apply_label stg code t =
  check_label stg code t;
  match Stg.label stg t with
  | Stg.Dummy -> code
  | Stg.Edge { signal; dir } ->
    (match dir with
    | Stg.Rise -> Bitset.add code signal
    | Stg.Fall -> Bitset.remove code signal)

(* Does [code] followed by transition [t] land exactly on [code']?  The
   successor code is one bit-flip away (or identical, for dummies), so no
   intermediate set needs allocating. *)
let code_matches stg code t code' =
  match Stg.label stg t with
  | Stg.Dummy -> Bitset.equal code' code
  | Stg.Edge { signal; _ } -> Bitset.equal_flip code' code signal

(* Pack an edge triple vector (stride 3: a, t, b) into a flat CSR pair
   ([off], [dat]) of per-[a] interleaved (t, b) runs, preserving edge
   order, via counting sort. *)
let pack_edges ~n ~key ~value edges =
  let ne = Vec.length edges / 3 in
  let off = Array.make (n + 1) 0 in
  for e = 0 to ne - 1 do
    let k = key (Vec.get edges (3 * e)) (Vec.get edges ((3 * e) + 2)) in
    off.(k + 1) <- off.(k + 1) + 2
  done;
  for k = 0 to n - 1 do
    off.(k + 1) <- off.(k + 1) + off.(k)
  done;
  let dat = Array.make (2 * ne) 0 in
  let cursor = Array.copy off in
  for e = 0 to ne - 1 do
    let a = Vec.get edges (3 * e)
    and t = Vec.get edges ((3 * e) + 1)
    and b = Vec.get edges ((3 * e) + 2) in
    let k = key a b in
    let c = cursor.(k) in
    dat.(c) <- t;
    dat.(c + 1) <- value a b;
    cursor.(k) <- c + 2
  done;
  (off, dat)

let build_serial ?(max_states = 200_000) stg =
  let net = Stg.net stg in
  let by_marking = mt_create () in
  let empty = Bitset.create 0 in
  let markings = Vec.create ~capacity:32 ~dummy:empty () in
  let codes = Vec.create ~capacity:32 ~dummy:empty () in
  let get id = Vec.get markings id in
  let add marking code =
    let id = Vec.length markings in
    Vec.push markings marking;
    Vec.push codes code;
    mt_add by_marking ~get id marking;
    id
  in
  let m0 = Petri.initial_marking net in
  let c0 = initial_code stg in
  let s0 = add m0 c0 in
  let edges = Vec.create ~capacity:64 ~dummy:0 () in
  (* States are discovered in BFS order and numbered densely, so a cursor
     over the state vector doubles as the BFS frontier. *)
  let cursor = ref 0 in
  while !cursor < Vec.length markings do
    let s = !cursor in
    incr cursor;
    let m = Vec.get markings s and c = Vec.get codes s in
    Petri.iter_enabled net m (fun t ->
        let m' = Petri.fire net m t in
        check_label stg c t;
        let s' =
          match mt_find by_marking ~get m' with
          | -1 ->
            if Vec.length markings >= max_states then raise (Too_large max_states);
            add m' (apply_label stg c t)
          | s' ->
            if not (code_matches stg c t (Vec.get codes s')) then
              raise (Inconsistent "same marking reached with two different codes");
            s'
        in
        Vec.push edges s;
        Vec.push edges t;
        Vec.push edges s')
  done;
  let n = Vec.length markings in
  let succ_off, succ_dat = pack_edges ~n ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges in
  {
    stg;
    markings = Vec.to_array markings;
    codes = Vec.to_array codes;
    succ_off;
    succ_dat;
    edges;
    preds = None;
    initial = s0;
    by_marking;
  }

(* --- parallel exploration ---------------------------------------------

   Frontier-parallel BFS over a sharded marking table.  Because state
   ids are canonically renumbered at the end (BFS from the initial
   state, successors in per-state edge order), the result is
   bit-identical to [build_serial] whatever the parallel discovery
   order was: same ids, same packed arrays, same raw edge vector.  Any
   exploration failure falls back to a full serial rerun, so failures
   (which exception, which message) are deterministic too. *)

(* A power of two well above any realistic domain count, so two domains
   rarely contend for the same lock even on adversarial graphs. *)
let nshards = 128

(* Open-addressed like [marking_tbl], but with keys and codes stored
   inline (the global state vector doesn't exist yet while domains are
   claiming ids concurrently) and a mutex guarding each shard. *)
type shard = {
  sm : Mutex.t;
  mutable skeys : Bitset.t array;
  mutable scodes : Bitset.t array;
  mutable sids : int array; (* id + 1; 0 = empty *)
  mutable sused : int;
}

let shard_create empty =
  {
    sm = Mutex.create ();
    skeys = Array.make 64 empty;
    scodes = Array.make 64 empty;
    sids = Array.make 64 0;
    sused = 0;
  }

(* Slot holding [m], or the free slot where it belongs. *)
let rec shard_probe sids skeys mask m i =
  if Array.unsafe_get sids i = 0 then i
  else if Bitset.equal (Array.unsafe_get skeys i) m then i
  else shard_probe sids skeys mask m ((i + 1) land mask)

let rec shard_free sids mask i =
  if Array.unsafe_get sids i = 0 then i else shard_free sids mask ((i + 1) land mask)

let shard_grow sh empty =
  let old_ids = sh.sids and old_keys = sh.skeys and old_codes = sh.scodes in
  let len' = 2 * Array.length old_ids in
  let mask' = len' - 1 in
  sh.sids <- Array.make len' 0;
  sh.skeys <- Array.make len' empty;
  sh.scodes <- Array.make len' empty;
  Array.iteri
    (fun j v ->
      if v <> 0 then begin
        let i = shard_free sh.sids mask' (Bitset.hash old_keys.(j) land mask') in
        sh.sids.(i) <- v;
        sh.skeys.(i) <- old_keys.(j);
        sh.scodes.(i) <- old_codes.(j)
      end)
    old_ids;
  ()

(* Both shard choice and the in-shard probe start come from the same
   hash; disjoint bit ranges keep them independent. *)
let shard_of shards h = Array.unsafe_get shards ((h lsr 20) land (nshards - 1))

(* The serial warm-up bound.  Below it the graph is explored serially
   (tiny graphs — the thousands of trial builds of the CSC search —
   must not pay domain fan-out); beyond it the remaining frontier is
   expanded level-synchronously across domains. *)
let default_par_threshold = 1024

let build_parallel ~max_states ~threshold stg =
  let net = Stg.net stg in
  let empty = Bitset.create 0 in
  let markings = Vec.create ~capacity:32 ~dummy:empty () in
  let codes = Vec.create ~capacity:32 ~dummy:empty () in
  let by_marking = mt_create () in
  let get id = Vec.get markings id in
  let add marking code =
    let id = Vec.length markings in
    Vec.push markings marking;
    Vec.push codes code;
    mt_add by_marking ~get id marking;
    id
  in
  ignore (add (Petri.initial_marking net) (initial_code stg));
  let edges = Vec.create ~capacity:64 ~dummy:0 () in
  (* Serial warm-up: identical to [build_serial] until the state count
     crosses [threshold] (or exploration finishes first). *)
  let cursor = ref 0 in
  while !cursor < Vec.length markings && Vec.length markings < threshold do
    let s = !cursor in
    incr cursor;
    let m = Vec.get markings s and c = Vec.get codes s in
    Petri.iter_enabled net m (fun t ->
        let m' = Petri.fire net m t in
        check_label stg c t;
        let s' =
          match mt_find by_marking ~get m' with
          | -1 ->
            if Vec.length markings >= max_states then raise (Too_large max_states);
            add m' (apply_label stg c t)
          | s' ->
            if not (code_matches stg c t (Vec.get codes s')) then
              raise (Inconsistent "same marking reached with two different codes");
            s'
        in
        Vec.push edges s;
        Vec.push edges t;
        Vec.push edges s')
  done;
  let n0 = Vec.length markings in
  if !cursor >= n0 then begin
    (* Finished below the threshold; package exactly as the serial build
       would have. *)
    let succ_off, succ_dat =
      pack_edges ~n:n0 ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges
    in
    {
      stg;
      markings = Vec.to_array markings;
      codes = Vec.to_array codes;
      succ_off;
      succ_dat;
      edges;
      preds = None;
      initial = 0;
      by_marking;
    }
  end
  else begin
    let jobs = Par.jobs () in
    let counter = Atomic.make n0 in
    let shards = Array.init nshards (fun _ -> shard_create empty) in
    (* Migrate the warm-up states; no concurrency yet, but take each
       shard's mutex anyway so the writes are published to the worker
       domains that will read them. *)
    for id = 0 to n0 - 1 do
      let m = Vec.get markings id in
      let h = Bitset.hash m in
      let sh = shard_of shards h in
      Mutex.lock sh.sm;
      let i = shard_free sh.sids (Array.length sh.sids - 1) (h land (Array.length sh.sids - 1)) in
      sh.sids.(i) <- id + 1;
      sh.skeys.(i) <- m;
      sh.scodes.(i) <- Vec.get codes id;
      sh.sused <- sh.sused + 1;
      if 2 * sh.sused > Array.length sh.sids then shard_grow sh empty;
      Mutex.unlock sh.sm
    done;
    (* Per-participant accumulators, reused across levels ([pedges]
       accumulates for the whole phase).  Written only by their owner
       domain; read after the join of each [run_workers] call. *)
    let dummy_state = (0, empty, empty) in
    let new_states = Array.init jobs (fun _ -> Vec.create ~dummy:dummy_state ()) in
    let pedges = Array.init jobs (fun _ -> Vec.create ~dummy:0 ()) in
    let frontier =
      ref (Array.init (n0 - !cursor) (fun k ->
               let s = !cursor + k in
               (s, Vec.get markings s, Vec.get codes s)))
    in
    while Array.length !frontier > 0 do
      let fr = !frontier in
      let flen = Array.length fr in
      let next = Atomic.make 0 in
      Par.run_workers (fun ~index ~count ->
          let news = new_states.(index) and es = pedges.(index) in
          let chunk = max 1 (flen / (count * 8)) in
          let rec claim () =
            let lo = Atomic.fetch_and_add next chunk in
            if lo < flen then begin
              let hi = min flen (lo + chunk) in
              for k = lo to hi - 1 do
                let s, m, c = fr.(k) in
                Petri.iter_enabled net m (fun t ->
                    let m' = Petri.fire net m t in
                    check_label stg c t;
                    let h = Bitset.hash m' in
                    let sh = shard_of shards h in
                    (* Nothing inside the critical section may raise:
                       a worker abandoning a locked shard would hang
                       every other participant. *)
                    Mutex.lock sh.sm;
                    let mask = Array.length sh.sids - 1 in
                    let i = shard_probe sh.sids sh.skeys mask m' (h land mask) in
                    let v = sh.sids.(i) in
                    if v <> 0 then begin
                      let s' = v - 1 and c'' = sh.scodes.(i) in
                      Mutex.unlock sh.sm;
                      if not (code_matches stg c t c'') then
                        raise
                          (Inconsistent "same marking reached with two different codes");
                      Vec.push es s;
                      Vec.push es t;
                      Vec.push es s'
                    end
                    else begin
                      let id = Atomic.fetch_and_add counter 1 in
                      if id >= max_states then begin
                        Mutex.unlock sh.sm;
                        raise (Too_large max_states)
                      end;
                      (* [check_label] above passed, so this cannot
                         raise. *)
                      let c' = apply_label stg c t in
                      sh.sids.(i) <- id + 1;
                      sh.skeys.(i) <- m';
                      sh.scodes.(i) <- c';
                      sh.sused <- sh.sused + 1;
                      if 2 * sh.sused > Array.length sh.sids then shard_grow sh empty;
                      Mutex.unlock sh.sm;
                      Vec.push news (id, m', c');
                      Vec.push es s;
                      Vec.push es t;
                      Vec.push es id
                    end)
              done;
              claim ()
            end
          in
          claim ());
      let total_new = Array.fold_left (fun acc v -> acc + Vec.length v) 0 new_states in
      let nf = Array.make total_new dummy_state in
      let k = ref 0 in
      Array.iter
        (fun v ->
          Vec.iter
            (fun x ->
              nf.(!k) <- x;
              incr k)
            v;
          Vec.clear v)
        new_states;
      frontier := nf
    done;
    (* Assembly: gather states out of the shards, pack a provisional
       CSR, then renumber canonically — BFS from the initial state,
       successors in stored (= [Petri.iter_enabled]) order — which is
       exactly the id assignment the serial build produces. *)
    let total = Atomic.get counter in
    let prov_m = Array.make total empty and prov_c = Array.make total empty in
    Array.iter
      (fun sh ->
        Array.iteri
          (fun i v ->
            if v <> 0 then begin
              prov_m.(v - 1) <- sh.skeys.(i);
              prov_c.(v - 1) <- sh.scodes.(i)
            end)
          sh.sids)
      shards;
    let all_edges =
      let ne =
        Vec.length edges + Array.fold_left (fun acc v -> acc + Vec.length v) 0 pedges
      in
      let all = Vec.create ~capacity:(max 1 ne) ~dummy:0 () in
      Vec.iter (Vec.push all) edges;
      Array.iter (fun v -> Vec.iter (Vec.push all) v) pedges;
      all
    in
    let poff, pdat =
      pack_edges ~n:total ~key:(fun s _ -> s) ~value:(fun _ s' -> s') all_edges
    in
    let renum = Array.make total (-1) in
    let old_of_new = Array.make total 0 in
    renum.(0) <- 0;
    let count = ref 1 and head = ref 0 in
    while !head < !count do
      let old = old_of_new.(!head) in
      incr head;
      let k = ref poff.(old) in
      let hi = poff.(old + 1) in
      while !k < hi do
        let tgt = pdat.(!k + 1) in
        if renum.(tgt) = -1 then begin
          renum.(tgt) <- !count;
          old_of_new.(!count) <- tgt;
          incr count
        end;
        k := !k + 2
      done
    done;
    (* Every claimed state was reached over a recorded edge, so the
       canonical BFS covers all of them. *)
    assert (!count = total);
    let markings_arr = Array.init total (fun ns -> prov_m.(old_of_new.(ns))) in
    let codes_arr = Array.init total (fun ns -> prov_c.(old_of_new.(ns))) in
    let cedges = Vec.create ~capacity:(max 1 (Vec.length all_edges)) ~dummy:0 () in
    for ns = 0 to total - 1 do
      let old = old_of_new.(ns) in
      let k = ref poff.(old) in
      let hi = poff.(old + 1) in
      while !k < hi do
        Vec.push cedges ns;
        Vec.push cedges pdat.(!k);
        Vec.push cedges renum.(pdat.(!k + 1));
        k := !k + 2
      done
    done;
    let succ_off, succ_dat =
      pack_edges ~n:total ~key:(fun s _ -> s) ~value:(fun _ s' -> s') cedges
    in
    let by_marking = mt_create () in
    Array.iteri (fun i m -> mt_add by_marking ~get:(fun id -> markings_arr.(id)) i m) markings_arr;
    {
      stg;
      markings = markings_arr;
      codes = codes_arr;
      succ_off;
      succ_dat;
      edges = cedges;
      preds = None;
      initial = 0;
      by_marking;
    }
  end

let build ?(max_states = 200_000) ?(par_threshold = default_par_threshold) stg =
  Obs.span "sg.build" (fun () ->
      let sg =
        if Par.jobs () = 1 || Par.in_parallel_region () then build_serial ~max_states stg
        else
          try build_parallel ~max_states ~threshold:par_threshold stg
          with Inconsistent _ | Too_large _ | Petri.Unsafe _ ->
            (* Which offending edge a parallel exploration trips over first is
               scheduling-dependent; rerun serially so callers (and the
               differential oracle) always see the serial failure. *)
            build_serial ~max_states stg
      in
      (* Post-loop deltas only: the exploration kernels stay untouched. *)
      Obs.incr "sg.builds";
      Obs.incr ~by:(Array.length sg.markings) "sg.states";
      Obs.incr ~by:(Vec.length sg.edges / 3) "sg.edges";
      sg)

(* Package a finished exploration that is already in canonical serial-BFS
   order (state 0 = initial, successors discovered in per-state
   [Petri.iter_enabled] order).  Used by [Symbolic.materialize], which
   replays the serial BFS against the symbolic reachable set: reusing the
   exact packing code here is what makes its output bit-identical to
   [build_serial]. *)
let of_exploration ~stg ~markings ~codes ~edges =
  let n = Array.length markings in
  let succ_off, succ_dat =
    pack_edges ~n ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges
  in
  let by_marking = mt_create () in
  Array.iteri
    (fun i m -> mt_add by_marking ~get:(fun id -> markings.(id)) i m)
    markings;
  { stg; markings; codes; succ_off; succ_dat; edges; preds = None; initial = 0; by_marking }

let stg sg = sg.stg
let num_states sg = Array.length sg.markings
let initial sg = sg.initial
let marking sg s = sg.markings.(s)
let code sg s = sg.codes.(s)
let value sg s signal = Bitset.mem sg.codes.(s) signal

let num_succs sg s = (sg.succ_off.(s + 1) - sg.succ_off.(s)) / 2

let force_preds sg =
  match sg.preds with
  | Some p -> p
  | None ->
    let p =
      pack_edges ~n:(num_states sg) ~key:(fun _ s' -> s') ~value:(fun s _ -> s) sg.edges
    in
    sg.preds <- Some p;
    p

let num_preds sg s =
  let off, _ = force_preds sg in
  (off.(s + 1) - off.(s)) / 2

let rec pairs_of_packed dat lo k acc =
  if k < lo then acc
  else pairs_of_packed dat lo (k - 2) ((dat.(k), dat.(k + 1)) :: acc)

let succs sg s = pairs_of_packed sg.succ_dat sg.succ_off.(s) (sg.succ_off.(s + 1) - 2) []

let preds sg s =
  let off, dat = force_preds sg in
  pairs_of_packed dat off.(s) (off.(s + 1) - 2) []

let iter_packed f dat lo hi =
  let k = ref lo in
  while !k < hi do
    f (Array.unsafe_get dat !k) (Array.unsafe_get dat (!k + 1));
    k := !k + 2
  done

let iter_succs sg s f = iter_packed f sg.succ_dat sg.succ_off.(s) sg.succ_off.(s + 1)

let iter_preds sg s f =
  let off, dat = force_preds sg in
  iter_packed f dat off.(s) off.(s + 1)

let rec transitions_of_packed dat lo k acc =
  if k < lo then acc else transitions_of_packed dat lo (k - 2) (dat.(k) :: acc)

let enabled sg s =
  transitions_of_packed sg.succ_dat sg.succ_off.(s) (sg.succ_off.(s + 1) - 2) []

let rec excited_from stg dat k hi signal =
  k < hi
  && ((match Stg.label stg dat.(k) with
      | Stg.Edge { signal = u; _ } -> u = signal
      | Stg.Dummy -> false)
     || excited_from stg dat (k + 2) hi signal)

let excited sg s signal =
  excited_from sg.stg sg.succ_dat sg.succ_off.(s) sg.succ_off.(s + 1) signal

let next_value sg s signal = value sg s signal <> excited sg s signal

let find_state sg m =
  match mt_find sg.by_marking ~get:(fun id -> sg.markings.(id)) m with
  | -1 -> None
  | s -> Some s

let deadlocks sg =
  List.filter (fun s -> num_succs sg s = 0) (List.init (num_states sg) Fun.id)

let iter_states f sg =
  for s = 0 to num_states sg - 1 do
    f s
  done

let restrict sg ~allowed =
  let n = num_states sg in
  let renum = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  renum.(sg.initial) <- 0;
  order := [ sg.initial ];
  count := 1;
  Queue.add sg.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    iter_succs sg s (fun t s' ->
        if allowed s t && renum.(s') = -1 then begin
          renum.(s') <- !count;
          incr count;
          order := s' :: !order;
          Queue.add s' queue
        end)
  done;
  let old_of_new = Array.make !count 0 in
  List.iter (fun old -> old_of_new.(renum.(old)) <- old) !order;
  let markings = Array.map (fun old -> sg.markings.(old)) old_of_new in
  let codes = Array.map (fun old -> sg.codes.(old)) old_of_new in
  (* The edge vector records (source, transition, target) in the same
     order the old list-based code produced: per source in ascending new
     index, edges reversed relative to the original succ order. *)
  let edges = Vec.create ~dummy:0 () in
  Array.iteri
    (fun snew old ->
      let dat = sg.succ_dat and lo = sg.succ_off.(old) in
      let k = ref (sg.succ_off.(old + 1) - 2) in
      while !k >= lo do
        let t = dat.(!k) and s' = dat.(!k + 1) in
        if allowed old t && renum.(s') >= 0 then begin
          Vec.push edges snew;
          Vec.push edges t;
          Vec.push edges renum.(s')
        end;
        k := !k - 2
      done)
    old_of_new;
  let succ_off, succ_dat = pack_edges ~n:!count ~key:(fun s _ -> s) ~value:(fun _ s' -> s') edges in
  let by_marking = mt_create () in
  Array.iteri (fun i m -> mt_add by_marking ~get:(fun id -> markings.(id)) i m) markings;
  { stg = sg.stg; markings; codes; succ_off; succ_dat; edges; preds = None; initial = 0; by_marking }

let pp_state sg ppf s =
  for i = 0 to Stg.num_signals sg.stg - 1 do
    Format.fprintf ppf "%d" (if value sg s i then 1 else 0)
  done

let pp ppf sg =
  Format.fprintf ppf "@[<v>state graph: %d states@," (num_states sg);
  iter_states
    (fun s ->
      Format.fprintf ppf "  s%d [%a]:" s (pp_state sg) s;
      List.iter
        (fun (t, s') ->
          Format.fprintf ppf " %a->s%d" (Stg.pp_transition sg.stg) t s')
        (succs sg s);
      Format.fprintf ppf "@,")
    sg;
  Format.fprintf ppf "@]"
