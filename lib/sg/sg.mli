(** State graphs: the reachability graph of an STG.

    Each state pairs a safe-net marking with the binary code of all signals
    in that state.  The graph is built by breadth-first exploration from the
    initial marking; safety and consistency (strict alternation of rising
    and falling edges of every signal) are enforced during construction. *)

type t

exception Inconsistent of string
(** A signal would rise when already high (or fall when low), or the same
    marking is reached with two different codes. *)

exception Too_large of int
(** Raised when exploration exceeds the state bound. *)

val build : ?max_states:int -> ?par_threshold:int -> Rtcad_stg.Stg.t -> t
(** Explore the reachable state space.  Default bound is 200000 states.
    Raises {!Inconsistent}, {!Too_large}, or {!Rtcad_stg.Petri.Unsafe}.

    When [Rtcad_par.Par.jobs () > 1] (and the caller is not already
    inside a parallel region), exploration switches to frontier-parallel
    BFS once [par_threshold] states (default 1024) have been discovered
    serially.  The result — state numbering, packed edge arrays, raised
    exceptions — is bit-identical to the serial build: states are
    renumbered canonically at the end, and any parallel-phase failure
    falls back to a full serial rerun.  [par_threshold] exists so tests
    can force the parallel path on small graphs. *)

(**/**)

val of_exploration :
  stg:Rtcad_stg.Stg.t ->
  markings:Rtcad_util.Bitset.t array ->
  codes:Rtcad_util.Bitset.t array ->
  edges:int Rtcad_util.Vec.t ->
  t
(** Internal: package a finished exploration into a state graph.  The
    states must already be in canonical serial-BFS order (state 0 is the
    initial state) and [edges] must hold the raw
    (source, transition, target) triples in discovery order.  Used by
    {!Symbolic.materialize}; not part of the stable API. *)

val initial_code : Rtcad_stg.Stg.t -> Rtcad_util.Bitset.t
(** Internal: the code of the initial state (signals at their declared
    initial values).  Shared with the symbolic engine. *)

val inconsistent_msg : Rtcad_stg.Stg.t -> int -> Rtcad_stg.Stg.dir -> string -> string
(** Internal: the exact message an {!Inconsistent} label check produces,
    so the symbolic engine raises byte-identical failures. *)

val check_label : Rtcad_stg.Stg.t -> Rtcad_util.Bitset.t -> int -> unit
(** Internal: raise {!Inconsistent} if the transition fires against the
    current value of its signal. *)

val apply_label : Rtcad_stg.Stg.t -> Rtcad_util.Bitset.t -> int -> Rtcad_util.Bitset.t
(** Internal: {!check_label} then flip the signal. *)

val code_matches : Rtcad_stg.Stg.t -> Rtcad_util.Bitset.t -> int -> Rtcad_util.Bitset.t -> bool
(** Internal: does code followed by the transition land on exactly the
    second code? *)

(**/**)

val stg : t -> Rtcad_stg.Stg.t
val num_states : t -> int
val initial : t -> int

val marking : t -> int -> Rtcad_util.Bitset.t
val code : t -> int -> Rtcad_util.Bitset.t
(** Signal values in a state, as a bit set over signal indices. *)

val value : t -> int -> int -> bool
(** [value sg state signal]. *)

val succs : t -> int -> (int * int) list
(** Outgoing edges as [(transition, target)] pairs. *)

val preds : t -> int -> (int * int) list
(** Incoming edges as [(transition, source)] pairs. *)

val num_succs : t -> int -> int
val num_preds : t -> int -> int

val iter_succs : t -> int -> (int -> int -> unit) -> unit
(** [iter_succs sg s f] calls [f transition target] for each outgoing
    edge, in {!succs} order, without materializing the list.  Edges are
    stored packed; prefer this in hot loops. *)

val iter_preds : t -> int -> (int -> int -> unit) -> unit

val enabled : t -> int -> int list
(** Transitions enabled in a state. *)

val excited : t -> int -> int -> bool
(** [excited sg state signal]: some enabled transition toggles [signal]. *)

val next_value : t -> int -> int -> bool
(** Implied next value of a signal: current value xor excitation.  This is
    the value of the next-state function used for synthesis. *)

val find_state : t -> Rtcad_util.Bitset.t -> int option
(** Look up a state by marking. *)

val deadlocks : t -> int list
(** States with no enabled transition. *)

val iter_states : (int -> unit) -> t -> unit

val restrict : t -> allowed:(int -> int -> bool) -> t
(** [restrict sg ~allowed] rebuilds the graph keeping only edges
    [(state, transition)] for which [allowed state transition] holds, and
    only states still reachable from the initial state.  State indices are
    renumbered; the result shares the STG. *)

val pp_state : t -> Format.formatter -> int -> unit
(** Prints the code as a bit string in signal order, e.g. [10110]. *)

val pp : Format.formatter -> t -> unit
