(** Complete State Coding resolution by state-signal insertion.

    A new internal signal [x] is inserted into the STG: [x+] is triggered
    by a set of existing transitions (AND-join), [x-] by another, and
    optional {e waiter} transitions are delayed until the new edge has
    fired.  Ordering places [x+ -> x-] and [x- -> x+] keep the new signal
    consistent.

    Two modes reflect the paper's distinction:
    - {e speed-independent} insertion must not delay input transitions and
      must preserve output persistency; waiters are used to sequence the
      new signal before the state-aliasing paths.
    - {e timing-aware} insertion (the Figure 5 flavour) keeps [x]
      concurrent (no waiters), leaving the disambiguation to relative
      timing assumptions; the CSC check is then performed on a caller-
      supplied view of the state graph (typically the RT-pruned one). *)

type mode = Speed_independent | Timing_aware

type waiter_marking =
  | Auto
      (** a waiter that occurs before the new edge in the canonical
          serialization starts with a token (it consumes the virtual
          previous edge of the new signal) *)
  | Unmarked
      (** no waiter place starts marked: every waiter is sequenced after
          the new edge already in the first cycle *)

type insertion = {
  signal_name : string;
  rise_triggers : int list;  (** transition indices of the host STG *)
  rise_waiters : int list;
  fall_triggers : int list;
  fall_waiters : int list;
  waiter_marking : waiter_marking;
}

val apply : Rtcad_stg.Stg.t -> insertion -> Rtcad_stg.Stg.t
(** Build the STG extended with the new signal.  The result's transitions
    are the host's (same indices) followed by [x+] then [x-]. *)

val resolve :
  ?mode:mode ->
  ?name:string ->
  ?engine:Engine.t ->
  ?view:(Sg.t -> Sg.t) ->
  ?sym_view:(Symbolic.t -> bool * bool) ->
  ?max_states:int ->
  ?trigger_space:[ `Non_input | `All ] ->
  ?max_candidates:int ->
  Rtcad_stg.Stg.t ->
  (Rtcad_stg.Stg.t * insertion) option
(** Search for an insertion that makes the (viewed) state graph satisfy
    CSC while remaining safe, consistent, live and deadlock-free.  Returns
    the extended STG.  [view] post-processes the state graph before the
    CSC check (identity when omitted).  Returns [None] if the graph
    already satisfies CSC in the viewed graph or no candidate works.

    When no [view] is supplied and [engine] (default [Auto]) selects
    symbolic for this STG, the whole search — the initial conflict
    check, the trial evaluation of every candidate insertion, and the
    final verdicts — runs on the reachable BDDs; no explicit state
    graph is ever built.  [sym_view] is the symbolic counterpart of
    [view] for that path: given a candidate's analysis it returns
    (deadlock-free, has-CSC) of the graph as the flow sees it
    (typically after RT pruning); when omitted the unviewed verdicts
    are used.  Supplying an explicit [view] forces the explicit engine:
    pruning views drop edges and can create conflicts the unpruned
    graph does not have, so a symbolic precheck on the full graph would
    be unsound. *)

val resolve_all :
  ?mode:mode ->
  ?engine:Engine.t ->
  ?view:(Sg.t -> Sg.t) ->
  ?sym_view:(Symbolic.t -> bool * bool) ->
  ?max_states:int ->
  ?max_signals:int ->
  ?max_candidates:int ->
  Rtcad_stg.Stg.t ->
  (Rtcad_stg.Stg.t * insertion list) option
(** Iterate {!resolve} (signals [x0], [x1], …) until the viewed state graph
    satisfies CSC, inserting at most [max_signals] (default 3) signals.
    Returns [Some (stg, [])] when no insertion was needed, [None] when the
    conflicts could not be resolved. *)

val pp_insertion : Rtcad_stg.Stg.t -> Format.formatter -> insertion -> unit
