module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs

type mode = Speed_independent | Timing_aware

type waiter_marking = Auto | Unmarked

type insertion = {
  signal_name : string;
  rise_triggers : int list;
  rise_waiters : int list;
  fall_triggers : int list;
  fall_waiters : int list;
  waiter_marking : waiter_marking;
      (* [Auto]: a waiter occurring before the new edge in the canonical
         serialization starts with a token (it consumes the virtual
         previous edge); [Unmarked]: no waiter place starts marked — the
         waiter is sequenced after the new edge within the first cycle. *)
}

(* First-occurrence index of every transition along one canonical
   serialization of the host STG (fire the lowest-index enabled transition
   until each has fired once or a step bound runs out).  Used to decide
   which waiter places must carry an initial token: a waiter that fires
   before the new signal's edge in the cycle consumes the "virtual"
   previous edge, so its place starts marked. *)
let first_occurrences stg =
  let net = Stg.net stg in
  let nt = Petri.num_transitions net in
  let occ = Array.make nt max_int in
  let remaining = ref nt in
  let m = ref (Petri.initial_marking net) in
  let rec go step =
    if !remaining > 0 && step < 4 * nt then begin
      match Petri.enabled_transitions net !m with
      | [] -> ()
      | t :: _ ->
        if occ.(t) = max_int then begin
          occ.(t) <- step;
          decr remaining
        end;
        (match Petri.fire net !m t with
        | m' ->
          m := m';
          go (step + 1)
        | exception Petri.Unsafe _ -> ())
    end
  in
  go 0;
  occ

(* [named:false] skips the [Printf] place-name construction: the search in
   {!resolve} probes thousands of candidate insertions whose names are never
   observed (the winning insertion is re-applied with real names), and the
   formatting otherwise shows up at the top of the profile.  [occ] lets the
   search share one {!first_occurrences} table across all candidates. *)
let apply_gen ?occ ~named stg ins =
  let net = Stg.net stg in
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let occ = match occ with Some o -> o | None -> first_occurrences stg in
  let pos_of triggers =
    List.fold_left (fun acc t -> max acc (float_of_int occ.(t) +. 0.5)) 0.0 triggers
  in
  let pos_rise = pos_of ins.rise_triggers in
  let pos_fall = max pos_rise (pos_of ins.fall_triggers) in
  let t_rise = nt and t_fall = nt + 1 in
  (* New places: one per trigger arc, one per waiter arc, two ordering
     places.  Numbered after the host's places. *)
  let new_places = ref [] in
  let n_new = ref 0 in
  let fresh name =
    let p = np + !n_new in
    incr n_new;
    new_places := name :: !new_places;
    p
  in
  let pre = Array.make (nt + 2) [] and post = Array.make (nt + 2) [] in
  for t = 0 to nt - 1 do
    pre.(t) <- Petri.pre net t;
    post.(t) <- Petri.post net t
  done;
  let x = ins.signal_name in
  let arc src dst name =
    let p = fresh name in
    post.(src) <- p :: post.(src);
    pre.(dst) <- p :: pre.(dst)
  in
  List.iter
    (fun t ->
      arc t t_rise
        (if named then Printf.sprintf "<%s,%s+>" (Petri.transition_name net t) x else ""))
    ins.rise_triggers;
  List.iter
    (fun t ->
      arc t t_fall
        (if named then Printf.sprintf "<%s,%s->" (Petri.transition_name net t) x else ""))
    ins.fall_triggers;
  (* A waiter that occurs before the new edge in the cycle consumes the
     token of the previous (virtual) edge: its place starts marked. *)
  let waiter_arc src pos t =
    let name =
      if named then
        Printf.sprintf "<%s,%s>"
          (if src = t_rise then x ^ "+" else x ^ "-")
          (Petri.transition_name net t)
      else ""
    in
    let p = fresh name in
    post.(src) <- p :: post.(src);
    pre.(t) <- p :: pre.(t);
    match ins.waiter_marking with
    | Unmarked -> None
    | Auto -> if float_of_int occ.(t) < pos then Some p else None
  in
  let marked_waiter_places =
    List.filter_map (waiter_arc t_rise pos_rise) ins.rise_waiters
    @ List.filter_map (waiter_arc t_fall pos_fall) ins.fall_waiters
  in
  let p_up_down = fresh (if named then Printf.sprintf "<%s+,%s->" x x else "") in
  post.(t_rise) <- p_up_down :: post.(t_rise);
  pre.(t_fall) <- p_up_down :: pre.(t_fall);
  let p_down_up = fresh (if named then Printf.sprintf "<%s-,%s+>" x x else "") in
  post.(t_fall) <- p_down_up :: post.(t_fall);
  pre.(t_rise) <- p_down_up :: pre.(t_rise);
  let place_names =
    Array.append
      (Array.init np (Petri.place_name net))
      (Array.of_list (List.rev !new_places))
  in
  let transition_names =
    Array.append
      (Array.init nt (Petri.transition_name net))
      [| x ^ "+"; x ^ "-" |]
  in
  let initial =
    (p_down_up :: marked_waiter_places) @ Bitset.elements (Petri.initial_marking net)
  in
  let net' = Petri.make ~place_names ~transition_names ~pre ~post ~initial in
  let ns = Stg.num_signals stg in
  let labels =
    Array.append
      (Array.init nt (Stg.label stg))
      [|
        Stg.Edge { signal = ns; dir = Stg.Rise }; Stg.Edge { signal = ns; dir = Stg.Fall };
      |]
  in
  let signal_names = Array.append (Array.init ns (Stg.signal_name stg)) [| x |] in
  let kinds = Array.append (Array.init ns (Stg.kind stg)) [| Stg.Internal |] in
  let initial_values =
    Array.append (Array.init ns (Stg.initial_value stg)) [| false |]
  in
  Stg.make ~net:net' ~labels ~signal_names ~kinds ~initial_values

let apply stg ins = apply_gen ~named:true stg ins

(* Candidate enumeration: trigger sets are singletons or pairs of
   non-dummy, non-input transitions; waiter sets are empty or a single
   non-input transition. *)

let non_input_transitions stg =
  let net = Stg.net stg in
  List.filter
    (fun t ->
      match Stg.label stg t with
      | Stg.Edge { signal; _ } -> not (Stg.is_input stg signal)
      | Stg.Dummy -> false)
    (List.init (Petri.num_transitions net) Fun.id)

let non_dummy_transitions stg =
  let net = Stg.net stg in
  List.filter
    (fun t -> match Stg.label stg t with Stg.Edge _ -> true | Stg.Dummy -> false)
    (List.init (Petri.num_transitions net) Fun.id)

let singletons_and_pairs xs =
  let singles = List.map (fun x -> [ x ]) xs in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> [ x; y ]) rest @ pairs rest
  in
  singles @ pairs xs

(* Waiter spaces differ per mode.  Speed-independent insertion must never
   delay an input (that would change the environment contract): waiters
   are the empty set, singletons or pairs of non-input transitions.
   Timing-aware insertion may delay inputs — the new signal is assumed
   faster than the environment response, and each such arc is
   back-annotated as a required timing constraint (e.g. "x+ before ri+"
   in Figure 5(c)) — but only needs single waiters in practice. *)
let waiter_options ~size stg ~mode triggers =
  let net = Stg.net stg in
  let all = List.init (Petri.num_transitions net) Fun.id in
  let not_trigger t = not (List.mem t triggers) in
  let eligible =
    match mode with
    | Timing_aware -> List.filter not_trigger all
    | Speed_independent ->
      List.filter
        (fun t ->
          not_trigger t
          &&
          match Stg.label stg t with
          | Stg.Edge { signal; _ } -> not (Stg.is_input stg signal)
          | Stg.Dummy -> true)
        all
  in
  match size with
  | 0 -> [ [] ]
  | 1 -> List.map (fun t -> [ t ]) eligible
  | 2 ->
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> [ x; y ]) rest @ pairs rest
    in
    pairs eligible
  | _ -> []

let max_waiter_size = function Timing_aware -> 1 | Speed_independent -> 2

let score ins n_states =
  (100 * (List.length ins.rise_waiters + List.length ins.fall_waiters))
  + (10 * (List.length ins.rise_triggers + List.length ins.fall_triggers))
  + (n_states / 64)

(* The symbolic counterpart of the explicit [view]: given a candidate's
   symbolic analysis, return (deadlock-free, has-CSC) of the graph as
   the flow sees it — typically after RT pruning ([Prune.apply_sym]).
   The default is the unviewed verdict pair. *)
let sym_verdicts sym_view =
  match sym_view with
  | Some f -> f
  | None ->
    fun sym -> (Symbolic.deadlock_count sym = 0, Symbolic.has_csc sym)

(* Does the (possibly viewed) state graph have CSC conflicts?  When no
   explicit view is installed and the engine selection picks symbolic,
   the check runs as one BDD fixpoint instead of an explicit enumeration
   — viewed through [sym_view] when the caller installs one.  An
   explicit pruning view removes edges and can therefore *create*
   conflicts, so it forces the explicit engine. *)
let has_conflicts ~engine ~view ~sym_view ?max_states stg =
  match view with
  | None when Engine.select engine stg = `Symbolic ->
    snd ((sym_verdicts sym_view) (Symbolic.analyze_cached ?max_states stg))
  | _ ->
    let view = Option.value view ~default:Fun.id in
    Encoding.has_csc (view (Sg.build ?max_states stg))

(* Candidate enumeration shared by both search engines: record the first
   [max_candidates] insertions in rounds of growing waiter complexity so
   the budget is spent on the cheapest shapes first (matching the score
   order).  Returns the insertions in enumeration order. *)
let enumerate ~mode ~name ~trigger_space ~max_candidates stg =
  let budget = ref max_candidates in
  let recorded = ref [] in
  let consider ins =
    if !budget > 0 then begin
      decr budget;
      recorded := ins :: !recorded
    end
  in
  let candidates_triggers =
    singletons_and_pairs
      (match trigger_space with
      | `Non_input -> non_input_transitions stg
      | `All -> non_dummy_transitions stg)
  in
  let size_pairs =
    let m = max_waiter_size mode in
    let all =
      List.concat_map
        (fun rs -> List.map (fun fs -> (rs, fs)) (List.init (m + 1) Fun.id))
        (List.init (m + 1) Fun.id)
    in
    List.sort (fun (a, b) (c, d) -> Int.compare (a + b) (c + d)) all
  in
  List.iter
    (fun (rise_size, fall_size) ->
      List.iter
        (fun rise_triggers ->
          List.iter
            (fun fall_triggers ->
              if List.for_all (fun t -> not (List.mem t fall_triggers)) rise_triggers
              then
                List.iter
                  (fun rise_waiters ->
                    List.iter
                      (fun fall_waiters ->
                        let markings =
                          if rise_waiters = [] && fall_waiters = [] then [ Auto ]
                          else [ Auto; Unmarked ]
                        in
                        List.iter
                          (fun waiter_marking ->
                            consider
                              {
                                signal_name = name;
                                rise_triggers;
                                rise_waiters;
                                fall_triggers;
                                fall_waiters;
                                waiter_marking;
                              })
                          markings)
                      (waiter_options ~size:fall_size stg ~mode fall_triggers))
                  (waiter_options ~size:rise_size stg ~mode rise_triggers))
            candidates_triggers)
        candidates_triggers)
    size_pairs;
  List.rev !recorded

(* The explicit trial-insertion search: builds every candidate graph
   across domains, then runs the expensive checks in score order. *)
let search_explicit ~mode ~view ?max_states ~occ ~recorded stg =
  let view = Option.value view ~default:Fun.id in
  let base_sg = Sg.build ?max_states stg in
  let was_persistent = Props.is_output_persistent base_sg in
  (* Phase 1: cheap structural validation, collecting scored survivors.
     The trial builds — the expensive part — are scored across domains.
     Folding the per-candidate results back in enumeration order
     reproduces the reversed accumulation the serial loop built, so the
     sorted order (and therefore the chosen insertion) is identical at
     any job count. *)
  let evaluate ins =
    match Sg.build ?max_states (apply_gen ~occ ~named:false stg ins) with
    | exception (Sg.Inconsistent _ | Sg.Too_large _ | Petri.Unsafe _) -> None
    | sg ->
      if Props.deadlock_free sg && Props.live_transitions sg then
        Some (score ins (Sg.num_states sg), ins, sg)
      else None
  in
  let survivors =
    Array.fold_left
      (fun acc -> function None -> acc | Some s -> s :: acc)
      []
      (Par.map_array evaluate (Array.of_list recorded))
  in
  (* Recorded counts, not per-trial increments: the trial-build loop is
     the hot path; these totals are jobs-invariant because enumeration
     order and the candidate budget are. *)
  Obs.incr ~by:(List.length recorded) "csc.candidates";
  Obs.incr ~by:(List.length survivors) "csc.survivors";
  (* Phase 2: evaluate the expensive checks in score order; the first
     success is the minimum-score valid insertion. *)
  let ordered =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) survivors
  in
  let valid (_, ins, sg) =
    let ok_persist =
      match mode with
      | Timing_aware -> true
      | Speed_independent -> (not was_persistent) || Props.is_output_persistent sg
    in
    if not ok_persist then None
    else begin
      let viewed = view sg in
      if Props.deadlock_free viewed && not (Encoding.has_csc viewed) then Some ins
      else None
    end
  in
  List.find_map valid ordered

(* The same search run entirely on the reachable BDDs — no candidate
   graph is ever materialized.  Workers analyse their candidates and
   ship back only the state count (BDDs are domain-local); the few
   score-ordered finalists are re-analysed on the calling domain for the
   persistency and viewed-CSC verdicts. *)
let search_symbolic ~mode ~sym_view ?max_states ~occ ~recorded stg =
  let verdicts = sym_verdicts sym_view in
  let evaluate ins =
    match Symbolic.analyze ?max_states (apply_gen ~occ ~named:false stg ins) with
    | exception (Sg.Inconsistent _ | Sg.Too_large _ | Petri.Unsafe _) -> None
    | sym ->
      if Symbolic.deadlock_count sym = 0 && Symbolic.live_transitions sym then
        Some (score ins (Symbolic.num_states sym), ins)
      else None
  in
  let survivors =
    Array.fold_left
      (fun acc -> function None -> acc | Some s -> s :: acc)
      []
      (Par.map_array evaluate (Array.of_list recorded))
  in
  Obs.incr ~by:(List.length recorded) "csc.candidates";
  Obs.incr ~by:(List.length survivors) "csc.survivors";
  (* Base persistency matters only for speed-independent insertion; the
     timing-aware flow never pays for the base re-analysis. *)
  let was_persistent =
    lazy (Symbolic.is_output_persistent (Symbolic.analyze_cached ?max_states stg))
  in
  let ordered = List.sort (fun (a, _) (b, _) -> Int.compare a b) survivors in
  let valid (_, ins) =
    (* Phase 1 analysed this exact STG without raising, so this
       re-analysis (on the calling domain) cannot fail.  Running it
       through the pool lets the flow's final reachability run of the
       winning (re-named) insertion seed from this analysis instead of
       starting over — the renamed STG differs only in place names, which
       [Symbolic.seed_compatible] ignores. *)
    let sym = Symbolic.analyze_cached ?max_states (apply_gen ~occ ~named:false stg ins) in
    let ok_persist =
      match mode with
      | Timing_aware -> true
      | Speed_independent ->
        (not (Lazy.force was_persistent)) || Symbolic.is_output_persistent sym
    in
    if not ok_persist then None
    else
      let dl_free, csc = verdicts sym in
      if dl_free && not csc then Some ins else None
  in
  List.find_map valid ordered

let resolve ?(mode = Timing_aware) ?(name = "x") ?(engine = Engine.Auto) ?view
    ?sym_view ?max_states ?(trigger_space = `Non_input)
    ?(max_candidates = 25_000) stg =
  if not (has_conflicts ~engine ~view ~sym_view ?max_states stg) then None
  else
    Obs.span "csc.resolve" ~args:(fun () -> [ ("signal", name) ]) @@ fun () ->
    let occ = first_occurrences stg in
    let recorded = enumerate ~mode ~name ~trigger_space ~max_candidates stg in
    let winner =
      match view with
      | None when Engine.select engine stg = `Symbolic ->
        search_symbolic ~mode ~sym_view ?max_states ~occ ~recorded stg
      | _ -> search_explicit ~mode ~view ?max_states ~occ ~recorded stg
    in
    match winner with
    | None -> None
    | Some ins -> Some (apply stg ins, ins)

let resolve_all ?(mode = Timing_aware) ?(engine = Engine.Auto) ?view ?sym_view
    ?max_states ?(max_signals = 3) ?max_candidates stg =
  (* Try the cheaper non-input trigger space first, then fall back to
     triggering on input edges as well (a state signal set by an input
     literal is perfectly implementable). *)
  let resolve_any name stg =
    match
      resolve ~mode ~name ~engine ?view ?sym_view ?max_states ?max_candidates
        ~trigger_space:`Non_input stg
    with
    | Some r -> Some r
    | None ->
      resolve ~mode ~name ~engine ?view ?sym_view ?max_states ?max_candidates
        ~trigger_space:`All stg
  in
  let rec go stg acc k =
    if k >= max_signals then None
    else
      match resolve_any (Printf.sprintf "x%d" k) stg with
      | None ->
        if has_conflicts ~engine ~view ~sym_view ?max_states stg then None
        else Some (stg, List.rev acc)
      | Some (stg', ins) -> go stg' (ins :: acc) (k + 1)
  in
  if not (has_conflicts ~engine ~view ~sym_view ?max_states stg) then
    Some (stg, [])
  else go stg [] 0

let pp_insertion stg ppf ins =
  let net = Stg.net stg in
  let names ts = String.concat "," (List.map (Petri.transition_name net) ts) in
  Format.fprintf ppf "%s+: after {%s}%s; %s-: after {%s}%s" ins.signal_name
    (names ins.rise_triggers)
    (if ins.rise_waiters = [] then "" else Printf.sprintf " before {%s}" (names ins.rise_waiters))
    ins.signal_name (names ins.fall_triggers)
    (if ins.fall_waiters = [] then "" else Printf.sprintf " before {%s}" (names ins.fall_waiters))
