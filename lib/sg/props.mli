(** Behavioural properties of state graphs used as synthesis
    preconditions: output persistency (speed-independence), liveness of
    transitions, and deadlock freedom. *)

type persistency_violation = {
  state : int;
  disabled : int;  (** the non-input transition that was enabled… *)
  by : int;  (** …and got disabled when this transition fired *)
}

val persistency_violations : Sg.t -> persistency_violation list
(** Pairs witnessing that firing [by] disables the enabled non-input
    transition [disabled] — a potential hazard for speed-independent
    implementation.  Input-vs-input conflicts (environment choice) are
    allowed and not reported. *)

val is_output_persistent : Sg.t -> bool

val live_transitions : Sg.t -> bool
(** Every transition of the STG fires on some edge of the graph. *)

val deadlock_free : Sg.t -> bool

val pp_violation : Sg.t -> Format.formatter -> persistency_violation -> unit
