(** State-encoding analysis: Unique State Coding (USC) and Complete State
    Coding (CSC).

    USC fails when two distinct states carry the same binary code.  CSC
    fails when two states with the same code disagree on the excitation of
    some non-input signal — the next-state functions then become
    ill-defined and a state signal must be inserted. *)

type conflict = {
  state_a : int;
  state_b : int;
  signals : int list;
      (** The non-input signals whose excitation differs (empty for a pure
          USC conflict). *)
}

val usc_conflicts : Sg.t -> conflict list
(** All pairs of distinct states sharing a code. *)

val csc_conflicts : Sg.t -> conflict list
(** The subset of USC conflicts that break CSC ([signals] non-empty). *)

val has_csc : Sg.t -> bool
val has_usc : Sg.t -> bool

val pp_conflict : Sg.t -> Format.formatter -> conflict -> unit
