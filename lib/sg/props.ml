module Stg = Rtcad_stg.Stg

type persistency_violation = { state : int; disabled : int; by : int }

let signal_of stg t =
  match Stg.label stg t with
  | Stg.Edge { signal; _ } -> Some signal
  | Stg.Dummy -> None

let is_input_trans stg t =
  match signal_of stg t with Some s -> Stg.is_input stg s | None -> false

let persistency_violations sg =
  let stg = Sg.stg sg in
  let violations = ref [] in
  Sg.iter_states
    (fun s ->
      let edges = Sg.succs sg s in
      let enabled = List.map fst edges in
      List.iter
        (fun (by, s') ->
          let still = Sg.enabled sg s' in
          List.iter
            (fun t ->
              if
                t <> by
                && (not (is_input_trans stg t))
                && (not (List.mem t still))
                (* A transition of the same signal re-enabling elsewhere is
                   not a hazard (it is the same excitation). *)
                && signal_of stg t <> signal_of stg by
                && not
                     (List.exists
                        (fun t' -> t' <> t && signal_of stg t' = signal_of stg t)
                        still)
              then violations := { state = s; disabled = t; by } :: !violations)
            enabled)
        edges)
    sg;
  List.rev !violations

let is_output_persistent sg = persistency_violations sg = []

let live_transitions sg =
  let stg = Sg.stg sg in
  let nt = Rtcad_stg.Petri.num_transitions (Stg.net stg) in
  let fired = Array.make nt false in
  Sg.iter_states (fun s -> List.iter (fun (t, _) -> fired.(t) <- true) (Sg.succs sg s)) sg;
  Array.for_all Fun.id fired

let deadlock_free sg = Sg.deadlocks sg = []

let pp_violation sg ppf { state; disabled; by } =
  let stg = Sg.stg sg in
  Format.fprintf ppf "state s%d [%a]: %a disabled by %a" state (Sg.pp_state sg) state
    (Stg.pp_transition stg) disabled (Stg.pp_transition stg) by
