(* Engine selection: explicit BFS vs symbolic BDD reachability.

   The explicit engine wins on the small, control-dominated STGs the
   synthesis flow mostly sees (thousands of states, cheap per-state
   access); the symbolic engine wins when concurrency makes the state
   count exponential in the specification size — the token-ring family
   and RAPPID-scale datapaths.  [Auto] decides from a structural
   estimate: every initially marked place is an independent token able
   to advance concurrently, so the token count bounds the interleaving
   explosion the explicit engine would have to enumerate. *)

module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri

type t = Auto | Explicit | Symbolic

let to_string = function
  | Auto -> "auto"
  | Explicit -> "explicit"
  | Symbolic -> "symbolic"

let of_string = function
  | "auto" -> Some Auto
  | "explicit" -> Some Explicit
  | "symbolic" -> Some Symbolic
  | _ -> None

let concurrency_estimate stg =
  Bitset.cardinal (Petri.initial_marking (Stg.net stg))

(* Ten concurrent tokens ≈ the ring-10 family, the first member whose
   state space (~400k) outgrows the explicit engine's default bound. *)
let auto_token_threshold = 10

let select engine stg =
  match engine with
  | Explicit -> `Explicit
  | Symbolic -> `Symbolic
  | Auto ->
    if concurrency_estimate stg >= auto_token_threshold then `Symbolic
    else `Explicit

let build ?(engine = Auto) ?max_states ?par_threshold stg =
  match select engine stg with
  | `Explicit -> Sg.build ?max_states ?par_threshold stg
  | `Symbolic -> Symbolic.materialize ?max_states (Symbolic.analyze stg)
