module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg

type conflict = { state_a : int; state_b : int; signals : int list }

let group_by_code sg =
  let groups = Hashtbl.create 64 in
  Sg.iter_states
    (fun s ->
      let c = Sg.code sg s in
      Hashtbl.replace groups c (s :: (Option.value ~default:[] (Hashtbl.find_opt groups c))))
    sg;
  groups

let conflicting_signals sg a b =
  let stg = Sg.stg sg in
  List.filter
    (fun u -> Sg.excited sg a u <> Sg.excited sg b u)
    (Stg.non_input_signals stg)

let usc_conflicts sg =
  let groups = group_by_code sg in
  let conflicts = ref [] in
  Hashtbl.iter
    (fun _ states ->
      let states = List.sort Int.compare states in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              conflicts :=
                { state_a = a; state_b = b; signals = conflicting_signals sg a b }
                :: !conflicts)
            rest;
          pairs rest
      in
      pairs states)
    groups;
  List.sort compare !conflicts

let csc_conflicts sg = List.filter (fun c -> c.signals <> []) (usc_conflicts sg)
let has_csc sg = csc_conflicts sg <> []
let has_usc sg = usc_conflicts sg <> []

let pp_conflict sg ppf { state_a; state_b; signals } =
  let stg = Sg.stg sg in
  Format.fprintf ppf "s%d/s%d code %a" state_a state_b (Sg.pp_state sg) state_a;
  if signals <> [] then
    Format.fprintf ppf " (signals: %s)"
      (String.concat " " (List.map (Stg.signal_name stg) signals))
