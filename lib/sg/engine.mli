(** Engine selection between explicit and symbolic reachability.

    [Auto] picks the symbolic engine past a structural concurrency
    estimate (the number of initially marked places, i.e. independent
    tokens) and the explicit engine otherwise; [Explicit]/[Symbolic]
    force the choice.  The two engines are exact with respect to each
    other, so selection is purely a performance decision. *)

type t = Auto | Explicit | Symbolic

val to_string : t -> string
val of_string : string -> t option

val concurrency_estimate : Rtcad_stg.Stg.t -> int
(** Number of initially marked places — a structural lower bound on the
    concurrent tokens whose interleavings the explicit engine must
    enumerate. *)

val auto_token_threshold : int
(** [Auto] selects the symbolic engine at or above this estimate. *)

val select : t -> Rtcad_stg.Stg.t -> [ `Explicit | `Symbolic ]

val build :
  ?engine:t -> ?max_states:int -> ?par_threshold:int -> Rtcad_stg.Stg.t -> Sg.t
(** Build an explicit state graph with the selected engine (the symbolic
    path analyses then {!Symbolic.materialize}s — bit-identical output).
    [par_threshold] only affects the explicit path.  Default engine is
    [Auto]. *)
