(* Symbolic BDD-based reachability for STGs.

   One BDD variable per place and one per signal encodes a state
   (marking, code) as a minterm; transitions are compiled both into
   per-transition relational-product image operators (used by the
   analyses) and into clustered transition relations (used by the
   fixpoint), and the reachable set is computed by a frontier-based
   fixpoint.  The engine is exact: it enforces the same safety and
   consistency rules as the explicit [Sg.build] (raising the same
   exceptions), and every analysis it offers — state counting,
   deadlocks, transition liveness, CSC conflicts, output persistency —
   agrees with the explicit engine verdict for verdict.

   Variable space.  Order position k carries the present-state variable
   2k and the primed (next-state) variable 2k+1.  All state sets live
   exclusively over present variables; primed variables appear only
   inside clustered transition relations and are renamed away by
   [Bdd.unprime] right after each image.  Keeping each pair adjacent in
   the variable order is what makes the rename order-safe, so dynamic
   reordering is always run with (present, primed) pair groups.

   Variable order.  Places and signals are interleaved: each signal
   is positioned immediately after the lowest-indexed place its
   transitions touch.  On pipeline-shaped specifications (the token-ring
   family) this keeps each stage's places and handshake signals adjacent,
   so the reachable set stays near-linear in ring size where a
   places-then-signals order can blow up exponentially.

   Image computation.  For a single transition t with preset P, postset
   Q and label u+/u-, the fused operator is

     img_t(S) = rel_product (P ∪ Q ∪ {u})
                            (S ∧ enab_t)
                            ∧ update_t

   where enab_t is the conjunction of the preset variables and the
   required polarity of u, and update_t fixes the post-firing values
   (Q set, P∖Q cleared, u flipped).  Variables outside P ∪ Q ∪ {u} are
   untouched, which is exactly the frame condition of [Petri.fire] +
   [Sg.apply_label].  Transitions whose supports overlap are fused into
   clusters with a disjunctive relation over present and primed
   variables,

     T_C = ∨_{t ∈ C} enab_t ∧ update'_t ∧ (v' ↔ v for cluster vars
                                            t leaves untouched)
     img_C(S) = unprime (rel_product (present vars of C) S T_C)

   which fires every member of the cluster in one relational product —
   fewer, fatter image operations per sweep, bounded by the cluster
   width knob below.  Safety (a token produced into a marked place) and
   consistency (an edge firing against the signal's current value, or
   one marking reached with two codes) are checked sweep by sweep
   before the frontier is expanded, so failures surface as
   [Petri.Unsafe] and [Sg.Inconsistent] just as in the explicit BFS.

   Everything here runs on the calling domain: BDDs are domain-local
   (see [Bdd]), so a [t] value must not be shared across domains.  Ship
   only counts, bools and bitsets across joins. *)

module Bitset = Rtcad_util.Bitset
module Vec = Rtcad_util.Vec
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Bdd = Rtcad_logic.Bdd
module Obs = Rtcad_obs.Obs

(* --- tuning knobs ------------------------------------------------------ *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> v
    | _ -> default)
  | None -> default

(* Maximum number of distinct present-state variables a fused cluster
   may mention (0 disables clustering).  Wider clusters mean fewer image
   operations per sweep but a fatter relation each. *)
let cluster_width () = env_int "RTCAD_BDD_CLUSTER_WIDTH" 12

(* Unique-table populations above which the fixpoint loop runs a GC /
   a sifting pass between sweeps.  Both fire rarely on well-ordered
   specifications (the ring family peaks at a few thousand nodes); they
   are the pressure valve for orders gone bad.  The bar is deliberately
   high: the op caches pin their memoized intermediates, so the table
   fills with promoted junk at a rate set by the image workload, not by
   the live frontier — collecting it costs a full major cycle (~100ms)
   that buys nothing unless the live population is actually large. *)
let gc_threshold () = env_int "RTCAD_BDD_GC_THRESHOLD" 4_000_000
let reorder_threshold () = env_int "RTCAD_BDD_REORDER_THRESHOLD" 1_000_000

type trans_op = {
  tr : int;
  signal : int; (* -1 for dummies *)
  place_enab : Bdd.t; (* preset variables conjoined *)
  enab : Bdd.t; (* place_enab ∧ required signal polarity *)
  wrong : Bdd.t; (* place_enab ∧ opposite polarity; Zero for dummies *)
  wrong_msg : string;
  changed : int list; (* quantified by the image: preset ∪ postset ∪ signal *)
  update : Bdd.t; (* post-firing cube over [changed] *)
  update_primed : Bdd.t; (* the same cube over the primed partners *)
  fresh_places : int list; (* postset ∖ preset, in [Petri.post] order *)
}

(* A fixpoint image operator: either one transition's fused
   relational product, or a disjunctive relation covering several. *)
type cluster =
  | Single of trans_op
  | Fused of {
      members : trans_op list; (* in transition order *)
      support : int list; (* present vars, ascending *)
      rel : Bdd.t; (* over support ∪ primed support *)
    }

type t = {
  stg : Stg.t;
  nvars : int; (* order positions (places + signals) *)
  place_var : int array; (* present variable of each place *)
  signal_var : int array; (* present variable of each signal *)
  place_vars : int list; (* ascending *)
  signal_vars : int list; (* ascending *)
  all_vars : int list; (* place_vars ∪ signal_vars, ascending *)
  ops : trans_op array;
  reached : Bdd.t;
  num_states : int;
  levels : int;
  image_ops : int;
  peak_nodes : int;
  clusters : int;
}

(* --- variable order --------------------------------------------------- *)

let variable_order stg =
  let net = Stg.net stg in
  let np = Petri.num_places net and ns = Stg.num_signals stg in
  let nt = Petri.num_transitions net in
  (* Anchor of a signal: the lowest place index any of its transitions
     consumes or produces. *)
  let anchor = Array.make ns np in
  for t = 0 to nt - 1 do
    match Stg.label stg t with
    | Stg.Dummy -> ()
    | Stg.Edge { signal; _ } ->
      List.iter
        (fun p -> if p < anchor.(signal) then anchor.(signal) <- p)
        (Petri.pre net t @ Petri.post net t)
  done;
  let items =
    Array.init (np + ns) (fun i ->
        if i < np then (i, 0, i) (* place i, sorted by own index *)
        else
          let u = i - np in
          (anchor.(u), 1, u) (* signal u, right after its anchor place *))
  in
  Array.sort compare items;
  let place_var = Array.make np 0 and signal_var = Array.make ns 0 in
  (* Order position k owns present variable 2k (primed partner 2k+1). *)
  Array.iteri
    (fun pos (_, kind, idx) ->
      if kind = 0 then place_var.(idx) <- 2 * pos else signal_var.(idx) <- 2 * pos)
    items;
  (place_var, signal_var)

(* --- transition compilation ------------------------------------------- *)

let cube_of_list vars =
  List.fold_left (fun acc v -> Bdd.band acc (Bdd.var v)) Bdd.one vars

let compile_op stg ~place_var ~signal_var t =
  let net = Stg.net stg in
  let pre = Petri.pre net t and post = Petri.post net t in
  let place_enab = cube_of_list (List.map (fun p -> place_var.(p)) pre) in
  let enab, wrong, wrong_msg, sig_lit, signal =
    match Stg.label stg t with
    | Stg.Dummy -> (place_enab, Bdd.zero, "", None, -1)
    | Stg.Edge { signal; dir } ->
      let sv = signal_var.(signal) in
      let need, opp, how, upd =
        match dir with
        | Stg.Rise -> (Bdd.nvar sv, Bdd.var sv, " already high", true)
        | Stg.Fall -> (Bdd.var sv, Bdd.nvar sv, " already low", false)
      in
      ( Bdd.band place_enab need,
        Bdd.band place_enab opp,
        Sg.inconsistent_msg stg signal dir how,
        Some (sv, upd),
        signal )
  in
  (* The post-firing cube, over present variables and (for the
     disjunctive cluster relations) over their primed partners. *)
  let update_cube shift =
    let lit v b = if b then Bdd.var (v + shift) else Bdd.nvar (v + shift) in
    let base =
      match sig_lit with Some (sv, b) -> lit sv b | None -> Bdd.one
    in
    let base =
      List.fold_left
        (fun acc p -> Bdd.band acc (lit place_var.(p) true))
        base post
    in
    List.fold_left
      (fun acc p ->
        if List.mem p post then acc else Bdd.band acc (lit place_var.(p) false))
      base pre
  in
  let changed =
    List.sort_uniq Int.compare
      ((match sig_lit with Some (sv, _) -> [ sv ] | None -> [])
      @ List.map (fun p -> place_var.(p)) (pre @ post))
  in
  let fresh_places = List.filter (fun p -> not (List.mem p pre)) post in
  {
    tr = t;
    signal;
    place_enab;
    enab;
    wrong;
    wrong_msg;
    changed;
    update = update_cube 0;
    update_primed = update_cube 1;
    fresh_places;
  }

(* --- clustering -------------------------------------------------------- *)

let list_inter a b = List.exists (fun x -> List.mem x b) a

(* Greedy grouping in transition order: a transition joins the current
   cluster when its changed set overlaps the cluster support and the
   union stays within the width bound.  Clusters of one keep the cheaper
   conjunctive image path. *)
let build_clusters ops width =
  if width = 0 then Array.to_list ops |> List.map (fun op -> Single op)
  else begin
    let groups = ref [] and cur = ref [] and cur_support = ref [] in
    let flush () =
      if !cur <> [] then begin
        groups := (List.rev !cur, !cur_support) :: !groups;
        cur := [];
        cur_support := []
      end
    in
    Array.iter
      (fun op ->
        let union = List.sort_uniq Int.compare (op.changed @ !cur_support) in
        if
          !cur = []
          || (list_inter op.changed !cur_support && List.length union <= width)
        then begin
          cur := op :: !cur;
          cur_support := union
        end
        else begin
          flush ();
          cur := [ op ];
          cur_support := op.changed
        end)
      ops;
    flush ();
    List.rev_map
      (fun (members, support) ->
        match members with
        | [ op ] -> Single op
        | _ ->
          let rel =
            List.fold_left
              (fun acc op ->
                (* Frame: cluster variables this member leaves alone keep
                   their value across the step. *)
                let frame =
                  List.fold_left
                    (fun acc v ->
                      if List.mem v op.changed then acc
                      else
                        Bdd.band acc
                          (Bdd.bnot (Bdd.bxor (Bdd.var v) (Bdd.var (v + 1)))))
                    Bdd.one support
                in
                Bdd.bor acc
                  (Bdd.band op.enab (Bdd.band op.update_primed frame)))
              Bdd.zero members
          in
          Fused { members; support; rel })
      (List.rev !groups)
    |> List.rev
  end

let cluster_image cl set =
  match cl with
  | Single op -> Bdd.band (Bdd.rel_product op.changed set op.enab) op.update
  | Fused { support; rel; _ } -> Bdd.rel_product_unprime support set rel

(* --- reachability fixpoint -------------------------------------------- *)

let state_minterm ~place_var ~signal_var marking code =
  let acc = ref [] in
  Array.iteri (fun p v -> acc := (v, Bitset.mem marking p) :: !acc) place_var;
  Array.iteri (fun u v -> acc := (v, Bitset.mem code u) :: !acc) signal_var;
  Bdd.minterm !acc

(* Reachable states are in bijection with their BDD minterms (one code
   per marking), so counting assignments over the present variables
   counts states.  The persistent count cache keyed on this one variable
   set makes the per-sweep counts incremental — only nodes new since the
   last sweep are visited. *)
let count_states ~all_vars set = Bdd.sat_count_over all_vars set

(* [set] must be independent of all signal variables; each marking then
   accounts for exactly [2^num_signals] assignments over the same
   present-variable set (sharing the count cache with [count_states]). *)
let count_markings ~all_vars ~num_signals set =
  if num_signals >= Sys.int_size - 2 then invalid_arg "Symbolic: too many signals";
  Bdd.sat_count_over all_vars set / (1 lsl num_signals)

(* Pair groups for sifting: each (present, primed) pair moves as one
   block, preserving the adjacency [Bdd.unprime] relies on. *)
let reorder_groups nvars = List.init nvars (fun k -> [ 2 * k; (2 * k) + 1 ])

(* --- delta seeding ----------------------------------------------------- *)

(* Semantic identity of a transition: label edge (by signal index), preset
   and postset as sorted place-index lists.  Indices are meaningful across
   two STGs only when their place/signal spaces coincide, which
   [seed_compatible] establishes first. *)
let transition_descr stg t =
  let net = Stg.net stg in
  ( (match Stg.label stg t with
    | Stg.Dummy -> None
    | Stg.Edge { signal; dir } -> Some (signal, dir)),
    List.sort Int.compare (Petri.pre net t),
    List.sort Int.compare (Petri.post net t) )

(* A previous analysis may seed the fixpoint for an edited STG only when
   every state it reached is necessarily still reachable: the state
   encoding must be identical (same place/signal index spaces *and* the
   same variable-order assignment, so the seed BDD means the same set of
   states), the initial (marking, code) must be unchanged, and every old
   transition must still exist — a pure transition addition guarantees
   R_old ⊆ R_new.  A removed or rewired transition, a place change or a
   different initial state can all strand previously reachable states, so
   those edits invalidate the seed and the caller falls back to a
   from-scratch run.  Exactness is unaffected either way: the seeded
   start set is re-checked by [check_frontier] before the fixpoint can
   complete. *)
let seed_compatible old stg =
  let net = Stg.net stg in
  let old_net = Stg.net old.stg in
  let nt = Petri.num_transitions net in
  let old_nt = Petri.num_transitions old_net in
  Petri.num_places net = Petri.num_places old_net
  && Stg.num_signals stg = Stg.num_signals old.stg
  && old_nt <= nt
  && Bitset.equal (Petri.initial_marking net) (Petri.initial_marking old_net)
  && Bitset.equal (Sg.initial_code stg) (Sg.initial_code old.stg)
  && (let place_var, signal_var = variable_order stg in
      place_var = old.place_var && signal_var = old.signal_var)
  && (* old transitions ⊆ new transitions, as a multiset of descriptors *)
  (let remaining = ref (List.init nt (transition_descr stg)) in
   try
     for t = 0 to old_nt - 1 do
       let d = transition_descr old.stg t in
       let rec remove = function
         | [] -> raise Exit
         | x :: rest -> if x = d then rest else x :: remove rest
       in
       remaining := remove !remaining
     done;
     true
   with Exit -> false)

(* The image operator's unprime discipline: every (present, primed) pair
   on adjacent levels, even above odd.  Analyses maintain it themselves
   (their reorder valve sifts pair groups), but a client-forced groupless
   [Bdd.reorder] — or a pair-grouped one from an analysis over fewer
   variables, which sees the higher pairs only as singletons — can break
   it for the pairs used here.  With the analysis pool keeping BDDs live
   across such calls, this is no longer hypothetical, so [analyze] checks
   and sifts back to the identity before compiling any relation. *)
let ensure_pair_order nvars =
  let ok = ref true in
  for k = 0 to nvars - 1 do
    if Bdd.level_of ((2 * k) + 1) <> Bdd.level_of (2 * k) + 1 then ok := false
  done;
  if not !ok then begin
    Obs.incr "sg.symbolic.order_restored";
    Bdd.restore_order ()
  end

let analyze ?max_states ?seed stg =
  Obs.span "sg.symbolic" @@ fun () ->
  let net = Stg.net stg in
  let ns = Stg.num_signals stg in
  let np = Petri.num_places net in
  let nvars = np + ns in
  ensure_pair_order nvars;
  let place_var, signal_var = variable_order stg in
  let ops =
    Array.init (Petri.num_transitions net) (compile_op stg ~place_var ~signal_var)
  in
  let clusters = build_clusters ops (cluster_width ()) in
  let n_clusters = List.length clusters in
  let place_vars = List.sort Int.compare (Array.to_list place_var) in
  let signal_vars = List.sort Int.compare (Array.to_list signal_var) in
  let all_vars = List.sort Int.compare (place_vars @ signal_vars) in
  let init =
    state_minterm ~place_var ~signal_var (Petri.initial_marking net)
      (Sg.initial_code stg)
  in
  (* A valid seed starts the fixpoint from the prior reachable set (plus
     the initial state, which it already contains when compatible): the
     whole seeded set enters the first frontier, so it is safety- and
     consistency-checked against the *new* transitions before any result
     is reported, and the sweeps then only have to discover the states
     the edit actually added. *)
  let start =
    match seed with
    | None -> init
    | Some old ->
      if seed_compatible old stg then begin
        Obs.incr "sg.symbolic.seeded";
        Bdd.bor old.reached init
      end
      else begin
        Obs.incr "sg.symbolic.seed_fallback";
        init
      end
  in
  let reached = ref start and frontier = ref start in
  let levels = ref 0 and image_ops = ref 0 in
  let peak = ref (Bdd.node_count start) in
  let num_markings = ref 1 in
  (* The explicit BFS fires every enabled transition of every state, so a
     safety or consistency offence anywhere in the reachable space is an
     offence here too: check each frontier before expanding it.  [fire]
     raises before [check_label] runs, hence the unsafe check first.
     The common (offence-free) sweep pays a single [intersects] against
     the precomputed offender set; only a hit replays the detailed
     per-transition scan to raise the exact exception the explicit
     engine would. *)
  let bad =
    Array.fold_left
      (fun acc op ->
        let unsafe =
          List.fold_left
            (fun acc p -> Bdd.bor acc (Bdd.var place_var.(p)))
            Bdd.zero op.fresh_places
        in
        Bdd.bor acc
          (Bdd.bor (Bdd.band op.place_enab unsafe) op.wrong))
      Bdd.zero ops
  in
  let check_frontier_detailed f =
    Array.iter
      (fun op ->
        let en = Bdd.band f op.place_enab in
        if not (Bdd.is_zero en) then begin
          List.iter
            (fun p ->
              if Bdd.intersects en (Bdd.var place_var.(p)) then
                raise (Petri.Unsafe p))
            op.fresh_places;
          if Bdd.intersects en op.wrong then
            raise (Sg.Inconsistent op.wrong_msg)
        end)
      ops
  in
  let check_frontier f = if Bdd.intersects f bad then check_frontier_detailed f in
  let gc_at = gc_threshold () and reorder_at = ref (reorder_threshold ()) in
  let maintain_tables () =
    (* [live_estimate] is an O(1) overcount of the table population
       (the exact [table_stats] count walks every weak bucket — per
       sweep that scan dwarfed the images).  Only when the cheap bound
       crosses a threshold is the exact figure computed, which also
       re-tightens the bound; pressure valves then act on real
       population, not on churn of already-dead intermediates. *)
    if Bdd.live_estimate () > min !reorder_at gc_at then begin
      let pop = Bdd.live_recount () in
      if pop > !reorder_at then begin
        (* The population may be garbage accreted by earlier analyses
           (op caches pin their intermediates): collect first, and sift
           only when the *live* table is what crossed the threshold —
           sifting decisions made on a junk-dominated table wreck the
           order for the functions that are actually alive. *)
        let g = Bdd.gc () in
        if g.Bdd.gc_after > !reorder_at then begin
          let r = Bdd.reorder ~groups:(reorder_groups nvars) () in
          (* Back off: re-sift only after the table doubles again. *)
          reorder_at := max (reorder_threshold ()) (2 * r.Bdd.nodes_after)
        end
      end
      else if pop > gc_at then ignore (Bdd.gc ())
    end
  in
  (* Chained (Gauss-Seidel) sweeps: within one sweep, states discovered
     by earlier clusters feed the images of later ones, so a token can
     ripple down a whole pipeline in a single pass — on ring-shaped
     specifications this collapses the BFS depth (~4N levels) to a
     near-constant number of sweeps.  Exactness is unaffected: every
     state enters [frontier] exactly once and is checked by
     [check_frontier] before any result is reported (a state expanded
     mid-sweep before its check still raises at the head of the next
     sweep, before the fixpoint can complete).

     Each cluster images only its delta: [imaged.(i)] is the reached set
     as of cluster [i]'s last application, so the next application
     covers [reached ∖ imaged.(i)] — exactly the states that arrived
     since.  Images distribute over union, so the union of delta images
     equals the image of the whole reached set; the payoff is that
     [rel_product], [unprime] and the fresh-set [bdiff] all traverse
     delta-sized arguments instead of the full (and still growing)
     reached set. *)
  let cluster_arr = Array.of_list clusters in
  let imaged = Array.make (Array.length cluster_arr) Bdd.zero in
  while not (Bdd.is_zero !frontier) do
    incr levels;
    check_frontier !frontier;
    let fresh_sweep = ref Bdd.zero in
    Array.iteri
      (fun i cl ->
        (* Saturate the cluster: a fused relation fires each member only
           once per application, so repeating it until it yields nothing
           lets a token ripple through the whole cluster window before
           moving on — the same chaining the per-transition loop gets
           for free from its finer granularity. *)
        let continue_ = ref true in
        while !continue_ do
          let todo = Bdd.bdiff !reached imaged.(i) in
          if Bdd.is_zero todo then continue_ := false
          else begin
            incr image_ops;
            imaged.(i) <- !reached;
            let img = cluster_image cl todo in
            let fresh = Bdd.bdiff img !reached in
            if Bdd.is_zero fresh then continue_ := false
            else begin
              reached := Bdd.bor !reached fresh;
              fresh_sweep := Bdd.bor !fresh_sweep fresh;
              match cl with Single _ -> continue_ := false | Fused _ -> ()
            end
          end
        done)
      cluster_arr;
    frontier := !fresh_sweep;
    let nodes = Bdd.node_count !reached in
    if nodes > !peak then peak := nodes;
    let states = count_states ~all_vars !reached in
    let markings =
      count_markings ~all_vars ~num_signals:ns (Bdd.exists signal_vars !reached)
    in
    (* Two states sharing a marking must share a code: any surplus means
       the explicit build would have merged the marking and failed. *)
    if states > markings then
      raise (Sg.Inconsistent "same marking reached with two different codes");
    (match max_states with
    | Some bound when markings > bound -> raise (Sg.Too_large bound)
    | _ -> ());
    num_markings := markings;
    maintain_tables ()
  done;
  if Obs.enabled () then begin
    Obs.incr ~by:!levels "sg.symbolic.levels";
    Obs.incr ~by:!image_ops "sg.symbolic.image_ops";
    Obs.set_gauge "sg.symbolic.states" (float_of_int !num_markings);
    Obs.set_gauge "sg.symbolic.clusters" (float_of_int n_clusters);
    Obs.set_gauge "sg.symbolic.reached_nodes"
      (float_of_int (Bdd.node_count !reached));
    Obs.set_gauge "sg.symbolic.peak_nodes" (float_of_int !peak);
    let ts = Bdd.table_stats () in
    Obs.set_gauge "bdd.unique_nodes" (float_of_int ts.Bdd.unique_nodes);
    Obs.set_gauge "bdd.op_cache_entries" (float_of_int ts.Bdd.op_cache_entries);
    Obs.set_gauge "bdd.op_cache_capacity"
      (float_of_int ts.Bdd.op_cache_capacity);
    Obs.set_gauge "bdd.op_cache_hit_rate"
      (if ts.Bdd.op_cache_lookups = 0 then 0.
       else
         float_of_int ts.Bdd.op_cache_hits
         /. float_of_int ts.Bdd.op_cache_lookups);
    Obs.set_gauge "bdd.reorders" (float_of_int ts.Bdd.reorders);
    Obs.set_gauge "bdd.reorder_swaps" (float_of_int ts.Bdd.reorder_swaps);
    Obs.set_gauge "bdd.gc_runs" (float_of_int ts.Bdd.gc_runs);
    Obs.set_gauge "bdd.gc_reclaimed" (float_of_int ts.Bdd.gc_reclaimed)
  end;
  {
    stg;
    nvars;
    place_var;
    signal_var;
    place_vars;
    signal_vars;
    all_vars;
    ops;
    reached = !reached;
    num_states = !num_markings;
    levels = !levels;
    image_ops = !image_ops;
    peak_nodes = !peak;
    clusters = n_clusters;
  }

let stg sym = sym.stg
let num_states sym = sym.num_states
let num_levels sym = sym.levels

(* --- analysis reuse pool ----------------------------------------------- *)

(* A small domain-local pool of recent analyses.  BDDs are domain-local,
   so the pool must be too (each worker domain warms its own); entries
   survive [Bdd.clear_caches] because the unique table is weak — pinning
   at most [capacity] reachable sets bounds what the pool keeps alive.
   Two reuse levels: an STG with the same canonical [.g] text as a pooled
   analysis gets that analysis back verbatim (the text is the same
   content identity the serve cache keys on), and an STG that is a pure
   transition addition over a pooled one gets its fixpoint seeded from
   the pooled reachable set. *)
module Seeds = struct
  type entry = { canon : string; sym : t }

  let capacity = 4
  let pool_key = Domain.DLS.new_key (fun () -> ref ([] : entry list))
  let pool () = Domain.DLS.get pool_key
  let clear () = pool () := []
  let size () = List.length !(pool ())

  (* The [.g] printer refuses nets whose marking it cannot express (a
     marked implicit place that lost its producer or consumer to an
     edit); such STGs have no canonical text and skip the exact tier. *)
  let canon_of stg =
    match Rtcad_stg.Stg_io.to_string stg with
    | s -> Some s
    | exception Failure _ -> None

  let remember sym =
    match canon_of sym.stg with
    | None -> ()
    | Some canon ->
      let p = pool () in
      let rest = List.filter (fun e -> e.canon <> canon) !p in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | e :: tl -> e :: take (n - 1) tl
      in
      p := { canon; sym } :: take (capacity - 1) rest

  (* Equal canonical text means identical structure (indices, names,
     kinds, initial state), so the pooled analysis is the analysis of
     [stg] — only the [stg] field is swapped so callers see the value
     they passed in. *)
  let find_exact stg =
    match canon_of stg with
    | None -> None
    | Some canon ->
      List.find_map
        (fun e -> if e.canon = canon then Some { e.sym with stg } else None)
        !(pool ())

  let find_seed stg =
    List.find_map
      (fun e -> if seed_compatible e.sym stg then Some e.sym else None)
      !(pool ())
end

(* [analyze] through the reuse pool: exact canonical match returns the
   pooled analysis (re-checking a caller-supplied bound, so [Too_large]
   still surfaces), otherwise the fixpoint runs — seeded when a pooled
   analysis covers a subset of the new STG — and the result joins the
   pool.  Failures ([Unsafe], [Inconsistent], [Too_large]) are never
   pooled.  Candidate probes inside the CSC search deliberately bypass
   this (thousands of throwaway STGs would churn the pool for nothing);
   the flow's per-stage analyses are the intended callers. *)
let analyze_cached ?max_states stg =
  match Seeds.find_exact stg with
  | Some sym ->
    (match max_states with
    | Some bound when sym.num_states > bound -> raise (Sg.Too_large bound)
    | _ ->
      Obs.incr "sg.symbolic.reused";
      sym)
  | None ->
    let seed = Seeds.find_seed stg in
    let sym = analyze ?max_states ?seed stg in
    Seeds.remember sym;
    sym
let equal_reachable a b = Bdd.equal a.reached b.reached
let num_image_ops sym = sym.image_ops
let peak_nodes sym = sym.peak_nodes
let num_clusters sym = sym.clusters
let reachable_nodes sym = Bdd.node_count sym.reached

(* --- per-signal excitation, deadlocks, CSC ---------------------------- *)

(* In a reachable state of a successfully analysed STG, every
   place-enabled transition also produced an explicit edge (its label
   check passed — [check_frontier] proved there are no offenders), so
   "some transition of u is place-enabled" coincides with the explicit
   engine's [Sg.excited]. *)
let excited_set sym u =
  Array.fold_left
    (fun acc op -> if op.signal = u then Bdd.bor acc op.place_enab else acc)
    Bdd.zero sym.ops

let any_enabled sym =
  Array.fold_left (fun acc op -> Bdd.bor acc op.place_enab) Bdd.zero sym.ops

let deadlock_set sym = Bdd.bdiff sym.reached (any_enabled sym)
let deadlock_count sym = count_states ~all_vars:sym.all_vars (deadlock_set sym)

(* kind.(v) = place index, or num_places + signal index, for present
   variables; -1 elsewhere. *)
let var_kinds sym =
  let np = Petri.num_places (Stg.net sym.stg) in
  let kind = Array.make (2 * sym.nvars) (-1) in
  Array.iteri (fun p v -> kind.(v) <- p) sym.place_var;
  Array.iteri (fun u v -> kind.(v) <- np + u) sym.signal_var;
  kind

(* Enumerate the full assignments of [set], expanding variables absent
   from a path both ways (a skipped variable satisfies the path with
   either value).  Iteration is by ascending present variable —
   cofactoring is order-independent, so the output is deterministic even
   after a reorder.  Returns (marking, code) pairs in lexicographic
   variable-assignment order. *)
let enum_states sym set =
  let np = Petri.num_places (Stg.net sym.stg) in
  let ns = Stg.num_signals sym.stg in
  let kind = var_kinds sym in
  let acc = ref [] in
  let rec go bdd pos m c =
    if Bdd.is_zero bdd then ()
    else if pos >= sym.nvars then acc := (m, c) :: !acc
    else begin
      let v = 2 * pos in
      let lo = Bdd.cofactor bdd v false and hi = Bdd.cofactor bdd v true in
      go lo (pos + 1) m c;
      let k = kind.(v) in
      let m', c' =
        if k < np then (Bitset.add m k, c) else (m, Bitset.add c (k - np))
      in
      go hi (pos + 1) m' c'
    end
  in
  go set 0 (Bitset.create np) (Bitset.create ns);
  List.rev !acc

let deadlock_states sym = enum_states sym (deadlock_set sym)
let deadlock_markings sym = List.map fst (deadlock_states sym)

let live_transitions sym =
  Array.for_all
    (fun op -> Bdd.intersects sym.reached op.place_enab)
    sym.ops

(* CSC: signal u is in conflict iff some code is shared by a reachable
   state where u is excited and one where it is not — quantifying the
   places out of both sides leaves two sets of codes whose intersection
   is exactly the conflicting codes.  This matches the explicit
   [Encoding.csc_conflicts] pair scan without ever forming pairs. *)
let csc_conflicting sym u =
  let ex = excited_set sym u in
  (* Fused and-exists both sides: the conjunctions [reached ∧ ex] and
     [reached ∧ ¬ex] are never materialized, only their place-free
     projections. *)
  let a = Bdd.rel_product sym.place_vars sym.reached ex in
  let b = Bdd.rel_product sym.place_vars sym.reached (Bdd.bnot ex) in
  Bdd.intersects a b

let csc_conflict_signals sym =
  List.filter (csc_conflicting sym) (Stg.non_input_signals sym.stg)

let has_csc sym = List.exists (csc_conflicting sym) (Stg.non_input_signals sym.stg)

(* --- output persistency ----------------------------------------------- *)

(* Mirror of [Props.persistency_violations]: firing [by] from a state
   where a non-input transition [t] (of a different signal) is also
   enabled must leave some transition of [t]'s signal enabled.  Only
   [by] that consume a token [t] needs — pre(t) ∩ (pre(by) ∖ post(by))
   non-empty — can disable [t], so all other pairs are skipped without
   an image computation (on marked-graph-like specs this prunes every
   pair). *)
let is_output_persistent sym =
  let stg = sym.stg in
  let net = Stg.net stg in
  let signal_of t =
    match Stg.label stg t with
    | Stg.Edge { signal; _ } -> Some signal
    | Stg.Dummy -> None
  in
  let is_input t =
    match signal_of t with Some u -> Stg.is_input stg u | None -> false
  in
  let same_signal_enab t =
    let s = signal_of t in
    Array.fold_left
      (fun acc op ->
        if signal_of op.tr = s then Bdd.bor acc op.place_enab else acc)
      Bdd.zero sym.ops
  in
  let image op set =
    Bdd.band (Bdd.rel_product op.changed set op.enab) op.update
  in
  let can_disable ~t ~by =
    let taken =
      List.filter (fun p -> not (List.mem p (Petri.post net by))) (Petri.pre net by)
    in
    List.exists (fun p -> List.mem p taken) (Petri.pre net t)
  in
  Array.for_all
    (fun opt ->
      is_input opt.tr
      || Array.for_all
           (fun opby ->
             opt.tr = opby.tr
             || signal_of opt.tr = signal_of opby.tr
             || (not (can_disable ~t:opt.tr ~by:opby.tr))
             ||
             let both = Bdd.band sym.reached (Bdd.band opt.place_enab opby.enab) in
             Bdd.is_zero both
             || not
                  (Bdd.intersects (image opby both)
                     (Bdd.bnot (same_signal_enab opt.tr))))
           sym.ops)
    sym.ops

(* --- materialization --------------------------------------------------- *)

(* Replay the serial explicit BFS ([Sg.build_serial]'s exact discovery
   and numbering), asserting every state against the symbolic reachable
   set as it is found.  The result is bit-identical to [Sg.build] — same
   ids, same packed arrays — and the membership check makes every
   materialization a differential test of the two engines. *)
let materialize ?(max_states = 200_000) sym =
  Obs.span "sg.symbolic.materialize" @@ fun () ->
  let stg = sym.stg in
  let net = Stg.net stg in
  let np = Petri.num_places net in
  let kind = var_kinds sym in
  let member marking code =
    Bdd.eval sym.reached (fun v ->
        let k = kind.(v) in
        if k < np then Bitset.mem marking k else Bitset.mem code (k - np))
  in
  let tbl = Hashtbl.create 256 in
  let empty = Bitset.create 0 in
  let markings = Vec.create ~capacity:32 ~dummy:empty () in
  let codes = Vec.create ~capacity:32 ~dummy:empty () in
  let add marking code =
    let id = Vec.length markings in
    Vec.push markings marking;
    Vec.push codes code;
    Hashtbl.add tbl marking id;
    id
  in
  let m0 = Petri.initial_marking net in
  let c0 = Sg.initial_code stg in
  if not (member m0 c0) then
    failwith "Symbolic.materialize: initial state missing from reachable set";
  ignore (add m0 c0);
  let edges = Vec.create ~capacity:64 ~dummy:0 () in
  let cursor = ref 0 in
  while !cursor < Vec.length markings do
    let s = !cursor in
    incr cursor;
    let m = Vec.get markings s and c = Vec.get codes s in
    Petri.iter_enabled net m (fun t ->
        let m' = Petri.fire net m t in
        Sg.check_label stg c t;
        let s' =
          match Hashtbl.find_opt tbl m' with
          | Some s' ->
            if not (Sg.code_matches stg c t (Vec.get codes s')) then
              raise (Sg.Inconsistent "same marking reached with two different codes");
            s'
          | None ->
            if Vec.length markings >= max_states then
              raise (Sg.Too_large max_states);
            let c' = Sg.apply_label stg c t in
            if not (member m' c') then
              failwith
                "Symbolic.materialize: explicit successor missing from reachable set";
            add m' c'
        in
        Vec.push edges s;
        Vec.push edges t;
        Vec.push edges s')
  done;
  if Vec.length markings <> sym.num_states then
    failwith "Symbolic.materialize: explicit and symbolic state counts differ";
  Sg.of_exploration ~stg ~markings:(Vec.to_array markings)
    ~codes:(Vec.to_array codes) ~edges

let pp_stats ppf sym =
  Format.fprintf ppf
    "symbolic: %d state(s) in %d level(s), %d image op(s), peak %d BDD node(s)"
    sym.num_states sym.levels sym.image_ops sym.peak_nodes

(* --- synthesis-facing API ---------------------------------------------- *)

let initial_set sym =
  state_minterm ~place_var:sym.place_var ~signal_var:sym.signal_var
    (Petri.initial_marking (Stg.net sym.stg))
    (Sg.initial_code sym.stg)

let reached_set sym = sym.reached
let enabled_set sym t = sym.ops.(t).enab
let count_set sym f = Bdd.sat_count_over sym.all_vars f

(* Ordered pairs of distinct transitions enabled together in some
   reachable state — the same set [Timed_sim.concurrent_pairs] collects
   by scanning the explicit graph, in the same sorted order.  (In a
   consistent reachable space place-enabled implies the label check
   passes, so [enab] is the explicit notion of enabled.) *)
let concurrent_pairs sym =
  let n = Array.length sym.ops in
  let renab = Array.map (fun op -> Bdd.band sym.reached op.enab) sym.ops in
  let acc = ref [] in
  for t1 = n - 1 downto 0 do
    for t2 = n - 1 downto 0 do
      if t1 <> t2 && Bdd.intersects renab.(t1) sym.ops.(t2).enab then
        acc := (t1, t2) :: !acc
    done
  done;
  !acc

(* A view is the symbolic mirror of [Prune.apply]'s lazy state graph:
   the analysis with some edges suppressed per transition, and the
   states reachable through the edges that remain.  [eff.(t)] is the
   kept-edge enabling set — [enab] minus the states where an assumption
   suppresses [t]. *)
type view = {
  base : t;
  vreached : Bdd.t; (* states reachable through kept edges *)
  eff : Bdd.t array; (* kept-edge enabling, per transition *)
}

let unrestricted sym =
  {
    base = sym;
    vreached = sym.reached;
    eff = Array.map (fun op -> op.enab) sym.ops;
  }

(* Recompute reachability with each transition [t] firing only from
   [allowed t] (clipped to its enabling set).  The restricted space is a
   subset of the verified [sym.reached], so no safety or consistency
   checks are needed; chained per-transition images converge in a few
   sweeps on the small pruned spaces this is used for. *)
let restrict sym ~allowed =
  let eff =
    Array.init (Array.length sym.ops) (fun t ->
        Bdd.band sym.ops.(t).enab (allowed t))
  in
  let init = initial_set sym in
  let vreached = ref init and frontier = ref init in
  while not (Bdd.is_zero !frontier) do
    let expand = ref !frontier and fresh_sweep = ref Bdd.zero in
    Array.iteri
      (fun t op ->
        let img =
          Bdd.band (Bdd.rel_product op.changed !expand eff.(t)) op.update
        in
        let fresh = Bdd.bdiff img !vreached in
        if not (Bdd.is_zero fresh) then begin
          vreached := Bdd.bor !vreached fresh;
          expand := Bdd.bor !expand fresh;
          fresh_sweep := Bdd.bor !fresh_sweep fresh
        end)
      sym.ops;
    frontier := !fresh_sweep
  done;
  assert (Bdd.subset !vreached sym.reached);
  { base = sym; vreached = !vreached; eff }

let view_base vw = vw.base
let view_reached vw = vw.vreached
let view_states vw = count_set vw.base vw.vreached

let view_deadlock_free vw =
  let any = Array.fold_left Bdd.bor Bdd.zero vw.eff in
  Bdd.is_zero (Bdd.bdiff vw.vreached any)

(* Excitation in the viewed graph: some kept edge of [u] leaves the
   state.  (On the unrestricted view this coincides with [excited_set]
   over reachable states.) *)
let view_excited vw u =
  let acc = ref Bdd.zero in
  Array.iteri
    (fun t op -> if op.signal = u then acc := Bdd.bor !acc vw.eff.(t))
    vw.base.ops;
  !acc

let view_csc_conflict_signals vw =
  let sym = vw.base in
  List.filter
    (fun u ->
      let ex = view_excited vw u in
      let a = Bdd.exists sym.place_vars (Bdd.band vw.vreached ex) in
      let b = Bdd.exists sym.place_vars (Bdd.bdiff vw.vreached ex) in
      Bdd.intersects a b)
    (Stg.non_input_signals sym.stg)

let view_has_csc vw = view_csc_conflict_signals vw <> []

(* Project a set of states to its codes, expressed over the signal-index
   variables 0..ns-1 — the space [Nextstate]/[Implement] covers live in.
   The argument must depend only on signal present variables (quantify
   the places out first).  The rename is a simultaneous substitution by
   cofactor descent: source variables are consumed top-down and the
   result rebuilt over target variables with [ite], so numeric overlap
   between the two spaces is harmless. *)
let codes_of sym f =
  let np = Petri.num_places (Stg.net sym.stg) in
  let kind = var_kinds sym in
  let memo = Hashtbl.create 64 in
  let rec go f =
    if Bdd.is_zero f || Bdd.is_one f then f
    else
      match Hashtbl.find_opt memo (Bdd.id f) with
      | Some r -> r
      | None ->
        let v = Bdd.top_var f in
        let u = kind.(v) - np in
        let r =
          Bdd.ite (Bdd.var u)
            (go (Bdd.cofactor f v true))
            (go (Bdd.cofactor f v false))
        in
        Hashtbl.add memo (Bdd.id f) r;
        r
  in
  go f

type regions = {
  on : Bdd.t;
  off : Bdd.t;
  rise : Bdd.t;
  fall : Bdd.t;
  high : Bdd.t;
  low : Bdd.t;
}

(* The per-signal next-state regions of the viewed graph, as code sets —
   exactly what [Nextstate.of_sg] accumulates state by state: with
   v = current value and e = excited, the next value is v xor e; rise
   is !v&e, fall v&e, high v&!e, low !v&!e. *)
let code_regions vw u =
  let sym = vw.base in
  let v = Bdd.var sym.signal_var.(u) in
  let e = view_excited vw u in
  let codes cond =
    codes_of sym (Bdd.exists sym.place_vars (Bdd.band vw.vreached cond))
  in
  let next = Bdd.bxor v e in
  {
    on = codes next;
    off = codes (Bdd.bnot next);
    rise = codes (Bdd.band (Bdd.bnot v) e);
    fall = codes (Bdd.band v e);
    high = codes (Bdd.band v (Bdd.bnot e));
    low = codes (Bdd.band (Bdd.bnot v) (Bdd.bnot e));
  }

(* Per-transition excitation code sets for [u]'s [dir] edges, in
   [Stg.transitions_of] order — the symbolic mirror of
   [Implement.excitation_instances]. *)
let excitation_regions vw u dir =
  let sym = vw.base in
  List.map
    (fun t ->
      codes_of sym
        (Bdd.exists sym.place_vars (Bdd.band vw.vreached vw.eff.(t))))
    (Stg.transitions_of sym.stg u dir)
