(* Symbolic BDD-based reachability for STGs.

   One BDD variable per place and one per signal encodes a state
   (marking, code) as a minterm; each transition is compiled into a
   relational-product image operator and the reachable set is computed by
   a frontier-based fixpoint.  The engine is exact: it enforces the same
   safety and consistency rules as the explicit [Sg.build] (raising the
   same exceptions), and every analysis it offers — state counting,
   deadlocks, transition liveness, CSC conflicts, output persistency —
   agrees with the explicit engine verdict for verdict.

   Variable order.  Places and signals are interleaved: each signal
   variable is positioned immediately after the lowest-indexed place its
   transitions touch.  On pipeline-shaped specifications (the token-ring
   family) this keeps each stage's places and handshake signals adjacent,
   so the reachable set stays near-linear in ring size where a
   places-then-signals order can blow up exponentially.

   Image computation.  For a transition t with preset P, postset Q and
   label u+/u-, the operator is

     img_t(S) = rel_product (P ∪ Q ∪ {u})
                            (S ∧ enab_t)
                            ∧ update_t

   where enab_t is the conjunction of the preset variables and the
   required polarity of u, and update_t fixes the post-firing values
   (Q set, P∖Q cleared, u flipped).  Variables outside P ∪ Q ∪ {u} are
   untouched, which is exactly the frame condition of [Petri.fire] +
   [Sg.apply_label].  Safety (a token produced into a marked place) and
   consistency (an edge firing against the signal's current value, or
   one marking reached with two codes) are checked level by level
   before the image is taken, so failures surface as [Petri.Unsafe] and
   [Sg.Inconsistent] just as in the explicit BFS.

   Everything here runs on the calling domain: BDDs are domain-local
   (see [Bdd]), so a [t] value must not be shared across domains.  Ship
   only counts, bools and bitsets across joins. *)

module Bitset = Rtcad_util.Bitset
module Vec = Rtcad_util.Vec
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Bdd = Rtcad_logic.Bdd
module Obs = Rtcad_obs.Obs

type trans_op = {
  tr : int;
  signal : int; (* -1 for dummies *)
  place_enab : Bdd.t; (* preset variables conjoined *)
  enab : Bdd.t; (* place_enab ∧ required signal polarity *)
  wrong : Bdd.t; (* place_enab ∧ opposite polarity; Zero for dummies *)
  wrong_msg : string;
  changed : int list; (* quantified by the image: preset ∪ postset ∪ signal *)
  update : Bdd.t; (* post-firing cube over [changed] *)
  fresh_places : int list; (* postset ∖ preset, in [Petri.post] order *)
}

type t = {
  stg : Stg.t;
  nvars : int;
  place_var : int array;
  signal_var : int array;
  place_vars : int list; (* ascending *)
  signal_vars : int list; (* ascending *)
  ops : trans_op array;
  reached : Bdd.t;
  num_states : int;
  levels : int;
  image_ops : int;
  peak_nodes : int;
}

(* --- variable order --------------------------------------------------- *)

let variable_order stg =
  let net = Stg.net stg in
  let np = Petri.num_places net and ns = Stg.num_signals stg in
  let nt = Petri.num_transitions net in
  (* Anchor of a signal: the lowest place index any of its transitions
     consumes or produces. *)
  let anchor = Array.make ns np in
  for t = 0 to nt - 1 do
    match Stg.label stg t with
    | Stg.Dummy -> ()
    | Stg.Edge { signal; _ } ->
      List.iter
        (fun p -> if p < anchor.(signal) then anchor.(signal) <- p)
        (Petri.pre net t @ Petri.post net t)
  done;
  let items =
    Array.init (np + ns) (fun i ->
        if i < np then (i, 0, i) (* place i, sorted by own index *)
        else
          let u = i - np in
          (anchor.(u), 1, u) (* signal u, right after its anchor place *))
  in
  Array.sort compare items;
  let place_var = Array.make np 0 and signal_var = Array.make ns 0 in
  Array.iteri
    (fun v (_, kind, idx) ->
      if kind = 0 then place_var.(idx) <- v else signal_var.(idx) <- v)
    items;
  (place_var, signal_var)

(* --- transition compilation ------------------------------------------- *)

let cube_of_list vars =
  List.fold_left (fun acc v -> Bdd.band acc (Bdd.var v)) Bdd.one vars

let compile_op stg ~place_var ~signal_var t =
  let net = Stg.net stg in
  let pre = Petri.pre net t and post = Petri.post net t in
  let place_enab = cube_of_list (List.map (fun p -> place_var.(p)) pre) in
  let enab, wrong, wrong_msg, sig_update, signal =
    match Stg.label stg t with
    | Stg.Dummy -> (place_enab, Bdd.zero, "", Bdd.one, -1)
    | Stg.Edge { signal; dir } ->
      let sv = signal_var.(signal) in
      let need, opp, how, upd =
        match dir with
        | Stg.Rise -> (Bdd.nvar sv, Bdd.var sv, " already high", Bdd.var sv)
        | Stg.Fall -> (Bdd.var sv, Bdd.nvar sv, " already low", Bdd.nvar sv)
      in
      ( Bdd.band place_enab need,
        Bdd.band place_enab opp,
        Sg.inconsistent_msg stg signal dir how,
        upd,
        signal )
  in
  let update =
    List.fold_left
      (fun acc p ->
        if List.mem p post then acc else Bdd.band acc (Bdd.nvar place_var.(p)))
      (Bdd.band sig_update
         (cube_of_list (List.map (fun p -> place_var.(p)) post)))
      pre
  in
  let changed =
    List.sort_uniq Int.compare
      ((if signal >= 0 then [ signal_var.(signal) ] else [])
      @ List.map (fun p -> place_var.(p)) (pre @ post))
  in
  let fresh_places = List.filter (fun p -> not (List.mem p pre)) post in
  { tr = t; signal; place_enab; enab; wrong; wrong_msg; changed; update; fresh_places }

(* --- reachability fixpoint -------------------------------------------- *)

let state_minterm ~nvars ~place_var ~signal_var marking code =
  let values = Array.make nvars false in
  Array.iteri (fun p v -> values.(v) <- Bitset.mem marking p) place_var;
  Array.iteri (fun u v -> values.(v) <- Bitset.mem code u) signal_var;
  Bdd.of_minterm nvars values

(* [set] must be independent of all signal variables; each marking then
   accounts for exactly [2^num_signals] assignments. *)
let count_markings ~nvars ~num_signals set =
  if num_signals >= Sys.int_size - 2 then invalid_arg "Symbolic: too many signals";
  Bdd.sat_count set nvars / (1 lsl num_signals)

let analyze ?max_states stg =
  Obs.span "sg.symbolic" @@ fun () ->
  let net = Stg.net stg in
  let ns = Stg.num_signals stg in
  let np = Petri.num_places net in
  let nvars = np + ns in
  let place_var, signal_var = variable_order stg in
  let ops =
    Array.init (Petri.num_transitions net) (compile_op stg ~place_var ~signal_var)
  in
  let place_vars = List.sort Int.compare (Array.to_list place_var) in
  let signal_vars = List.sort Int.compare (Array.to_list signal_var) in
  let init =
    state_minterm ~nvars ~place_var ~signal_var (Petri.initial_marking net)
      (Sg.initial_code stg)
  in
  let reached = ref init and frontier = ref init in
  let levels = ref 0 and image_ops = ref 0 in
  let peak = ref (Bdd.node_count init) in
  let num_markings = ref 1 in
  (* The explicit BFS fires every enabled transition of every state, so a
     safety or consistency offence anywhere in the reachable space is an
     offence here too: check each frontier before expanding it.  [fire]
     raises before [check_label] runs, hence the unsafe check first. *)
  let check_frontier f =
    Array.iter
      (fun op ->
        let en = Bdd.band f op.place_enab in
        if not (Bdd.is_zero en) then begin
          List.iter
            (fun p ->
              if not (Bdd.is_zero (Bdd.band en (Bdd.var place_var.(p)))) then
                raise (Petri.Unsafe p))
            op.fresh_places;
          if not (Bdd.is_zero (Bdd.band en op.wrong)) then
            raise (Sg.Inconsistent op.wrong_msg)
        end)
      ops
  in
  (* Chained (Gauss-Seidel) sweeps: within one sweep, states discovered
     by earlier transitions feed the images of later ones, so a token can
     ripple down a whole pipeline in a single pass — on ring-shaped
     specifications this collapses the BFS depth (~4N levels) to a
     near-constant number of sweeps.  Exactness is unaffected: every
     state enters [frontier] exactly once and is checked by
     [check_frontier] before any result is reported (a state expanded
     mid-sweep before its check still raises at the head of the next
     sweep, before the fixpoint can complete). *)
  while not (Bdd.is_zero !frontier) do
    incr levels;
    check_frontier !frontier;
    let expand = ref !frontier and fresh_sweep = ref Bdd.zero in
    Array.iter
      (fun op ->
        incr image_ops;
        let img =
          Bdd.band (Bdd.rel_product op.changed !expand op.enab) op.update
        in
        let fresh = Bdd.band img (Bdd.bnot !reached) in
        if not (Bdd.is_zero fresh) then begin
          reached := Bdd.bor !reached fresh;
          expand := Bdd.bor !expand fresh;
          fresh_sweep := Bdd.bor !fresh_sweep fresh
        end)
      ops;
    frontier := !fresh_sweep;
    let nodes = Bdd.node_count !reached in
    if nodes > !peak then peak := nodes;
    let states = Bdd.sat_count !reached nvars in
    let markings =
      count_markings ~nvars ~num_signals:ns (Bdd.exists signal_vars !reached)
    in
    (* Two states sharing a marking must share a code: any surplus means
       the explicit build would have merged the marking and failed. *)
    if states > markings then
      raise (Sg.Inconsistent "same marking reached with two different codes");
    (match max_states with
    | Some bound when markings > bound -> raise (Sg.Too_large bound)
    | _ -> ());
    num_markings := markings
  done;
  if Obs.enabled () then begin
    Obs.incr ~by:!levels "sg.symbolic.levels";
    Obs.incr ~by:!image_ops "sg.symbolic.image_ops";
    Obs.set_gauge "sg.symbolic.states" (float_of_int !num_markings);
    Obs.set_gauge "sg.symbolic.reached_nodes"
      (float_of_int (Bdd.node_count !reached));
    Obs.set_gauge "sg.symbolic.peak_nodes" (float_of_int !peak);
    let ts = Bdd.table_stats () in
    Obs.set_gauge "bdd.unique_nodes" (float_of_int ts.Bdd.unique_nodes);
    Obs.set_gauge "bdd.op_cache_entries" (float_of_int ts.Bdd.op_cache_entries)
  end;
  {
    stg;
    nvars;
    place_var;
    signal_var;
    place_vars;
    signal_vars;
    ops;
    reached = !reached;
    num_states = !num_markings;
    levels = !levels;
    image_ops = !image_ops;
    peak_nodes = !peak;
  }

let stg sym = sym.stg
let num_states sym = sym.num_states
let num_levels sym = sym.levels
let num_image_ops sym = sym.image_ops
let peak_nodes sym = sym.peak_nodes
let reachable_nodes sym = Bdd.node_count sym.reached

(* --- per-signal excitation, deadlocks, CSC ---------------------------- *)

(* In a reachable state of a successfully analysed STG, every
   place-enabled transition also produced an explicit edge (its label
   check passed — [check_frontier] proved there are no offenders), so
   "some transition of u is place-enabled" coincides with the explicit
   engine's [Sg.excited]. *)
let excited_set sym u =
  Array.fold_left
    (fun acc op -> if op.signal = u then Bdd.bor acc op.place_enab else acc)
    Bdd.zero sym.ops

let any_enabled sym =
  Array.fold_left (fun acc op -> Bdd.bor acc op.place_enab) Bdd.zero sym.ops

let deadlock_set sym = Bdd.band sym.reached (Bdd.bnot (any_enabled sym))

(* Reachable states are in bijection with their BDD minterms (one code
   per marking), so counting assignments counts states. *)
let deadlock_count sym = Bdd.sat_count (deadlock_set sym) sym.nvars

(* kind.(v) = place index, or num_places + signal index. *)
let var_kinds sym =
  let np = Petri.num_places (Stg.net sym.stg) in
  let kind = Array.make sym.nvars (-1) in
  Array.iteri (fun p v -> kind.(v) <- p) sym.place_var;
  Array.iteri (fun u v -> kind.(v) <- np + u) sym.signal_var;
  kind

(* Enumerate the full assignments of [set], expanding variables absent
   from a path both ways (a skipped variable satisfies the path with
   either value).  Returns (marking, code) pairs in lexicographic
   variable-assignment order. *)
let enum_states sym set =
  let np = Petri.num_places (Stg.net sym.stg) in
  let ns = Stg.num_signals sym.stg in
  let kind = var_kinds sym in
  let acc = ref [] in
  let rec go bdd v m c =
    if Bdd.is_zero bdd then ()
    else if v >= sym.nvars then acc := (m, c) :: !acc
    else begin
      let lo, hi =
        if (not (Bdd.is_one bdd)) && Bdd.top_var bdd = v then
          (Bdd.cofactor bdd v false, Bdd.cofactor bdd v true)
        else (bdd, bdd)
      in
      go lo (v + 1) m c;
      let k = kind.(v) in
      let m', c' =
        if k < np then (Bitset.add m k, c) else (m, Bitset.add c (k - np))
      in
      go hi (v + 1) m' c'
    end
  in
  go set 0 (Bitset.create np) (Bitset.create ns);
  List.rev !acc

let deadlock_states sym = enum_states sym (deadlock_set sym)
let deadlock_markings sym = List.map fst (deadlock_states sym)

let live_transitions sym =
  Array.for_all
    (fun op -> not (Bdd.is_zero (Bdd.band sym.reached op.place_enab)))
    sym.ops

(* CSC: signal u is in conflict iff some code is shared by a reachable
   state where u is excited and one where it is not — quantifying the
   places out of both sides leaves two sets of codes whose intersection
   is exactly the conflicting codes.  This matches the explicit
   [Encoding.csc_conflicts] pair scan without ever forming pairs. *)
let csc_conflict_signals sym =
  List.filter
    (fun u ->
      let ex = excited_set sym u in
      let a = Bdd.exists sym.place_vars (Bdd.band sym.reached ex) in
      let b =
        Bdd.exists sym.place_vars (Bdd.band sym.reached (Bdd.bnot ex))
      in
      not (Bdd.is_zero (Bdd.band a b)))
    (Stg.non_input_signals sym.stg)

let has_csc sym = csc_conflict_signals sym <> []

(* --- output persistency ----------------------------------------------- *)

(* Mirror of [Props.persistency_violations]: firing [by] from a state
   where a non-input transition [t] (of a different signal) is also
   enabled must leave some transition of [t]'s signal enabled.  Only
   [by] that consume a token [t] needs — pre(t) ∩ (pre(by) ∖ post(by))
   non-empty — can disable [t], so all other pairs are skipped without
   an image computation (on marked-graph-like specs this prunes every
   pair). *)
let is_output_persistent sym =
  let stg = sym.stg in
  let net = Stg.net stg in
  let signal_of t =
    match Stg.label stg t with
    | Stg.Edge { signal; _ } -> Some signal
    | Stg.Dummy -> None
  in
  let is_input t =
    match signal_of t with Some u -> Stg.is_input stg u | None -> false
  in
  let same_signal_enab t =
    let s = signal_of t in
    Array.fold_left
      (fun acc op ->
        if signal_of op.tr = s then Bdd.bor acc op.place_enab else acc)
      Bdd.zero sym.ops
  in
  let image op set =
    Bdd.band (Bdd.rel_product op.changed set op.enab) op.update
  in
  let can_disable ~t ~by =
    let taken =
      List.filter (fun p -> not (List.mem p (Petri.post net by))) (Petri.pre net by)
    in
    List.exists (fun p -> List.mem p taken) (Petri.pre net t)
  in
  Array.for_all
    (fun opt ->
      is_input opt.tr
      || Array.for_all
           (fun opby ->
             opt.tr = opby.tr
             || signal_of opt.tr = signal_of opby.tr
             || (not (can_disable ~t:opt.tr ~by:opby.tr))
             ||
             let both = Bdd.band sym.reached (Bdd.band opt.place_enab opby.enab) in
             Bdd.is_zero both
             || Bdd.is_zero
                  (Bdd.band (image opby both) (Bdd.bnot (same_signal_enab opt.tr))))
           sym.ops)
    sym.ops

(* --- materialization --------------------------------------------------- *)

(* Replay the serial explicit BFS ([Sg.build_serial]'s exact discovery
   and numbering), asserting every state against the symbolic reachable
   set as it is found.  The result is bit-identical to [Sg.build] — same
   ids, same packed arrays — and the membership check makes every
   materialization a differential test of the two engines. *)
let materialize ?(max_states = 200_000) sym =
  Obs.span "sg.symbolic.materialize" @@ fun () ->
  let stg = sym.stg in
  let net = Stg.net stg in
  let np = Petri.num_places net in
  let kind = var_kinds sym in
  let member marking code =
    Bdd.eval sym.reached (fun v ->
        let k = kind.(v) in
        if k < np then Bitset.mem marking k else Bitset.mem code (k - np))
  in
  let tbl = Hashtbl.create 256 in
  let empty = Bitset.create 0 in
  let markings = Vec.create ~capacity:32 ~dummy:empty () in
  let codes = Vec.create ~capacity:32 ~dummy:empty () in
  let add marking code =
    let id = Vec.length markings in
    Vec.push markings marking;
    Vec.push codes code;
    Hashtbl.add tbl marking id;
    id
  in
  let m0 = Petri.initial_marking net in
  let c0 = Sg.initial_code stg in
  if not (member m0 c0) then
    failwith "Symbolic.materialize: initial state missing from reachable set";
  ignore (add m0 c0);
  let edges = Vec.create ~capacity:64 ~dummy:0 () in
  let cursor = ref 0 in
  while !cursor < Vec.length markings do
    let s = !cursor in
    incr cursor;
    let m = Vec.get markings s and c = Vec.get codes s in
    Petri.iter_enabled net m (fun t ->
        let m' = Petri.fire net m t in
        Sg.check_label stg c t;
        let s' =
          match Hashtbl.find_opt tbl m' with
          | Some s' ->
            if not (Sg.code_matches stg c t (Vec.get codes s')) then
              raise (Sg.Inconsistent "same marking reached with two different codes");
            s'
          | None ->
            if Vec.length markings >= max_states then
              raise (Sg.Too_large max_states);
            let c' = Sg.apply_label stg c t in
            if not (member m' c') then
              failwith
                "Symbolic.materialize: explicit successor missing from reachable set";
            add m' c'
        in
        Vec.push edges s;
        Vec.push edges t;
        Vec.push edges s')
  done;
  if Vec.length markings <> sym.num_states then
    failwith "Symbolic.materialize: explicit and symbolic state counts differ";
  Sg.of_exploration ~stg ~markings:(Vec.to_array markings)
    ~codes:(Vec.to_array codes) ~edges

let pp_stats ppf sym =
  Format.fprintf ppf
    "symbolic: %d state(s) in %d level(s), %d image op(s), peak %d BDD node(s)"
    sym.num_states sym.levels sym.image_ops sym.peak_nodes
