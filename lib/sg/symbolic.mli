(** Symbolic BDD-based reachability and analysis of STGs.

    States (marking, code) are encoded as minterms over one BDD variable
    per place and one per signal; each transition becomes a
    relational-product image operator, and the reachable set is computed
    by a frontier-based fixpoint.  The engine is exact with respect to
    the explicit {!Sg.build}: same state space, same deadlocks, same CSC
    verdicts, and the same failures ({!Sg.Inconsistent},
    {!Rtcad_stg.Petri.Unsafe}, {!Sg.Too_large} when a bound is given).

    Variables are ordered by interleaving each signal with the
    lowest-indexed place its transitions touch, which keeps
    pipeline-shaped specifications (token rings) compact.

    Concurrency contract: a {!t} wraps BDDs, which are domain-local —
    analyse and query on one domain, ship only counts/booleans/bitsets
    across parallel joins. *)

type t

val analyze : ?max_states:int -> ?seed:t -> Rtcad_stg.Stg.t -> t
(** Run the symbolic fixpoint.  Unbounded by default — the point of the
    engine is state spaces the explicit builder cannot enumerate; pass
    [max_states] to replicate the explicit bound ({!Sg.Too_large} is
    raised when the marking count exceeds it).  Raises
    {!Sg.Inconsistent} or {!Rtcad_stg.Petri.Unsafe} exactly when
    {!Sg.build} would.

    [seed] is a prior analysis to re-seed the fixpoint from.  When
    {!seed_compatible} holds — the edit that produced this STG from the
    seed's is a pure transition addition under an identical state
    encoding — the fixpoint starts from the seed's reachable set instead
    of the initial state and only discovers what the edit added.
    Otherwise the seed is ignored and the run starts from scratch.
    Results are bit-identical either way: the seeded start set re-enters
    the first frontier and is checked against the new STG's transitions
    exactly like discovered states. *)

val seed_compatible : t -> Rtcad_stg.Stg.t -> bool
(** Can [analyze ~seed] start from this analysis for that STG?  True
    when the place/signal index spaces, variable-order assignment and
    initial (marking, code) are identical and every seed transition
    (label, preset, postset) still exists — i.e. the STG is the seed's
    STG plus zero or more transitions, which guarantees every previously
    reachable state is still reachable. *)

val analyze_cached : ?max_states:int -> Rtcad_stg.Stg.t -> t
(** {!analyze} through a small domain-local pool of recent analyses: an
    STG whose canonical [.g] text matches a pooled analysis gets it back
    without running the fixpoint (a [max_states] below the pooled state
    count still raises {!Sg.Too_large}); otherwise the fixpoint runs,
    seeded from a {!seed_compatible} pooled analysis when one exists,
    and the result joins the pool.  Failures are never pooled.  The pool
    is per-domain (BDDs are domain-local) and bounded. *)

(** The domain-local analysis pool behind {!analyze_cached}. *)
module Seeds : sig
  val clear : unit -> unit
  (** Drop this domain's pooled analyses (tests and memory-sensitive
      campaign loops). *)

  val size : unit -> int
end

val stg : t -> Rtcad_stg.Stg.t

val num_states : t -> int
(** Number of reachable states, by BDD model counting. *)

val equal_reachable : t -> t -> bool
(** Bit-identical reachable state sets (BDD equality, which hash-consing
    makes physical).  Both analyses must come from the same domain.  The
    differential edit-replay battery uses this to prove a seeded
    (delta) fixpoint reached exactly the from-scratch set. *)

val num_levels : t -> int
(** Chained sweeps the fixpoint took to converge (each sweep covers at
    least one BFS level, usually many). *)

val num_image_ops : t -> int
val peak_nodes : t -> int
(** Largest node count of the reachable-set BDD across levels. *)

val num_clusters : t -> int
(** Image operators per sweep after clustering (equals the transition
    count when clustering is disabled via [RTCAD_BDD_CLUSTER_WIDTH=0]). *)

val reachable_nodes : t -> int
(** Node count of the final reachable-set BDD. *)

val deadlock_count : t -> int

val deadlock_markings : t -> Rtcad_util.Bitset.t list
(** Markings of the reachable deadlocked states. *)

val deadlock_states : t -> (Rtcad_util.Bitset.t * Rtcad_util.Bitset.t) list
(** Deadlocked (marking, code) pairs. *)

val live_transitions : t -> bool
(** Every transition enabled in at least one reachable state. *)

val csc_conflict_signals : t -> int list
(** Non-input signals whose excitation differs between two reachable
    states sharing a code — the signals the explicit
    [Encoding.csc_conflicts] would report, ascending. *)

val has_csc : t -> bool

val is_output_persistent : t -> bool
(** Symbolic mirror of [Props.is_output_persistent]. *)

val materialize : ?max_states:int -> t -> Sg.t
(** Extract an explicit state graph, bit-identical to [Sg.build] on the
    same STG: the serial BFS is replayed (canonical ids, packed arrays)
    with every discovered state asserted against the symbolic reachable
    set, so a divergence between the engines fails loudly.  Default
    bound 200000 states, like {!Sg.build}. *)

val pp_stats : Format.formatter -> t -> unit

(** {2 Synthesis-facing queries}

    Everything below returns BDDs built on the calling domain — the
    usual contract applies (do not ship them across domains). *)

val reached_set : t -> Rtcad_logic.Bdd.t
(** The reachable state set over present variables. *)

val enabled_set : t -> int -> Rtcad_logic.Bdd.t
(** [enabled_set sym t]: states in which transition [t] may fire
    (preset marked, edge polarity consistent).  Not intersected with the
    reachable set. *)

val count_set : t -> Rtcad_logic.Bdd.t -> int
(** Number of states in a set over the present variables. *)

val concurrent_pairs : t -> (int * int) list
(** Ordered pairs of distinct transitions enabled together in some
    reachable state — same contents and order as
    [Timed_sim.concurrent_pairs] on the explicit graph. *)

type view
(** A state graph viewed through per-transition edge suppression — the
    symbolic mirror of [Prune]'s lazy state graph.  The unrestricted
    view is the analysis itself. *)

val unrestricted : t -> view

val restrict : t -> allowed:(int -> Rtcad_logic.Bdd.t) -> view
(** [restrict sym ~allowed] recomputes reachability with transition [t]
    firing only from states in [allowed t] (clipped to its enabling
    set).  The result's states are a subset of [reached_set]. *)

val view_base : view -> t
val view_reached : view -> Rtcad_logic.Bdd.t
val view_states : view -> int

val view_deadlock_free : view -> bool
(** No reachable state of the view lacks an outgoing kept edge. *)

val view_excited : view -> int -> Rtcad_logic.Bdd.t
(** States with a kept edge of the given signal. *)

val view_csc_conflict_signals : view -> int list
val view_has_csc : view -> bool

type regions = {
  on : Rtcad_logic.Bdd.t;
  off : Rtcad_logic.Bdd.t;
  rise : Rtcad_logic.Bdd.t;
  fall : Rtcad_logic.Bdd.t;
  high : Rtcad_logic.Bdd.t;
  low : Rtcad_logic.Bdd.t;
}
(** Code sets over the signal-index variables [0..ns-1] — the space
    [Nextstate] specs live in. *)

val code_regions : view -> int -> regions
(** The next-state regions of a signal in the viewed graph, as code
    sets: what [Nextstate.of_sg] accumulates from an explicit graph.
    [on] and [off] may intersect — that intersection is the CSC
    conflict [Nextstate.of_sg] reports as [Conflict]. *)

val excitation_regions : view -> int -> Rtcad_stg.Stg.dir -> Rtcad_logic.Bdd.t list
(** Per-transition excitation code sets for a signal's rising or
    falling edges, in [Stg.transitions_of] order — the symbolic mirror
    of [Implement.excitation_instances]. *)
