(** Symbolic BDD-based reachability and analysis of STGs.

    States (marking, code) are encoded as minterms over one BDD variable
    per place and one per signal; each transition becomes a
    relational-product image operator, and the reachable set is computed
    by a frontier-based fixpoint.  The engine is exact with respect to
    the explicit {!Sg.build}: same state space, same deadlocks, same CSC
    verdicts, and the same failures ({!Sg.Inconsistent},
    {!Rtcad_stg.Petri.Unsafe}, {!Sg.Too_large} when a bound is given).

    Variables are ordered by interleaving each signal with the
    lowest-indexed place its transitions touch, which keeps
    pipeline-shaped specifications (token rings) compact.

    Concurrency contract: a {!t} wraps BDDs, which are domain-local —
    analyse and query on one domain, ship only counts/booleans/bitsets
    across parallel joins. *)

type t

val analyze : ?max_states:int -> Rtcad_stg.Stg.t -> t
(** Run the symbolic fixpoint.  Unbounded by default — the point of the
    engine is state spaces the explicit builder cannot enumerate; pass
    [max_states] to replicate the explicit bound ({!Sg.Too_large} is
    raised when the marking count exceeds it).  Raises
    {!Sg.Inconsistent} or {!Rtcad_stg.Petri.Unsafe} exactly when
    {!Sg.build} would. *)

val stg : t -> Rtcad_stg.Stg.t

val num_states : t -> int
(** Number of reachable states, by BDD model counting. *)

val num_levels : t -> int
(** Chained sweeps the fixpoint took to converge (each sweep covers at
    least one BFS level, usually many). *)

val num_image_ops : t -> int
val peak_nodes : t -> int
(** Largest node count of the reachable-set BDD across levels. *)

val reachable_nodes : t -> int
(** Node count of the final reachable-set BDD. *)

val deadlock_count : t -> int

val deadlock_markings : t -> Rtcad_util.Bitset.t list
(** Markings of the reachable deadlocked states. *)

val deadlock_states : t -> (Rtcad_util.Bitset.t * Rtcad_util.Bitset.t) list
(** Deadlocked (marking, code) pairs. *)

val live_transitions : t -> bool
(** Every transition enabled in at least one reachable state. *)

val csc_conflict_signals : t -> int list
(** Non-input signals whose excitation differs between two reachable
    states sharing a code — the signals the explicit
    [Encoding.csc_conflicts] would report, ascending. *)

val has_csc : t -> bool

val is_output_persistent : t -> bool
(** Symbolic mirror of [Props.is_output_persistent]. *)

val materialize : ?max_states:int -> t -> Sg.t
(** Extract an explicit state graph, bit-identical to [Sg.build] on the
    same STG: the serial BFS is replayed (canonical ids, packed arrays)
    with every discovered state asserted against the symbolic reachable
    set, so a divergence between the engines fails loudly.  Default
    bound 200000 states, like {!Sg.build}. *)

val pp_stats : Format.formatter -> t -> unit
