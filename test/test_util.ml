(* Tests for Rtcad_util.Heap, Rng and Stats. *)

module Heap = Rtcad_util.Heap
module Rng = Rtcad_util.Rng
module Stats = Rtcad_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Heap. *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5; 1; 4; 1; 3 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (drain [])

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 7 "first";
  Heap.push h 7 "second";
  Heap.push h 7 "third";
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "fifo 1" "first" (pop ());
  Alcotest.(check string) "fifo 2" "second" (pop ());
  Alcotest.(check string) "fifo 3" "third" (pop ())

let test_heap_empty () =
  let h = Heap.create () in
  check "empty" true (Heap.is_empty h);
  check "pop none" true (Heap.pop h = None);
  check "peek none" true (Heap.peek_key h = None);
  Heap.push h 1 ();
  check_int "length" 1 (Heap.length h);
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort Int.compare keys)

(* Rng. *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  check "same stream" true
    (List.for_all (fun _ -> Rng.int a 1000 = Rng.int b 1000) (List.init 50 Fun.id))

let test_rng_bounds () =
  let rng = Rng.create 3 in
  check "int in range" true
    (List.for_all (fun _ -> let v = Rng.int rng 7 in v >= 0 && v < 7)
       (List.init 500 Fun.id));
  check "float in range" true
    (List.for_all
       (fun _ -> let v = Rng.float rng 2.5 in v >= 0.0 && v < 2.5)
       (List.init 500 Fun.id))

let test_rng_weighted () =
  let rng = Rng.create 9 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.weighted rng [ (1, "rare"); (9, "common") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let rare = Option.value ~default:0 (Hashtbl.find_opt counts "rare") in
  let common = Option.value ~default:0 (Hashtbl.find_opt counts "common") in
  check "both occur" true (rare > 0 && common > 0);
  check "ratio roughly 1:9" true (common > 5 * rare)

let test_rng_errors () =
  let rng = Rng.create 1 in
  check "bad bound" true
    (try
       ignore (Rng.int rng 0);
       false
     with Invalid_argument _ -> true);
  check "empty pick" true
    (try
       ignore (Rng.pick rng [||]);
       false
     with Invalid_argument _ -> true)

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check "independent" true (xs <> ys)

(* Stats. *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean 0" 0.0 (Stats.mean s);
  check "min raises" true
    (try
       ignore (Stats.min_value s);
       false
     with Invalid_argument _ -> true)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min_value s -. 1e-9
      && Stats.mean s <= Stats.max_value s +. 1e-9)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_order;
        Alcotest.test_case "fifo among ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty ops" `Quick test_heap_empty;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
      ] );
    ( "rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "weighted" `Quick test_rng_weighted;
        Alcotest.test_case "errors" `Quick test_rng_errors;
        Alcotest.test_case "split" `Quick test_rng_split;
      ] );
    ( "stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        QCheck_alcotest.to_alcotest prop_stats_mean_bounds;
      ] );
  ]
