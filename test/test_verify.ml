(* Tests for conformance checking, RT verification, path extraction and
   separation analysis. *)

module Stg = Rtcad_stg.Stg
module Library = Rtcad_stg.Library
module Flow = Rtcad_core.Flow
module Check = Rtcad_core.Check
module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Sim = Rtcad_netlist.Sim
module Conformance = Rtcad_verify.Conformance
module Rt_verify = Rtcad_verify.Rt_verify
module Paths = Rtcad_verify.Paths
module Separation = Rtcad_verify.Separation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Atomic-gate C-element: conforms. *)
let atomic_celement () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let c = Netlist.forward nl "c" in
  Netlist.set_driver nl c
    (Gate.make (Gate.Sop [ 2; 2; 2 ]) ~fanin:6)
    [ (a, false); (b, false); (a, false); (c, false); (b, false); (c, false) ];
  Netlist.mark_output nl c;
  Netlist.settle_initial nl;
  nl

(* Decomposed C-element: fails untimed. *)
let decomposed_celement () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let c = Netlist.forward nl "c" in
  let g2 = Gate.make Gate.And ~fanin:2 in
  let ab = Netlist.add_gate nl g2 [ (a, false); (b, false) ] "ab" in
  let ac = Netlist.add_gate nl g2 [ (a, false); (c, false) ] "ac" in
  let bc = Netlist.add_gate nl g2 [ (b, false); (c, false) ] "bc" in
  Netlist.set_driver nl c
    (Gate.make Gate.Or ~fanin:3)
    [ (ab, false); (ac, false); (bc, false) ];
  Netlist.mark_output nl c;
  Netlist.settle_initial nl;
  nl

let test_conformance_ok () =
  let r = Conformance.check ~circuit:(atomic_celement ()) ~spec:(Library.c_element ()) () in
  check "conforms" true r.Conformance.ok;
  check_int "8 configurations" 8 r.Conformance.configurations

let test_conformance_hazard () =
  let r =
    Conformance.check ~circuit:(decomposed_celement ()) ~spec:(Library.c_element ()) ()
  in
  check "fails" false r.Conformance.ok;
  check "has a hazard" true
    (List.exists
       (function Conformance.Hazard _ -> true | _ -> false)
       r.Conformance.failures);
  check "has an unexpected output" true
    (List.exists
       (function Conformance.Unexpected_output _ -> true | _ -> false)
       r.Conformance.failures)

let test_conformance_wrong_circuit () =
  (* A buffer pretending to be a C-element: fires c after only one input. *)
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let _b = Netlist.input nl "b" in
  let c = Netlist.add_gate nl (Gate.make Gate.Buf ~fanin:1) [ (a, false) ] "c" in
  Netlist.mark_output nl c;
  let r = Conformance.check ~circuit:nl ~spec:(Library.c_element ()) () in
  check "fails" false r.Conformance.ok;
  check "unexpected output" true
    (List.exists
       (function
         | Conformance.Unexpected_output { value = true; _ } -> true
         | _ -> false)
       r.Conformance.failures)

let test_conformance_deadlock () =
  (* A circuit that never answers: c stuck low via a constant. *)
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let c =
    Netlist.add_gate nl (Gate.make Gate.And ~fanin:2) [ (a, false); (a, true) ] "c"
  in
  ignore b;
  Netlist.mark_output nl c;
  let r = Conformance.check ~circuit:nl ~spec:(Library.c_element ()) () in
  check "fails" false r.Conformance.ok;
  check "deadlocks" true
    (List.exists (function Conformance.Deadlock _ -> true | _ -> false) r.Conformance.failures)

let test_conformance_interface_checks () =
  (* Spec input missing from the circuit. *)
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let c = Netlist.add_gate nl (Gate.make Gate.Buf ~fanin:1) [ (a, false) ] "c" in
  Netlist.mark_output nl c;
  check "missing input rejected" true
    (try
       ignore (Conformance.check ~circuit:nl ~spec:(Library.c_element ()) ());
       false
     with Invalid_argument _ -> true)

let test_net_constraints_block () =
  let nl = decomposed_celement () in
  let edge name rising = { Conformance.net = Netlist.find_net nl name; rising } in
  let constraints =
    (edge "ac" true, edge "ab" false)
    :: (edge "bc" true, edge "ab" false)
    :: List.concat_map
         (fun g ->
           List.concat_map
             (fun x -> [ (edge g true, edge x false); (edge g false, edge x true) ])
             [ "a"; "b" ])
         [ "ac"; "bc" ]
  in
  let r =
    Conformance.check ~net_constraints:constraints ~circuit:nl
      ~spec:(Library.c_element ()) ()
  in
  check "conforms with net constraints" true r.Conformance.ok;
  check "used constraints reported" true (r.Conformance.used_net_constraints <> [])

(* Rt_verify: the flow's RT circuits verify with a small required set. *)

let test_rt_verify_fig5 () =
  let r =
    Flow.synthesize
      ~mode:(Flow.Rt { user = []; allow_input_first = true; allow_lazy = true })
      (Library.fifo_with_state ())
  in
  let report =
    Rt_verify.verify ~circuit:r.Flow.netlist ~spec:r.Flow.stg
      ~assumptions:r.Flow.assumptions ()
  in
  check "not SI" false report.Rt_verify.untimed_ok;
  (* The paper's headline: five constraints sufficient. *)
  check_int "five constraints" 5 (List.length report.Rt_verify.required);
  (* Irredundancy: removing any one breaks conformance. *)
  List.iter
    (fun a ->
      let rest =
        List.filter
          (fun b -> not (Rtcad_rt.Assumption.equal a b))
          report.Rt_verify.required
      in
      let weaker =
        Conformance.check ~constraints:rest ~circuit:r.Flow.netlist ~spec:r.Flow.stg ()
      in
      check "irredundant" false weaker.Conformance.ok)
    report.Rt_verify.required

let test_rt_verify_si_circuit () =
  let r = Flow.synthesize ~mode:Flow.Si (Library.fifo ()) in
  let report =
    Rt_verify.verify ~circuit:r.Flow.netlist ~spec:r.Flow.stg ~assumptions:[] ()
  in
  check "SI circuit needs nothing" true report.Rt_verify.untimed_ok;
  check "empty required set" true (report.Rt_verify.required = [])

let test_rt_verify_not_verifiable () =
  (* The wrong circuit cannot be saved by assumptions. *)
  let spec = Library.c_element () in
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let _b = Netlist.input nl "b" in
  let c = Netlist.add_gate nl (Gate.make Gate.Buf ~fanin:1) [ (a, false) ] "c" in
  Netlist.mark_output nl c;
  check "not verifiable" true
    (try
       ignore (Rt_verify.verify ~circuit:nl ~spec ~assumptions:[] ());
       false
     with Rt_verify.Not_verifiable -> true)

(* Paths and separation. *)

let run_celement_sim () =
  let nl = decomposed_celement () in
  let sim = Sim.create nl in
  Sim.settle sim ();
  let a = Netlist.find_net nl "a"
  and b = Netlist.find_net nl "b"
  and c = Netlist.find_net nl "c" in
  Sim.on_change sim c (fun sim v ->
      let cause = Option.map (fun e -> e.Sim.id) (Sim.last_event sim) in
      Sim.drive ?cause sim a (not v) ~after:200.0;
      Sim.drive ?cause sim b (not v) ~after:250.0);
  Sim.drive sim a true ~after:10.0;
  Sim.drive sim b true ~after:30.0;
  Sim.run sim ~until:5000.0;
  (nl, Sim.events sim)

let test_paths_common_ancestor () =
  let nl, events = run_celement_sim () in
  match
    Paths.derive events
      ~fast:{ Paths.net = Netlist.find_net nl "bc"; value = true }
      ~slow:{ Paths.net = Netlist.find_net nl "ab"; value = false }
  with
  | None -> Alcotest.fail "expected a common ancestor"
  | Some p ->
    (* Section 5: "the common source for these transitions is c+". *)
    check "anchor is c+" true
      (p.Paths.fast.Paths.anchor.Sim.net = Netlist.find_net nl "c"
      && p.Paths.fast.Paths.anchor.Sim.value);
    check "fast path one step" true (List.length p.Paths.fast.Paths.steps = 1);
    (* slow path: c+ -> a- -> ab- *)
    check_int "slow path two steps" 2 (List.length p.Paths.slow.Paths.steps)

let test_separation_verdict () =
  let nl, events = run_celement_sim () in
  match
    Paths.derive events
      ~fast:{ Paths.net = Netlist.find_net nl "bc"; value = true }
      ~slow:{ Paths.net = Netlist.find_net nl "ab"; value = false }
  with
  | None -> Alcotest.fail "expected paths"
  | Some p ->
    let v = Separation.check ~margin:0.2 nl p in
    check "holds with slow env" true v.Separation.holds;
    check "positive slack" true (v.Separation.slack_ps > 0.0);
    (* With an extreme margin the race is no longer safe. *)
    let v2 = Separation.check ~margin:0.9 nl p in
    check "extreme margin violates" false v2.Separation.holds

let test_paths_missing_edge () =
  let nl, events = run_celement_sim () in
  check "absent edge gives None" true
    (Paths.derive events
       ~fast:{ Paths.net = Netlist.find_net nl "bc"; value = true }
       ~slow:{ Paths.net = Netlist.find_net nl "bc"; value = true }
     <> None);
  (* an edge that never fired *)
  let nl2 = Netlist.create () in
  let _a = Netlist.input nl2 "a" in
  check "empty trace" true (Paths.derive [] ~fast:{ Paths.net = 0; value = true }
                              ~slow:{ Paths.net = 0; value = false } = None)

let suite =
  [
    ( "conformance",
      [
        Alcotest.test_case "atomic c-element conforms" `Quick test_conformance_ok;
        Alcotest.test_case "decomposed c-element hazards" `Quick test_conformance_hazard;
        Alcotest.test_case "wrong circuit rejected" `Quick test_conformance_wrong_circuit;
        Alcotest.test_case "deadlock detected" `Quick test_conformance_deadlock;
        Alcotest.test_case "interface checks" `Quick test_conformance_interface_checks;
        Alcotest.test_case "net constraints" `Quick test_net_constraints_block;
      ] );
    ( "rt_verify",
      [
        Alcotest.test_case "fig5: five constraints" `Quick test_rt_verify_fig5;
        Alcotest.test_case "SI circuit" `Quick test_rt_verify_si_circuit;
        Alcotest.test_case "not verifiable" `Quick test_rt_verify_not_verifiable;
      ] );
    ( "paths",
      [
        Alcotest.test_case "common ancestor c+" `Quick test_paths_common_ancestor;
        Alcotest.test_case "separation verdict" `Quick test_separation_verdict;
        Alcotest.test_case "missing edges" `Quick test_paths_missing_edge;
      ] );
  ]
