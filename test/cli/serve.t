The serving daemon over stdio: one NDJSON request per line in, one
response per line out, in arrival order.  Responses are byte-stable, so
this session doubles as a wire-format regression test.

A scripted session: a check, a synthesis, a repeat of the first check
(which must come back from the content-addressed cache), a malformed
line, an unknown op, an unknown field, and a clean shutdown.

  $ cat > session.ndjson <<'EOF'
  > {"id":1,"op":"ping"}
  > {"id":2,"op":"check","spec":"celement"}
  > {"id":3,"op":"synth","spec":"celement","mode":"si"}
  > {"id":4,"op":"check","spec":"celement"}
  > this line is not JSON
  > {"id":6,"op":"teleport"}
  > {"id":7,"op":"check","spec":"celement","frobnicate":1}
  > {"id":8,"op":"check","spec":"nonesuch"}
  > {"id":9,"op":"stats"}
  > {"id":10,"op":"shutdown"}
  > EOF
The stats response reports wall-clock compute costs ("retained_ms" and
the per-shard "ms"), which are not byte-stable; the sed filter pins them
to 0 while leaving every deterministic field exact.

  $ rtsyn serve < session.ndjson | sed -E 's/"(retained_)?ms":[0-9]+/"\1ms":0/g'
  {"id":1,"op":"ping","ok":true,"result":{"pong":true}}
  {"id":2,"op":"check","ok":true,"cached":false,"engine":"explicit","key":"2075c40df35e59b7c7ced4c34bb4cca4","result":{"states":8,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":true,"csc_signals":[]}}
  {"id":3,"op":"synth","ok":true,"cached":false,"engine":"explicit","key":"05a703d6cb1752432e192717d0a097e5","result":{"states_full":8,"states_used":8,"insertions":[],"assumptions":0,"constraints":[],"signals":[{"name":"c","literals":6}],"gates":1,"netlist":"netlist: 3 nets, 1 gates, 12 transistors\n  c = sop[2,2,2]6(a, b, a, c, b, c) [out]\n  inputs: a b"}}
  {"id":4,"op":"check","ok":true,"cached":true,"engine":"explicit","key":"2075c40df35e59b7c7ced4c34bb4cca4","result":{"states":8,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":true,"csc_signals":[]}}
  {"id":null,"op":null,"ok":false,"error":{"kind":"parse_error","message":"request is not valid JSON (byte 0: expected true)"}}
  {"id":6,"op":null,"ok":false,"error":{"kind":"bad_request","message":"unknown op \"teleport\""}}
  {"id":7,"op":"check","ok":false,"error":{"kind":"bad_request","message":"unknown field \"frobnicate\" for op \"check\""}}
  {"id":8,"op":"check","ok":false,"error":{"kind":"bad_request","message":"\"nonesuch\" is neither a built-in specification nor spec text"}}
  {"id":9,"op":"stats","ok":true,"result":{"requests":5,"shed":0,"batching":false,"queue_capacity":64,"cache":{"hits":1,"misses":2,"stores":2,"evictions":0,"corrupt":0,"entries":2,"retained_bytes":383,"retained_ms":0,"shards":[{"shard":0,"entries":1,"bytes":131,"ms":0,"evictions":0},{"shard":5,"entries":1,"bytes":252,"ms":0,"evictions":0}],"hit_rate":0.333333}}}
  {"id":10,"op":"shutdown","ok":true,"result":{"stopping":true,"pending_flushed":0}}

The same stream again: the on-disk cache directory now serves the
results computed above, so every work request is a hit even in a fresh
process.

  $ rtsyn serve --cache-dir store < session.ndjson > first.out
  $ rtsyn serve --cache-dir store < session.ndjson > second.out
  $ grep -c '"cached":true' first.out
  1
  $ grep -c '"cached":true' second.out
  3

Batching with a tiny queue bound: the third request of the wave is shed
with a structured overloaded reply, and the session keeps serving.

  $ rtsyn serve --queue 2 <<'EOF'
  > {"id":1,"op":"batch"}
  > {"id":2,"op":"check","spec":"fifo"}
  > {"id":3,"op":"check","spec":"toggle"}
  > {"id":4,"op":"check","spec":"selector"}
  > {"id":5,"op":"flush"}
  > {"id":6,"op":"ping"}
  > EOF
  {"id":1,"op":"batch","ok":true,"result":{"batching":true}}
  {"id":2,"op":"check","ok":true,"cached":false,"engine":"explicit","key":"2bba25d3ffc9978b03a1fa2219c085a6","result":{"states":20,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":false,"csc_signals":["lo","ro"]}}
  {"id":3,"op":"check","ok":true,"cached":false,"engine":"explicit","key":"950b3baf78db4b5dc9ab9f5f9db76503","result":{"states":8,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":true,"csc_signals":[]}}
  {"id":4,"op":"check","ok":false,"error":{"kind":"overloaded","message":"work queue full (capacity 2)"}}
  {"id":5,"op":"flush","ok":true,"result":{"flushed":2,"shed":1}}
  {"id":6,"op":"ping","ok":true,"result":{"pong":true}}

Spec text is content-addressed by its canonical rendering: a whitespace
variant of the same specification maps to the same key and hits.

  $ rtsyn serve <<'EOF'
  > {"id":1,"op":"check","spec":".inputs a b\n.outputs c\n.graph\na+ c+\nb+ c+\nc+ a- b-\na- c-\nb- c-\nc- a+ b+\n.marking { <c-,a+> <c-,b+> }\n"}
  > {"id":2,"op":"check","spec":".inputs  a   b\n.outputs c\n\n.graph\na+ c+\nb+ c+\nc+ a- b-\na- c-\nb- c-\nc- a+ b+\n.marking { <c-,a+> <c-,b+> }\n# comment\n"}
  > EOF
  {"id":1,"op":"check","ok":true,"cached":false,"engine":"explicit","key":"2075c40df35e59b7c7ced4c34bb4cca4","result":{"states":8,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":true,"csc_signals":[]}}
  {"id":2,"op":"check","ok":true,"cached":true,"engine":"explicit","key":"2075c40df35e59b7c7ced4c34bb4cca4","result":{"states":8,"deadlock_free":true,"live_transitions":true,"output_persistent":true,"csc_satisfied":true,"csc_signals":[]}}
