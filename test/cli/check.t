Analyzing a user-written .g file:

  $ cat > buf.g <<'SPEC'
  > .model buf
  > .inputs a
  > .outputs b
  > .graph
  > a+ b+
  > b+ a-
  > a- b-
  > b- a+
  > .marking { <b-,a+> }
  > .end
  > SPEC

  $ rtsyn check buf.g
  signals: a(in) b(out)
  petri: 4 places, 4 transitions
    a+: {<b-,a+>} -> {<a+,b+>}
    b+: {<a+,b+>} -> {<b+,a->}
    a-: {<b+,a->} -> {<a-,b->}
    b-: {<a-,b->} -> {<b-,a+>}
    initial: <b-,a+>
  reachable states: 4
  deadlock-free: true
  all transitions live: true
  output-persistent: true
  CSC: satisfied
