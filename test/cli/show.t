Pretty-printing a built-in specification in .g syntax:

  $ rtsyn show toggle
  .model stg
  .inputs i
  .outputs o1 o2
  .graph
  i+ o1+
  o1+ i-
  i- o2+
  o2+ i+/2
  i+/2 o1-
  o1- i-/2
  i-/2 o2-
  o2- i+
  .marking { <o2-,i+> }
  .end

An argument that is neither a file nor a built-in is a usage error:

  $ rtsyn show no-such-spec
  rtsyn: SPEC argument: no-such-spec is neither an existing file nor a built-in
         specification (see `rtsyn list')
  Usage: rtsyn show [--dot] [OPTION]… SPEC
  Try 'rtsyn show --help' or 'rtsyn --help' for more information.
  [124]
