The flow artifact store: `synth --cache` persists per-stage artifacts
(encode, reach, covers, emit) under a directory, a second run replays
them, and `rtsyn cache` inspects or trims the directory.

Cold synthesis populates the store.  The synthesis report itself is
byte-stable, so no masking is needed here.

  $ rtsyn synth fifo --cache store > cold.out
  $ rtsyn cache stats store | sed -E 's/^bytes: [0-9]+/bytes: N/'
  entries: 4
  bytes: N
  corrupt removed: 0
    covers     1
    emit       1
    encode     1
    reach      1

Warm synthesis in a fresh process must be byte-identical to cold.

  $ rtsyn synth fifo --cache store > warm.out
  $ cmp cold.out warm.out

A different style only adds one emit artifact: the expensive stages
(encode, reach, covers) are shared.

  $ rtsyn synth fifo --style static --cache store > /dev/null
  $ rtsyn cache stats store | sed -E 's/^bytes: [0-9]+/bytes: N/'
  entries: 5
  bytes: N
  corrupt removed: 0
    covers     1
    emit       2
    encode     1
    reach      1

`ls` prints one line per entry: stage, key, bytes.  Keys are md5 hex
and sizes vary with the Marshal format, so both are masked.

  $ rtsyn cache ls store | sed -E 's/[0-9a-f]{32}/KEY/; s/[0-9]+$/N/' | sort
  covers     KEY N
  emit       KEY N
  emit       KEY N
  encode     KEY N
  reach      KEY N

A corrupted entry is detected, counted and removed by the next scan —
and never served.

  $ for f in store/*.art; do printf 'garbage' >> "$f"; break; done
  $ rtsyn cache stats store | grep corrupt
  corrupt removed: 1
  $ rtsyn cache stats store | grep corrupt
  corrupt removed: 0

`gc` trims oldest entries to a byte budget; --budget is required.

  $ rtsyn cache gc store
  rtsyn: cache gc requires --budget BYTES
  [1]
  $ rtsyn cache gc store --budget 1 | sed -E 's/[0-9]+ entries/N entries/'
  removed N entries, 0 bytes remain
  $ rtsyn cache stats store | head -1
  entries: 0

Errors are clean: a file or a missing path is not a store directory.

  $ rtsyn cache stats cold.out
  rtsyn: cold.out is not a directory
  [1]
