Every heavy subcommand accepts --trace (Chrome trace_event JSON) and
--summary (JSON metrics) sinks.  Span timings vary run to run, so these
tests check structure, not values:

  $ rtsyn synth fifo --trace trace.json --summary summary.json > /dev/null
  $ head -c 2 trace.json
  [
  $ grep -c '"name": "flow.synthesize"' trace.json
  1
  $ grep -c '"jobs"' summary.json
  1
  $ grep -c '"sg.builds"' summary.json
  1

--summary - prints a human-readable table to standard error:

  $ rtsyn check fifo --summary - > /dev/null 2> summary.txt
  $ grep -c 'observability summary' summary.txt
  1
  $ grep -c 'sg.build' summary.txt
  2

A summary sink that cannot be written fails cleanly after the command's
own output, with a non-zero exit and no partial file:

  $ rtsyn check fifo --summary /nonexistent-dir/out.json > /dev/null
  rtsyn: cannot write summary: /nonexistent-dir/out.json: No such file or directory
  [1]
  $ test -e /nonexistent-dir; echo $?
  1
