The explicit and symbolic engines compute identical verdicts:

  $ rtsyn check toggle --engine explicit | tail -5
  reachable states: 8
  deadlock-free: true
  all transitions live: true
  output-persistent: true
  CSC: satisfied
  $ rtsyn check toggle --engine symbolic | tail -6
  reachable states: 8
  deadlock-free: true
  all transitions live: true
  output-persistent: true
  CSC: satisfied
  symbolic: 8 state(s) in 2 level(s), 8 image op(s), peak 41 BDD node(s)

Auto selects symbolic past the structural concurrency threshold, so a
ring the explicit engine cannot enumerate still checks (the symbolic
stats line marks the engine that ran):

  $ rtsyn check ring11 | tail -7
  <a10-,a9+>
  reachable states: 1299078
  deadlock-free: true
  all transitions live: true
  output-persistent: true
  CSC conflicts on 11 signal(s): r0 r1 r2 r3 r4 r5 r6 r7 r8 r9 r10
  symbolic: 1299078 state(s) in 5 level(s), 141 image op(s), peak 1825 BDD node(s)

Forcing the explicit engine on the same ring fails with a pointer to
the symbolic one:

  $ rtsyn check ring11 --engine explicit 2>&1 >/dev/null
  rtsyn: state graph exceeds 200000 states; try --engine symbolic
  [1]

The ringN family is addressable by name beyond the built-in ring3:

  $ rtsyn check ring2 --engine symbolic | tail -6
  reachable states: 12
  deadlock-free: true
  all transitions live: true
  output-persistent: true
  CSC conflicts on 2 signal(s): r0 r1
  symbolic: 12 state(s) in 3 level(s), 16 image op(s), peak 80 BDD node(s)
