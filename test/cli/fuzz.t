A short differential fuzzing campaign must come out clean:

  $ rtsyn fuzz --cases 5 --seed 1 --quiet
  5 case(s): 5 passed, 0 skipped, 0 failed

Sharding the campaign across worker domains must not change the verdict:

  $ rtsyn fuzz --cases 5 --seed 1 --quiet --jobs 2
  5 case(s): 5 passed, 0 skipped, 0 failed

A non-positive job count is a usage error:

  $ rtsyn fuzz --cases 5 --jobs 0
  rtsyn: option '--jobs': job count "0" must be a positive integer
  Usage: rtsyn fuzz [OPTION]…
  Try 'rtsyn fuzz --help' or 'rtsyn --help' for more information.
  [124]

A malformed specification file is reported, not a backtrace:

  $ echo "garbage line" > broken.g
  $ rtsyn check broken.g
  rtsyn: parse error on line 1: unexpected line outside .graph
  [1]

A bad timing-assumption argument is a usage error:

  $ rtsyn synth fifo --assume "nonsense"
  rtsyn: option '--assume': assumption "nonsense" must look like ri-<li+
  Usage: rtsyn synth [OPTION]… SPEC
  Try 'rtsyn synth --help' or 'rtsyn --help' for more information.
  [124]
