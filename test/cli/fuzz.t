A short differential fuzzing campaign must come out clean:

  $ rtsyn fuzz --cases 5 --seed 1 --quiet
  5 case(s): 5 passed, 0 skipped, 0 failed

A malformed specification file is reported, not a backtrace:

  $ echo "garbage line" > broken.g
  $ rtsyn check broken.g
  rtsyn: parse error on line 1: unexpected line outside .graph
  [1]

A bad timing-assumption argument is a usage error:

  $ rtsyn synth fifo --assume "nonsense"
  rtsyn: option '--assume': assumption "nonsense" must look like ri-<li+
  Usage: rtsyn synth [OPTION]… SPEC
  Try 'rtsyn synth --help' or 'rtsyn --help' for more information.
  [124]
