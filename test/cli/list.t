The built-in specification catalogue:

  $ rtsyn list
  fifo       4 signals, 9 transitions
  fifo_x     5 signals, 10 transitions
  celement   3 signals, 6 transitions
  pipeline   4 signals, 8 transitions
  selector   3 signals, 8 transitions
  toggle     3 signals, 8 transitions
  call       6 signals, 16 transitions
  ring3      6 signals, 12 transitions
