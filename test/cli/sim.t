The timed STG simulation can dump its trace as a VCD waveform:

  $ rtsyn sim fifo --steps 8 --vcd fifo.vcd
      2.00  li+
      3.00  lo+
      4.00  ro+
      5.00  li-
      6.00  ri+
      6.00  lo-
      7.00  ro-
      8.00  li+

  $ head -9 fifo.vcd
  $date (none) $end
  $version rtcad_obs $end
  $timescale 1 fs $end
  $scope module top $end
  $var wire 1 ! li $end
  $var wire 1 " ri $end
  $var wire 1 # lo $end
  $var wire 1 $ ro $end
  $upscope $end

The Table-2 FIFO controllers run through the measurement harness; the
simulator is serial and femtosecond-exact, so the measurement and the
waveform are reproducible at any job count:

  $ rtsyn sim --circuit rt --cycles 12 --vcd rt.vcd
  RT: 6 cycles: worst 1223 ps, avg 1108 ps, 33.0 pJ/cycle

  $ grep -c '^\$var' rt.vcd
  5

A SPEC argument and --circuit are mutually exclusive, and one of them is
required:

  $ rtsyn sim fifo --circuit rt
  rtsyn: SPEC and --circuit are mutually exclusive
  [1]

  $ rtsyn sim
  rtsyn: a SPEC argument or --circuit is required
  [1]

An unwritable VCD path is a clean failure, leaving no partial file:

  $ rtsyn sim fifo --steps 4 --vcd /nonexistent-dir/out.vcd > /dev/null
  rtsyn: cannot write VCD: /nonexistent-dir/out.vcd: No such file or directory
  [1]
