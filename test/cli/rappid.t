The streaming RAPPID front end.  Everything on stdout is a pure function
of (seed, profile, instructions, shards) — the host-side throughput and
heap lines go to stderr, which is dropped here.

  $ rtsyn rappid --instrs 20000 --seed 7 2>/dev/null
  instructions: 20000 over 1 decoder shard(s) (4078 lines)
  throughput: 3.05 instr/ns aggregate (slowest shard sets completion)
  latency: p50 3077 ps, p95 4808 ps, p99 4962 ps (1-2-5 histogram estimate)
  latency: avg 2500.8 ps, worst 4950 ps
  cycles: tag 3.05 GHz, decode 0.92 GHz, steer 0.70 GHz
  energy: 17.52 pJ/instr

Sharding splits the virtual stream into contiguous slices but merges the
counts, energies and latency histograms in shard order, so the report is
byte-identical at any job count:

  $ RTCAD_JOBS=1 rtsyn rappid --instrs 100000 --shards 4 --seed 7 2>/dev/null > jobs1.out
  $ RTCAD_JOBS=2 rtsyn rappid --instrs 100000 --shards 4 --seed 7 2>/dev/null > jobs2.out
  $ cmp jobs1.out jobs2.out

…and the chunk size is a memory knob only, never a result knob:

  $ rtsyn rappid --instrs 100000 --shards 4 --seed 7 --chunk 311 2>/dev/null > chunked.out
  $ cmp jobs1.out chunked.out

An empty stream is not an error — it reports zeroes and exits cleanly:

  $ rtsyn rappid --instrs 0 2>/dev/null
  instructions: 0 over 1 decoder shard(s) (0 lines)
  throughput: 0.00 instr/ns aggregate (slowest shard sets completion)
  latency: p50 0 ps, p95 0 ps, p99 0 ps (1-2-5 histogram estimate)
  latency: avg 0.0 ps, worst 0 ps
  cycles: tag 0.00 GHz, decode 0.00 GHz, steer 0.00 GHz
  energy: 0.00 pJ/instr

A negative count is rejected:

  $ rtsyn rappid --instrs=-5
  rtsyn: --instrs must be non-negative
  [1]

The profile flag only accepts the built-in mixes:

  $ rtsyn rappid --profile nosuch 2>&1 | head -1
  rtsyn: option '--profile': invalid value 'nosuch', expected one of 'typical',

An absurdly small heap budget trips the constant-memory guard:

  $ rtsyn rappid --instrs 1000 --heap-budget-words 1 2>/dev/null
  instructions: 1000 over 1 decoder shard(s) (205 lines)
  throughput: 3.07 instr/ns aggregate (slowest shard sets completion)
  latency: p50 3034 ps, p95 4803 ps, p99 4961 ps (1-2-5 histogram estimate)
  latency: avg 2457.3 ps, worst 4230 ps
  cycles: tag 3.07 GHz, decode 0.93 GHz, steer 0.70 GHz
  energy: 17.58 pJ/instr
  [1]
