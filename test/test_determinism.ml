(* Same seed, same stream: every stochastic component must be exactly
   reproducible, or fuzzing seeds and benchmark workloads stop being
   reproduction recipes. *)

module Rng = Rtcad_util.Rng
module Workload = Rtcad_rappid.Workload
module Timed_sim = Rtcad_rt.Timed_sim
module Transform = Rtcad_stg.Transform
module Library = Rtcad_stg.Library
module Gen = Rtcad_check.Gen

let check = Alcotest.(check bool)

let test_rng_stream () =
  let draw seed =
    let rng = Rng.create seed in
    List.init 1_000 (fun i ->
        if i mod 3 = 0 then Rng.int rng 1_000_000
        else if i mod 3 = 1 then Bool.to_int (Rng.bool rng)
        else int_of_float (Rng.float rng 1e6))
  in
  check "same seed, same stream" true (draw 42 = draw 42);
  check "different seed, different stream" true (draw 42 <> draw 43)

let test_rng_split_independent () =
  let rng = Rng.create 5 in
  let child = Rng.split rng in
  let a = List.init 100 (fun _ -> Rng.int rng 1_000) in
  let b = List.init 100 (fun _ -> Rng.int child 1_000) in
  check "parent and child streams differ" true (a <> b)

let test_workload_reproducible () =
  List.iter
    (fun profile ->
      let s1 = Workload.generate ~seed:7 profile ~instructions:500 in
      let s2 = Workload.generate ~seed:7 profile ~instructions:500 in
      check (profile.Workload.name ^ " lengths") true
        (s1.Workload.lengths = s2.Workload.lengths);
      Alcotest.(check int)
        (profile.Workload.name ^ " bytes")
        s1.Workload.total_bytes s2.Workload.total_bytes)
    Workload.all_profiles

let test_timed_sim_reproducible () =
  let stg = Transform.contract_dummies ~strict:false (Library.fifo ()) in
  let run () = Timed_sim.run ~jitter:0.3 ~seed:5 ~steps:60 stg in
  check "same seed, same trace" true (run () = run ());
  let other = Timed_sim.run ~jitter:0.3 ~seed:6 ~steps:60 stg in
  check "jittered run actually depends on the seed" true (run () <> other)

let test_generators_reproducible () =
  let plans seed =
    let rng = Rng.create seed in
    List.init 10 (fun _ ->
        Format.asprintf "%a" Gen.pp_plan (Gen.gen_plan rng ~max_places:12))
  in
  check "same seed, same plans" true (plans 9 = plans 9);
  let netlists seed =
    let rng = Rng.create seed in
    List.init 5 (fun _ ->
        let nl = Gen.gen_netlist rng in
        let stim = Gen.gen_stimuli rng nl in
        Format.asprintf "%a|%d" Rtcad_netlist.Netlist.pp nl (List.length stim))
  in
  check "same seed, same netlists and stimuli" true (netlists 9 = netlists 9)

let suite =
  [
    ( "determinism",
      [
        Alcotest.test_case "splitmix stream" `Quick test_rng_stream;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "workload generation" `Quick test_workload_reproducible;
        Alcotest.test_case "timed simulation" `Quick test_timed_sim_reproducible;
        Alcotest.test_case "fuzz generators" `Quick test_generators_reproducible;
      ] );
  ]
