(* Regression tests for stuck-at fault simulation: Table 2's testability
   column must not silently drift, and oscillating faulty machines must
   be reported as such rather than looping forever. *)

module Netlist = Rtcad_netlist.Netlist
module Gate = Rtcad_netlist.Gate
module Faults = Rtcad_netlist.Faults
module Table2 = Rtcad_core.Table2
module Fifo_impls = Rtcad_core.Fifo_impls

let check = Alcotest.(check bool)

(* All four FIFO implementations are fully testable by the handshake
   stimulus (the paper's Table 2 reports 100% for the RT styles; our
   reproductions reach it for every row).  A drop here means either the
   fault simulator or the simulation kernel changed behaviour. *)
let test_table2_coverage_regression () =
  List.iter
    (fun v ->
      let row = Table2.measure ~cycles:20 v in
      Alcotest.(check (float 0.0001))
        (row.Table2.name ^ " stuck-at coverage")
        100.0 row.Table2.testability_pct)
    (Fifo_impls.all ())

(* A deliberately oscillating circuit: a ring of one inverter.  Over a
   horizon long enough to exhaust the simulator's event budget, the
   observable-trace helper must report [None] (oscillation), not hang or
   raise. *)
let test_oscillation_reported () =
  let nl = Netlist.create () in
  let x = Netlist.forward nl "x" in
  Netlist.set_driver nl x (Gate.make Gate.Not ~fanin:1) [ (x, false) ];
  Netlist.mark_output nl x;
  match Faults.observable_trace ~stimulus:(fun _ -> ()) ~horizon:1.0e9 nl with
  | None -> ()
  | Some trace ->
    Alcotest.failf "expected oscillation, got a trace of %d events"
      (List.length trace)

(* Sanity on the fault universe: every net contributes exactly two
   stuck-at faults. *)
let test_fault_universe () =
  let v = List.hd (Fifo_impls.all ()) in
  let nl = v.Fifo_impls.netlist in
  Alcotest.(check int)
    "two faults per net"
    (2 * Netlist.num_nets nl)
    (List.length (Faults.all_faults nl));
  check "coverage within bounds" true
    (let stimulus sim = Rtcad_core.Harness.fourphase_stimulus ~cycles:12 sim in
     let r = Faults.coverage ~stimulus ~horizon:120_000.0 nl in
     r.Faults.coverage >= 0.0 && r.Faults.coverage <= 100.0
     && r.Faults.detected + List.length r.Faults.undetected = r.Faults.total)

let suite =
  [
    ( "faults_regression",
      [
        Alcotest.test_case "Table 2 stuck-at coverage stays at 100%" `Quick
          test_table2_coverage_regression;
        Alcotest.test_case "oscillating circuit yields None" `Quick
          test_oscillation_reported;
        Alcotest.test_case "fault universe and report bounds" `Quick
          test_fault_universe;
      ] );
  ]
