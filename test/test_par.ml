(* Parallel/serial equivalence: every parallel kernel must produce
   bit-identical results whatever the job count, or the determinism
   guarantees (and the differential oracles built on them) are void.
   [par_threshold:2] forces the parallel state-graph machinery even on
   the small library graphs, so these tests exercise the sharded table,
   the level-synchronous expansion and the canonical renumbering for
   real — not just the serial warm-up. *)

module Bitset = Rtcad_util.Bitset
module Par = Rtcad_par.Par
module Stg = Rtcad_stg.Stg
module Library = Rtcad_stg.Library
module Transform = Rtcad_stg.Transform
module Sg = Rtcad_sg.Sg
module Csc = Rtcad_sg.Csc
module Flow = Rtcad_core.Flow
module Fuzz = Rtcad_check.Fuzz

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with the job count forced to [n], restoring the previous
   effective count afterwards so later suites see their configured
   parallelism. *)
let with_jobs n f =
  let prev = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

let job_counts = [ 1; 2; 4 ]

(* --- the pool itself --- *)

let test_parallel_for_covers () =
  with_jobs 4 (fun () ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Each index is claimed by exactly one chunk, so unsynchronized
         increments of distinct cells are safe. *)
      Par.parallel_for n (fun i -> hits.(i) <- hits.(i) + 1);
      check "every index exactly once" true (Array.for_all (( = ) 1) hits))

let test_map_array_order () =
  with_jobs 4 (fun () ->
      let a = Array.init 500 (fun i -> i) in
      check "matches Array.map" true
        (Par.map_array (fun x -> (x * 7) mod 13) a = Array.map (fun x -> (x * 7) mod 13) a))

let test_map_array_exception () =
  (* The lowest-index exception must escape, matching Array.map's
     left-to-right semantics. *)
  with_jobs 4 (fun () ->
      let a = Array.init 100 (fun i -> i) in
      check "lowest-index failure wins" true
        (try
           ignore
             (Par.map_array ~chunk:1 (fun x -> if x >= 30 then failwith (string_of_int x) else x) a);
           false
         with Failure s -> s = "30"))

let test_set_jobs_rejects () =
  let rejects n =
    try
      Par.set_jobs n;
      false
    with Invalid_argument _ -> true
  in
  check "0 rejected" true (rejects 0);
  check "negative rejected" true (rejects (-3))

let test_nested_runs_serial () =
  with_jobs 4 (fun () ->
      check "not in region outside" false (Par.in_parallel_region ());
      let inner_counts = Par.map_list (fun _ ->
          (* Inside a region every participant must observe the busy
             flag and refuse to fan out again. *)
          let nested = ref (-1) in
          Par.run_workers (fun ~index:_ ~count -> nested := count);
          (Par.in_parallel_region (), !nested))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      check "all nested regions serial" true
        (List.for_all (fun (busy, count) -> busy && count = 1) inner_counts))

(* --- state graphs --- *)

let sg_equal a b =
  Sg.num_states a = Sg.num_states b
  && Sg.initial a = Sg.initial b
  && List.for_all
       (fun s ->
         Bitset.equal (Sg.marking a s) (Sg.marking b s)
         && Bitset.equal (Sg.code a s) (Sg.code b s)
         && Sg.succs a s = Sg.succs b s
         && Sg.preds a s = Sg.preds b s)
       (List.init (Sg.num_states a) Fun.id)

let specs () =
  ("ring5", Library.ring 5) :: ("ring7", Library.ring 7) :: Library.all_named ()

let test_sg_equivalence () =
  List.iter
    (fun (name, stg) ->
      let reference = with_jobs 1 (fun () -> Sg.build stg) in
      List.iter
        (fun jobs ->
          let forced =
            with_jobs jobs (fun () -> Sg.build ~par_threshold:2 stg)
          in
          check (Printf.sprintf "%s identical (jobs=%d, forced)" name jobs) true
            (sg_equal reference forced);
          let default = with_jobs jobs (fun () -> Sg.build stg) in
          check (Printf.sprintf "%s identical (jobs=%d)" name jobs) true
            (sg_equal reference default))
        job_counts)
    (specs ())

let test_sg_failures_deterministic () =
  (* a+ twice in a row: the serial failure message must survive the
     parallel path's serial-rerun fallback. *)
  let b = Stg.Build.create () in
  Stg.Build.signal b Stg.Input "a";
  Stg.Build.connect b "a+" "a+/2";
  Stg.Build.connect b "a+/2" "a+";
  Stg.Build.mark_between b "a+/2" "a+";
  let stg = Stg.Build.finish b in
  let failure jobs =
    with_jobs jobs (fun () ->
        try
          ignore (Sg.build ~par_threshold:2 stg);
          None
        with Sg.Inconsistent msg -> Some msg)
  in
  let reference = failure 1 in
  check "failure raised" true (reference <> None);
  List.iter
    (fun jobs -> check (Printf.sprintf "same failure at jobs=%d" jobs) true (failure jobs = reference))
    job_counts;
  let too_large jobs =
    with_jobs jobs (fun () ->
        try
          ignore (Sg.build ~max_states:40 ~par_threshold:2 (Library.ring 5));
          None
        with Sg.Too_large n -> Some n)
  in
  check "bound failure raised" true (too_large 1 = Some 40);
  List.iter
    (fun jobs ->
      check (Printf.sprintf "same bound failure at jobs=%d" jobs) true (too_large jobs = Some 40))
    job_counts

(* --- CSC resolution --- *)

let test_csc_equivalence () =
  let stg = Transform.contract_dummies (Library.fifo ()) in
  let resolve jobs =
    with_jobs jobs (fun () ->
        match Csc.resolve ~mode:Csc.Speed_independent stg with
        | None -> None
        | Some (_, ins) -> Some ins)
  in
  let reference = resolve 1 in
  check "an insertion was chosen" true (reference <> None);
  List.iter
    (fun jobs ->
      check (Printf.sprintf "same insertion at jobs=%d" jobs) true (resolve jobs = reference))
    job_counts

(* --- the synthesis flow --- *)

let test_flow_equivalence () =
  List.iter
    (fun (name, stg) ->
      let report jobs =
        with_jobs jobs (fun () -> Format.asprintf "%a" Flow.pp_report (Flow.synthesize stg))
      in
      let reference = report 1 in
      List.iter
        (fun jobs ->
          check (Printf.sprintf "%s netlist identical at jobs=%d" name jobs) true
            (report jobs = reference))
        job_counts)
    (Library.all_named ())

(* --- fuzzing --- *)

let test_fuzz_equivalence () =
  let config = { Fuzz.default with seed = 3; cases = 30 } in
  let run jobs = with_jobs jobs (fun () -> Fuzz.run config) in
  let reference = run 1 in
  check_int "campaign ran all cases" 30 reference.Fuzz.ran;
  List.iter
    (fun jobs ->
      check (Printf.sprintf "same verdict at jobs=%d" jobs) true (run jobs = reference))
    job_counts

(* An emulated kernel bug (dropped state in the fast summary) must be
   caught on the same case, shrunk to the same minimal plan and rendered
   to the same [.g] text at every job count — the serial campaign stops
   at its first failure, so the parallel one must report the lowest
   failing case, not whichever its scheduler hit first. *)
let broken_fast_sg stg =
  match Rtcad_check.Oracle.fast_sg_result stg with
  | Rtcad_check.Ref_sg.Summary s ->
    Rtcad_check.Ref_sg.Summary
      {
        s with
        Rtcad_check.Ref_sg.num_states = s.Rtcad_check.Ref_sg.num_states - 1;
        codes = (match s.Rtcad_check.Ref_sg.codes with [] -> [] | _ :: rest -> rest);
      }
  | r -> r

let test_fuzz_failure_equivalence () =
  let config = { Fuzz.default with seed = 1; cases = 50 } in
  let run jobs = with_jobs jobs (fun () -> Fuzz.run ~fast_sg:broken_fast_sg config) in
  let reference = run 1 in
  check "emulated bug caught" true (reference.Fuzz.failure <> None);
  List.iter
    (fun jobs ->
      check (Printf.sprintf "same witness at jobs=%d" jobs) true (run jobs = reference))
    job_counts

(* --- observability under parallelism --- *)

module Obs = Rtcad_obs.Obs

(* Run [work] with recording enabled at job count [n] and return the
   merged snapshot's metrics. *)
let metrics_at_jobs n work =
  with_jobs n (fun () ->
      Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Obs.set_enabled false)
        (fun () ->
          work ();
          (Obs.snapshot ()).Obs.metrics))

let test_obs_merge_deterministic () =
  (* Synthetic fan-out: each index contributes known counter and
     histogram increments from whichever domain claims it.  The merged
     totals must be the closed-form sums at every job count — per-worker
     stores merged in index order, counters and histograms summing. *)
  let work () =
    Par.parallel_for ~chunk:1 64 (fun i ->
        Obs.incr "merge.count";
        Obs.incr ~by:i "merge.weighted";
        Obs.observe "merge.hist" (float_of_int (i mod 7)))
  in
  let expect =
    [ ("merge.count", 64); ("merge.weighted", 64 * 63 / 2) ]
  in
  List.iter
    (fun n ->
      let ms = metrics_at_jobs n work in
      List.iter
        (fun (name, total) ->
          check
            (Printf.sprintf "%s sums to %d at jobs %d" name total n)
            true
            (List.assoc name ms = Obs.Count total))
        expect;
      match List.assoc "merge.hist" ms with
      | Obs.Hist_v { count = 64; _ } -> ()
      | _ -> Alcotest.fail "histogram count must be 64 at any job count")
    job_counts

let test_obs_snapshots_equal_across_jobs () =
  (* End to end: instrumented kernels (Sg.build counters, fuzz counters)
     must merge to identical metric lists at jobs 1, 2 and 4.  Gauges and
     histograms participate; only wall-clock span durations may differ,
     and those are not in [metrics]. *)
  let work () =
    let stg = Transform.contract_dummies (Library.fifo ()) in
    ignore (Sg.build ~par_threshold:2 stg);
    ignore
      (Fuzz.run ~log:ignore { Fuzz.default with Fuzz.cases = 16; seed = 5 })
  in
  let deterministic ms =
    (* Throughput gauges are wall-clock-derived; everything else must be
       bit-identical across job counts. *)
    List.filter (fun (_, v) -> match v with Obs.Gauge_v _ -> false | _ -> true) ms
  in
  match List.map (fun n -> deterministic (metrics_at_jobs n work)) job_counts with
  | [] -> assert false
  | reference :: rest ->
    check "metrics exist" true (reference <> []);
    List.iteri
      (fun i ms ->
        check
          (Printf.sprintf "metrics at jobs %d match jobs 1" (List.nth job_counts (i + 1)))
          true (ms = reference))
      rest

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "parallel_for covers every index" `Quick test_parallel_for_covers;
        Alcotest.test_case "map_array preserves order" `Quick test_map_array_order;
        Alcotest.test_case "map_array re-raises lowest index" `Quick test_map_array_exception;
        Alcotest.test_case "set_jobs rejects non-positive" `Quick test_set_jobs_rejects;
        Alcotest.test_case "nested regions run serial" `Quick test_nested_runs_serial;
        Alcotest.test_case "sg builds are jobs-invariant" `Quick test_sg_equivalence;
        Alcotest.test_case "sg failures are jobs-invariant" `Quick test_sg_failures_deterministic;
        Alcotest.test_case "csc choice is jobs-invariant" `Quick test_csc_equivalence;
        Alcotest.test_case "synthesis flow is jobs-invariant" `Quick test_flow_equivalence;
        Alcotest.test_case "fuzz verdicts are jobs-invariant" `Quick test_fuzz_equivalence;
        Alcotest.test_case "fuzz failure witness is jobs-invariant" `Quick
          test_fuzz_failure_equivalence;
        Alcotest.test_case "obs merge is deterministic" `Quick
          test_obs_merge_deterministic;
        Alcotest.test_case "obs snapshots are jobs-invariant" `Quick
          test_obs_snapshots_equal_across_jobs;
      ] );
  ]
