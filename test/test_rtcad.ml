let () =
  Alcotest.run "rtcad"
    (Test_util.suite @ Test_bitset.suite @ Test_bdd.suite @ Test_stg.suite
   @ Test_sg.suite @ Test_symbolic.suite @ Test_rt.suite @ Test_synth.suite @ Test_netlist.suite
   @ Test_verify.suite @ Test_rappid.suite @ Test_flow.suite @ Test_hls.suite
   @ Test_structure.suite @ Test_bm.suite @ Test_check.suite @ Test_incremental.suite
   @ Test_faults.suite
   @ Test_determinism.suite @ Test_par.suite @ Test_obs.suite @ Test_serve.suite
   @ Test_golden.suite)
