(* Tests for the gate library, netlists, the event-driven simulator and
   fault simulation. *)

module Gate = Rtcad_netlist.Gate
module Netlist = Rtcad_netlist.Netlist
module Sim = Rtcad_netlist.Sim
module Faults = Rtcad_netlist.Faults

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Gate evaluation. *)

let test_gate_eval_basic () =
  let and2 = Gate.make Gate.And ~fanin:2 in
  check "and tt" true (Gate.eval and2 ~current:false [ true; true ]);
  check "and tf" false (Gate.eval and2 ~current:false [ true; false ]);
  let nor3 = Gate.make Gate.Nor ~fanin:3 in
  check "nor fff" true (Gate.eval nor3 ~current:false [ false; false; false ]);
  check "nor t.." false (Gate.eval nor3 ~current:false [ true; false; false ]);
  let xor = Gate.make Gate.Xor ~fanin:2 in
  check "xor" true (Gate.eval xor ~current:false [ true; false ])

let test_gate_eval_state () =
  let c2 = Gate.make Gate.Celem ~fanin:2 in
  check "c rises" true (Gate.eval c2 ~current:false [ true; true ]);
  check "c holds high" true (Gate.eval c2 ~current:true [ true; false ]);
  check "c holds low" false (Gate.eval c2 ~current:false [ false; true ]);
  check "c falls" false (Gate.eval c2 ~current:true [ false; false ]);
  let sr = Gate.make Gate.Set_reset ~fanin:2 in
  check "set" true (Gate.eval sr ~current:false [ true; false ]);
  check "set dominant" true (Gate.eval sr ~current:false [ true; true ]);
  check "reset" false (Gate.eval sr ~current:true [ false; true ]);
  check "hold" true (Gate.eval sr ~current:true [ false; false ])

let test_gate_eval_sop () =
  (* f = x0 x1 + x2 *)
  let g = Gate.make (Gate.Sop [ 2; 1 ]) ~fanin:3 in
  check "cube 1" true (Gate.eval g ~current:false [ true; true; false ]);
  check "cube 2" true (Gate.eval g ~current:false [ false; false; true ]);
  check "neither" false (Gate.eval g ~current:false [ true; false; false ]);
  (* gC: set = s0 s1, reset = r0 *)
  let gc = Gate.make (Gate.Sop_sr { set_cubes = [ 2 ]; reset_cubes = [ 1 ] }) ~fanin:3 in
  check "gc sets" true (Gate.eval gc ~current:false [ true; true; false ]);
  check "gc holds" true (Gate.eval gc ~current:true [ false; true; false ]);
  check "gc resets" false (Gate.eval gc ~current:true [ false; false; true ])

let test_gate_validation () =
  check "bad fanin" true
    (try
       ignore (Gate.make Gate.Not ~fanin:2);
       false
     with Invalid_argument _ -> true);
  check "bad sop shape" true
    (try
       ignore (Gate.make (Gate.Sop [ 2; 2 ]) ~fanin:3);
       false
     with Invalid_argument _ -> true);
  check "domino c-element rejected" true
    (try
       ignore (Gate.make ~style:(Gate.Domino { footed = true }) Gate.Celem ~fanin:2);
       false
     with Invalid_argument _ -> true)

let test_gate_costs () =
  let static4 = Gate.make (Gate.Sop [ 4 ]) ~fanin:4 in
  let domino4 = Gate.make ~style:(Gate.Domino { footed = true }) (Gate.Sop [ 4 ]) ~fanin:4 in
  let unfooted4 =
    Gate.make ~style:(Gate.Domino { footed = false }) (Gate.Sop [ 4 ]) ~fanin:4
  in
  check_int "static 2/literal" 8 (Gate.transistors static4);
  check "domino cheaper than static" true
    (Gate.transistors domino4 <= Gate.transistors static4 + 2);
  check "unfooted saves the foot" true
    (Gate.transistors unfooted4 = Gate.transistors domino4 - 1);
  check "domino faster than static" true (Gate.delay_ps domino4 < Gate.delay_ps static4);
  check "energy grows with size" true
    (Gate.energy_fj static4 > Gate.energy_fj (Gate.make Gate.Not ~fanin:1))

(* Netlist structure. *)

let build_and_or () =
  (* f = (a & b) | c, with c read negated *)
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let c = Netlist.input nl "c" in
  let ab = Netlist.add_gate nl (Gate.make Gate.And ~fanin:2) [ (a, false); (b, false) ] "ab" in
  let f = Netlist.add_gate nl (Gate.make Gate.Or ~fanin:2) [ (ab, false); (c, true) ] "f" in
  Netlist.mark_output nl f;
  (* the internal AND is observable too (a test point), so that stuck-at
     faults that only shift WHEN the output toggles are still caught by
     the delay-insensitive trace comparison *)
  Netlist.mark_output nl ab;
  nl

let test_netlist_structure () =
  let nl = build_and_or () in
  check_int "nets" 5 (Netlist.num_nets nl);
  check_int "gates" 2 (Netlist.gate_count nl);
  check_int "inputs" 3 (List.length (Netlist.inputs nl));
  check_int "outputs" 2 (List.length (Netlist.outputs nl));
  let f = Netlist.find_net nl "f" in
  check "driver arity" true
    (match Netlist.driver nl f with Some (_, ins) -> List.length ins = 2 | None -> false);
  let a = Netlist.find_net nl "a" in
  Alcotest.(check (list int)) "fanout of a" [ Netlist.find_net nl "ab" ] (Netlist.fanout nl a)

let test_netlist_errors () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  check "duplicate name" true
    (try
       ignore (Netlist.input nl "a");
       false
     with Invalid_argument _ -> true);
  check "driving an input" true
    (try
       Netlist.set_driver nl a (Gate.make Gate.Not ~fanin:1) [ (a, false) ];
       false
     with Invalid_argument _ -> true);
  let fwd = Netlist.forward nl "w" in
  Netlist.set_driver nl fwd (Gate.make Gate.Not ~fanin:1) [ (a, false) ];
  check "double drive" true
    (try
       Netlist.set_driver nl fwd (Gate.make Gate.Not ~fanin:1) [ (a, false) ];
       false
     with Invalid_argument _ -> true)

let test_copy () =
  let nl = build_and_or () in
  Netlist.set_initial nl (Netlist.find_net nl "c") true;
  Netlist.settle_initial nl;
  let nl2 = Netlist.copy nl in
  check_int "same nets" (Netlist.num_nets nl) (Netlist.num_nets nl2);
  check_int "same gates" (Netlist.gate_count nl) (Netlist.gate_count nl2);
  check_int "same transistors" (Netlist.transistors nl) (Netlist.transistors nl2);
  check "same outputs" true (Netlist.outputs nl = Netlist.outputs nl2);
  check "initial values preserved" true
    (List.for_all
       (fun n -> Netlist.initial_value nl n = Netlist.initial_value nl2 n)
       (List.init (Netlist.num_nets nl) Fun.id));
  (* extending the copy leaves the original alone *)
  let tap =
    Netlist.add_gate nl2 (Gate.make Gate.Not ~fanin:1)
      [ (Netlist.find_net nl2 "ab", false) ] "tap"
  in
  Netlist.mark_output nl2 tap;
  check "original unchanged" true
    (Netlist.num_nets nl2 = Netlist.num_nets nl + 1)

let test_settle_initial () =
  let nl = build_and_or () in
  Netlist.set_initial nl (Netlist.find_net nl "c") false;
  Netlist.settle_initial nl;
  (* f = ab | !c = 0 | 1 = 1 *)
  check "f settles high" true (Netlist.initial_value nl (Netlist.find_net nl "f"))

(* Simulation. *)

let test_sim_propagation () =
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let sim = Sim.create nl in
  Sim.settle sim ();
  let f = Netlist.find_net nl "f" in
  check "initially 1 (c=0 negated)" true (Sim.value sim f);
  Sim.drive sim (Netlist.find_net nl "c") true ~after:10.0;
  Sim.run sim ~until:1000.0;
  check "f falls after c+" false (Sim.value sim f);
  Sim.drive sim (Netlist.find_net nl "a") true ~after:10.0;
  Sim.drive sim (Netlist.find_net nl "b") true ~after:10.0;
  Sim.run sim ~until:2000.0;
  check "f rises via ab" true (Sim.value sim f);
  check "time advanced" true (Sim.time sim >= 2000.0)

let test_sim_glitch_cancel () =
  (* A pulse shorter than the gate delay is swallowed (inertial). *)
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let buf = Netlist.add_gate nl (Gate.make Gate.Buf ~fanin:1) [ (a, false) ] "y" in
  Netlist.mark_output nl buf;
  let sim = Sim.create nl in
  Sim.drive sim a true ~after:10.0;
  Sim.drive sim a false ~after:20.0;
  (* Buf delay is 70ps: at 20ps the re-evaluation cancels the pending rise. *)
  Sim.run sim ~until:500.0;
  check_int "no output transitions" 0 (Sim.transition_count sim buf);
  check "glitch counted" true (Sim.glitches sim >= 1)

let test_sim_oscillation () =
  (* A ring oscillator must trip the event budget. *)
  let nl = Netlist.create () in
  let y = Netlist.forward nl "y" in
  Netlist.set_driver nl y (Gate.make Gate.Not ~fanin:1) [ (y, false) ];
  let sim = Sim.create nl in
  check "oscillation detected" true
    (try
       Sim.run ~max_events:1000 sim ~until:1e9;
       false
     with Sim.Oscillation _ -> true)

let test_sim_forced () =
  let nl = build_and_or () in
  let f = Netlist.find_net nl "f" in
  let sim = Sim.create ~forced:[ (f, true) ] nl in
  Sim.settle sim ();
  Sim.drive sim (Netlist.find_net nl "c") true ~after:10.0;
  Sim.run sim ~until:1000.0;
  check "forced net immutable" true (Sim.value sim f)

let test_sim_energy_and_events () =
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let sim = Sim.create nl in
  Sim.settle sim ();
  let e0 = Sim.energy_pj sim in
  Sim.drive sim (Netlist.find_net nl "a") true ~after:5.0;
  Sim.drive sim (Netlist.find_net nl "b") true ~after:5.0;
  Sim.run sim ~until:1000.0;
  check "energy accumulated" true (Sim.energy_pj sim > e0);
  let events = Sim.events sim in
  check "events recorded" true (List.length events >= 3);
  (* gate events carry causes; the cause ids refer to earlier events *)
  check "causal ids sane" true
    (List.for_all
       (fun e ->
         match e.Sim.cause with
         | None -> true
         | Some id -> List.exists (fun e' -> e'.Sim.id = id) events)
       events)

let test_sim_callbacks () =
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let sim = Sim.create nl in
  Sim.settle sim ();
  let seen = ref [] in
  Sim.on_change sim (Netlist.find_net nl "f") (fun _ v -> seen := v :: !seen);
  Sim.drive sim (Netlist.find_net nl "c") true ~after:5.0;
  Sim.run sim ~until:1000.0;
  Alcotest.(check (list bool)) "callback saw the fall" [ false ] !seen

let test_sim_callbacks_change_only () =
  (* Regression: observers must fire exactly once per actual value change
     on EVERY path into the commit logic — including direct input drives
     that re-assert the current value and inertial re-schedules.  The VCD
     layer depends on this. *)
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let sim = Sim.create nl in
  Sim.settle sim ();
  let n = Netlist.num_nets nl in
  let last = Array.init n (fun net -> Sim.value sim net) in
  let violations = ref 0 and fired = ref 0 in
  for net = 0 to n - 1 do
    Sim.on_change sim net (fun _ v ->
        incr fired;
        if last.(net) = v then incr violations;
        last.(net) <- v)
  done;
  let a = Netlist.find_net nl "a"
  and b = Netlist.find_net nl "b"
  and c = Netlist.find_net nl "c" in
  (* Redundant drives: a is pushed to true twice, c to its initial value. *)
  Sim.drive sim a true ~after:5.0;
  Sim.drive sim a true ~after:7.0;
  Sim.drive sim c (Sim.value sim c) ~after:9.0;
  Sim.drive sim b true ~after:11.0;
  Sim.drive sim b false ~after:13.0;
  Sim.run sim ~until:1000.0;
  check "some changes observed" true (!fired > 0);
  check_int "no duplicate notifications" 0 !violations

let test_sim_vcd_capture () =
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let sim = Sim.create nl in
  let w = Rtcad_obs.Vcd.create () in
  Sim.attach_vcd sim w;
  Sim.settle sim ();
  Sim.drive sim (Netlist.find_net nl "a") true ~after:5.0;
  Sim.drive sim (Netlist.find_net nl "b") true ~after:5.0;
  Sim.run sim ~until:1000.0;
  let r = Rtcad_obs.Vcd.parse (Rtcad_obs.Vcd.contents w) in
  check_int "one VCD signal per net" (Netlist.num_nets nl)
    (List.length r.Rtcad_obs.Vcd.vars);
  (* The dump replays to the simulator's final state. *)
  let state = Hashtbl.create 8 in
  List.iter (fun (id, v) -> Hashtbl.replace state id v) r.Rtcad_obs.Vcd.initial;
  List.iter
    (fun (_, id, v) -> Hashtbl.replace state id v)
    (Rtcad_obs.Vcd.changes r);
  let ids = List.sort compare r.Rtcad_obs.Vcd.vars in
  List.iteri
    (fun net (id, name) ->
      check
        (Printf.sprintf "net %s replays to its final value" name)
        true
        (Hashtbl.find state id = Sim.value sim net))
    ids

let test_sim_drive_negative () =
  let nl = build_and_or () in
  let sim = Sim.create nl in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Sim.drive: negative delay") (fun () ->
      Sim.drive sim (Netlist.find_net nl "a") true ~after:(-1.0))

let test_sim_deterministic () =
  (* Two simulations of the same netlist under the same stimulus must
     produce identical event sequences — ids, nets, values, times and
     cause links all equal.  Pins the queue's tie-breaking (insertion
     order among equal timestamps) and the fanout evaluation order. *)
  let run_once () =
    let nl = build_and_or () in
    Netlist.settle_initial nl;
    let sim = Sim.create nl in
    Sim.settle sim ();
    let a = Netlist.find_net nl "a"
    and b = Netlist.find_net nl "b"
    and c = Netlist.find_net nl "c" in
    (* Deliberate timestamp collisions: a and b toggle at the same instant. *)
    List.iter
      (fun (t, va, vb, vc) ->
        Sim.drive sim a va ~after:t;
        Sim.drive sim b vb ~after:t;
        Sim.drive sim c vc ~after:(t +. 1.0))
      [
        (10.0, true, true, false);
        (400.0, false, true, true);
        (800.0, true, false, false);
        (1200.0, true, true, true);
      ];
    Sim.run sim ~until:2000.0;
    (List.map (fun e -> (e.Sim.id, e.Sim.net, e.Sim.value, e.Sim.at, e.Sim.cause))
       (Sim.events sim),
     Sim.trace sim)
  in
  let events1, trace1 = run_once () in
  let events2, trace2 = run_once () in
  check "events nonempty" true (events1 <> []);
  check "identical event sequences" true (events1 = events2);
  check "identical output traces" true (trace1 = trace2)

(* Fault simulation. *)

let test_faults_coverage () =
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  (* Stimulus: walk enough input combinations to expose every stuck-at. *)
  let stimulus sim =
    let a = Netlist.find_net nl "a"
    and b = Netlist.find_net nl "b"
    and c = Netlist.find_net nl "c" in
    List.iteri
      (fun i (va, vb, vc) ->
        let t = float_of_int (1 + (i * 500)) in
        Sim.drive sim a va ~after:t;
        Sim.drive sim b vb ~after:(t +. 1.0);
        Sim.drive sim c vc ~after:(t +. 2.0))
      [
        (true, true, false);
        (false, true, false);
        (true, false, true);
        (false, false, false);
        (true, true, true);
        (false, true, true);
      ]
  in
  let report = Faults.coverage ~stimulus ~horizon:4000.0 nl in
  check_int "fault universe = 2 x nets" 10 report.Faults.total;
  check "full coverage" true (report.Faults.coverage >= 99.0)

let test_faults_undetectable () =
  (* With a stimulus that never raises c, faults on c's path escape. *)
  let nl = build_and_or () in
  Netlist.settle_initial nl;
  let stimulus sim =
    let a = Netlist.find_net nl "a" and b = Netlist.find_net nl "b" in
    Sim.drive sim a true ~after:5.0;
    Sim.drive sim b true ~after:6.0;
    Sim.drive sim a false ~after:600.0
  in
  let report = Faults.coverage ~stimulus ~horizon:2000.0 nl in
  check "undetected faults listed" true (report.Faults.undetected <> []);
  check "coverage below 100" true (report.Faults.coverage < 100.0)

let suite =
  [
    ( "gate",
      [
        Alcotest.test_case "combinational eval" `Quick test_gate_eval_basic;
        Alcotest.test_case "state-holding eval" `Quick test_gate_eval_state;
        Alcotest.test_case "SOP / gC eval" `Quick test_gate_eval_sop;
        Alcotest.test_case "validation" `Quick test_gate_validation;
        Alcotest.test_case "cost models" `Quick test_gate_costs;
      ] );
    ( "netlist",
      [
        Alcotest.test_case "structure" `Quick test_netlist_structure;
        Alcotest.test_case "errors" `Quick test_netlist_errors;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "settle_initial" `Quick test_settle_initial;
      ] );
    ( "sim",
      [
        Alcotest.test_case "propagation" `Quick test_sim_propagation;
        Alcotest.test_case "inertial glitch" `Quick test_sim_glitch_cancel;
        Alcotest.test_case "oscillation guard" `Quick test_sim_oscillation;
        Alcotest.test_case "forced nets" `Quick test_sim_forced;
        Alcotest.test_case "energy and causality" `Quick test_sim_energy_and_events;
        Alcotest.test_case "callbacks" `Quick test_sim_callbacks;
        Alcotest.test_case "callbacks are change-only" `Quick
          test_sim_callbacks_change_only;
        Alcotest.test_case "vcd capture" `Quick test_sim_vcd_capture;
        Alcotest.test_case "negative drive delay" `Quick test_sim_drive_negative;
        Alcotest.test_case "event-trace determinism" `Quick test_sim_deterministic;
      ] );
    ( "faults",
      [
        Alcotest.test_case "full coverage" `Quick test_faults_coverage;
        Alcotest.test_case "undetectable faults" `Quick test_faults_undetectable;
      ] );
  ]
