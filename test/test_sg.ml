(* Tests for state-graph construction, properties, encoding analysis and
   CSC resolution. *)

module Bitset = Rtcad_util.Bitset
module Stg = Rtcad_stg.Stg
module Petri = Rtcad_stg.Petri
module Library = Rtcad_stg.Library
module Sg = Rtcad_sg.Sg
module Props = Rtcad_sg.Props
module Encoding = Rtcad_sg.Encoding
module Csc = Rtcad_sg.Csc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_celement_sg () =
  let sg = Sg.build (Library.c_element ()) in
  (* a and b rise concurrently, c rises, a and b fall concurrently, c falls:
     2x2 diamond on each phase plus the c states. *)
  check_int "states" 8 (Sg.num_states sg);
  check "deadlock free" true (Props.deadlock_free sg);
  check "live" true (Props.live_transitions sg);
  check "persistent" true (Props.is_output_persistent sg);
  check "csc ok" false (Encoding.has_csc sg)

let test_pipeline_sg () =
  let sg = Sg.build (Library.pipeline_stage ()) in
  check "deadlock free" true (Props.deadlock_free sg);
  check "live" true (Props.live_transitions sg);
  check "persistent" true (Props.is_output_persistent sg);
  check "csc ok" false (Encoding.has_csc sg)

let test_fifo_sg () =
  let sg = Sg.build (Library.fifo ()) in
  check "deadlock free" true (Props.deadlock_free sg);
  check "live" true (Props.live_transitions sg);
  (* The paper's point: this spec has a CSC conflict (initial state vs the
     state after a completed left handshake). *)
  check "has csc conflict" true (Encoding.has_csc sg)

let test_fifo_conflict_shape () =
  let stg = Library.fifo () in
  let sg = Sg.build stg in
  let conflicts = Encoding.csc_conflicts sg in
  check "at least one" true (List.length conflicts >= 1);
  let ro = Stg.signal_index stg "ro" in
  check "ro is a conflict signal" true
    (List.exists (fun c -> List.mem ro c.Encoding.signals) conflicts)

let test_selector_sg () =
  let sg = Sg.build (Library.selector ()) in
  check "deadlock free" true (Props.deadlock_free sg);
  check "live" true (Props.live_transitions sg);
  (* Input choice between a+ and b+ is not a persistency violation. *)
  check "persistent" true (Props.is_output_persistent sg)

(* Section 4.2: the assumption "ri- before li+" for a cell in a token ring
   is a *timing* assumption — in the untimed state graph there are
   interleavings violating it for every ring size (a receiver may see a
   new request before its own outgoing acknowledge has fallen).  The timed
   simulation (bench figure6) shows it holds under realistic delays.  Here
   we pin down the untimed behaviour: the ring is live and safe, and the
   violating interleavings do exist. *)
let test_ring_sg () =
  List.iter
    (fun n ->
      let stg = Library.ring n in
      let sg = Sg.build stg in
      check (Printf.sprintf "ring %d deadlock free" n) true (Props.deadlock_free sg);
      check (Printf.sprintf "ring %d live" n) true (Props.live_transitions sg);
      let violations = ref 0 in
      Sg.iter_states
        (fun s ->
          List.iter
            (fun (t, _) ->
              match Stg.label stg t with
              | Stg.Edge { signal; dir = Stg.Rise } ->
                let name = Stg.signal_name stg signal in
                if name.[0] = 'r' then begin
                  let i = int_of_string (String.sub name 1 (String.length name - 1)) in
                  let cell = (i + 1) mod n in
                  let ack = Stg.signal_index stg (Printf.sprintf "a%d" cell) in
                  if Sg.value sg s ack then incr violations
                end
              | Stg.Edge _ | Stg.Dummy -> ())
            (Sg.succs sg s))
        sg;
      check (Printf.sprintf "ring %d: untimed interleavings violate ri-<li+" n) true
        (!violations > 0))
    [ 2; 3; 4 ]

(* Golden reachable-state counts for every library STG (dummies
   contracted, as the synthesis flow builds them).  Pins the reachability
   engine: any change to marking dedup, firing order or code tracking
   that alters the state space fails here. *)
let test_golden_state_counts () =
  let golden =
    [
      ("fifo", 20);
      ("fifo_x", 44);
      ("celement", 8);
      ("pipeline", 12);
      ("selector", 7);
      ("toggle", 8);
      ("call", 15);
      ("ring3", 54);
    ]
  in
  let named = Library.all_named () in
  check_int "covers every library spec" (List.length named) (List.length golden);
  List.iter
    (fun (name, stg) ->
      let expected =
        match List.assoc_opt name golden with
        | Some n -> n
        | None -> Alcotest.failf "no golden count for %s" name
      in
      let sg = Sg.build (Rtcad_stg.Transform.contract_dummies stg) in
      check_int (name ^ " states") expected (Sg.num_states sg))
    named

let test_next_value () =
  let stg = Library.c_element () in
  let sg = Sg.build stg in
  let c = Stg.signal_index stg "c" in
  let s0 = Sg.initial sg in
  check "c not excited initially" false (Sg.excited sg s0 c);
  check "c next value 0" false (Sg.next_value sg s0 c);
  (* After a+ and b+ fire, c is excited to rise. *)
  let step s t_name =
    let edge =
      List.find
        (fun (t, _) -> Format.asprintf "%a" (Stg.pp_transition stg) t = t_name)
        (Sg.succs sg s)
    in
    snd edge
  in
  let s1 = step s0 "a+" in
  let s2 = step s1 "b+" in
  check "c excited" true (Sg.excited sg s2 c);
  check "c next value 1" true (Sg.next_value sg s2 c)

let test_restrict () =
  let stg = Library.c_element () in
  let sg = Sg.build stg in
  (* Forbid firing b+ before a+: in states where both a+ and b+ are
     enabled, drop the b+ edge. *)
  let b_plus =
    List.hd (Stg.transitions_of stg (Stg.signal_index stg "b") Stg.Rise)
  in
  let a_plus =
    List.hd (Stg.transitions_of stg (Stg.signal_index stg "a") Stg.Rise)
  in
  let allowed s t =
    not (t = b_plus && List.mem a_plus (Sg.enabled sg s))
  in
  let sg' = Sg.restrict sg ~allowed in
  check "fewer states" true (Sg.num_states sg' < Sg.num_states sg);
  check "still deadlock free" true (Props.deadlock_free sg');
  check_int "one initial edge" 1 (List.length (Sg.succs sg' (Sg.initial sg')))

let test_too_large () =
  check "bound respected" true
    (try
       ignore (Sg.build ~max_states:3 (Library.fifo ()));
       false
     with Sg.Too_large 3 -> true)

let test_inconsistent () =
  (* a+ followed by a+ again. *)
  let b = Stg.Build.create () in
  Stg.Build.signal b Stg.Input "a";
  Stg.Build.connect b "a+" "a+/2";
  Stg.Build.connect b "a+/2" "a+";
  Stg.Build.mark_between b "a+/2" "a+";
  let stg = Stg.Build.finish b in
  check "inconsistent detected" true
    (try
       ignore (Sg.build stg);
       false
     with Sg.Inconsistent _ -> true)

let test_csc_resolve_si () =
  (* Dummies must be contracted first: a pending silent transition aliases
     codes in a way no state signal can repair. *)
  let stg = Rtcad_stg.Transform.contract_dummies (Library.fifo ()) in
  match Csc.resolve ~mode:Csc.Speed_independent stg with
  | None -> Alcotest.fail "expected an SI insertion"
  | Some (stg', ins) ->
    check_int "one more signal" (Stg.num_signals stg + 1) (Stg.num_signals stg');
    let sg' = Sg.build stg' in
    check "csc resolved" false (Encoding.has_csc sg');
    check "live" true (Props.live_transitions sg');
    check "deadlock free" true (Props.deadlock_free sg');
    check "waiters used (SI needs sequencing)" true
      (ins.Csc.rise_waiters <> [] || ins.Csc.fall_waiters <> [])

let test_csc_already_fine () =
  check "no insertion needed" true (Csc.resolve (Library.c_element ()) = None)

let test_fifo_with_state_consistent () =
  let sg = Sg.build (Library.fifo_with_state ()) in
  check "deadlock free" true (Props.deadlock_free sg);
  check "live" true (Props.live_transitions sg)

let suite =
  [
    ( "sg",
      [
        Alcotest.test_case "c-element" `Quick test_celement_sg;
        Alcotest.test_case "pipeline" `Quick test_pipeline_sg;
        Alcotest.test_case "fifo has CSC conflict" `Quick test_fifo_sg;
        Alcotest.test_case "fifo conflict shape" `Quick test_fifo_conflict_shape;
        Alcotest.test_case "selector" `Quick test_selector_sg;
        Alcotest.test_case "ring: ri- before li+" `Quick test_ring_sg;
        Alcotest.test_case "golden state counts" `Quick test_golden_state_counts;
        Alcotest.test_case "next_value" `Quick test_next_value;
        Alcotest.test_case "restrict" `Quick test_restrict;
        Alcotest.test_case "state bound" `Quick test_too_large;
        Alcotest.test_case "inconsistency detection" `Quick test_inconsistent;
      ] );
    ( "csc",
      [
        Alcotest.test_case "resolve fifo (SI)" `Quick test_csc_resolve_si;
        Alcotest.test_case "no conflict, no insertion" `Quick test_csc_already_fine;
        Alcotest.test_case "fifo_with_state consistent" `Quick test_fifo_with_state_consistent;
      ] );
  ]
