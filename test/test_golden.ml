(* Golden-trace regression corpus.

   Each case replays a pinned scenario — the four Table-2 FIFO
   controllers under their measurement environments, and one RAPPID
   decode run — and compares the produced artifacts byte-for-byte
   against committed snapshots:

   - the full VCD waveform of the simulation (the netlist simulator is
     serial and femtosecond-exact, so dumps are identical at any job
     count and on any machine);
   - the normalised observability summary (job count and wall-clock
     fields pinned to 0; every remaining metric is deterministic).

   A mismatch means an intentional behaviour change or a regression in
   the simulator, the harness or the metrics pipeline.  To re-bless
   after an intentional change run `make golden-update` and review the
   diff like any other code change.

   Environment:
     RTCAD_GOLDEN_DIR    where snapshots live (default: ./golden next to
                         the test binary, i.e. test/golden in the tree)
     RTCAD_UPDATE_GOLDEN =1 rewrites snapshots instead of comparing *)

module Obs = Rtcad_obs.Obs
module Vcd = Rtcad_obs.Vcd
module Harness = Rtcad_core.Harness
module Table2 = Rtcad_core.Table2
module Fifo_impls = Rtcad_core.Fifo_impls
module Rappid = Rtcad_rappid.Rappid
module Workload = Rtcad_rappid.Workload

let updating () = Sys.getenv_opt "RTCAD_UPDATE_GOLDEN" = Some "1"

let golden_dir () =
  match Sys.getenv_opt "RTCAD_GOLDEN_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match List.find_opt Sys.file_exists [ "golden"; "test/golden" ] with
    | Some d -> d
    | None -> "golden")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name data =
  let path = Filename.concat (golden_dir ()) name in
  if updating () then (
    match Obs.write_file ~path data with
    | Ok () -> Printf.printf "golden: wrote %s (%d bytes)\n%!" path (String.length data)
    | Error msg -> Alcotest.failf "cannot update golden %s: %s" path msg)
  else
    match read_file path with
    | exception Sys_error _ ->
      Alcotest.failf "missing golden snapshot %s — run `make golden-update`" path
    | expected ->
      if String.equal expected data then ()
      else
        (* Point at the first divergence instead of dumping both blobs. *)
        let n = min (String.length expected) (String.length data) in
        let rec first_diff i = if i < n && expected.[i] = data.[i] then first_diff (i + 1) else i in
        let i = first_diff 0 in
        let ctx s =
          let lo = max 0 (i - 40) in
          String.sub s lo (min 80 (String.length s - lo))
        in
        Alcotest.failf
          "%s diverges from its golden snapshot at byte %d (lengths %d vs %d)@.golden:  \
           %S@.fresh:   %S@.Run `make golden-update` if the change is intentional."
          name i (String.length expected) (String.length data) (ctx expected) (ctx data)

(* Recording is enabled only around the measurement itself: the variant
   is synthesized first, so the summary holds the simulation's metrics,
   not the synthesis search's. *)
let fifo_case slug build () =
  let v = build () in
  Obs.set_enabled true;
  let w, summary =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () ->
        let w = Vcd.create () in
        let _m =
          if v.Fifo_impls.pulse then
            Harness.measure_pulse ~vcd:w ~cycles:12 v.Fifo_impls.netlist
          else
            Harness.measure_fourphase ~env:(Table2.env_for v) ~vcd:w ~cycles:12
              v.Fifo_impls.netlist
        in
        (w, Obs.summary_json ~normalised:true (Obs.snapshot ())))
  in
  check_golden (slug ^ ".vcd") (Vcd.contents w);
  check_golden (slug ^ ".summary.json") summary;
  (* Every golden dump must stay within the dialect the round-trip
     parser accepts. *)
  let r = Vcd.parse (Vcd.contents w) in
  Alcotest.(check bool) "golden VCD parses" true (List.length r.Vcd.vars > 0)

let rappid_case () =
  let stream = Workload.generate ~seed:7 Workload.typical ~instructions:20_000 in
  let r = Rappid.run stream in
  check_golden "rappid.summary.json" (Rappid.summary_json r)

(* --- the same corpus, replayed through the synthesis server ---

   Each golden scenario is also issued as an NDJSON request against the
   serving layer: the response must embed byte-for-byte the same VCD and
   the same normalised summary the direct harness produced.  This pins
   the server's per-request capture (and its cached replays) to the
   corpus: a serving-layer regression that perturbs measurement order or
   observability would surface here as a byte diff. *)

module Serve = Rtcad_serve.Serve
module Json = Rtcad_serve.Json

let serve_one ?(obs = false) request =
  let cfg = Serve.default_config () in
  let cfg =
    if obs then { cfg with Serve.obs_mode = Serve.Obs_normalised } else cfg
  in
  match Serve.run_lines cfg [ request ] with
  | [ line ] ->
    let j = Json.parse line in
    if Json.member "ok" j <> Some (Json.Bool true) then
      Alcotest.failf "serve replay failed: %s" line;
    j
  | other -> Alcotest.failf "expected one response, got %d" (List.length other)

let serve_str j path =
  match
    List.fold_left (fun acc name -> Option.bind acc (Json.member name)) (Some j) path
  with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "response lacks string field %s" (String.concat "." path)

let serve_fifo_case slug circuit () =
  let request =
    Printf.sprintf {|{"op":"sim","circuit":%S,"cycles":12,"vcd":true}|} circuit
  in
  let j = serve_one ~obs:true request in
  check_golden (slug ^ ".vcd") (serve_str j [ "result"; "vcd" ]);
  check_golden (slug ^ ".summary.json") (serve_str j [ "obs" ]);
  (* The cached replay of the same request must serve identical bytes. *)
  let cache = Rtcad_serve.Cache.create () in
  let cfg =
    { (Serve.default_config ~cache ()) with Serve.obs_mode = Serve.Obs_normalised }
  in
  match Serve.run_lines cfg [ request; request ] with
  | [ miss; hit ] ->
    let strip l = Json.to_string (Option.get (Json.member "result" (Json.parse l))) in
    Alcotest.(check string) "cached replay byte-identical" (strip miss) (strip hit)
  | _ -> Alcotest.fail "expected two responses"

let serve_rappid_case () =
  let j = serve_one {|{"op":"sim","circuit":"rappid","instructions":20000,"seed":7}|} in
  check_golden "rappid.summary.json" (serve_str j [ "result"; "summary_json" ])

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "fifo si" `Slow (fifo_case "fifo_si" Fifo_impls.speed_independent);
        Alcotest.test_case "fifo rt-bm" `Slow (fifo_case "fifo_rt_bm" Fifo_impls.burst_mode);
        Alcotest.test_case "fifo rt" `Slow (fifo_case "fifo_rt" Fifo_impls.relative_timing);
        Alcotest.test_case "fifo pulse" `Slow (fifo_case "fifo_pulse" Fifo_impls.pulse_mode);
        Alcotest.test_case "rappid" `Slow rappid_case;
        Alcotest.test_case "serve: fifo si" `Slow (serve_fifo_case "fifo_si" "si");
        Alcotest.test_case "serve: fifo rt-bm" `Slow (serve_fifo_case "fifo_rt_bm" "rt-bm");
        Alcotest.test_case "serve: fifo rt" `Slow (serve_fifo_case "fifo_rt" "rt");
        Alcotest.test_case "serve: fifo pulse" `Slow (serve_fifo_case "fifo_pulse" "pulse");
        Alcotest.test_case "serve: rappid" `Slow serve_rappid_case;
      ] );
  ]
