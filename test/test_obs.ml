(* Observability layer: VCD writer/reader round-trips, metric recording
   semantics, and the sink contracts the CLI relies on. *)

module Obs = Rtcad_obs.Obs
module Vcd = Rtcad_obs.Vcd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Recording is process-global; every test that enables it must leave it
   disabled so unrelated suites stay on the zero-cost path. *)
let with_obs f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* --- VCD writer basics --- *)

let test_vcd_writer_basics () =
  let w = Vcd.create () in
  let a = Vcd.add_signal w "a" in
  let b = Vcd.add_signal w ~initial:true "b" in
  Vcd.change w ~time:5 a true;
  Vcd.change w ~time:5 b false;
  Vcd.change w ~time:9 a true (* redundant: dropped *);
  Vcd.change w ~time:12 a false;
  check_int "deduplicated change count" 3 (Vcd.num_changes w);
  let r = Vcd.parse (Vcd.contents w) in
  check_int "two declared signals" 2 (List.length r.Vcd.vars);
  check "initial block covers both" true (List.length r.Vcd.initial = 2);
  check_int "two time steps" 2 (List.length r.Vcd.steps);
  check "timescale survives" true (r.Vcd.r_timescale = "1 fs")

let test_vcd_writer_rejects () =
  let w = Vcd.create () in
  let a = Vcd.add_signal w "a" in
  Vcd.change w ~time:10 a true;
  check "non-monotone time rejected" true
    (try
       Vcd.change w ~time:9 a false;
       false
     with Invalid_argument _ -> true);
  check "declaration after first change rejected" true
    (try
       ignore (Vcd.add_signal w "late");
       false
     with Invalid_argument _ -> true);
  check "unknown signal rejected" true
    (try
       Vcd.change w ~time:11 99 true;
       false
     with Invalid_argument _ -> true)

let test_vcd_name_sanitized () =
  let w = Vcd.create () in
  ignore (Vcd.add_signal w "a b\tc");
  let r = Vcd.parse (Vcd.contents w) in
  check "whitespace replaced" true (List.exists (fun (_, n) -> n = "a_b_c") r.Vcd.vars)

(* --- VCD round-trip property ---

   A random dump: up to 6 signals with random initial values, then a
   random walk of (time-increment, signal, value) writes.  The writer may
   drop any individual write as redundant; the parsed dump must still be
   monotone, declared-before-used, change-only, and replay to exactly the
   final values an independent model of the walk predicts. *)

type walk = { nsig : int; inits : bool list; writes : (int * int * bool) list }

let gen_walk =
  QCheck.Gen.(
    (1 -- 6) >>= fun nsig ->
    list_repeat nsig bool >>= fun inits ->
    (0 -- 40) >>= fun steps ->
    list_repeat steps (triple (0 -- 3) (0 -- (nsig - 1)) bool) >>= fun writes ->
    return { nsig; inits; writes })

let print_walk wk =
  Printf.sprintf "{nsig=%d; writes=%s}" wk.nsig
    (String.concat ";"
       (List.map (fun (dt, s, v) -> Printf.sprintf "(+%d,%d,%b)" dt s v) wk.writes))

let arb_walk = QCheck.make ~print:print_walk gen_walk

let build_walk wk =
  let w = Vcd.create () in
  let sigs =
    List.mapi (fun i init -> Vcd.add_signal w ~initial:init (Printf.sprintf "s%d" i)) wk.inits
  in
  let model = Array.of_list wk.inits in
  let now = ref 0 in
  List.iter
    (fun (dt, s, v) ->
      now := !now + dt;
      Vcd.change w ~time:!now (List.nth sigs s) v;
      model.(s) <- v)
    wk.writes;
  (w, model)

let prop_vcd_roundtrip =
  QCheck.Test.make ~name:"vcd round-trips through its parser" ~count:300 arb_walk
    (fun wk ->
      let w, model = build_walk wk in
      let r = Vcd.parse (Vcd.contents w) in
      (* Every id used in the stream was declared in the header. *)
      let declared = List.map fst r.Vcd.vars in
      List.for_all (fun (id, _) -> List.mem id declared) r.Vcd.initial
      && List.for_all
           (fun (_, id, _) -> List.mem id declared)
           (Vcd.changes r)
      (* Timestamps strictly increase across steps. *)
      && (let rec mono = function
            | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && mono rest
            | _ -> true
          in
          mono r.Vcd.steps)
      (* Change-only: replaying from the initial block, every recorded
         change flips the signal's value. *)
      && (let state = Hashtbl.create 8 in
          List.iter (fun (id, v) -> Hashtbl.replace state id v) r.Vcd.initial;
          List.for_all
            (fun (_, id, v) ->
              let old = Hashtbl.find state id in
              Hashtbl.replace state id v;
              old <> v)
            (Vcd.changes r)
          (* ...and the replayed final state matches the walk's model.
             Id codes are single ascending ASCII characters for the first
             94 signals, so sorting vars by id recovers declaration
             order. *)
          && List.for_all2
               (fun (id, _) expected -> Hashtbl.find state id = expected)
               (List.sort compare r.Vcd.vars)
               (Array.to_list model)))

(* --- metrics --- *)

let test_disabled_records_nothing () =
  Obs.set_enabled false;
  Obs.incr "ghost";
  Obs.observe "ghost_h" 3.0;
  Obs.set_gauge "ghost_g" 1.0;
  ignore (Obs.span "ghost_span" (fun () -> 42));
  with_obs (fun () ->
      let snap = Obs.snapshot () in
      check "no metrics leak from disabled recording" true (snap.Obs.metrics = []);
      check "no spans either" true (snap.Obs.span_aggs = []))

let test_counters_and_snapshot () =
  with_obs (fun () ->
      Obs.incr "a";
      Obs.incr ~by:4 "a";
      Obs.set_gauge "g" 2.5;
      Obs.observe "h" 3.0;
      Obs.observe "h" 30.0;
      let v = Obs.span "s" (fun () -> 7) in
      check_int "span passes the value through" 7 v;
      let snap = Obs.snapshot () in
      check "counter summed" true (List.assoc "a" snap.Obs.metrics = Obs.Count 5);
      check "gauge kept" true (List.assoc "g" snap.Obs.metrics = Obs.Gauge_v 2.5);
      (match List.assoc "h" snap.Obs.metrics with
      | Obs.Hist_v { count; sum; _ } ->
        check_int "hist count" 2 count;
        check "hist sum" true (sum = 33.0)
      | _ -> Alcotest.fail "expected a histogram");
      match snap.Obs.span_aggs with
      | [ { Obs.name = "s"; calls = 1; _ } ] -> ()
      | _ -> Alcotest.fail "expected exactly one span aggregate")

let test_kind_mismatch () =
  with_obs (fun () ->
      Obs.incr "k";
      check "gauge write to a counter rejected" true
        (try
           Obs.set_gauge "k" 1.0;
           false
         with Invalid_argument _ -> true))

let test_reset_on_reenable () =
  with_obs (fun () -> Obs.incr "old");
  with_obs (fun () ->
      check "re-enabling starts a fresh session" true
        ((Obs.snapshot ()).Obs.metrics = []))

let test_span_survives_exception () =
  with_obs (fun () ->
      (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      let snap = Obs.snapshot () in
      check "span recorded despite the exception" true
        (List.exists (fun a -> a.Obs.name = "boom") snap.Obs.span_aggs))

(* --- sinks --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_summary_json_normalised () =
  with_obs (fun () ->
      Obs.incr ~by:3 "n";
      ignore (Obs.span "p" (fun () -> ()));
      let snap = Obs.snapshot () in
      let j = Obs.summary_json ~normalised:true snap in
      check "normalised jobs pinned to 0" true (contains j "\"jobs\": 0");
      check "normalised wall_ms pinned to 0" true (contains j "\"wall_ms\": 0"))

(* --- histogram percentiles --- *)

let check_float = Alcotest.(check (float 1e-9))

let dense () = Array.make (Array.length Obs.hist_bounds + 1) 0

(* Same 1-2-5 bucketing rule the recorder uses: first bound >= v. *)
let bucket_of v =
  let b = Obs.hist_bounds in
  let n = Array.length b in
  let rec go i = if i >= n || v <= b.(i) then i else go (i + 1) in
  go 0

let test_percentile_of_buckets () =
  let counts = dense () in
  check_float "empty histogram" 0.0 (Obs.percentile_of_buckets ~counts 50.0);
  (* 10 observations in the (2, 5] bucket: p50 interpolates to rank 5 of
     10 across the bucket's width. *)
  counts.(2) <- 10;
  check_float "single bucket p50" (2.0 +. (3.0 *. 0.5))
    (Obs.percentile_of_buckets ~counts 50.0);
  check_float "single bucket p100 hits upper edge" 5.0
    (Obs.percentile_of_buckets ~counts 100.0);
  (* Split 90/10 across (2,5] and (5,10]: p95 lands in the second. *)
  let counts = dense () in
  counts.(2) <- 90;
  counts.(3) <- 10;
  check "p95 in upper bucket" true
    (let p = Obs.percentile_of_buckets ~counts 95.0 in
     p > 5.0 && p <= 10.0);
  check "p50 in lower bucket" true
    (let p = Obs.percentile_of_buckets ~counts 50.0 in
     p > 2.0 && p <= 5.0)

let test_percentile_overflow_and_bounds () =
  let counts = dense () in
  counts.(Array.length counts - 1) <- 3;
  check "overflow bucket is unbounded" true
    (Obs.percentile_of_buckets ~counts 99.0 = infinity);
  check "rejects short counts" true
    (try
       ignore (Obs.percentile_of_buckets ~counts:[| 1 |] 50.0);
       false
     with Invalid_argument _ -> true);
  check "rejects p > 100" true
    (try
       ignore (Obs.percentile_of_buckets ~counts 101.0);
       false
     with Invalid_argument _ -> true)

let test_observe_buckets_merges () =
  with_obs (fun () ->
      (* A bulk-merged histogram must be indistinguishable from the same
         observations recorded one at a time. *)
      Obs.observe "ob_seq" 3.0;
      Obs.observe "ob_seq" 3.0;
      Obs.observe "ob_seq" 700.0;
      let counts = dense () in
      counts.(bucket_of 3.0) <- 2;
      counts.(bucket_of 700.0) <- 1;
      Obs.observe_buckets "ob_bulk" ~counts ~sum:706.0;
      let snap = Obs.snapshot () in
      let v n = List.assoc n snap.Obs.metrics in
      check "bulk = sequential" true (v "ob_bulk" = v "ob_seq");
      match (Obs.percentile (v "ob_bulk") 50.0, Obs.percentile (v "ob_seq") 50.0) with
      | Some a, Some b -> check_float "same p50" b a
      | _ -> Alcotest.fail "expected histogram percentiles")

let test_write_file_failure_leaves_nothing () =
  let path = "/nonexistent-rtcad-dir/out.json" in
  (match Obs.write_file ~path "data" with
  | Ok () -> Alcotest.fail "write into a missing directory must fail"
  | Error msg -> check "error message names the path" true (msg <> ""));
  check "no partial file" true (not (Sys.file_exists path))

let test_write_file_roundtrip () =
  let path = Filename.temp_file "rtcad_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Obs.write_file ~path "payload" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check "payload written verbatim" true (s = "payload"))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "vcd writer basics" `Quick test_vcd_writer_basics;
        Alcotest.test_case "vcd writer rejects" `Quick test_vcd_writer_rejects;
        Alcotest.test_case "vcd names sanitized" `Quick test_vcd_name_sanitized;
        QCheck_alcotest.to_alcotest prop_vcd_roundtrip;
        Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        Alcotest.test_case "counters and snapshot" `Quick test_counters_and_snapshot;
        Alcotest.test_case "metric kind mismatch" `Quick test_kind_mismatch;
        Alcotest.test_case "reset on re-enable" `Quick test_reset_on_reenable;
        Alcotest.test_case "span survives exception" `Quick test_span_survives_exception;
        Alcotest.test_case "summary json normalised" `Quick test_summary_json_normalised;
        Alcotest.test_case "bucket percentiles" `Quick test_percentile_of_buckets;
        Alcotest.test_case "percentile edge cases" `Quick
          test_percentile_overflow_and_bounds;
        Alcotest.test_case "bulk observe merges" `Quick test_observe_buckets_merges;
        Alcotest.test_case "sink failure leaves nothing" `Quick
          test_write_file_failure_leaves_nothing;
        Alcotest.test_case "sink write round-trip" `Quick test_write_file_roundtrip;
      ] );
  ]
