(* Server-grade test battery for the synthesis service (lib/serve).

   The session core is exercised directly through [Serve.run_lines] /
   [Serve.feed] — the same engine both drivers wrap — so these tests
   cover the protocol, the cache and the determinism contract without
   forking processes; the stdio driver itself is covered by the
   [test/cli/serve.t] cram test and the socket driver by an in-process
   client thread below. *)

module Serve = Rtcad_serve.Serve
module Cache = Rtcad_serve.Cache
module Mux = Rtcad_serve.Mux
module Json = Rtcad_serve.Json
module Par = Rtcad_par.Par
module Obs = Rtcad_obs.Obs
module Flow = Rtcad_core.Flow
module Stg_io = Rtcad_stg.Stg_io
module Library = Rtcad_stg.Library

let with_jobs n f =
  let prev = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

let config ?cache ?(queue = 64) ?(timeout_ms = None) () =
  { (Serve.default_config ?cache ()) with Serve.queue; timeout_ms }

let req fmt = Printf.sprintf fmt

(* Response-line accessors (every response is a one-line JSON object). *)
let field line name =
  match Json.member name (Json.parse line) with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks field %S" line name

let is_ok line = Json.to_bool (field line "ok") = Some true
let str_of line name = Option.get (Json.to_str (field line name))

let error_kind line =
  match Json.member "kind" (field line "error") with
  | Some (Json.String k) -> k
  | _ -> Alcotest.failf "response %s lacks error.kind" line

let cached line =
  match field line "cached" with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "response %s lacks cached" line

let result_str line = Json.to_string (field line "result")

(* Stats responses embed wall-clock compute costs ("retained_ms" and the
   per-shard "ms"), the one nondeterministic part of the wire format:
   zero them before comparing streams byte-for-byte. *)
let mask_ms line =
  let keys = [ "\"retained_ms\":"; "\"ms\":" ] in
  let n = String.length line in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let hit =
      List.find_opt
        (fun k ->
          let kl = String.length k in
          !i + kl <= n && String.sub line !i kl = k)
        keys
    in
    match hit with
    | Some k ->
      Buffer.add_string b k;
      Buffer.add_char b '0';
      i := !i + String.length k;
      while
        !i < n
        && match line.[!i] with '0' .. '9' | '.' | '-' -> true | _ -> false
      do
        incr i
      done
    | None ->
      Buffer.add_char b line.[!i];
      incr i
  done;
  Buffer.contents b

(* --- JSON module --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 2.5 ]);
        ("c", Json.String "line\nbreak \"quoted\" \t tab");
        ("d", Json.Obj [ ("nested", Json.String "ünïcode") ]);
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "one line" false (String.contains s '\n');
  Alcotest.(check bool) "round-trips" true (Json.parse s = v);
  Alcotest.(check bool)
    "unicode escapes decode" true
    (Json.parse {|"\u00e9\ud83d\ude00"|} = Json.String "\xc3\xa9\xf0\x9f\x98\x80")

let test_json_rejects () =
  let rejects s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "{\"a\":1,\"a\":2}";
  (* duplicate keys are ambiguous *)
  rejects "[1,2,]";
  rejects "{\"a\":1} trailing"

let test_cache_key () =
  Alcotest.(check bool)
    "length prefix separates parts" false
    (String.equal (Cache.key [ "ab"; "c" ]) (Cache.key [ "a"; "bc" ]));
  Alcotest.(check string)
    "key is stable" (Cache.key [ "x"; "y" ]) (Cache.key [ "x"; "y" ])

let test_fingerprint () =
  let fps =
    List.map Flow.fingerprint
      [
        Flow.Si;
        Flow.rt_default;
        Flow.Rt { user = []; allow_input_first = true; allow_lazy = true };
        Flow.Rt { user = []; allow_input_first = false; allow_lazy = false };
        Flow.Rt
          {
            user = [ (("ri", Rtcad_stg.Stg.Fall), ("li", Rtcad_stg.Stg.Rise)) ];
            allow_input_first = false;
            allow_lazy = true;
          };
      ]
  in
  Alcotest.(check int)
    "mode fingerprints are distinct" (List.length fps)
    (List.length (List.sort_uniq compare fps))

(* --- determinism: byte-identical response streams at any job count --- *)

let mixed_script =
  [
    req {|{"op":"ping"}|};
    req {|{"op":"batch"}|};
    req {|{"op":"check","spec":"fifo"}|};
    req {|{"op":"check","spec":"ring4"}|};
    req {|{"op":"synth","spec":"fifo","mode":"si"}|};
    req {|{"op":"check","spec":"fifo","engine":"symbolic"}|};
    req {|{"op":"check","spec":"toggle"}|};
    req {|{"op":"flush"}|};
    (* batching persists across a flush: this second wave accumulates *)
    req {|{"op":"check","spec":"fifo"}|};
    (* repeat: hit *)
    req {|{"op":"sim","spec":"fifo","steps":24}|};
    req {|{"op":"synth","spec":"celement","mode":"rt"}|};
    req {|{"op":"flush"}|};
    req {|{"op":"stats"}|};
  ]

let test_determinism_across_jobs () =
  let run () = List.map mask_ms (Serve.run_lines (config ()) mixed_script) in
  let at1 = with_jobs 1 run and at2 = with_jobs 2 run in
  Alcotest.(check (list string)) "responses at jobs 1 = jobs 2" at1 at2;
  (* The repeat after the flush must have hit the cache. *)
  let repeat = List.nth at1 8 in
  Alcotest.(check bool) "repeat is a hit" true (cached repeat)

(* --- load shedding --- *)

let test_load_shedding () =
  let s = Serve.session (config ~queue:2 ()) in
  let out = Buffer.create 256 in
  let feed line = List.iter (fun r -> Buffer.add_string out (r ^ "\n")) (Serve.feed s line) in
  feed (req {|{"op":"batch"}|});
  for i = 1 to 5 do
    feed (req {|{"id":%d,"op":"check","spec":"fifo"}|} i)
  done;
  feed (req {|{"id":99,"op":"flush"}|});
  feed (req {|{"id":100,"op":"ping"}|});
  let lines =
    String.split_on_char '\n' (Buffer.contents out) |> List.filter (fun l -> l <> "")
  in
  (* batch ack + 5 work responses + flush ack + pong *)
  Alcotest.(check int) "response count" 8 (List.length lines);
  let work = List.filteri (fun i _ -> i >= 1 && i <= 5) lines in
  let oks, shed = List.partition is_ok work in
  Alcotest.(check int) "admitted up to the bound" 2 (List.length oks);
  Alcotest.(check int) "the rest shed" 3 (List.length shed);
  List.iter
    (fun l -> Alcotest.(check string) "shed kind" "overloaded" (error_kind l))
    shed;
  (* Shedding preserves arrival order and ids. *)
  List.iteri
    (fun i l ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d id" i)
        true
        (field l "id" = Json.Int (i + 1)))
    work;
  let flush_ack = List.nth lines 6 in
  Alcotest.(check string) "flush ack" (Json.to_string (Json.Obj [ ("flushed", Json.Int 2); ("shed", Json.Int 3) ]))
    (result_str flush_ack);
  (* The connection survives: the session still answers. *)
  Alcotest.(check bool) "session alive after shedding" true (is_ok (List.nth lines 7));
  Alcotest.(check bool) "not stopped" false (Serve.stopped s)

(* --- robustness: no input kills the session --- *)

let test_malformed_never_kills () =
  let script =
    [
      "";
      "not json at all";
      "{\"op\":\"check\"}";
      (* missing spec *)
      "{\"op\":\"check\",\"spec\":\"no_such_spec\"}";
      "{\"op\":\"check\",\"spec\":\"fifo\",\"bogus\":1}";
      "{\"op\":\"frobnicate\"}";
      "{\"op\":\"check\",\"spec\":\".inputs a\\na+ a-\\n\"}";
      (* graph line outside .graph: spec parse error *)
      "[1,2,3]";
      "{\"op\":\"sim\",\"circuit\":\"warp-core\"}";
      req {|{"op":"check","spec":"fifo"}|};
    ]
  in
  let responses = Serve.run_lines (config ()) script in
  (* The empty line still gets a parse_error response: 10 in, 10 out. *)
  Alcotest.(check int) "every line answered" 10 (List.length responses);
  let last = List.nth responses 9 in
  Alcotest.(check bool) "healthy request still served" true (is_ok last);
  List.iteri
    (fun i l ->
      if i < 9 then
        Alcotest.(check bool) (Printf.sprintf "line %d is an error" i) false (is_ok l))
    responses

let test_timeout_budget () =
  let responses =
    Serve.run_lines
      (config ~timeout_ms:(Some 0.0) ())
      [ req {|{"op":"check","spec":"fifo"}|} ]
  in
  Alcotest.(check string) "timeout kind" "timeout" (error_kind (List.nth responses 0))

(* --- cache correctness --- *)

(* Whitespace/comment perturbations the .g lexer normalizes away: the
   canonical rendering — and therefore the cache key — must not move. *)
let perturb seed text =
  let lines = String.split_on_char '\n' text in
  let n = ref seed in
  let next bound =
    n := (!n * 1103515245) + 12345;
    (!n lsr 16) mod bound
  in
  String.concat "\n"
    (List.concat_map
       (fun line ->
         let line = if next 3 = 0 then line ^ "   " else line in
         let extras =
           match next 4 with
           | 0 -> [ "" ]
           | 1 -> [ "# a comment the lexer strips" ]
           | _ -> []
         in
         (line :: extras))
       lines)

let spec_pool () =
  List.map
    (fun (name, stg) -> (name, Stg_io.to_string stg))
    (Library.all_named ())

let check_response ?(engine = "auto") text =
  let request =
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "check");
           ("spec", Json.String text);
           ("engine", Json.String engine);
         ])
  in
  match Serve.run_lines (config ()) [ request ] with
  | [ line ] ->
    if not (is_ok line) then Alcotest.failf "check failed: %s" line;
    line
  | other -> Alcotest.failf "expected 1 response, got %d" (List.length other)

let test_canonical_hash_property =
  QCheck.Test.make ~count:30
    ~name:"canonical-hash equality implies identical responses across engines"
    QCheck.(pair (int_range 0 6) (int_range 1 1000))
    (fun (which, seed) ->
      let name, text = List.nth (spec_pool ()) which in
      let perturbed = perturb seed text in
      (* Same canonical hash... *)
      let pristine = check_response ~engine:"explicit" text in
      let explicit = check_response ~engine:"explicit" perturbed in
      let symbolic = check_response ~engine:"symbolic" perturbed in
      (* ...same key (per engine) and the engines agree on the verdict. *)
      if str_of pristine "key" <> str_of explicit "key" then
        QCheck.Test.fail_reportf "perturbation moved the cache key for %s" name;
      if result_str explicit <> result_str pristine then
        QCheck.Test.fail_reportf "perturbation changed the explicit verdict for %s"
          name;
      if result_str explicit <> result_str symbolic then
        QCheck.Test.fail_reportf "engines disagree on %s:\n%s\n%s" name
          (result_str explicit) (result_str symbolic);
      true)

let with_tmpdir f =
  let path = Filename.temp_file "rtcad-serve-cache" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then begin
        Array.iter
          (fun e -> try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
          (Sys.readdir path);
        try Unix.rmdir path with Unix.Unix_error _ -> ()
      end)
    (fun () -> f path)

let one_check cache =
  match
    Serve.run_lines (config ~cache ()) [ req {|{"op":"check","spec":"fifo"}|} ]
  with
  | [ line ] -> line
  | _ -> Alcotest.fail "expected one response"

let test_disk_tier_and_corruption () =
  with_tmpdir @@ fun dir ->
  (* Populate through one cache instance... *)
  let first = one_check (Cache.create ~dir ()) in
  Alcotest.(check bool) "first is a miss" false (cached first);
  (* ...a fresh instance (empty memory) hits the disk tier... *)
  let warm = one_check (Cache.create ~dir ()) in
  Alcotest.(check bool) "disk entry hits" true (cached warm);
  Alcotest.(check string) "disk payload identical" (result_str first) (result_str warm);
  (* ...then corrupt the stored payload: the checksum must reject it and
     the result must be recomputed, not served. *)
  let entry =
    match Sys.readdir dir with
    | [| e |] -> Filename.concat dir e
    | _ -> Alcotest.fail "expected exactly one disk entry"
  in
  let data =
    let ic = open_in_bin entry in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let flipped = Bytes.of_string data in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (if Bytes.get flipped last = 'x' then 'y' else 'x');
  let oc = open_out_bin entry in
  output_bytes oc flipped;
  close_out oc;
  let cache = Cache.create ~dir () in
  let recomputed = one_check cache in
  Alcotest.(check bool) "corrupt entry is a miss" false (cached recomputed);
  Alcotest.(check string) "recomputed, identical" (result_str first)
    (result_str recomputed);
  Alcotest.(check int) "corruption detected" 1 (Cache.stats cache).Cache.corrupt

let test_lru_eviction () =
  (* One shard so the capacity bound is global, as in the pre-sharded
     cache this test pins down. *)
  let cache = Cache.create ~shards:1 ~capacity:2 () in
  let script =
    List.map
      (fun s -> req {|{"op":"check","spec":%S}|} s)
      [ "fifo"; "toggle"; "fifo"; "celement"; "toggle" ]
  in
  let responses = Serve.run_lines (config ~cache ()) script in
  let flags = List.map cached responses in
  (* fifo(miss) toggle(miss) fifo(hit, touches) celement(miss, evicts
     toggle) toggle(miss again: it was the LRU victim) *)
  Alcotest.(check (list bool))
    "LRU hit/miss sequence"
    [ false; false; true; false; false ]
    flags;
  let st = Cache.stats cache in
  Alcotest.(check int) "evictions" 2 st.Cache.evictions;
  Alcotest.(check bool) "bound respected" true (st.Cache.entries <= 2)

let test_cost_eviction () =
  (* Entry cost = payload bytes + ceil(compute ms); the budget bounds the
     retained total and eviction is LRU by that cost. *)
  let c = Cache.create ~shards:1 ~budget:100 () in
  Cache.store ~cost_ms:30.0 c "a" (String.make 20 'a');
  (* cost 50 *)
  Cache.store ~cost_ms:20.0 c "b" (String.make 20 'b');
  (* cost 40: total 90, both fit *)
  Alcotest.(check int) "both under budget" 2 (Cache.stats c).Cache.entries;
  ignore (Cache.find c "a");
  (* touch: "b" becomes the LRU victim *)
  Cache.store c "d" (String.make 40 'd');
  (* cost 40: 130 > 100, evict "b" *)
  let st = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 st.Cache.evictions;
  Alcotest.(check bool) "LRU victim gone" true (Cache.find c "b" = None);
  Alcotest.(check bool) "touched entry survives" true (Cache.find c "a" <> None);
  Alcotest.(check int) "retained bytes" 60 st.Cache.retained_bytes;
  Alcotest.(check (float 1e-6)) "retained ms" 30.0 st.Cache.retained_ms;
  (* A single entry dearer than the whole budget still caches: the entry
     just inserted is never its own victim. *)
  Cache.store c "huge" (String.make 500 'h');
  Alcotest.(check bool) "oversized entry cached" true (Cache.find c "huge" <> None);
  Alcotest.(check int) "everything else evicted" 1 (Cache.stats c).Cache.entries

let test_shard_distribution () =
  let c = Cache.create ~shards:4 () in
  for i = 1 to 64 do
    Cache.store ~cost_ms:1.0 c
      (Cache.key [ string_of_int i ])
      (Printf.sprintf "payload-%d" i)
  done;
  let st = Cache.stats c in
  Alcotest.(check int) "one stat per shard" 4 (List.length st.Cache.shards);
  Alcotest.(check int) "entries sum to total" st.Cache.entries
    (List.fold_left (fun a s -> a + s.Cache.sh_entries) 0 st.Cache.shards);
  Alcotest.(check int) "bytes sum to total" st.Cache.retained_bytes
    (List.fold_left (fun a s -> a + s.Cache.sh_bytes) 0 st.Cache.shards);
  Alcotest.(check (float 1e-6)) "ms sum to total" st.Cache.retained_ms
    (List.fold_left (fun a s -> a +. s.Cache.sh_ms) 0.0 st.Cache.shards);
  let populated =
    List.length (List.filter (fun s -> s.Cache.sh_entries > 0) st.Cache.shards)
  in
  Alcotest.(check bool) "hash prefix spreads the keys" true (populated > 1)

(* --- the acceptance scenario: 200 requests, >= 50% repeats, hit rate
   reported via rtcad_obs, zero crashes on interleaved malformed input --- *)

let test_acceptance_session () =
  let specs =
    [ "fifo"; "fifo_x"; "celement"; "pipeline"; "selector"; "toggle"; "call";
      "ring2"; "ring3"; "ring4" ]
  in
  let script =
    List.init 200 (fun i ->
        req {|{"op":"check","spec":%S}|} (List.nth specs (i mod 10)))
  in
  (* Interleave garbage: it must be answered and change nothing else. *)
  let script =
    List.concat_map
      (fun (i, line) -> if i mod 50 = 25 then [ "{broken"; line ] else [ line ])
      (List.mapi (fun i l -> (i, l)) script)
  in
  Obs.set_enabled true;
  let responses, snap =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () ->
        let r = Serve.run_lines (config ()) script in
        (r, Obs.snapshot ()))
  in
  Alcotest.(check int) "every line answered" (List.length script) (List.length responses);
  let ok, errors = List.partition is_ok responses in
  Alcotest.(check int) "all 200 work requests succeed" 200 (List.length ok);
  List.iter
    (fun l -> Alcotest.(check string) "garbage kind" "parse_error" (error_kind l))
    errors;
  let hits = Obs.counter snap "serve.cache.hit"
  and misses = Obs.counter snap "serve.cache.miss" in
  Alcotest.(check int) "requests counted" 200 (Obs.counter snap "serve.requests");
  Alcotest.(check int) "lookups" 200 (hits + misses);
  let rate = float_of_int hits /. float_of_int (hits + misses) in
  if rate < 0.45 then
    Alcotest.failf "cache hit rate %.2f below the 45%% acceptance bar" rate;
  (* The sharded cache mirrors its retained-cost totals into gauges, with
     a per-shard breakdown that must sum back to the totals. *)
  let gauge name =
    match Obs.metric snap name with
    | Some (Obs.Gauge_v v) -> v
    | _ -> Alcotest.failf "gauge %s missing from the obs snapshot" name
  in
  Alcotest.(check bool) "retained-bytes gauge positive" true
    (gauge "serve.cache.retained_bytes" > 0.0);
  let entries = gauge "serve.cache.entries" in
  Alcotest.(check bool) "entries gauge positive" true (entries > 0.0);
  let shard_sum field =
    let s = ref 0.0 in
    for i = 0 to 7 do
      s := !s +. gauge (Printf.sprintf "serve.cache.shard%d.%s" i field)
    done;
    !s
  in
  Alcotest.(check (float 1e-6)) "shard entry gauges sum to the total" entries
    (shard_sum "entries");
  Alcotest.(check (float 1e-6)) "shard byte gauges sum to the total"
    (gauge "serve.cache.retained_bytes")
    (shard_sum "bytes")

(* --- per-request observability capture --- *)

let test_obs_capture_normalised () =
  let run () =
    let cfg = { (config ()) with Serve.obs_mode = Serve.Obs_normalised } in
    Serve.run_lines cfg
      [ req {|{"op":"check","spec":"fifo"}|}; req {|{"op":"check","spec":"fifo"}|} ]
  in
  let at1 = with_jobs 1 run and at2 = with_jobs 2 run in
  Alcotest.(check (list string)) "captured responses deterministic" at1 at2;
  match at1 with
  | [ miss; hit ] ->
    let summary = str_of miss "obs" in
    Alcotest.(check bool) "summary is JSON" true (String.length summary > 2 && summary.[0] = '{');
    Alcotest.(check string) "hit replays the captured summary" summary (str_of hit "obs")
  | _ -> Alcotest.fail "expected two responses"

(* --- mux socket driver --- *)

let connect_retry path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
      Unix.close fd;
      Thread.delay 0.02;
      go (tries - 1)
  in
  go 250

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  try go 0 with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Blocking read until [count] complete lines arrive (or EOF). *)
let recv_lines fd count =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let newlines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  let rec go () =
    if newlines () < count then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

(* Run a daemon at a fresh socket path, drive it with one thread per
   client script (each sends everything, then reads one response per
   line), shut it down, and return the per-client response streams. *)
let run_mux_session ?(mux = fun c -> c) scripts =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let cfg = mux (Mux.default (config ())) in
  let server = Thread.create (fun () -> ignore (Mux.run cfg ~path)) () in
  let results = Array.make (List.length scripts) [] in
  let clients =
    List.mapi
      (fun i script ->
        Thread.create
          (fun () ->
            let fd = connect_retry path in
            send_all fd (String.concat "\n" script ^ "\n");
            results.(i) <- recv_lines fd (List.length script);
            Unix.close fd)
          ())
      scripts
  in
  List.iter Thread.join clients;
  let fd = connect_retry path in
  send_all fd "{\"op\":\"shutdown\"}\n";
  ignore (recv_lines fd 1);
  Unix.close fd;
  Thread.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  Array.to_list results

let test_socket_driver () =
  match
    run_mux_session
      [
        [
          req {|{"id":1,"op":"ping"}|};
          req {|{"id":2,"op":"check","spec":"fifo"}|};
        ];
      ]
  with
  | [ lines ] ->
    Alcotest.(check int) "two responses" 2 (List.length lines);
    Alcotest.(check bool) "pong" true (is_ok (List.nth lines 0));
    Alcotest.(check bool) "check served" true (is_ok (List.nth lines 1))
  | _ -> Alcotest.fail "expected one client stream"

(* Per-client streams must be a function of that client's own request
   stream alone: byte-identical across runs and across RTCAD_JOBS,
   whatever the interleaving with the other clients.  Keys are made
   per-client-unique (max_states enters the cache key) so each client's
   hit/miss pattern is deterministic even though the cache is shared. *)
let concurrency_script cid =
  let ms i = 10_000 + (100 * cid) + i in
  [
    req {|{"id":1,"op":"check","spec":"fifo","max_states":%d}|} (ms 1);
    "this is not a request";
    req {|{"id":2,"op":"check","spec":"toggle","max_states":%d}|} (ms 2);
    req {|{"id":3,"op":"check","spec":"fifo","max_states":%d}|} (ms 1);
    req {|{"id":4,"op":"check","spec":"celement","max_states":%d}|} (ms 3);
  ]

let test_mux_concurrent_determinism () =
  let scripts = List.init 3 concurrency_script in
  let run () = run_mux_session scripts in
  let first = with_jobs 1 run in
  let again = with_jobs 1 run in
  let at2 = with_jobs 2 run in
  Alcotest.(check (list (list string))) "re-run is byte-identical" first again;
  Alcotest.(check (list (list string))) "jobs 2 is byte-identical" first at2;
  List.iter
    (fun lines ->
      Alcotest.(check int) "every line answered" 5 (List.length lines);
      Alcotest.(check string) "garbage answered in place" "parse_error"
        (error_kind (List.nth lines 1));
      Alcotest.(check bool) "first sight is a miss" false (cached (List.nth lines 0));
      Alcotest.(check bool) "own repeat is a hit" true (cached (List.nth lines 3)))
    first

(* A client that floods large requests without draining responses gets
   its work shed with structured [overloaded] errors once its write
   queue passes the bound — while an unrelated client progresses
   normally the whole time. *)
let test_slow_reader_shed () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let cfg = { (Mux.default (config ())) with Mux.wq_limit = 4096 } in
  let server = Thread.create (fun () -> ignore (Mux.run cfg ~path)) () in
  let n = 30 in
  let flood =
    String.concat ""
      (List.init n (fun i ->
           req {|{"id":%d,"op":"sim","circuit":"si","cycles":400,"vcd":true}|} i
           ^ "\n"))
  in
  let a = connect_retry path in
  let b_lines = ref [] in
  let b =
    Thread.create
      (fun () ->
        let fd = connect_retry path in
        let script =
          List.init 10 (fun i ->
              req {|{"id":%d,"op":"check","spec":"ring%d"}|} i (i + 2))
        in
        send_all fd (String.concat "\n" script ^ "\n");
        b_lines := recv_lines fd 10;
        Unix.close fd)
      ()
  in
  (* Each response is ~64 KB; 30 of them dwarf the kernel socket buffers,
     so the daemon's write queue for A must back up past wq_limit. *)
  send_all a flood;
  Thread.join b;
  List.iter
    (fun l -> Alcotest.(check bool) "other client unaffected" true (is_ok l))
    !b_lines;
  let a_lines = recv_lines a n in
  Unix.close a;
  let fd = connect_retry path in
  send_all fd "{\"op\":\"shutdown\"}\n";
  ignore (recv_lines fd 1);
  Unix.close fd;
  Thread.join server;
  Alcotest.(check int) "every flooded request answered" n (List.length a_lines);
  let oks, shed = List.partition is_ok a_lines in
  Alcotest.(check bool) "some requests served" true (List.length oks >= 1);
  Alcotest.(check bool) "some requests shed" true (List.length shed >= 1);
  List.iter
    (fun l -> Alcotest.(check string) "shed kind" "overloaded" (error_kind l))
    shed

(* A client that vanishes abruptly with responses still queued must
   only lose its own connection: the daemon ignores SIGPIPE, so the
   broken-pipe write surfaces as EPIPE and kills that connection alone.
   (Without the Signal_ignore, the write would SIGPIPE this whole test
   process.) *)
let test_abrupt_disconnect () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let cfg = Mux.default (config ()) in
  let server = Thread.create (fun () -> ignore (Mux.run cfg ~path)) () in
  let a = connect_retry path in
  (* ~64 KB per response: enough queued output to outlive the kernel
     socket buffer, so bytes are still pending when the client vanishes
     and the daemon's next write hits the broken pipe. *)
  send_all a
    (String.concat ""
       (List.init 8 (fun i ->
            req {|{"id":%d,"op":"sim","circuit":"si","cycles":400,"vcd":true}|} i
            ^ "\n")));
  (* Give the daemon time to read, compute and fill the socket buffer,
     then vanish with everything unread. *)
  Thread.delay 0.3;
  Unix.close a;
  let fd = connect_retry path in
  send_all fd (req {|{"id":1,"op":"ping"}|} ^ "\n");
  (match recv_lines fd 1 with
  | [ l ] -> Alcotest.(check bool) "daemon alive after EPIPE" true (is_ok l)
  | _ -> Alcotest.fail "no response after abrupt disconnect");
  send_all fd "{\"op\":\"shutdown\"}\n";
  ignore (recv_lines fd 1);
  Unix.close fd;
  Thread.join server

(* Five batched misses at wave_max 2 must dispatch as exactly three
   fan-outs (2 + 2 + 1), observable through the serve.mux.waves counter. *)
let test_wave_splitting () =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let before = Obs.counter (Obs.snapshot ()) "serve.mux.waves" in
  (match
     run_mux_session
       ~mux:(fun c -> { c with Mux.wave_max = 2 })
       [
         [
           req {|{"op":"batch"}|};
           req {|{"op":"check","spec":"ring2"}|};
           req {|{"op":"check","spec":"ring3"}|};
           req {|{"op":"check","spec":"ring4"}|};
           req {|{"op":"check","spec":"ring5"}|};
           req {|{"op":"check","spec":"ring6"}|};
           req {|{"op":"flush"}|};
         ];
       ]
   with
  | [ lines ] ->
    List.iter (fun l -> Alcotest.(check bool) "all ok" true (is_ok l)) lines
  | _ -> Alcotest.fail "expected one client stream");
  let after = Obs.counter (Obs.snapshot ()) "serve.mux.waves" in
  Alcotest.(check int) "5 misses at wave_max 2 = 3 waves" 3 (after - before)

(* A socket file left behind by a crashed daemon (bound, no listener) is
   probe-detected and reclaimed. *)
let test_stale_socket_reclaim () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX path);
  Unix.close stale;
  Alcotest.(check bool) "stale file present" true (Sys.file_exists path);
  let server =
    Thread.create (fun () -> ignore (Mux.run (Mux.default (config ())) ~path)) ()
  in
  let fd = connect_retry path in
  send_all fd "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"shutdown\"}\n";
  let lines = recv_lines fd 2 in
  Unix.close fd;
  Thread.join server;
  Alcotest.(check int) "served over the reclaimed path" 2 (List.length lines);
  Alcotest.(check bool) "pong" true (is_ok (List.nth lines 0))

(* A live daemon on the path is detected by the same probe and refused
   with a typed error instead of being unlinked from under it. *)
let test_busy_daemon () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let server =
    Thread.create (fun () -> ignore (Mux.run (Mux.default (config ())) ~path)) ()
  in
  let probe = connect_retry path in
  let refused =
    try
      ignore (Mux.run (Mux.default (config ())) ~path);
      false
    with Mux.Busy p -> p = path
  in
  Alcotest.(check bool) "second daemon refused with Busy" true refused;
  Alcotest.(check bool) "live socket kept" true (Sys.file_exists path);
  send_all probe "{\"op\":\"shutdown\"}\n";
  ignore (recv_lines probe 1);
  Unix.close probe;
  Thread.join server

let test_mux_validation () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "rtsyn.sock" in
  let rejects patch =
    match Mux.run (patch (Mux.default (config ()))) ~path with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid mux config accepted"
  in
  rejects (fun c -> { c with Mux.backlog = 0 });
  rejects (fun c -> { c with Mux.wave_max = 0 });
  rejects (fun c -> { c with Mux.wave_ms = -1.0 });
  Alcotest.(check bool) "nothing bound" false (Sys.file_exists path)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "json round-trips" `Quick test_json_roundtrip;
        Alcotest.test_case "json rejects malformed input" `Quick test_json_rejects;
        Alcotest.test_case "cache keys are injective" `Quick test_cache_key;
        Alcotest.test_case "mode fingerprints are distinct" `Quick test_fingerprint;
        Alcotest.test_case "responses identical at jobs 1 and 2" `Slow
          test_determinism_across_jobs;
        Alcotest.test_case "load shedding answers overloaded" `Quick
          test_load_shedding;
        Alcotest.test_case "malformed input never kills the session" `Quick
          test_malformed_never_kills;
        Alcotest.test_case "timeout budget" `Quick test_timeout_budget;
        QCheck_alcotest.to_alcotest test_canonical_hash_property;
        Alcotest.test_case "disk tier: corruption detected, recomputed" `Quick
          test_disk_tier_and_corruption;
        Alcotest.test_case "memory LRU respects its bound" `Quick test_lru_eviction;
        Alcotest.test_case "cost-based eviction honours the budget" `Quick
          test_cost_eviction;
        Alcotest.test_case "shard stats partition the totals" `Quick
          test_shard_distribution;
        Alcotest.test_case "200-request session: >=45% hits via obs" `Slow
          test_acceptance_session;
        Alcotest.test_case "per-request capture is deterministic" `Slow
          test_obs_capture_normalised;
        Alcotest.test_case "mux socket driver" `Quick test_socket_driver;
        Alcotest.test_case "mux: concurrent client streams deterministic" `Slow
          test_mux_concurrent_determinism;
        Alcotest.test_case "mux: slow reader shed, others progress" `Slow
          test_slow_reader_shed;
        Alcotest.test_case "mux: abrupt disconnect kills only its connection"
          `Quick test_abrupt_disconnect;
        Alcotest.test_case "mux: waves split at wave_max" `Quick
          test_wave_splitting;
        Alcotest.test_case "mux: stale socket reclaimed" `Quick
          test_stale_socket_reclaim;
        Alcotest.test_case "mux: live daemon refused with Busy" `Quick
          test_busy_daemon;
        Alcotest.test_case "mux: config validation" `Quick test_mux_validation;
      ] );
  ]
